(** HNLPU — an OCaml reproduction of "Hardwired-Neuron Language Processing
    Units as General-Purpose Cognitive Substrates" (ASPLOS '26).

    This module is the stable public façade: it re-exports the underlying
    libraries under one namespace.  See README.md for the architecture map
    and {!Experiments} for one entry point per paper table/figure. *)

(** {1 Foundations} *)

module Rng = Hnlpu_util.Rng
module Stats = Hnlpu_util.Stats
module Units = Hnlpu_util.Units
module Table = Hnlpu_util.Table
module Approx = Hnlpu_util.Approx
module Heap = Hnlpu_util.Heap
module Chart = Hnlpu_util.Chart

(** {1 Deterministic domain-parallel execution} *)

module Par = Hnlpu_par.Par

(** {1 Arithmetic substrate (FP4, bit-serial, CSA)} *)

module Fp4 = Hnlpu_fp4.Fp4
module Blockscale = Hnlpu_fp4.Blockscale
module Bitserial = Hnlpu_fp4.Bitserial
module Csa = Hnlpu_fp4.Csa

(** {1 5 nm technology and gate census} *)

module Tech = Hnlpu_gates.Tech
module Census = Hnlpu_gates.Census
module Sram = Hnlpu_gates.Sram
module Yield = Hnlpu_gates.Yield

(** {1 The three embedding machines (Figures 12/13)} *)

module Gemv = Hnlpu_neuron.Gemv
module Mac_array = Hnlpu_neuron.Mac_array
module Cell_embedding = Hnlpu_neuron.Cell_embedding
module Metal_embedding = Hnlpu_neuron.Metal_embedding
module Me_rtl = Hnlpu_neuron.Me_rtl
module Neuron_report = Hnlpu_neuron.Report

(** {1 Reference model (gpt-oss-style MoE transformer)} *)

module Vec = Hnlpu_tensor.Vec
module Mat = Hnlpu_tensor.Mat
module Config = Hnlpu_model.Config
module Params = Hnlpu_model.Params
module Weights = Hnlpu_model.Weights
module Transformer = Hnlpu_model.Transformer
module Kv_cache = Hnlpu_model.Kv_cache
module Sampler = Hnlpu_model.Sampler
module Rope = Hnlpu_model.Rope
module Hn_linear = Hnlpu_model.Hn_linear
module Lora = Hnlpu_model.Lora
module Tokenizer = Hnlpu_model.Tokenizer
module Quant_eval = Hnlpu_model.Quant_eval
module Generation = Hnlpu_model.Generation
module Speculative = Hnlpu_model.Speculative
module Checkpoint = Hnlpu_model.Checkpoint

(** {1 Lithography and NRE (Sea-of-Neurons)} *)

module Layer_stack = Hnlpu_litho.Layer_stack
module Mask_cost = Hnlpu_litho.Mask_cost
module Strawman = Hnlpu_litho.Strawman
module Model_nre = Hnlpu_litho.Model_nre
module Routing = Hnlpu_litho.Routing
module Hn_compiler = Hnlpu_litho.Hn_compiler
module Sea_of_neurons = Hnlpu_litho.Sea_of_neurons

(** {1 Multi-chip fabric} *)

module Topology = Hnlpu_noc.Topology
module Link = Hnlpu_noc.Link
module Collective = Hnlpu_noc.Collective
module Schedule = Hnlpu_noc.Schedule

(** {1 Chip blocks (Table 1)} *)

module Hn_array = Hnlpu_chip.Hn_array
module Vex = Hnlpu_chip.Vex
module Attention_buffer = Hnlpu_chip.Attention_buffer
module Hbm = Hnlpu_chip.Hbm
module Interconnect_engine = Hnlpu_chip.Interconnect_engine
module Control_unit = Hnlpu_chip.Control_unit
module Floorplan = Hnlpu_chip.Floorplan
module Thermal = Hnlpu_chip.Thermal
module Package = Hnlpu_chip.Package
module Vex_sim = Hnlpu_chip.Vex_sim

(** {1 System (dataflow, performance, scheduling)} *)

module Mapping = Hnlpu_system.Mapping
module Dataflow = Hnlpu_system.Dataflow
module Perf = Hnlpu_system.Perf
module Scheduler = Hnlpu_system.Scheduler
module Ablation = Hnlpu_system.Ablation
module Trace = Hnlpu_system.Trace
module Slo = Hnlpu_system.Slo
module Multi_node = Hnlpu_system.Multi_node
module Arrivals = Hnlpu_system.Arrivals
module Fleet = Hnlpu_system.Fleet
module Traffic = Hnlpu_system.Traffic
module Execution = Hnlpu_system.Execution

(** {1 Baselines and economics} *)

module H100 = Hnlpu_baseline.H100
module Wse3 = Hnlpu_baseline.Wse3
module Compare = Hnlpu_baseline.Compare
module Scaling = Hnlpu_baseline.Scaling
module Energy = Hnlpu_baseline.Energy
module Pricing = Hnlpu_tco.Pricing
module Cost_breakdown = Hnlpu_tco.Cost_breakdown
module Tco = Hnlpu_tco.Tco
module Deployment = Hnlpu_tco.Deployment
module Carbon = Hnlpu_tco.Carbon
module Sensitivity = Hnlpu_tco.Sensitivity

(** {1 Observability (spans, metrics, Chrome-trace export)} *)

module Obs = Hnlpu_obs

(** {1 Static signoff (DRC/LVS/schedule/budget linting)} *)

module Diagnostic = Hnlpu_verify.Diagnostic
module Netlist_rules = Hnlpu_verify.Netlist_rules
module Noc_rules = Hnlpu_verify.Noc_rules
module System_rules = Hnlpu_verify.System_rules
module Chip_rules = Hnlpu_verify.Chip_rules
module Static = Hnlpu_verify.Static
module Signoff = Hnlpu_verify.Signoff
module Bundle = Hnlpu_verify.Bundle

(** {1 Experiments} *)

module Experiments = Experiments
module Calibration = Calibration
