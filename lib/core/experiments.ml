open Hnlpu_util

let config = Hnlpu_model.Config.gpt_oss_120b

(* Chart and Table come from Hnlpu_util via the open above. *)

let figure2 () =
  let open Hnlpu_litho.Strawman in
  let gpu = gpu_economics () in
  let hw = hardwired_economics config in
  let t =
    Table.create ~headers:[ "Economics"; gpu.label; hw.label ]
  in
  let row label f = Table.add_row t [ label; f gpu; f hw ] in
  row "Mask sets" (fun a -> string_of_int a.mask_sets);
  row "Mask bill" (fun a -> Units.dollars a.mask_bill_usd);
  row "Wafers" (fun a -> Units.group_thousands a.wafers);
  row "Wafer bill" (fun a -> Units.dollars a.wafer_bill_usd);
  row "Units produced" (fun a -> Units.group_thousands a.units);
  Table.add_sep t;
  row "Cost per unit" (fun a -> Units.dollars a.cost_per_unit_usd);
  t

let neuron_reports ?(seed = 20260706) () =
  let open Hnlpu_neuron in
  let g = Gemv.paper_benchmark (Rng.create seed) in
  [
    Mac_array.report (Mac_array.make g);
    Cell_embedding.report (Cell_embedding.make g);
    Metal_embedding.report (Metal_embedding.make g);
  ]

let figure12 ?seed () =
  let open Hnlpu_neuron in
  let reports = neuron_reports ?seed () in
  let baseline = List.hd reports in
  let t = Table.create ~headers:[ "Design"; "Area (mm2)"; "vs 64KB SRAM (paper)" ] in
  let paper = [ "1.00x"; "14.3x"; "0.95x" ] in
  List.iteri
    (fun i r ->
      Table.add_row t
        [
          r.Report.design;
          Printf.sprintf "%.4f" r.Report.area_mm2;
          Printf.sprintf "%.2fx (%s)" (Report.area_ratio r ~baseline) (List.nth paper i);
        ])
    reports;
  t

let figure13 ?seed () =
  let tech = Hnlpu_gates.Tech.n5 in
  let reports = neuron_reports ?seed () in
  let t =
    Table.create
      ~headers:[ "Design"; "Execution cycles"; "Energy (nJ)"; "Leakage (mW)" ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.Hnlpu_neuron.Report.design;
          string_of_int r.Hnlpu_neuron.Report.cycles;
          Printf.sprintf "%.2f" (Hnlpu_neuron.Report.energy_j tech r *. 1e9);
          Printf.sprintf "%.2f" (r.Hnlpu_neuron.Report.leakage_power_w *. 1e3);
        ])
    reports;
  t

let table1 () = Hnlpu_chip.Floorplan.to_table (Hnlpu_chip.Floorplan.table1 ())

let table2 () =
  let open Hnlpu_baseline.Compare in
  let systems = table2 () in
  let t = to_table systems in
  (match systems with
  | [ hn; gpu; wse ] ->
    Table.add_sep t;
    Table.add_row t
      [
        "Throughput ratio";
        "1x";
        Units.ratio ~digits:0 (throughput_ratio hn ~over:gpu);
        Units.ratio ~digits:0 (throughput_ratio hn ~over:wse);
      ];
    Table.add_row t
      [
        "Efficiency ratio";
        "1x";
        Units.ratio ~digits:0 (efficiency_ratio hn ~over:gpu);
        Units.ratio ~digits:0 (efficiency_ratio hn ~over:wse);
      ]
  | _ -> ());
  t

let figure14 () =
  let open Hnlpu_system in
  let t =
    Table.create
      ~headers:
        [ "Context"; "Total (us)"; "CXL Comm."; "Projection"; "Non-linear";
          "Attention"; "Stall" ]
  in
  List.iter
    (fun (l, b) ->
      let f = Perf.fractions b in
      let pct x = Units.percent ~digits:1 x in
      Table.add_row t
        [
          (if l >= 65536 then Printf.sprintf "%dK" (l / 1024)
           else Printf.sprintf "%dK" (l / 1024));
          Printf.sprintf "%.1f" (Perf.total_s b *. 1e6);
          pct f.Perf.comm_s;
          pct f.Perf.projection_s;
          pct f.Perf.nonlinear_s;
          pct f.Perf.attention_s;
          pct f.Perf.stall_s;
        ])
    (Perf.figure14 config);
  t

let table3 () = Hnlpu_tco.Tco.to_table ()

let table4 () =
  let t =
    Table.create
      ~headers:[ "Model"; "Params"; "bits/param"; "Chips"; "NRE"; "Paper NRE" ]
  in
  List.iter
    (fun r ->
      let open Hnlpu_litho.Model_nre in
      Table.add_row t
        [
          r.model;
          Units.si ~digits:0 r.params;
          Printf.sprintf "%.1f" r.bits_per_param;
          Printf.sprintf "%.1f" r.chips;
          Units.dollars_m r.nre_usd;
          (match r.paper_nre_usd with
          | Some p -> Units.dollars_m p
          | None -> "-");
        ])
    (Hnlpu_litho.Model_nre.table4 ());
  t

let table5 () = Hnlpu_tco.Cost_breakdown.to_table ()

let all ?domains () =
  (* Each artifact is an independent pure thunk; building them across the
     domain pool keeps paper order because collection is by index. *)
  Hnlpu_par.Par.parallel_map ?domains
    (fun (name, thunk) -> (name, thunk ()))
    [
      ("Figure 2: economics of hardwiring", figure2);
      ("Figure 12: area comparison", fun () -> figure12 ());
      ("Figure 13: time and energy comparison", fun () -> figure13 ());
      ("Table 1: single-chip characteristics", table1);
      ("Table 2: system-level comparison", table2);
      ("Figure 14: execution-time breakdown", figure14);
      ("Table 3: 3-year TCO and carbon", table3);
      ("Table 4: NRE on various models", table4);
      ("Table 5: HNLPU cost analysis", table5);
    ]

let figure12_chart ?seed () =
  let open Hnlpu_neuron in
  let reports = neuron_reports ?seed () in
  let baseline = List.hd reports in
  Chart.bar
    (List.map
       (fun r -> (r.Report.design, Report.area_ratio r ~baseline))
       reports)

let figure13_chart ?seed () =
  let tech = Hnlpu_gates.Tech.n5 in
  let reports = neuron_reports ?seed () in
  Chart.bar ~log:true
    (List.map
       (fun r ->
         (r.Hnlpu_neuron.Report.design, Hnlpu_neuron.Report.energy_j tech r *. 1e9))
       reports)

let figure14_chart () =
  let open Hnlpu_system in
  Chart.stacked
    ~legend:[ "CXL comm"; "projection"; "non-linear"; "attention"; "stall" ]
    (List.map
       (fun (l, b) ->
         ( Printf.sprintf "%4dK" (l / 1024),
           [ b.Perf.comm_s; b.Perf.projection_s; b.Perf.nonlinear_s;
             b.Perf.attention_s; b.Perf.stall_s ] ))
       (Perf.figure14 config))

let slug name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    name

let export_with ~dir ~ext ~serialize =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.map
    (fun (name, table) ->
      let short =
        match String.index_opt name ':' with
        | Some i -> String.sub name 0 i
        | None -> name
      in
      let path = Filename.concat dir (slug short ^ ext) in
      let oc = open_out path in
      output_string oc (serialize table);
      close_out oc;
      path)
    (all ())

let export_csv ~dir = export_with ~dir ~ext:".csv" ~serialize:Table.to_csv

let export_json ~dir = export_with ~dir ~ext:".json" ~serialize:Table.to_json

let render_all () =
  String.concat "\n"
    (List.map
       (fun (name, t) ->
         Printf.sprintf "%s\n%s\n%s" name (String.make (String.length name) '-')
           (Table.render t))
       (all ()))
