(** One entry point per table and figure of the paper's evaluation.

    Each function returns a rendered {!Hnlpu_util.Table.t}; typed accessors
    are provided where downstream code (benches, tests, examples) consumes
    the numbers.  EXPERIMENTS.md records paper-vs-reproduced values. *)

val figure2 : unit -> Hnlpu_util.Table.t
(** Economics of hardwiring: mask/wafer amortization, GPU vs straw-man. *)

val neuron_reports : ?seed:int -> unit -> Hnlpu_neuron.Report.t list
(** The MA / CE / ME reports on the paper's 1024x128 FP4 GEMV. *)

val figure12 : ?seed:int -> unit -> Hnlpu_util.Table.t
(** Area comparison (normalized to the MA SRAM). *)

val figure13 : ?seed:int -> unit -> Hnlpu_util.Table.t
(** Execution cycles and energy per GEMV. *)

val table1 : unit -> Hnlpu_util.Table.t
(** Single-chip area/power breakdown. *)

val table2 : unit -> Hnlpu_util.Table.t
(** System-level comparison vs H100 and WSE-3, with ratios. *)

val figure14 : unit -> Hnlpu_util.Table.t
(** Execution-time breakdown across context lengths. *)

val table3 : unit -> Hnlpu_util.Table.t
(** 3-year TCO and carbon. *)

val table4 : unit -> Hnlpu_util.Table.t
(** Chip NRE prices on various models. *)

val table5 : unit -> Hnlpu_util.Table.t
(** HNLPU cost analysis. *)

val all : ?domains:int -> unit -> (string * Hnlpu_util.Table.t) list
(** Every experiment, in paper order, with its identifier.  Artifacts
    build across the {!Hnlpu_par.Par} pool ([domains] overrides its
    width); the list is identical for every width. *)

val render_all : unit -> string
(** All tables as one report (what [bench/main.exe] prints before the
    micro-benchmarks). *)

(** {1 Figures as figures} — plain-text chart renderings. *)

val figure12_chart : ?seed:int -> unit -> string
(** Area bars, normalized to the MA SRAM. *)

val figure13_chart : ?seed:int -> unit -> string
(** Energy bars on a log scale (the paper's axis). *)

val figure14_chart : unit -> string
(** 100%-stacked breakdown bars across context lengths. *)

val export_csv : dir:string -> string list
(** Write one CSV per artifact into [dir] (created if missing); returns
    the file paths. *)

val export_json : dir:string -> string list
(** Same artifacts as JSON arrays of objects. *)
