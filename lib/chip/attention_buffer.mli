(** The on-chip Attention Buffer (paper §4.3): 320 MB of SRAM organized as
    20,000 banks of 16 KB, each 1W1R with 32-bit ports — the KV cache of the
    chip's assigned attention groups, spilling to HBM beyond capacity.

    Derived properties the paper quotes: aggregate bandwidth 80 TB/s
    (20,000 banks x 4 B x 1 GHz) and 3-cycle access latency. *)

type t = {
  banks : int;
  bank_bytes : int;
  port_bits : int;
}

val hnlpu : t
(** The paper's configuration. *)

val capacity_bytes : t -> int
(** 320 MB. *)

val bandwidth_bytes_per_s : ?tech:Hnlpu_gates.Tech.t -> t -> float

val area_mm2 : ?tech:Hnlpu_gates.Tech.t -> t -> float
(** SRAM macro model with the dense-bank efficiency of this design;
    Table 1: 136.11 mm². *)

val leakage_w : ?tech:Hnlpu_gates.Tech.t -> t -> float

val kv_bytes_per_position_per_chip : Hnlpu_model.Config.t -> int
(** Bytes a chip stores per cached sequence position: its 2 KV heads (K
    and V, FP16) across all layers, with positions striped mod 4 within the
    column (§4.2). *)

val onchip_positions : t -> Hnlpu_model.Config.t -> int
(** Longest context whose KV fits entirely on chip (~69K tokens for
    gpt-oss 120B — the paper's stalls appear past 256K only because
    prefetch hides the spill until bandwidth runs out; see {!Hbm}). *)

val spilled_bytes_per_token : t -> Hnlpu_model.Config.t -> context:int -> float
(** KV bytes a chip must stream from HBM to attend over [context] for one
    token (0 when everything fits).  Computed in float so the fractional
    positions near the spill boundary are not silently dropped — integer
    division here understated HBM traffic by up to 3 positions per chip. *)
