type block_density = { thermal_block : string; density_w_per_mm2 : float }

type t = {
  densities : block_density list;
  average_w_per_mm2 : float;
  peak_w_per_mm2 : float;
  junction_rise_k : float;
  junction_temp_c : float;
  within_limits : bool;
}

let dlc_limit_w_per_mm2 = 2.0

let max_junction_c = 105.0

let coolant_c = 35.0

let thermal_resistance_k_per_w = 0.08

let analyze ?tech ?config ?(power_scale = 1.0) ?(coolant_c = coolant_c) ?obs
    ?(obs_ts_s = 0.0) () =
  if power_scale <= 0.0 then invalid_arg "Thermal.analyze: non-positive power scale";
  let fp = Floorplan.table1 ?tech ?config () in
  let densities =
    List.filter_map
      (fun (b : Floorplan.block) ->
        if b.Floorplan.area_mm2 < 0.1 then None (* control unit: too small to matter *)
        else
          Some
            {
              thermal_block = b.Floorplan.block_name;
              density_w_per_mm2 = power_scale *. b.Floorplan.power_w /. b.Floorplan.area_mm2;
            })
      fp.Floorplan.blocks
  in
  let average = power_scale *. fp.Floorplan.total_power_w /. fp.Floorplan.total_area_mm2 in
  let peak =
    List.fold_left (fun acc d -> Float.max acc d.density_w_per_mm2) 0.0 densities
  in
  let rise = power_scale *. fp.Floorplan.total_power_w *. thermal_resistance_k_per_w in
  let junction = coolant_c +. rise in
  let result =
    {
      densities;
      average_w_per_mm2 = average;
      peak_w_per_mm2 = peak;
      junction_rise_k = rise;
      junction_temp_c = junction;
      within_limits = peak < dlc_limit_w_per_mm2 && junction < max_junction_c;
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let module Event = Hnlpu_obs.Event in
    let m = Hnlpu_obs.Sink.metrics o in
    let track = Event.track ~process:"thermal" ~thread:"operating-point" in
    List.iter
      (fun d ->
        Hnlpu_obs.Sink.sample o ~track
          ~name:(Printf.sprintf "thermal/density_w_per_mm2/%s" d.thermal_block)
          ~ts_s:obs_ts_s d.density_w_per_mm2)
      result.densities;
    Hnlpu_obs.Sink.sample o ~track ~name:"thermal/junction_c" ~ts_s:obs_ts_s
      junction;
    Hnlpu_obs.Sink.instant o ~cat:"thermal" ~track ~name:"operating_point"
      ~ts_s:obs_ts_s
      ~args:
        [
          ("power_scale", Event.F power_scale);
          ("coolant_c", Event.F coolant_c);
          ("within_limits", Event.S (if result.within_limits then "yes" else "no"));
        ];
    Hnlpu_obs.Metrics.set m "thermal/average_w_per_mm2" average;
    Hnlpu_obs.Metrics.set m "thermal/peak_w_per_mm2" peak;
    Hnlpu_obs.Metrics.set m "thermal/junction_rise_k" rise);
  result

let hotspot t =
  match t.densities with
  | [] -> invalid_arg "Thermal.hotspot: empty"
  | first :: rest ->
    List.fold_left
      (fun best d ->
        if d.density_w_per_mm2 > best.density_w_per_mm2 then d else best)
      first rest
