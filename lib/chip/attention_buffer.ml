open Hnlpu_gates
open Hnlpu_model

type t = { banks : int; bank_bytes : int; port_bits : int }

let hnlpu = { banks = 20_000; bank_bytes = 16 * 1024; port_bits = 32 }

let capacity_bytes t = t.banks * t.bank_bytes

(* Dense 16 KB single-port banks reach better array efficiency than the
   generic small-macro figure in Tech; 0.41 reproduces Table 1's 136 mm². *)
let bank_efficiency = 0.41

let bandwidth_bytes_per_s ?(tech = Tech.n5) t =
  float_of_int (t.banks * (t.port_bits / 8)) *. tech.Tech.clock_ghz *. 1e9

let area_mm2 ?(tech = Tech.n5) t =
  let bits = float_of_int (capacity_bytes t * 8) in
  bits *. tech.Tech.sram_bitcell_um2 *. 1e-6 /. bank_efficiency

let leakage_w ?(tech = Tech.n5) t =
  float_of_int (capacity_bytes t) /. 1e6 *. tech.Tech.sram_leak_w_per_mb

let kv_elem_bytes = 2 (* FP16 cache entries *)

let kv_bytes_per_position_per_chip (c : Config.t) =
  (* Each column group holds 2 of the 8 KV heads ... more precisely, a chip
     holds its column's KV heads for the positions striped to it; averaged
     per position the chip pays (kv_dim / cols) K entries plus as many V. *)
  let heads_per_col = c.Config.kv_heads / Hnlpu_noc.Topology.cols in
  2 * c.Config.num_layers * heads_per_col * c.Config.head_dim * kv_elem_bytes

let onchip_positions t (c : Config.t) =
  let per_pos = kv_bytes_per_position_per_chip c in
  (* A chip stores 1/4 of the column's positions (l mod 4 striping): the
     per-chip floor must be taken before scaling by the stripe width, or
     the capacity claims positions no single chip can hold. *)
  capacity_bytes t / per_pos * Hnlpu_noc.Topology.rows

let spilled_bytes_per_token t c ~context =
  if context < 0 then invalid_arg "Attention_buffer: negative context";
  let cap = onchip_positions t c in
  if context <= cap then 0.0
  else
    float_of_int (context - cap)
    /. float_of_int Hnlpu_noc.Topology.rows
    *. float_of_int (kv_bytes_per_position_per_chip c)
