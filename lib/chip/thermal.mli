(** Thermal feasibility model (paper §4.2 and §7.1).

    The paper's sign-off: average power density 0.3 W/mm², peak 1.4 W/mm²,
    "well within the cooling limits of 2.5D packaging", served by
    direct-to-chip liquid cooling (DLC) cold plates per module. *)

type block_density = {
  thermal_block : string;
  density_w_per_mm2 : float;
}

type t = {
  densities : block_density list;
  average_w_per_mm2 : float;
  peak_w_per_mm2 : float;
  junction_rise_k : float;     (** Above coolant, through the cold plate. *)
  junction_temp_c : float;
  within_limits : bool;
}

val dlc_limit_w_per_mm2 : float
(** Local hot-spot limit a DLC cold plate on 2.5D packaging handles
    comfortably (~2 W/mm²). *)

val max_junction_c : float
(** 105 C commercial silicon limit. *)

val coolant_c : float
(** Facility water loop, 35 C. *)

val thermal_resistance_k_per_w : float
(** Die-to-coolant resistance of the cold-plate stack (~0.08 K/W for a
    die this size). *)

val analyze :
  ?tech:Hnlpu_gates.Tech.t -> ?config:Hnlpu_model.Config.t -> ?power_scale:float ->
  ?coolant_c:float -> ?obs:Hnlpu_obs.Sink.t -> ?obs_ts_s:float -> unit -> t
(** Evaluate the Table 1 floorplan.  [within_limits] requires the peak
    density under {!dlc_limit_w_per_mm2} and the junction under
    {!max_junction_c}.

    [power_scale] (default 1.0, must be positive) scales every block's
    power — the deployment operating point a user bundle declares (an
    overclocked or over-volted part heats the same floorplan harder).
    [coolant_c] (default {!coolant_c}) overrides the facility loop
    temperature.  Both feed the signoff THERM-* rules.

    [obs] samples the operating point into a telemetry sink at [obs_ts_s]
    (default 0): per-block power-density and junction-temperature counter
    series, an "operating_point" instant tagged with the power scale and
    coolant temperature, and peak/average/rise gauges — the feedback signal
    the ROADMAP's power-aware admission throttling will close on. *)

val hotspot : t -> block_density
(** The densest block (the interconnect engine in our floorplan). *)
