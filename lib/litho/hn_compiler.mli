(** The Hardwired-Neuron Compiler (paper §3.2 flow and §8 future work 2).

    The paper's physical flow: "the layout is exported to custom tools
    which read weight parameters and generate TCL scripts to instruct the
    connection of metal embedding wires", followed by DRC and LVS.  This
    module is that custom tool, at the model level:

    + {!compile} turns a quantized weight matrix into a metal-embedding
      {e netlist}: one wire per weight, from its input port to its E2M1
      region's next free port, assigned to a routing track on M8–M11;
    + {!to_tcl} / {!of_tcl} serialize the netlist as the P&R script and
      parse it back (round-trip tested);
    + {!lvs} is layout-versus-schematic: the netlist must reconstruct the
      weight matrix exactly;
    + {!drc} is design-rule checking: port capacities respected, no two
      wires on the same (layer, track), every track within the window.

    The netlist is exactly the information content of the 10 ME reticles:
    16 chips x one netlist each is what a re-spin re-fabricates. *)

type wire = {
  neuron : int;         (** Output-neuron index (row of the bank). *)
  input : int;          (** Input-activation index. *)
  region : int;         (** E2M1 code, 0..15. *)
  port : int;           (** Port within the region, < capacity. *)
  layer : string;       (** Routing layer, one of M8..M11. *)
  track : int;          (** Track index on that layer. *)
}

type netlist = {
  in_features : int;
  out_features : int;
  region_capacity : int;
  wires : wire list;    (** Exactly in_features x out_features wires. *)
}

val layers : string array
(** The metal-embedding routing window, M8..M11 in order. *)

val compile : ?slack:float -> Hnlpu_neuron.Gemv.t -> netlist
(** Raises [Invalid_argument] when a region overflows its slacked
    capacity (same rule as {!Hnlpu_neuron.Metal_embedding.make}). *)

val to_tcl : netlist -> string
(** The P&R connection script ("create_net/route" pseudo-TCL). *)

val of_tcl : string -> netlist
(** Parse a script back.  Raises [Failure] naming the line number and the
    offending token on malformed input: bad header, truncated statement,
    unknown layer, out-of-bank indices, or a duplicate (neuron, input)
    wire. *)

val lvs : netlist -> Hnlpu_neuron.Gemv.t -> bool
(** Layout-versus-schematic: the wires encode exactly the given weights. *)

val extract_weights : netlist -> Hnlpu_fp4.Fp4.t array array
(** Reconstruct the weight matrix from the wires alone. *)

type drc_violation =
  | Track_conflict of string * int * wire list
      (** The wires sharing one (layer, track). *)
  | Port_overflow of int * int * wire list
      (** All wires crowding a (neuron, region) beyond capacity. *)
  | Out_of_window of wire
      (** Wire on an unknown routing layer or a track beyond the window. *)

val max_tracks_per_layer : netlist -> int
(** The exact per-layer track window the compiler's round-robin assignment
    can reach for this bank shape: [out * ceil(in / 4)]. *)

val drc : ?tracks_per_layer:int -> netlist -> drc_violation list
(** Empty list = DRC clean.  [tracks_per_layer] defaults to
    {!max_tracks_per_layer} — the bound derived from the compiler's own
    assignment range.  Each violation carries the offending wires so
    downstream diagnostics can point at them. *)

val wire_count : netlist -> int

type diff_stats = {
  total_wires : int;
  rerouted : int;          (** Wires whose destination region changed. *)
  rerouted_fraction : float;
  layers_touched : string list;  (** Routing layers carrying changed wires. *)
}

val diff : netlist -> netlist -> diff_stats
(** What a weight-update re-spin re-fabricates: compare the blue and green
    netlists of the same bank (same shape, same port capacity — raises
    otherwise).  Only the changed wires differ on the ME reticles; the
    prefab below is untouched by construction. *)

val report : netlist -> string
(** Human-readable summary: wires, per-layer occupancy, region fill. *)
