open Hnlpu_neuron

type wire = {
  neuron : int;
  input : int;
  region : int;
  port : int;
  layer : string;
  track : int;
}

type netlist = {
  in_features : int;
  out_features : int;
  region_capacity : int;
  wires : wire list;
}

let layers = [| "M8"; "M9"; "M10"; "M11" |]

let compile ?(slack = 2.0) (g : Gemv.t) =
  let regions = 16 in
  let n = g.Gemv.in_features in
  let balanced = (n + regions - 1) / regions in
  let capacity = int_of_float (ceil (float_of_int balanced *. slack)) in
  (* One track counter per routing layer; wires round-robin across the four
     embedding layers, so each gets a fresh track — congestion-free by
     construction, which DRC then confirms. *)
  let track_next = Array.make (Array.length layers) 0 in
  let wires = ref [] in
  Array.iteri
    (fun neuron row ->
      let port_next = Array.make regions 0 in
      Array.iteri
        (fun input w ->
          let region = Hnlpu_fp4.Fp4.code w in
          let port = port_next.(region) in
          if port >= capacity then
            invalid_arg
              (Printf.sprintf
                 "Hn_compiler.compile: neuron %d region %d overflows capacity %d"
                 neuron region capacity);
          port_next.(region) <- port + 1;
          let li = (neuron + input) mod Array.length layers in
          let track = track_next.(li) in
          track_next.(li) <- track + 1;
          wires := { neuron; input; region; port; layer = layers.(li); track } :: !wires)
        row)
    g.Gemv.weights;
  {
    in_features = n;
    out_features = g.Gemv.out_features;
    region_capacity = capacity;
    wires = List.rev !wires;
  }

let wire_count t = List.length t.wires

type diff_stats = {
  total_wires : int;
  rerouted : int;
  rerouted_fraction : float;
  layers_touched : string list;
}

let diff a b =
  if a.in_features <> b.in_features || a.out_features <> b.out_features then
    invalid_arg "Hn_compiler.diff: shape mismatch";
  if List.length a.wires <> List.length b.wires then
    invalid_arg "Hn_compiler.diff: wire count mismatch";
  let touched = Hashtbl.create 4 in
  let rerouted =
    List.fold_left2
      (fun acc wa wb ->
        if wa.neuron <> wb.neuron || wa.input <> wb.input then
          invalid_arg "Hn_compiler.diff: wire order mismatch";
        if wa.region <> wb.region then begin
          Hashtbl.replace touched wb.layer ();
          acc + 1
        end
        else acc)
      0 a.wires b.wires
  in
  let total = List.length a.wires in
  {
    total_wires = total;
    rerouted;
    rerouted_fraction = float_of_int rerouted /. float_of_int (max 1 total);
    layers_touched =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) touched []);
  }

let to_tcl t =
  let buf = Buffer.create (64 * wire_count t) in
  Buffer.add_string buf
    (Printf.sprintf "# hn-netlist in=%d out=%d cap=%d\n" t.in_features
       t.out_features t.region_capacity);
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf
           "route -neuron %d -input %d -region %d -port %d -layer %s -track %d\n"
           w.neuron w.input w.region w.port w.layer w.track))
    t.wires;
  Buffer.contents buf

(* of_tcl rejects malformed scripts with the line number and the first
   offending token, so a broken hand-edited netlist points at itself. *)

let of_tcl s =
  let fail line fmt =
    Printf.ksprintf
      (fun msg -> failwith (Printf.sprintf "Hn_compiler.of_tcl: line %d: %s" line msg))
      fmt
  in
  let lines = String.split_on_char '\n' s in
  let header, rest =
    match lines with
    | h :: rest -> (h, rest)
    | [] -> failwith "Hn_compiler.of_tcl: empty script"
  in
  let in_features, out_features, region_capacity =
    try Scanf.sscanf header "# hn-netlist in=%d out=%d cap=%d" (fun a b c -> (a, b, c))
    with Scanf.Scan_failure _ | End_of_file ->
      fail 1 "bad header %S (expected '# hn-netlist in=N out=N cap=N')" header
  in
  if in_features <= 0 || out_features <= 0 then
    fail 1 "non-positive bank shape %dx%d" in_features out_features;
  if region_capacity <= 0 then fail 1 "non-positive capacity %d" region_capacity;
  (* Tokens a route statement must carry, in order. *)
  let grammar =
    [
      `Kw "route"; `Kw "-neuron"; `Int "neuron"; `Kw "-input"; `Int "input";
      `Kw "-region"; `Int "region"; `Kw "-port"; `Int "port"; `Kw "-layer";
      `Layer; `Kw "-track"; `Int "track";
    ]
  in
  let parse_route lineno line =
    let tokens =
      List.filter (( <> ) "") (String.split_on_char ' ' (String.trim line))
    in
    let ints = Hashtbl.create 8 in
    let layer = ref "" in
    let rec walk grammar tokens =
      match (grammar, tokens) with
      | [], [] -> ()
      | [], tok :: _ -> fail lineno "trailing token %S" tok
      | `Kw kw :: _, [] -> fail lineno "truncated statement: missing %S" kw
      | `Int field :: _, [] -> fail lineno "truncated statement: missing <%s>" field
      | `Layer :: _, [] -> fail lineno "truncated statement: missing <layer>"
      | `Kw kw :: g, tok :: t ->
        if tok <> kw then fail lineno "expected %S, got token %S" kw tok;
        walk g t
      | `Int field :: g, tok :: t ->
        (match int_of_string_opt tok with
        | Some v when v >= 0 -> Hashtbl.replace ints field v
        | Some v -> fail lineno "negative %s %d" field v
        | None -> fail lineno "bad %s token %S (expected an integer)" field tok);
        walk g t
      | `Layer :: g, tok :: t ->
        if not (Array.exists (( = ) tok) layers) then
          fail lineno "bad layer name %S (metal embedding uses M8-M11)" tok;
        layer := tok;
        walk g t
    in
    walk grammar tokens;
    let get field = Hashtbl.find ints field in
    let neuron = get "neuron" and input = get "input" in
    if neuron >= out_features then
      fail lineno "neuron %d outside the %d-neuron bank" neuron out_features;
    if input >= in_features then
      fail lineno "input %d outside the %d-input bank" input in_features;
    if get "region" > 15 then fail lineno "region %d outside E2M1's 16 codes" (get "region");
    {
      neuron;
      input;
      region = get "region";
      port = get "port";
      layer = !layer;
      track = get "track";
    }
  in
  let seen = Hashtbl.create 1024 in
  let wires =
    List.concat
      (List.mapi
         (fun i line ->
           let lineno = i + 2 in
           if String.trim line = "" then []
           else begin
             let w = parse_route lineno line in
             (match Hashtbl.find_opt seen (w.neuron, w.input) with
             | Some first ->
               fail lineno "duplicate wire for neuron %d input %d (first at line %d)"
                 w.neuron w.input first
             | None -> Hashtbl.add seen (w.neuron, w.input) lineno);
             [ w ]
           end)
         rest)
  in
  { in_features; out_features; region_capacity; wires }

let extract_weights t =
  let m =
    Array.init t.out_features (fun _ -> Array.make t.in_features Hnlpu_fp4.Fp4.zero)
  in
  let seen = Array.make_matrix t.out_features t.in_features false in
  List.iter
    (fun w ->
      if w.neuron < 0 || w.neuron >= t.out_features || w.input < 0
         || w.input >= t.in_features
      then failwith "Hn_compiler.extract_weights: wire out of bank";
      if seen.(w.neuron).(w.input) then
        failwith "Hn_compiler.extract_weights: duplicate wire";
      seen.(w.neuron).(w.input) <- true;
      m.(w.neuron).(w.input) <- Hnlpu_fp4.Fp4.of_code w.region)
    t.wires;
  Array.iteri
    (fun o row ->
      Array.iteri
        (fun i covered ->
          if not covered then
            failwith
              (Printf.sprintf "Hn_compiler.extract_weights: missing wire %d.%d" o i))
        row;
      ignore o)
    seen;
  m

let lvs t (g : Gemv.t) =
  t.in_features = g.Gemv.in_features
  && t.out_features = g.Gemv.out_features
  && wire_count t = Gemv.total_macs g
  &&
  try
    let extracted = extract_weights t in
    let ok = ref true in
    Array.iteri
      (fun o row ->
        Array.iteri
          (fun i w ->
            if not (Hnlpu_fp4.Fp4.equal w extracted.(o).(i)) then ok := false)
          row)
      g.Gemv.weights;
    !ok
  with Failure _ -> false

type drc_violation =
  | Track_conflict of string * int * wire list
  | Port_overflow of int * int * wire list
  | Out_of_window of wire

(* The compiler hands layer (neuron + input) mod 4 to each wire, so a row
   of n inputs puts at most ceil(n/4) wires on any one layer, and the
   per-layer track counter never exceeds out * ceil(in/4).  That is the
   exact window the reticle must provision — not "comfortably above". *)
let max_tracks_per_layer t =
  let l = Array.length layers in
  t.out_features * ((t.in_features + l - 1) / l)

let drc ?tracks_per_layer t =
  let limit =
    match tracks_per_layer with
    | Some n -> n
    | None -> max_tracks_per_layer t
  in
  let violations = ref [] in
  let used : (string * int, wire list ref) Hashtbl.t = Hashtbl.create 1024 in
  let ports : (int * int, wire list ref) Hashtbl.t = Hashtbl.create 1024 in
  let push tbl key w =
    match Hashtbl.find_opt tbl key with
    | Some ws -> ws := w :: !ws
    | None -> Hashtbl.add tbl key (ref [ w ])
  in
  List.iter
    (fun w ->
      if not (Array.exists (( = ) w.layer) layers) then
        violations := Out_of_window w :: !violations;
      if w.track < 0 || w.track >= limit then
        violations := Out_of_window w :: !violations;
      push used (w.layer, w.track) w;
      push ports (w.neuron, w.region) w)
    t.wires;
  let conflicts = ref [] in
  Hashtbl.iter
    (fun (layer, track) ws ->
      if List.length !ws > 1 then
        conflicts := Track_conflict (layer, track, List.rev !ws) :: !conflicts)
    used;
  Hashtbl.iter
    (fun (neuron, region) ws ->
      if List.length !ws > t.region_capacity then
        conflicts := Port_overflow (neuron, region, List.rev !ws) :: !conflicts)
    ports;
  let key = function
    | Track_conflict (l, t, _) -> (0, t, 0, l)
    | Port_overflow (n, r, _) -> (1, n, r, "")
    | Out_of_window w -> (2, w.neuron, w.input, w.layer)
  in
  List.rev !violations
  @ List.sort (fun a b -> compare (key a) (key b)) !conflicts

let report t =
  let per_layer = Hashtbl.create 8 in
  let region_fill = Array.make 16 0 in
  List.iter
    (fun w ->
      Hashtbl.replace per_layer w.layer
        ((try Hashtbl.find per_layer w.layer with Not_found -> 0) + 1);
      region_fill.(w.region) <- region_fill.(w.region) + 1)
    t.wires;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "netlist: %d wires over %dx%d bank (region capacity %d)\n"
       (wire_count t) t.in_features t.out_features t.region_capacity);
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d wires\n" l
           (try Hashtbl.find per_layer l with Not_found -> 0)))
    layers;
  Buffer.add_string buf "  region fill: ";
  Array.iteri
    (fun c n -> Buffer.add_string buf (Printf.sprintf "%d:%d " c n))
    region_fill;
  Buffer.add_char buf '\n';
  Buffer.contents buf
