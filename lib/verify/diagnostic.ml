type severity = Info | Warning | Error

type t = { rule : string; severity : severity; subject : string; message : string }

let make ~rule ~severity ~subject fmt =
  Printf.ksprintf (fun message -> { rule; severity; subject; message }) fmt

let error ~rule ~subject fmt = make ~rule ~severity:Error ~subject fmt
let warning ~rule ~subject fmt = make ~rule ~severity:Warning ~subject fmt
let info ~rule ~subject fmt = make ~rule ~severity:Info ~subject fmt

let severity_label = function Error -> "ERROR" | Warning -> "WARN" | Info -> "INFO"

let rank = function Info -> 0 | Warning -> 1 | Error -> 2

let count sev ds = List.length (List.filter (fun d -> d.severity = sev) ds)

let has_rule ?(min_severity = Info) rule ds =
  List.exists (fun d -> d.rule = rule && rank d.severity >= rank min_severity) ds

let worst = function
  | [] -> None
  | d :: ds ->
    Some
      (List.fold_left
         (fun acc x -> if rank x.severity > rank acc then x.severity else acc)
         d.severity ds)

let exit_code ds =
  match worst ds with Some Error -> 2 | Some Warning -> 1 | Some Info | None -> 0

let to_string d =
  Printf.sprintf "[%s %s] %s: %s" (severity_label d.severity) d.rule d.subject
    d.message

let report ?(show_info = true) ds =
  let shown = if show_info then ds else List.filter (fun d -> d.severity <> Info) ds in
  (* Errors first, then warnings, then infos; stable within a severity so
     diagnostics stay in rule-emission order. *)
  let ordered =
    List.stable_sort (fun a b -> compare (rank b.severity) (rank a.severity)) shown
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun d ->
      Buffer.add_string buf (to_string d);
      Buffer.add_char buf '\n')
    ordered;
  Buffer.add_string buf
    (Printf.sprintf "signoff: %d error(s), %d warning(s), %d info\n"
       (count Error ds) (count Warning ds) (count Info ds));
  Buffer.contents buf

let normalize ds =
  (* Errors first, then by rule/subject/message; exact duplicates (the same
     rule firing identically from two passes, or one check run twice)
     collapse — so two runs over the same design serialize byte-identically
     regardless of rule-family emission order. *)
  List.sort_uniq
    (fun a b ->
      match compare (rank b.severity) (rank a.severity) with
      | 0 -> compare (a.rule, a.subject, a.message) (b.rule, b.subject, b.message)
      | c -> c)
    ds

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ds =
  let item d =
    Printf.sprintf
      "  {\"rule\": \"%s\", \"severity\": \"%s\", \"subject\": \"%s\", \
       \"message\": \"%s\"}"
      (json_escape d.rule)
      (String.lowercase_ascii (severity_label d.severity))
      (json_escape d.subject) (json_escape d.message)
  in
  "[\n" ^ String.concat ",\n" (List.map item (normalize ds)) ^ "\n]\n"
