(** Load and export whole signoff bundles: the on-disk form of a
    {!Signoff.design}, so [hnlpu check --bundle DIR] gates arbitrary user
    designs rather than only the built-in reference.

    Bundle layout (all paths relative to the bundle directory):

    {v
    manifest            key = value: config, claimed-slots, max-context,
                        and optionally power-scale, coolant-c
    netlists/chipNN.tcl one ME netlist per fabric chip (00..15), the
                        Hn_compiler to_tcl/of_tcl P&R script
    schematics/chipNN.sch  optional golden weights for LVS:
                        '# hn-schematic in=N out=N act-bits=N' then one
                        row of E2M1 codes (0..15) per output neuron
    plans/NAME.plan     collective plans, checked in filename order:
                        header keys (name, collective, group, root,
                        bytes / shard-bytes), then 'step' markers and
                        'SRC -> DST : BYTES' transfer lines
    stage_map           optional 'LAYER STAGE' lines; canonical map of
                        the manifest config when absent
    v}

    When a chip ships no schematic, LVS runs against the weights the
    netlist itself encodes (and an unextractable netlist gets an all-zero
    schematic so [ME-LVS] reports the discrepancy).  All loaders raise
    [Failure] naming the file and line of the first problem. *)

val load : string -> Signoff.design
(** [load dir] parses the bundle.  Raises [Failure] on a missing or
    malformed file. *)

val export : dir:string -> Signoff.design -> string list
(** [export ~dir d] writes [d] as a bundle under [dir] (creating
    directories as needed) such that [load dir] round-trips it; returns
    the written paths.  Exporting {!Signoff.reference} gives a template
    users can start a bundle from. *)
