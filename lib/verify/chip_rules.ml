open Hnlpu_chip

let thermal ?tech ?config ?power_scale ?coolant_c ~subject () =
  match Thermal.analyze ?tech ?config ?power_scale ?coolant_c () with
  | exception Invalid_argument msg ->
    [
      Diagnostic.error ~rule:"THERM-DENS" ~subject
        "thermal analysis rejected the operating point: %s" msg;
    ]
  | t ->
    let density =
      if t.Thermal.peak_w_per_mm2 >= Thermal.dlc_limit_w_per_mm2 then
        let h = Thermal.hotspot t in
        [
          Diagnostic.error ~rule:"THERM-DENS" ~subject
            "%s peaks at %.2f W/mm2, beyond the %.1f W/mm2 DLC cold-plate \
             limit"
            h.Thermal.thermal_block h.Thermal.density_w_per_mm2
            Thermal.dlc_limit_w_per_mm2;
        ]
      else
        [
          Diagnostic.info ~rule:"THERM-DENS" ~subject
            "peak density %.2f W/mm2 (average %.2f) under the %.1f W/mm2 \
             DLC limit"
            t.Thermal.peak_w_per_mm2 t.Thermal.average_w_per_mm2
            Thermal.dlc_limit_w_per_mm2;
        ]
    in
    let junction =
      if t.Thermal.junction_temp_c >= Thermal.max_junction_c then
        [
          Diagnostic.error ~rule:"THERM-JCT" ~subject
            "junction %.1f C (%.1f K rise over coolant) exceeds the %.0f C \
             silicon limit"
            t.Thermal.junction_temp_c t.Thermal.junction_rise_k
            Thermal.max_junction_c;
        ]
      else
        [
          Diagnostic.info ~rule:"THERM-JCT" ~subject
            "junction %.1f C under the %.0f C limit" t.Thermal.junction_temp_c
            Thermal.max_junction_c;
        ]
    in
    density @ junction
