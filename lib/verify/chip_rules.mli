(** Chip-physical signoff rules over the {!Hnlpu_chip.Thermal} model.

    Rule IDs:
    - [THERM-DENS] — the floorplan's peak power density at the declared
      operating point must stay under the
      {!Hnlpu_chip.Thermal.dlc_limit_w_per_mm2} DLC cold-plate limit
      (2 W/mm²).  The diagnostic names the hotspot block.
    - [THERM-JCT]  — the junction temperature (coolant plus die-to-coolant
      rise) must stay under {!Hnlpu_chip.Thermal.max_junction_c} (105 °C). *)

val thermal :
  ?tech:Hnlpu_gates.Tech.t -> ?config:Hnlpu_model.Config.t ->
  ?power_scale:float -> ?coolant_c:float -> subject:string -> unit ->
  Diagnostic.t list
(** Run {!Hnlpu_chip.Thermal.analyze} at the bundle's operating point
    ([power_scale], [coolant_c]) and emit [THERM-DENS] and [THERM-JCT] —
    [Error] past a limit, [Info] when clean.  An operating point the model
    rejects (non-positive [power_scale]) is a [THERM-DENS] error. *)
