(** System-level signoff rules: pipeline mapping, attention-buffer budget,
    scheduler slot invariants.

    Rule IDs:
    - [PIPE-MAP]   — each of the model's layers x 6 pipeline stages must be
      mapped exactly once, and the 4x4 weight partition of
      {!Hnlpu_system.Mapping} must tile every projection matrix exactly.
    - [BUF-OVFL]   — static worst-case attention-buffer (KV) occupancy per
      chip against the 320 MB SRAM budget, with HBM-spill feasibility
      (capacity and streaming bandwidth) when the context does not fit.
    - [SCHED-SLOT] — the slot count a deployment schedules against must
      equal the design's [stages x layers] pipeline slots. *)

type stage_slot = { layer : int; stage : int }
(** One pipeline slot: [layer] in [0, num_layers), [stage] in [0, 6). *)

val stages_per_layer : int
(** 6 — the Figure 11 stage split ({!Hnlpu_system.Perf.stage_names}). *)

val canonical_stage_map : Hnlpu_model.Config.t -> stage_slot list
(** Every (layer, stage) pair exactly once — what the control unit
    schedules. *)

val pipeline_mapping :
  subject:string -> Hnlpu_model.Config.t -> stage_slot list -> Diagnostic.t list
(** [PIPE-MAP] over an explicit slot assignment: out-of-range, unmapped and
    multiply-mapped layer-stages. *)

val weight_partition :
  subject:string -> Hnlpu_model.Config.t -> Diagnostic.t list
(** [PIPE-MAP] over the 16-chip weight partition: divisibility
    ({!Hnlpu_system.Mapping.check_mappable}), exact tiling of Wq/Wk/Wv/Wo,
    and single ownership of every expert. *)

val buffer_budget :
  ?buf:Hnlpu_chip.Attention_buffer.t -> ?hbm:Hnlpu_chip.Hbm.t ->
  subject:string -> Hnlpu_model.Config.t -> max_context:int -> Diagnostic.t list
(** [BUF-OVFL]: worst-case per-chip KV bytes at [max_context] vs SRAM
    capacity; beyond it, the spilled working set must fit HBM and stream
    within a token time. *)

val scheduler_slots :
  subject:string -> Hnlpu_model.Config.t -> claimed_slots:int -> Diagnostic.t list
(** [SCHED-SLOT]: [claimed_slots] (what a scheduler/deployment manifest
    batches against) must equal {!Hnlpu_system.Perf.pipeline_slots}. *)
