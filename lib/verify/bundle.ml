open Hnlpu_fp4
open Hnlpu_neuron
open Hnlpu_litho
open Hnlpu_noc
open Hnlpu_model

let log_src = Logs.Src.create "hnlpu.bundle" ~doc:"Design-bundle loading"

module Log = (val Logs.src_log log_src : Logs.LOG)

let fail path line fmt =
  Printf.ksprintf
    (fun s -> failwith (Printf.sprintf "%s:%d: %s" path line s))
    fmt

let read_lines path =
  let ic =
    try open_in path
    with Sys_error msg -> failwith (Printf.sprintf "bundle: %s" msg)
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let is_blank s = String.trim s = ""

let is_comment s =
  let s = String.trim s in
  String.length s > 0 && s.[0] = '#'

(* Numbered payload lines: comments and blanks dropped, source line kept for
   error messages. *)
let payload_lines path =
  List.filteri (fun _ _ -> true) (read_lines path)
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter (fun (_, l) -> not (is_blank l || is_comment l))

(* --- Manifest ------------------------------------------------------------- *)

let known_configs =
  [
    Config.gpt_oss_120b; Config.gpt_oss_20b; Config.gpt_oss_120b_sw;
    Config.tiny; Config.tiny_dense; Config.tiny_hnlpu;
  ]
  @ Config.table4_models

let config_by_name path line name =
  match
    List.find_opt (fun (c : Config.t) -> c.Config.name = name) known_configs
  with
  | Some c -> c
  | None ->
    fail path line "unknown config %S (known: %s)" name
      (String.concat ", "
         (List.map (fun (c : Config.t) -> c.Config.name) known_configs))

type manifest = {
  m_config : Config.t;
  m_claimed_slots : int;
  m_max_context : int;
  m_power_scale : float;
  m_coolant_c : float;
  m_execution : Hnlpu_system.Execution.t;
}

let parse_manifest path =
  let assoc =
    List.map
      (fun (line, s) ->
        match String.index_opt s '=' with
        | None -> fail path line "expected 'key = value', got %S" s
        | Some i ->
          ( String.trim (String.sub s 0 i),
            String.trim (String.sub s (i + 1) (String.length s - i - 1)),
            line ))
      (payload_lines path)
  in
  let find key = List.find_opt (fun (k, _, _) -> k = key) assoc in
  let required key =
    match find key with
    | Some (_, v, line) -> (v, line)
    | None -> fail path 0 "missing required key %S" key
  in
  let int_of key (v, line) =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail path line "%s: expected an integer, got %S" key v
  in
  let float_of key (v, line) =
    match float_of_string_opt v with
    | Some x -> x
    | None -> fail path line "%s: expected a number, got %S" key v
  in
  let optional_float key default =
    match find key with
    | Some (_, v, line) -> float_of key (v, line)
    | None -> default
  in
  let known =
    [
      "config"; "claimed-slots"; "max-context"; "power-scale"; "coolant-c";
      "workload-seed"; "sink-merge"; "export-order"; "domains";
    ]
  in
  List.iter
    (fun (k, _, line) ->
      if not (List.mem k known) then
        Log.warn (fun m ->
            m "%s:%d: ignoring unknown manifest key %S (known: %s)" path line k
              (String.concat ", " known)))
    assoc;
  let config_name, config_line = required "config" in
  (* Execution keys are optional (absent = the deterministic defaults), but
     a present key must parse — a typo silently reverting to the default
     would defeat the DET-LINT declaration. *)
  let module E = Hnlpu_system.Execution in
  let optional_parsed key parser ~expected default =
    match find key with
    | None -> default
    | Some (_, v, line) -> (
      match parser v with
      | Some x -> x
      | None -> fail path line "%s: expected %s, got %S" key expected v)
  in
  let execution =
    {
      E.workload_seed =
        optional_parsed "workload-seed" E.seeding_of_string
          ~expected:"an integer or 'wall-clock'"
          E.deterministic.E.workload_seed;
      E.sink_merge =
        optional_parsed "sink-merge" E.merge_order_of_string
          ~expected:"'rate-order' or 'completion-order'"
          E.deterministic.E.sink_merge;
      E.export_order =
        optional_parsed "export-order" E.export_order_of_string
          ~expected:"'sorted' or 'hash-order'" E.deterministic.E.export_order;
      E.domains =
        optional_parsed "domains"
          (fun v -> Option.map Option.some (int_of_string_opt v))
          ~expected:"an integer" E.deterministic.E.domains;
    }
  in
  {
    m_config = config_by_name path config_line config_name;
    m_claimed_slots = int_of "claimed-slots" (required "claimed-slots");
    m_max_context = int_of "max-context" (required "max-context");
    m_power_scale = optional_float "power-scale" 1.0;
    m_coolant_c = optional_float "coolant-c" Hnlpu_chip.Thermal.coolant_c;
    m_execution = execution;
  }

(* --- Schematics ----------------------------------------------------------- *)

let parse_schematic path =
  match read_lines path with
  | [] -> fail path 0 "empty schematic"
  | header :: rows ->
    let in_f, out_f, act_bits =
      try
        Scanf.sscanf header "# hn-schematic in=%d out=%d act-bits=%d"
          (fun a b c -> (a, b, c))
      with Scanf.Scan_failure _ | Failure _ | End_of_file ->
        fail path 1 "bad header %S (want '# hn-schematic in=N out=N act-bits=N')"
          header
    in
    let rows = List.filter (fun r -> not (is_blank r)) rows in
    if List.length rows <> out_f then
      fail path 1 "expected %d weight rows, found %d" out_f (List.length rows);
    let weights =
      Array.of_list
        (List.mapi
           (fun r row ->
             let codes =
               String.split_on_char ' ' row
               |> List.filter (fun t -> t <> "")
               |> List.map (fun t ->
                      match int_of_string_opt t with
                      | Some c when c >= 0 && c < 16 -> Fp4.of_code c
                      | _ -> fail path (r + 2) "bad E2M1 code %S" t)
             in
             if List.length codes <> in_f then
               fail path (r + 2) "row has %d codes, expected %d"
                 (List.length codes) in_f;
             Array.of_list codes)
           rows)
    in
    Gemv.make ~weights ~act_bits

let schematic_to_string (g : Gemv.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "# hn-schematic in=%d out=%d act-bits=%d\n" g.Gemv.in_features
       g.Gemv.out_features g.Gemv.act_bits);
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat " "
           (Array.to_list (Array.map (fun w -> string_of_int (Fp4.code w)) row)));
      Buffer.add_char buf '\n')
    g.Gemv.weights;
  Buffer.contents buf

(* When a bundle ships no schematic, LVS runs against what the wires
   themselves encode; if even extraction fails, an all-zero schematic makes
   ME-LVS surface the discrepancy instead of the loader crashing. *)
let schematic_of_netlist (n : Hn_compiler.netlist) =
  let weights =
    try Hn_compiler.extract_weights n
    with _ ->
      Array.make_matrix n.Hn_compiler.out_features n.Hn_compiler.in_features
        Fp4.zero
  in
  Gemv.make ~weights ~act_bits:8

(* --- Plans ---------------------------------------------------------------- *)

let parse_group path line s =
  String.split_on_char ' ' s
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some c -> c
         | None -> fail path line "bad chip id %S in group" t)

let parse_plan path =
  let name = ref None in
  let kind = ref None in
  let group = ref None in
  let root = ref None in
  let bytes = ref None in
  let shard_bytes = ref None in
  let steps = ref [] in
  (* Transfers of the step being parsed, reversed. *)
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some ts -> steps := List.rev ts :: !steps
  in
  let int_field field line v =
    match int_of_string_opt v with
    | Some n -> n
    | None -> fail path line "%s: expected an integer, got %S" field v
  in
  List.iter
    (fun (line, s) ->
      let s = String.trim s in
      match String.index_opt s ' ' with
      | _ when s = "step" ->
        flush ();
        current := Some []
      | None -> fail path line "unexpected token %S" s
      | Some i -> (
        let key = String.sub s 0 i in
        let rest = String.trim (String.sub s i (String.length s - i)) in
        match key with
        | "name" -> name := Some rest
        | "collective" -> kind := Some (rest, line)
        | "group" -> group := Some (parse_group path line rest)
        | "root" -> root := Some (int_field "root" line rest)
        | "bytes" -> bytes := Some (int_field "bytes" line rest)
        | "shard-bytes" -> shard_bytes := Some (int_field "shard-bytes" line rest)
        | _ -> (
          (* A transfer: "SRC -> DST : BYTES". *)
          match
            Scanf.sscanf s "%d -> %d : %d" (fun a b c -> Some (a, b, c))
          with
          | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
            fail path line "expected a header key, 'step', or 'SRC -> DST : BYTES', got %S" s
          | None -> assert false
          | Some (src, dst, b) -> (
            match !current with
            | None -> fail path line "transfer before the first 'step'"
            | Some ts ->
              current := Some ({ Schedule.src; dst; bytes = b } :: ts)))))
    (payload_lines path);
  flush ();
  let plan = List.rev !steps in
  let req field = function
    | Some v -> v
    | None -> fail path 0 "missing required key %S" field
  in
  let the_group () = req "group" !group in
  let the_root () = req "root" !root in
  let the_bytes () = req "bytes" !bytes in
  let the_shard () = req "shard-bytes" !shard_bytes in
  let coll =
    match req "collective" !kind with
    | "reduce", _ ->
      Noc_rules.Reduce
        { root = the_root (); group = the_group (); bytes = the_bytes () }
    | "broadcast", _ ->
      Noc_rules.Broadcast
        { root = the_root (); group = the_group (); bytes = the_bytes () }
    | "all-reduce", _ ->
      Noc_rules.All_reduce { group = the_group (); bytes = the_bytes () }
    | "all-gather", _ ->
      Noc_rules.All_gather
        { group = the_group (); shard_bytes = the_shard () }
    | "scatter", _ ->
      Noc_rules.Scatter
        { root = the_root (); group = the_group (); shard_bytes = the_shard () }
    | "raw", _ -> Noc_rules.Raw
    | other, line -> fail path line "unknown collective kind %S" other
  in
  (req "name" !name, coll, plan)

let plan_to_string name coll (plan : Schedule.t) =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let group g = String.concat " " (List.map string_of_int g) in
  add "# hnlpu collective plan\n";
  add "name %s\n" name;
  (match coll with
  | Noc_rules.Reduce { root; group = g; bytes } ->
    add "collective reduce\nroot %d\ngroup %s\nbytes %d\n" root (group g) bytes
  | Noc_rules.Broadcast { root; group = g; bytes } ->
    add "collective broadcast\nroot %d\ngroup %s\nbytes %d\n" root (group g)
      bytes
  | Noc_rules.All_reduce { group = g; bytes } ->
    add "collective all-reduce\ngroup %s\nbytes %d\n" (group g) bytes
  | Noc_rules.All_gather { group = g; shard_bytes } ->
    add "collective all-gather\ngroup %s\nshard-bytes %d\n" (group g)
      shard_bytes
  | Noc_rules.Scatter { root; group = g; shard_bytes } ->
    add "collective scatter\nroot %d\ngroup %s\nshard-bytes %d\n" root
      (group g) shard_bytes
  | Noc_rules.Raw -> add "collective raw\n");
  List.iter
    (fun step ->
      add "step\n";
      List.iter
        (fun { Schedule.src; dst; bytes } -> add "%d -> %d : %d\n" src dst bytes)
        step)
    plan;
  Buffer.contents buf

(* --- Stage map ------------------------------------------------------------ *)

let parse_stage_map path =
  List.map
    (fun (line, s) ->
      match
        Scanf.sscanf (String.trim s) "%d %d" (fun l st -> (l, st))
      with
      | l, st -> { System_rules.layer = l; stage = st }
      | exception (Scanf.Scan_failure _ | Failure _ | End_of_file) ->
        fail path line "expected 'LAYER STAGE', got %S" s)
    (payload_lines path)

let stage_map_to_string slots =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "# layer stage\n";
  List.iter
    (fun { System_rules.layer; stage } ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" layer stage))
    slots;
  Buffer.contents buf

(* --- Whole-bundle load / export ------------------------------------------- *)

let chip_file dir sub chip ext =
  Filename.concat (Filename.concat dir sub) (Printf.sprintf "chip%02d.%s" chip ext)

let load dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    failwith (Printf.sprintf "bundle: %s is not a directory" dir);
  let manifest = parse_manifest (Filename.concat dir "manifest") in
  let chips =
    List.map
      (fun chip ->
        let tcl_path = chip_file dir "netlists" chip "tcl" in
        let netlist =
          try Hn_compiler.of_tcl (String.concat "\n" (read_lines tcl_path))
          with Failure msg -> failwith (Printf.sprintf "%s: %s" tcl_path msg)
        in
        let sch_path = chip_file dir "schematics" chip "sch" in
        let schematic =
          if Sys.file_exists sch_path then parse_schematic sch_path
          else begin
            Log.info (fun m ->
                m "%s: no schematic, deriving LVS reference from the netlist"
                  sch_path);
            schematic_of_netlist netlist
          end
        in
        { Signoff.chip; netlist; schematic })
      Topology.all_chips
  in
  let plans_dir = Filename.concat dir "plans" in
  let plans =
    if not (Sys.file_exists plans_dir) then begin
      Log.warn (fun m ->
          m "%s: no plans directory — NoC schedule rules will not run" plans_dir);
      []
    end
    else
      Sys.readdir plans_dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".plan")
      |> List.sort compare
      |> List.map (fun f -> parse_plan (Filename.concat plans_dir f))
  in
  let stage_path = Filename.concat dir "stage_map" in
  let stage_map =
    if Sys.file_exists stage_path then parse_stage_map stage_path
    else begin
      Log.info (fun m ->
          m "%s: no stage_map, assuming the canonical pipeline mapping"
            stage_path);
      System_rules.canonical_stage_map manifest.m_config
    end
  in
  {
    Signoff.config = manifest.m_config;
    chips;
    plans;
    stage_map;
    claimed_slots = manifest.m_claimed_slots;
    max_context = manifest.m_max_context;
    power_scale = manifest.m_power_scale;
    coolant_c = manifest.m_coolant_c;
    execution = manifest.m_execution;
  }

let ensure_dir dir = if not (Sys.file_exists dir) then Sys.mkdir dir 0o755

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' | '_' -> c
      | _ -> '-')
    name

let export ~dir (d : Signoff.design) =
  ensure_dir dir;
  ensure_dir (Filename.concat dir "netlists");
  ensure_dir (Filename.concat dir "schematics");
  ensure_dir (Filename.concat dir "plans");
  let written = ref [] in
  let emit path content =
    write_file path content;
    written := path :: !written
  in
  let module E = Hnlpu_system.Execution in
  emit (Filename.concat dir "manifest")
    (Printf.sprintf
       "# hnlpu bundle manifest\n\
        config = %s\n\
        claimed-slots = %d\n\
        max-context = %d\n\
        power-scale = %g\n\
        coolant-c = %g\n\
        workload-seed = %s\n\
        sink-merge = %s\n\
        export-order = %s\n\
        %s"
       d.Signoff.config.Config.name d.Signoff.claimed_slots
       d.Signoff.max_context d.Signoff.power_scale d.Signoff.coolant_c
       (E.seeding_to_string d.Signoff.execution.E.workload_seed)
       (E.merge_order_to_string d.Signoff.execution.E.sink_merge)
       (E.export_order_to_string d.Signoff.execution.E.export_order)
       (match d.Signoff.execution.E.domains with
       | None -> ""
       | Some n -> Printf.sprintf "domains = %d\n" n));
  List.iter
    (fun cd ->
      emit
        (chip_file dir "netlists" cd.Signoff.chip "tcl")
        (Hn_compiler.to_tcl cd.Signoff.netlist);
      emit
        (chip_file dir "schematics" cd.Signoff.chip "sch")
        (schematic_to_string cd.Signoff.schematic))
    d.Signoff.chips;
  List.iteri
    (fun i (name, coll, plan) ->
      emit
        (Filename.concat
           (Filename.concat dir "plans")
           (Printf.sprintf "plan%02d-%s.plan" i (sanitize name)))
        (plan_to_string name coll plan))
    d.Signoff.plans;
  emit (Filename.concat dir "stage_map") (stage_map_to_string d.Signoff.stage_map);
  List.rev !written
