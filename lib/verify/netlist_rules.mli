(** Netlist signoff rules over {!Hnlpu_litho.Hn_compiler} artifacts.

    Rule IDs:
    - [ME-CONGEST] — per-layer track congestion: wire counts against the
      per-layer track window, with a utilization histogram ([Info]) per
      netlist; exceeding the window is an [Error].
    - [ME-TRACK]   — two wires short on one (layer, track).
    - [ME-PORT]    — a (neuron, region) crowded beyond port capacity.
    - [ME-WINDOW]  — a wire outside the M8-M11 routing window.
    - [ME-MASK]    — cross-chip mask uniformity: the 16 chips share every
      reticle except the ME layers, so only M8-M11 content may differ.
    - [ME-LVS]     — layout versus schematic: the netlist must reconstruct
      the {!Hnlpu_neuron.Gemv} weight matrix exactly. *)

val congestion :
  ?tracks_per_layer:int -> subject:string -> Hnlpu_litho.Hn_compiler.netlist ->
  Diagnostic.t list
(** [ME-CONGEST]: per-layer wire counts vs the track window (default
    {!Hnlpu_litho.Hn_compiler.max_tracks_per_layer}), plus an [Info]
    utilization histogram. *)

val drc :
  ?tracks_per_layer:int -> subject:string -> Hnlpu_litho.Hn_compiler.netlist ->
  Diagnostic.t list
(** [ME-TRACK] / [ME-PORT] / [ME-WINDOW], each pointing at the offending
    wires. *)

val lvs :
  subject:string -> Hnlpu_litho.Hn_compiler.netlist -> Hnlpu_neuron.Gemv.t ->
  Diagnostic.t list
(** [ME-LVS]: shape match, extractability, and weight-for-weight
    equivalence (mismatching cells are named, first few). *)

val mask_uniformity :
  (string * Hnlpu_litho.Hn_compiler.netlist) list -> Diagnostic.t list
(** [ME-MASK] across the per-chip netlists: bank shape, port capacity and
    wire count must agree everywhere (those are prefab properties), and no
    wire may sit outside M8-M11 (that would edit a shared mask). *)

val check_chip :
  ?tracks_per_layer:int -> subject:string -> Hnlpu_litho.Hn_compiler.netlist ->
  Hnlpu_neuron.Gemv.t -> Diagnostic.t list
(** Congestion + DRC + LVS for one chip's netlist. *)
