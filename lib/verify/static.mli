(** Static dataflow analyses over NOC plans and execution configs.

    Everything here is decided without executing a plan on values — the
    pre-admission gate a fleet runs before a design bundle touches
    hardware.  Four rule families:

    - [NOC-DEADLOCK] — the step-ordered channel-dependency graph must be
      acyclic.  A chip that holds no value yet can only forward what a
      same-step delivery brings it, so each such transfer waits on every
      same-step delivery into its source; a cycle can never start, and the
      diagnostic prints the offending cycle path.
    - [NOC-DEFUSE] — def-use dataflow over transfer payloads per chip via
      {!Hnlpu_noc.Schedule.run_symbolic}: reads of never-written shards,
      same-step double-writes racing for one slot, wrong final contribution
      multisets, and dead transfers (produced but never consumed — a
      [Warning]).  Catches value bugs whose bytes balance, statically —
      the class [NOC-BYTES] cannot see and [NOC-EXEC] only catches by
      running the plan.
    - [BUF-LIVE] — interval liveness of attention-buffer occupancy along
      the plan: each chip's working payload plus its worst per-step RX/TX
      staging must fit in the buffer headroom left after worst-case KV at
      the deployment's [max_context].  [Error] on guaranteed overflow,
      [Warning] within 10% of headroom.
    - [DET-LINT] — determinism lint over the deployment's declared
      {!Hnlpu_system.Execution} config: wall-clock seeding, sink merges
      out of rate order, hash-order exports. *)

val deadlock :
  subject:string -> Noc_rules.collective -> Hnlpu_noc.Schedule.t ->
  Diagnostic.t list
(** [NOC-DEADLOCK].  Producers (who hold a value before step 0) come from
    the declared collective; [Raw] plans assume every endpoint is a
    producer, so only cross-plan knowledge could flag them.  [Info] when
    acyclic. *)

val defuse :
  subject:string -> Noc_rules.collective -> Hnlpu_noc.Schedule.t ->
  Diagnostic.t list
(** [NOC-DEFUSE].  [Raw] plans declare no payload semantics and are
    skipped with an [Info]. *)

val headroom_bytes :
  ?buf:Hnlpu_chip.Attention_buffer.t -> Hnlpu_model.Config.t ->
  max_context:int -> int
(** Attention-buffer bytes left for NOC staging after the worst-striped
    chip's resident KV at [max_context] (clamped at zero when the KV
    already spills) — the budget [BUF-LIVE] checks against. *)

val buffer_liveness :
  ?buf:Hnlpu_chip.Attention_buffer.t -> subject:string ->
  config:Hnlpu_model.Config.t -> max_context:int -> Hnlpu_noc.Schedule.t ->
  Diagnostic.t list
(** [BUF-LIVE] over one plan. *)

val determinism :
  subject:string -> Hnlpu_system.Execution.t -> Diagnostic.t list
(** [DET-LINT] over a declared execution config. *)

val check_plan :
  ?buf:Hnlpu_chip.Attention_buffer.t -> subject:string ->
  config:Hnlpu_model.Config.t -> max_context:int -> Noc_rules.collective ->
  Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** {!deadlock} @ {!defuse} @ {!buffer_liveness} — every per-plan static
    pass ({!determinism} is per-design, not per-plan). *)
