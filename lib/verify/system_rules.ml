open Hnlpu_model
open Hnlpu_chip
open Hnlpu_system

type stage_slot = { layer : int; stage : int }

let stages_per_layer = List.length Perf.stage_names

let canonical_stage_map (c : Config.t) =
  List.concat
    (List.init c.Config.num_layers (fun layer ->
         List.init stages_per_layer (fun stage -> { layer; stage })))

let pipeline_mapping ~subject (c : Config.t) slots =
  let layers = c.Config.num_layers in
  let out_of_range, in_range =
    List.partition
      (fun s -> s.layer < 0 || s.layer >= layers || s.stage < 0 || s.stage >= stages_per_layer)
      slots
  in
  let range_errors =
    List.map
      (fun s ->
        Diagnostic.error ~rule:"PIPE-MAP" ~subject
          "slot (layer %d, stage %d) outside the %d x %d pipeline" s.layer
          s.stage layers stages_per_layer)
      out_of_range
  in
  let count = Array.make_matrix layers stages_per_layer 0 in
  List.iter (fun s -> count.(s.layer).(s.stage) <- count.(s.layer).(s.stage) + 1) in_range;
  let coverage_errors = ref [] in
  for layer = layers - 1 downto 0 do
    for stage = stages_per_layer - 1 downto 0 do
      if count.(layer).(stage) = 0 then
        coverage_errors :=
          Diagnostic.error ~rule:"PIPE-MAP" ~subject
            "layer %d stage %d (%s) is unmapped" layer stage
            (List.nth Perf.stage_names stage)
          :: !coverage_errors
      else if count.(layer).(stage) > 1 then
        coverage_errors :=
          Diagnostic.error ~rule:"PIPE-MAP" ~subject
            "layer %d stage %d mapped %d times" layer stage count.(layer).(stage)
          :: !coverage_errors
    done
  done;
  match range_errors @ !coverage_errors with
  | [] ->
    [
      Diagnostic.info ~rule:"PIPE-MAP" ~subject
        "all %d layer-stages mapped exactly once onto %d pipeline slots"
        (layers * stages_per_layer) (Perf.pipeline_slots c);
    ]
  | errors -> errors

let weight_partition ~subject (c : Config.t) =
  match Mapping.check_mappable c with
  | exception Invalid_argument msg ->
    [ Diagnostic.error ~rule:"PIPE-MAP" ~subject "not mappable: %s" msg ]
  | () ->
    (* Each projection must be tiled exactly: distinct chip slices whose
       areas sum to the full matrix. *)
    let tile name rows cols slice_of =
      let seen = Hashtbl.create 16 in
      let area = ref 0 in
      let errors = ref [] in
      List.iter
        (fun chip ->
          let s = slice_of ~chip in
          let key = (s.Mapping.row_lo, s.Mapping.col_lo) in
          if Hashtbl.mem seen key then
            errors :=
              Diagnostic.error ~rule:"PIPE-MAP" ~subject
                "%s slice at (%d, %d) owned by two chips" name s.Mapping.row_lo
                s.Mapping.col_lo
              :: !errors
          else Hashtbl.add seen key ();
          area := !area + (s.Mapping.row_len * s.Mapping.col_len))
        Hnlpu_noc.Topology.all_chips;
      if !area <> rows * cols then
        errors :=
          Diagnostic.error ~rule:"PIPE-MAP" ~subject
            "%s slices cover %d of %d weights" name !area (rows * cols)
          :: !errors;
      !errors
    in
    let h = c.Config.hidden in
    let errors =
      tile "Wq" h (Config.q_dim c) (Mapping.wq_slice c)
      @ tile "Wk" h (Config.kv_dim c) (Mapping.wk_slice c)
      @ tile "Wv" h (Config.kv_dim c) (Mapping.wv_slice c)
      @ tile "Wo" (Config.q_dim c) h (Mapping.wo_slice c)
      @
      (* Every expert on exactly one chip, and chips agree with the
         round-robin inverse. *)
      List.concat
        (List.init c.Config.experts (fun e ->
             let owner = Mapping.chip_of_expert c ~expert:e in
             let owners =
               List.filter
                 (fun chip -> List.mem e (Mapping.experts_of_chip c ~chip))
                 Hnlpu_noc.Topology.all_chips
             in
             if owners = [ owner ] then []
             else
               [
                 Diagnostic.error ~rule:"PIPE-MAP" ~subject
                   "expert %d owned by %d chip(s), expected exactly chip %d" e
                   (List.length owners) owner;
               ]))
    in
    if errors = [] then
      [
        Diagnostic.info ~rule:"PIPE-MAP" ~subject
          "Wq/Wk/Wv/Wo tiled exactly across 16 chips; %d experts singly owned"
          c.Config.experts;
      ]
    else errors

let buffer_budget ?(buf = Attention_buffer.hnlpu) ?(hbm = Hbm.hnlpu) ~subject
    (c : Config.t) ~max_context =
  if max_context < 0 then
    [ Diagnostic.error ~rule:"BUF-OVFL" ~subject "negative max context %d" max_context ]
  else begin
    let per_pos = Attention_buffer.kv_bytes_per_position_per_chip c in
    let rows = Hnlpu_noc.Topology.rows in
    (* Worst case: the chip owning ceil(context / 4) of the striped
       positions. *)
    let worst_positions = (max_context + rows - 1) / rows in
    let need = per_pos * worst_positions in
    let cap = Attention_buffer.capacity_bytes buf in
    if need <= cap then
      [
        Diagnostic.info ~rule:"BUF-OVFL" ~subject
          "worst-case KV occupancy %.1f MB of %.1f MB at context %d — fits on \
           chip"
          (float_of_int need /. 1e6)
          (float_of_int cap /. 1e6)
          max_context;
      ]
    else begin
      let spill_resident = float_of_int (need - cap) in
      if spill_resident > Hbm.capacity_bytes hbm then
        [
          Diagnostic.error ~rule:"BUF-OVFL" ~subject
            "context %d spills %.1f GB of KV per chip — beyond the %.0f GB \
             HBM capacity"
            max_context (spill_resident /. 1e9)
            (Hbm.capacity_bytes hbm /. 1e9);
        ]
      else begin
        let per_token = Attention_buffer.spilled_bytes_per_token buf c ~context:max_context in
        let fetch_s = Hbm.fetch_time_s hbm ~bytes:per_token in
        let token_s = Perf.token_latency_s c ~context:max_context in
        if fetch_s > token_s then
          [
            Diagnostic.error ~rule:"BUF-OVFL" ~subject
              "context %d: HBM needs %.1f us to stream the spilled KV for one \
               token, but the token budget is %.1f us"
              max_context (fetch_s *. 1e6) (token_s *. 1e6);
          ]
        else
          [
            Diagnostic.warning ~rule:"BUF-OVFL" ~subject
              "context %d spills %.1f GB of KV per chip to HBM (prefetch \
               covers %.1f us of %.1f us per token)"
              max_context (spill_resident /. 1e9) (fetch_s *. 1e6)
              (token_s *. 1e6);
          ]
      end
    end
  end

let scheduler_slots ~subject (c : Config.t) ~claimed_slots =
  let slots = Perf.pipeline_slots c in
  let errors =
    (if slots <> stages_per_layer * c.Config.num_layers then
       [
         Diagnostic.error ~rule:"SCHED-SLOT" ~subject
           "design exposes %d slots, inconsistent with %d stages x %d layers"
           slots stages_per_layer c.Config.num_layers;
       ]
     else [])
    @
    if claimed_slots <> slots then
      [
        Diagnostic.error ~rule:"SCHED-SLOT" ~subject
          "deployment schedules %d slots; the design exposes %d (%d stages x \
           %d layers)"
          claimed_slots slots stages_per_layer c.Config.num_layers;
      ]
    else []
  in
  if errors = [] then
    [
      Diagnostic.info ~rule:"SCHED-SLOT" ~subject
        "%d pipeline slots (%d stages x %d layers)" slots stages_per_layer
        c.Config.num_layers;
    ]
  else errors
