open Hnlpu_util
open Hnlpu_neuron
open Hnlpu_litho
open Hnlpu_noc
open Hnlpu_model
open Hnlpu_system

type chip_design = {
  chip : Topology.chip;
  netlist : Hn_compiler.netlist;
  schematic : Gemv.t;
}

type design = {
  config : Config.t;
  chips : chip_design list;
  plans : (string * Noc_rules.collective * Schedule.t) list;
  stage_map : System_rules.stage_slot list;
  claimed_slots : int;
  max_context : int;
  power_scale : float;
  coolant_c : float;
  execution : Execution.t;
}

let reference ?(seed = 42) ?(bank_in = 48) ?(bank_out = 6) () =
  let config = Config.gpt_oss_120b in
  let chips =
    List.map
      (fun chip ->
        let g =
          Gemv.random (Rng.create (seed + chip)) ~in_features:bank_in
            ~out_features:bank_out ~act_bits:8
        in
        (* Slack 16 admits any region skew a random FP4 row can produce. *)
        { chip; netlist = Hn_compiler.compile ~slack:16.0 g; schematic = g })
      Topology.all_chips
  in
  let bytes = Config.q_dim config / Topology.cols * 2 in
  let plans =
    List.map
      (fun col ->
        let group = Topology.col_group col in
        ( Printf.sprintf "all-reduce.col%d" col,
          Noc_rules.All_reduce { group; bytes },
          Schedule.all_reduce ~group ~bytes ))
      [ 0; 1; 2; 3 ]
    @ List.map
        (fun row ->
          let group = Topology.row_group row in
          ( Printf.sprintf "all-gather.row%d" row,
            Noc_rules.All_gather { group; shard_bytes = bytes },
            Schedule.all_gather ~group ~shard_bytes:bytes ))
        [ 0; 1; 2; 3 ]
    @ [
        ( "reduce.row0",
          Noc_rules.Reduce { root = 0; group = Topology.row_group 0; bytes },
          Schedule.reduce ~root:0 ~group:(Topology.row_group 0) ~bytes );
        ( "broadcast.col0",
          Noc_rules.Broadcast { root = 0; group = Topology.col_group 0; bytes },
          Schedule.broadcast ~root:0 ~group:(Topology.col_group 0) ~bytes );
        ( "scatter.row3",
          Noc_rules.Scatter
            { root = 15; group = Topology.row_group 3; shard_bytes = bytes },
          Schedule.scatter ~root:15 ~group:(Topology.row_group 3)
            ~shard_bytes:bytes );
        ( "all-chip.all-reduce",
          Noc_rules.Raw,
          Schedule.all_chip_all_reduce ~bytes );
      ]
  in
  {
    config;
    chips;
    plans;
    stage_map = System_rules.canonical_stage_map config;
    claimed_slots = Perf.pipeline_slots config;
    max_context = 65536;
    power_scale = 1.0;
    coolant_c = Hnlpu_chip.Thermal.coolant_c;
    execution = Execution.deterministic;
  }

let log_src = Logs.Src.create "hnlpu.verify" ~doc:"Static signoff progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

let check ?(dynamic = true) d =
  let subject_of chip = Printf.sprintf "chip%02d" chip in
  let family name ds =
    Log.info (fun m -> m "%s: %d diagnostic(s)" name (List.length ds));
    ds
  in
  let netlist =
    family "netlist DRC/LVS"
      (List.concat_map
         (fun cd ->
           Netlist_rules.check_chip ~subject:(subject_of cd.chip) cd.netlist
             cd.schematic)
         d.chips
      @ Netlist_rules.mask_uniformity
          (List.map (fun cd -> (subject_of cd.chip, cd.netlist)) d.chips))
  in
  let noc =
    family "NoC schedules"
      (List.concat_map
         (fun (name, coll, plan) ->
           Noc_rules.check ~dynamic ~subject:name coll plan)
         d.plans)
  in
  let dataflow =
    family "static dataflow"
      (List.concat_map
         (fun (name, coll, plan) ->
           Static.check_plan ~subject:name ~config:d.config
             ~max_context:d.max_context coll plan)
         d.plans
      @ Static.determinism ~subject:"execution" d.execution)
  in
  let system =
    family "system budgets"
      (System_rules.pipeline_mapping ~subject:"pipeline" d.config d.stage_map
      @ System_rules.weight_partition ~subject:"mapping" d.config
      @ System_rules.buffer_budget ~subject:"attention-buffer" d.config
          ~max_context:d.max_context
      @ System_rules.scheduler_slots ~subject:"scheduler" d.config
          ~claimed_slots:d.claimed_slots)
  in
  let thermal =
    family "thermal"
      (Chip_rules.thermal ~config:d.config ~power_scale:d.power_scale
         ~coolant_c:d.coolant_c ~subject:"thermal" ())
  in
  netlist @ noc @ dataflow @ system @ thermal

let rules =
  [
    "ME-CONGEST"; "ME-TRACK"; "ME-PORT"; "ME-WINDOW"; "ME-MASK"; "ME-LVS";
    "NOC-LINK"; "NOC-PORT"; "NOC-BYTES"; "NOC-EXEC"; "NOC-MAKESPAN";
    "NOC-DEADLOCK"; "NOC-DEFUSE"; "BUF-LIVE"; "DET-LINT";
    "PIPE-MAP"; "BUF-OVFL"; "SCHED-SLOT"; "THERM-DENS"; "THERM-JCT";
  ]

let expected_severity = function
  | "NOC-MAKESPAN" -> Diagnostic.Warning
  | _ -> Diagnostic.Error

(* --- Seeded-broken fixtures: one violation per rule ------------------------ *)

let map_chip target f d =
  {
    d with
    chips =
      List.map
        (fun cd -> if cd.chip = target then { cd with netlist = f cd.netlist } else cd)
        d.chips;
  }

let map_wires f (n : Hn_compiler.netlist) =
  { n with Hn_compiler.wires = f n.Hn_compiler.wires }

let map_plan target f d =
  {
    d with
    plans =
      List.map
        (fun (name, coll, plan) ->
          if name = target then (name, coll, f plan) else (name, coll, plan))
        d.plans;
  }

(* Replace a whole plan entry — declared collective and schedule together —
   for fixtures that must stay NOC-BYTES/NOC-MAKESPAN-clean at a different
   payload size. *)
let replace_entry target entry d =
  {
    d with
    plans =
      List.map
        (fun ((name, _, _) as e) -> if name = target then entry else e)
        d.plans;
  }

let fixture rule =
  let d = reference () in
  match rule with
  | "ME-CONGEST" ->
    (* Pile every wire of chip 0 onto M8: distinct tracks, but four layers'
       worth of wires on one layer's window. *)
    map_chip 0
      (map_wires
         (List.mapi (fun i w -> { w with Hn_compiler.layer = "M8"; track = i })))
      d
  | "ME-TRACK" ->
    map_chip 0
      (map_wires (function
        | w1 :: w2 :: rest ->
          w1
          :: { w2 with Hn_compiler.layer = w1.Hn_compiler.layer;
                       track = w1.Hn_compiler.track }
          :: rest
        | ws -> ws))
      d
  | "ME-PORT" ->
    (* Shrink every chip's port capacity to zero: uniform across the 16
       masks, but every region port now overflows. *)
    {
      d with
      chips =
        List.map
          (fun cd ->
            { cd with netlist = { cd.netlist with Hn_compiler.region_capacity = 0 } })
          d.chips;
    }
  | "ME-WINDOW" ->
    map_chip 0
      (map_wires (function
        | w :: rest -> { w with Hn_compiler.layer = "M3" } :: rest
        | ws -> ws))
      d
  | "ME-MASK" ->
    map_chip 3
      (fun n ->
        { n with Hn_compiler.region_capacity = n.Hn_compiler.region_capacity + 1 })
      d
  | "ME-LVS" ->
    map_chip 0
      (map_wires (function
        | w :: rest ->
          { w with Hn_compiler.region = (w.Hn_compiler.region + 1) mod 16 } :: rest
        | ws -> ws))
      d
  | "NOC-LINK" ->
    (* Divert one reduce transfer to a diagonal chip: no such link. *)
    map_plan "reduce.row0"
      (List.map (function
        | { Schedule.src; dst = _; bytes } :: rest ->
          let diagonal =
            Topology.chip_at
              ~row:((Topology.row_of src + 1) mod Topology.rows)
              ~col:((Topology.col_of src + 1) mod Topology.cols)
          in
          { Schedule.src; dst = diagonal; bytes } :: rest
        | step -> step))
      d
  | "NOC-PORT" ->
    map_plan "broadcast.col0"
      (List.map (function t :: rest -> t :: t :: rest | step -> step))
      d
  | "NOC-BYTES" ->
    map_plan "reduce.row0"
      (List.map (function _ :: rest -> rest | step -> step))
      d
  | "PIPE-MAP" ->
    {
      d with
      stage_map =
        (match d.stage_map with
        | _ :: b :: rest -> b :: b :: rest
        | short -> short);
    }
  | "BUF-OVFL" -> { d with max_context = 64 * 1024 * 1024 }
  | "SCHED-SLOT" -> { d with claimed_slots = d.claimed_slots - 17 }
  | "NOC-EXEC" ->
    (* Swap the head transfers of the reduce and broadcast phases: every
       chip's whole-plan byte tally is untouched (NOC-BYTES clean), but the
       root now merges a pre-reduction partial and one peer gets overwritten
       with it — the value is wrong. *)
    map_plan "all-reduce.col0"
      (function
        | [ t0 :: r0; u0 :: r1 ] -> [ u0 :: r0; t0 :: r1 ]
        | plan -> plan)
      d
  | "NOC-MAKESPAN" ->
    (* Serialize the broadcast phase into singleton steps: still computes
       the right value and conserves bytes, but roughly doubles the
       makespan — a Warning, not an Error. *)
    map_plan "all-reduce.col1"
      (function
        | [ reduce; bcast ] -> reduce :: List.map (fun t -> [ t ]) bcast
        | plan -> plan)
      d
  | "NOC-DEADLOCK" ->
    (* Replace the star broadcast with a same-step forwarding ring among the
       three peers: each send can only forward what the same step delivers,
       and the wait-for graph closes on itself. *)
    map_plan "broadcast.col0"
      (function
        | [ ({ Schedule.bytes; _ } :: _) ] ->
          [
            [
              { Schedule.src = 4; dst = 8; bytes };
              { Schedule.src = 8; dst = 12; bytes };
              { Schedule.src = 12; dst = 4; bytes };
            ];
          ]
        | plan -> plan)
      d
  | "NOC-DEFUSE" ->
    (* Same trick as the NOC-EXEC fixture, on another column: swapping the
       head transfers of the reduce and broadcast phases keeps every byte
       tally intact, but the root accumulates a pre-reduction value and one
       peer is overwritten with it — visible statically as wrong final
       contribution multisets. *)
    map_plan "all-reduce.col2"
      (function
        | [ t0 :: r0; u0 :: r1 ] -> [ u0 :: r0; t0 :: r1 ]
        | plan -> plan)
      d
  | "BUF-LIVE" ->
    (* Same ring all-gather, 32 MB shards: bytes, ports and values all stay
       clean, but one chip's working shard plus same-step RX and TX staging
       (3 x 32 MB) cannot fit in the headroom the 64K-context KV leaves in
       the 320 MB attention buffer. *)
    let group = Topology.row_group 1 in
    let shard_bytes = 32_000_000 in
    replace_entry "all-gather.row1"
      ( "all-gather.row1",
        Noc_rules.All_gather { group; shard_bytes },
        Schedule.all_gather ~group ~shard_bytes )
      d
  | "DET-LINT" ->
    { d with execution = { d.execution with Execution.workload_seed = Execution.Wall_clock } }
  | "THERM-DENS" ->
    (* Overdriven operating point: every block 60% hotter pushes the
       interconnect-engine hotspot past the 2 W/mm2 DLC limit while the
       junction stays legal. *)
    { d with power_scale = 1.6 }
  | "THERM-JCT" ->
    (* Facility loop at 95 C: densities are unchanged but the junction
       crosses 105 C. *)
    { d with coolant_c = 95.0 }
  | other -> invalid_arg ("Signoff.fixture: unknown rule " ^ other)
