open Hnlpu_noc

type collective =
  | Reduce of { root : Topology.chip; group : Topology.chip list; bytes : int }
  | Broadcast of { root : Topology.chip; group : Topology.chip list; bytes : int }
  | All_reduce of { group : Topology.chip list; bytes : int }
  | All_gather of { group : Topology.chip list; shard_bytes : int }
  | Scatter of { root : Topology.chip; group : Topology.chip list; shard_bytes : int }
  | Raw

let links ~subject (plan : Schedule.t) =
  List.concat
    (List.mapi
       (fun step transfers ->
         List.filter_map
           (fun { Schedule.src; dst; bytes = _ } ->
             if Topology.valid src && Topology.valid dst && Topology.connected src dst
             then None
             else
               Some
                 (Diagnostic.error ~rule:"NOC-LINK" ~subject
                    "step %d: chip %d -> chip %d is not a fabric link (row %s, \
                     col %s)" step src dst
                    (if Topology.valid src && Topology.valid dst
                       && Topology.row_of src = Topology.row_of dst
                     then "shared" else "distinct")
                    (if Topology.valid src && Topology.valid dst
                       && Topology.col_of src = Topology.col_of dst
                     then "shared" else "distinct")))
           transfers)
       plan)

let contention ~subject (plan : Schedule.t) =
  List.concat
    (List.mapi
       (fun step transfers ->
         let tx = Hashtbl.create 16 and rx = Hashtbl.create 16 in
         List.iter
           (fun { Schedule.src; dst; bytes = _ } ->
             Hashtbl.replace tx (src, dst)
               (1 + Option.value ~default:0 (Hashtbl.find_opt tx (src, dst)));
             Hashtbl.replace rx dst
               (1 + Option.value ~default:0 (Hashtbl.find_opt rx dst)))
           transfers;
         let tx_errors =
           Hashtbl.fold
             (fun (src, dst) n acc ->
               if n > 1 then
                 Diagnostic.error ~rule:"NOC-PORT" ~subject
                   "step %d: chip %d drives the link to chip %d with %d \
                    concurrent transfers (one TX stream per link)" step src dst n
                 :: acc
               else acc)
             tx []
         in
         let rx_errors =
           Hashtbl.fold
             (fun dst n acc ->
               if Topology.valid dst && n > Topology.degree dst then
                 Diagnostic.error ~rule:"NOC-PORT" ~subject
                   "step %d: chip %d merges %d incoming streams (degree %d)"
                   step dst n (Topology.degree dst)
                 :: acc
               else acc)
             rx []
         in
         List.sort compare tx_errors @ List.sort compare rx_errors)
       plan)

(* Byte accounting over the whole plan: how much each chip injects and
   takes delivery of, regardless of step structure. *)
let tally (plan : Schedule.t) =
  let sent = Hashtbl.create 16 and received = Hashtbl.create 16 in
  List.iter
    (fun transfers ->
      List.iter
        (fun { Schedule.src; dst; bytes } ->
          Hashtbl.replace sent src
            (bytes + Option.value ~default:0 (Hashtbl.find_opt sent src));
          Hashtbl.replace received dst
            (bytes + Option.value ~default:0 (Hashtbl.find_opt received dst)))
        transfers)
    plan;
  let of_tbl tbl c = Option.value ~default:0 (Hashtbl.find_opt tbl c) in
  (of_tbl sent, of_tbl received)

let stray_endpoints ~subject group (plan : Schedule.t) =
  let in_group c = List.mem c group in
  List.concat_map
    (fun transfers ->
      List.filter_map
        (fun { Schedule.src; dst; bytes = _ } ->
          if in_group src && in_group dst then None
          else
            Some
              (Diagnostic.error ~rule:"NOC-BYTES" ~subject
                 "transfer chip %d -> chip %d leaves the declared group" src dst))
        transfers)
    plan

let expect ~subject ~what ~chip ~got ~want =
  if got = want then []
  else
    [
      Diagnostic.error ~rule:"NOC-BYTES" ~subject
        "chip %d %s %d B, expected %d B" chip what got want;
    ]

let conservation ~subject coll (plan : Schedule.t) =
  let sent, received = tally plan in
  let peers root group = List.filter (( <> ) root) group in
  match coll with
  | Raw -> []
  | Reduce { root; group; bytes } ->
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"delivers to the root" ~chip:root ~got:(received root)
        ~want:((List.length group - 1) * bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"injects its partial of" ~chip:p ~got:(sent p)
            ~want:bytes)
        (peers root group)
  | Broadcast { root; group; bytes } ->
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"fans out" ~chip:root ~got:(sent root)
        ~want:((List.length group - 1) * bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"takes delivery of" ~chip:p ~got:(received p)
            ~want:bytes)
        (peers root group)
  | All_reduce { group; bytes } ->
    (* Reference shape: reduce to the lowest chip, then broadcast back. *)
    let root = List.fold_left min max_int group in
    let k = List.length group in
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"merges" ~chip:root ~got:(received root)
        ~want:((k - 1) * bytes)
    @ expect ~subject ~what:"fans out" ~chip:root ~got:(sent root)
        ~want:((k - 1) * bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"injects its partial of" ~chip:p ~got:(sent p)
            ~want:bytes
          @ expect ~subject ~what:"takes delivery of" ~chip:p ~got:(received p)
              ~want:bytes)
        (peers root group)
  | All_gather { group; shard_bytes } ->
    let k = List.length group in
    stray_endpoints ~subject group plan
    @ List.concat_map
        (fun c ->
          expect ~subject ~what:"forwards" ~chip:c ~got:(sent c)
            ~want:((k - 1) * shard_bytes)
          @ expect ~subject ~what:"collects" ~chip:c ~got:(received c)
              ~want:((k - 1) * shard_bytes))
        group
  | Scatter { root; group; shard_bytes } ->
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"scatters" ~chip:root ~got:(sent root)
        ~want:((List.length group - 1) * shard_bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"takes delivery of" ~chip:p ~got:(received p)
            ~want:shard_bytes)
        (peers root group)

let canonical_plan = function
  | Reduce { root; group; bytes } -> Some (Schedule.reduce ~root ~group ~bytes)
  | Broadcast { root; group; bytes } ->
    Some (Schedule.broadcast ~root ~group ~bytes)
  | All_reduce { group; bytes } -> Some (Schedule.all_reduce ~group ~bytes)
  | All_gather { group; shard_bytes } ->
    Some (Schedule.all_gather ~group ~shard_bytes)
  | Scatter { root; group; shard_bytes } ->
    Some (Schedule.scatter ~root ~group ~shard_bytes)
  | Raw -> None

(* Execution cross-check: byte conservation is a whole-plan tally, so a plan
   can move the right amounts yet order them so receivers merge the wrong
   operands.  Running the plan on random vectors and diffing against the
   mathematical sum catches exactly that class. *)
let execution ?(seed = 7) ~subject coll (plan : Schedule.t) =
  match coll with
  | All_reduce { group; _ } -> (
    let rng = Hnlpu_util.Rng.create seed in
    let vals =
      List.map (fun c -> (c, Hnlpu_tensor.Vec.gaussian rng 8)) group
    in
    let expected = Collective.sum vals in
    match Schedule.run_all_reduce ~plan ~group vals with
    | exception Invalid_argument msg ->
      [
        Diagnostic.error ~rule:"NOC-EXEC" ~subject
          "plan is not executable as an all-reduce: %s" msg;
      ]
    | results -> (
      let off =
        List.filter_map
          (fun (c, v) ->
            let diff = Hnlpu_tensor.Vec.max_abs_diff v expected in
            if diff > 1e-9 then Some (c, diff) else None)
          results
      in
      match off with
      | [] ->
        [
          Diagnostic.info ~rule:"NOC-EXEC" ~subject
            "executed on random vectors: every chip ends with the \
             mathematical sum";
        ]
      | _ ->
        List.map
          (fun (c, diff) ->
            Diagnostic.error ~rule:"NOC-EXEC" ~subject
              "executing the plan leaves chip %d off the mathematical sum \
               by %g — the bytes balance but the values are wrong"
              c diff)
          off))
  | _ -> []

let makespan_budget = 1.1

let makespan ?link ~subject coll (plan : Schedule.t) =
  match canonical_plan coll with
  | None -> []
  | Some canonical ->
    let actual = Schedule.makespan ?link plan in
    let expected = Schedule.makespan ?link canonical in
    if expected > 0.0 && actual > makespan_budget *. expected then
      [
        Diagnostic.warning ~rule:"NOC-MAKESPAN" ~subject
          "plan makespan %.3g us is %.0f%% of the canonical schedule's \
           %.3g us (budget %.0f%%)"
          (actual *. 1e6)
          (100.0 *. actual /. expected)
          (expected *. 1e6)
          (100.0 *. makespan_budget);
      ]
    else
      [
        Diagnostic.info ~rule:"NOC-MAKESPAN" ~subject
          "makespan %.3g us within %.0f%% of the canonical schedule"
          (actual *. 1e6)
          (100.0 *. makespan_budget);
      ]

let check ?(dynamic = true) ~subject coll plan =
  let static =
    links ~subject plan @ contention ~subject plan
    @ conservation ~subject coll plan
  in
  let static =
    if static = [] then
      [
        Diagnostic.info ~rule:"NOC-BYTES" ~subject
          "%d step(s), %d transfer(s), %d B moved — links, ports and byte \
           conservation clean"
          (List.length plan)
          (Schedule.transfer_count plan)
          (Schedule.total_bytes plan);
      ]
    else static
  in
  static
  @ (if dynamic then execution ~subject coll plan else [])
  @ makespan ~subject coll plan
