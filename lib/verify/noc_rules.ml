open Hnlpu_noc

type collective =
  | Reduce of { root : Topology.chip; group : Topology.chip list; bytes : int }
  | Broadcast of { root : Topology.chip; group : Topology.chip list; bytes : int }
  | All_reduce of { group : Topology.chip list; bytes : int }
  | All_gather of { group : Topology.chip list; shard_bytes : int }
  | Scatter of { root : Topology.chip; group : Topology.chip list; shard_bytes : int }
  | Raw

let links ~subject (plan : Schedule.t) =
  List.concat
    (List.mapi
       (fun step transfers ->
         List.filter_map
           (fun { Schedule.src; dst; bytes = _ } ->
             if Topology.valid src && Topology.valid dst && Topology.connected src dst
             then None
             else
               Some
                 (Diagnostic.error ~rule:"NOC-LINK" ~subject
                    "step %d: chip %d -> chip %d is not a fabric link (row %s, \
                     col %s)" step src dst
                    (if Topology.valid src && Topology.valid dst
                       && Topology.row_of src = Topology.row_of dst
                     then "shared" else "distinct")
                    (if Topology.valid src && Topology.valid dst
                       && Topology.col_of src = Topology.col_of dst
                     then "shared" else "distinct")))
           transfers)
       plan)

let contention ~subject (plan : Schedule.t) =
  List.concat
    (List.mapi
       (fun step transfers ->
         let tx = Hashtbl.create 16 and rx = Hashtbl.create 16 in
         List.iter
           (fun { Schedule.src; dst; bytes = _ } ->
             Hashtbl.replace tx (src, dst)
               (1 + Option.value ~default:0 (Hashtbl.find_opt tx (src, dst)));
             Hashtbl.replace rx dst
               (1 + Option.value ~default:0 (Hashtbl.find_opt rx dst)))
           transfers;
         let tx_errors =
           Hashtbl.fold
             (fun (src, dst) n acc ->
               if n > 1 then
                 Diagnostic.error ~rule:"NOC-PORT" ~subject
                   "step %d: chip %d drives the link to chip %d with %d \
                    concurrent transfers (one TX stream per link)" step src dst n
                 :: acc
               else acc)
             tx []
         in
         let rx_errors =
           Hashtbl.fold
             (fun dst n acc ->
               if Topology.valid dst && n > Topology.degree dst then
                 Diagnostic.error ~rule:"NOC-PORT" ~subject
                   "step %d: chip %d merges %d incoming streams (degree %d)"
                   step dst n (Topology.degree dst)
                 :: acc
               else acc)
             rx []
         in
         List.sort compare tx_errors @ List.sort compare rx_errors)
       plan)

(* Byte accounting over the whole plan: how much each chip injects and
   takes delivery of, regardless of step structure. *)
let tally (plan : Schedule.t) =
  let sent = Hashtbl.create 16 and received = Hashtbl.create 16 in
  List.iter
    (fun transfers ->
      List.iter
        (fun { Schedule.src; dst; bytes } ->
          Hashtbl.replace sent src
            (bytes + Option.value ~default:0 (Hashtbl.find_opt sent src));
          Hashtbl.replace received dst
            (bytes + Option.value ~default:0 (Hashtbl.find_opt received dst)))
        transfers)
    plan;
  let of_tbl tbl c = Option.value ~default:0 (Hashtbl.find_opt tbl c) in
  (of_tbl sent, of_tbl received)

let stray_endpoints ~subject group (plan : Schedule.t) =
  let in_group c = List.mem c group in
  List.concat_map
    (fun transfers ->
      List.filter_map
        (fun { Schedule.src; dst; bytes = _ } ->
          if in_group src && in_group dst then None
          else
            Some
              (Diagnostic.error ~rule:"NOC-BYTES" ~subject
                 "transfer chip %d -> chip %d leaves the declared group" src dst))
        transfers)
    plan

let expect ~subject ~what ~chip ~got ~want =
  if got = want then []
  else
    [
      Diagnostic.error ~rule:"NOC-BYTES" ~subject
        "chip %d %s %d B, expected %d B" chip what got want;
    ]

let conservation ~subject coll (plan : Schedule.t) =
  let sent, received = tally plan in
  let peers root group = List.filter (( <> ) root) group in
  match coll with
  | Raw -> []
  | Reduce { root; group; bytes } ->
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"delivers to the root" ~chip:root ~got:(received root)
        ~want:((List.length group - 1) * bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"injects its partial of" ~chip:p ~got:(sent p)
            ~want:bytes)
        (peers root group)
  | Broadcast { root; group; bytes } ->
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"fans out" ~chip:root ~got:(sent root)
        ~want:((List.length group - 1) * bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"takes delivery of" ~chip:p ~got:(received p)
            ~want:bytes)
        (peers root group)
  | All_reduce { group; bytes } ->
    (* Reference shape: reduce to the lowest chip, then broadcast back. *)
    let root = List.fold_left min max_int group in
    let k = List.length group in
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"merges" ~chip:root ~got:(received root)
        ~want:((k - 1) * bytes)
    @ expect ~subject ~what:"fans out" ~chip:root ~got:(sent root)
        ~want:((k - 1) * bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"injects its partial of" ~chip:p ~got:(sent p)
            ~want:bytes
          @ expect ~subject ~what:"takes delivery of" ~chip:p ~got:(received p)
              ~want:bytes)
        (peers root group)
  | All_gather { group; shard_bytes } ->
    let k = List.length group in
    stray_endpoints ~subject group plan
    @ List.concat_map
        (fun c ->
          expect ~subject ~what:"forwards" ~chip:c ~got:(sent c)
            ~want:((k - 1) * shard_bytes)
          @ expect ~subject ~what:"collects" ~chip:c ~got:(received c)
              ~want:((k - 1) * shard_bytes))
        group
  | Scatter { root; group; shard_bytes } ->
    stray_endpoints ~subject group plan
    @ expect ~subject ~what:"scatters" ~chip:root ~got:(sent root)
        ~want:((List.length group - 1) * shard_bytes)
    @ List.concat_map
        (fun p ->
          expect ~subject ~what:"takes delivery of" ~chip:p ~got:(received p)
            ~want:shard_bytes)
        (peers root group)

let check ~subject coll plan =
  let ds =
    links ~subject plan @ contention ~subject plan
    @ conservation ~subject coll plan
  in
  if ds = [] then
    [
      Diagnostic.info ~rule:"NOC-BYTES" ~subject
        "%d step(s), %d transfer(s), %d B moved — links, ports and byte \
         conservation clean"
        (List.length plan)
        (Schedule.transfer_count plan)
        (List.fold_left
           (fun acc step ->
             List.fold_left (fun a { Schedule.bytes; _ } -> a + bytes) acc step)
           0 plan);
    ]
  else ds
