(** Whole-design static signoff: bundle compiled artifacts — per-chip ME
    netlists, collective plans, the stage mapping, buffer budgets — and run
    every rule family over them (paper §3.2's DRC/LVS gate generalized to
    the whole system).

    [hnlpu check] builds {!reference} (the gpt-oss 120B design with one
    representative neuron bank per chip), runs {!check}, prints the report
    and exits by severity.  {!fixture} returns the same design with one
    seeded violation per rule ID — the negative controls proving each rule
    actually fires. *)

type chip_design = {
  chip : Hnlpu_noc.Topology.chip;
  netlist : Hnlpu_litho.Hn_compiler.netlist;
  schematic : Hnlpu_neuron.Gemv.t;
}

type design = {
  config : Hnlpu_model.Config.t;
  chips : chip_design list;          (** One ME netlist per fabric chip. *)
  plans : (string * Noc_rules.collective * Hnlpu_noc.Schedule.t) list;
  stage_map : System_rules.stage_slot list;
  claimed_slots : int;               (** What the scheduler batches against. *)
  max_context : int;                 (** Worst case the buffers must absorb. *)
  power_scale : float;               (** Operating-point power multiplier
                                         (1.0 = the Table 1 floorplan). *)
  coolant_c : float;                 (** Facility coolant temperature. *)
  execution : Hnlpu_system.Execution.t;
                                     (** Declared execution environment,
                                         linted by DET-LINT. *)
}

val reference : ?seed:int -> ?bank_in:int -> ?bank_out:int -> unit -> design
(** The gpt-oss 120B reference design: 16 chips each carrying a compiled
    [bank_in x bank_out] (default 48x6) representative neuron bank, the
    row/column collective plans the dataflow uses, the canonical stage
    map, and a 64K worst-case context.  Signoff-clean by construction. *)

val check : ?dynamic:bool -> design -> Diagnostic.t list
(** The full rule set: per-chip congestion/DRC/LVS, cross-chip mask
    uniformity, per-plan link/port/byte/execution/makespan checks, the
    {!Static} dataflow passes (deadlock, def-use, buffer liveness,
    determinism lint), pipeline mapping, weight partition, buffer budget,
    scheduler slots, and the thermal operating point.  [dynamic:false]
    (default [true]) skips the NOC-EXEC value execution — the
    static-only pre-admission mode behind [hnlpu check --static]. *)

val rules : string list
(** Every stable rule ID, for [--fixture] enumeration and self-tests. *)

val expected_severity : string -> Diagnostic.severity
(** The severity the rule's {!fixture} must trigger: [Warning] for
    [NOC-MAKESPAN] (a slow-but-correct plan still ships), [Error] for
    everything else — including all four static dataflow families
    ([NOC-DEADLOCK], [NOC-DEFUSE], [BUF-LIVE], [DET-LINT]). *)

val fixture : string -> design
(** [fixture rule] is {!reference} with one seeded violation of [rule].
    Raises [Invalid_argument] for an unknown rule ID. *)
