(** NoC signoff rules over {!Hnlpu_noc.Schedule} collective plans.

    Rule IDs:
    - [NOC-LINK]  — every transfer must ride an existing row/column link
      of the 4x4 fabric ({!Hnlpu_noc.Topology.connected}).
    - [NOC-PORT]  — per-step port contention: one TX stream per directed
      link, and no chip merges more incoming streams than its degree.
    - [NOC-BYTES] — byte conservation for the reference collective
      shapes: a reduce must deliver every peer's full partial to the
      root, a broadcast the payload to every peer, an all-gather all
      [k-1] shards to every member, etc.  Plans touching chips outside
      the declared group are also flagged here. *)

(** What a plan claims to compute; conservation is checked against the
    reference shapes {!Hnlpu_noc.Schedule} emits (star reduce/broadcast,
    reduce-then-broadcast all-reduce, ring all-gather). [Raw] plans get
    link and contention checks only. *)
type collective =
  | Reduce of {
      root : Hnlpu_noc.Topology.chip;
      group : Hnlpu_noc.Topology.chip list;
      bytes : int;
    }
  | Broadcast of {
      root : Hnlpu_noc.Topology.chip;
      group : Hnlpu_noc.Topology.chip list;
      bytes : int;
    }
  | All_reduce of { group : Hnlpu_noc.Topology.chip list; bytes : int }
  | All_gather of { group : Hnlpu_noc.Topology.chip list; shard_bytes : int }
  | Scatter of {
      root : Hnlpu_noc.Topology.chip;
      group : Hnlpu_noc.Topology.chip list;
      shard_bytes : int;
    }
  | Raw

val links : subject:string -> Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** [NOC-LINK], with the step index and both endpoints. *)

val contention : subject:string -> Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** [NOC-PORT]: same-step TX duplicates on one directed link, RX merges
    beyond the chip's degree. *)

val conservation :
  subject:string -> collective -> Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** [NOC-BYTES] against the declared collective. *)

val check :
  subject:string -> collective -> Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** All three rule families, plus an [Info] plan summary when clean. *)
