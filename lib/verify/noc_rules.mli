(** NoC signoff rules over {!Hnlpu_noc.Schedule} collective plans.

    Rule IDs:
    - [NOC-LINK]  — every transfer must ride an existing row/column link
      of the 4x4 fabric ({!Hnlpu_noc.Topology.connected}).
    - [NOC-PORT]  — per-step port contention: one TX stream per directed
      link, and no chip merges more incoming streams than its degree.
    - [NOC-BYTES] — byte conservation for the reference collective
      shapes: a reduce must deliver every peer's full partial to the
      root, a broadcast the payload to every peer, an all-gather all
      [k-1] shards to every member, etc.  Plans touching chips outside
      the declared group are also flagged here.
    - [NOC-EXEC] — execution cross-check: run the plan on random vectors
      with {!Hnlpu_noc.Schedule.run_all_reduce} and diff every chip's
      result against the mathematical sum.  Catches plans whose bytes
      balance but whose transfer ordering computes the wrong value —
      invisible to [NOC-BYTES] by construction.
    - [NOC-MAKESPAN] — [Warning] when the plan's makespan exceeds the
      canonical schedule's for the declared collective by more than 10%. *)

(** What a plan claims to compute; conservation is checked against the
    reference shapes {!Hnlpu_noc.Schedule} emits (star reduce/broadcast,
    reduce-then-broadcast all-reduce, ring all-gather). [Raw] plans get
    link and contention checks only. *)
type collective =
  | Reduce of {
      root : Hnlpu_noc.Topology.chip;
      group : Hnlpu_noc.Topology.chip list;
      bytes : int;
    }
  | Broadcast of {
      root : Hnlpu_noc.Topology.chip;
      group : Hnlpu_noc.Topology.chip list;
      bytes : int;
    }
  | All_reduce of { group : Hnlpu_noc.Topology.chip list; bytes : int }
  | All_gather of { group : Hnlpu_noc.Topology.chip list; shard_bytes : int }
  | Scatter of {
      root : Hnlpu_noc.Topology.chip;
      group : Hnlpu_noc.Topology.chip list;
      shard_bytes : int;
    }
  | Raw

val links : subject:string -> Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** [NOC-LINK], with the step index and both endpoints. *)

val contention : subject:string -> Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** [NOC-PORT]: same-step TX duplicates on one directed link, RX merges
    beyond the chip's degree. *)

val conservation :
  subject:string -> collective -> Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** [NOC-BYTES] against the declared collective. *)

val canonical_plan : collective -> Hnlpu_noc.Schedule.t option
(** The {!Hnlpu_noc.Schedule} reference plan for the declared collective
    ([None] for [Raw]) — the makespan baseline. *)

val execution :
  ?seed:int -> subject:string -> collective -> Hnlpu_noc.Schedule.t ->
  Diagnostic.t list
(** [NOC-EXEC]: execute the plan on seeded random vectors (all-reduce
    collectives only — empty otherwise) and require every chip to end with
    {!Hnlpu_noc.Collective.sum}.  A plan the executor rejects
    ([Invalid_argument]) is an error too. *)

val makespan :
  ?link:Hnlpu_noc.Link.t -> subject:string -> collective ->
  Hnlpu_noc.Schedule.t -> Diagnostic.t list
(** [NOC-MAKESPAN]: [Warning] beyond 110% of {!canonical_plan}'s makespan,
    [Info] otherwise; empty for [Raw]. *)

val check :
  ?dynamic:bool -> subject:string -> collective -> Hnlpu_noc.Schedule.t ->
  Diagnostic.t list
(** All rule families: links/ports/conservation (with an [Info] plan
    summary when those are clean), then the execution and makespan
    cross-checks.  [dynamic:false] (default [true]) skips the [NOC-EXEC]
    value execution — the static-only pre-admission mode of
    [hnlpu check --static]. *)
