(** Typed signoff diagnostics.

    Every rule in {!Netlist_rules}, {!Noc_rules} and {!System_rules} emits
    values of this one type: a stable rule ID (["ME-TRACK"], ["NOC-LINK"],
    ...), a severity, the artifact it concerns, and a human message.  The
    collection renders as a human report, as machine-readable JSON, and as
    a severity-based exit code — the contract the [hnlpu check] CLI gate
    and CI enforce. *)

type severity = Info | Warning | Error

type t = {
  rule : string;       (** Stable rule ID, e.g. "ME-TRACK". *)
  severity : severity;
  subject : string;    (** The artifact checked, e.g. "chip03". *)
  message : string;
}

val make :
  rule:string -> severity:severity -> subject:string ->
  ('a, unit, string, t) format4 -> 'a

val error : rule:string -> subject:string -> ('a, unit, string, t) format4 -> 'a
val warning : rule:string -> subject:string -> ('a, unit, string, t) format4 -> 'a
val info : rule:string -> subject:string -> ('a, unit, string, t) format4 -> 'a

val severity_label : severity -> string
(** "ERROR" / "WARN" / "INFO". *)

val rank : severity -> int
(** Info 0, Warning 1, Error 2 — the comparison order used by gates that
    accept a minimum severity. *)

val count : severity -> t list -> int

val has_rule : ?min_severity:severity -> string -> t list -> bool
(** Is a diagnostic with this rule ID (at least this severe, default
    [Info]) present? *)

val worst : t list -> severity option
(** None for an empty list. *)

val exit_code : t list -> int
(** 0 when nothing is worse than [Info], 1 when the worst is a [Warning],
    2 when any [Error] is present — the [hnlpu check] process exit code. *)

val to_string : t -> string
(** One line: [\[ERROR ME-TRACK\] chip03: ...]. *)

val report : ?show_info:bool -> t list -> string
(** Human report: one line per diagnostic (errors first) plus a summary
    tally.  [show_info] defaults to [true]. *)

val normalize : t list -> t list
(** Stable order (errors first, then rule/subject/message) with exact
    [(rule, subject, message)] duplicates deduplicated — applied by
    {!to_json} so repeated checks of one design export byte-identically. *)

val to_json : t list -> string
(** Machine-readable rendering: a JSON array of
    [{"rule":..,"severity":..,"subject":..,"message":..}] objects, in
    {!normalize} order. *)
