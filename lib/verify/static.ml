open Hnlpu_noc
open Hnlpu_chip
open Hnlpu_model
open Hnlpu_system

(* --- Collective semantics -------------------------------------------------- *)

(* What a declared collective means to the dataflow analyses: who holds a
   value before step 0, how receivers merge, which chips must end with
   which contribution multiset, and whose final state a delivery must reach
   to count as live.  [Raw] plans declare no payload semantics, so only the
   deadlock analysis (with every endpoint assumed a producer) applies. *)
type semantics = {
  producers : Topology.chip list;
  mode : int -> Schedule.merge_mode;
  expected : (Topology.chip * (Topology.chip * int) list) list;
  required : Topology.chip list;
}

let full_set group = List.map (fun c -> (c, 1)) (List.sort_uniq compare group)

let semantics_of = function
  | Noc_rules.Raw -> None
  | Noc_rules.Reduce { root; group; _ } ->
    Some
      {
        producers = group;
        mode = (fun _ -> Schedule.Accumulate);
        expected = [ (root, full_set group) ];
        required = [ root ];
      }
  | Noc_rules.Broadcast { root; group; _ } ->
    let peers = List.filter (( <> ) root) group in
    Some
      {
        producers = [ root ];
        mode = (fun _ -> Schedule.Overwrite);
        expected = List.map (fun p -> (p, [ (root, 1) ])) peers;
        required = peers;
      }
  | Noc_rules.All_reduce { group; _ } ->
    Some
      {
        producers = group;
        (* Reduce phase first, broadcast phases after — the same split
           {!Schedule.run_all_reduce} applies. *)
        mode = (fun s -> if s = 0 then Schedule.Accumulate else Schedule.Overwrite);
        expected = List.map (fun c -> (c, full_set group)) group;
        required = group;
      }
  | Noc_rules.All_gather { group; _ } ->
    Some
      {
        producers = group;
        mode = (fun _ -> Schedule.Union);
        expected = List.map (fun c -> (c, full_set group)) group;
        required = group;
      }
  | Noc_rules.Scatter { root; group; _ } ->
    let peers = List.filter (( <> ) root) group in
    Some
      {
        producers = [ root ];
        mode = (fun _ -> Schedule.Overwrite);
        expected = List.map (fun p -> (p, [ (root, 1) ])) peers;
        required = peers;
      }

(* --- NOC-DEADLOCK ---------------------------------------------------------- *)

(* Transfers within a step start together, but a chip that holds no value
   yet can only forward what a same-step delivery brings it (cut-through).
   Each such transfer waits on every same-step delivery into its source; a
   cycle in that wait-for graph can never make progress.  Chips already
   written by an earlier step (or producers) wait on nothing, which is why
   the canonical ring all-gather — everyone a producer — is clean. *)
let deadlock ~subject coll (plan : Schedule.t) =
  let producers =
    match semantics_of coll with
    | Some s -> s.producers
    | None -> Schedule.endpoints plan (* raw: no one starts empty *)
  in
  let written = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace written c ()) producers;
  let cycles = ref [] in
  List.iteri
    (fun s step ->
      let transfers = Array.of_list step in
      let n = Array.length transfers in
      let incoming_of chip =
        List.filter_map
          (fun j ->
            if transfers.(j).Schedule.dst = chip then Some j else None)
          (List.init n Fun.id)
      in
      let waits_on =
        Array.map
          (fun { Schedule.src; _ } ->
            if Hashtbl.mem written src then [] else incoming_of src)
          transfers
      in
      (* DFS cycle detection; color 1 = on stack, 2 = done. *)
      let color = Array.make n 0 in
      let cycle = ref None in
      let rec visit stack i =
        if !cycle = None then
          if color.(i) = 1 then begin
            let rec take acc = function
              | [] -> acc
              | j :: rest -> if j = i then j :: acc else take (j :: acc) rest
            in
            cycle := Some (take [] stack)
          end
          else if color.(i) = 0 then begin
            color.(i) <- 1;
            List.iter (visit (i :: stack)) waits_on.(i);
            color.(i) <- 2
          end
      in
      for i = 0 to n - 1 do
        visit [] i
      done;
      (match !cycle with
      | None -> ()
      | Some c -> cycles := (s, List.map (fun i -> transfers.(i)) c) :: !cycles);
      List.iter
        (fun { Schedule.dst; _ } -> Hashtbl.replace written dst ())
        step)
    plan;
  match List.rev !cycles with
  | [] ->
    [
      Diagnostic.info ~rule:"NOC-DEADLOCK" ~subject
        "channel-dependency graph is acyclic across %d step(s): every \
         forwarding chain is grounded in a written chip"
        (List.length plan);
    ]
  | cycles ->
    List.map
      (fun (s, cyc) ->
        let path =
          String.concat " waits on "
            (List.map
               (fun { Schedule.src; dst; _ } ->
                 Printf.sprintf "%d->%d" src dst)
               (cyc @ [ List.hd cyc ]))
        in
        Diagnostic.error ~rule:"NOC-DEADLOCK" ~subject
          "step %d: circular same-step dependency — %s; no transfer in the \
           cycle can ever start"
          s path)
      cycles

(* --- NOC-DEFUSE ------------------------------------------------------------ *)

let multiset_to_string ms =
  "{"
  ^ String.concat ", "
      (List.map
         (fun (o, n) ->
           if n = 1 then string_of_int o else Printf.sprintf "%d x%d" o n)
         ms)
  ^ "}"

(* got/want are sorted (origin, count) lists. *)
let multiset_diff ~got ~want =
  let count ms o = Option.value ~default:0 (List.assoc_opt o ms) in
  let origins = List.sort_uniq compare (List.map fst got @ List.map fst want) in
  let missing =
    List.filter_map
      (fun o ->
        let d = count want o - count got o in
        if d > 0 then Some (o, d) else None)
      origins
  in
  let extra =
    List.filter_map
      (fun o ->
        let d = count got o - count want o in
        if d > 0 then Some (o, d) else None)
      origins
  in
  (missing, extra)

let defuse ~subject coll (plan : Schedule.t) =
  match semantics_of coll with
  | None ->
    [
      Diagnostic.info ~rule:"NOC-DEFUSE" ~subject
        "raw plan declares no payload semantics — def-use analysis skipped";
    ]
  | Some { producers; mode; expected; required } ->
    let sym = Schedule.run_symbolic ~producers ~mode plan in
    let reads =
      List.map
        (fun d ->
          Diagnostic.error ~rule:"NOC-DEFUSE" ~subject
            "step %d: chip %d forwards to chip %d before anything is \
             written to it (read of a never-written buffer)"
            d.Schedule.d_step d.Schedule.d_src d.Schedule.d_dst)
        sym.Schedule.unwritten_reads
    in
    let races =
      List.map
        (fun (s, dst, writers) ->
          Diagnostic.error ~rule:"NOC-DEFUSE" ~subject
            "step %d: %d same-step writes race for chip %d's slot — \
             last-writer-wins order is undefined"
            s writers dst)
        sym.Schedule.overwrite_races
    in
    let finals =
      List.concat_map
        (fun (chip, want) ->
          let got =
            Option.value ~default:[] (List.assoc_opt chip sym.Schedule.finals)
          in
          if got = want then []
          else
            let missing, extra = multiset_diff ~got ~want in
            let part label = function
              | [] -> ""
              | ms -> Printf.sprintf "; %s %s" label (multiset_to_string ms)
            in
            [
              Diagnostic.error ~rule:"NOC-DEFUSE" ~subject
                "chip %d ends with contributions %s, expected %s%s%s" chip
                (multiset_to_string got) (multiset_to_string want)
                (part "missing" missing) (part "duplicated" extra);
            ])
        expected
    in
    let live =
      List.sort_uniq compare
        (List.concat_map
           (fun chip ->
             Option.value ~default:[] (List.assoc_opt chip sym.Schedule.live))
           required)
    in
    let dead =
      List.filter
        (fun d -> not (List.mem d.Schedule.d_index live))
        sym.Schedule.deliveries
    in
    let dead_warnings =
      List.map
        (fun d ->
          Diagnostic.warning ~rule:"NOC-DEFUSE" ~subject
            "step %d: transfer chip %d -> chip %d (%d B) reaches no required \
             chip's final value — dead transfer"
            d.Schedule.d_step d.Schedule.d_src d.Schedule.d_dst
            d.Schedule.d_bytes)
        dead
    in
    (match reads @ races @ finals @ dead_warnings with
    | [] ->
      [
        Diagnostic.info ~rule:"NOC-DEFUSE" ~subject
          "def-use clean: %d deliveries all live; every required chip ends \
           with exactly the declared contributions"
          (List.length sym.Schedule.deliveries);
      ]
    | ds -> ds)

(* --- BUF-LIVE -------------------------------------------------------------- *)

let headroom_bytes ?(buf = Attention_buffer.hnlpu) (config : Config.t)
    ~max_context =
  let cap = Attention_buffer.capacity_bytes buf in
  let per_pos = Attention_buffer.kv_bytes_per_position_per_chip config in
  let worst_positions = (max_context + Topology.rows - 1) / Topology.rows in
  let resident = min (per_pos * worst_positions) cap in
  cap - resident

let buffer_liveness ?buf ~subject ~(config : Config.t) ~max_context
    (plan : Schedule.t) =
  let headroom = headroom_bytes ?buf config ~max_context in
  (* Per-chip static occupancy interval: the chip's working payload (the
     largest value it ever holds or sends) is live across the whole plan;
     each step adds RX staging for incoming transfers and TX staging for
     outgoing ones.  Peak = working + worst step. *)
  let working = Hashtbl.create 16 in
  let bump tbl c by =
    Hashtbl.replace tbl c (by + Option.value ~default:0 (Hashtbl.find_opt tbl c))
  in
  List.iter
    (List.iter
       (fun { Schedule.src; dst; bytes } ->
         let keep tbl c =
           Hashtbl.replace tbl c
             (max bytes (Option.value ~default:0 (Hashtbl.find_opt tbl c)))
         in
         keep working src;
         keep working dst))
    plan;
  let peak_staging = Hashtbl.create 16 in
  List.iter
    (fun step ->
      let staging = Hashtbl.create 16 in
      List.iter
        (fun { Schedule.src; dst; bytes } ->
          bump staging src bytes;
          bump staging dst bytes)
        step;
      Hashtbl.iter
        (fun c b ->
          let cur = Option.value ~default:0 (Hashtbl.find_opt peak_staging c) in
          if b > cur then Hashtbl.replace peak_staging c b)
        staging)
    plan;
  let peak_chip, peak =
    Hashtbl.fold
      (fun c w ((_, best) as acc) ->
        let p = w + Option.value ~default:0 (Hashtbl.find_opt peak_staging c) in
        if p > best then (c, p) else acc)
      working (-1, 0)
  in
  let mb b = float_of_int b /. 1e6 in
  if peak_chip < 0 then
    [
      Diagnostic.info ~rule:"BUF-LIVE" ~subject
        "plan moves no payload; %.2f MB of post-KV headroom at context %d"
        (mb headroom) max_context;
    ]
  else if peak > headroom then
    [
      Diagnostic.error ~rule:"BUF-LIVE" ~subject
        "chip %d peaks at %.2f MB of live payload + NOC staging, but only \
         %.2f MB of attention buffer is left after worst-case KV at context \
         %d — guaranteed overflow"
        peak_chip (mb peak) (mb headroom) max_context;
    ]
  else if peak * 10 > headroom * 9 then
    [
      Diagnostic.warning ~rule:"BUF-LIVE" ~subject
        "chip %d peaks at %.2f MB — within 10%% of the %.2f MB headroom \
         left after worst-case KV at context %d"
        peak_chip (mb peak) (mb headroom) max_context;
    ]
  else
    [
      Diagnostic.info ~rule:"BUF-LIVE" ~subject
        "peak static occupancy %.3f MB (chip %d) against %.2f MB of \
         post-KV headroom at context %d"
        (mb peak) peak_chip (mb headroom) max_context;
    ]

(* --- DET-LINT -------------------------------------------------------------- *)

let determinism ~subject (e : Execution.t) =
  let seed =
    match e.Execution.workload_seed with
    | Execution.Fixed _ -> []
    | Execution.Wall_clock ->
      [
        Diagnostic.error ~rule:"DET-LINT" ~subject
          "workload RNG is seeded from the wall clock — replays diverge; \
           pin workload-seed to an integer";
      ]
  in
  let merge =
    match e.Execution.sink_merge with
    | Execution.Rate_order -> []
    | Execution.Completion_order ->
      [
        Diagnostic.error ~rule:"DET-LINT" ~subject
          "telemetry sinks merge in worker-completion order — sweep output \
           reorders run to run; merge per-rate sinks in rate order";
      ]
  in
  let export =
    match e.Execution.export_order with
    | Execution.Sorted -> []
    | Execution.Hash_order ->
      [
        Diagnostic.error ~rule:"DET-LINT" ~subject
          "exported artifacts iterate a hash table — byte layout depends on \
           insertion history; sort keys before export";
      ]
  in
  match seed @ merge @ export with
  | [] ->
    [
      Diagnostic.info ~rule:"DET-LINT" ~subject
        "deterministic execution config (%s); results are domain-width \
         independent, so an unpinned pool is safe"
        (Execution.describe e);
    ]
  | ds -> ds

(* --- Per-plan driver ------------------------------------------------------- *)

let check_plan ?buf ~subject ~config ~max_context coll plan =
  deadlock ~subject coll plan
  @ defuse ~subject coll plan
  @ buffer_liveness ?buf ~subject ~config ~max_context plan
