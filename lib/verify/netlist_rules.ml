open Hnlpu_litho

let wire_name (w : Hn_compiler.wire) = Printf.sprintf "n%d.i%d" w.neuron w.input

let wires_name ws = String.concat ", " (List.map wire_name ws)

let congestion ?tracks_per_layer ~subject (n : Hn_compiler.netlist) =
  let limit =
    match tracks_per_layer with
    | Some l -> l
    | None -> Hn_compiler.max_tracks_per_layer n
  in
  (* Congestion is track demand: how many distinct tracks a layer needs.
     (Two wires on one track are a short — ME-TRACK's business, not ours.) *)
  let tracks = Hashtbl.create 1024 and top = Hashtbl.create 8 in
  List.iter
    (fun (w : Hn_compiler.wire) ->
      Hashtbl.replace tracks (w.layer, w.track) ();
      Hashtbl.replace top w.layer
        (max w.track (Option.value ~default:(-1) (Hashtbl.find_opt top w.layer))))
    n.Hn_compiler.wires;
  let count = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (layer, _) () ->
      Hashtbl.replace count layer
        (1 + Option.value ~default:0 (Hashtbl.find_opt count layer)))
    tracks;
  let histogram =
    String.concat "  "
      (List.map
         (fun layer ->
           let c = Option.value ~default:0 (Hashtbl.find_opt count layer) in
           Printf.sprintf "%s:%d (%.0f%%)" layer c
             (100.0 *. float_of_int c /. float_of_int (max 1 limit)))
         (Array.to_list Hn_compiler.layers))
  in
  let errors =
    List.filter_map
      (fun layer ->
        let c = Option.value ~default:0 (Hashtbl.find_opt count layer) in
        if c > limit then
          Some
            (Diagnostic.error ~rule:"ME-CONGEST" ~subject
               "layer %s congested: %d tracks demanded of the %d-track window \
                (max track %d)"
               layer c limit
               (Option.value ~default:(-1) (Hashtbl.find_opt top layer)))
        else None)
      (Array.to_list Hn_compiler.layers)
  in
  errors
  @ [
      Diagnostic.info ~rule:"ME-CONGEST" ~subject
        "track utilization of the %d-track window: %s" limit histogram;
    ]

let drc ?tracks_per_layer ~subject n =
  List.map
    (function
      | Hn_compiler.Track_conflict (layer, track, ws) ->
        Diagnostic.error ~rule:"ME-TRACK" ~subject
          "%d wires short on %s track %d: %s" (List.length ws) layer track
          (wires_name ws)
      | Hn_compiler.Port_overflow (neuron, region, ws) ->
        Diagnostic.error ~rule:"ME-PORT" ~subject
          "neuron %d region %d: %d wires exceed the %d-port capacity (%s)"
          neuron region (List.length ws) n.Hn_compiler.region_capacity
          (wires_name ws)
      | Hn_compiler.Out_of_window w ->
        Diagnostic.error ~rule:"ME-WINDOW" ~subject
          "wire %s outside the routing window: layer %s, track %d" (wire_name w)
          w.Hn_compiler.layer w.Hn_compiler.track)
    (Hn_compiler.drc ?tracks_per_layer n)

let lvs ~subject (n : Hn_compiler.netlist) (g : Hnlpu_neuron.Gemv.t) =
  if
    n.Hn_compiler.in_features <> g.Hnlpu_neuron.Gemv.in_features
    || n.Hn_compiler.out_features <> g.Hnlpu_neuron.Gemv.out_features
  then
    [
      Diagnostic.error ~rule:"ME-LVS" ~subject
        "shape mismatch: netlist %dx%d vs schematic %dx%d"
        n.Hn_compiler.in_features n.Hn_compiler.out_features
        g.Hnlpu_neuron.Gemv.in_features g.Hnlpu_neuron.Gemv.out_features;
    ]
  else
    match Hn_compiler.extract_weights n with
    | exception Failure msg ->
      [
        Diagnostic.error ~rule:"ME-LVS" ~subject
          "netlist is not extractable: %s" msg;
      ]
    | extracted ->
      let mismatches = ref [] in
      Array.iteri
        (fun o row ->
          Array.iteri
            (fun i w ->
              if not (Hnlpu_fp4.Fp4.equal w extracted.(o).(i)) then
                mismatches := (o, i) :: !mismatches)
            row)
        g.Hnlpu_neuron.Gemv.weights;
      (match List.rev !mismatches with
      | [] ->
        [
          Diagnostic.info ~rule:"ME-LVS" ~subject
            "netlist reconstructs the schematic (%d wires)"
            (Hn_compiler.wire_count n);
        ]
      | ms ->
        let sample =
          String.concat ", "
            (List.map
               (fun (o, i) -> Printf.sprintf "n%d.i%d" o i)
               (List.filteri (fun k _ -> k < 3) ms))
        in
        [
          Diagnostic.error ~rule:"ME-LVS" ~subject
            "%d weight(s) differ between netlist and schematic (%s%s)"
            (List.length ms) sample
            (if List.length ms > 3 then ", ..." else "");
        ])

let mask_uniformity chips =
  match chips with
  | [] | [ _ ] -> []
  | (ref_subject, ref_n) :: rest ->
    let shape (n : Hn_compiler.netlist) =
      (n.Hn_compiler.in_features, n.Hn_compiler.out_features)
    in
    let prefab_diffs =
      List.concat_map
        (fun (subject, (n : Hn_compiler.netlist)) ->
          let d field got expected =
            Diagnostic.error ~rule:"ME-MASK" ~subject
              "%s differs from %s: %s vs %s — the prefab below M8 is one \
               shared mask set" field ref_subject got expected
          in
          let shp (a, b) = Printf.sprintf "%dx%d" a b in
          (if shape n <> shape ref_n then
             [ d "bank shape" (shp (shape n)) (shp (shape ref_n)) ]
           else [])
          @ (if n.Hn_compiler.region_capacity <> ref_n.Hn_compiler.region_capacity
             then
               [
                 d "region port capacity"
                   (string_of_int n.Hn_compiler.region_capacity)
                   (string_of_int ref_n.Hn_compiler.region_capacity);
               ]
             else [])
          @
          if Hn_compiler.wire_count n <> Hn_compiler.wire_count ref_n then
            [
              d "wire count"
                (string_of_int (Hn_compiler.wire_count n))
                (string_of_int (Hn_compiler.wire_count ref_n));
            ]
          else [])
        rest
    in
    let stray_wires =
      List.concat_map
        (fun (subject, (n : Hn_compiler.netlist)) ->
          List.filter_map
            (fun (w : Hn_compiler.wire) ->
              if Array.exists (( = ) w.Hn_compiler.layer) Hn_compiler.layers then
                None
              else
                Some
                  (Diagnostic.error ~rule:"ME-MASK" ~subject
                     "wire %s routed on shared-mask layer %s — only M8-M11 \
                      content may differ across chips" (wire_name w)
                     w.Hn_compiler.layer))
            n.Hn_compiler.wires)
        chips
    in
    let diffs = prefab_diffs @ stray_wires in
    if diffs = [] then
      [
        Diagnostic.info ~rule:"ME-MASK" ~subject:"design"
          "%d netlists share the prefab: only M8-M11 content differs"
          (List.length chips);
      ]
    else diffs

let check_chip ?tracks_per_layer ~subject n g =
  congestion ?tracks_per_layer ~subject n
  @ drc ?tracks_per_layer ~subject n
  @ lvs ~subject n g
