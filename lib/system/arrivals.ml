(* Streaming request-trace cursor.  See the .mli for the model catalog.

   Allocation discipline: [next] runs once per simulated request per
   shard, so it is registered as an ALLOC-HOT Leaf.  All mutable float
   state lives in the all-float sub-record [fl] (flat representation:
   float stores don't box); the current request's token counts and user
   id are immediate ints on the cursor itself.  Every random draw goes
   through the immediate-int SplitMix64 [Rng]. *)

open Hnlpu_util

type length_dist =
  | Geometric of { mean : int }
  | Pareto of { alpha : float; xmin : float; cap : int }

type process =
  | Poisson of { rate_per_s : float }
  | Diurnal of { mean_rate_per_s : float; amplitude : float; period_s : float }
  | Mmpp of { rates_per_s : float array; mean_dwell_s : float }

type spec = {
  process : process;
  prefill : length_dist;
  decode : length_dist;
  users : int;
}

let chat ~rate_per_s =
  {
    process = Poisson { rate_per_s };
    prefill = Geometric { mean = 128 };
    decode = Geometric { mean = 128 };
    users = 10_000;
  }

let mean_rate_per_s spec =
  match spec.process with
  | Poisson { rate_per_s } -> rate_per_s
  | Diurnal { mean_rate_per_s; _ } -> mean_rate_per_s
  (* Dwell times are iid across states and switching is uniform, so the
     stationary law is uniform and the long-run rate is the plain mean. *)
  | Mmpp { rates_per_s; _ } ->
      Array.fold_left ( +. ) 0.0 rates_per_s /. float (Array.length rates_per_s)

let with_mean_rate spec rate =
  if not (rate > 0.0) then invalid_arg "Arrivals.with_mean_rate: rate <= 0";
  let process =
    match spec.process with
    | Poisson _ -> Poisson { rate_per_s = rate }
    | Diurnal d -> Diurnal { d with mean_rate_per_s = rate }
    | Mmpp { rates_per_s; mean_dwell_s } ->
        let current = mean_rate_per_s spec in
        let k = rate /. current in
        Mmpp { rates_per_s = Array.map (fun r -> r *. k) rates_per_s; mean_dwell_s }
  in
  { spec with process }

let mean_tokens = function
  | Geometric { mean } -> float mean
  | Pareto { alpha; xmin; _ } ->
      if alpha <= 1.0 then infinity else alpha *. xmin /. (alpha -. 1.0)

(* All-float so stores into [now_s]/[dwell_until_s] are flat writes, not
   box allocations. *)
type fl = {
  mutable now_s : float;  (* process clock: candidate-arrival frontier *)
  mutable dwell_until_s : float;  (* MMPP: when the current state expires *)
}

(* The published arrival time lives in its own (private in the .mli)
   all-float cell so hot readers bind it once and read the field
   directly — a non-inlined [arrival_s t] accessor call would box the
   float return on every request. *)
type clock = { mutable arrival_s : float }

type t = {
  rng : Rng.t;
  spec : spec;
  fl : fl;
  clock : clock;
  mutable mmpp_state : int;
  mutable prefill_tokens : int;
  mutable decode_tokens : int;
  mutable user : int;
  mutable generated : int;
}

let validate_dist name = function
  | Geometric { mean } ->
      if mean < 1 then invalid_arg ("Arrivals.create: " ^ name ^ " mean < 1")
  | Pareto { alpha; xmin; cap } ->
      if not (alpha > 0.0) then invalid_arg ("Arrivals.create: " ^ name ^ " alpha <= 0");
      if not (xmin >= 1.0) then invalid_arg ("Arrivals.create: " ^ name ^ " xmin < 1");
      if cap < 1 then invalid_arg ("Arrivals.create: " ^ name ^ " cap < 1")

let validate spec =
  (match spec.process with
  | Poisson { rate_per_s } ->
      if not (rate_per_s > 0.0) then invalid_arg "Arrivals.create: rate <= 0"
  | Diurnal { mean_rate_per_s; amplitude; period_s } ->
      if not (mean_rate_per_s > 0.0) then invalid_arg "Arrivals.create: rate <= 0";
      if not (amplitude >= 0.0 && amplitude < 1.0) then
        invalid_arg "Arrivals.create: amplitude outside [0, 1)";
      if not (period_s > 0.0) then invalid_arg "Arrivals.create: period <= 0"
  | Mmpp { rates_per_s; mean_dwell_s } ->
      if Array.length rates_per_s = 0 then invalid_arg "Arrivals.create: empty MMPP";
      Array.iter
        (fun r -> if not (r > 0.0) then invalid_arg "Arrivals.create: rate <= 0")
        rates_per_s;
      if not (mean_dwell_s > 0.0) then invalid_arg "Arrivals.create: dwell <= 0");
  validate_dist "prefill" spec.prefill;
  validate_dist "decode" spec.decode;
  if spec.users < 1 then invalid_arg "Arrivals.create: users < 1"

(* Uniform in [0, 1) through the immediate-int primitive: bit-identical
   to [Rng.float rng 1.0], but the int return of [bits53] never
   allocates where a non-inlined [Rng.float] call boxes its result.
   This module makes three draws per request on the Leaf hot path. *)
let[@inline] unit_draw rng =
  float_of_int (Rng.bits53 rng) /. 9007199254740992.0

(* Exp(rate) by inverse CDF on [1-u] in (0, 1].  Local rather than
   [Rng.exponential]: that one draws through a non-inlined rejection
   helper whose boxed float return costs ~3 words on every variate. *)
let[@inline] exp_draw rng rate = -.log (1.0 -. unit_draw rng) /. rate

let create ~seed spec =
  validate spec;
  let rng = Rng.derive seed ~stream:0 in
  let t =
    {
      rng;
      spec;
      fl = { now_s = 0.0; dwell_until_s = 0.0 };
      clock = { arrival_s = 0.0 };
      mmpp_state = 0;
      prefill_tokens = 1;
      decode_tokens = 1;
      user = 0;
      generated = 0;
    }
  in
  (match spec.process with
  | Mmpp { rates_per_s; mean_dwell_s } ->
      t.mmpp_state <- Rng.int rng (Array.length rates_per_s);
      t.fl.dwell_until_s <- exp_draw rng (1.0 /. mean_dwell_s)
  | Poisson _ | Diurnal _ -> ());
  t

let two_pi = 8.0 *. atan 1.0

let draw_tokens t dist =
  match dist with
  | Geometric { mean } ->
      (* Same family as Scheduler.workload's draw: 1 + floor(Exp(1/mean)). *)
      1 + int_of_float (exp_draw t.rng (1.0 /. float mean))
  | Pareto { alpha; xmin; cap } ->
      (* Inverse-CDF: x = xmin * u^(-1/alpha) with u in (0, 1]. *)
      let u = 1.0 -. unit_draw t.rng in
      let x = xmin *. (u ** (-1.0 /. alpha)) in
      let n = if x >= float cap then cap else int_of_float x in
      if n < 1 then 1 else n

(* The emitters are module-level tail recursions, not [while]+[ref] loops:
   a ref cell is a minor-heap allocation and these run on the Leaf hot
   path.  Each re-matches [t.spec.process] per step instead of taking the
   rate parameters as arguments, so no float crosses a non-inlined call
   boundary (which would box it). *)

(* Lewis–Shedler thinning against the envelope mean*(1+amplitude): each
   candidate gap is Exp(lambda_max); accept with probability
   lambda(t)/lambda_max.  Exact for any bounded rate function. *)
let rec emit_diurnal t =
  match t.spec.process with
  | Diurnal { mean_rate_per_s = m; amplitude = a; period_s = p } ->
      let lambda_max = m *. (1.0 +. a) in
      t.fl.now_s <- t.fl.now_s +. exp_draw t.rng lambda_max;
      let phase = two_pi *. t.fl.now_s /. p in
      let lambda = m *. (1.0 +. (a *. sin phase)) in
      if unit_draw t.rng *. lambda_max >= lambda then emit_diurnal t
  | Poisson _ | Mmpp _ -> ()

(* Emit Poisson arrivals at the dwelling state's rate; a candidate gap
   that overshoots the dwell is discarded and redrawn in the next state —
   valid because the exponential is memoryless. *)
let rec emit_mmpp t =
  match t.spec.process with
  | Mmpp { rates_per_s; mean_dwell_s } ->
      let rate = Array.unsafe_get rates_per_s t.mmpp_state in
      let candidate = t.fl.now_s +. exp_draw t.rng rate in
      if candidate <= t.fl.dwell_until_s then t.fl.now_s <- candidate
      else begin
        t.fl.now_s <- t.fl.dwell_until_s;
        let k = Array.length rates_per_s in
        (if k > 1 then
           (* Uniform switch to a *different* state. *)
           let j = Rng.int t.rng (k - 1) in
           t.mmpp_state <- (if j >= t.mmpp_state then j + 1 else j));
        t.fl.dwell_until_s <-
          t.fl.now_s +. exp_draw t.rng (1.0 /. mean_dwell_s);
        emit_mmpp t
      end
  | Poisson _ | Diurnal _ -> ()

let next t =
  (match t.spec.process with
  | Poisson { rate_per_s } ->
      t.fl.now_s <- t.fl.now_s +. exp_draw t.rng rate_per_s
  | Diurnal _ -> emit_diurnal t
  | Mmpp _ -> emit_mmpp t);
  t.clock.arrival_s <- t.fl.now_s;
  t.prefill_tokens <- draw_tokens t t.spec.prefill;
  t.decode_tokens <- draw_tokens t t.spec.decode;
  t.user <- (if t.spec.users = 1 then 0 else Rng.int t.rng t.spec.users);
  t.generated <- t.generated + 1

let clock t = t.clock
let arrival_s t = t.clock.arrival_s
let prefill_tokens t = t.prefill_tokens
let decode_tokens t = t.decode_tokens
let user t = t.user
let generated t = t.generated
