(** Stage-level pipeline trace simulation.

    {!Perf} is closed-form; this module *simulates* the 6-stage x 36-layer
    decode pipeline token by token and measures what the closed form
    predicts — throughput, latency, slot census and per-stage occupancy —
    so the analytical model is validated by discrete-event execution
    rather than by construction.

    Model: each of the 216 layer-stages is an internally pipelined unit
    with service latency from {!Perf.stage_times_s}.  A unit holding a
    d-second service sustains one token per [d / ceil(d / ii_target)]
    (its pipeline registers give it [ceil(d/ii)] slots), so a balanced
    initiation interval emerges; a token enters stage s when (a) it has
    left stage s-1 and (b) the stage's initiation interval has elapsed
    since the previous token entered.  Tokens are injected back-to-back
    (saturated decode of independent sequences). *)

type stage_stat = {
  stage_label : string;       (** "L12/S3"-style identifier. *)
  service_s : float;
  slots : int;                (** Pipeline depth of the unit. *)
  utilization : float;        (** Busy fraction over the simulated window. *)
}

type t = {
  tokens : int;
  sim_time_s : float;
  measured_throughput_tokens_per_s : float;
  measured_latency_s : float;      (** Steady-state per-token latency. *)
  predicted_throughput_tokens_per_s : float;
  predicted_latency_s : float;
  total_slots : int;               (** Sum of unit depths, ~216. *)
  stage_stats : stage_stat list;   (** One entry per pipeline stage. *)
}

val run :
  ?tech:Hnlpu_gates.Tech.t -> ?context:int -> ?tokens:int ->
  ?obs:Hnlpu_obs.Sink.t -> ?obs_tokens:int -> Hnlpu_model.Config.t -> t
(** Simulate [tokens] (default 2,000) through the pipeline at a context
    length (default 2048) and compare against {!Perf}.

    [obs] records per-stage service spans for the first [obs_tokens]
    (default 32) tokens — one track per (stage, pipeline-slot), so the
    viewer shows the pipeline filling and reaching steady state — plus a
    stage-utilization histogram and measured-vs-predicted gauges.  The
    numbers returned are unaffected. *)

val busiest_stage : t -> stage_stat
(** The utilization-limiting stage (for gpt-oss at 2K: the MoE all-reduce
    stage S6). *)
