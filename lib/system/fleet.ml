(* Fleet-scale cluster simulator.  See the .mli for the model and the
   sharding/determinism contract.

   Layout notes, because this is an ALLOC-HOT hot path at 10⁶–10⁷
   requests:

   - all per-node state is flat arrays indexed by shard-local node id
     (float stores into [float array] are unboxed writes);
   - the per-shard mutable float scalars live in the all-float record
     [sfl] (flat representation, no boxing on store);
   - the least-loaded structure is an {e indexed} binary min-heap — two
     int arrays [heap]/[pos] over the [free_at] key array — so routing
     is O(log n) and re-keying a node after assignment is a sift, not a
     rebuild; ties break toward the lower node id, reproducing the
     historical first-minimum scan exactly;
   - hot/idle power tracking uses a lazy-deletion deadline heap: one
     entry per hot {e period} (re-pushed on pop while still busy), not
     per request;
   - everything request-rate-proportional lives in [module Hot], which
     Lint_config registers as an ALLOC-HOT Leaf (any allocation is an
     error); [run_shard] is the Driver around it. *)

open Hnlpu_util
open Hnlpu_obs
module Par = Hnlpu_par.Par

type policy = Round_robin | Least_loaded | Session_affinity | Power_aware

let policy_name = function
  | Round_robin -> "rr"
  | Least_loaded -> "ll"
  | Session_affinity -> "sa"
  | Power_aware -> "pa"

let policy_of_string s =
  match String.lowercase_ascii s with
  | "rr" | "round_robin" | "round-robin" -> Some Round_robin
  | "ll" | "least_loaded" | "least-loaded" -> Some Least_loaded
  | "sa" | "session_affinity" | "session-affinity" -> Some Session_affinity
  | "pa" | "power_aware" | "power-aware" -> Some Power_aware
  | _ -> None

type node_event_kind = Fail | Drain | Recover

type node_event = { at_s : float; node : int; kind : node_event_kind }

let fail_recover_schedule ~nodes ~fraction ~at_s ~recover_after_s =
  if nodes < 1 then invalid_arg "Fleet.fail_recover_schedule: nodes < 1";
  if not (fraction > 0.0 && fraction <= 1.0) then
    invalid_arg "Fleet.fail_recover_schedule: fraction outside (0, 1]";
  if not (recover_after_s > 0.0) then
    invalid_arg "Fleet.fail_recover_schedule: recover_after_s <= 0";
  let step = max 1 (int_of_float (1.0 /. fraction)) in
  let count = (nodes + step - 1) / step in
  Array.init (2 * count) (fun i ->
      if i < count then { at_s; node = i * step; kind = Fail }
      else
        {
          at_s = at_s +. recover_after_s;
          node = (i - count) * step;
          kind = Recover;
        })

type config = {
  nodes : int;
  shards : int;
  rack_size : int;
  rack_power_cap : int;
  idle_after_s : float;
  prefill_tokens_per_s : float;
  decode_tokens_per_s : float;
  decode_token_latency_s : float;
}

let validate_config c =
  if c.nodes < 1 then invalid_arg "Fleet: nodes < 1";
  if c.shards < 1 || c.shards > c.nodes then
    invalid_arg "Fleet: shards outside [1, nodes]";
  if c.rack_size < 1 then invalid_arg "Fleet: rack_size < 1";
  if c.rack_power_cap < 1 then invalid_arg "Fleet: rack_power_cap < 1";
  if not (c.idle_after_s >= 0.0) then invalid_arg "Fleet: idle_after_s < 0";
  if not (c.prefill_tokens_per_s > 0.0) then
    invalid_arg "Fleet: prefill_tokens_per_s <= 0";
  if not (c.decode_tokens_per_s > 0.0) then
    invalid_arg "Fleet: decode_tokens_per_s <= 0";
  if not (c.decode_token_latency_s > 0.0) then
    invalid_arg "Fleet: decode_token_latency_s <= 0"

let config_of_model ?tech ?(context = 2048) ?(shards = 8) ?(rack_size = 16)
    ?(rack_power_cap = 12) ~nodes mconfig =
  {
    nodes;
    shards = min shards (max 1 nodes);
    rack_size;
    rack_power_cap;
    idle_after_s = 30.0;
    prefill_tokens_per_s =
      Perf.prefill_throughput_tokens_per_s ?tech mconfig ~chunk:8 ~context;
    decode_tokens_per_s = Perf.throughput_tokens_per_s ?tech mconfig ~context;
    decode_token_latency_s = Perf.token_latency_cached ?tech mconfig ~context;
  }

let capacity_req_per_s cfg (spec : Arrivals.spec) =
  let p = Arrivals.mean_tokens spec.Arrivals.prefill in
  let d = Arrivals.mean_tokens spec.Arrivals.decode in
  let service_s =
    (p /. cfg.prefill_tokens_per_s) +. (d /. cfg.decode_tokens_per_s)
  in
  float cfg.nodes /. service_s

(* SplitMix64-style finalizer (62-bit-safe multipliers): users with
   adjacent ids must land on unrelated home nodes. *)
let hash_user u =
  let h = u lxor (u lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  let h = h lxor (h lsr 29) in
  let h = h * 0x1DA4B32DD35C9D1 in
  let h = h lxor (h lsr 32) in
  h land max_int

(* Shard ranges are [k*nodes/shards, (k+1)*nodes/shards).  The
   proportional guess [g*shards/nodes] is exact or one low (floor
   arithmetic), never high — one upward correction suffices. *)
let shard_of_node g ~nodes ~shards =
  let k = g * shards / nodes in
  let k = if k >= shards then shards - 1 else k in
  if k + 1 < shards && g >= (k + 1) * nodes / shards then k + 1 else k

(* Per-shard mutable float scalars, all-float for flat stores.  [now_s]
   is how simulated time reaches the [Hot] helpers: a float argument to
   a non-inlined call is boxed at every call site, a store into an
   all-float record is flat. *)
type sfl = {
  mutable now_s : float;
  mutable busy_s : float;
  mutable makespan_s : float;
  mutable tokens : float;
  mutable redispatched : float;
}

type shard_state = {
  lo : int;  (* first global node id of the shard *)
  n : int;  (* nodes owned by the shard *)
  total_nodes : int;
  total_shards : int;
  rack_size : int;
  rack_cap : int;
  idle_after_s : float;
  prefill_rate : float;
  decode_rate : float;
  tok_lat : float;
  free_at : float array;  (* next-free time per node *)
  node_tokens : float array;
  node_requests : int array;
  status : int array;  (* 0 active / 1 drained / 2 failed *)
  heap : int array;  (* heap slot -> node id, keyed by free_at *)
  pos : int array;  (* node id -> heap slot, -1 when absent *)
  mutable heap_len : int;
  hot : int array;  (* 0 cold / 1 hot *)
  rack_hot : int array;
  idle : int Heap.t;  (* lazy-deletion cool-down deadlines *)
  scratch : int array;  (* Power_aware pop stash *)
  mutable scratch_len : int;
  mutable peak_rack_hot : int;
  mutable overrides : int;
  mutable rr : int;
  mutable dispatched : int;
  mutable dropped : int;
  fl : sfl;
  ttft : Sketch.t;
  e2e : Sketch.t;
  queue : Sketch.t;
  m : Metrics.t option;
}

(* Everything request-rate-proportional: registered as an ALLOC-HOT Leaf
   (Lint_config), so any allocation below is a lint error. *)
module Hot = struct
  (* Lexicographic (free_at, id): among equally-free nodes the lower id
     wins, matching the historical first-minimum scan. *)
  let less st i j =
    st.free_at.(i) < st.free_at.(j)
    || (st.free_at.(i) = st.free_at.(j) && i < j)

  let rec sift_up st p =
    if p > 0 then begin
      let parent = (p - 1) / 2 in
      let i = st.heap.(p) and j = st.heap.(parent) in
      if less st i j then begin
        st.heap.(p) <- j;
        st.pos.(j) <- p;
        st.heap.(parent) <- i;
        st.pos.(i) <- parent;
        sift_up st parent
      end
    end

  let rec sift_down st p =
    let l = (2 * p) + 1 in
    if l < st.heap_len then begin
      let r = l + 1 in
      let s =
        if r < st.heap_len && less st st.heap.(r) st.heap.(l) then r else l
      in
      if less st st.heap.(s) st.heap.(p) then begin
        let a = st.heap.(p) and b = st.heap.(s) in
        st.heap.(p) <- b;
        st.pos.(b) <- p;
        st.heap.(s) <- a;
        st.pos.(a) <- s;
        sift_down st s
      end
    end

  let heap_add st i =
    let p = st.heap_len in
    st.heap_len <- p + 1;
    st.heap.(p) <- i;
    st.pos.(i) <- p;
    sift_up st p

  let heap_remove st i =
    let p = st.pos.(i) in
    if p >= 0 then begin
      let last = st.heap_len - 1 in
      st.heap_len <- last;
      st.pos.(i) <- -1;
      if p <> last then begin
        let j = st.heap.(last) in
        st.heap.(p) <- j;
        st.pos.(j) <- p;
        sift_up st p;
        sift_down st p
      end
    end

  (* [free_at] only ever grows, so a re-key is a pure sift-down. *)
  let heap_update st i =
    let p = st.pos.(i) in
    if p >= 0 then sift_down st p

  (* The cool-down deadline reads the node's just-updated [free_at]
     rather than taking the finish time as a (boxed) float argument. *)
  let mark_hot st i =
    if st.hot.(i) = 0 then begin
      st.hot.(i) <- 1;
      let r = i / st.rack_size in
      let h = st.rack_hot.(r) + 1 in
      st.rack_hot.(r) <- h;
      if h > st.peak_rack_hot then st.peak_rack_hot <- h;
      Heap.push st.idle ~priority:(st.free_at.(i) +. st.idle_after_s) i
    end

  (* Retire cool-down deadlines that have passed; an entry whose node
     got more work since is re-pushed at its new deadline (lazy
     deletion, one live entry per hot period). *)
  let rec drain_idle st =
    if
      (not (Heap.is_empty st.idle))
      && Heap.min_priority st.idle <= st.fl.now_s
    then begin
      let i = Heap.take_min st.idle in
      if st.hot.(i) = 1 then begin
        let deadline = st.free_at.(i) +. st.idle_after_s in
        if deadline <= st.fl.now_s then begin
          st.hot.(i) <- 0;
          st.rack_hot.(i / st.rack_size) <- st.rack_hot.(i / st.rack_size) - 1
        end
        else Heap.push st.idle ~priority:deadline i
      end;
      drain_idle st
    end

  (* First active node at/after local index [l], wrapping; -1 if none. *)
  let rec probe_active st l tries =
    if tries = 0 then -1
    else if st.status.(l) = 0 then l
    else probe_active st (if l + 1 = st.n then 0 else l + 1) (tries - 1)

  let route_rr st =
    let start = st.rr mod st.n in
    st.rr <- st.rr + 1;
    probe_active st start st.n

  let route_ll st = if st.heap_len = 0 then -1 else st.heap.(0)

  let route_sa st user =
    let home = hash_user user mod st.total_nodes in
    probe_active st (home - st.lo) st.n

  (* Pop heap minima that would power up a capped rack, stashing them
     for restoration; accept the first node that is already hot or in
     an under-cap rack. *)
  let rec pa_pop st =
    if st.heap_len = 0 then -1
    else begin
      let i = st.heap.(0) in
      if st.hot.(i) = 1 || st.rack_hot.(i / st.rack_size) < st.rack_cap then i
      else begin
        heap_remove st i;
        st.scratch.(st.scratch_len) <- i;
        st.scratch_len <- st.scratch_len + 1;
        pa_pop st
      end
    end

  let rec pa_restore st k =
    if k < st.scratch_len then begin
      heap_add st st.scratch.(k);
      pa_restore st (k + 1)
    end

  let route_pa st =
    st.scratch_len <- 0;
    let choice = pa_pop st in
    let all_capped = choice < 0 && st.scratch_len > 0 in
    pa_restore st 0;
    st.scratch_len <- 0;
    if choice >= 0 then choice
    else if all_capped then begin
      (* Every active node is cold inside a capped rack: power up past
         the cap rather than drop the request, and count the override. *)
      st.overrides <- st.overrides + 1;
      route_ll st
    end
    else -1

  let route st policy user =
    match policy with
    | Round_robin -> route_rr st
    | Least_loaded -> route_ll st
    | Session_affinity -> route_sa st user
    | Power_aware -> route_pa st

  let assign st p d idx =
    let now = st.fl.now_s in
    let pf = float p and df = float d in
    let prefill_s = pf /. st.prefill_rate in
    let free = st.free_at.(idx) in
    let start = if free > now then free else now in
    let queue = start -. now in
    let ttft = queue +. prefill_s +. st.tok_lat in
    let e2e = queue +. prefill_s +. (df *. st.tok_lat) in
    let service_s = prefill_s +. (df /. st.decode_rate) in
    let finish = start +. service_s in
    st.free_at.(idx) <- finish;
    heap_update st idx;
    mark_hot st idx;
    st.node_tokens.(idx) <- st.node_tokens.(idx) +. pf +. df;
    st.node_requests.(idx) <- st.node_requests.(idx) + 1;
    st.dispatched <- st.dispatched + 1;
    st.fl.busy_s <- st.fl.busy_s +. service_s;
    st.fl.tokens <- st.fl.tokens +. pf +. df;
    let completion = now +. e2e in
    let span = if finish > completion then finish else completion in
    if span > st.fl.makespan_s then st.fl.makespan_s <- span;
    Sketch.observe st.ttft ttft;
    Sketch.observe st.e2e e2e;
    Sketch.observe st.queue queue;
    match st.m with
    | None -> ()
    | Some m ->
        (* Token totals land once per shard in the epilogue: a per-request
           [incr ~by] would allocate the optional's [Some] every event. *)
        Metrics.incr m "fleet/requests";
        Metrics.observe m "fleet/ttft_s" ttft;
        Metrics.observe m "fleet/e2e_s" e2e;
        Metrics.observe m "fleet/queue_wait_s" queue
end

(* Failed nodes re-dispatch through the policy; for session affinity the
   natural rebind is the next node after the dead home. *)
let route_redispatch st policy failed_local =
  match policy with
  | Session_affinity ->
      Hot.probe_active st
        (if failed_local + 1 = st.n then 0 else failed_local + 1)
        st.n
  | Round_robin | Least_loaded | Power_aware -> Hot.route st policy 0

let apply_event st policy ev =
  let g = ev.node in
  if g >= st.lo && g < st.lo + st.n then begin
    let i = g - st.lo in
    match ev.kind with
    | Drain -> if st.status.(i) = 0 then begin
        st.status.(i) <- 1;
        Hot.heap_remove st i
      end
    | Fail ->
        if st.status.(i) <> 2 then begin
          if st.status.(i) = 0 then Hot.heap_remove st i;
          st.status.(i) <- 2;
          let now = ev.at_s in
          st.fl.now_s <- now;
          Hot.drain_idle st;
          let backlog_s = st.free_at.(i) -. now in
          st.free_at.(i) <- now;
          if backlog_s > 0.0 then begin
            let tgt = route_redispatch st policy i in
            if tgt >= 0 then begin
              (* Move the unfinished capacity-seconds; token attribution
                 follows at the decode rate (a lower bound on the mix's
                 token density, so a node's ledger can't go negative). *)
              let moved = backlog_s *. st.decode_rate in
              st.fl.redispatched <- st.fl.redispatched +. moved;
              st.node_tokens.(i) <- st.node_tokens.(i) -. moved;
              st.node_tokens.(tgt) <- st.node_tokens.(tgt) +. moved;
              let free = st.free_at.(tgt) in
              let start = if free > now then free else now in
              let finish = start +. backlog_s in
              st.free_at.(tgt) <- finish;
              Hot.heap_update st tgt;
              Hot.mark_hot st tgt;
              if finish > st.fl.makespan_s then st.fl.makespan_s <- finish
            end
            (* No eligible node: the backlog dies with its node and
               stays attributed to it. *)
          end
        end
    | Recover ->
        if st.status.(i) <> 0 then begin
          st.status.(i) <- 0;
          if ev.at_s > st.free_at.(i) then st.free_at.(i) <- ev.at_s;
          Hot.heap_add st i
        end
  end

type shard_out = {
  o_lo : int;
  o_dispatched : int;
  o_dropped : int;
  o_tokens : float;
  o_redispatched : float;
  o_busy_s : float;
  o_makespan_s : float;
  o_peak_rack_hot : int;
  o_overrides : int;
  o_ttft : Sketch.t;
  o_e2e : Sketch.t;
  o_queue : Sketch.t;
  o_node_tokens : float array;
  o_node_requests : int array;
  o_sink : Sink.t option;
}

let make_state cfg shard sink =
  let lo = shard * cfg.nodes / cfg.shards in
  let hi = (shard + 1) * cfg.nodes / cfg.shards in
  let n = hi - lo in
  let racks = ((n - 1) / cfg.rack_size) + 1 in
  let st =
    {
      lo;
      n;
      total_nodes = cfg.nodes;
      total_shards = cfg.shards;
      rack_size = cfg.rack_size;
      rack_cap = cfg.rack_power_cap;
      idle_after_s = cfg.idle_after_s;
      prefill_rate = cfg.prefill_tokens_per_s;
      decode_rate = cfg.decode_tokens_per_s;
      tok_lat = cfg.decode_token_latency_s;
      free_at = Array.make n 0.0;
      node_tokens = Array.make n 0.0;
      node_requests = Array.make n 0;
      status = Array.make n 0;
      heap = Array.make n 0;
      pos = Array.make n (-1);
      heap_len = 0;
      hot = Array.make n 0;
      rack_hot = Array.make racks 0;
      idle = Heap.create ~dummy:(-1) ();
      scratch = Array.make n 0;
      scratch_len = 0;
      peak_rack_hot = 0;
      overrides = 0;
      rr = 0;
      dispatched = 0;
      dropped = 0;
      fl =
        {
          now_s = 0.0;
          busy_s = 0.0;
          makespan_s = 0.0;
          tokens = 0.0;
          redispatched = 0.0;
        };
      ttft = Sketch.create ();
      e2e = Sketch.create ();
      queue = Sketch.create ();
      m = Option.map Sink.metrics sink;
    }
  in
  (* All nodes start active with free_at 0 and ids ascending: the
     identity arrangement already satisfies the heap order. *)
  for i = 0 to n - 1 do
    st.heap.(i) <- i;
    st.pos.(i) <- i
  done;
  st.heap_len <- n;
  st

(* One shard's pass over the whole trace (ALLOC-HOT Driver: the arrays,
   sketches and cursor above are setup; the request loop below must not
   allocate). *)
let run_shard cfg spec policy events requests seed with_obs exact shard =
  let sink =
    if with_obs then Some (Sink.create ~events:false ~exact_histograms:exact ())
    else None
  in
  let st = make_state cfg shard sink in
  let cur = Arrivals.create ~seed spec in
  (* Flat read cell: a per-request [Arrivals.arrival_s] accessor call
     would box its float return, paid [shards] times per request. *)
  let clk = Arrivals.clock cur in
  let nev = Array.length events in
  let ep = ref 0 in
  for i = 0 to requests - 1 do
    Arrivals.next cur;
    let now = clk.Arrivals.arrival_s in
    while !ep < nev && (Array.unsafe_get events !ep).at_s <= now do
      apply_event st policy (Array.unsafe_get events !ep);
      incr ep
    done;
    let owner =
      match policy with
      | Session_affinity ->
          shard_of_node
            (hash_user (Arrivals.user cur) mod st.total_nodes)
            ~nodes:st.total_nodes ~shards:st.total_shards
      | Round_robin | Least_loaded | Power_aware -> i mod st.total_shards
    in
    if owner = shard then begin
      st.fl.now_s <- now;
      Hot.drain_idle st;
      let idx = Hot.route st policy (Arrivals.user cur) in
      if idx < 0 then begin
        st.dropped <- st.dropped + 1;
        match st.m with
        | None -> ()
        | Some m -> Metrics.incr m "fleet/dropped"
      end
      else
        Hot.assign st
          (Arrivals.prefill_tokens cur)
          (Arrivals.decode_tokens cur)
          idx
    end
  done;
  (match st.m with
  | None -> ()
  | Some m ->
      (* Stamp = value, so the shard-merge "latest stamp wins" rule
         yields the fleet max for both gauges at any merge order. *)
      Metrics.set_stamped m ~stamp:st.fl.makespan_s "fleet/makespan_s"
        st.fl.makespan_s;
      Metrics.set_stamped m
        ~stamp:(float st.peak_rack_hot)
        "fleet/peak_rack_hot"
        (float st.peak_rack_hot);
      Metrics.incr m ~by:st.fl.tokens "fleet/tokens";
      Metrics.incr m ~by:st.fl.redispatched "fleet/redispatched_tokens");
  {
    o_lo = st.lo;
    o_dispatched = st.dispatched;
    o_dropped = st.dropped;
    o_tokens = st.fl.tokens;
    o_redispatched = st.fl.redispatched;
    o_busy_s = st.fl.busy_s;
    o_makespan_s = st.fl.makespan_s;
    o_peak_rack_hot = st.peak_rack_hot;
    o_overrides = st.overrides;
    o_ttft = st.ttft;
    o_e2e = st.e2e;
    o_queue = st.queue;
    o_node_tokens = st.node_tokens;
    o_node_requests = st.node_requests;
    o_sink = sink;
  }

type result = {
  r_nodes : int;
  r_shards : int;
  dispatched : int;
  dropped : int;
  total_tokens : float;
  redispatched_tokens : float;
  makespan_s : float;
  throughput_tokens_per_s : float;
  imbalance : float;
  mean_utilization : float;
  peak_rack_hot : int;
  power_cap_overrides : int;
  ttft : Sketch.t;
  e2e : Sketch.t;
  queue_wait : Sketch.t;
  per_node_tokens : float array;
  per_node_requests : int array;
}

let validate_events cfg events =
  let n = Array.length events in
  for i = 0 to n - 1 do
    let ev = events.(i) in
    if ev.node < 0 || ev.node >= cfg.nodes then
      invalid_arg "Fleet.run: event node out of range";
    if not (ev.at_s >= 0.0) then invalid_arg "Fleet.run: event time < 0";
    if i > 0 && ev.at_s < events.(i - 1).at_s then
      invalid_arg "Fleet.run: node_events not sorted by time"
  done

let run ?domains ?obs ?(node_events = [||]) ~policy ~requests ~seed cfg spec =
  validate_config cfg;
  if requests < 1 then invalid_arg "Fleet.run: requests < 1";
  validate_events cfg node_events;
  let with_obs = Option.is_some obs in
  let exact =
    match obs with Some s -> Sink.exact_histograms s | None -> false
  in
  let outs =
    Par.parallel_init ?domains cfg.shards
      (run_shard cfg spec policy node_events requests seed with_obs exact)
  in
  (* Merge in shard-index order — the Par convention that makes float
     sums and sink merges independent of the domain count. *)
  let per_node_tokens = Array.make cfg.nodes 0.0 in
  let per_node_requests = Array.make cfg.nodes 0 in
  let ttft = Sketch.create () in
  let e2e = Sketch.create () in
  let queue_wait = Sketch.create () in
  let dispatched = ref 0 in
  let dropped = ref 0 in
  let tokens = ref 0.0 in
  let redispatched = ref 0.0 in
  let busy = ref 0.0 in
  let makespan = ref 0.0 in
  let peak = ref 0 in
  let overrides = ref 0 in
  Array.iter
    (fun o ->
      Array.blit o.o_node_tokens 0 per_node_tokens o.o_lo
        (Array.length o.o_node_tokens);
      Array.blit o.o_node_requests 0 per_node_requests o.o_lo
        (Array.length o.o_node_requests);
      Sketch.merge_into ~into:ttft o.o_ttft;
      Sketch.merge_into ~into:e2e o.o_e2e;
      Sketch.merge_into ~into:queue_wait o.o_queue;
      dispatched := !dispatched + o.o_dispatched;
      dropped := !dropped + o.o_dropped;
      tokens := !tokens +. o.o_tokens;
      redispatched := !redispatched +. o.o_redispatched;
      busy := !busy +. o.o_busy_s;
      if o.o_makespan_s > !makespan then makespan := o.o_makespan_s;
      if o.o_peak_rack_hot > !peak then peak := o.o_peak_rack_hot;
      overrides := !overrides + o.o_overrides)
    outs;
  (match obs with
  | None -> ()
  | Some s ->
      Array.iter
        (fun o ->
          match o.o_sink with
          | Some ps -> Sink.merge_into ~into:s ps
          | None -> ())
        outs);
  let max_node_tokens = Array.fold_left Float.max 0.0 per_node_tokens in
  let mean_node_tokens =
    Array.fold_left ( +. ) 0.0 per_node_tokens /. float cfg.nodes
  in
  {
    r_nodes = cfg.nodes;
    r_shards = cfg.shards;
    dispatched = !dispatched;
    dropped = !dropped;
    total_tokens = !tokens;
    redispatched_tokens = !redispatched;
    makespan_s = !makespan;
    throughput_tokens_per_s =
      (if !makespan > 0.0 then !tokens /. !makespan else 0.0);
    imbalance =
      (if mean_node_tokens > 0.0 then max_node_tokens /. mean_node_tokens
       else 1.0);
    mean_utilization =
      (if !makespan > 0.0 then !busy /. (float cfg.nodes *. !makespan)
       else 0.0);
    peak_rack_hot = !peak;
    power_cap_overrides = !overrides;
    ttft;
    e2e;
    queue_wait;
    per_node_tokens;
    per_node_requests;
  }

type objectives = { max_ttft_p99_s : float; max_e2e_p99_s : float }

let interactive = { max_ttft_p99_s = 0.5; max_e2e_p99_s = 30.0 }

type frontier_point = {
  fp_policy : policy;
  offered_req_per_s : float;
  utilization_of_capacity : float;
  ttft_p50_s : float;
  ttft_p99_s : float;
  e2e_p99_s : float;
  fp_imbalance : float;
  fp_throughput_tokens_per_s : float;
  fp_dropped : int;
  meets_slo : bool;
}

let sweep ?domains ?node_events ~policies ~rates ~requests ~seed objectives cfg
    spec =
  validate_config cfg;
  let capacity = capacity_req_per_s cfg spec in
  let grid =
    List.concat_map (fun p -> List.map (fun r -> (p, r)) rates) policies
  in
  Par.parallel_map ?domains
    (fun (policy, rate) ->
      let spec = Arrivals.with_mean_rate spec rate in
      let res = run ?node_events ~policy ~requests ~seed cfg spec in
      let ttft_p50 = Sketch.quantile res.ttft 0.50 in
      let ttft_p99 = Sketch.quantile res.ttft 0.99 in
      let e2e_p99 = Sketch.quantile res.e2e 0.99 in
      {
        fp_policy = policy;
        offered_req_per_s = rate;
        utilization_of_capacity = rate /. capacity;
        ttft_p50_s = ttft_p50;
        ttft_p99_s = ttft_p99;
        e2e_p99_s = e2e_p99;
        fp_imbalance = res.imbalance;
        fp_throughput_tokens_per_s = res.throughput_tokens_per_s;
        fp_dropped = res.dropped;
        meets_slo =
          res.dropped = 0
          && ttft_p99 <= objectives.max_ttft_p99_s
          && e2e_p99 <= objectives.max_e2e_p99_s;
      })
    grid

(* Static weight-sequence dispatch — Multi_node's backend.  Least-loaded
   reuses the indexed-heap idea on accumulated weight: identical choice
   sequence to the historical O(nodes) first-minimum scan (lex (load,
   id) order), at O(log nodes) per request. *)
let dispatch ~policy ~nodes weights =
  if nodes < 1 then invalid_arg "Fleet.dispatch: nodes must be positive";
  match policy with
  | Session_affinity | Power_aware ->
      invalid_arg "Fleet.dispatch: trace-driven policy needs Fleet.run"
  | Round_robin -> Array.init (Array.length weights) (fun i -> i mod nodes)
  | Least_loaded ->
      let load = Array.make nodes 0.0 in
      let heap = Array.init nodes (fun i -> i) in
      let pos = Array.init nodes (fun i -> i) in
      let less i j = load.(i) < load.(j) || (load.(i) = load.(j) && i < j) in
      let rec sift_down p =
        let l = (2 * p) + 1 in
        if l < nodes then begin
          let r = l + 1 in
          let s = if r < nodes && less heap.(r) heap.(l) then r else l in
          if less heap.(s) heap.(p) then begin
            let a = heap.(p) and b = heap.(s) in
            heap.(p) <- b;
            pos.(b) <- p;
            heap.(s) <- a;
            pos.(a) <- s;
            sift_down s
          end
        end
      in
      Array.map
        (fun w ->
          let i = heap.(0) in
          load.(i) <- load.(i) +. w;
          sift_down 0;
          i)
        weights
