(** Streaming request-trace generation for fleet-scale serving.

    The paper's TCO story compares HNLPU {e nodes} against GPU
    {e clusters}; exercising that comparison needs traces of 10⁶–10⁷
    requests, which must never exist as a materialized list.  This module
    is a {b pull-based cursor}: {!next} advances the generator by one
    request and overwrites the cursor's current-request fields in place —
    zero minor-heap words per request ({!next} is an ALLOC-HOT Leaf hot
    path, see [Lint_config]), so a 10⁷-request trace costs the same
    memory as a 10-request one.

    Three arrival processes:

    - [Poisson]: homogeneous rate λ (the classic open-loop model);
    - [Diurnal]: a nonhomogeneous Poisson process with sinusoidal rate
      [λ(t) = mean · (1 + amplitude · sin (2πt/period))], sampled exactly
      by Lewis–Shedler thinning — the day/night swing of a user-facing
      fleet, compressed to simulation scale;
    - [Mmpp]: a Markov-modulated Poisson process — the cursor dwells in
      one of [k] rate states (exponential dwell, uniform switch to
      another state) and emits Poisson arrivals at that state's rate;
      the standard model for bursty traffic whose variance exceeds
      Poisson.

    and two token-length families:

    - [Geometric]: exponential with mean [m], shifted to at least 1 —
      matches {!Scheduler.workload}'s draw;
    - [Pareto]: heavy tail, [P(X > x) = (xmin/x)^alpha] truncated to
      [cap] — the long-context/agentic tail that stresses load-balancing
      policies (a few requests carry most of the tokens when
      [alpha < 2]).

    Everything is driven by an explicit seed through {!Hnlpu_util.Rng},
    so a cursor restarted from the same seed replays the identical trace
    (property-tested), which is what lets every {!Fleet} shard re-derive
    the shared trace instead of receiving a materialized copy. *)

type length_dist =
  | Geometric of { mean : int }
  | Pareto of { alpha : float; xmin : float; cap : int }

type process =
  | Poisson of { rate_per_s : float }
  | Diurnal of { mean_rate_per_s : float; amplitude : float; period_s : float }
  | Mmpp of { rates_per_s : float array; mean_dwell_s : float }

type spec = {
  process : process;
  prefill : length_dist;
  decode : length_dist;
  users : int;  (** User-id pool size (uniform draw per request). *)
}

val chat : rate_per_s:float -> spec
(** Chat-shaped default: Poisson arrivals, geometric 128-token prompts
    and decodes, 10,000 users. *)

val mean_rate_per_s : spec -> float
(** Long-run request rate of the process: λ for [Poisson], the mean for
    [Diurnal] (the sinusoid averages out), the stationary mean of the
    state rates for [Mmpp] (uniform dwell ⇒ uniform stationary law). *)

val with_mean_rate : spec -> float -> spec
(** Same process shape rescaled to the given long-run rate — how
    {!Fleet.sweep} walks a capacity frontier without changing the
    process's character. *)

val mean_tokens : length_dist -> float
(** Expected tokens per request (cap ignored; [infinity] for a Pareto
    tail with [alpha <= 1]) — used to size default offered rates against
    fleet capacity. *)

type t
(** A cursor.  Mutable; not thread-safe — each {!Fleet} shard owns one. *)

val create : seed:int -> spec -> t
(** Validates the spec ([Invalid_argument] on nonpositive rates, means,
    amplitude outside [0,1), alpha <= 0, empty MMPP, users < 1). *)

val next : t -> unit
(** Advance to the next request, overwriting the current-request fields
    below.  Allocates nothing (ALLOC-HOT Leaf). *)

val arrival_s : t -> float
(** Arrival time of the current request (monotone nondecreasing). *)

type clock = private { mutable arrival_s : float }
(** The cursor's published arrival time as an all-float cell: reading a
    field of an all-float record is a flat load, so a hot loop that
    binds {!clock} once pays nothing per request, where a non-inlined
    {!arrival_s} call boxes its float return (~2 words/request —
    {!Fleet} reads the clock [shards] times per request). *)

val clock : t -> clock
(** The cell {!next} writes the arrival time into.  Stable for the
    cursor's lifetime; contents change on every {!next}. *)

val prefill_tokens : t -> int
(** Prompt tokens of the current request (at least 1). *)

val decode_tokens : t -> int
(** Decode tokens of the current request (at least 1). *)

val user : t -> int
(** User id of the current request, in [\[0, users)]. *)

val generated : t -> int
(** Requests generated so far (0 before the first {!next}). *)
