open Hnlpu_util

type request = { arrival_s : float; prefill_tokens : int; decode_tokens : int }

type completed = {
  request : request;
  first_token_s : float;
  finish_s : float;
  queue_wait_s : float;
}

type result = {
  completed_requests : completed list;
  makespan_s : float;
  tokens_processed : int;
  decode_tokens_out : int;
  throughput_tokens_per_s : float;
  mean_slot_occupancy : float;
}

(* Module-level so [workload] doesn't rebuild this closure per request
   (the ALLOC-HOT Driver pass flags let-bound draw closures in loops). *)
let draw_geometric rng mean =
  1 + int_of_float (Rng.exponential rng (1.0 /. float_of_int mean))

let workload rng ~n ~rate_per_s ~mean_prefill ~mean_decode =
  if n <= 0 then invalid_arg "Scheduler.workload: n must be positive";
  if mean_prefill <= 0 || mean_decode <= 0 then
    invalid_arg "Scheduler.workload: token means must be positive";
  let t = ref 0.0 in
  List.init n (fun _ ->
      t := !t +. Rng.exponential rng rate_per_s;
      {
        arrival_s = !t;
        prefill_tokens = draw_geometric rng mean_prefill;
        decode_tokens = draw_geometric rng mean_decode;
      })

type token_kind = Prefill | Decode

(* [ev_prefill]/[ev_decode] are this sequence's completion events, built
   once at arrival and reused for every token — the simulator pushes one
   completion per simulated token, and allocating a fresh [Complete] each
   time was measurable minor-heap traffic under the domain pool. *)
type seq = {
  req : request;
  id : int;
  mutable prefill_remaining : int;
  mutable prefill_inflight : int;
  mutable decode_remaining : int;
  mutable position : int;                 (** Tokens consumed so far. *)
  mutable injected_first : float option;  (** First injection time. *)
  mutable first_token : float option;     (** First decode completion. *)
  mutable prefill_done : float option;    (** Last prefill-token completion. *)
  mutable ev_prefill : event;
  mutable ev_decode : event;
}

and event = Arrival of seq | Complete of seq * token_kind | Wakeup

let dummy_seq =
  (* Filler for the queues' and heap's freed slots; never injected. *)
  {
    req = { arrival_s = 0.0; prefill_tokens = 1; decode_tokens = 1 };
    id = -1;
    prefill_remaining = 0;
    prefill_inflight = 0;
    decode_remaining = 0;
    position = 0;
    injected_first = None;
    first_token = None;
    prefill_done = None;
    ev_prefill = Wakeup;
    ev_decode = Wakeup;
  }

let saturated_throughput ?tech ?(context = 2048) config =
  Perf.throughput_tokens_per_s ?tech config ~context

let obs_track = Hnlpu_obs.Event.track ~process:"scheduler"

(* Simulation clock state.  All fields are float, so the record is flat
   (unboxed storage) and the per-event stores allocate nothing. *)
type clock = {
  mutable occupancy : float;
  mutable last_time : float;
  mutable makespan : float;
  mutable next_inject : float;
}

let fresh_clock () =
  { occupancy = 0.0; last_time = 0.0; makespan = 0.0; next_inject = 0.0 }

let capacity_profile ~slots failures =
  (* Presorted prefix sums: O(log failures) per query instead of folding
     the whole failure list on every event. *)
  let a = Array.of_list failures in
  Array.sort (fun (t1, _) (t2, _) -> Float.compare t1 t2) a;
  let n = Array.length a in
  let times = Array.map fst a in
  let lost = Array.make (max 1 n) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i (_, k) ->
      acc := !acc + k;
      lost.(i) <- !acc)
    a;
  fun now ->
    if n = 0 || now < times.(0) then slots
    else begin
      (* Rightmost failure with time <= now; ties share the same time, and
         the rightmost one carries the cumulative loss of the whole tie
         group, matching the fold over the unsorted list. *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if times.(mid) <= now then lo := mid else hi := mid - 1
      done;
      max 0 (slots - lost.(!lo))
    end

(* Smallest power-of-two context bucket (>= 2048) covering [position].
   Module-level so [latency_at] does not rebuild the closure per event. *)
let rec pow2_bucket b position =
  if b >= max 2048 position then b else pow2_bucket (2 * b) position

let simulate ?tech ?(context = 2048) ?(context_aware = false) ?(slot_failures = [])
    ?obs config requests =
  let latency = Perf.token_latency_cached ?tech config ~context in
  (* Context-aware latency, bucketed at powers of two and memoized. *)
  let bucket_cache = Hashtbl.create 16 in
  let latency_at position =
    if not context_aware then latency
    else begin
      let b = pow2_bucket 2048 position in
      match Hashtbl.find_opt bucket_cache b with
      | Some l -> l
      | None ->
        let l = Perf.token_latency_cached ?tech config ~context:b in
        Hashtbl.add bucket_cache b l;
        l
    end
  in
  let slots = Perf.pipeline_slots config in
  List.iter
    (fun (t, n) ->
      if t < 0.0 || n < 0 then invalid_arg "Scheduler.simulate: bad failure")
    slot_failures;
  let capacity_at = capacity_profile ~slots slot_failures in
  let ii = latency /. float_of_int slots in
  let events : event Heap.t = Heap.create ~dummy:Wakeup () in
  List.iteri
    (fun id r ->
      if r.arrival_s < 0.0 || r.prefill_tokens < 1 || r.decode_tokens < 1 then
        invalid_arg "Scheduler.simulate: malformed request";
      let s =
        {
          req = r;
          id;
          prefill_remaining = r.prefill_tokens;
          prefill_inflight = 0;
          decode_remaining = r.decode_tokens;
          position = 0;
          injected_first = None;
          first_token = None;
          prefill_done = None;
          ev_prefill = Wakeup;
          ev_decode = Wakeup;
        }
      in
      s.ev_prefill <- Complete (s, Prefill);
      s.ev_decode <- Complete (s, Decode);
      Heap.push events ~priority:r.arrival_s (Arrival s))
    requests;
  List.iter
    (fun (t, _) -> Heap.push events ~priority:t Wakeup)
    slot_failures;
  let decode_queue : seq Fifo.t = Fifo.create ~dummy:dummy_seq () in
  let prefill_queue : seq Fifo.t = Fifo.create ~dummy:dummy_seq () in
  let busy = ref 0 in
  let completed = ref [] in
  let tokens = ref 0 and decode_tokens_out = ref 0 in
  (* All-float mutable record: the fields store unboxed, where float refs
     boxed a fresh float on every store — several stores per token. *)
  let clock = fresh_clock () in
  let advance_clock t =
    clock.occupancy <- clock.occupancy +. (float_of_int !busy *. (t -. clock.last_time));
    clock.last_time <- t
  in
  (* Counter-series samples, emitted only on value changes so the timeline
     stays readable; everything below is skipped when [obs] is absent. *)
  let last_queue = ref (-1) and last_busy = ref (-1) in
  let sample_gauges now =
    match obs with
    | None -> ()
    | Some o ->
      let module Sink = Hnlpu_obs.Sink in
      let track = obs_track ~thread:"load" in
      let q = Fifo.length prefill_queue + Fifo.length decode_queue in
      if q <> !last_queue then begin
        Sink.sample o ~track ~name:"scheduler/queue_depth" ~ts_s:now
          (float_of_int q);
        last_queue := q
      end;
      if !busy <> !last_busy then begin
        Sink.sample o ~track ~name:"scheduler/busy_slots" ~ts_s:now
          (float_of_int !busy);
        last_busy := !busy
      end
  in
  let record_completion (s : seq) ~finish =
    match obs with
    | None -> ()
    | Some o ->
      let module Sink = Hnlpu_obs.Sink in
      let module Event = Hnlpu_obs.Event in
      let m = Sink.metrics o in
      let arrival = s.req.arrival_s in
      let injected =
        match s.injected_first with Some x -> x | None -> arrival
      in
      let prefill_done =
        match s.prefill_done with Some x -> x | None -> injected
      in
      let first_token =
        match s.first_token with Some x -> x | None -> finish
      in
      let track = obs_track ~thread:(Printf.sprintf "req%04d" s.id) in
      let args =
        [
          ("id", Event.I s.id);
          ("prefill_tokens", Event.I s.req.prefill_tokens);
          ("decode_tokens", Event.I s.req.decode_tokens);
        ]
      in
      Sink.span o ~cat:"request" ~args ~track ~name:"request" ~start_s:arrival
        ~dur_s:(finish -. arrival);
      Sink.span o ~cat:"request" ~track ~name:"queued" ~start_s:arrival
        ~dur_s:(injected -. arrival);
      Sink.span o ~cat:"request" ~track ~name:"prefill" ~start_s:injected
        ~dur_s:(prefill_done -. injected);
      Sink.span o ~cat:"request" ~track ~name:"decode" ~start_s:prefill_done
        ~dur_s:(finish -. prefill_done);
      Sink.instant o ~cat:"request" ~track ~name:"first_token"
        ~ts_s:first_token;
      Hnlpu_obs.Metrics.incr m "scheduler/requests_completed";
      Hnlpu_obs.Metrics.observe m "scheduler/ttft_s" (first_token -. arrival);
      Hnlpu_obs.Metrics.observe m "scheduler/e2e_s" (finish -. arrival);
      Hnlpu_obs.Metrics.observe m "scheduler/queue_wait_s" (injected -. arrival)
  [@@hnlpu.lint_ignore "ALLOC-HOT"]
  (* Runs only when tracing ([obs]) is enabled, once per completed
     request; span and argument records inherently allocate. *)
  in
  (* Hoisted out of [try_inject]: per-call refs (and the recursive [go]
     closure this loop used to be) were a few words on every event, which
     adds up at one [try_inject] per event over millions of events. *)
  let injected_wakeup = ref false in
  let injecting = ref false in
  let try_inject now =
    injected_wakeup := false;
    injecting := true;
    let capacity = capacity_at now in
    while
      !injecting
      && !busy < capacity
      && not (Fifo.is_empty decode_queue && Fifo.is_empty prefill_queue)
    do
      if clock.next_inject > now then begin
        (* Pipeline entry busy: leave the queues untouched — popping the
           head and re-pushing it would rotate FIFO order on every
           stalled injection — and wake up at the slot time. *)
        if not !injected_wakeup then begin
          Heap.push events ~priority:clock.next_inject Wakeup;
          injected_wakeup := true
        end;
        injecting := false
      end
      else begin
        (* Two separate bindings, not a tuple destructure: the tuple
           was a 3-word allocation per injected token. *)
        let from_decode = not (Fifo.is_empty decode_queue) in
        let s =
          if from_decode then Fifo.pop decode_queue else Fifo.pop prefill_queue
        in
        let kind = if from_decode then Decode else Prefill in
        (match s.injected_first with
        | None -> s.injected_first <- Some now
        | Some _ -> ());
        (match kind with
        | Prefill ->
          s.prefill_remaining <- s.prefill_remaining - 1;
          s.prefill_inflight <- s.prefill_inflight + 1;
          (* More prefill tokens of this sequence stay in the queue. *)
          if s.prefill_remaining > 0 then Fifo.push prefill_queue s
        | Decode -> ());
        incr busy;
        clock.next_inject <- now +. ii;
        s.position <- s.position + 1;
        Heap.push events
          ~priority:(now +. latency_at s.position)
          (match kind with Prefill -> s.ev_prefill | Decode -> s.ev_decode)
      end
    done
  in
  while not (Heap.is_empty events) do
    let t = Heap.min_priority events in
    let ev = Heap.take_min events in
    advance_clock t;
    (match ev with
    | Wakeup -> try_inject t
    | Arrival s ->
      Fifo.push prefill_queue s;
      try_inject t
    | Complete (s, kind) ->
      decr busy;
      incr tokens;
      clock.makespan <- t;
      (match kind with
      | Prefill ->
        s.prefill_inflight <- s.prefill_inflight - 1;
        if s.prefill_remaining = 0 && s.prefill_inflight = 0 then begin
          s.prefill_done <- Some t;
          Fifo.push decode_queue s
        end
      | Decode ->
        incr decode_tokens_out;
        if s.first_token = None then s.first_token <- Some t;
        s.decode_remaining <- s.decode_remaining - 1;
        if s.decode_remaining > 0 then Fifo.push decode_queue s
        else begin
          let injected =
            match s.injected_first with Some x -> x | None -> s.req.arrival_s
          in
          completed :=
            {
              request = s.req;
              first_token_s = (match s.first_token with Some x -> x | None -> t);
              finish_s = t;
              queue_wait_s = injected -. s.req.arrival_s;
            }
            :: !completed;
          record_completion s ~finish:t
        end);
      try_inject t);
    sample_gauges t
  done;
  let makespan = clock.makespan in
  let result =
    {
      completed_requests = List.rev !completed;
      makespan_s = makespan;
      tokens_processed = !tokens;
      decode_tokens_out = !decode_tokens_out;
      throughput_tokens_per_s =
        (if makespan > 0.0 then float_of_int !tokens /. makespan else 0.0);
      mean_slot_occupancy =
        (if makespan > 0.0 then clock.occupancy /. (makespan *. float_of_int slots)
         else 0.0);
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let m = Hnlpu_obs.Sink.metrics o in
    Hnlpu_obs.Metrics.incr m ~by:(float_of_int !tokens) "scheduler/tokens_processed";
    Hnlpu_obs.Metrics.incr m ~by:(float_of_int !decode_tokens_out)
      "scheduler/decode_tokens_out";
    (* Stamped with end-of-run sim time: when sweep shards merge, the
       longest-running shard's value wins whatever the merge order. *)
    Hnlpu_obs.Metrics.set_stamped m ~stamp:makespan "scheduler/makespan_s"
      makespan;
    Hnlpu_obs.Metrics.set_stamped m ~stamp:makespan
      "scheduler/throughput_tokens_per_s" result.throughput_tokens_per_s;
    Hnlpu_obs.Metrics.set_stamped m ~stamp:makespan
      "scheduler/mean_slot_occupancy" result.mean_slot_occupancy);
  result
