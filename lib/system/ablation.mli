(** Ablation studies for the design choices the paper discusses (§8).

    Each function returns typed rows (and the CLI/bench render them), so
    the trade-offs behind the headline design are explorable:

    - {b interconnect}: §7.4 shows CXL communication dominating at short
      context, and §8 argues "advanced interconnection technology (e.g.,
      wafer-scale integration) would put both HNLPU and field-programmable
      LPU in a stronger position" — quantified here by swapping the link.
    - {b field-programmable}: §8's "Field-programmable vs
      Metal-programmable": SRAM-backed weights cost ~10x the area per
      parameter, need more chips, and add interconnect pressure; in
      exchange, re-spins are free.
    - {b activation precision}: the bit-serial HN trades one plane per
      activation bit; fewer bits shorten projection, more bits raise it.
    - {b POPCNT slack}: undersized regions fail to route skewed weight
      distributions; oversized ones waste area.  Monte-Carlo over random
      FP4 matrices. *)

type interconnect_row = {
  link_name : string;
  bandwidth_gbps : float;
  latency_ns : float;
  throughput_tokens_per_s : float;
  comm_fraction : float;
}

val interconnect_options : (string * Hnlpu_noc.Link.t) list
(** PCIe5-class, CXL 3.0 (the design point), NVLink-class, wafer-scale. *)

val interconnect_sweep :
  ?tech:Hnlpu_gates.Tech.t -> ?context:int -> ?domains:int ->
  Hnlpu_model.Config.t -> interconnect_row list
(** All sweeps in this module map their design points across the
    {!Hnlpu_par.Par} pool; [?domains] overrides the pool width and results
    are identical for every width. *)

type programmability_row = {
  variant : string;
  tr_per_weight : float;
  chips : int;
  silicon_mm2 : float;
  mask_nre_usd : float;
  respin_usd : float;
  relative_throughput : float;
      (** Normalized to metal-programmable = 1.0; more chips widen the
          collective groups. *)
}

val programmability : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> programmability_row list
(** [metal-programmable; field-programmable] for the model. *)

type precision_row = {
  act_bits : int;
  serial_planes : int;
  projection_us_per_layer : float;
  throughput_tokens_per_s : float;
}

val precision_sweep :
  ?tech:Hnlpu_gates.Tech.t -> ?domains:int -> Hnlpu_model.Config.t -> precision_row list
(** Activation width 4 / 8 / 16 bits (the design streams FP16). *)

type slack_row = {
  slack : float;
  failure_rate : float;    (** Fraction of random matrices that overflow. *)
  area_ratio : float;      (** POPCNT area relative to slack 1.0. *)
}

val slack_sweep :
  Hnlpu_util.Rng.t -> ?domains:int -> ?in_features:int -> ?trials:int ->
  unit -> slack_row list
(** Routing-failure probability vs region slack on random FP4 rows of the
    model's hidden width.  One generator is split off [rng] per slack
    point before the (parallel) Monte-Carlo trials, so the result depends
    only on [rng]'s state, not on the domain count. *)

type window_row = {
  window_context : int;
  full_tokens_per_s : float;
  windowed_tokens_per_s : float;
  speedup : float;
}

val sliding_window_sweep :
  ?tech:Hnlpu_gates.Tech.t -> ?domains:int -> unit -> window_row list
(** Full attention vs the real gpt-oss's alternating 128-token sliding
    window across the Figure 14 contexts: windowing halves the attention
    term on even layers, so the speedup grows with context (and defers the
    HBM stall). *)

type speculative_row = {
  lookahead : int;
  expected_tokens_per_pass : float;
  spec_tokens_per_s : float;
  spec_speedup : float;
}

val speculative_sweep :
  ?tech:Hnlpu_gates.Tech.t -> ?context:int -> ?acceptance:float -> ?domains:int ->
  Hnlpu_model.Config.t -> speculative_row list
(** Speculative decoding on HNLPU: a draft's k-token proposal verifies as
    one chunked-prefill pass (the §5.2 batching lever), so at acceptance
    rate a each pass yields [1 + sum a^i] tokens.  Returns the projected
    decode throughput for lookaheads 1/2/4/8 (default acceptance 0.7). *)

val chunk_sweep :
  ?tech:Hnlpu_gates.Tech.t -> ?context:int -> ?domains:int ->
  Hnlpu_model.Config.t -> (int * float) list
(** Prefill chunk size -> tokens/s (the batching lever of §5.2). *)
