(** The HNLPU performance model: per-token latency, throughput, and the
    execution-time breakdown of Figure 14.

    {2 Model}

    A token's latency sums per-layer components over the 36 layers, plus
    output sampling:

    - {b Communication}: 15 collective steps per layer (QKV all-reduce and
      reduces, attention statistics and partial-output exchanges, the output
      projection's row all-reduce + column all-gather, and the 4-step
      hierarchical all-chip all-reduce of the MoE combine).  Each step costs
      [(phy + engine + payload/bandwidth) * contention]: with up to 216
      tokens in flight, every link is time-shared by the stages of ~36
      layers, and the contention factor (calibrated to Figure 14's 82.9%
      share at 2K context) models that queueing.
    - {b Projection}: the HN arrays compute in a handful of bit-serial
      cycles, but activation vectors enter each bank through a
      {!Hnlpu_chip.Hn_array.feed_bytes_per_cycle} input lane — the visible
      cost is input streaming (FP16 activations).
    - {b Nonlinear}: VEX RMSNorm/router/SwiGLU/residual lanes.
    - {b Attention}: VEX KV-lane model, linear in context.
    - {b Stall}: HBM KV-spill fetch time not hidden behind attention
      compute (appears between 256K and 512K context).

    Throughput is [pipeline_slots / token_latency]: continuous batching
    keeps all 6 x layers slots full, so one token completes per slot per
    latency (paper §5.2). *)

type breakdown = {
  comm_s : float;
  projection_s : float;
  nonlinear_s : float;
  attention_s : float;
  stall_s : float;
}

val total_s : breakdown -> float

val fractions : breakdown -> breakdown
(** Each component divided by the total — the Figure 14 percentages. *)

val engine_base_s : float
(** Fixed per-step collective sequencing overhead (200 ns). *)

val link_contention_factor : float
(** Queueing multiplier on collective steps (calibrated, see above). *)

val comm_steps_per_layer : int
(** 15 — see the module preamble. *)

val per_layer_comm_s : ?link:Hnlpu_noc.Link.t -> Hnlpu_model.Config.t -> float

val per_layer_projection_s : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> float

val per_layer_nonlinear_s : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> float

val per_layer_attention_s : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> context:int -> float

val per_layer_stall_s : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> context:int -> float

val token_breakdown : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> context:int -> breakdown
(** Whole-token decomposition (all layers + sampling, which counts as
    nonlinear). *)

val token_latency_s : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> context:int -> float

val token_latency_cached : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> context:int -> float
(** Same value as {!token_latency_s}, memoized on [(tech, config,
    context)] behind a mutex — the hot consumers (SLO bisection, the
    scheduler's context-aware latency buckets, parallel sweeps) probe the
    same operating points repeatedly. *)

val pipeline_slots : Hnlpu_model.Config.t -> int
(** 216 for gpt-oss 120B. *)

val throughput_tokens_per_s : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> context:int -> float
(** 249,960 tokens/s at 2K context for gpt-oss 120B. *)

(** {1 Prefill}

    Prompt tokens of one sequence are mutually independent (§5.2), so the
    pipeline carries them in chunks: the per-chunk collectives batch the
    chunk's payloads into single transfers, amortizing the fixed per-step
    latency — decode cannot do this because each token waits for the
    previous one.  Chunked prefill approaches the streaming-bandwidth
    asymptote of the HN input buses. *)

val prefill_chunk_latency_s :
  ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> chunk:int -> context:int -> float
(** Latency of a [chunk]-token prefill group through the whole pipeline. *)

val prefill_throughput_tokens_per_s :
  ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> chunk:int -> context:int -> float
(** [pipeline_slots * chunk / chunk latency]; ~5x the decode rate at
    chunk 8 and >1M tokens/s toward the asymptote — the mechanism behind
    the paper's high prefill throughput under mixed workloads. *)

val stage_times_s :
  ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> context:int -> (string * float) list
(** Per-stage decode latencies of the six-stage Figure 11 pipeline; they
    sum to the per-layer total.  Labels are {!stage_names}, in order — the
    two can never disagree. *)

val figure14_contexts : int list
(** The six context lengths of Figure 14: 2K..512K. *)

val figure14 : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> (int * breakdown) list
(** The full Figure 14 sweep (per-token breakdowns). *)

val stage_names : string list
(** The six pipeline stages of Figure 11, for reporting — the canonical
    labels {!stage_times_s} attaches to its latencies. *)
