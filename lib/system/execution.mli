(** Execution-environment configuration a deployment declares for signoff.

    Everything stochastic in this codebase takes an explicit {!Hnlpu_util.Rng}
    ({!Scheduler.workload}, request sampling), {!Slo.sweep} merges the
    per-rate private telemetry sinks back in rate order after the parallel
    map, and {!Hnlpu_obs.Metrics} exports sorted by key — so a run replays
    bit-identically and is independent of domain-pool width (tested).  A
    deployment, however, can defeat each of those properties at the
    integration layer: seed from the wall clock, merge worker sinks as they
    complete, or dump a hash table in iteration order.  This record is the
    deployment's declaration of those choices; the DET-LINT signoff rule
    ({!Hnlpu_verify.Static.determinism}) walks it and flags every
    nondeterminism hazard.  Bundles carry it as optional manifest keys
    ([workload-seed], [sink-merge], [export-order], [domains]). *)

type seeding =
  | Fixed of int  (** Workload RNG pinned — replays are bit-identical. *)
  | Wall_clock    (** Seeded from the clock — every run diverges. *)

type merge_order =
  | Rate_order        (** Per-lane sinks merged in sweep (rate) order, the
                          {!Slo.sweep} discipline. *)
  | Completion_order  (** Merged as workers finish — order races. *)

type export_order =
  | Sorted      (** Artifacts iterate sorted keys ({!Hnlpu_obs.Metrics}). *)
  | Hash_order  (** Artifacts iterate a hash table — layout-dependent. *)

type t = {
  workload_seed : seeding;
  sink_merge : merge_order;
  export_order : export_order;
  domains : int option;
      (** Pinned domain-pool width, or [None] for the machine default.
          Width does not affect results ({!Hnlpu_par.Par} is
          width-independent by test), so this is informational. *)
}

val deterministic : t
(** [Fixed 42], [Rate_order], [Sorted], auto width — the reference
    deployment; DET-LINT-clean by construction. *)

val describe : t -> string
(** One line, manifest-style: [workload-seed=42 sink-merge=rate-order ...]. *)

(** {1 Manifest encoding} — total printers, partial parsers ([None] on an
    unknown token; [seeding_of_string] also accepts any integer). *)

val seeding_to_string : seeding -> string
val seeding_of_string : string -> seeding option
val merge_order_to_string : merge_order -> string
val merge_order_of_string : string -> merge_order option
val export_order_to_string : export_order -> string
val export_order_of_string : string -> export_order option
