(** Continuous-batching scheduler simulation (paper §5.2).

    HNLPU exposes [6 x layers] pipeline slots (216 for gpt-oss 120B).  A
    request with P prompt tokens and D decode tokens proceeds:

    - {b prefill}: its P tokens are mutually independent, so each occupies
      its own slot and they flow through the pipeline concurrently, limited
      only by free slots and the pipeline initiation interval;
    - {b decode}: autoregressive — one slot, one token in flight at a time,
      a new token starting as the previous completes.

    As slots free up, waiting work is admitted immediately ("dynamically
    schedules new sequences into the batch as soon as slots are freed") —
    prefill backlog first (it parallelizes), then new sequences.

    The simulator is event-driven over continuous time with per-token
    latency and initiation interval taken from {!Perf}; it reports
    throughput, time-to-first-token and per-request latency statistics. *)

type request = {
  arrival_s : float;
  prefill_tokens : int;
  decode_tokens : int;
}

type completed = {
  request : request;
  first_token_s : float;   (** Completion of the first decoded token. *)
  finish_s : float;
  queue_wait_s : float;    (** Arrival to first prefill-token injection. *)
}

type result = {
  completed_requests : completed list;
  makespan_s : float;
  tokens_processed : int;      (** Prefill + decode tokens. *)
  decode_tokens_out : int;
  throughput_tokens_per_s : float;
  mean_slot_occupancy : float; (** Time-averaged busy slots / total slots. *)
}

val workload :
  Hnlpu_util.Rng.t -> n:int -> rate_per_s:float -> mean_prefill:int ->
  mean_decode:int -> request list
(** Poisson arrivals with geometric-ish token counts (at least 1 each). *)

val capacity_profile : slots:int -> (float * int) list -> float -> int
(** [capacity_profile ~slots failures] preprocesses a slot-failure list
    (unsorted [(time, lost)] pairs) into a query function: applied to a
    time [now] it returns the surviving capacity, [max 0 (slots - total
    slots lost at or before now)].  Sorting plus prefix sums happen once;
    each query is a binary search — the scheduler calls it on every event,
    where the naive fold over the failure list was the hot path. *)

val simulate :
  ?tech:Hnlpu_gates.Tech.t -> ?context:int -> ?context_aware:bool ->
  ?slot_failures:(float * int) list -> ?obs:Hnlpu_obs.Sink.t ->
  Hnlpu_model.Config.t -> request list -> result
(** Run to completion of all requests.  [context] sets the per-token
    latency operating point (default 2048).

    [obs] installs a telemetry sink.  Each completed request records a
    "request" span with "queued"/"prefill"/"decode" child spans and a
    "first_token" instant on its own track; queue depth and busy slots are
    sampled as counter series on value changes; the metrics registry gains
    TTFT/E2E/queue-wait histograms and run aggregates.  With no sink the
    simulation takes the identical code path and the result is
    bit-identical to the uninstrumented simulator (tested).

    [context_aware] (default false) makes each token's latency depend on
    its sequence's current length instead of the fixed operating point —
    attention time grows as the KV cache fills (Figure 14's x-axis), so
    long conversations decode measurably slower.  Latencies are bucketed
    at powers of two and cached.

    [slot_failures] injects capacity loss: at each (time, n) the pipeline
    permanently loses [n] slots — the fault model behind the paper's
    spare-node maintenance provisioning (§8 "Yield and Fault Tolerance",
    Appendix B note 7).  In-flight tokens complete; admission shrinks.
    Throughput degrades proportionally and no request is lost. *)

val saturated_throughput :
  ?tech:Hnlpu_gates.Tech.t -> ?context:int -> Hnlpu_model.Config.t -> float
(** Closed-loop upper bound [slots / token_latency] — must agree with
    {!Perf.throughput_tokens_per_s}. *)
