open Hnlpu_model
open Hnlpu_noc
open Hnlpu_chip

type breakdown = {
  comm_s : float;
  projection_s : float;
  nonlinear_s : float;
  attention_s : float;
  stall_s : float;
}

let total_s b = b.comm_s +. b.projection_s +. b.nonlinear_s +. b.attention_s +. b.stall_s

let fractions b =
  let t = total_s b in
  {
    comm_s = b.comm_s /. t;
    projection_s = b.projection_s /. t;
    nonlinear_s = b.nonlinear_s /. t;
    attention_s = b.attention_s /. t;
    stall_s = b.stall_s /. t;
  }

let engine_base_s = 200.0e-9

let link_contention_factor = 4.17

(* Collective steps of one layer (parallel-link engines; an all-reduce over
   a group of 4 is a reduce step plus a broadcast step):
   QKV: 2 (Q all-reduce) + 1 (K reduce) + 1 (V reduce)
   Attention: 2 (softmax stats) + 2 (partial O)
   Output: 2 (row all-reduce) + 1 (column all-gather)
   MoE combine: 4 (hierarchical all-chip all-reduce). *)
let comm_steps payloads = List.concat_map (fun (steps, bytes) -> List.init steps (fun _ -> bytes)) payloads

let layer_payloads (c : Config.t) =
  let fp16 = Link.bytes_per_value in
  [
    (2, Config.q_dim c / 4 * fp16);    (* Q all-reduce *)
    (1, Config.kv_dim c / 4 * fp16);   (* K reduce *)
    (1, Config.kv_dim c / 4 * fp16);   (* V reduce *)
    (2, 64);                           (* softmax statistics *)
    (2, Config.q_dim c / 4 * fp16);    (* partial attention output *)
    (2, c.Config.hidden / 4 * fp16);   (* Xo row all-reduce *)
    (1, c.Config.hidden / 4 * fp16);   (* Xo column all-gather *)
    (4, c.Config.hidden * fp16);       (* MoE all-chip all-reduce *)
  ]

let comm_steps_per_layer = 15

let per_layer_comm_s ?(link = Link.cxl3) (c : Config.t) =
  let steps = comm_steps (layer_payloads c) in
  assert (List.length steps = comm_steps_per_layer);
  List.fold_left
    (fun acc bytes ->
      acc
      +. ((link.Link.phy_latency_s +. engine_base_s
          +. (float_of_int bytes /. link.Link.bandwidth_bytes_per_s))
         *. link_contention_factor))
    0.0 steps

let cycle_s (tech : Hnlpu_gates.Tech.t) = Hnlpu_gates.Tech.cycle_time_s tech

(* FP16 activations stream into each HN bank; one shared stream feeds the
   Q/K/V banks (same input slice) and one feeds up+gate (same vector). *)
let per_layer_projection_cycles (c : Config.t) =
  let fp16 = 2 in
  let stream n = Hn_array.stream_cycles ~bytes:(n * fp16) in
  stream (c.Config.hidden / 4)      (* QKV input slice *)
  + stream (Config.q_dim c / 4)     (* output projection input (column's heads) *)
  + stream c.Config.hidden          (* up + gate (shared stream) *)
  + stream c.Config.expert_hidden   (* down projection *)

let per_layer_projection_s ?(tech = Hnlpu_gates.Tech.n5) c =
  float_of_int (per_layer_projection_cycles c) *. cycle_s tech

let per_layer_nonlinear_s ?(tech = Hnlpu_gates.Tech.n5) c =
  float_of_int (Vex.nonlinear_cycles c) *. cycle_s tech

let per_layer_attention_s ?(tech = Hnlpu_gates.Tech.n5) (c : Config.t) ~context =
  (* Sliding-window configs alternate windowed/full layers; the per-layer
     average halves the long-context attention cost. *)
  match c.Config.sliding_window with
  | None -> float_of_int (Vex.attention_cycles c ~context) *. cycle_s tech
  | Some w ->
    let full = float_of_int (Vex.attention_cycles c ~context) in
    let windowed = float_of_int (Vex.attention_cycles c ~context:(min context w)) in
    (full +. windowed) /. 2.0 *. cycle_s tech

let per_layer_stall_s ?(tech = Hnlpu_gates.Tech.n5) (c : Config.t) ~context =
  let spilled = Attention_buffer.spilled_bytes_per_token Attention_buffer.hnlpu c ~context in
  (* With a sliding window only the full-attention half of the layers ever
     touches far-away KV, halving the spill traffic; the fetch overlaps
     those same layers' (full) attention passes. *)
  let fetch_fraction, overlap_cycles =
    match c.Config.sliding_window with
    | None -> (1.0, Vex.attention_cycles c ~context)
    | Some _ -> (0.5, Vex.attention_cycles c ~context)
  in
  let per_layer = spilled *. fetch_fraction /. float_of_int c.Config.num_layers in
  let fetch = Hbm.fetch_time_s Hbm.hnlpu ~bytes:per_layer in
  Hbm.stall_s Hbm.hnlpu ~fetch_s:fetch
    ~compute_s:(float_of_int overlap_cycles *. cycle_s tech)

let token_breakdown ?(tech = Hnlpu_gates.Tech.n5) (c : Config.t) ~context =
  let layers = float_of_int c.Config.num_layers in
  let sampling = float_of_int (Vex.sampling_cycles c) *. cycle_s tech in
  {
    comm_s = layers *. per_layer_comm_s c;
    projection_s = layers *. per_layer_projection_s ~tech c;
    nonlinear_s = (layers *. per_layer_nonlinear_s ~tech c) +. sampling;
    attention_s = layers *. per_layer_attention_s ~tech c ~context;
    stall_s = layers *. per_layer_stall_s ~tech c ~context;
  }

let token_latency_s ?tech c ~context = total_s (token_breakdown ?tech c ~context)

(* Memoized variant for the hot consumers (SLO bisection probes the same
   operating point dozens of times; parallel sweeps hit it from several
   domains at once, hence the mutex).  Keys are plain records — structural
   equality is exact.  The table is bounded defensively; real runs touch a
   handful of operating points. *)
let latency_cache : (Hnlpu_gates.Tech.t option * Config.t * int, float) Hashtbl.t =
  Hashtbl.create 64

let latency_cache_mutex = Mutex.create ()

let token_latency_cached ?tech c ~context =
  let key = (tech, c, context) in
  Mutex.lock latency_cache_mutex;
  let hit = Hashtbl.find_opt latency_cache key in
  Mutex.unlock latency_cache_mutex;
  match hit with
  | Some l -> l
  | None ->
    let l = token_latency_s ?tech c ~context in
    Mutex.lock latency_cache_mutex;
    if Hashtbl.length latency_cache > 4096 then Hashtbl.reset latency_cache;
    if not (Hashtbl.mem latency_cache key) then Hashtbl.add latency_cache key l;
    Mutex.unlock latency_cache_mutex;
    l

let pipeline_slots = Control_unit.pipeline_slots

let throughput_tokens_per_s ?tech c ~context =
  float_of_int (pipeline_slots c) /. token_latency_s ?tech c ~context

(* --- Prefill -------------------------------------------------------------- *)

let per_layer_comm_chunk_s ?(link = Link.cxl3) (c : Config.t) ~chunk =
  (* One collective step moves the whole chunk's payloads: the fixed terms
     are paid once per chunk, the serialization term scales. *)
  let steps = comm_steps (layer_payloads c) in
  List.fold_left
    (fun acc bytes ->
      acc
      +. ((link.Link.phy_latency_s +. engine_base_s
          +. (float_of_int (bytes * chunk) /. link.Link.bandwidth_bytes_per_s))
         *. link_contention_factor))
    0.0 steps

let prefill_chunk_latency_s ?(tech = Hnlpu_gates.Tech.n5) (c : Config.t) ~chunk ~context =
  if chunk < 1 then invalid_arg "Perf.prefill_chunk_latency_s: chunk >= 1";
  let layers = float_of_int c.Config.num_layers in
  let per_token =
    per_layer_projection_s ~tech c +. per_layer_nonlinear_s ~tech c
    +. per_layer_attention_s ~tech c ~context
  in
  layers *. (per_layer_comm_chunk_s c ~chunk +. (float_of_int chunk *. per_token))

let prefill_throughput_tokens_per_s ?tech c ~chunk ~context =
  float_of_int (pipeline_slots c * chunk)
  /. prefill_chunk_latency_s ?tech c ~chunk ~context

(* --- Figure 11 stage decomposition ------------------------------------------ *)

(* The single source of truth for stage labels: stage_times_s zips its
   latencies against this list, so chart and table output cannot drift. *)
let stage_names =
  [
    "S1: HN-Q/K/V + col all-reduce";
    "S2: attention QK + stats exchange";
    "S3: attention ZV + partial-O all-reduce";
    "S4: HN-Xo + row all-reduce + col all-gather";
    "S5: RMSNorm/router + HN-UP/GATE";
    "S6: SwiGLU + HN-DOWN + all-chip all-reduce";
  ]

let stage_times_s ?(tech = Hnlpu_gates.Tech.n5) (c : Config.t) ~context =
  let link = Link.cxl3 in
  let step bytes =
    (link.Link.phy_latency_s +. engine_base_s
    +. (float_of_int bytes /. link.Link.bandwidth_bytes_per_s))
    *. link_contention_factor
  in
  let fp16 = Link.bytes_per_value in
  let cyc n = float_of_int n *. cycle_s tech in
  let stream n = cyc (Hnlpu_chip.Hn_array.stream_cycles ~bytes:(n * 2)) in
  let attn = per_layer_attention_s ~tech c ~context /. 2.0 in
  let nl = per_layer_nonlinear_s ~tech c /. 2.0 in
  let q_bytes = Config.q_dim c / 4 * fp16 in
  let kv_bytes = Config.kv_dim c / 4 * fp16 in
  let h4_bytes = c.Config.hidden / 4 * fp16 in
  let h_bytes = c.Config.hidden * fp16 in
  List.map2
    (fun name t -> (name, t))
    stage_names
    [
      stream (c.Config.hidden / 4) +. (2.0 *. step q_bytes) +. (2.0 *. step kv_bytes);
      attn +. (2.0 *. step 64);
      attn +. (2.0 *. step q_bytes);
      stream (Config.q_dim c / 4) +. (2.0 *. step h4_bytes) +. step h4_bytes;
      nl +. stream c.Config.hidden;
      nl +. stream c.Config.expert_hidden +. (4.0 *. step h_bytes);
    ]

let figure14_contexts = [ 2048; 8192; 65536; 131072; 262144; 524288 ]

let figure14 ?tech c =
  List.map (fun l -> (l, token_breakdown ?tech c ~context:l)) figure14_contexts
