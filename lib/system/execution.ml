type seeding = Fixed of int | Wall_clock

type merge_order = Rate_order | Completion_order

type export_order = Sorted | Hash_order

type t = {
  workload_seed : seeding;
  sink_merge : merge_order;
  export_order : export_order;
  domains : int option;
}

let deterministic =
  {
    workload_seed = Fixed 42;
    sink_merge = Rate_order;
    export_order = Sorted;
    domains = None;
  }

let seeding_to_string = function
  | Fixed s -> string_of_int s
  | Wall_clock -> "wall-clock"

let seeding_of_string s =
  match s with
  | "wall-clock" -> Some Wall_clock
  | _ -> Option.map (fun n -> Fixed n) (int_of_string_opt s)

let merge_order_to_string = function
  | Rate_order -> "rate-order"
  | Completion_order -> "completion-order"

let merge_order_of_string = function
  | "rate-order" -> Some Rate_order
  | "completion-order" -> Some Completion_order
  | _ -> None

let export_order_to_string = function
  | Sorted -> "sorted"
  | Hash_order -> "hash-order"

let export_order_of_string = function
  | "sorted" -> Some Sorted
  | "hash-order" -> Some Hash_order
  | _ -> None

let describe e =
  Printf.sprintf
    "workload-seed=%s sink-merge=%s export-order=%s domains=%s"
    (seeding_to_string e.workload_seed)
    (merge_order_to_string e.sink_merge)
    (export_order_to_string e.export_order)
    (match e.domains with None -> "auto" | Some n -> string_of_int n)
