open Hnlpu_model
open Hnlpu_noc
module Par = Hnlpu_par.Par

type interconnect_row = {
  link_name : string;
  bandwidth_gbps : float;
  latency_ns : float;
  throughput_tokens_per_s : float;
  comm_fraction : float;
}

let interconnect_options =
  let mk bandwidth phy =
    { Link.cxl3 with Link.bandwidth_bytes_per_s = bandwidth; phy_latency_s = phy }
  in
  [
    ("PCIe 5.0 x16", mk 64.0e9 150.0e-9);
    ("CXL 3.0 x16 (design point)", Link.cxl3);
    ("NVLink-class", mk 450.0e9 50.0e-9);
    ("wafer-scale", mk 2.0e12 10.0e-9);
  ]

let throughput_with_link ?(tech = Hnlpu_gates.Tech.n5) ~link ~context (c : Config.t) =
  let layers = float_of_int c.Config.num_layers in
  let comm = layers *. Perf.per_layer_comm_s ~link c in
  let rest =
    layers
    *. (Perf.per_layer_projection_s ~tech c +. Perf.per_layer_nonlinear_s ~tech c
       +. Perf.per_layer_attention_s ~tech c ~context
       +. Perf.per_layer_stall_s ~tech c ~context)
  in
  let total = comm +. rest in
  (float_of_int (Perf.pipeline_slots c) /. total, comm /. total)

let interconnect_sweep ?tech ?(context = 2048) ?domains c =
  Par.parallel_map ?domains
    (fun (link_name, link) ->
      let throughput, comm_fraction = throughput_with_link ?tech ~link ~context c in
      {
        link_name;
        bandwidth_gbps = link.Link.bandwidth_bytes_per_s /. 1e9;
        latency_ns = link.Link.phy_latency_s *. 1e9;
        throughput_tokens_per_s = throughput;
        comm_fraction;
      })
    interconnect_options

type programmability_row = {
  variant : string;
  tr_per_weight : float;
  chips : int;
  silicon_mm2 : float;
  mask_nre_usd : float;
  respin_usd : float;
  relative_throughput : float;
}

(* SRAM-backed field-programmable HNs: each 4-bit weight needs storage
   cells and a selection mux on the popcount routing — ~10x the
   metal-embedded transistor cost (see Lora.Side_channel for the same
   factor on the 1% side-channel). *)
let field_programmable_factor = 10.0

let programmability ?(tech = Hnlpu_gates.Tech.n5) (c : Config.t) =
  let base_chips = Topology.chips in
  let die = 827.08 in
  let metal =
    {
      variant = "metal-programmable (HNLPU)";
      tr_per_weight = Hnlpu_chip.Hn_array.transistors_per_weight;
      chips = base_chips;
      silicon_mm2 = float_of_int base_chips *. die;
      mask_nre_usd =
        Hnlpu_litho.Mask_cost.sea_of_neurons_initial Hnlpu_litho.Mask_cost.Pessimistic
          ~chips:base_chips;
      respin_usd =
        Hnlpu_litho.Mask_cost.sea_of_neurons_respin Hnlpu_litho.Mask_cost.Pessimistic
          ~chips:base_chips;
      relative_throughput = 1.0;
    }
  in
  let fp_chips =
    int_of_float (ceil (float_of_int base_chips *. field_programmable_factor))
  in
  (* One fully homogeneous mask set serves every chip, and updates are a
     reload, not a re-spin.  The price is silicon and communication: wider
     distribution scales collective depth ~ sqrt(chips). *)
  let comm_scale = sqrt (float_of_int fp_chips /. float_of_int base_chips) in
  let context = 2048 in
  let layers = float_of_int c.Config.num_layers in
  let comm = layers *. Perf.per_layer_comm_s c in
  let rest =
    layers
    *. (Perf.per_layer_projection_s ~tech c +. Perf.per_layer_nonlinear_s ~tech c
       +. Perf.per_layer_attention_s ~tech c ~context)
  in
  let field =
    {
      variant = "field-programmable (SRAM-backed)";
      tr_per_weight = Hnlpu_chip.Hn_array.transistors_per_weight *. field_programmable_factor;
      chips = fp_chips;
      silicon_mm2 = float_of_int fp_chips *. die;
      mask_nre_usd = Hnlpu_litho.Mask_cost.full_set_usd Hnlpu_litho.Mask_cost.Pessimistic;
      respin_usd = 0.0;
      relative_throughput = (comm +. rest) /. ((comm *. comm_scale) +. rest);
    }
  in
  [ metal; field ]

type precision_row = {
  act_bits : int;
  serial_planes : int;
  projection_us_per_layer : float;
  throughput_tokens_per_s : float;
}

let precision_sweep ?(tech = Hnlpu_gates.Tech.n5) ?domains (c : Config.t) =
  let cycle = Hnlpu_gates.Tech.cycle_time_s tech in
  Par.parallel_map ?domains
    (fun bits ->
      let bytes_per_elem = float_of_int bits /. 8.0 in
      let stream n =
        let b = int_of_float (ceil (float_of_int n *. bytes_per_elem)) in
        Hnlpu_chip.Hn_array.stream_cycles ~bytes:(max 4 b)
      in
      let proj_cycles =
        stream (c.Config.hidden / 4)
        + stream (Config.q_dim c / 4)
        + stream c.Config.hidden
        + stream c.Config.expert_hidden
      in
      let proj = float_of_int proj_cycles *. cycle in
      let layers = float_of_int c.Config.num_layers in
      let total =
        layers
        *. (Perf.per_layer_comm_s c +. proj +. Perf.per_layer_nonlinear_s ~tech c
           +. Perf.per_layer_attention_s ~tech c ~context:2048)
      in
      {
        act_bits = bits;
        serial_planes = bits;
        projection_us_per_layer = proj *. 1e6;
        throughput_tokens_per_s = float_of_int (Perf.pipeline_slots c) /. total;
      })
    [ 4; 8; 16 ]

type slack_row = { slack : float; failure_rate : float; area_ratio : float }

let slack_sweep rng ?domains ?(in_features = 2880) ?(trials = 200) () =
  let regions = 16 in
  let balanced = (in_features + regions - 1) / regions in
  (* Split one generator per slack point sequentially up front, then run
     the Monte-Carlo trials in parallel: each point owns its stream, so
     the result is independent of the domain count. *)
  let points =
    List.map
      (fun slack -> (slack, Hnlpu_util.Rng.split rng))
      [ 1.0; 1.05; 1.1; 1.2; 1.5; 2.0 ]
  in
  Par.parallel_map ?domains
    (fun (slack, rng) ->
      let capacity = int_of_float (ceil (float_of_int balanced *. slack)) in
      let failures = ref 0 in
      (* Per-task scratch, reset per trial — not reallocated. *)
      let counts = Array.make regions 0 in
      for _ = 1 to trials do
        Array.fill counts 0 regions 0;
        for _ = 1 to in_features do
          let c = Hnlpu_util.Rng.int rng regions in
          counts.(c) <- counts.(c) + 1
        done;
        if Array.exists (fun k -> k > capacity) counts then incr failures
      done;
      {
        slack;
        failure_rate = float_of_int !failures /. float_of_int trials;
        area_ratio = float_of_int capacity /. float_of_int balanced;
      })
    points

type window_row = {
  window_context : int;
  full_tokens_per_s : float;
  windowed_tokens_per_s : float;
  speedup : float;
}

let sliding_window_sweep ?tech ?domains () =
  let full = Config.gpt_oss_120b and sw = Config.gpt_oss_120b_sw in
  Par.parallel_map ?domains
    (fun context ->
      let tf = Perf.throughput_tokens_per_s ?tech full ~context in
      let tw = Perf.throughput_tokens_per_s ?tech sw ~context in
      { window_context = context; full_tokens_per_s = tf;
        windowed_tokens_per_s = tw; speedup = tw /. tf })
    Perf.figure14_contexts

type speculative_row = {
  lookahead : int;
  expected_tokens_per_pass : float;
  spec_tokens_per_s : float;
  spec_speedup : float;      (** Over plain decode. *)
}

let speculative_sweep ?tech ?(context = 2048) ?(acceptance = 0.7) ?domains
    (c : Config.t) =
  if acceptance < 0.0 || acceptance >= 1.0 then
    invalid_arg "Ablation.speculative_sweep: acceptance in [0,1)";
  let base = Perf.throughput_tokens_per_s ?tech c ~context in
  Par.parallel_map ?domains
    (fun k ->
      (* Greedy speculative: accepted prefix length has expectation
         sum_{i<=k} a^i; each pass also yields the corrected/bonus token.
         The verification pass rides the chunked-prefill path (k+1 tokens
         through the pipeline as one block). *)
      let a = acceptance in
      let expected = (a *. (1.0 -. (a ** float_of_int k)) /. (1.0 -. a)) +. 1.0 in
      let pass_latency = Perf.prefill_chunk_latency_s ?tech c ~chunk:(k + 1) ~context in
      let tput =
        float_of_int (Perf.pipeline_slots c) *. expected /. pass_latency
      in
      {
        lookahead = k;
        expected_tokens_per_pass = expected;
        spec_tokens_per_s = tput;
        spec_speedup = tput /. base;
      })
    [ 1; 2; 4; 8 ]

let chunk_sweep ?tech ?(context = 2048) ?domains c =
  Par.parallel_map ?domains
    (fun chunk ->
      (chunk, Perf.prefill_throughput_tokens_per_s ?tech c ~chunk ~context))
    [ 1; 2; 4; 8; 16; 32; 64 ]
