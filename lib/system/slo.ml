open Hnlpu_util

type objectives = { ttft_p95_s : float; e2e_p95_s : float }

let interactive = { ttft_p95_s = 0.2; e2e_p95_s = 30.0 }

type evaluation = {
  rate_per_s : float;
  throughput_tokens_per_s : float;
  ttft_p95 : float;
  e2e_p95 : float;
  occupancy : float;
  meets : bool;
}

let evaluate ?(seed = 1234) ?(requests = 150) ?(mean_prefill = 256)
    ?(mean_decode = 128) ?obs config obj ~rate_per_s =
  if rate_per_s <= 0.0 then invalid_arg "Slo.evaluate: rate must be positive";
  let rng = Rng.create seed in
  let reqs =
    Scheduler.workload rng ~n:requests ~rate_per_s ~mean_prefill ~mean_decode
  in
  let r = Scheduler.simulate ?obs config reqs in
  (* Two streaming sketches instead of a scratch sample array: constant
     memory however many requests complete, quantiles within
     [Sketch.relative_error] of the exact percentile (property-tested in
     test_obs).  The recursive walk feeds both per cons cell, allocating
     nothing per request. *)
  let ttft_sk = Hnlpu_obs.Sketch.create () in
  let e2e_sk = Hnlpu_obs.Sketch.create () in
  let rec feed = function
    | [] -> ()
    | c :: rest ->
      let arrival = c.Scheduler.request.Scheduler.arrival_s in
      Hnlpu_obs.Sketch.observe ttft_sk (c.Scheduler.first_token_s -. arrival);
      Hnlpu_obs.Sketch.observe e2e_sk (c.Scheduler.finish_s -. arrival);
      feed rest
  in
  feed r.Scheduler.completed_requests;
  (* Empty sketches yield [nan], matching the old empty-array path. *)
  let ttft_p95 = Hnlpu_obs.Sketch.quantile ttft_sk 0.95 in
  let e2e_p95 = Hnlpu_obs.Sketch.quantile e2e_sk 0.95 in
  {
    rate_per_s;
    throughput_tokens_per_s = r.Scheduler.throughput_tokens_per_s;
    ttft_p95;
    e2e_p95;
    occupancy = r.Scheduler.mean_slot_occupancy;
    meets = ttft_p95 <= obj.ttft_p95_s && e2e_p95 <= obj.e2e_p95_s;
  }

let sweep ?seed ?requests ?mean_prefill ?mean_decode ?domains ?obs config obj
    ~rates =
  List.iter
    (fun r -> if r <= 0.0 then invalid_arg "Slo.sweep: rates must be positive")
    rates;
  (* Each rate gets a private sink; merging in index order afterwards keeps
     the combined telemetry identical whatever the domain count.  The
     sinks live in an array indexed once per task — [List.nth] here was an
     O(n^2) walk of a shared list from inside every parallel task.  A
     counters-only caller sink propagates to the private sinks, so no span
     records are allocated that the merge would just discard. *)
  let sinks =
    match obs with
    | None -> [||]
    | Some parent ->
      Array.init (List.length rates) (fun _ ->
          Hnlpu_obs.Sink.create
            ~events:(Hnlpu_obs.Sink.events_enabled parent)
            ~exact_histograms:(Hnlpu_obs.Sink.exact_histograms parent)
            ())
  in
  let tagged = List.mapi (fun i r -> (i, r)) rates in
  let evals =
    Hnlpu_par.Par.parallel_map ?domains
      (fun (i, rate_per_s) ->
        let obs = if Array.length sinks = 0 then None else Some sinks.(i) in
        evaluate ?seed ?requests ?mean_prefill ?mean_decode ?obs config obj
          ~rate_per_s)
      tagged
  in
  (match obs with
  | None -> ()
  | Some into ->
    Array.iter (fun s -> Hnlpu_obs.Sink.merge_into ~into s) sinks);
  evals

let max_rate ?seed ?requests ?(mean_prefill = 256) ?(mean_decode = 128)
    ?(tolerance = 0.05) config obj =
  if tolerance <= 0.0 then invalid_arg "Slo.max_rate: tolerance must be positive";
  let meets rate =
    (evaluate ?seed ?requests ~mean_prefill ~mean_decode config obj ~rate_per_s:rate)
      .meets
  in
  (* Upper bound: the token-throughput ceiling over the mean request size. *)
  let ceiling =
    Perf.throughput_tokens_per_s config ~context:2048
    /. float_of_int (mean_prefill + mean_decode)
  in
  if not (meets 1.0) then 0.0
  else begin
    let lo = ref 1.0 and hi = ref (2.0 *. ceiling) in
    (* Ensure the top is infeasible; if even 2x ceiling passes (tiny
       workloads), report it. *)
    if meets !hi then !hi
    else begin
      while (!hi -. !lo) /. !hi > tolerance do
        let mid = sqrt (!lo *. !hi) in
        if meets mid then lo := mid else hi := mid
      done;
      !lo
    end
  end
