(* Thin wrapper over the Fleet layer: dispatch decisions come from
   [Fleet.dispatch] (indexed min-heap, O(log nodes) per request instead
   of the historical O(nodes) scan, with an identical choice sequence),
   while each node still runs the detailed token-level [Scheduler].  For
   thousands of nodes and 10⁶+ request traces, use [Fleet.run] directly —
   this module keeps the list-based API for the small-fleet Table 3
   experiments. *)

type policy = Round_robin | Least_loaded

type node_stat = { node : int; requests : int; tokens : int; occupancy : float }

type result = {
  nodes : int;
  total_tokens : int;
  makespan_s : float;
  aggregate_throughput_tokens_per_s : float;
  per_node : node_stat list;
  imbalance : float;
}

let request_tokens (r : Scheduler.request) =
  r.Scheduler.prefill_tokens + r.Scheduler.decode_tokens

let fleet_policy = function
  | Round_robin -> Fleet.Round_robin
  | Least_loaded -> Fleet.Least_loaded

(* Returns the per-node request bins plus a counts array, so callers
   never pay the historical List.length-per-node accumulation. *)
let dispatch policy ~nodes requests =
  let weights =
    Array.of_list (List.map (fun r -> float (request_tokens r)) requests)
  in
  let targets = Fleet.dispatch ~policy:(fleet_policy policy) ~nodes weights in
  let bins = Array.make nodes [] in
  let counts = Array.make nodes 0 in
  List.iteri
    (fun i r ->
      let t = targets.(i) in
      bins.(t) <- r :: bins.(t);
      counts.(t) <- counts.(t) + 1)
    requests;
  (Array.map List.rev bins, counts)

let simulate ?tech ?context ?(policy = Least_loaded) ~nodes config requests =
  if nodes <= 0 then invalid_arg "Multi_node.simulate: nodes must be positive";
  let bins, counts = dispatch policy ~nodes requests in
  let results =
    Array.map
      (fun reqs ->
        if reqs = [] then None
        else Some (Scheduler.simulate ?tech ?context config reqs))
      bins
  in
  let per_node =
    Array.to_list
      (Array.mapi
         (fun node r ->
           match r with
           | None -> { node; requests = 0; tokens = 0; occupancy = 0.0 }
           | Some r ->
               {
                 node;
                 requests = counts.(node);
                 tokens = r.Scheduler.tokens_processed;
                 occupancy = r.Scheduler.mean_slot_occupancy;
               })
         results)
  in
  let total_tokens = List.fold_left (fun a s -> a + s.tokens) 0 per_node in
  let makespan =
    Array.fold_left
      (fun acc r ->
        match r with None -> acc | Some r -> Float.max acc r.Scheduler.makespan_s)
      0.0 results
  in
  let mean_tokens = float_of_int total_tokens /. float_of_int nodes in
  let max_tokens =
    List.fold_left (fun a s -> max a s.tokens) 0 per_node |> float_of_int
  in
  {
    nodes;
    total_tokens;
    makespan_s = makespan;
    aggregate_throughput_tokens_per_s =
      (if makespan > 0.0 then float_of_int total_tokens /. makespan else 0.0);
    per_node;
    imbalance = (if mean_tokens > 0.0 then max_tokens /. mean_tokens else 1.0);
  }

let scaling_efficiency ?policy ~nodes config requests =
  if requests = [] then invalid_arg "Multi_node.scaling_efficiency: empty workload";
  let multi = simulate ?policy ~nodes config requests in
  let single = Scheduler.simulate config requests in
  (* Speedup over one node, normalized by the fleet size. *)
  let speedup = single.Scheduler.makespan_s /. multi.makespan_s in
  speedup /. float_of_int nodes
