open Hnlpu_model

type stage_stat = {
  stage_label : string;
  service_s : float;
  slots : int;
  utilization : float;
}

type t = {
  tokens : int;
  sim_time_s : float;
  measured_throughput_tokens_per_s : float;
  measured_latency_s : float;
  predicted_throughput_tokens_per_s : float;
  predicted_latency_s : float;
  total_slots : int;
  stage_stats : stage_stat list;
}

let run ?(tech = Hnlpu_gates.Tech.n5) ?(context = 2048) ?(tokens = 2000) ?obs
    ?(obs_tokens = 32) (c : Config.t) =
  if tokens < 10 then invalid_arg "Trace.run: need at least 10 tokens";
  if obs_tokens < 0 then invalid_arg "Trace.run: obs_tokens must be >= 0";
  let per_layer = Perf.stage_times_s ~tech c ~context in
  let layers = c.Config.num_layers in
  (* The full pipeline: layer-major, stage-minor. *)
  let services =
    Array.concat
      (List.init layers (fun l ->
           Array.of_list
             (List.mapi
                (fun s (_, d) -> (Printf.sprintf "L%02d/S%d" l (s + 1), d))
                per_layer)))
  in
  let n_stages = Array.length services in
  let ii_target =
    Perf.token_latency_s ~tech c ~context /. float_of_int (Perf.pipeline_slots c)
  in
  let slots = Array.map (fun (_, d) -> max 1 (int_of_float (ceil (d /. ii_target)))) services in
  let ii = Array.mapi (fun i (_, d) -> d /. float_of_int slots.(i)) services in
  (* enter.(s) = entry time of the previous token into stage s;
     exit_prev.(s) = exit time of the current token from stage s-1. *)
  let last_entry = Array.make n_stages neg_infinity in
  let completion = Array.make tokens 0.0 in
  let entry0 = Array.make tokens 0.0 in
  let busy = Array.make n_stages 0.0 in
  (* Inject at the pipeline's natural initiation interval (the widest
     stage's), so queueing does not pile up at the entry and the measured
     latency reflects the flow, not an unbounded backlog. *)
  let inject_ii = Array.fold_left Float.max 0.0 ii in
  (* Span recording covers the first [obs_tokens] tokens: enough to see the
     pipeline fill and reach steady state without drowning the ring buffer
     in tokens x stages spans.  One track per (stage, slot) keeps spans on
     a track disjoint — token t+slots enters at least d seconds after
     token t. *)
  let emit_span t s enter d =
    match obs with
    | None -> ()
    | Some o when t >= obs_tokens -> ignore o
    | Some o ->
      let label, _ = services.(s) in
      Hnlpu_obs.Sink.span o ~cat:"stage"
        ~args:[ ("token", Hnlpu_obs.Event.I t); ("stage", Hnlpu_obs.Event.I s) ]
        ~track:
          (Hnlpu_obs.Event.track ~process:"pipeline"
             ~thread:(Printf.sprintf "%s#%d" label (t mod slots.(s))))
        ~name:(Printf.sprintf "tok%03d" t)
        ~start_s:enter ~dur_s:d
  in
  for t = 0 to tokens - 1 do
    let clock = ref (float_of_int t *. inject_ii) in
    for s = 0 to n_stages - 1 do
      let _, d = services.(s) in
      let enter = Float.max !clock (last_entry.(s) +. ii.(s)) in
      last_entry.(s) <- enter;
      busy.(s) <- busy.(s) +. ii.(s);
      if s = 0 then entry0.(t) <- enter;
      emit_span t s enter d;
      clock := enter +. d
    done;
    completion.(t) <- !clock
  done;
  (* Steady-state window: drop the warm-up half. *)
  let lo = tokens / 2 in
  let window = float_of_int (tokens - 1 - lo) in
  let sim_time = completion.(tokens - 1) in
  let measured_tp = window /. (completion.(tokens - 1) -. completion.(lo)) in
  let latency_sum = ref 0.0 in
  for t = lo to tokens - 1 do
    latency_sum := !latency_sum +. (completion.(t) -. entry0.(t))
  done;
  let stage_stats =
    Array.to_list
      (Array.mapi
         (fun s (label, d) ->
           {
             stage_label = label;
             service_s = d;
             slots = slots.(s);
             utilization = Float.min 1.0 (busy.(s) /. sim_time);
           })
         services)
  in
  let result =
    {
      tokens;
      sim_time_s = sim_time;
      measured_throughput_tokens_per_s = measured_tp;
      measured_latency_s = !latency_sum /. (window +. 1.0);
      predicted_throughput_tokens_per_s = Perf.throughput_tokens_per_s ~tech c ~context;
      predicted_latency_s = Perf.token_latency_s ~tech c ~context;
      total_slots = Array.fold_left ( + ) 0 slots;
      stage_stats;
    }
  in
  (match obs with
  | None -> ()
  | Some o ->
    let m = Hnlpu_obs.Sink.metrics o in
    List.iter
      (fun st -> Hnlpu_obs.Metrics.observe m "pipeline/stage_utilization" st.utilization)
      result.stage_stats;
    Hnlpu_obs.Metrics.incr m ~by:(float_of_int tokens) "pipeline/tokens";
    Hnlpu_obs.Metrics.set m "pipeline/measured_throughput_tokens_per_s"
      result.measured_throughput_tokens_per_s;
    Hnlpu_obs.Metrics.set m "pipeline/measured_latency_s" result.measured_latency_s;
    Hnlpu_obs.Metrics.set m "pipeline/predicted_throughput_tokens_per_s"
      result.predicted_throughput_tokens_per_s;
    Hnlpu_obs.Metrics.set m "pipeline/predicted_latency_s" result.predicted_latency_s);
  result

let busiest_stage t =
  match t.stage_stats with
  | [] -> invalid_arg "Trace.busiest_stage: empty"
  | first :: rest ->
    List.fold_left
      (fun best s -> if s.utilization > best.utilization then s else best)
      first rest
