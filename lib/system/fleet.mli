(** Fleet-scale cluster simulator: thousands of nodes, 10⁶–10⁷ requests,
    domain-sharded with byte-identical results at any [-j].

    The paper's TCO comparison is 16-chip HNLPU {e nodes} against H100
    {e clusters}; this module simulates the cluster side of that story.
    Where {!Scheduler} models one node token-by-token (216 pipeline
    slots, continuous batching), [Fleet] models each node as a {b fluid
    server}: a request consumes
    [prefill/prefill_rate + decode/decode_rate] seconds of node
    capacity, queueing behind the node's next-free time.  That
    abstraction is what makes 2,000 nodes × 10⁶ requests tractable —
    the per-request dispatch path allocates ~nothing (ALLOC-HOT Leaf,
    see [Lint_config]) and telemetry lives in {!Hnlpu_obs.Sketch}
    histograms, so memory stays flat however long the trace runs.

    {2 Sharding and determinism}

    The node array is split into [config.shards] contiguous ranges, and
    {!Hnlpu_par.Par} distributes the shards over domains.  Every shard
    re-derives the {e same} full trace from the seed (an
    {!Arrivals} cursor is cheap; a materialized trace is not) and
    processes only the requests it owns — ownership is
    [index mod shards], or the target node's shard under
    [Session_affinity], so a request's routing never depends on another
    shard's state.  Shard results merge in shard-index order.  Because
    the shard count is part of [config] (not derived from the domain
    count), results are {b byte-identical at any [-j]}; the determinism
    test pins [-j ∈ {1,2,4,8}] including a failure/drain schedule.

    The price of shard independence is that routing state is per-shard:
    [Least_loaded] picks the least-loaded node {e of the request's own
    shard} (requests interleave across shards round-robin, so shards
    see statistically identical streams), and rack power caps are
    enforced within each shard's rack slice.  With thousands of nodes
    per shard this is the standard "power-of-d-choices over a
    partition" regime: imbalance numbers stay within a few percent of a
    global scan while the dispatch path stays lock-free. *)

(** How a request picks a node (within its shard):

    - [Round_robin]: cyclic over the shard's nodes, skipping inactive
      ones;
    - [Least_loaded]: the node with the earliest next-free time, via an
      indexed min-heap — O(log n) per dispatch where the old
      {!Multi_node} scan was O(n);
    - [Session_affinity]: a user-id hash pins each user to a home node
      (KV/prefix locality), probing forward within the shard when the
      home node is failed or drained;
    - [Power_aware]: least-loaded among nodes that are already hot or
      whose rack is under [rack_power_cap] hot nodes — trades queueing
      delay for rack power headroom (ROADMAP's rack-cap item).  When
      every candidate rack is capped the request falls back to plain
      least-loaded and [power_cap_overrides] counts the violation. *)
type policy = Round_robin | Least_loaded | Session_affinity | Power_aware

val policy_name : policy -> string
(** ["rr" | "ll" | "sa" | "pa"]. *)

val policy_of_string : string -> policy option
(** Inverse of {!policy_name} (also accepts the long constructor names,
    case-insensitively). *)

type node_event_kind =
  | Fail  (** Node dies: backlog re-dispatches through the policy
              (counted in [redispatched_tokens]); the node holds no
              work until a later [Recover]. *)
  | Drain  (** Node stops taking new work but finishes its backlog. *)
  | Recover  (** Failed/drained node rejoins the eligible set. *)

type node_event = { at_s : float; node : int; kind : node_event_kind }

val fail_recover_schedule :
  nodes:int -> fraction:float -> at_s:float -> recover_after_s:float -> node_event array
(** Deterministic schedule failing every ⌊1/fraction⌋-th node at [at_s]
    and recovering it [recover_after_s] later — the canonical chaos
    schedule the determinism tests and the bench reuse. *)

type config = {
  nodes : int;
  shards : int;  (** Determinism granule; fixed per run, independent of [-j]. *)
  rack_size : int;  (** Nodes per rack (racks subdivide a shard's range). *)
  rack_power_cap : int;  (** Max simultaneously hot nodes per rack. *)
  idle_after_s : float;  (** A node cools to idle after this much inactivity. *)
  prefill_tokens_per_s : float;  (** Per-node chunked-prefill rate. *)
  decode_tokens_per_s : float;  (** Per-node aggregate decode rate (216 slots). *)
  decode_token_latency_s : float;  (** Single-stream per-token latency. *)
}

val config_of_model :
  ?tech:Hnlpu_gates.Tech.t ->
  ?context:int ->
  ?shards:int ->
  ?rack_size:int ->
  ?rack_power_cap:int ->
  nodes:int ->
  Hnlpu_model.Config.t ->
  config
(** Node rates from the {!Perf} model at [context] (default 2048):
    decode = {!Perf.throughput_tokens_per_s}, prefill =
    {!Perf.prefill_throughput_tokens_per_s} at chunk 8, per-token
    latency = {!Perf.token_latency_cached}.  Defaults: [shards] 8,
    [rack_size] 16, [rack_power_cap] 12, [idle_after_s] 30. *)

val capacity_req_per_s : config -> Arrivals.spec -> float
(** Aggregate request rate the fleet can absorb at 100% utilization:
    [nodes / E\[service seconds per request\]] under the spec's mean
    token counts — the natural unit for offered-rate sweeps. *)

type result = {
  r_nodes : int;
  r_shards : int;
  dispatched : int;  (** Requests that reached a node. *)
  dropped : int;  (** Requests with no eligible node (all failed/drained). *)
  total_tokens : float;  (** Prefill + decode tokens dispatched. *)
  redispatched_tokens : float;  (** Backlog moved off failed nodes. *)
  makespan_s : float;  (** Last request completion. *)
  throughput_tokens_per_s : float;
  imbalance : float;  (** Max/mean per-node tokens (1.0 = perfect). *)
  mean_utilization : float;  (** Busy node-seconds / (nodes × makespan). *)
  peak_rack_hot : int;  (** Max simultaneously hot nodes in any rack. *)
  power_cap_overrides : int;  (** [Power_aware] forced past the cap. *)
  ttft : Hnlpu_obs.Sketch.t;  (** Queue wait + prefill + first token. *)
  e2e : Hnlpu_obs.Sketch.t;  (** Arrival to last decoded token. *)
  queue_wait : Hnlpu_obs.Sketch.t;
  per_node_tokens : float array;  (** Length [nodes]. *)
  per_node_requests : int array;  (** Length [nodes]. *)
}

val run :
  ?domains:int ->
  ?obs:Hnlpu_obs.Sink.t ->
  ?node_events:node_event array ->
  policy:policy ->
  requests:int ->
  seed:int ->
  config ->
  Arrivals.spec ->
  result
(** Simulate [requests] arrivals from the spec over the fleet.
    [node_events] must be sorted by time (checked); events apply to each
    shard's own nodes as simulated time passes.  [?obs] receives
    per-shard counters/sketches merged in shard order plus
    sim-time-stamped gauges, so the registry too is identical at any
    [-j].  Raises [Invalid_argument] on a non-positive node/shard/
    request count, [shards > nodes], or unsorted events. *)

type objectives = { max_ttft_p99_s : float; max_e2e_p99_s : float }

val interactive : objectives
(** TTFT p99 ≤ 0.5 s, E2E p99 ≤ 30 s. *)

type frontier_point = {
  fp_policy : policy;
  offered_req_per_s : float;
  utilization_of_capacity : float;  (** Offered rate / {!capacity_req_per_s}. *)
  ttft_p50_s : float;
  ttft_p99_s : float;
  e2e_p99_s : float;
  fp_imbalance : float;
  fp_throughput_tokens_per_s : float;
  fp_dropped : int;
  meets_slo : bool;
}

val sweep :
  ?domains:int ->
  ?node_events:node_event array ->
  policies:policy list ->
  rates:float list ->
  requests:int ->
  seed:int ->
  objectives ->
  config ->
  Arrivals.spec ->
  frontier_point list
(** The SLO capacity frontier: one {!run} per (policy, offered rate) —
    the grid parallelized via {!Hnlpu_par.Par.parallel_map} (each run's
    internal sharding degrades to sequential inside the pool), points
    returned grouped by policy in the order given, rates ascending as
    given.  A policy's {e capacity} is the largest rate with
    [meets_slo]. *)

val dispatch : policy:policy -> nodes:int -> float array -> int array
(** Static assignment for pre-materialized workloads ({!Multi_node}'s
    backend): [dispatch ~policy ~nodes weights] returns a target node
    per weight, [Round_robin] cycling and [Least_loaded] accumulating
    weight on the heap (identical choices to the historical O(nodes)
    scan, at O(log nodes)).  Raises [Invalid_argument] for the
    trace-driven policies ([Session_affinity], [Power_aware]) and
    non-positive [nodes]. *)
