(** Service-level-objective capacity planning on the continuous-batching
    pipeline.

    The paper argues a single HNLPU node replaces a mid-size GPU cluster
    for serving; the operational question is how much *interactive* load
    one node absorbs before latency objectives break.  This module answers
    it by bisecting the offered rate over {!Scheduler} simulations. *)

type objectives = {
  ttft_p95_s : float;     (** Time-to-first-token 95th percentile. *)
  e2e_p95_s : float;      (** Arrival-to-completion 95th percentile. *)
}

val interactive : objectives
(** 200 ms TTFT, 30 s end-to-end — chat-grade targets. *)

type evaluation = {
  rate_per_s : float;
  throughput_tokens_per_s : float;
  ttft_p95 : float;
  e2e_p95 : float;
  occupancy : float;
  meets : bool;
}

val evaluate :
  ?seed:int -> ?requests:int -> ?mean_prefill:int -> ?mean_decode:int ->
  ?obs:Hnlpu_obs.Sink.t ->
  Hnlpu_model.Config.t -> objectives -> rate_per_s:float -> evaluation
(** One simulated operating point.  [obs] is passed through to
    {!Scheduler.simulate}. *)

val sweep :
  ?seed:int -> ?requests:int -> ?mean_prefill:int -> ?mean_decode:int ->
  ?domains:int -> ?obs:Hnlpu_obs.Sink.t ->
  Hnlpu_model.Config.t -> objectives -> rates:float list -> evaluation list
(** [sweep config obj ~rates] evaluates each offered rate, in the given
    order, across the {!Hnlpu_par.Par} domain pool ([domains] overrides
    its width).  Results are byte-identical to mapping {!evaluate} over
    [rates] sequentially: each rate seeds its own workload and, when [obs]
    is given, records into a private sink that is merged into [obs] in
    rate order after the sweep. *)

val max_rate :
  ?seed:int -> ?requests:int -> ?mean_prefill:int -> ?mean_decode:int ->
  ?tolerance:float -> Hnlpu_model.Config.t -> objectives -> float
(** Largest arrival rate (requests/s, within [tolerance] relative, default
    5%) whose simulation meets the objectives.  Bisection between 1 and
    an upper bound derived from the token-throughput ceiling. *)
