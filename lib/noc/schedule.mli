(** Explicit collective schedules: who sends what to whom, when.

    {!Collective} gives closed-form latencies; this module materializes
    the underlying step-by-step transfer plans so they can be checked
    against the fabric (every transfer must ride an existing row/column
    link; port limits respected) and executed on values (the reduction a
    plan computes must equal the mathematical collective).

    Conventions match the Interconnect Engine model: each chip owns one
    transmit and one receive port per *link* (parallel-link engine), so a
    star reduce completes in one step (the root merges incoming streams),
    an all-reduce is reduce-then-broadcast (2 steps), the ring all-gather
    takes group-1 steps, and the 16-chip all-reduce is hierarchical
    (column phase then row phase, 4 steps). *)

type transfer = { src : Topology.chip; dst : Topology.chip; bytes : int }

type step = transfer list
(** Transfers within a step run in parallel. *)

type t = step list

val reduce : root:Topology.chip -> group:Topology.chip list -> bytes:int -> t

val broadcast : root:Topology.chip -> group:Topology.chip list -> bytes:int -> t

val all_reduce : group:Topology.chip list -> bytes:int -> t
(** Reduce to the lowest chip, then broadcast. *)

val all_gather : group:Topology.chip list -> shard_bytes:int -> t
(** Ring over the group in ascending-id order. *)

val scatter : root:Topology.chip -> group:Topology.chip list -> shard_bytes:int -> t

val all_chip_all_reduce : bytes:int -> t
(** Column all-reduces (all four columns concurrently), then row
    all-reduces. *)

(** {1 Validation} *)

type violation =
  | Not_a_link of Topology.chip * Topology.chip
  | Tx_conflict of Topology.chip  (** Two same-step transfers on one TX port
                                      toward the same peer. *)
  | Rx_overmerge of Topology.chip  (** More simultaneous incoming streams
                                       than the engine merges (degree). *)

val validate : t -> violation list
(** Empty = the plan is executable on the 4x4 row/column fabric. *)

val makespan : ?link:Link.t -> t -> float
(** Sum over steps of the slowest transfer (plus per-step engine
    overheads), zero for an empty plan. *)

val transfer_count : t -> int

(** {1 Execution on values} *)

val run_all_reduce :
  ?plan:t -> ?obs:Hnlpu_obs.Sink.t -> ?link:Link.t -> ?t0_s:float ->
  group:Topology.chip list -> Collective.valued -> Collective.valued
(** Execute an all-reduce plan transfer by transfer on real vectors
    (merging at receivers on the first step, overwriting on later steps)
    and return the per-chip results — must equal {!Collective.all_reduce}
    (tested).  [plan] defaults to {!all_reduce} over [group]; passing a
    user plan lets signoff diff what the plan {e computes} against the
    mathematical sum (the NOC-EXEC rule).

    [obs] records one span per transfer — on the sending chip's track,
    tagged with bytes, step index and destination — timed with [link]
    (default {!Link.cxl3}) from [t0_s] (default 0) so the stream agrees
    with {!makespan}; per-plan byte/transfer counters and a makespan gauge
    land in the metrics registry.  Values computed are unaffected. *)
