(** Explicit collective schedules: who sends what to whom, when.

    {!Collective} gives closed-form latencies; this module materializes
    the underlying step-by-step transfer plans so they can be checked
    against the fabric (every transfer must ride an existing row/column
    link; port limits respected) and executed on values (the reduction a
    plan computes must equal the mathematical collective).

    Conventions match the Interconnect Engine model: each chip owns one
    transmit and one receive port per *link* (parallel-link engine), so a
    star reduce completes in one step (the root merges incoming streams),
    an all-reduce is reduce-then-broadcast (2 steps), the ring all-gather
    takes group-1 steps, and the 16-chip all-reduce is hierarchical
    (column phase then row phase, 4 steps). *)

type transfer = { src : Topology.chip; dst : Topology.chip; bytes : int }

type step = transfer list
(** Transfers within a step run in parallel. *)

type t = step list

val reduce : root:Topology.chip -> group:Topology.chip list -> bytes:int -> t

val broadcast : root:Topology.chip -> group:Topology.chip list -> bytes:int -> t

val all_reduce : group:Topology.chip list -> bytes:int -> t
(** Reduce to the lowest chip, then broadcast. *)

val all_gather : group:Topology.chip list -> shard_bytes:int -> t
(** Ring over the group in ascending-id order. *)

val scatter : root:Topology.chip -> group:Topology.chip list -> shard_bytes:int -> t

val all_chip_all_reduce : bytes:int -> t
(** Column all-reduces (all four columns concurrently), then row
    all-reduces. *)

(** {1 Validation} *)

type violation =
  | Not_a_link of Topology.chip * Topology.chip
  | Tx_conflict of Topology.chip  (** Two same-step transfers on one TX port
                                      toward the same peer. *)
  | Rx_overmerge of Topology.chip  (** More simultaneous incoming streams
                                       than the engine merges (degree). *)

val validate : t -> violation list
(** Empty = the plan is executable on the 4x4 row/column fabric. *)

val makespan : ?link:Link.t -> t -> float
(** Sum over steps of the slowest transfer (plus per-step engine
    overheads), zero for an empty plan. *)

val transfer_count : t -> int

val total_bytes : t -> int
(** Sum of every transfer's payload over the whole plan. *)

val endpoints : t -> Topology.chip list
(** Every chip appearing as a source or destination, sorted, deduplicated. *)

(** {1 Symbolic execution}

    The static counterpart of {!run_all_reduce}: instead of real vectors,
    every chip's state is a multiset of {e origin contributions} ("one copy
    of chip 4's partial"), and a plan is executed step by step under a
    per-step merge mode.  This is what the NOC-DEFUSE signoff rule runs —
    it sees read-before-write, same-step write races and dead transfers
    that byte conservation (NOC-BYTES) is blind to, without touching any
    values. *)

type merge_mode =
  | Accumulate  (** Receivers add incoming payloads to their state (the
                    reduce phase of {!run_all_reduce}). *)
  | Overwrite   (** Receivers replace their state with the incoming payload
                    (the broadcast phases of {!run_all_reduce}). *)
  | Union       (** Receivers keep one copy per origin (ring all-gather:
                    forwarding a shard the receiver already holds adds
                    nothing). *)

type delivery = {
  d_step : int;
  d_index : int;  (** Position in plan order — the key into {!symbolic.live}. *)
  d_src : Topology.chip;
  d_dst : Topology.chip;
  d_bytes : int;
}

type symbolic = {
  finals : (Topology.chip * (Topology.chip * int) list) list;
      (** Per chip (sorted): the final contribution multiset as sorted
          [(origin, count)] pairs.  A clean all-reduce member ends with
          every group member exactly once. *)
  live : (Topology.chip * int list) list;
      (** Per chip: indices of the deliveries whose payload survives into
          the chip's final state (transitively through forwarding).  A
          delivery in nobody's live set is dead weight on the fabric. *)
  unwritten_reads : delivery list;
      (** Transfers whose source had been written by no earlier step (and
          is not a producer) — the sender forwards garbage. *)
  overwrite_races : (int * Topology.chip * int) list;
      (** [(step, dst, writers)]: several same-step [Overwrite] deliveries
          race for one chip's slot; last-writer-wins order is undefined. *)
  deliveries : delivery list;  (** Every transfer, in plan order. *)
}

val run_symbolic :
  producers:Topology.chip list -> mode:(int -> merge_mode) -> t -> symbolic
(** Execute the plan on contribution multisets.  [producers] hold one copy
    of their own value before step 0 (a reduce: the whole group; a
    broadcast: just the root); [mode] maps each step index to its merge
    mode (an all-reduce: [Accumulate] at step 0, [Overwrite] after).
    Transfers of one step read start-of-step state, exactly like
    {!run_all_reduce}. *)

(** {1 Execution on values} *)

val run_all_reduce :
  ?plan:t -> ?obs:Hnlpu_obs.Sink.t -> ?link:Link.t -> ?t0_s:float ->
  group:Topology.chip list -> Collective.valued -> Collective.valued
(** Execute an all-reduce plan transfer by transfer on real vectors
    (merging at receivers on the first step, overwriting on later steps)
    and return the per-chip results — must equal {!Collective.all_reduce}
    (tested).  [plan] defaults to {!all_reduce} over [group]; passing a
    user plan lets signoff diff what the plan {e computes} against the
    mathematical sum (the NOC-EXEC rule).

    [obs] records one span per transfer — on the sending chip's track,
    tagged with bytes, step index and destination — timed with [link]
    (default {!Link.cxl3}) from [t0_s] (default 0) so the stream agrees
    with {!makespan}; per-plan byte/transfer counters and a makespan gauge
    land in the metrics registry.  Values computed are unaffected. *)
