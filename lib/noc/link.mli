(** CXL 3.0 point-to-point link model (paper §4.2: "low latency (<100 ns)
    and high bandwidth (128 GB/s per x16 link)").

    One transfer's latency is

      [phy_latency + engine_overhead + payload / bandwidth]

    where [engine_overhead] covers the interconnect engine's packetization,
    flow control and synchronization between pipeline stages.  The default
    is calibrated so that the per-layer collective schedule reproduces the
    paper's Figure 14 communication share (see {!Hnlpu_system.Calibration}).
    Energy is [pj_per_bit] x payload. *)

type t = {
  bandwidth_bytes_per_s : float;
  phy_latency_s : float;
  engine_overhead_s : float;
  pj_per_bit : float;
}

val cxl3 : t
(** 128 GB/s, 90 ns PHY+protocol, calibrated engine overhead, 8 pJ/bit. *)

val transfer_time_s : t -> bytes:int -> float
(** Latency of one point-to-point transfer.  Zero-byte transfers still pay
    the latency terms (synchronization messages). *)

val transfer_energy_j : t -> bytes:int -> float
(** [pj_per_bit] x payload.  Raises [Invalid_argument] on negative byte
    counts, matching {!transfer_time_s}. *)

val bytes_per_value : int
(** Activation payloads travel as FP16: 2 bytes per element. *)
