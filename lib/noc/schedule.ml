type transfer = { src : Topology.chip; dst : Topology.chip; bytes : int }

type step = transfer list

type t = step list

let check_group group =
  match group with
  | [] -> invalid_arg "Schedule: empty group"
  | _ ->
    List.iter
      (fun c -> if not (Topology.valid c) then invalid_arg "Schedule: bad chip")
      group

let peers root group = List.filter (fun c -> c <> root) group

let reduce ~root ~group ~bytes =
  check_group group;
  if not (List.mem root group) then invalid_arg "Schedule.reduce: root not in group";
  [ List.map (fun src -> { src; dst = root; bytes }) (peers root group) ]

let broadcast ~root ~group ~bytes =
  check_group group;
  if not (List.mem root group) then invalid_arg "Schedule.broadcast: root not in group";
  [ List.map (fun dst -> { src = root; dst; bytes }) (peers root group) ]

let all_reduce ~group ~bytes =
  check_group group;
  let root = List.fold_left min max_int group in
  reduce ~root ~group ~bytes @ broadcast ~root ~group ~bytes

let all_gather ~group ~shard_bytes =
  check_group group;
  let ring = Array.of_list (List.sort compare group) in
  let k = Array.length ring in
  (* Step s: every chip forwards the shard it received s steps ago to its
     ring successor. *)
  List.init (k - 1) (fun _ ->
      List.init k (fun i ->
          { src = ring.(i); dst = ring.((i + 1) mod k); bytes = shard_bytes }))

let scatter ~root ~group ~shard_bytes =
  check_group group;
  if not (List.mem root group) then invalid_arg "Schedule.scatter: root not in group";
  [ List.map (fun dst -> { src = root; dst; bytes = shard_bytes }) (peers root group) ]

let all_chip_all_reduce ~bytes =
  let col_phase which =
    List.concat_map
      (fun col -> List.nth (all_reduce ~group:(Topology.col_group col) ~bytes) which)
      [ 0; 1; 2; 3 ]
  in
  let row_phase which =
    List.concat_map
      (fun row -> List.nth (all_reduce ~group:(Topology.row_group row) ~bytes) which)
      [ 0; 1; 2; 3 ]
  in
  [ col_phase 0; col_phase 1; row_phase 0; row_phase 1 ]

type violation =
  | Not_a_link of Topology.chip * Topology.chip
  | Tx_conflict of Topology.chip
  | Rx_overmerge of Topology.chip

let validate plan =
  let violations = ref [] in
  List.iter
    (fun step ->
      let tx = Hashtbl.create 16 and rx = Hashtbl.create 16 in
      List.iter
        (fun { src; dst; bytes = _ } ->
          if not (Topology.connected src dst) then
            violations := Not_a_link (src, dst) :: !violations;
          (* One TX port per link: two same-step sends from src to the same
             dst would serialize. *)
          if Hashtbl.mem tx (src, dst) then violations := Tx_conflict src :: !violations
          else Hashtbl.add tx (src, dst) ();
          let n = (try Hashtbl.find rx dst with Not_found -> 0) + 1 in
          Hashtbl.replace rx dst n;
          if n > Topology.degree dst then
            violations := Rx_overmerge dst :: !violations)
        step)
    plan;
  List.rev !violations

let makespan ?(link = Link.cxl3) plan =
  List.fold_left
    (fun acc step ->
      acc
      +. List.fold_left
           (fun worst { bytes; _ } ->
             Float.max worst (Link.transfer_time_s link ~bytes))
           0.0 step)
    0.0 plan

let transfer_count plan = List.fold_left (fun a s -> a + List.length s) 0 plan

let total_bytes plan =
  List.fold_left
    (fun acc step ->
      List.fold_left (fun a { bytes; _ } -> a + bytes) acc step)
    0 plan

let endpoints plan =
  let seen = Hashtbl.create 16 in
  List.iter
    (List.iter
       (fun { src; dst; _ } ->
         Hashtbl.replace seen src ();
         Hashtbl.replace seen dst ()))
    plan;
  List.sort compare (Hashtbl.fold (fun c () acc -> c :: acc) seen [])

(* --- Symbolic execution ---------------------------------------------------- *)

module ISet = Set.Make (Int)
module IMap = Map.Make (Int)

type merge_mode = Accumulate | Overwrite | Union

type delivery = {
  d_step : int;
  d_index : int;
  d_src : Topology.chip;
  d_dst : Topology.chip;
  d_bytes : int;
}

type symbolic = {
  finals : (Topology.chip * (Topology.chip * int) list) list;
  live : (Topology.chip * int list) list;
  unwritten_reads : delivery list;
  overwrite_races : (int * Topology.chip * int) list;
  deliveries : delivery list;
}

let run_symbolic ~producers ~mode plan =
  let chips = List.sort_uniq compare (endpoints plan @ producers) in
  (* chip -> origin -> (count, provenance: delivery indices that carried the
     origin here).  Producers start holding one copy of their own value. *)
  let state : (Topology.chip, (int * ISet.t) IMap.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let written = Hashtbl.create 16 in
  List.iter
    (fun c ->
      Hashtbl.replace state c (IMap.singleton c (1, ISet.empty));
      Hashtbl.replace written c ())
    producers;
  let get c = Option.value ~default:IMap.empty (Hashtbl.find_opt state c) in
  let index = ref (-1) in
  let deliveries = ref [] and unread = ref [] and races = ref [] in
  List.iteri
    (fun s step ->
      let m = mode s in
      (* Snapshot every sender before applying any delivery: transfers of one
         step read start-of-step state, matching {!run_all_reduce}. *)
      let snap =
        List.map
          (fun { src; dst; bytes } ->
            incr index;
            let d =
              { d_step = s; d_index = !index; d_src = src; d_dst = dst;
                d_bytes = bytes }
            in
            deliveries := d :: !deliveries;
            if not (Hashtbl.mem written src) then unread := d :: !unread;
            (d, get src))
          step
      in
      let tag i payload =
        IMap.map (fun (n, prov) -> (n, ISet.add i prov)) payload
      in
      let dsts = List.sort_uniq compare (List.map (fun (d, _) -> d.d_dst) snap) in
      List.iter
        (fun dst ->
          let incoming = List.filter (fun (d, _) -> d.d_dst = dst) snap in
          (match m with
          | Accumulate ->
            let merged =
              List.fold_left
                (fun acc (d, payload) ->
                  IMap.union
                    (fun _ (n1, p1) (n2, p2) -> Some (n1 + n2, ISet.union p1 p2))
                    acc
                    (tag d.d_index payload))
                (get dst) incoming
            in
            Hashtbl.replace state dst merged
          | Overwrite -> (
            match incoming with
            | [ (d, payload) ] ->
              Hashtbl.replace state dst (tag d.d_index payload)
            | _ ->
              races := (s, dst, List.length incoming) :: !races;
              (* run_all_reduce applies same-step overwrites in hash-table
                 order — last writer wins nondeterministically.  Pick the
                 lowest sender so the analysis itself stays deterministic;
                 the race is already reported. *)
              let d, payload =
                List.fold_left
                  (fun ((a, _) as best) ((b, _) as cand) ->
                    if b.d_src < a.d_src then cand else best)
                  (List.hd incoming) (List.tl incoming)
              in
              Hashtbl.replace state dst (tag d.d_index payload))
          | Union ->
            (* Set semantics: an origin the chip already holds is kept, so a
               delivery's index lands only on origins it actually introduces
               (a delivery introducing nothing ends up in no live set). *)
            let merged =
              List.fold_left
                (fun acc (d, payload) ->
                  IMap.union (fun _ cur _ -> Some cur) acc (tag d.d_index payload))
                (get dst) incoming
            in
            Hashtbl.replace state dst merged);
          Hashtbl.replace written dst ())
        dsts)
    plan;
  let finals =
    List.map
      (fun c -> (c, List.map (fun (o, (n, _)) -> (o, n)) (IMap.bindings (get c))))
      chips
  in
  let live =
    List.map
      (fun c ->
        ( c,
          ISet.elements
            (IMap.fold (fun _ (_, p) acc -> ISet.union p acc) (get c) ISet.empty)
        ))
      chips
  in
  {
    finals;
    live;
    unwritten_reads = List.rev !unread;
    overwrite_races = List.rev !races;
    deliveries = List.rev !deliveries;
  }

let run_all_reduce ?plan ?obs ?(link = Link.cxl3) ?(t0_s = 0.0) ~group vals =
  (match vals with
  | [] -> invalid_arg "Schedule.run_all_reduce: empty"
  | _ -> ());
  let plan =
    match plan with Some p -> p | None -> all_reduce ~group ~bytes:0
  in
  (* Transfers of one step start together at the step's offset into the
     plan's makespan; the telemetry timeline reuses the same link model as
     {!makespan}, so spans and the reported makespan agree. *)
  let step_start = ref t0_s in
  let emit_step phase step =
    match obs with
    | None -> ()
    | Some o ->
      let module Event = Hnlpu_obs.Event in
      let m = Hnlpu_obs.Sink.metrics o in
      let worst = ref 0.0 in
      List.iter
        (fun { src; dst; bytes } ->
          let d = Link.transfer_time_s link ~bytes in
          worst := Float.max !worst d;
          Hnlpu_obs.Sink.span o ~cat:"transfer"
            ~args:[ ("bytes", Event.I bytes); ("step", Event.I phase);
                    ("dst", Event.I dst) ]
            ~track:
              (Event.track ~process:"noc"
                 ~thread:(Printf.sprintf "chip%02d" src))
            ~name:(Printf.sprintf "->chip%02d" dst)
            ~start_s:!step_start ~dur_s:d;
          Hnlpu_obs.Metrics.incr m "noc/transfers";
          Hnlpu_obs.Metrics.incr m ~by:(float_of_int bytes) "noc/bytes_sent";
          Hnlpu_obs.Metrics.observe m "noc/transfer_s" d)
        step;
      step_start := !step_start +. !worst;
      Hnlpu_obs.Metrics.set_stamped m ~stamp:(!step_start -. t0_s)
        "noc/makespan_s" (!step_start -. t0_s)
  in
  let state = Hashtbl.create 16 in
  List.iter (fun (c, v) -> Hashtbl.replace state c (Array.copy v)) vals;
  List.iteri
    (fun phase step ->
      emit_step phase step;
      (* Phase 0 is the reduce (receivers accumulate); phase 1 the
         broadcast (receivers overwrite). *)
      let incoming = Hashtbl.create 16 in
      List.iter
        (fun { src; dst; _ } ->
          let v = try Hashtbl.find state src with Not_found ->
            invalid_arg "Schedule.run_all_reduce: chip without value"
          in
          Hashtbl.add incoming dst (Array.copy v))
        step;
      Hashtbl.iter
        (fun dst v ->
          match phase with
          | 0 ->
            let cur = Hashtbl.find state dst in
            Array.iteri (fun i x -> cur.(i) <- cur.(i) +. x) v
          | _ -> Hashtbl.replace state dst v)
        incoming)
    plan;
  List.map (fun (c, _) -> (c, Hashtbl.find state c)) vals
