type t = {
  bandwidth_bytes_per_s : float;
  phy_latency_s : float;
  engine_overhead_s : float;
  pj_per_bit : float;
}

let cxl3 =
  {
    bandwidth_bytes_per_s = 128.0e9;
    phy_latency_s = 90.0e-9;
    engine_overhead_s = 290.0e-9;
    pj_per_bit = 8.0;
  }

let transfer_time_s t ~bytes =
  if bytes < 0 then invalid_arg "Link.transfer_time_s: negative payload";
  t.phy_latency_s +. t.engine_overhead_s
  +. (float_of_int bytes /. t.bandwidth_bytes_per_s)

let transfer_energy_j t ~bytes =
  if bytes < 0 then invalid_arg "Link.transfer_energy_j: negative payload";
  float_of_int (bytes * 8) *. t.pj_per_bit *. 1e-12

let bytes_per_value = 2
