(* Driver: discover cmt files, run the rule families, apply the
   baseline, and support the fixture self-test.

   Output is deterministic by construction: modules are visited in
   sorted order, findings are normalized (sorted + deduplicated) by
   {!Hnlpu_verify.Diagnostic.normalize}, and locations come from the
   compiler's own source positions — two runs over the same build tree
   serialize byte-identically. *)

module D = Hnlpu_verify.Diagnostic

let default_scan_dirs = [ "_build/default/lib"; "lib" ]
let default_fixture_dirs =
  [ "_build/default/test/lint_fixtures"; "test/lint_fixtures" ]

(* Lint every module found under [dirs].  Unreadable cmt files surface
   as LINT-LOAD warnings rather than silent gaps: an analyzer that
   quietly skips a module reports a clean bill it never earned. *)
let run ?(config = Lint_config.default) ~dirs () =
  let mods, failed = Cmt_scan.load_dirs dirs in
  if mods = [] then
    failwith
      (Printf.sprintf
         "no .cmt files under %s — build first (dune build @all)"
         (String.concat ", " dirs));
  let ds =
    List.concat_map
      (fun (m : Cmt_scan.source) ->
        Typed_lint.lint_structure ~config ~modname:m.Cmt_scan.modname
          m.Cmt_scan.structure)
      mods
  in
  let load_warnings =
    List.map
      (fun path ->
        D.warning ~rule:"LINT-LOAD" ~subject:path
          "unreadable cmt file (compiler version mismatch or truncated \
           build artifact) — this module was NOT linted")
      failed
  in
  D.normalize (ds @ load_warnings)

let run_with_baseline ?config ?baseline ~dirs () =
  let ds = run ?config ~dirs () in
  match baseline with
  | None -> ds
  | Some b -> D.normalize (Baseline.apply b ds)

(* --- Fixture self-test --------------------------------------------------- *)

(* Each family must fire on its seeded-broken fixture at the expected
   severity, and the deliberately clean module must produce nothing: a
   rule that cannot catch its own planted bug is a gate that gates
   nothing. *)
let fixture_expectations =
  [
    ("ALLOC-HOT", "Fixture_alloc_hot", D.Error);
    ("DET-SRC", "Fixture_det_src", D.Warning);
    ("PAR-ESCAPE", "Fixture_par_escape", D.Error);
    ("EXN-SWALLOW", "Fixture_exn_swallow", D.Error);
  ]

let clean_fixture = "Fixture_clean"

let subject_in_module ~fixture subject =
  List.exists (String.equal fixture) (String.split_on_char '.' subject)

(* (family, caught) per rule family, plus whether the clean module is
   clean. *)
let self_test ?(config = Lint_config.default) ~dirs () =
  let ds = run ~config ~dirs () in
  let caught =
    List.map
      (fun (rule, fixture, min_sev) ->
        let hit =
          List.exists
            (fun d ->
              String.equal d.D.rule rule
              && D.rank d.D.severity >= D.rank min_sev
              && subject_in_module ~fixture d.D.subject)
            ds
        in
        (rule, hit))
      fixture_expectations
  in
  let clean =
    not
      (List.exists
         (fun d -> subject_in_module ~fixture:clean_fixture d.D.subject)
         ds)
  in
  (caught, clean, ds)
