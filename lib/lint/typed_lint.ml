(* Typedtree lint rules: the four bug families PRs 2-6 found by hand,
   checked mechanically over the compiler's [.cmt] output.

   - ALLOC-HOT   allocating constructs inside the configured hot-path
                 set (closures, tuples, records, list cons/append, boxed
                 int64/int32 results, Printf/Format, partial
                 applications, allocating stdlib calls).  Per-body and
                 syntactic: it does not chase calls, which is exactly
                 what makes it cheap and predictable; callees on a hot
                 path belong in the hot set themselves.
   - DET-SRC     nondeterminism sources: [Random.*] instead of the
                 seed-derived [Util.Rng], wall-clock/CPU-clock reads,
                 unordered [Hashtbl] iteration, polymorphic compare
                 instantiated at function-bearing types.
   - PAR-ESCAPE  mutable state captured and *written* inside a closure
                 passed to [Par.parallel_map/init/sweep/run_tasks] — the
                 shape of the PR 6 pool-copy bug.  Writes through an
                 index that depends on a closure-local binding (the task
                 index pattern) are allowed.
   - EXN-SWALLOW catch-all exception handlers that discard the
                 exception (the worker-loop bug class).

   Suppression is structured, never silent: a binding can opt out of
   named rules with [[@@hnlpu.lint_ignore "RULE ..."]] (the annotation
   sits next to the code it excuses), and whole findings can be accepted
   with a reason in the committed baseline file (see {!Baseline}). *)

open Typedtree
module D = Hnlpu_verify.Diagnostic

(* --- Small helpers ------------------------------------------------------ *)

let loc_string (loc : Location.t) =
  Printf.sprintf "%s:%d" loc.loc_start.Lexing.pos_fname
    loc.loc_start.Lexing.pos_lnum

(* Path components with dune's wrapper mangling undone, so
   [Hnlpu_par__Par.parallel_map] and [Hnlpu_par.Par.parallel_map] both
   read as [...; "Par"; "parallel_map"]. *)
let path_parts p =
  String.split_on_char '.' (Path.name p)
  |> List.concat_map (fun s -> String.split_on_char '.' (Cmt_scan.normalize_modname s))

let rec last2 = function
  | [ a; b ] -> Some (a, b)
  | _ :: rest -> last2 rest
  | [] -> None

let last1 parts = match List.rev parts with x :: _ -> Some x | [] -> None

(* Does [ty] (or a component of it) contain a function type?  Polymorphic
   compare on such a value raises at runtime — and whether it raises can
   depend on evaluation order.  Guarded against cyclic types. *)
let type_contains_arrow ty =
  let visited = ref [] in
  let rec go ty =
    let id = Types.get_id ty in
    if List.memq id !visited then false
    else begin
      visited := id :: !visited;
      match Types.get_desc ty with
      | Types.Tarrow _ -> true
      | Types.Ttuple l -> List.exists go l
      | Types.Tconstr (_, args, _) -> List.exists go args
      | Types.Tpoly (t, _) -> go t
      | _ -> false
    end
  in
  go ty

let first_arg_type ty =
  match Types.get_desc ty with
  | Types.Tarrow (_, a, _, _) -> Some a
  | _ -> None

let is_function_type ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

let is_boxed_int_type ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, [], _) ->
    Path.same p Predef.path_int64
    || Path.same p Predef.path_int32
    || Path.same p Predef.path_nativeint
  | _ -> false

(* --- Attribute handling -------------------------------------------------- *)

let attr_payload_strings (a : Parsetree.attribute) =
  let strings_of_expr (e : Parsetree.expression) =
    match e.pexp_desc with
    | Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _)) ->
      String.split_on_char ' ' s |> List.filter (fun t -> t <> "")
    | _ -> []
  in
  match a.attr_payload with
  | Parsetree.PStr items ->
    List.concat_map
      (fun (it : Parsetree.structure_item) ->
        match it.pstr_desc with
        | Parsetree.Pstr_eval (e, _) -> strings_of_expr e
        | _ -> [])
      items
  | _ -> []

let binding_markers attrs =
  List.fold_left
    (fun (hot, ignores) (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "hnlpu.hot" -> (true, ignores)
      | "hnlpu.lint_ignore" -> (hot, attr_payload_strings a @ ignores)
      | _ -> (hot, ignores))
    (false, []) attrs

(* --- Stdlib knowledge ---------------------------------------------------- *)

(* Calls that allocate their result: flagged on hot paths.  Matching is
   on the last two path components, so [Stdlib.List.map] and a local
   [List.map] alias both match. *)
let allocating_calls =
  [
    ("Array", "make"); ("Array", "init"); ("Array", "map"); ("Array", "mapi");
    ("Array", "copy"); ("Array", "append"); ("Array", "sub");
    ("Array", "of_list"); ("Array", "to_list"); ("Array", "concat");
    ("Array", "make_matrix");
    ("List", "map"); ("List", "mapi"); ("List", "map2"); ("List", "init");
    ("List", "filter"); ("List", "filter_map"); ("List", "rev");
    ("List", "append"); ("List", "concat"); ("List", "concat_map");
    ("List", "sort"); ("List", "stable_sort"); ("List", "sort_uniq");
    ("List", "of_seq"); ("List", "to_seq"); ("List", "split");
    ("List", "combine");
    ("String", "make"); ("String", "init"); ("String", "concat");
    ("String", "sub"); ("String", "map"); ("String", "split_on_char");
    ("Bytes", "create"); ("Bytes", "make"); ("Bytes", "sub");
    ("Bytes", "to_string"); ("Bytes", "of_string");
    ("Buffer", "create"); ("Buffer", "contents");
    ("Queue", "create"); ("Queue", "push"); ("Queue", "add");
    ("Hashtbl", "create");
    ("Stdlib", "ref"); ("Stdlib", "@"); ("Stdlib", "^"); ("Stdlib", "^^");
  ]

let raise_like = [ "raise"; "raise_notrace"; "invalid_arg"; "failwith" ]

let is_par_combinator parts =
  (match last1 parts with
  | Some ("parallel_map" | "parallel_init" | "parallel_sweep" | "run_tasks") ->
    true
  | _ -> false)
  && List.exists (fun c -> String.equal c "Par") parts

(* --- Ident usage / capture analysis ------------------------------------- *)

(* All idents bound anywhere inside [e]: parameters, let/match/for
   bindings.  A flat over-approximation of scoping — ident stamps are
   unique, so an outer capture can never collide with an inner binding. *)
let bound_idents_of (e : expression) =
  let acc = ref [] in
  let add id = acc := id :: !acc in
  let pat_vars : type k. k general_pattern -> unit =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> add id
    | Tpat_alias (_, id, _) -> add id
    | _ -> ()
  in
  let super = Tast_iterator.default_iterator in
  let it =
    {
      super with
      Tast_iterator.pat =
        (fun sub p ->
          pat_vars p;
          super.Tast_iterator.pat sub p);
      expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_function { param; _ } -> add param
          | Texp_for (id, _, _, _, _, _) -> add id
          | _ -> ());
          super.Tast_iterator.expr sub e);
    }
  in
  it.Tast_iterator.expr it e;
  !acc

let ident_used id (e : expression) =
  let found = ref false in
  let super = Tast_iterator.default_iterator in
  let it =
    {
      super with
      Tast_iterator.expr =
        (fun sub e ->
          (match e.exp_desc with
          | Texp_ident (Path.Pident id', _, _) when Ident.same id id' ->
            found := true
          | _ -> ());
          if not !found then super.Tast_iterator.expr sub e);
    }
  in
  it.Tast_iterator.expr it e;
  !found

(* The "root" a write lands on: a local ident, a module-level value, or
   something we cannot name (skipped — the lint is a heuristic and only
   flags what it can attribute). *)
type root = Local of Ident.t | Global of string | Opaque

let rec root_of (e : expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Local id
  | Texp_ident (p, _, _) -> Global (Path.name p)
  | Texp_field (e, _, _) -> root_of e
  | _ -> Opaque

(* --- The walker ---------------------------------------------------------- *)

(* The hot context is recorded once, at the outermost hot binding:
   nested bindings of a hot binding inherit it, and the [base_*] depths
   let the rules measure "inside a function body / loop / inner function
   *relative to the hot entry point*" even when the hot binding is
   itself nested in colder code. *)
type hot_ctx = {
  kind : Lint_config.hot_kind;
  base_fun : int;    (* fun_depth when the hot binding was entered *)
  base_loop : int;   (* loop_depth at that point *)
  base_inner : int;  (* inner_funs at that point *)
}

type state = {
  config : Lint_config.t;
  modname : string;
  mutable scope_rev : string list;      (* enclosing binding names *)
  mutable hot : hot_ctx option;         (* innermost hot context, if any *)
  mutable fun_depth : int;              (* nesting depth of function bodies *)
  mutable loop_depth : int;             (* nesting depth of for/while bodies *)
  mutable inner_funs : int;             (* functions that are not part of a
                                           statically-allocated module-level
                                           curried chain *)
  mutable raise_depth : int;            (* inside a raise/invalid_arg arg? *)
  mutable ignore_stack : string list list;
  mutable static_funs : expression list;  (* physically static closures *)
  mutable diags : D.t list;
}

let subject st =
  String.concat "." (st.modname :: List.rev st.scope_rev)

let ignored st rule =
  List.exists (List.exists (String.equal rule)) st.ignore_stack

let emit st ~rule ~severity ~loc fmt =
  Printf.ksprintf
    (fun msg ->
      if not (ignored st rule) then
        st.diags <-
          D.make ~rule ~severity ~subject:(subject st) "%s (%s)" msg
            (loc_string loc)
          :: st.diags)
    fmt

(* Mark the curried [fun a -> fun b -> ...] chain rooted at [e] as
   non-allocating (either statically allocated at the module level, or
   already accounted for by an enclosing flag). *)
let rec mark_chain st e =
  match e.exp_desc with
  | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
    st.static_funs <- e :: st.static_funs;
    mark_chain st c_rhs
  | Texp_function _ -> st.static_funs <- e :: st.static_funs
  | Texp_let (_, _, body) ->
    (* Optional arguments with defaults desugar to a [let] between the
       curried [fun] nodes — keep following the chain through it. *)
    mark_chain st body
  | _ -> ()

let mark_children_of_chain st e =
  match e.exp_desc with
  | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } -> mark_chain st c_rhs
  | _ -> ()

(* --- EXN-SWALLOW --------------------------------------------------------- *)

(* A handler pattern that catches everything; returns the display name
   when the caught exception is then discarded. *)
let rec swallowing_pattern (p : value general_pattern) (body : expression) =
  match p.pat_desc with
  | Tpat_any -> Some "_"
  | Tpat_var (id, _) ->
    if ident_used id body then None else Some (Ident.name id)
  | Tpat_alias (inner, id, _) ->
    if ident_used id body then None else swallowing_pattern inner body
  | Tpat_or (a, b, _) -> (
    match swallowing_pattern a body with
    | Some n -> Some n
    | None -> swallowing_pattern b body)
  | _ -> None

let check_exn_case st (c : value case) =
  match swallowing_pattern c.c_lhs c.c_rhs with
  | Some name ->
    emit st ~rule:"EXN-SWALLOW" ~severity:D.Error ~loc:c.c_lhs.pat_loc
      "catch-all handler `with %s ->' discards the exception — name it \
       and re-raise unexpected cases, or match the specific exception"
      name
  | None -> ()

let exn_pats_of_computation (c : computation case) =
  let rec go (p : computation general_pattern) =
    match p.pat_desc with
    | Tpat_exception vp -> [ vp ]
    | Tpat_or (a, b, _) -> go a @ go b
    | _ -> []
  in
  go c.c_lhs

(* --- DET-SRC ------------------------------------------------------------- *)

let poly_compare_names =
  [ "compare"; "="; "<>"; "<"; ">"; "<="; ">="; "min"; "max" ]

let det_check_ident st (e : expression) parts =
  let pair = last2 parts in
  match pair with
  | Some ("Random", fn) when List.exists (String.equal "Stdlib") parts ->
    emit st ~rule:"DET-SRC" ~severity:D.Error ~loc:e.exp_loc
      "Random.%s draws from global mutable state and is not derived from \
       the workload seed — use Util.Rng (create/derive) instead"
      fn
  | Some ("Sys", "time") ->
    emit st ~rule:"DET-SRC" ~severity:D.Error ~loc:e.exp_loc
      "Sys.time reads the process clock; results that depend on it are \
       not reproducible — thread simulated time instead"
  | Some ("Unix", ("gettimeofday" | "time" | "times")) ->
    emit st ~rule:"DET-SRC" ~severity:D.Error ~loc:e.exp_loc
      "wall-clock read; results that depend on it are not reproducible — \
       thread simulated time instead"
  | Some ("Hashtbl", ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values"))
    ->
    emit st ~rule:"DET-SRC" ~severity:D.Warning ~loc:e.exp_loc
      "Hashtbl %s order is unspecified — make the consumer \
       order-insensitive (e.g. collect keys and sort) or switch to a \
       sorted structure"
      (match pair with Some (_, fn) -> fn | None -> "")
  | Some ("Hashtbl", "hash") -> (
    match first_arg_type e.exp_type with
    | Some ty when type_contains_arrow ty ->
      emit st ~rule:"DET-SRC" ~severity:D.Error ~loc:e.exp_loc
        "Hashtbl.hash on a function-bearing type hashes a code pointer — \
         value identity is not stable across runs"
    | _ -> ())
  | Some ("Stdlib", fn) when List.exists (String.equal fn) poly_compare_names -> (
    match first_arg_type e.exp_type with
    | Some ty when type_contains_arrow ty ->
      emit st ~rule:"DET-SRC" ~severity:D.Error ~loc:e.exp_loc
        "polymorphic %s instantiated at a function-bearing type raises \
         Invalid_argument at runtime — compare on a projection instead"
        fn
    | _ -> ())
  | _ -> ()

(* --- ALLOC-HOT ----------------------------------------------------------- *)

(* How hot is an allocation at the current point?

   - [`Hot]: per-event.  In a [Leaf] context, anywhere inside the
     function body; in a [Driver] context, inside a loop body or an
     inner function reached from the driver (the per-event handlers).
   - [`Setup]: in a [Driver]'s straight-line prologue — runs once per
     call into the driver, so it is reported as Info, not gated.
   - [`Cold]: not on a hot path (or inside a raise argument, which is
     cold by intent: the exception and its message may allocate). *)
let alloc_context st =
  match st.hot with
  | None -> `Cold
  | Some _ when st.raise_depth > 0 -> `Cold
  | Some ctx when st.fun_depth <= ctx.base_fun -> `Cold
  | Some { kind = Lint_config.Leaf; _ } -> `Hot
  | Some ({ kind = Lint_config.Driver; _ } as ctx) ->
    if st.loop_depth > ctx.base_loop || st.inner_funs > ctx.base_inner then `Hot
    else `Setup

let alloc st ~loc fmt =
  Printf.ksprintf
    (fun what ->
      match alloc_context st with
      | `Cold -> ()
      | `Hot ->
        emit st ~rule:"ALLOC-HOT" ~severity:D.Error ~loc
          "%s on a hot path — every minor-heap word here is a \
           stop-the-world synchronization point under the domain pool; \
           preallocate, or annotate with [@@hnlpu.lint_ignore \
           \"ALLOC-HOT\"] / baseline with a reason if this allocation is \
           genuinely cold"
          what
      | `Setup ->
        emit st ~rule:"ALLOC-HOT" ~severity:D.Info ~loc
          "%s in the hot driver's setup prologue — runs once per call, \
           fine as long as it stays out of the per-event loop"
          what)
    fmt

let alloc_check_apply st (e : expression) funct args =
  match funct.exp_desc with
  | Texp_ident (p, _, _) -> (
    let parts = path_parts p in
    match last1 parts with
    | Some fn when List.exists (String.equal fn) raise_like -> ()
    | _ ->
      if List.exists (fun c -> String.equal c "Printf" || String.equal c "Format") parts
      then alloc st ~loc:e.exp_loc "Printf/Format formatting (allocates its result and closures)"
      else
        let known =
          match last2 parts with
          | Some pair ->
            List.exists
              (fun (m, f) -> String.equal m (fst pair) && String.equal f (snd pair))
              allocating_calls
          | None -> false
        in
        if known then
          alloc st ~loc:e.exp_loc "allocating call %s" (Path.name p)
        else if is_function_type e.exp_type then
          alloc st ~loc:e.exp_loc
            "partial application of %s (allocates a closure per call)"
            (Path.name p)
        else if is_boxed_int_type e.exp_type then
          alloc st ~loc:e.exp_loc
            "call to %s returns a boxed int64/int32/nativeint" (Path.name p)
        else ignore args)
  | _ ->
    (* Application of a computed function: still catch visible partial
       application. *)
    if is_function_type e.exp_type then
      alloc st ~loc:e.exp_loc "partial application (allocates a closure per call)"

(* --- PAR-ESCAPE ---------------------------------------------------------- *)

let par_escape_check st (closure : expression) =
  let bound = bound_idents_of closure in
  let is_bound id = List.exists (Ident.same id) bound in
  let captured = function
    | Local id -> not (is_bound id)
    | Global _ -> true
    | Opaque -> false
  in
  let describe = function
    | Local id -> Ident.name id
    | Global name -> name
    | Opaque -> "<expr>"
  in
  let index_mentions_binding idx =
    let found = ref false in
    let super = Tast_iterator.default_iterator in
    let it =
      {
        super with
        Tast_iterator.expr =
          (fun sub e ->
            (match e.exp_desc with
            | Texp_ident (Path.Pident id, _, _) when is_bound id -> found := true
            | _ -> ());
            if not !found then super.Tast_iterator.expr sub e);
      }
    in
    it.Tast_iterator.expr it idx;
    !found
  in
  let nth_arg args n =
    let vals = List.filter_map (fun (_, a) -> a) args in
    List.nth_opt vals n
  in
  let check_write (e : expression) =
    match e.exp_desc with
    | Texp_setfield (target, _, lbl, _) ->
      let r = root_of target in
      if captured r then
        emit st ~rule:"PAR-ESCAPE" ~severity:D.Error ~loc:e.exp_loc
          "mutable field %s of captured %s is written inside a parallel \
           task — tasks race on it and the merge order is \
           scheduler-dependent; write into a per-task slot and reduce in \
           index order instead"
          lbl.Types.lbl_name (describe r)
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      let parts = path_parts p in
      match last2 parts with
      | Some ("Stdlib", ":=") | Some ("Stdlib", "incr") | Some ("Stdlib", "decr")
        -> (
        match nth_arg args 0 with
        | Some target ->
          let r = root_of target in
          if captured r then
            emit st ~rule:"PAR-ESCAPE" ~severity:D.Error ~loc:e.exp_loc
              "captured ref %s is mutated inside a parallel task — tasks \
               race on it; accumulate per task and reduce in index order"
              (describe r)
        | None -> ())
      | Some (("Array" | "Bytes" | "Float" | "Bigarray"), ("set" | "unsafe_set"))
        -> (
        match (nth_arg args 0, nth_arg args 1) with
        | Some target, Some idx ->
          let r = root_of target in
          if captured r && not (index_mentions_binding idx) then
            emit st ~rule:"PAR-ESCAPE" ~severity:D.Error ~loc:e.exp_loc
              "captured array %s is written at an index independent of \
               the task — concurrent tasks write the same slot; index by \
               the task parameter"
              (describe r)
        | _ -> ())
      | Some (("Hashtbl" | "Buffer" | "Queue" | "Stack") as m, fn)
        when List.exists (String.equal fn)
               [ "add"; "replace"; "remove"; "reset"; "clear"; "push"; "pop";
                 "take"; "add_string"; "add_char"; "add_bytes"; "add_buffer";
                 "add_substring"; "truncate"; "fill" ] -> (
        match nth_arg args 0 with
        | Some target ->
          let r = root_of target in
          if captured r then
            emit st ~rule:"PAR-ESCAPE" ~severity:D.Error ~loc:e.exp_loc
              "captured %s %s is mutated inside a parallel task — shared \
               structure writes race; use per-task instances merged in \
               index order"
              (String.lowercase_ascii m) (describe r)
        | None -> ())
      | _ -> ())
    | _ -> ()
  in
  let super = Tast_iterator.default_iterator in
  let it =
    {
      super with
      Tast_iterator.expr =
        (fun sub e ->
          check_write e;
          super.Tast_iterator.expr sub e);
    }
  in
  it.Tast_iterator.expr it closure

(* --- Main iterator ------------------------------------------------------- *)

let lint_structure ~config ~modname (str : structure) =
  let st =
    {
      config;
      modname;
      scope_rev = [];
      hot = None;
      fun_depth = 0;
      loop_depth = 0;
      inner_funs = 0;
      raise_depth = 0;
      ignore_stack = [];
      static_funs = [];
      diags = [];
    }
  in
  let super = Tast_iterator.default_iterator in
  let binding_name (vb : value_binding) =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> Some (Ident.name id)
    | Tpat_alias (_, id, _) -> Some (Ident.name id)
    | _ -> None
  in
  let value_binding sub (vb : value_binding) =
    let name = binding_name vb in
    let attr_hot, ignores = binding_markers vb.vb_attributes in
    (match name with Some n -> st.scope_rev <- n :: st.scope_rev | None -> ());
    (* Nested bindings of a hot binding inherit the outer hot context —
       only the outermost hot binding establishes the reference depths.
       An [[@@hnlpu.hot]] attribute always marks a Leaf. *)
    let kind_here =
      match st.hot with
      | Some _ -> None
      | None ->
        if attr_hot then Some Lint_config.Leaf
        else Lint_config.hot_kind st.config (subject st)
    in
    let saved_hot = st.hot in
    (match kind_here with
    | Some kind ->
      st.hot <-
        Some
          {
            kind;
            base_fun = st.fun_depth;
            base_loop = st.loop_depth;
            base_inner = st.inner_funs;
          }
    | None -> ());
    st.ignore_stack <- ignores :: st.ignore_stack;
    super.Tast_iterator.value_binding sub vb;
    st.ignore_stack <- List.tl st.ignore_stack;
    st.hot <- saved_hot;
    match name with Some _ -> st.scope_rev <- List.tl st.scope_rev | None -> ()
  in
  let structure_item sub (item : structure_item) =
    (match item.str_desc with
    | Tstr_value (_, vbs) ->
      (* Module-level functions are statically allocated: their curried
         chains never cost a per-call closure. *)
      List.iter (fun vb -> mark_chain st vb.vb_expr) vbs
    | _ -> ());
    match item.str_desc with
    | Tstr_module
        { mb_name = { txt = Some name; _ }; _ } ->
      st.scope_rev <- name :: st.scope_rev;
      super.Tast_iterator.structure_item sub item;
      st.scope_rev <- List.tl st.scope_rev
    | _ -> super.Tast_iterator.structure_item sub item
  in
  let expr sub (e : expression) =
    (* DET-SRC watches every resolved identifier occurrence. *)
    (match e.exp_desc with
    | Texp_ident (p, _, _) when not (ignored st "DET-SRC") ->
      det_check_ident st e (path_parts p)
    | _ -> ());
    (* EXN-SWALLOW: try handlers and match-exception cases. *)
    (match e.exp_desc with
    | Texp_try (_, cases) when not (ignored st "EXN-SWALLOW") ->
      List.iter (check_exn_case st) cases
    | Texp_match (_, cases, _) when not (ignored st "EXN-SWALLOW") ->
      List.iter
        (fun (c : computation case) ->
          List.iter
            (fun vp ->
              match swallowing_pattern vp c.c_rhs with
              | Some name ->
                emit st ~rule:"EXN-SWALLOW" ~severity:D.Error ~loc:vp.pat_loc
                  "catch-all `exception %s' case discards the exception — \
                   name it and re-raise unexpected cases"
                  name
              | None -> ())
            (exn_pats_of_computation c))
        cases
    | _ -> ());
    (* PAR-ESCAPE at combinator call sites. *)
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when (not (ignored st "PAR-ESCAPE")) && is_par_combinator (path_parts p) ->
      List.iter
        (fun (_, argo) ->
          match argo with
          | Some ({ exp_desc = Texp_function _; _ } as closure) ->
            par_escape_check st closure
          | _ -> ())
        args
    | _ -> ());
    (* ALLOC-HOT inside hot function bodies. *)
    if alloc_context st <> `Cold && not (ignored st "ALLOC-HOT") then begin
      match e.exp_desc with
      | Texp_function _ when not (List.memq e st.static_funs) ->
        alloc st ~loc:e.exp_loc "closure allocated per call"
      | Texp_tuple parts ->
        alloc st ~loc:e.exp_loc "tuple allocation (%d words)"
          (List.length parts + 1)
      | Texp_construct (_, cd, args) when args <> [] ->
        if String.equal cd.Types.cstr_name "::" then
          alloc st ~loc:e.exp_loc "list cons allocation"
        else alloc st ~loc:e.exp_loc "constructor %s allocation" cd.Types.cstr_name
      | Texp_record _ -> alloc st ~loc:e.exp_loc "record allocation"
      | Texp_array _ -> alloc st ~loc:e.exp_loc "array literal allocation"
      | Texp_lazy _ -> alloc st ~loc:e.exp_loc "lazy thunk allocation"
      | Texp_apply (funct, args) -> alloc_check_apply st e funct args
      | _ -> ()
    end;
    (* Curried children of any closure are part of the same runtime
       closure chain: account for the chain once, at its root. *)
    (match e.exp_desc with
    | Texp_function _ -> mark_children_of_chain st e
    | _ -> ());
    (* Recurse, with function-body, loop-body and raise-argument
       context. *)
    match e.exp_desc with
    | Texp_function _ ->
      (* A function that is not part of a module-level curried chain is
         an inner function: in a hot driver, its body is per-event code
         (the event loop calls it), not setup. *)
      let inner = not (List.memq e st.static_funs) in
      st.fun_depth <- st.fun_depth + 1;
      if inner then st.inner_funs <- st.inner_funs + 1;
      super.Tast_iterator.expr sub e;
      if inner then st.inner_funs <- st.inner_funs - 1;
      st.fun_depth <- st.fun_depth - 1
    | Texp_while _ | Texp_for _ ->
      st.loop_depth <- st.loop_depth + 1;
      super.Tast_iterator.expr sub e;
      st.loop_depth <- st.loop_depth - 1
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
      when match last1 (path_parts p) with
           | Some fn -> List.exists (String.equal fn) raise_like
           | None -> false ->
      (* Arguments of raise/invalid_arg/failwith are cold by intent: the
         exception and its message may allocate. *)
      st.raise_depth <- st.raise_depth + 1;
      super.Tast_iterator.expr sub e;
      st.raise_depth <- st.raise_depth - 1
    | _ -> super.Tast_iterator.expr sub e
  in
  let it = { super with Tast_iterator.value_binding; structure_item; expr } in
  it.Tast_iterator.structure it str;
  List.rev st.diags
