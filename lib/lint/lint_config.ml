(* Configuration for the source-level lint engine.

   The hot-path set names the code whose inner loops PR 6 hand-optimized
   to be allocation-free, because OCaml 5's stop-the-world minor GC turns
   any allocation on a sweep hot path into a fleet-wide synchronization
   point.  ALLOC-HOT enforces that property going forward.

   Entries are dotted path prefixes over normalized module paths
   ("Library.Module" or "Library.Module.function"): a binding is hot when
   its qualified path extends one of these prefixes, so nested helpers of
   a hot function (e.g. [Scheduler.simulate]'s internal loops) are hot
   too.  Code can also opt in locally with a [[@@hnlpu.hot]] attribute on
   the binding, and opt out of specific rules with
   [[@@hnlpu.lint_ignore "RULE ..."]] — see the README's Source lint
   section. *)

(* Two grades of hot code:

   - [Leaf]: small per-event operations (Rng draws, Heap/Fifo ops).
     Callers invoke them inside their event loops, so every allocation
     in the body is a per-event allocation — all of them are errors.
   - [Driver]: large entry points ([Scheduler.simulate],
     [Slo.evaluate]) that run a long event loop after a once-per-call
     setup prologue.  Allocation in the prologue is O(1) per call and
     merely informational; allocation inside a loop body or an inner
     function (the event handlers the loop dispatches to) is O(events)
     and an error. *)
type hot_kind = Leaf | Driver

type t = {
  hot_paths : (string * hot_kind) list;
      (* ALLOC-HOT scope: dotted-path prefixes *)
}

let default_hot_paths =
  [
    ("Hnlpu_util.Rng", Leaf);
    ("Hnlpu_util.Heap", Leaf);
    ("Hnlpu_util.Fifo", Leaf);
    ("Hnlpu_util.Stats.percentile_in_place", Leaf);
    (* Telemetry per-event entry points: once a series exists, recording
       into it must allocate nothing, or instrumented runs lose the
       parallel scaling PR 6 bought.  The cold registration/append paths
       are separately named ([observe_slow], [exact_append], ...) so the
       component-wise prefix match leaves them out. *)
    ("Hnlpu_obs.Sketch.observe", Leaf);
    ("Hnlpu_obs.Sketch.octave_pos", Leaf);
    ("Hnlpu_obs.Sketch.octave_neg", Leaf);
    ("Hnlpu_obs.Sketch.bucket_index_pos", Leaf);
    ("Hnlpu_obs.Sketch.bucket_index_neg", Leaf);
    ("Hnlpu_obs.Metrics.observe", Leaf);
    ("Hnlpu_obs.Metrics.incr", Leaf);
    ("Hnlpu_obs.Metrics.set_stamped", Leaf);
    ("Hnlpu_system.Scheduler.simulate", Driver);
    ("Hnlpu_system.Scheduler.workload", Driver);
    ("Hnlpu_system.Slo.evaluate", Driver);
    (* Fleet-scale serving: the trace cursor and the dispatch fast path
       run once per simulated request at 10⁶-10⁷ requests per run.  The
       [Fleet.Hot] submodule is the entire per-request path (heap sifts,
       routing, assignment, power tracking); [run_shard] is the driver
       loop around it, and [Arrivals.next] with its emit/draw helpers is
       the generator side. *)
    ("Hnlpu_system.Arrivals.next", Leaf);
    ("Hnlpu_system.Arrivals.unit_draw", Leaf);
    ("Hnlpu_system.Arrivals.exp_draw", Leaf);
    ("Hnlpu_system.Arrivals.draw_tokens", Leaf);
    ("Hnlpu_system.Arrivals.emit_diurnal", Leaf);
    ("Hnlpu_system.Arrivals.emit_mmpp", Leaf);
    ("Hnlpu_system.Fleet.Hot", Leaf);
    ("Hnlpu_system.Fleet.hash_user", Leaf);
    ("Hnlpu_system.Fleet.shard_of_node", Leaf);
    ("Hnlpu_system.Fleet.apply_event", Leaf);
    ("Hnlpu_system.Fleet.route_redispatch", Leaf);
    ("Hnlpu_system.Fleet.run_shard", Driver);
  ]

let default = { hot_paths = default_hot_paths }

(* The four rule families, mirroring the bug classes PRs 2-6 found by
   hand in the scheduler, pool, and sweep layers. *)
let rules = [ "ALLOC-HOT"; "DET-SRC"; "PAR-ESCAPE"; "EXN-SWALLOW" ]

let describe = function
  | "ALLOC-HOT" ->
    "allocating construct (closure, tuple, record, list, boxed int64, \
     Printf, partial application) inside a configured hot path"
  | "DET-SRC" ->
    "nondeterminism source: Random.* instead of Util.Rng, wall-clock \
     reads, unordered Hashtbl iteration, polymorphic compare on \
     function-bearing types"
  | "PAR-ESCAPE" ->
    "mutable state captured and written inside a closure passed to \
     Par.parallel_map/init/sweep/run_tasks"
  | "EXN-SWALLOW" ->
    "catch-all exception handler that discards the exception"
  | "LINT-BASELINE" -> "stale baseline entry that matched no finding"
  | r -> invalid_arg (Printf.sprintf "Lint_config.describe: unknown rule %S" r)

(* [path] extends [prefix] component-wise: "A.B" covers "A.B" and
   "A.B.anything" but not "A.Bc". *)
let path_matches ~prefix path =
  let rec go ps qs =
    match (ps, qs) with
    | [], _ -> true
    | _, [] -> false
    | p :: ps, q :: qs -> String.equal p q && go ps qs
  in
  go (String.split_on_char '.' prefix) (String.split_on_char '.' path)

let hot_kind t path =
  List.find_map
    (fun (prefix, kind) -> if path_matches ~prefix path then Some kind else None)
    t.hot_paths
