(* The committed lint baseline: findings that were reviewed and accepted,
   each with a reason.

   Format, one entry per line, tab-separated:

     RULE<TAB>subject<TAB>reason

   '#' starts a comment; blank lines are ignored.  Matching is by
   (rule, subject) — the subject is a qualified binding path such as
   "Hnlpu_util.Rng.next_int64", stable across line-number churn — and a
   matched finding is downgraded to Info with the reason appended, so
   the CI gate (which fails on Error) passes while the acceptance stays
   visible in the JSON report.  Entries that match nothing are reported
   as LINT-BASELINE warnings: a stale suppression hides future
   regressions under an obsolete excuse. *)

module D = Hnlpu_verify.Diagnostic

type entry = { rule : string; subject : string; reason : string }
type t = entry list

let entry ~rule ~subject ~reason = { rule; subject; reason }

let of_string s : t =
  let parse lineno line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '#' then None
    else
      match String.split_on_char '\t' line with
      | rule :: subject :: reason ->
        let reason = String.trim (String.concat "\t" reason) in
        if reason = "" then
          failwith
            (Printf.sprintf
               "baseline line %d: empty reason — every accepted finding \
                must say why"
               lineno)
        else Some { rule = String.trim rule; subject = String.trim subject; reason }
      | _ ->
        failwith
          (Printf.sprintf
             "baseline line %d: expected RULE<TAB>subject<TAB>reason, got %S"
             lineno line)
  in
  String.split_on_char '\n' s
  |> List.mapi (fun i line -> parse (i + 1) line)
  |> List.filter_map Fun.id

let to_string (t : t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "# hnlpu lint baseline: RULE<TAB>subject<TAB>reason.  Matched findings\n\
     # are downgraded to Info; stale entries surface as LINT-BASELINE.\n";
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%s\n" e.rule e.subject e.reason))
    t;
  Buffer.contents buf

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

let save path (t : t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t))

(* Downgrade baselined findings to Info (reason appended) and append a
   LINT-BASELINE warning per stale entry. *)
let apply (t : t) ds =
  let used = Array.make (List.length t) false in
  let lookup d =
    let rec go i = function
      | [] -> None
      | e :: rest ->
        if String.equal e.rule d.D.rule && String.equal e.subject d.D.subject
        then begin
          used.(i) <- true;
          Some e
        end
        else go (i + 1) rest
    in
    go 0 t
  in
  let downgraded =
    List.map
      (fun d ->
        if d.D.severity = D.Info then d
        else
          match lookup d with
          | None -> d
          | Some e ->
            D.info ~rule:d.D.rule ~subject:d.D.subject "%s [baselined: %s]"
              d.D.message e.reason)
      ds
  in
  let stale =
    List.concat
      (List.mapi
         (fun i e ->
           if used.(i) then []
           else
             [
               D.warning ~rule:"LINT-BASELINE" ~subject:e.subject
                 "stale baseline entry for %s matched no finding — remove \
                  it (reason was: %s)"
                 e.rule e.reason;
             ])
         t)
  in
  downgraded @ stale

(* Entries that would silence every Error currently firing — the
   starting point `lint --update-baseline` writes; reasons must then be
   filled in by hand. *)
let of_errors ds =
  List.filter_map
    (fun d ->
      if d.D.severity = D.Error then
        Some { rule = d.D.rule; subject = d.D.subject; reason = "TODO: justify" }
      else None)
    (D.normalize ds)
  |> List.sort_uniq (fun a b ->
         match String.compare a.rule b.rule with
         | 0 -> String.compare a.subject b.subject
         | c -> c)
