(* Discovery and loading of [.cmt] files (compiler typedtrees).

   Dune already compiles everything with [-bin-annot], so the build tree
   holds a [.cmt] per module under [.<lib>.objs/byte/]; the lint engine
   reads those rather than re-typing sources, which keeps it exact (the
   typedtree has resolved paths and instantiated types) and free — no
   second frontend, no parser drift.

   Loading is deterministic: files are discovered in sorted order,
   deduplicated by compilation-unit name, and generated wrapper modules
   (dune's [Lib__] aliases, with no real source file) are skipped. *)

type source = {
  modname : string;  (* normalized: "Hnlpu_util__Rng" -> "Hnlpu_util.Rng" *)
  sourcefile : string;
  structure : Typedtree.structure;
}

(* "Hnlpu_util__Rng" -> "Hnlpu_util.Rng" *)
let normalize_modname m =
  let parts = ref [] in
  let buf = Buffer.create (String.length m) in
  let n = String.length m in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && m.[!i] = '_' && m.[!i + 1] = '_' then begin
      parts := Buffer.contents buf :: !parts;
      Buffer.clear buf;
      i := !i + 2
    end
    else begin
      Buffer.add_char buf m.[!i];
      incr i
    end
  done;
  parts := Buffer.contents buf :: !parts;
  String.concat "." (List.rev !parts)

let rec find_cmts dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then find_cmts path acc
        else if Filename.check_suffix entry ".cmt" then path :: acc
        else acc)
      acc entries

(* Load every analyzable module under [dirs]; returns modules sorted by
   name and the list of files that could not be read (version-mismatched
   or truncated cmt data). *)
let load_dirs dirs : source list * string list =
  let files =
    List.concat_map (fun d -> List.rev (find_cmts d [])) dirs
    |> List.sort_uniq String.compare
  in
  let seen = Hashtbl.create 64 in
  let failed = ref [] in
  let mods =
    List.filter_map
      (fun path ->
        match Cmt_format.read_cmt path with
        | exception e ->
          (* Unreadable cmt data (version-mismatched or truncated) is
             not fatal: it becomes a LINT-LOAD diagnostic downstream,
             carrying the exception so nothing is silently dropped. *)
          failed := Printf.sprintf "%s (%s)" path (Printexc.to_string e) :: !failed;
          None
        | infos -> (
          match (infos.Cmt_format.cmt_annots, infos.Cmt_format.cmt_sourcefile) with
          | Cmt_format.Implementation structure, Some sourcefile
            when not (Filename.check_suffix sourcefile ".ml-gen") ->
            let modname = normalize_modname infos.Cmt_format.cmt_modname in
            if Hashtbl.mem seen modname then None
            else begin
              Hashtbl.add seen modname ();
              Some { modname; sourcefile; structure }
            end
          | _ -> None))
      files
  in
  let mods =
    List.sort (fun a b -> String.compare a.modname b.modname) mods
  in
  (mods, List.rev !failed)
