(** GPU-cluster equivalence (paper §2.1: "a single-node Hardwired LPU can
    outperform a middle-sized GPU cluster", and Appendix B note 1's
    normalization).

    How many H100s does one HNLPU replace?  It depends on how well the GPU
    amortizes weight traffic — i.e. on batch size.  This module sweeps the
    regimes from latency-critical (batch 1: the Table 2 measurement) to
    throughput-tuned (batch 256), and prices the equivalent cluster. *)

type point = {
  gpu_batch : int;
  gpu_tokens_per_s : float;    (** Per-GPU throughput at this regime. *)
  gpus_needed : float;         (** To match one HNLPU's decode rate. *)
  cluster_price_usd : float;   (** Hardware only, at $40K/GPU. *)
  cluster_power_w : float;
  power_ratio : float;         (** Cluster power / HNLPU system power. *)
}

val sweep : ?batches:int list -> ?domains:int -> unit -> point list
(** Default batches: 1, 8, 32, 50, 128, 256.  Batch 1 uses the measured
    45 tok/s anchor; larger batches use the roofline model.  Points map
    across the {!Hnlpu_par.Par} pool ([domains] overrides its width);
    results are identical for every width. *)

val paper_equivalence : point
(** The concurrency-50 regime: ~2,000 GPUs, the paper's TCO anchor. *)

val to_table : point list -> Hnlpu_util.Table.t
