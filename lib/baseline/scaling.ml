open Hnlpu_util

let config = Hnlpu_model.Config.gpt_oss_120b

type point = {
  gpu_batch : int;
  gpu_tokens_per_s : float;
  gpus_needed : float;
  cluster_price_usd : float;
  cluster_power_w : float;
  power_ratio : float;
}

let hnlpu_rate () = Hnlpu_system.Perf.throughput_tokens_per_s config ~context:2048

let hnlpu_power_w () =
  Hnlpu_chip.Floorplan.system_power_w (Hnlpu_chip.Floorplan.table1 ())

let point_of_batch batch =
  let gpu_rate =
    if batch = 1 then H100.measured_decode_tokens_per_s
    else H100.roofline_tokens_per_s config ~batch
  in
  let gpus = hnlpu_rate () /. gpu_rate in
  {
    gpu_batch = batch;
    gpu_tokens_per_s = gpu_rate;
    gpus_needed = gpus;
    cluster_price_usd = gpus *. H100.price_per_gpu_usd;
    cluster_power_w = gpus *. H100.spec.H100.system_power_w;
    power_ratio = gpus *. H100.spec.H100.system_power_w /. hnlpu_power_w ();
  }

let sweep ?(batches = [ 1; 8; 32; 50; 128; 256 ]) ?domains () =
  Hnlpu_par.Par.parallel_map ?domains point_of_batch batches

let paper_equivalence =
  (* The Appendix B note 1 regime, using the measured 1.08K tok/s rather
     than the roofline: one HNLPU's ~2M tok/s mixed throughput over the
     per-GPU figure. *)
  let gpus = 2.0e6 /. H100.concurrent_tokens_per_s in
  {
    gpu_batch = 50;
    gpu_tokens_per_s = H100.concurrent_tokens_per_s;
    gpus_needed = gpus;
    cluster_price_usd = gpus *. H100.price_per_gpu_usd;
    cluster_power_w = gpus *. H100.spec.H100.system_power_w;
    power_ratio = gpus *. H100.spec.H100.system_power_w /. hnlpu_power_w ();
  }

let to_table points =
  let t =
    Table.create
      ~headers:
        [ "GPU batch"; "tok/s per GPU"; "GPUs to match"; "Cluster price";
          "Cluster power"; "Power ratio" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          string_of_int p.gpu_batch;
          Printf.sprintf "%.0f" p.gpu_tokens_per_s;
          Printf.sprintf "%.0f" p.gpus_needed;
          Units.dollars p.cluster_price_usd;
          Units.watts p.cluster_power_w;
          Printf.sprintf "%.0fx" p.power_ratio;
        ])
    points;
  t
