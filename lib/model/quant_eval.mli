(** Quantization-fidelity evaluation.

    The paper hardwires the *already 4-bit* gpt-oss checkpoint, noting the
    model size "has a concrete lower bound" (§2.2) — i.e. FP4 is where
    production models already live, so hardwiring loses nothing further.
    This module quantifies that premise on the runnable reference model:
    a float checkpoint and its MXFP4 twin are compared on perplexity,
    hidden-state geometry and next-token agreement over synthetic
    sequences. *)

type report = {
  sequences : int;
  tokens_scored : int;
  ppl_float : float;
  ppl_fp4 : float;
  ppl_ratio : float;          (** fp4 / float; 1.0 = no degradation. *)
  hidden_cosine : float;      (** Mean cosine similarity of final hidden
                                  states, float vs fp4. *)
  top1_agreement : float;     (** Fraction of steps where both models pick
                                  the same greedy token. *)
}

val evaluate :
  ?sequences:int -> ?length:int -> ?domains:int ->
  Hnlpu_util.Rng.t -> Config.t -> report
(** Build a float checkpoint, quantize its twin, score [sequences]
    (default 8) random sequences of [length] (default 12) tokens through
    both.  The config must be architecturally specified.

    Token sequences are drawn from [rng] sequentially (the same draws as
    a sequential evaluation); scoring then fans out per sequence across
    the {!Hnlpu_par.Par} pool ([domains] overrides its width) with
    partial sums reduced in sequence order, so the report is identical
    for every domain count. *)

val pp : Format.formatter -> report -> unit
