open Hnlpu_tensor

type report = {
  sequences : int;
  tokens_scored : int;
  ppl_float : float;
  ppl_fp4 : float;
  ppl_ratio : float;
  hidden_cosine : float;
  top1_agreement : float;
}

let cosine a b =
  let na = Vec.norm2 a and nb = Vec.norm2 b in
  if na = 0.0 || nb = 0.0 then 0.0 else Vec.dot a b /. (na *. nb)

(* Per-sequence partial sums; reduced in sequence order so the report is
   independent of the domain count. *)
type partial = {
  p_nll_float : float;
  p_nll_fp4 : float;
  p_scored : int;
  p_cos_sum : float;
  p_cos_n : int;
  p_agree : int;
  p_steps : int;
}

let evaluate ?(sequences = 8) ?(length = 12) ?domains rng (c : Config.t) =
  if sequences <= 0 || length < 2 then invalid_arg "Quant_eval.evaluate";
  let w_float = Weights.random ~quantize_fp4:false (Hnlpu_util.Rng.split rng) c in
  let w_fp4 = Weights.quantize w_float in
  (* All token draws happen sequentially here, in the same order as the
     sequential evaluator; only the scoring fans out, over fresh
     transformer instances sharing the immutable weights. *)
  let token_lists =
    List.init sequences (fun _ ->
        List.init length (fun _ -> Hnlpu_util.Rng.int rng c.Config.vocab))
  in
  let score tokens =
    let m_float = Transformer.create w_float in
    let m_fp4 = Transformer.create w_fp4 in
    let nll_float = ref 0.0 and nll_fp4 = ref 0.0 in
    let scored = ref 0 in
    let cos_sum = ref 0.0 and cos_n = ref 0 in
    let agree = ref 0 and steps = ref 0 in
    (match tokens with
    | [] -> ()
    | first :: rest ->
      let lf = ref (Transformer.forward m_float ~token:first) in
      let lq = ref (Transformer.forward m_fp4 ~token:first) in
      List.iter
        (fun tok ->
          nll_float := !nll_float -. log (Vec.softmax !lf).(tok);
          nll_fp4 := !nll_fp4 -. log (Vec.softmax !lq).(tok);
          incr scored;
          if Vec.argmax !lf = Vec.argmax !lq then incr agree;
          incr steps;
          lf := Transformer.forward m_float ~token:tok;
          lq := Transformer.forward m_fp4 ~token:tok;
          cos_sum :=
            !cos_sum
            +. cosine (Transformer.hidden_state m_float) (Transformer.hidden_state m_fp4);
          incr cos_n)
        rest);
    {
      p_nll_float = !nll_float;
      p_nll_fp4 = !nll_fp4;
      p_scored = !scored;
      p_cos_sum = !cos_sum;
      p_cos_n = !cos_n;
      p_agree = !agree;
      p_steps = !steps;
    }
  in
  let parts = Hnlpu_par.Par.parallel_map ?domains score token_lists in
  let nll_float = ref 0.0 and nll_fp4 = ref 0.0 in
  let scored = ref 0 in
  let cos_sum = ref 0.0 and cos_n = ref 0 in
  let agree = ref 0 and steps = ref 0 in
  List.iter
    (fun p ->
      nll_float := !nll_float +. p.p_nll_float;
      nll_fp4 := !nll_fp4 +. p.p_nll_fp4;
      scored := !scored + p.p_scored;
      cos_sum := !cos_sum +. p.p_cos_sum;
      cos_n := !cos_n + p.p_cos_n;
      agree := !agree + p.p_agree;
      steps := !steps + p.p_steps)
    parts;
  let n = float_of_int !scored in
  let ppl_float = exp (!nll_float /. n) and ppl_fp4 = exp (!nll_fp4 /. n) in
  {
    sequences;
    tokens_scored = !scored;
    ppl_float;
    ppl_fp4;
    ppl_ratio = ppl_fp4 /. ppl_float;
    hidden_cosine = !cos_sum /. float_of_int !cos_n;
    top1_agreement = float_of_int !agree /. float_of_int !steps;
  }

let pp fmt r =
  Format.fprintf fmt
    "@[<v>quantization fidelity over %d sequences (%d tokens):@ \
     perplexity %.2f (float) vs %.2f (fp4), ratio %.3f@ \
     hidden-state cosine %.4f, greedy top-1 agreement %.1f%%@]"
    r.sequences r.tokens_scored r.ppl_float r.ppl_fp4 r.ppl_ratio r.hidden_cosine
    (100.0 *. r.top1_agreement)
