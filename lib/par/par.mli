(** Deterministic domain-parallel execution (the [Hnlpu.Par] layer).

    Every multi-point evaluation in this repository — SLO rate sweeps,
    ablations, sensitivity tornados, GPU-equivalence scans, table
    generation — is embarrassingly parallel: independent points, pure
    simulation per point.  This module runs such sweeps across a
    fixed-size pool of OCaml 5 [Domain]s while keeping a hard guarantee:

    {b results are byte-identical regardless of the domain count.}

    The guarantee holds because (1) each task writes only its own index
    slot and reduction happens in index order on the calling domain,
    (2) seeded tasks derive an independent {!Hnlpu_util.Rng} from their
    index (never from a shared stream), and (3) [j = 1] takes the exact
    sequential code path — no pool, no atomics — so parallelism is purely
    an execution-order change that the determinism tests pin down.

    The default width comes from, in priority order:
    {!set_default_domains} (the CLI's [-j]), the [HNLPU_DOMAINS]
    environment variable, then [Domain.recommended_domain_count].
    Nested parallel regions (a task calling back into this module) run
    sequentially, so pools never wait on themselves. *)

val default_domains : unit -> int
(** Resolved pool width: [-j] override, else [HNLPU_DOMAINS], else
    [Domain.recommended_domain_count] (always at least 1).  Raises
    [Invalid_argument] when [HNLPU_DOMAINS] is set but not a positive
    integer — a malformed width must not silently run at full width. *)

val env_domains : unit -> int option
(** The [HNLPU_DOMAINS] override alone: [None] when unset or blank.
    Raises [Invalid_argument] on a malformed value ("0", "four", "-2"). *)

val set_default_domains : int -> unit
(** Force the default width (the CLI's [-j N]).  Raises
    [Invalid_argument] when [j < 1]. *)

val parallel_map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map f xs] = [List.map f xs], evaluated across [domains]
    (default {!default_domains}) with chunked work distribution and
    order-preserving collection.  [f] must be pure for the determinism
    guarantee to be meaningful.  If any task raises, the exception of the
    lowest-indexed failing task is re-raised after the region completes. *)

val parallel_init : ?domains:int -> int -> (int -> 'a) -> 'a array
(** [parallel_init n f] = [Array.init n f], parallelized as above. *)

val parallel_sweep :
  ?domains:int -> seed:int -> (Hnlpu_util.Rng.t -> 'a -> 'b) -> 'a list -> 'b list
(** Seeded sweep: task [i] receives [Rng.derive seed ~stream:i], an
    independent deterministic stream — Monte-Carlo points stay
    reproducible and domain-count-independent. *)

(** {1 Explicit pools}

    The combinators above share one lazily-created pool sized to the
    requested width (resized when the width changes, with the old pool's
    workers joined).  The shared pool registers an [at_exit] shutdown the
    first time it is created, so worker domains are always joined at
    process exit.  Long-running hosts that want explicit lifecycle control
    can manage their own. *)

type pool

val create : ?domains:int -> unit -> pool
(** [create ~domains:j] spawns [j - 1] worker domains; the calling domain
    is the j-th participant.  The returned record is the very record the
    workers captured — callers and workers share all mutable pool state.
    Raises [Invalid_argument] when [j < 1]. *)

val size : pool -> int
(** Total participants including the caller (i.e. [j]). *)

val live : pool -> bool
(** [false] once {!shutdown} has run. *)

val spawned_workers : pool -> int
(** Workers that have entered their service loop so far (at most
    [size pool - 1]; spawning is asynchronous).  Counted on the shared
    pool record itself — the regression probe for the historical bug where
    [create] returned a copy of the record the workers captured. *)

val shared : ?domains:int -> unit -> pool
(** The process-wide shared pool at the given width (default
    {!default_domains}), creating or resizing it as needed.  Two calls at
    the same width return the physically same pool.  Main-domain only. *)

val run_tasks : pool -> tasks:int -> (int -> unit) -> unit
(** Low-level entry: evaluate [f 0 .. f (tasks-1)], each exactly once,
    distributed in guided self-scheduled chunks (coarse first grabs,
    single-task tail); returns when all completed.  If any task raises,
    the region still runs every task, then re-raises the lowest-indexed
    failure with its backtrace.  From inside a worker (nested region) it
    degrades to a sequential loop.  Raises [Invalid_argument] on a pool
    that was shut down. *)

val shutdown : pool -> unit
(** Join all workers.  Idempotent.  Re-raises the exception of any worker
    that died of a runtime catastrophe (e.g. [Out_of_memory]) instead of
    swallowing it. *)

val with_pool : ?domains:int -> (pool -> 'a) -> 'a
(** Scoped [create]/[shutdown]. *)
