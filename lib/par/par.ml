(* Deterministic domain-parallel execution over stdlib Domain (OCaml 5).

   Design constraints, in priority order:

   1. {b Determinism}: results are byte-identical regardless of the domain
      count.  Every task writes only its own index slot, reduction happens
      in index order on the calling domain, and seeded tasks derive their
      Rng from their index ({!Hnlpu_util.Rng.derive}), never from a shared
      stream.  [j = 1] takes the exact sequential code path (no pool, no
      atomics), so the parallel layer cannot perturb the sequential
      semantics it claims to reproduce.

   2. {b No oversubscription}: one long-lived pool of [j - 1] worker
      domains (the caller is the j-th participant), reused across calls
      and resized only when the requested width changes.

   3. {b Nesting safety}: a task that itself calls into this module runs
      its inner region sequentially (detected via a domain-local flag), so
      pools never wait on themselves. *)

type job = Run of (unit -> unit) | Quit

type pool = {
  workers : unit Domain.t array;
  inbox : job Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable live : bool;
}

(* Set on worker domains: inner parallel regions degrade to sequential. *)
let on_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.inbox do
    Condition.wait pool.nonempty pool.m
  done;
  let job = Queue.pop pool.inbox in
  Mutex.unlock pool.m;
  match job with
  | Quit -> ()
  | Run f ->
    (* Task closures trap their own exceptions (see [run_tasks]); this
       catch only keeps a worker alive against instrumentation bugs. *)
    (try f () with _ -> ());
    worker_loop pool

let create ?(domains = 0) () =
  if domains < 1 then invalid_arg "Par.create: domains must be >= 1";
  (* Two-phase start: build the record first, then spawn workers that
     capture it. *)
  let pool =
    {
      workers = [||];
      inbox = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      live = true;
    }
  in
  let workers =
    Array.init (domains - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set on_worker true;
            worker_loop pool))
  in
  { pool with workers }

let size pool = Array.length pool.workers + 1

let submit pool ~copies job =
  Mutex.lock pool.m;
  for _ = 1 to copies do
    Queue.push job pool.inbox
  done;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.m

let shutdown pool =
  if pool.live then begin
    pool.live <- false;
    submit pool ~copies:(Array.length pool.workers) Quit;
    Array.iter Domain.join pool.workers
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* [f] must not raise (callers wrap task bodies into [result]s). *)
let run_tasks pool ~tasks f =
  if tasks > 0 then begin
    if Array.length pool.workers = 0 || tasks = 1 || Domain.DLS.get on_worker
    then
      for i = 0 to tasks - 1 do
        f i
      done
    else begin
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let done_m = Mutex.create () and all_done = Condition.create () in
      (* Chunked distribution: coarse enough to amortize the atomic per
         chunk, fine enough (4 chunks per participant) to balance skewed
         task costs — sweep points are rarely uniform. *)
      let chunk = max 1 (tasks / ((Array.length pool.workers + 1) * 4)) in
      let drain () =
        let rec go () =
          let start = Atomic.fetch_and_add next chunk in
          if start < tasks then begin
            let stop = min tasks (start + chunk) in
            for i = start to stop - 1 do
              f i;
              if Atomic.fetch_and_add completed 1 = tasks - 1 then begin
                Mutex.lock done_m;
                Condition.signal all_done;
                Mutex.unlock done_m
              end
            done;
            go ()
          end
        in
        go ()
      in
      submit pool ~copies:(Array.length pool.workers) (Run drain);
      drain ();
      Mutex.lock done_m;
      while Atomic.get completed < tasks do
        Condition.wait all_done done_m
      done;
      Mutex.unlock done_m
    end
  end

(* --- Default width and the shared pool --------------------------------- *)

let forced = ref None

let env_domains () =
  match Sys.getenv_opt "HNLPU_DOMAINS" with
  | None -> None
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Some n
    | _ -> None)

let set_default_domains j =
  if j < 1 then invalid_arg "Par.set_default_domains: j must be >= 1";
  forced := Some j

let default_domains () =
  match !forced with
  | Some j -> j
  | None ->
    (match env_domains () with
    | Some j -> j
    | None -> max 1 (Domain.recommended_domain_count ()))

let shared : (int * pool) option ref = ref None

let shared_pool j =
  match !shared with
  | Some (width, pool) when width = j && pool.live -> pool
  | previous ->
    (match previous with Some (_, pool) -> shutdown pool | None -> ());
    let pool = create ~domains:j () in
    shared := Some (j, pool);
    pool

(* --- Order-preserving combinators --------------------------------------- *)

let collect results =
  (* Index-order reduction; the first task failure (by index, not by
     completion time) is the one re-raised. *)
  Array.map
    (function
      | Some (Ok v) -> v
      | Some (Error e) -> raise e
      | None -> assert false)
    results

let parallel_init ?domains n f =
  if n < 0 then invalid_arg "Par.parallel_init: negative length";
  let j = match domains with Some j -> j | None -> default_domains () in
  if j < 1 then invalid_arg "Par.parallel_init: domains must be >= 1";
  if j = 1 || n <= 1 || Domain.DLS.get on_worker then Array.init n f
  else begin
    let results = Array.make n None in
    run_tasks (shared_pool j) ~tasks:n (fun i ->
        results.(i) <- Some (try Ok (f i) with e -> Error e));
    collect results
  end

let parallel_map ?domains f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let items = Array.of_list xs in
    Array.to_list (parallel_init ?domains (Array.length items) (fun i -> f items.(i)))

let parallel_sweep ?domains ~seed f xs =
  let items = Array.of_list xs in
  Array.to_list
    (parallel_init ?domains (Array.length items) (fun i ->
         f (Hnlpu_util.Rng.derive seed ~stream:i) items.(i)))
