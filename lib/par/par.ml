(* Deterministic domain-parallel execution over stdlib Domain (OCaml 5).

   Design constraints, in priority order:

   1. {b Determinism}: results are byte-identical regardless of the domain
      count.  Every task writes only its own index slot, reduction happens
      in index order on the calling domain, and seeded tasks derive their
      Rng from their index ({!Hnlpu_util.Rng.derive}), never from a shared
      stream.  [j = 1] takes the exact sequential code path (no pool, no
      atomics), so the parallel layer cannot perturb the sequential
      semantics it claims to reproduce.

   2. {b No oversubscription}: one long-lived pool of [j - 1] worker
      domains (the caller is the j-th participant), reused across calls
      and resized only when the requested width changes.  The shared pool
      registers an [at_exit] shutdown, so worker domains are always
      joined.

   3. {b Nesting safety}: a task that itself calls into this module runs
      its inner region sequentially (detected via a domain-local flag), so
      pools never wait on themselves. *)

type job = Run of (unit -> unit) | Quit

(* One record, shared by the workers (which capture it at spawn) and every
   caller.  [workers] is mutable and set right after spawning precisely so
   both sides see the same record — an earlier version built the workers
   first and returned [{ pool with workers }], a *copy*, so any mutable
   state the workers wrote (or any future liveness flag they might read)
   was on a record no caller ever saw. *)
type pool = {
  mutable workers : unit Domain.t array;
  inbox : job Queue.t;
  m : Mutex.t;
  nonempty : Condition.t;
  mutable live : bool;
  mutable started : int;  (* workers that have entered their loop *)
}

(* Set on worker domains: inner parallel regions degrade to sequential. *)
let on_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let rec worker_loop pool =
  Mutex.lock pool.m;
  while Queue.is_empty pool.inbox do
    Condition.wait pool.nonempty pool.m
  done;
  let job = Queue.pop pool.inbox in
  Mutex.unlock pool.m;
  match job with
  | Quit -> ()
  | Run f ->
    (* No blanket [try _ with _ -> ()] here: [run_tasks] traps per-task
       exceptions itself, so anything escaping [f] is a runtime
       catastrophe (Out_of_memory / Stack_overflow in the distribution
       bookkeeping).  Swallowing it would silently corrupt the region;
       instead it kills this worker and re-surfaces from [Domain.join]
       when the pool shuts down. *)
    f ();
    worker_loop pool

let create ?(domains = 0) () =
  if domains < 1 then invalid_arg "Par.create: domains must be >= 1";
  let pool =
    {
      workers = [||];
      inbox = Queue.create ();
      m = Mutex.create ();
      nonempty = Condition.create ();
      live = true;
      started = 0;
    }
  in
  pool.workers <-
    Array.init (domains - 1) (fun _ ->
        Domain.spawn (fun () ->
            Domain.DLS.set on_worker true;
            Mutex.lock pool.m;
            pool.started <- pool.started + 1;
            Mutex.unlock pool.m;
            worker_loop pool));
  pool

let size pool = Array.length pool.workers + 1

let live pool = pool.live

let spawned_workers pool =
  Mutex.lock pool.m;
  let n = pool.started in
  Mutex.unlock pool.m;
  n

let submit pool ~copies job =
  Mutex.lock pool.m;
  for _ = 1 to copies do
    Queue.push job pool.inbox
  done;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.m

let shutdown pool =
  if pool.live then begin
    pool.live <- false;
    submit pool ~copies:(Array.length pool.workers) Quit;
    Array.iter Domain.join pool.workers
  end

let with_pool ?domains f =
  let pool = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let run_tasks pool ~tasks f =
  if tasks > 0 then begin
    if not pool.live then invalid_arg "Par.run_tasks: pool is shut down";
    if Array.length pool.workers = 0 || tasks = 1 || Domain.DLS.get on_worker
    then
      for i = 0 to tasks - 1 do
        f i
      done
    else begin
      let participants = Array.length pool.workers + 1 in
      let next = Atomic.make 0 in
      let completed = Atomic.make 0 in
      let done_m = Mutex.create () and all_done = Condition.create () in
      (* First task failure by *index* (not completion time), so the
         re-raise below is deterministic under any interleaving. *)
      let fail_m = Mutex.create () in
      let failure = ref None in
      let note i e bt =
        Mutex.lock fail_m;
        (match !failure with
        | Some (j, _, _) when j <= i -> ()
        | _ -> failure := Some (i, e, bt));
        Mutex.unlock fail_m
      in
      let drain () =
        (* Guided self-scheduling: each grab takes half an equal share of
           the *remaining* work, so early chunks are coarse (one atomic
           amortized over many tasks) and the tail degrades to single
           tasks, absorbing skewed per-task costs — sweep points are
           rarely uniform.  Chunk boundaries never affect results: each
           task writes only its own index slot. *)
        let rec go () =
          let remaining = tasks - Atomic.get next in
          if remaining > 0 then begin
            let chunk = max 1 (remaining / (2 * participants)) in
            let start = Atomic.fetch_and_add next chunk in
            if start < tasks then begin
              let stop = min tasks (start + chunk) in
              for i = start to stop - 1 do
                (try f i with e -> note i e (Printexc.get_raw_backtrace ()));
                if Atomic.fetch_and_add completed 1 = tasks - 1 then begin
                  Mutex.lock done_m;
                  Condition.signal all_done;
                  Mutex.unlock done_m
                end
              done;
              go ()
            end
          end
        in
        go ()
      in
      submit pool ~copies:(Array.length pool.workers) (Run drain);
      drain ();
      Mutex.lock done_m;
      while Atomic.get completed < tasks do
        Condition.wait all_done done_m
      done;
      Mutex.unlock done_m;
      match !failure with
      | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

(* --- Default width and the shared pool --------------------------------- *)

let forced = ref None

let env_domains () =
  match Sys.getenv_opt "HNLPU_DOMAINS" with
  | None -> None
  | Some s ->
    let s = String.trim s in
    if s = "" then None
    else
      (match int_of_string_opt s with
      | Some n when n >= 1 -> Some n
      | _ ->
        (* A malformed width used to fall through silently to the
           recommended count — a typo'd "HNLPU_DOMAINS=0" or "=four"
           would quietly run at full width. *)
        invalid_arg
          (Printf.sprintf
             "HNLPU_DOMAINS must be a positive integer, got %S" s))

let set_default_domains j =
  if j < 1 then invalid_arg "Par.set_default_domains: j must be >= 1";
  forced := Some j

let default_domains () =
  match !forced with
  | Some j -> j
  | None ->
    (match env_domains () with
    | Some j -> j
    | None -> max 1 (Domain.recommended_domain_count ()))

let shared_state : (int * pool) option ref = ref None
let exit_hook_registered = ref false

let shared_pool j =
  match !shared_state with
  | Some (width, pool) when width = j && pool.live -> pool
  | previous ->
    (match previous with Some (_, pool) -> shutdown pool | None -> ());
    let pool = create ~domains:j () in
    shared_state := Some (j, pool);
    if not !exit_hook_registered then begin
      exit_hook_registered := true;
      (* Always join worker domains on process exit, whatever width the
         pool last ran at. *)
      at_exit (fun () ->
          match !shared_state with
          | Some (_, pool) -> shutdown pool
          | None -> ())
    end;
    pool

let shared ?domains () =
  let j = match domains with Some j -> j | None -> default_domains () in
  if j < 1 then invalid_arg "Par.shared: domains must be >= 1";
  shared_pool j

(* --- Order-preserving combinators --------------------------------------- *)

(* Remaining-work estimate below which dispatching a region to the pool
   costs more than it buys: waking the workers (mutex + condvar
   broadcast) and bouncing the results array between domain caches is a
   low-hundreds-of-microseconds affair, so a sweep whose entire tail
   projects under this budget runs faster on the calling domain — and
   tiny sweeps used to come out *slower* than sequential. *)
let sequential_threshold_s = 2e-4

let parallel_init ?domains n f =
  if n < 0 then invalid_arg "Par.parallel_init: negative length";
  let j = match domains with Some j -> j | None -> default_domains () in
  if j < 1 then invalid_arg "Par.parallel_init: domains must be >= 1";
  if j = 1 || n <= 1 || Domain.DLS.get on_worker then Array.init n f
  else begin
    let results = Array.make n None in
    (* Probe: run task 0 on the calling domain and time it.  If the
       projected cost of the remaining tasks stays under the threshold,
       finish sequentially.  Results are byte-identical either way —
       every task writes only its own slot and the reduction below reads
       in index order; the clock picks the execution strategy, never a
       value.  Failure order is also preserved: task 0 is the
       lowest-possible-index failure, and [run_tasks] re-raises the
       lowest-indexed failure of the tail. *)
    let t0 = Unix.gettimeofday () in
    results.(0) <- Some (f 0);
    let dt = Unix.gettimeofday () -. t0 in
    if dt *. float_of_int (n - 1) < sequential_threshold_s then
      for i = 1 to n - 1 do
        results.(i) <- Some (f i)
      done
    else
      run_tasks (shared_pool j) ~tasks:(n - 1) (fun k ->
          results.(k + 1) <- Some (f (k + 1)));
    Array.map (function Some v -> v | None -> assert false) results
  end
[@@hnlpu.lint_ignore "DET-SRC"]

let parallel_map ?domains f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ ->
    let items = Array.of_list xs in
    Array.to_list (parallel_init ?domains (Array.length items) (fun i -> f items.(i)))

let parallel_sweep ?domains ~seed f xs =
  let items = Array.of_list xs in
  Array.to_list
    (parallel_init ?domains (Array.length items) (fun i ->
         f (Hnlpu_util.Rng.derive seed ~stream:i) items.(i)))
