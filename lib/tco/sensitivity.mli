(** Tornado sensitivity analysis on the TCO verdict.

    Table 3's 41.7–80.4x advantage rests on Appendix B's point estimates.
    This module re-derives the high-volume dynamic-TCO advantage while
    scaling one assumption at a time across a plausibility band, showing
    which inputs the conclusion actually depends on (electricity price and
    GPU price) and which barely matter (mask prices, HNLPU silicon). *)

type params = {
  mask_scale : float;        (** Scales the whole mask NRE. *)
  design_scale : float;      (** Scales design & development NRE. *)
  recurring_scale : float;   (** Scales per-chip recurring cost. *)
  electricity_scale : float;
  gpu_price_scale : float;   (** Scales the $320K HGX node. *)
  license_scale : float;
  hnlpu_power_scale : float;
}

val baseline : params
(** All scales 1.0. *)

val advantage : ?volume:Tco.volume -> params -> float
(** H100 3-year TCO over HNLPU dynamic TCO (midpoint of the
    optimistic/pessimistic band) under the scaled assumptions.  At
    {!baseline} and [High] volume this is ~56x (the geometric middle of
    41.7–80.4). *)

type tornado_bar = {
  factor : string;
  low_advantage : float;   (** Factor at 0.5x. *)
  high_advantage : float;  (** Factor at 2.0x. *)
  swing : float;           (** |high - low|, the bar length. *)
}

val tornado : ?volume:Tco.volume -> ?domains:int -> unit -> tornado_bar list
(** One bar per parameter, each swept over [0.5x, 2x] with the others at
    baseline; sorted by decreasing swing.  Bars evaluate across the
    {!Hnlpu_par.Par} pool ([domains] overrides its width); the result is
    identical for every width. *)

val to_table : tornado_bar list -> Hnlpu_util.Table.t
