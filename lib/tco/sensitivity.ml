type params = {
  mask_scale : float;
  design_scale : float;
  recurring_scale : float;
  electricity_scale : float;
  gpu_price_scale : float;
  license_scale : float;
  hnlpu_power_scale : float;
}

let baseline =
  {
    mask_scale = 1.0;
    design_scale = 1.0;
    recurring_scale = 1.0;
    electricity_scale = 1.0;
    gpu_price_scale = 1.0;
    license_scale = 1.0;
    hnlpu_power_scale = 1.0;
  }

let mid (a, b) = (a +. b) /. 2.0

let advantage ?(volume = Tco.High) p =
  let systems = Tco.hnlpu_systems volume in
  let chips = systems * Cost_breakdown.chips_per_system in
  let gpus = float_of_int (Tco.h100_gpus volume) in
  let nodes = gpus /. 8.0 in
  (* HNLPU side. *)
  let masks b =
    p.mask_scale
    *. (Hnlpu_litho.Mask_cost.homogeneous_cost (Pricing.anchor b)
       +. Hnlpu_litho.Mask_cost.sea_of_neurons_respin (Pricing.anchor b)
            ~chips:Cost_breakdown.chips_per_system)
  in
  let respin b =
    p.mask_scale
    *. Hnlpu_litho.Mask_cost.sea_of_neurons_respin (Pricing.anchor b)
         ~chips:Cost_breakdown.chips_per_system
    +. (p.recurring_scale *. float_of_int chips *. Pricing.recurring_per_chip_usd b)
  in
  let fp = Hnlpu_chip.Floorplan.table1 () in
  let hn_power_mw =
    p.hnlpu_power_scale
    *. Hnlpu_chip.Floorplan.system_power_w fp
    *. float_of_int systems *. Pricing.pue /. 1e6
  in
  let electricity mw =
    p.electricity_scale *. mw *. 1000.0 *. Pricing.lifetime_hours
    *. Pricing.electricity_usd_per_kwh
  in
  let hnlpu b =
    masks b
    +. (p.design_scale *. Pricing.design_total_usd b)
    +. (p.recurring_scale *. float_of_int chips *. Pricing.recurring_per_chip_usd b)
    +. (float_of_int chips *. Pricing.hnlpu_network_usd_per_chip)
    +. (hn_power_mw *. Pricing.facility_usd_per_mw)
    +. electricity hn_power_mw
    +. (p.recurring_scale
       *. float_of_int (max 1 (systems / 10) * Cost_breakdown.chips_per_system)
       *. Pricing.recurring_per_chip_usd b)
    +. (2.0 *. respin b)
  in
  (* H100 side. *)
  let node_price = p.gpu_price_scale *. 320_000.0 in
  let gpu_power_mw = gpus *. 1300.0 *. Pricing.pue /. 1e6 in
  let h100 =
    (nodes *. node_price)
    +. (nodes *. Pricing.h100_network_usd_per_node)
    +. (gpu_power_mw *. Pricing.facility_usd_per_mw)
    +. electricity gpu_power_mw
    +. (3.0 *. Pricing.h100_maintenance_rate_per_year *. nodes *. node_price)
    +. (p.license_scale *. 3.0 *. gpus *. Pricing.h100_license_usd_per_gpu_per_year)
  in
  h100 /. mid (hnlpu Pricing.Optimistic, hnlpu Pricing.Pessimistic)

type tornado_bar = {
  factor : string;
  low_advantage : float;
  high_advantage : float;
  swing : float;
}

let tornado ?volume ?domains () =
  let sweep (name, set) =
    let low_advantage = advantage ?volume (set baseline 0.5) in
    let high_advantage = advantage ?volume (set baseline 2.0) in
    {
      factor = name;
      low_advantage;
      high_advantage;
      swing = Float.abs (high_advantage -. low_advantage);
    }
  in
  let bars =
    Hnlpu_par.Par.parallel_map ?domains sweep
      [
        ("mask-set price", fun p s -> { p with mask_scale = s });
        ("design & development", fun p s -> { p with design_scale = s });
        ("chip recurring cost", fun p s -> { p with recurring_scale = s });
        ("electricity price", fun p s -> { p with electricity_scale = s });
        ("GPU node price", fun p s -> { p with gpu_price_scale = s });
        ("GPU software license", fun p s -> { p with license_scale = s });
        ("HNLPU power", fun p s -> { p with hnlpu_power_scale = s });
      ]
  in
  List.sort (fun a b -> compare b.swing a.swing) bars

let to_table bars =
  let t =
    Hnlpu_util.Table.create
      ~headers:[ "Assumption (0.5x .. 2x)"; "Advantage @0.5x"; "@2x"; "Swing" ]
  in
  List.iter
    (fun b ->
      Hnlpu_util.Table.add_row t
        [
          b.factor;
          Printf.sprintf "%.1fx" b.low_advantage;
          Printf.sprintf "%.1fx" b.high_advantage;
          Printf.sprintf "%.1f" b.swing;
        ])
    bars;
  t
