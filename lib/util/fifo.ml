(* Growable circular-buffer FIFO.  Unlike [Stdlib.Queue] (one heap cell
   per [push]), steady-state push/pop allocate nothing — the scheduler's
   prefill/decode queues cycle once per simulated token, and those cells
   dominated its minor-heap traffic.  Freed slots are overwritten with the
   dummy so popped values stay collectable. *)

type 'a t = {
  mutable data : 'a array;
  mutable head : int;
  mutable len : int;
  dummy : 'a;
}

(* The constructor allocates the structure by nature — once per queue,
   never per operation. *)
let create ~dummy () =
  { data = [||]; head = 0; len = 0; dummy }
[@@hnlpu.lint_ignore "ALLOC-HOT"]

let is_empty t = t.len = 0

let length t = t.len

let push t v =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let cap' = max 16 (2 * cap) in
    let data = Array.make cap' t.dummy in
    for i = 0 to t.len - 1 do
      data.(i) <- t.data.((t.head + i) mod cap)
    done;
    t.data <- data;
    t.head <- 0
  end;
  t.data.((t.head + t.len) mod Array.length t.data) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then invalid_arg "Fifo.pop: empty queue";
  let v = t.data.(t.head) in
  t.data.(t.head) <- t.dummy;
  t.head <- (t.head + 1) mod Array.length t.data;
  t.len <- t.len - 1;
  v

let clear t =
  Array.fill t.data 0 (Array.length t.data) t.dummy;
  t.head <- 0;
  t.len <- 0
