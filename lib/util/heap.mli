(** Minimal binary min-heap keyed by float priority — the event queue of
    the continuous-batching simulator.

    Priorities are kept in an unboxed float array, so [push] and
    {!take_min} allocate nothing once capacity is reached. *)

type 'a t

val create : ?dummy:'a -> unit -> 'a t
(** [dummy] is the filler written over freed slots so popped values become
    collectable.  Without it, the first pushed value serves as filler and
    stays pinned for the heap's lifetime — fine for immediates, pass a
    [dummy] when values are large. *)

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> priority:float -> 'a -> unit

val min_priority : 'a t -> float
(** Priority of the minimum element.  Raises [Invalid_argument] when
    empty. *)

val take_min : 'a t -> 'a
(** Removes and returns the minimum-priority value without allocating.
    Raises [Invalid_argument] when empty. *)

val peek : 'a t -> (float * 'a) option

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. *)
