(* Two parallel arrays rather than one array of entry records: priorities
   live in a float array (unboxed storage), so a push allocates nothing
   once capacity is reached — the event queue of the continuous-batching
   simulator pushes one entry per simulated token, and entry records plus
   boxed priorities were a measurable slice of its minor-heap traffic.

   Freed value slots are overwritten with a filler value so popped values
   become collectable: a live value parked past the end would be pinned
   for the heap's whole lifetime — a space leak across long simulation
   runs.  The filler is the [?dummy] given at [create], else the first
   value ever pushed (which is then pinned; pass [?dummy] on hot paths). *)

type 'a t = {
  mutable prio : float array;
  mutable data : 'a array;
  mutable n : int;
  mutable filler : 'a option;
}

(* The constructor allocates the structure by nature — once per heap,
   never per operation. *)
let create ?dummy () =
  { prio = [||]; data = [||]; n = 0; filler = dummy }
[@@hnlpu.lint_ignore "ALLOC-HOT"]

let is_empty t = t.n = 0

let size t = t.n

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(i) < t.prio.(parent) then begin
      let p = t.prio.(i) and v = t.data.(i) in
      t.prio.(i) <- t.prio.(parent);
      t.data.(i) <- t.data.(parent);
      t.prio.(parent) <- p;
      t.data.(parent) <- v;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  (* Plain rebinding, not a [ref]: a ref cell here was one minor-heap
     allocation per sift step of the per-token event queue. *)
  let smallest = if l < t.n && t.prio.(l) < t.prio.(i) then l else i in
  let smallest =
    if r < t.n && t.prio.(r) < t.prio.(smallest) then r else smallest
  in
  if smallest <> i then begin
    let s = smallest in
    let p = t.prio.(i) and v = t.data.(i) in
    t.prio.(i) <- t.prio.(s);
    t.data.(i) <- t.data.(s);
    t.prio.(s) <- p;
    t.data.(s) <- v;
    sift_down t s
  end

let push t ~priority value =
  if t.n = Array.length t.prio then begin
    let filler = match t.filler with
      | Some v -> v
      | None ->
        t.filler <- Some value;
        value
    in
    let cap = max 16 (2 * Array.length t.prio) in
    let prio = Array.make cap 0.0 and data = Array.make cap filler in
    Array.blit t.prio 0 prio 0 t.n;
    Array.blit t.data 0 data 0 t.n;
    t.prio <- prio;
    t.data <- data
  end;
  t.prio.(t.n) <- priority;
  t.data.(t.n) <- value;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let min_priority t =
  if t.n = 0 then invalid_arg "Heap.min_priority: empty heap";
  t.prio.(0)

let take_min t =
  if t.n = 0 then invalid_arg "Heap.take_min: empty heap";
  let top = t.data.(0) in
  t.n <- t.n - 1;
  t.prio.(0) <- t.prio.(t.n);
  t.data.(0) <- t.data.(t.n);
  (match t.filler with Some f -> t.data.(t.n) <- f | None -> ());
  if t.n > 0 then sift_down t 0;
  top

let peek t = if t.n = 0 then None else Some (t.prio.(0), t.data.(0))

let pop t =
  if t.n = 0 then None
  else begin
    let p = t.prio.(0) in
    Some (p, take_min t)
  end
