type 'a entry = { priority : float; value : 'a }

(* Slots at index >= n hold None so popped values become collectable: a
   live entry parked past the end would pin its value for the heap's whole
   lifetime — a space leak across long simulation runs. *)
type 'a t = { mutable data : 'a entry option array; mutable n : int }

let create () = { data = [||]; n = 0 }

let is_empty t = t.n = 0

let size t = t.n

let get t i =
  match t.data.(i) with Some e -> e | None -> assert false

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if (get t i).priority < (get t parent).priority then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n && (get t l).priority < (get t !smallest).priority then smallest := l;
  if r < t.n && (get t r).priority < (get t !smallest).priority then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority value =
  if t.n = Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let fresh = Array.make cap None in
    Array.blit t.data 0 fresh 0 t.n;
    t.data <- fresh
  end;
  t.data.(t.n) <- Some { priority; value };
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let peek t =
  if t.n = 0 then None
  else
    let e = get t 0 in
    Some (e.priority, e.value)

let pop t =
  if t.n = 0 then None
  else begin
    let top = get t 0 in
    t.n <- t.n - 1;
    t.data.(0) <- t.data.(t.n);
    t.data.(t.n) <- None;
    if t.n > 0 then sift_down t 0;
    Some (top.priority, top.value)
  end
