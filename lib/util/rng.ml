type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

let derive seed ~stream =
  if stream < 0 then invalid_arg "Rng.derive: negative stream";
  (* Double-mix the (seed, stream) pair so adjacent streams land far
     apart in state space; independent of any shared generator, so
     parallel tasks can derive their stream from their index alone. *)
  let s =
    mix
      (Int64.add (Int64.of_int seed)
         (Int64.mul golden_gamma (Int64.of_int (stream + 1))))
  in
  { state = mix s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical (next_int64 t) 1) land max_int in
  mask mod bound

let float t bound =
  (* 53 uniform mantissa bits. *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  let rec draw () =
    let u = float t 1.0 in
    if u = 0.0 then draw () else u
  in
  -.log (draw ()) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
