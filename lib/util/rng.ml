(* SplitMix64 (Steele, Lea & Flood 2014), bit-exact, with the 64-bit state
   held as two untagged 32-bit halves in immediate-int fields.

   The obvious representation — [{ mutable state : int64 }] — allocates a
   boxed [Int64.t] for the state store and for every arithmetic
   intermediate that crosses a function boundary: ~6 minor-heap words per
   draw.  Monte-Carlo sweeps make tens of millions of draws, and under the
   domain pool every minor collection is a stop-the-world synchronization
   of all domains, so that boxing rate was the dominant cost of running
   sweeps in parallel.  Emulating the mod-2^64 arithmetic on native ints
   makes drawing allocation-free while producing the exact same stream
   ([test_par] pins every public operation against a boxed-Int64 reference
   implementation).

   Arithmetic notes, for a 63-bit native [int]:
   - products of 32-bit halves can reach 2^64 and wrap mod 2^63; since
     2^32 divides 2^63, [(a * b) land 0xFFFFFFFF] still yields the exact
     low 32 bits, so low-half and cross products need no limb splitting;
   - only the high 32 bits of a full 32x32 product need 16-bit limbs
     ([mul_hi32]), where every intermediate stays below 2^33. *)

type t = {
  mutable hi : int;      (* state, high 32 bits *)
  mutable lo : int;      (* state, low 32 bits *)
  mutable out_hi : int;  (* last mixed output, high 32 bits *)
  mutable out_lo : int;  (* last mixed output, low 32 bits *)
}

let () = assert (Sys.int_size >= 63)

let mask32 = 0xFFFFFFFF

(* 0x9E3779B97F4A7C15, the golden-ratio gamma. *)
let gamma_hi = 0x9E3779B9
let gamma_lo = 0x7F4A7C15

(* Mix multipliers 0xBF58476D1CE4E5B9 and 0x94D049BB133111EB. *)
let m1_hi = 0xBF58476D
let m1_lo = 0x1CE4E5B9
let m2_hi = 0x94D049BB
let m2_lo = 0x133111EB

(* High 32 bits of the exact 64-bit product of two 32-bit values. *)
let[@inline] mul_hi32 a b =
  let a1 = a lsr 16 and a0 = a land 0xFFFF in
  let b1 = b lsr 16 and b0 = b land 0xFFFF in
  let mid = (a0 * b1) + (a1 * b0) + ((a0 * b0) lsr 16) in
  (a1 * b1) + (mid lsr 16)

(* Writes mix (hi, lo) into [t.out_hi]/[t.out_lo]; leaves the state alone. *)
let[@inline] mix_into t hi lo =
  (* z ^= z >>> 30 *)
  let lo = lo lxor (((hi lsl 2) land mask32) lor (lo lsr 30)) in
  let hi = hi lxor (hi lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let plo = (lo * m1_lo) land mask32 in
  let phi = (mul_hi32 lo m1_lo + (lo * m1_hi) + (hi * m1_lo)) land mask32 in
  (* z ^= z >>> 27 *)
  let lo = plo lxor (((phi lsl 5) land mask32) lor (plo lsr 27)) in
  let hi = phi lxor (phi lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let plo = (lo * m2_lo) land mask32 in
  let phi = (mul_hi32 lo m2_lo + (lo * m2_hi) + (hi * m2_lo)) land mask32 in
  (* z ^= z >>> 31 *)
  t.out_lo <- plo lxor (((phi lsl 1) land mask32) lor (plo lsr 31));
  t.out_hi <- phi lxor (phi lsr 31)

(* Advances the state by gamma and mixes it into the output halves. *)
let[@inline] next_out t =
  let lo = t.lo + gamma_lo in
  let hi = (t.hi + gamma_hi + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  mix_into t hi lo

(* Stream constructors allocate their state record by nature; they run
   once per stream at setup, never per draw. *)

let create seed =
  (* Halves of the sign-extended 64-bit image of [seed]. *)
  { hi = (seed asr 32) land mask32; lo = seed land mask32; out_hi = 0; out_lo = 0 }
[@@hnlpu.lint_ignore "ALLOC-HOT"]

let copy t =
  { hi = t.hi; lo = t.lo; out_hi = 0; out_lo = 0 }
[@@hnlpu.lint_ignore "ALLOC-HOT"]

let next_int64 t =
  next_out t;
  Int64.logor
    (Int64.shift_left (Int64.of_int t.out_hi) 32)
    (Int64.of_int t.out_lo)

let split t =
  next_out t;
  let r = { hi = 0; lo = 0; out_hi = 0; out_lo = 0 } in
  mix_into r t.out_hi t.out_lo;
  r.hi <- r.out_hi;
  r.lo <- r.out_lo;
  r.out_hi <- 0;
  r.out_lo <- 0;
  r
[@@hnlpu.lint_ignore "ALLOC-HOT"]

let derive seed ~stream =
  if stream < 0 then invalid_arg "Rng.derive: negative stream";
  (* Double-mix the (seed, stream) pair so adjacent streams land far
     apart in state space; independent of any shared generator, so
     parallel tasks can derive their stream from their index alone. *)
  let k = stream + 1 in
  let khi = (k asr 32) land mask32 and klo = k land mask32 in
  (* gamma * (stream + 1) mod 2^64 ... *)
  let plo = (gamma_lo * klo) land mask32 in
  let phi = (mul_hi32 gamma_lo klo + (gamma_lo * khi) + (gamma_hi * klo)) land mask32 in
  (* ... + seed mod 2^64. *)
  let lo = plo + (seed land mask32) in
  let hi = (phi + ((seed asr 32) land mask32) + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  let r = { hi = 0; lo = 0; out_hi = 0; out_lo = 0 } in
  mix_into r hi lo;
  mix_into r r.out_hi r.out_lo;
  r.hi <- r.out_hi;
  r.lo <- r.out_lo;
  r.out_hi <- 0;
  r.out_lo <- 0;
  r
[@@hnlpu.lint_ignore "ALLOC-HOT"]

let[@inline] int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  next_out t;
  let mask = ((t.out_hi lsl 31) lor (t.out_lo lsr 1)) land max_int in
  mask mod bound

(* 53 uniform bits as an immediate int: the allocation-free primitive
   the float draws build on.  Hot paths in other modules draw through
   this because an immediate-int return never allocates, whereas a
   non-inlined [float] call boxes its result (~2 words per draw). *)
let[@inline] bits53 t =
  next_out t;
  (t.out_hi lsl 21) lor (t.out_lo lsr 11)

let[@inline] float t bound =
  (* 53 uniform mantissa bits. *)
  float_of_int (bits53 t) /. 9007199254740992.0 *. bound

let bool t =
  next_out t;
  t.out_lo land 1 = 1

(* Rejection draw of a nonzero unit float, at the module level: the
   let-bound [draw] closures gaussian/exponential used to build cost an
   allocation on every variate. *)
let rec nonzero_unit t =
  let u = float t 1.0 in
  if u = 0.0 then nonzero_unit t else u

let gaussian t =
  let u1 = nonzero_unit t and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  -.log (nonzero_unit t) /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
