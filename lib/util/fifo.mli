(** Growable circular-buffer FIFO with allocation-free steady-state
    push/pop (unlike [Stdlib.Queue], which allocates a cell per push).
    The [dummy] passed at creation fills freed slots so popped values stay
    collectable. *)

type 'a t

val create : dummy:'a -> unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Enqueue at the tail. *)

val pop : 'a t -> 'a
(** Dequeue from the head.  Raises [Invalid_argument] when empty. *)

val clear : 'a t -> unit
