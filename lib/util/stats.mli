(** Streaming and batch descriptive statistics.

    Used by the workload simulators (latency percentiles, occupancy) and by
    the benchmark harness to summarize series. *)

type t
(** Accumulator over a stream of floats (Welford's algorithm). *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Mean of the observations; [nan] when empty. *)

val variance : t -> float
(** Unbiased sample variance; [nan] with fewer than two observations. *)

val stddev : t -> float

val min : t -> float

val max : t -> float

val total : t -> float

val percentile : float array -> float -> float
(** [percentile samples p] with [p] in [\[0,1\]]: linear-interpolated
    percentile of an unsorted sample array (the array is not modified).
    An empty sample array yields [nan] — absent data is a value, not a
    crash, so report paths degrade gracefully.  A singleton returns its
    one element for every [p].  [p] outside [\[0,1\]] (including NaN)
    raises [Invalid_argument] even on empty input; a NaN {e sample}
    raises [Invalid_argument] too — a NaN measurement means the
    instrumentation is broken, and any sorted-rank answer over it would
    be arbitrary. *)

val percentile_in_place : float array -> float -> float
(** As {!percentile}, but sorts the given array in place — hot sweep paths
    reuse one scratch array across percentile queries instead of paying a
    copy per call.  Same edge-case behavior as {!percentile}. *)

val histogram : float array -> bins:int -> (float * int) array
(** [histogram samples ~bins] buckets samples into [bins] equal-width bins
    over the sample range; returns (bin lower edge, count).  Empty input
    yields [\[||\]]; [bins <= 0] raises [Invalid_argument]. *)
