(** Deterministic pseudo-random number generation.

    A small, self-contained SplitMix64 generator.  Every stochastic component
    of the simulators (synthetic weights, workload generators, Monte-Carlo
    yield experiments) takes an explicit [Rng.t] so that runs are reproducible
    and independent streams can be split without correlation. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy sharing no state with the original. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val derive : int -> stream:int -> t
(** [derive seed ~stream:i] is a generator for the [i]-th independent
    stream of [seed], computed from the pair alone — no shared state is
    advanced, so parallel tasks can each derive their own stream from
    their index and stay deterministic under any domain count.  [stream]
    must be non-negative. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val bits53 : t -> int
(** 53 uniform bits as an immediate int — the allocation-free draw
    primitive.  [float t b] equals
    [float_of_int (bits53 t) /. 2.0 ** 53.0 *. b]; hot paths in other
    modules draw through [bits53] because an immediate-int return never
    allocates, where a non-inlined [float] call boxes its result. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); used for Poisson arrivals. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
