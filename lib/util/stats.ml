type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n

let mean t = if t.n = 0 then nan else t.mean

let variance t = if t.n < 2 then nan else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.lo

let max t = t.hi

let total t = t.sum

let percentile_in_place samples p =
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Stats.percentile: p out of range";
  if Array.length samples = 0 then nan
  else begin
    (* Float.compare, not polymorphic compare: same ordering (including
       nan), but the polymorphic path boxes both floats per comparison. *)
    Array.sort Float.compare samples;
    (* Float.compare sorts nan before every number, so one O(1) probe
       after the sort covers the whole array. *)
    if Float.is_nan samples.(0) then
      invalid_arg "Stats.percentile: nan sample";
    let n = Array.length samples in
    let rank = p *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (samples.(lo) *. (1.0 -. frac)) +. (samples.(hi) *. frac)
  end

let percentile samples p = percentile_in_place (Array.copy samples) p

let histogram samples ~bins =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length samples = 0 then [||]
  else begin
    let lo = Array.fold_left Stdlib.min infinity samples in
    let hi = Array.fold_left Stdlib.max neg_infinity samples in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let i = int_of_float ((x -. lo) /. width) in
        let i = Stdlib.min i (bins - 1) in
        counts.(i) <- counts.(i) + 1)
      samples;
    Array.mapi (fun i c -> (lo +. (float_of_int i *. width), c)) counts
  end
