let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let string s = "\"" ^ escape s ^ "\""

let int = string_of_int

let number f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.12g" f

let bool b = if b then "true" else "false"

let obj fields =
  "{"
  ^ String.concat ", " (List.map (fun (k, v) -> string k ^ ": " ^ v) fields)
  ^ "}"

let arr items = "[" ^ String.concat ", " items ^ "]"
