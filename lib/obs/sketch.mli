(** Bounded-memory streaming quantile sketch.

    A fixed-bucket base-2 log-histogram: constant memory however many
    samples it absorbs, fully deterministic (no sampling, no randomness,
    no libm — bucket indices come from comparisons against exact
    power-of-two boundaries, so the state is a pure function of the
    observation multiset plus the exact [sum]/[min]/[max] scalars), and
    mergeable.  This is what lets the telemetry layer survive 10⁸-event
    serving runs: {!Hnlpu_obs.Metrics} histograms feed one of these by
    default instead of retaining raw samples.

    {2 Bucket layout}

    Each binary octave [\[2{^e}, 2{^e+1})] for [e] in [\[-64, 64)] is
    split into 32 linear sub-buckets (4096 buckets per sign, the
    negative side allocated only when a negative sample arrives).
    Magnitudes below [2{^-64}] collapse into a single zero bucket whose
    representative is [0.]; magnitudes at or above [2{^64}] (including
    infinities) land in a per-sign overflow bucket represented by the
    exact observed {!min}/{!max}.

    {2 Error bound}

    Every bucket representative [r] of a sample [x] with
    [2{^-64} <= |x| < 2{^64}] satisfies [|r - x| <= |x| / 64]
    ({!relative_error} [= 1/64 ~ 1.6%]), and representatives are clamped
    into the exact observed [\[min, max\]].  {!quantile} mirrors
    {!Hnlpu_util.Stats.percentile}'s rank arithmetic (linear
    interpolation between the bracketing order statistics at rank
    [p*(n-1)]), substituting bucket representatives for the order
    statistics, so for any sample multiset whose bracketing order
    statistics are [x_lo <= x_hi] with interpolation weight [f]:

    [|quantile t p - percentile samples p|
       <= relative_error *. ((1-f) *. |x_lo| +. f *. |x_hi|) +. 2e-20]

    (the additive [2{^-64} ~ 5.4e-20] term covers the zero bucket).
    For non-negative samples — every latency, byte count and token count
    in this repository — that is a plain relative error:
    [|q̂ - q| <= relative_error *. q +. 2{^-64}].  Overflow-bucket
    samples ([|x| >= 2{^64}]) void the bound; nothing physical
    measured in seconds, bytes or tokens gets there. *)

type t

val relative_error : float
(** [1/64]: the per-sample relative half-width of a log bucket. *)

val create : unit -> t

val observe : t -> float -> unit
(** Absorb one sample in O(log octaves) with zero minor-heap allocation
    (the ALLOC-HOT lint gates this — see [Lint_config]).  Raises
    [Invalid_argument] on a NaN sample: an instrumented NaN means the
    instrumentation itself is broken, which must not pass silently. *)

val count : t -> int

val sum : t -> float
(** Exact running sum (float addition in observation order). *)

val mean : t -> float
(** [sum / count]; [nan] when empty. *)

val min_v : t -> float
(** Exact smallest observation; [infinity] when empty. *)

val max_v : t -> float
(** Exact largest observation; [neg_infinity] when empty. *)

val quantile : t -> float -> float
(** [quantile t p] with [p] in [\[0,1\]]: the sketch estimate of
    {!Hnlpu_util.Stats.percentile} at [p], within the error bound above.
    Empty sketch yields [nan]; [p] outside [\[0,1\]] (including NaN)
    raises [Invalid_argument] — mirroring [Stats.percentile] exactly so
    the two are drop-in interchangeable. *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s state into [into].  Bucket counts, [count], [min] and
    [max] merge commutatively — any merge order yields identical buckets
    and therefore identical quantiles.  [sum] (and hence [mean]) is
    float addition of the two partial sums, so byte-identical [mean]
    additionally requires a fixed merge order; every caller in this
    repository merges shards in task-index order (the {!Hnlpu_par.Par}
    convention). *)

val live_words : t -> int
(** Approximate heap words retained by this sketch (scalar fields plus
    bucket arrays).  Constant once both sign arrays exist — the number
    BENCH_obs.json tracks to show telemetry memory stays flat while
    request counts grow 100x. *)

val to_json : t -> string
(** Strict-JSON summary via {!Json}: [{"count": .., "mean": .., "min":
    .., "max": .., "p50": .., "p95": .., "p99": .., "error_bound": ..,
    "buckets": ..}] where ["buckets"] is the number of non-empty
    buckets.  Same inputs produce byte-identical output. *)
