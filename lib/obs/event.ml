type track = { process : string; thread : string }

let track ~process ~thread = { process; thread }

type arg = S of string | I of int | F of float

type t =
  | Span of {
      track : track;
      name : string;
      cat : string;
      ts_s : float;
      dur_s : float;
      args : (string * arg) list;
    }
  | Instant of {
      track : track;
      name : string;
      cat : string;
      ts_s : float;
      args : (string * arg) list;
    }
  | Counter of { track : track; name : string; ts_s : float; value : float }

let ts_s = function
  | Span { ts_s; _ } | Instant { ts_s; _ } | Counter { ts_s; _ } -> ts_s

let end_s = function
  | Span { ts_s; dur_s; _ } -> ts_s +. dur_s
  | Instant { ts_s; _ } | Counter { ts_s; _ } -> ts_s

let track_of = function
  | Span { track; _ } | Instant { track; _ } | Counter { track; _ } -> track
