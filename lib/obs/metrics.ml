open Hnlpu_util

(* Single-float and float-pair records are flat float records, so the
   per-event updates below are plain stores — no fresh float box per
   event.  [incr]/[set_stamped]/[observe] are ALLOC-HOT hot paths (see
   [Lint_config]); everything that allocates (first registration, exact
   appends, kind clashes) lives in separately named cold helpers. *)

type counter = { mutable total : float }

type gauge = { mutable value : float; mutable stamp : float }

type exact_buf = { mutable buf : float array; mutable n : int }

type hist = Sk of Sketch.t | Exact of exact_buf

type series = Counter of counter | Gauge of gauge | Hist of hist

type t = { series : (string, series) Hashtbl.t; exact_default : bool }

let create ?(exact_histograms = false) () =
  { series = Hashtbl.create 32; exact_default = exact_histograms }

let exact_histograms t = t.exact_default

let kind_label = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let clash name s =
  invalid_arg (Printf.sprintf "Metrics: %S is already a %s" name (kind_label s))

(* Cold: first use of [name] or a kind clash. *)
let incr_slow t by name =
  match Hashtbl.find_opt t.series name with
  | Some (Counter c) -> c.total <- c.total +. by
  | Some s -> clash name s
  | None -> Hashtbl.add t.series name (Counter { total = by })

let incr t ?(by = 1.0) name =
  match Hashtbl.find t.series name with
  | Counter c -> c.total <- c.total +. by
  | _ -> incr_slow t by name
  | exception Not_found -> incr_slow t by name

(* Cold: first use of [name] or a kind clash. *)
let set_slow t stamp name v =
  match Hashtbl.find_opt t.series name with
  | Some (Gauge g) ->
    g.value <- v;
    g.stamp <- stamp
  | Some s -> clash name s
  | None -> Hashtbl.add t.series name (Gauge { value = v; stamp })

let set_stamped t ~stamp name v =
  match Hashtbl.find t.series name with
  | Gauge g ->
    g.value <- v;
    g.stamp <- stamp
  | _ -> set_slow t stamp name v
  | exception Not_found -> set_slow t stamp name v

let set t name v = set_stamped t ~stamp:neg_infinity name v

(* Cold relative to sketch appends; exact mode is the opt-in test path. *)
let exact_append name h v =
  if Float.is_nan v then
    invalid_arg (Printf.sprintf "Metrics.observe: nan sample for %S" name);
  if h.n = Array.length h.buf then begin
    let bigger = Array.make (2 * h.n) 0.0 in
    Array.blit h.buf 0 bigger 0 h.n;
    h.buf <- bigger
  end;
  h.buf.(h.n) <- v;
  h.n <- h.n + 1

(* Cold: first observation of [name] (fixes the histogram's mode) or a
   kind clash. *)
let rec observe_slow t exact name v =
  match Hashtbl.find_opt t.series name with
  | Some (Hist (Sk s)) -> Sketch.observe s v
  | Some (Hist (Exact h)) -> exact_append name h v
  | Some s -> clash name s
  | None ->
    let want_exact =
      match exact with Some b -> b | None -> t.exact_default
    in
    let h =
      if want_exact then Exact { buf = Array.make 64 0.0; n = 0 }
      else Sk (Sketch.create ())
    in
    Hashtbl.add t.series name (Hist h);
    observe_slow t exact name v

let observe t ?exact name v =
  match Hashtbl.find t.series name with
  | Hist (Sk s) -> Sketch.observe s v
  | Hist (Exact h) -> exact_append name h v
  | _ -> observe_slow t exact name v
  | exception Not_found -> observe_slow t exact name v

let counter t name =
  match Hashtbl.find_opt t.series name with
  | Some (Counter c) -> Some c.total
  | _ -> None

let gauge t name =
  match Hashtbl.find_opt t.series name with
  | Some (Gauge g) -> Some g.value
  | _ -> None

let gauge_stamp t name =
  match Hashtbl.find_opt t.series name with
  | Some (Gauge g) -> Some g.stamp
  | _ -> None

type summary = {
  count : int;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let samples t name =
  match Hashtbl.find_opt t.series name with
  | Some (Hist (Exact h)) -> Some (Array.sub h.buf 0 h.n)
  | _ -> None

let summarize xs =
  let s = Stats.create () in
  Array.iter (Stats.add s) xs;
  {
    count = Array.length xs;
    mean = Stats.mean s;
    min_v = Stats.min s;
    max_v = Stats.max s;
    p50 = Stats.percentile xs 0.5;
    p95 = Stats.percentile xs 0.95;
    p99 = Stats.percentile xs 0.99;
  }

let summarize_hist = function
  | Exact h -> summarize (Array.sub h.buf 0 h.n)
  | Sk s ->
    {
      count = Sketch.count s;
      mean = Sketch.mean s;
      min_v = Sketch.min_v s;
      max_v = Sketch.max_v s;
      p50 = Sketch.quantile s 0.5;
      p95 = Sketch.quantile s 0.95;
      p99 = Sketch.quantile s 0.99;
    }

let histogram t name =
  match Hashtbl.find_opt t.series name with
  | Some (Hist h) -> Some (summarize_hist h)
  | _ -> None

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.series [] |> List.sort compare

let merge_into ~into src =
  (* Sorted name order so merging many registries is deterministic; on
     top of that, counters add and gauges resolve by latest stamp (ties
     to the larger value), so every merge order yields the same
     registry.  Only histogram [sum]/[mean] still depend on merge order
     (float addition); callers merge shards in task-index order. *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.series name with
      | None -> ()
      | Some (Counter c) -> incr into ~by:c.total name
      | Some (Gauge g) -> (
        match Hashtbl.find_opt into.series name with
        | Some (Gauge gi) ->
          if
            g.stamp > gi.stamp
            || (g.stamp = gi.stamp && g.value > gi.value)
          then begin
            gi.value <- g.value;
            gi.stamp <- g.stamp
          end
        | Some s -> clash name s
        | None ->
          Hashtbl.add into.series name (Gauge { value = g.value; stamp = g.stamp }))
      | Some (Hist (Exact h)) ->
        (* Exact samples replay into whatever [into] holds (or creates),
           adopting the destination's mode. *)
        for i = 0 to h.n - 1 do
          observe into ~exact:true name h.buf.(i)
        done
      | Some (Hist (Sk s)) -> (
        match Hashtbl.find_opt into.series name with
        | Some (Hist (Sk si)) -> Sketch.merge_into ~into:si s
        | Some (Hist (Exact _)) ->
          invalid_arg
            (Printf.sprintf
               "Metrics.merge_into: %S is a sketch histogram in the source \
                but exact in the destination (a sketch cannot be replayed \
                into raw samples)"
               name)
        | Some other -> clash name other
        | None ->
          let fresh = Sketch.create () in
          Sketch.merge_into ~into:fresh s;
          Hashtbl.add into.series name (Hist (Sk fresh))))
    (names src)

let is_empty t = Hashtbl.length t.series = 0

let live_words t =
  (* Estimate of heap words retained by the registry: per-series payload
     plus the name string and a nominal hashtable-bucket overhead.  The
     point is the trend BENCH_obs.json tracks, not byte accounting. *)
  List.fold_left
    (fun acc name ->
      let payload =
        match Hashtbl.find_opt t.series name with
        | None -> 0
        | Some (Counter _) -> 2
        | Some (Gauge _) -> 3
        | Some (Hist (Sk sk)) -> 2 + Sketch.live_words sk
        | Some (Hist (Exact h)) -> 4 + Array.length h.buf + 1
      in
      acc + payload + ((String.length name + 8) / 8) + 4)
    0 (names t)

let to_json t =
  let of_kind keep render =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt t.series name with
        | Some s when keep s -> Some (name, render s)
        | _ -> None)
      (names t)
  in
  let counters =
    of_kind
      (function Counter _ -> true | _ -> false)
      (function Counter c -> Json.number c.total | _ -> assert false)
  in
  let gauges =
    of_kind
      (function Gauge _ -> true | _ -> false)
      (function Gauge g -> Json.number g.value | _ -> assert false)
  in
  let hists =
    of_kind
      (function Hist _ -> true | _ -> false)
      (function
        | Hist h ->
          let s = summarize_hist h in
          Json.obj
            [
              ("count", Json.int s.count);
              ("mean", Json.number s.mean);
              ("min", Json.number s.min_v);
              ("max", Json.number s.max_v);
              ("p50", Json.number s.p50);
              ("p95", Json.number s.p95);
              ("p99", Json.number s.p99);
            ]
        | _ -> assert false)
  in
  Json.obj
    [
      ("counters", Json.obj counters);
      ("gauges", Json.obj gauges);
      ("histograms", Json.obj hists);
    ]
  ^ "\n"

let to_table t =
  let table =
    Table.create ~headers:[ "Metric"; "Kind"; "Value"; "p50"; "p95"; "p99" ]
  in
  let num v = Printf.sprintf "%.6g" v in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.series name with
      | Some (Counter c) -> Table.add_row table [ name; "counter"; num c.total; ""; ""; "" ]
      | Some (Gauge g) -> Table.add_row table [ name; "gauge"; num g.value; ""; ""; "" ]
      | Some (Hist h) ->
        let s = summarize_hist h in
        Table.add_row table
          [
            name;
            Printf.sprintf "hist[%d]" s.count;
            num s.mean;
            num s.p50;
            num s.p95;
            num s.p99;
          ]
      | None -> ())
    (names t);
  table
