open Hnlpu_util

type hist = { mutable buf : float array; mutable n : int }

type series = Counter of float ref | Gauge of float ref | Hist of hist

type t = { series : (string, series) Hashtbl.t }

let create () = { series = Hashtbl.create 32 }

let kind_label = function Counter _ -> "counter" | Gauge _ -> "gauge" | Hist _ -> "histogram"

let lookup t name ~want ~make =
  match Hashtbl.find_opt t.series name with
  | Some s ->
    if not (want s) then
      invalid_arg
        (Printf.sprintf "Metrics: %S is already a %s" name (kind_label s));
    s
  | None ->
    let s = make () in
    Hashtbl.add t.series name s;
    s

let incr t ?(by = 1.0) name =
  match
    lookup t name
      ~want:(function Counter _ -> true | _ -> false)
      ~make:(fun () -> Counter (ref 0.0))
  with
  | Counter r -> r := !r +. by
  | _ -> assert false

let set t name v =
  match
    lookup t name
      ~want:(function Gauge _ -> true | _ -> false)
      ~make:(fun () -> Gauge (ref 0.0))
  with
  | Gauge r -> r := v
  | _ -> assert false

let observe t name v =
  match
    lookup t name
      ~want:(function Hist _ -> true | _ -> false)
      ~make:(fun () -> Hist { buf = Array.make 64 0.0; n = 0 })
  with
  | Hist h ->
    if h.n = Array.length h.buf then begin
      let bigger = Array.make (2 * h.n) 0.0 in
      Array.blit h.buf 0 bigger 0 h.n;
      h.buf <- bigger
    end;
    h.buf.(h.n) <- v;
    h.n <- h.n + 1
  | _ -> assert false

let counter t name =
  match Hashtbl.find_opt t.series name with
  | Some (Counter r) -> Some !r
  | _ -> None

let gauge t name =
  match Hashtbl.find_opt t.series name with
  | Some (Gauge r) -> Some !r
  | _ -> None

type summary = {
  count : int;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let samples t name =
  match Hashtbl.find_opt t.series name with
  | Some (Hist h) -> Some (Array.sub h.buf 0 h.n)
  | _ -> None

let summarize xs =
  let s = Stats.create () in
  Array.iter (Stats.add s) xs;
  {
    count = Array.length xs;
    mean = Stats.mean s;
    min_v = Stats.min s;
    max_v = Stats.max s;
    p50 = Stats.percentile xs 0.5;
    p95 = Stats.percentile xs 0.95;
    p99 = Stats.percentile xs 0.99;
  }

let histogram t name = Option.map summarize (samples t name)

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.series [] |> List.sort compare

let merge_into ~into src =
  (* Sorted name order so merging many registries is deterministic; a kind
     clash between the two registries raises through [lookup], same as a
     clash inside one registry. *)
  List.iter
    (fun name ->
      match Hashtbl.find_opt src.series name with
      | None -> ()
      | Some (Counter r) -> incr into ~by:!r name
      | Some (Gauge r) -> set into name !r
      | Some (Hist h) ->
        for i = 0 to h.n - 1 do
          observe into name h.buf.(i)
        done)
    (names src)

let is_empty t = Hashtbl.length t.series = 0

let to_json t =
  let of_kind keep render =
    List.filter_map
      (fun name ->
        match Hashtbl.find_opt t.series name with
        | Some s when keep s -> Some (name, render s)
        | _ -> None)
      (names t)
  in
  let counters =
    of_kind
      (function Counter _ -> true | _ -> false)
      (function Counter r -> Json.number !r | _ -> assert false)
  in
  let gauges =
    of_kind
      (function Gauge _ -> true | _ -> false)
      (function Gauge r -> Json.number !r | _ -> assert false)
  in
  let hists =
    of_kind
      (function Hist _ -> true | _ -> false)
      (function
        | Hist h ->
          let s = summarize (Array.sub h.buf 0 h.n) in
          Json.obj
            [
              ("count", Json.int s.count);
              ("mean", Json.number s.mean);
              ("min", Json.number s.min_v);
              ("max", Json.number s.max_v);
              ("p50", Json.number s.p50);
              ("p95", Json.number s.p95);
              ("p99", Json.number s.p99);
            ]
        | _ -> assert false)
  in
  Json.obj
    [
      ("counters", Json.obj counters);
      ("gauges", Json.obj gauges);
      ("histograms", Json.obj hists);
    ]
  ^ "\n"

let to_table t =
  let table =
    Table.create ~headers:[ "Metric"; "Kind"; "Value"; "p50"; "p95"; "p99" ]
  in
  let num v = Printf.sprintf "%.6g" v in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.series name with
      | Some (Counter r) -> Table.add_row table [ name; "counter"; num !r; ""; ""; "" ]
      | Some (Gauge r) -> Table.add_row table [ name; "gauge"; num !r; ""; ""; "" ]
      | Some (Hist h) ->
        let s = summarize (Array.sub h.buf 0 h.n) in
        Table.add_row table
          [
            name;
            Printf.sprintf "hist[%d]" s.count;
            num s.mean;
            num s.p50;
            num s.p95;
            num s.p99;
          ]
      | None -> ())
    (names t);
  table
