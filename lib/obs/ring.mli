(** Bounded ring buffer for recorded events.

    Simulations can emit far more events than anyone wants to keep; the
    recorder therefore retains only the most recent [capacity] entries and
    counts what it evicted, so exports can say "N events (M dropped)"
    instead of exhausting memory on long runs. *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val push : 'a t -> 'a -> unit
(** Appends, evicting the oldest entry once full. *)

val length : 'a t -> int
(** Entries currently retained. *)

val capacity : 'a t -> int

val pushed : 'a t -> int
(** Total entries ever pushed. *)

val dropped : 'a t -> int
(** [pushed - length]: evicted entries. *)

val to_list : 'a t -> 'a list
(** Retained entries, oldest first. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)
