(** Named-metric registry: counters, gauges and histograms.

    Names are free-form but the convention is "subsystem/metric"
    ("scheduler/ttft_s", "noc/bytes_sent").  A name is bound to one kind on
    first use; mixing kinds under one name raises [Invalid_argument], which
    catches instrumentation typos at the call site.

    Histograms feed a bounded-memory deterministic {!Sketch} by default —
    constant words per series however many samples arrive, p50/p95/p99
    within the sketch's documented error bound (1/64 relative) of the
    exact {!Hnlpu_util.Stats.percentile}.  Raw-sample retention is the
    opt-in exact mode ([~exact:true] per series, or [~exact_histograms]
    for a whole registry), kept for tests and error-bound validation.

    The per-event entry points ([incr], [set_stamped], [observe]) are
    ALLOC-HOT lint hot paths: once a series exists, recording into it
    allocates nothing. *)

type t

val create : ?exact_histograms:bool -> unit -> t
(** [exact_histograms] (default false) makes histograms created by plain
    {!observe} retain raw samples instead of a sketch — the memory
    baseline the scaled bench compares against. *)

val exact_histograms : t -> bool
(** The registry's default histogram mode (what [create] was given). *)

val incr : t -> ?by:float -> string -> unit
(** Monotonic counter; [by] defaults to 1. *)

val set : t -> string -> float -> unit
(** Gauge, unstamped: last-write-wins locally, stamp [neg_infinity]
    (so any stamped write dominates it in a merge). *)

val set_stamped : t -> stamp:float -> string -> float -> unit
(** Gauge set carrying a sim-time stamp.  Simulators stamp every gauge
    write with the simulated time of the event, so {!merge_into} can
    resolve the same gauge across domain shards by latest stamp instead
    of by merge order. *)

val observe : t -> ?exact:bool -> string -> float -> unit
(** Histogram sample.  The first observation of a name fixes the
    series' mode: [~exact:true] retains raw samples, [~exact:false] a
    sketch, omitted uses the registry default.  Later observations
    adopt the existing mode regardless of [?exact].  Raises
    [Invalid_argument] on a NaN sample in either mode. *)

val counter : t -> string -> float option

val gauge : t -> string -> float option

val gauge_stamp : t -> string -> float option
(** The sim-time stamp of the gauge's current value ([neg_infinity] if
    it has only ever been set unstamped). *)

type summary = {
  count : int;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val histogram : t -> string -> summary option
(** Percentiles are exact for an exact-mode series and sketch estimates
    (within the documented bound) for the default mode. *)

val samples : t -> string -> float array option
(** A copy of an exact-mode histogram's raw samples, in observation
    order.  [None] for sketch-backed histograms — the samples no longer
    exist, which is the point. *)

val names : t -> string list
(** All registered names, sorted (exports are deterministic). *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src] into [into]: counters add; gauges
    resolve by latest stamp (ties to the larger value), so shard-merge
    order cannot change the result; sketch histograms merge bucket-wise
    (quantiles/count/min/max independent of merge order; only the
    float-added [sum]/[mean] still want the fixed task-index order all
    callers use); exact histogram samples replay in observation order.
    Names are visited sorted.  Raises [Invalid_argument] if a name is
    bound to different kinds in the two registries, or if a sketch
    source meets an exact destination (raw samples cannot be
    reconstructed from buckets — create the shards with matching
    modes, as {!Sink.create}'s [?exact_histograms] does). *)

val is_empty : t -> bool

val live_words : t -> int
(** Estimated heap words retained by the registry (series payloads,
    names, nominal table overhead).  Flat over time for sketch-backed
    registries; grows linearly with samples in exact mode — the
    contrast BENCH_obs.json records. *)

val to_json : t -> string
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {"count": ..,
    "mean": .., "min": .., "max": .., "p50": .., "p95": .., "p99": ..}}}],
    keys sorted.  The shape is identical for sketch and exact modes. *)

val to_table : t -> Hnlpu_util.Table.t
(** Human-readable rendering: one row per metric, histograms summarized as
    count/mean/p50/p95/p99. *)
