(** Named-metric registry: counters, gauges and histograms.

    Names are free-form but the convention is "subsystem/metric"
    ("scheduler/ttft_s", "noc/bytes_sent").  A name is bound to one kind on
    first use; mixing kinds under one name raises [Invalid_argument], which
    catches instrumentation typos at the call site.

    Histograms retain their raw samples (simulation runs are bounded) and
    summarize through {!Hnlpu_util.Stats} — the same percentile code the
    rest of the repository reports with, so a measured p95 here and a p95
    in an SLO sweep mean the same thing. *)

type t

val create : unit -> t

val incr : t -> ?by:float -> string -> unit
(** Monotonic counter; [by] defaults to 1. *)

val set : t -> string -> float -> unit
(** Gauge: last-write-wins. *)

val observe : t -> string -> float -> unit
(** Histogram sample. *)

val counter : t -> string -> float option

val gauge : t -> string -> float option

type summary = {
  count : int;
  mean : float;
  min_v : float;
  max_v : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val histogram : t -> string -> summary option

val samples : t -> string -> float array option
(** A copy of a histogram's raw samples, in observation order. *)

val names : t -> string list
(** All registered names, sorted (exports are deterministic). *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] folds [src] into [into]: counters add, gauges
    take [src]'s value (last-writer-wins, so merge in a fixed order),
    histogram samples append in observation order.  Names are visited
    sorted, so merging a list of registries in index order is
    deterministic.  Raises [Invalid_argument] if a name is bound to
    different kinds in the two registries. *)

val is_empty : t -> bool

val to_json : t -> string
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {"count": ..,
    "mean": .., "min": .., "max": .., "p50": .., "p95": .., "p99": ..}}}],
    keys sorted. *)

val to_table : t -> Hnlpu_util.Table.t
(** Human-readable rendering: one row per metric, histograms summarized as
    count/mean/p50/p95/p99. *)
