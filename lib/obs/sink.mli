(** The telemetry sink simulators record into.

    Simulators take an optional [?obs : Sink.t]; when absent they skip all
    recording (the call sites pattern-match on [None] before building any
    event), so instrumentation costs nothing when off and results are
    bit-identical to the uninstrumented path.  When present, spans and
    samples land in a bounded {!Ring} of {!Event.t} and aggregates in a
    {!Metrics} registry, both exportable after the run. *)

type t

val create : ?capacity:int -> ?events:bool -> ?exact_histograms:bool -> unit -> t
(** A fresh sink retaining at most [capacity] (default 65,536) events.

    [~events:false] makes a {b counters-only} sink: {!span}, {!instant}
    and the timeline half of {!sample} become no-ops (no event record is
    ever allocated, and the ring shrinks to one slot) while the
    {!metrics} registry keeps aggregating.  Parallel sweeps use this for
    their private per-task sinks when the caller's sink is itself
    counters-only, so per-point span records are never built just for a
    merge to discard them.

    [~exact_histograms] is handed to {!Metrics.create}: default [false]
    (bounded-memory sketch histograms), [true] retains raw samples.
    Sharded sweeps propagate the caller's setting to their private
    sinks so shard merges never mix modes. *)

val metrics : t -> Metrics.t

val events_enabled : t -> bool
(** [false] for a counters-only sink (created with [~events:false]). *)

val exact_histograms : t -> bool
(** The underlying registry's histogram mode. *)

val span :
  ?cat:string -> ?args:(string * Event.arg) list -> t ->
  track:Event.track -> name:string -> start_s:float -> dur_s:float -> unit
(** Record a completed span.  Raises [Invalid_argument] on a negative or
    non-finite duration — a malformed span means the instrumentation
    itself is wrong, which must not pass silently. *)

val instant :
  ?cat:string -> ?args:(string * Event.arg) list -> t ->
  track:Event.track -> name:string -> ts_s:float -> unit

val sample : t -> track:Event.track -> name:string -> ts_s:float -> float -> unit
(** One counter-series sample on the timeline; also mirrors the latest
    value into {!metrics} as a gauge under the same name, stamped with
    [ts_s] so shard merges resolve by sim time rather than merge
    order. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] appends [src]'s retained events (oldest first)
    to [into]'s ring and folds its metrics in via
    {!Metrics.merge_into}.  Parallel sweeps give each task a private sink
    and merge them in task-index order afterwards, so the combined
    timeline and registry are identical whatever the domain count. *)

val events : t -> Event.t list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events ever recorded (retained + dropped). *)

val dropped : t -> int
(** Events evicted by the ring bound. *)

val live_words : t -> int
(** Estimated heap words retained by this sink: ring slots (event
    payloads excluded) plus {!Metrics.live_words}.  The telemetry-memory
    number BENCH_obs.json plots against request count. *)
