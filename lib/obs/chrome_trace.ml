let us t = Json.number (t *. 1e6)

let render_arg = function
  | Event.S s -> Json.string s
  | Event.I i -> Json.int i
  | Event.F f -> Json.number f

let render_args args = Json.obj (List.map (fun (k, v) -> (k, render_arg v)) args)

(* pid per process name, tid per (process, thread), both in first-appearance
   order so identical event streams export identically. *)
type ids = {
  pids : (string, int) Hashtbl.t;
  tids : (string * string, int) Hashtbl.t;
  mutable meta : string list; (* reversed metadata events *)
}

let ids_create () = { pids = Hashtbl.create 8; tids = Hashtbl.create 32; meta = [] }

let pid ids process =
  match Hashtbl.find_opt ids.pids process with
  | Some p -> p
  | None ->
    let p = Hashtbl.length ids.pids + 1 in
    Hashtbl.add ids.pids process p;
    ids.meta <-
      Json.obj
        [
          ("name", Json.string "process_name");
          ("ph", Json.string "M");
          ("pid", Json.int p);
          ("args", Json.obj [ ("name", Json.string process) ]);
        ]
      :: ids.meta;
    p

let tid ids (track : Event.track) =
  let p = pid ids track.Event.process in
  match Hashtbl.find_opt ids.tids (track.Event.process, track.Event.thread) with
  | Some t -> (p, t)
  | None ->
    let t = Hashtbl.length ids.tids + 1 in
    Hashtbl.add ids.tids (track.Event.process, track.Event.thread) t;
    ids.meta <-
      Json.obj
        [
          ("name", Json.string "thread_name");
          ("ph", Json.string "M");
          ("pid", Json.int p);
          ("tid", Json.int t);
          ("args", Json.obj [ ("name", Json.string track.Event.thread) ]);
        ]
      :: ids.meta;
    (p, t)

let render_event ids ev =
  let on track rest =
    let p, t = tid ids track in
    Json.obj (rest @ [ ("pid", Json.int p); ("tid", Json.int t) ])
  in
  match ev with
  | Event.Span { track; name; cat; ts_s; dur_s; args } ->
    on track
      [
        ("name", Json.string name);
        ("cat", Json.string (if cat = "" then track.Event.process else cat));
        ("ph", Json.string "X");
        ("ts", us ts_s);
        ("dur", us dur_s);
        ("args", render_args args);
      ]
  | Event.Instant { track; name; cat; ts_s; args } ->
    on track
      [
        ("name", Json.string name);
        ("cat", Json.string (if cat = "" then track.Event.process else cat));
        ("ph", Json.string "i");
        ("ts", us ts_s);
        ("s", Json.string "t");
        ("args", render_args args);
      ]
  | Event.Counter { track; name; ts_s; value } ->
    on track
      [
        ("name", Json.string name);
        ("ph", Json.string "C");
        ("ts", us ts_s);
        ("args", Json.obj [ ("value", Json.number value) ]);
      ]

let to_json events =
  let ids = ids_create () in
  let rendered = List.map (render_event ids) events in
  let all = List.rev_append ids.meta rendered in
  Printf.sprintf "{\"traceEvents\": %s, \"displayTimeUnit\": \"ms\"}\n"
    (Json.arr all)

let jsonl_line ev =
  let base (track : Event.track) rest =
    Json.obj
      (( "process", Json.string track.Event.process)
       :: ("thread", Json.string track.Event.thread)
       :: rest)
  in
  match ev with
  | Event.Span { track; name; cat; ts_s; dur_s; args } ->
    base track
      [
        ("kind", Json.string "span");
        ("name", Json.string name);
        ("cat", Json.string cat);
        ("ts_s", Json.number ts_s);
        ("dur_s", Json.number dur_s);
        ("args", render_args args);
      ]
  | Event.Instant { track; name; cat; ts_s; args } ->
    base track
      [
        ("kind", Json.string "instant");
        ("name", Json.string name);
        ("cat", Json.string cat);
        ("ts_s", Json.number ts_s);
        ("args", render_args args);
      ]
  | Event.Counter { track; name; ts_s; value } ->
    base track
      [
        ("kind", Json.string "counter");
        ("name", Json.string name);
        ("ts_s", Json.number ts_s);
        ("value", Json.number value);
      ]

let to_jsonl events =
  String.concat "" (List.map (fun ev -> jsonl_line ev ^ "\n") events)
