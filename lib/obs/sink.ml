type t = { ring : Event.t Ring.t; metrics : Metrics.t; record_events : bool }

let create ?(capacity = 65536) ?(events = true) ?exact_histograms () =
  (* A counters-only sink never pushes, so don't pay for the ring's
     slot array — this is what keeps per-domain shard sinks cheap
     enough to create per sweep point. *)
  let capacity = if events then capacity else 1 in
  {
    ring = Ring.create ~capacity;
    metrics = Metrics.create ?exact_histograms ();
    record_events = events;
  }

let metrics t = t.metrics

let events_enabled t = t.record_events

let exact_histograms t = Metrics.exact_histograms t.metrics

let span ?(cat = "") ?(args = []) t ~track ~name ~start_s ~dur_s =
  if Float.is_nan dur_s || dur_s < 0.0 || dur_s = infinity then
    invalid_arg
      (Printf.sprintf "Sink.span: bad duration %g for %S" dur_s name);
  if t.record_events then
    Ring.push t.ring (Event.Span { track; name; cat; ts_s = start_s; dur_s; args })

let instant ?(cat = "") ?(args = []) t ~track ~name ~ts_s =
  if t.record_events then
    Ring.push t.ring (Event.Instant { track; name; cat; ts_s; args })

let sample t ~track ~name ~ts_s value =
  if t.record_events then
    Ring.push t.ring (Event.Counter { track; name; ts_s; value });
  (* Stamped with sim time so shard merges resolve the gauge by latest
     sample, not by merge order. *)
  Metrics.set_stamped t.metrics ~stamp:ts_s name value

let merge_into ~into src =
  Ring.iter (Ring.push into.ring) src.ring;
  Metrics.merge_into ~into:into.metrics src.metrics

let events t = Ring.to_list t.ring

let recorded t = Ring.pushed t.ring

let dropped t = Ring.dropped t.ring

let live_words t =
  (* Ring slot array (event payloads excluded — counters-only sinks
     never have any) plus the metrics registry estimate. *)
  Ring.capacity t.ring + 1 + 4 + Metrics.live_words t.metrics
