(** Telemetry events over {e simulated} time.

    Every event carries a {!track}: the (process, thread) pair it renders
    on in a Chrome trace viewer.  Subsystems use the process name
    ("scheduler", "pipeline", "noc", "thermal") and one thread per logical
    lane (a request, a pipeline-stage slot, a chip), so a combined trace
    shows each simulator as its own swim-lane group on one timeline.

    Timestamps are simulated seconds; the exporters convert to the
    microseconds Chrome's trace-event format expects. *)

type track = { process : string; thread : string }

val track : process:string -> thread:string -> track

type arg = S of string | I of int | F of float
(** Typed span/event annotations ("args" in the trace-event format). *)

type t =
  | Span of {
      track : track;
      name : string;
      cat : string;
      ts_s : float;      (** Start, simulated seconds. *)
      dur_s : float;     (** Duration, simulated seconds (>= 0). *)
      args : (string * arg) list;
    }  (** A complete ("X"-phase) duration event. *)
  | Instant of {
      track : track;
      name : string;
      cat : string;
      ts_s : float;
      args : (string * arg) list;
    }  (** A point-in-time marker. *)
  | Counter of { track : track; name : string; ts_s : float; value : float }
      (** One sample of a time series (queue depth, busy slots, ...). *)

val ts_s : t -> float
(** Start timestamp of any event kind. *)

val end_s : t -> float
(** End timestamp: [ts_s + dur_s] for spans, [ts_s] otherwise. *)

val track_of : t -> track
