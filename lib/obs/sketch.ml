(* Fixed-bucket base-2 log-histogram.  Layout and error bound are
   documented in the mli; the implementation constraints that shape the
   code are:

   - [observe] is an ALLOC-HOT Leaf hot path (see [Lint_config]), so the
     bucket index comes from a binary search over a precomputed table of
     exact power-of-two boundaries — no [frexp] (returns a tuple), no
     [Int64.bits_of_float] (boxes), no local refs (box).  The search is
     a top-level tail recursion over immediate ints.
   - The float scalars live in their own all-float record so updating
     them is a flat store, not a fresh float box per event.
   - Determinism: bucket edges are exact powers of two and the sub-bucket
     index is one divide (exact, power-of-two divisor) plus one
     [int_of_float] truncation — identical on every platform. *)

(* 32 linear sub-buckets per octave: relative half-width 1/64. *)
let relative_error = 1.0 /. 64.0

let octaves = 128 (* exponents -64 .. 63 *)
let buckets = octaves * 32

let tiny = Float.ldexp 1.0 (-64)
let huge = Float.ldexp 1.0 64

(* bounds.(o) = 2^(o - 64); octave o covers [bounds.(o), bounds.(o+1)). *)
let bounds = Array.init (octaves + 1) (fun i -> Float.ldexp 1.0 (i - 64))

type scalars = { mutable sum : float; mutable lo : float; mutable hi : float }

type t = {
  s : scalars;
  mutable count : int;
  mutable zero : int; (* |v| < 2^-64, including 0. and -0. *)
  mutable pos_overflow : int; (* v >= 2^64, including +inf *)
  mutable neg_overflow : int; (* v <= -(2^64), including -inf *)
  pos : int array;
  mutable neg : int array; (* [||] until the first negative sample *)
}

let create () =
  {
    s = { sum = 0.0; lo = infinity; hi = neg_infinity };
    count = 0;
    zero = 0;
    pos_overflow = 0;
    neg_overflow = 0;
    pos = Array.make buckets 0;
    neg = [||];
  }

(* Invariant: bounds.(lo) <= v < bounds.(hi); returns the octave index. *)
let rec octave_pos v lo hi =
  if hi - lo <= 1 then lo
  else
    let mid = (lo + hi) lsr 1 in
    if v < Array.unsafe_get bounds mid then octave_pos v lo mid
    else octave_pos v mid hi

(* Mirror search for v < 0: bounds.(lo) <= -v < bounds.(hi), phrased as
   comparisons on v itself so the magnitude is never materialized (a
   [Float.abs] result crossing a call boundary would be boxed). *)
let rec octave_neg v lo hi =
  if hi - lo <= 1 then lo
  else
    let mid = (lo + hi) lsr 1 in
    if v > -.Array.unsafe_get bounds mid then octave_neg v lo mid
    else octave_neg v mid hi

let bucket_index_pos v =
  let o = octave_pos v 0 octaves in
  (* v / 2^e is exact, so the sub-bucket is a pure truncation. *)
  let s = int_of_float (((v /. Array.unsafe_get bounds o) -. 1.0) *. 32.0) in
  let s = if s < 0 then 0 else if s > 31 then 31 else s in
  (o lsl 5) + s

let bucket_index_neg v =
  let o = octave_neg v 0 octaves in
  let s = int_of_float (((-.v /. Array.unsafe_get bounds o) -. 1.0) *. 32.0) in
  let s = if s < 0 then 0 else if s > 31 then 31 else s in
  (o lsl 5) + s

(* Cold: runs at most once per sketch, on the first negative sample. *)
let grow_neg t = t.neg <- Array.make buckets 0

let observe t v =
  if Float.is_nan v then invalid_arg "Sketch.observe: nan sample";
  t.count <- t.count + 1;
  t.s.sum <- t.s.sum +. v;
  if v < t.s.lo then t.s.lo <- v;
  if v > t.s.hi then t.s.hi <- v;
  if v >= 0.0 then
    if v < tiny then t.zero <- t.zero + 1
    else if v >= huge then t.pos_overflow <- t.pos_overflow + 1
    else begin
      let i = bucket_index_pos v in
      Array.unsafe_set t.pos i (Array.unsafe_get t.pos i + 1)
    end
  else if v > -.tiny then t.zero <- t.zero + 1
  else if v <= -.huge then t.neg_overflow <- t.neg_overflow + 1
  else begin
    if Array.length t.neg = 0 then grow_neg t;
    let i = bucket_index_neg v in
    Array.unsafe_set t.neg i (Array.unsafe_get t.neg i + 1)
  end

let count t = t.count

let sum t = t.s.sum

let mean t = if t.count = 0 then nan else t.s.sum /. float_of_int t.count

let min_v t = t.s.lo

let max_v t = t.s.hi

(* Midpoint of bucket [i]'s value range (positive side). *)
let rep i =
  let o = i lsr 5 and s = i land 31 in
  bounds.(o) *. (1.0 +. ((float_of_int s +. 0.5) /. 32.0))

let clamp t x = if x < t.s.lo then t.s.lo else if x > t.s.hi then t.s.hi else x

(* Representative of the k-th (0-based) order statistic: walk buckets in
   ascending value order.  O(buckets); quantile queries are report-time
   only, never on the per-event path. *)
let nth_interior t k =
  let k = ref k in
  let out = ref nan in
  let found = ref false in
  let take n r =
    if not !found then
      if !k < n then begin
        out := clamp t r;
        found := true
      end
      else k := !k - n
  in
  take t.neg_overflow t.s.lo;
  if Array.length t.neg > 0 then
    for i = buckets - 1 downto 0 do
      take t.neg.(i) (-.rep i)
    done;
  take t.zero 0.0;
  for i = 0 to buckets - 1 do
    take t.pos.(i) (rep i)
  done;
  take t.pos_overflow t.s.hi;
  !out

(* The extreme order statistics are the exactly-tracked min and max, so
   p = 0 and p = 1 (and every singleton) come out exact. *)
let nth t k =
  if k <= 0 then t.s.lo
  else if k >= t.count - 1 then t.s.hi
  else nth_interior t k

let quantile t p =
  (* Same validation, rank arithmetic and interpolation as
     [Stats.percentile], with bucket representatives in place of the
     sorted order statistics. *)
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Sketch.quantile: p out of range";
  if t.count = 0 then nan
  else begin
    let rank = p *. float_of_int (t.count - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (t.count - 1) in
    let frac = rank -. float_of_int lo in
    let xlo = nth t lo in
    if hi = lo then xlo
    else (xlo *. (1.0 -. frac)) +. (nth t hi *. frac)
  end

let merge_into ~into src =
  into.count <- into.count + src.count;
  into.s.sum <- into.s.sum +. src.s.sum;
  if src.s.lo < into.s.lo then into.s.lo <- src.s.lo;
  if src.s.hi > into.s.hi then into.s.hi <- src.s.hi;
  into.zero <- into.zero + src.zero;
  into.pos_overflow <- into.pos_overflow + src.pos_overflow;
  into.neg_overflow <- into.neg_overflow + src.neg_overflow;
  for i = 0 to buckets - 1 do
    into.pos.(i) <- into.pos.(i) + src.pos.(i)
  done;
  if Array.length src.neg > 0 then begin
    if Array.length into.neg = 0 then grow_neg into;
    for i = 0 to buckets - 1 do
      into.neg.(i) <- into.neg.(i) + src.neg.(i)
    done
  end

let live_words t =
  let arr a = if Array.length a = 0 then 0 else Array.length a + 1 in
  (* t (7 fields) + scalars (3 float fields), each plus a header word. *)
  8 + 4 + arr t.pos + arr t.neg

let nonempty_buckets t =
  let live = ref 0 in
  let bump c = if c > 0 then Stdlib.incr live in
  bump t.zero;
  bump t.pos_overflow;
  bump t.neg_overflow;
  Array.iter bump t.pos;
  Array.iter bump t.neg;
  !live

let to_json t =
  Json.obj
    [
      ("count", Json.int t.count);
      ("mean", Json.number (mean t));
      ("min", Json.number t.s.lo);
      ("max", Json.number t.s.hi);
      ("p50", Json.number (quantile t 0.5));
      ("p95", Json.number (quantile t 0.95));
      ("p99", Json.number (quantile t 0.99));
      ("error_bound", Json.number relative_error);
      ("buckets", Json.int (nonempty_buckets t));
    ]
