(** Exporters for recorded event streams.

    {!to_json} writes the Chrome trace-event format (the ["traceEvents"]
    JSON object array with "X"/"i"/"C"-phase events and process/thread
    metadata), loadable in Perfetto (https://ui.perfetto.dev) or
    chrome://tracing.  Timestamps convert from simulated seconds to the
    format's microseconds.  Process and thread ids are assigned in first-
    appearance order, so a deterministic event stream exports to
    byte-identical JSON (tested).

    {!to_jsonl} writes the same events one JSON object per line for
    streaming consumers (jq, log pipelines). *)

val to_json : Event.t list -> string
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val to_jsonl : Event.t list -> string
(** One event object per line, no wrapper; metadata events omitted (each
    line carries its track names inline instead). *)
