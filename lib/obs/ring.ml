type 'a t = {
  data : 'a option array;
  cap : int;
  mutable head : int;   (* index of the oldest entry *)
  mutable len : int;
  mutable pushed : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { data = Array.make capacity None; cap = capacity; head = 0; len = 0; pushed = 0 }

let push t x =
  t.pushed <- t.pushed + 1;
  if t.len < t.cap then begin
    t.data.((t.head + t.len) mod t.cap) <- Some x;
    t.len <- t.len + 1
  end
  else begin
    t.data.(t.head) <- Some x;
    t.head <- (t.head + 1) mod t.cap
  end

let length t = t.len

let capacity t = t.cap

let pushed t = t.pushed

let dropped t = t.pushed - t.len

let get t i =
  match t.data.((t.head + i) mod t.cap) with
  | Some x -> x
  | None -> assert false (* i < len implies the slot is filled *)

let to_list t = List.init t.len (get t)

let iter f t =
  for i = 0 to t.len - 1 do
    f (get t i)
  done
