(** Minimal JSON rendering helpers shared by the telemetry exporters.

    The observability layer emits JSON that strict parsers must accept
    (Chrome trace viewers, Perfetto, CI validation), so everything funnels
    through these combinators: strings are RFC 8259-escaped and non-finite
    floats — which JSON cannot represent — render as [null].  Values are
    built as already-rendered strings; no intermediate tree. *)

val escape : string -> string
(** Backslash-escape quotes, backslashes and control characters. *)

val string : string -> string
(** A quoted, escaped JSON string literal. *)

val int : int -> string

val number : float -> string
(** Finite floats in shortest-ish decimal form ([%.0f] for integers,
    [%.12g] otherwise — both valid JSON numbers); NaN and infinities
    render as [null]. *)

val bool : bool -> string

val obj : (string * string) list -> string
(** [obj fields] with already-rendered member values. *)

val arr : string list -> string
(** [arr items] with already-rendered items. *)
