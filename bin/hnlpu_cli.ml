(* hnlpu — command-line front end for the HNLPU reproduction.

   Subcommands map to the paper's evaluation artifacts:
     tables     regenerate any/all of the paper's tables and figures
     perf       performance model queries (throughput, latency, breakdown)
     tco        total-cost-of-ownership scenarios
     nre        mask NRE for arbitrary model footprints
     simulate   continuous-batching workload simulation
     generate   run the tiny reference MoE transformer end-to-end
     neuron     run the three embedding machines on the operator benchmark *)

open Cmdliner
open Hnlpu

let config = Config.gpt_oss_120b

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

(* Shared by every subcommand that runs parallel sweeps: -j N forces the
   Par pool width for the whole invocation.  Results are identical for
   every width, so this is purely a speed knob. *)
let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Domain-pool width for parallel sweeps (default: $(b,HNLPU_DOMAINS) \
           or the machine's recommended domain count).  Results are \
           byte-identical for every width.")

let set_jobs jobs =
  (* Validate HNLPU_DOMAINS up front even when this invocation happens not
     to fan out (1-point sweeps shortcut past width resolution): a typo'd
     width should fail loudly and cleanly, not as an uncaught exception
     halfway through a run. *)
  (try ignore (Par.env_domains ()) with Invalid_argument msg ->
    prerr_endline ("hnlpu: " ^ msg);
    exit 2);
  match jobs with None -> () | Some j -> Par.set_default_domains j

(* --- tables ----------------------------------------------------------- *)

let tables_cmd =
  let which =
    Arg.(
      value & pos 0 (some string) None
      & info [] ~docv:"NAME"
          ~doc:
            "Which artifact to print: figure2, figure12, figure13, figure14, \
             table1..table5. Prints everything when omitted.")
  in
  let run jobs which =
    set_jobs jobs;
    match which with
    | None -> print_string (Experiments.render_all ())
    | Some name ->
      let pick =
        match String.lowercase_ascii name with
        | "figure2" | "fig2" -> Some (Experiments.figure2 ())
        | "figure12" | "fig12" -> Some (Experiments.figure12 ())
        | "figure13" | "fig13" -> Some (Experiments.figure13 ())
        | "figure14" | "fig14" -> Some (Experiments.figure14 ())
        | "table1" -> Some (Experiments.table1 ())
        | "table2" -> Some (Experiments.table2 ())
        | "table3" -> Some (Experiments.table3 ())
        | "table4" -> Some (Experiments.table4 ())
        | "table5" -> Some (Experiments.table5 ())
        | _ -> None
      in
      (match pick with
      | Some t -> Table.print t
      | None ->
        Printf.eprintf "unknown artifact %S\n" name;
        exit 1)
  in
  Cmd.v
    (Cmd.info "tables" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ jobs_arg $ which)

(* --- perf ------------------------------------------------------------- *)

let context_arg =
  Arg.(
    value & opt int 2048
    & info [ "context"; "c" ] ~docv:"TOKENS" ~doc:"Context length in tokens.")

let metrics_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Also write the run's metrics registry as JSON to $(docv).")

let perf_cmd =
  let stages_flag =
    Arg.(value & flag & info [ "stages" ] ~doc:"Also print the Figure 11 six-stage split.")
  in
  let run context stages metrics_out =
    let b = Perf.token_breakdown config ~context in
    let f = Perf.fractions b in
    Printf.printf "HNLPU on %s, context %d:\n" config.Config.name context;
    Printf.printf "  token latency     %s\n" (Units.seconds (Perf.total_s b));
    Printf.printf "  pipeline slots    %d\n" (Perf.pipeline_slots config);
    Printf.printf "  throughput        %s tokens/s\n"
      (Units.group_thousands
         (int_of_float (Perf.throughput_tokens_per_s config ~context)));
    let line name v frac =
      Printf.printf "  %-12s %10s  %s\n" name (Units.seconds v) (Units.percent frac)
    in
    line "CXL comm" b.Perf.comm_s f.Perf.comm_s;
    line "projection" b.Perf.projection_s f.Perf.projection_s;
    line "non-linear" b.Perf.nonlinear_s f.Perf.nonlinear_s;
    line "attention" b.Perf.attention_s f.Perf.attention_s;
    line "stall" b.Perf.stall_s f.Perf.stall_s;
    if stages then begin
      print_newline ();
      let t = Table.create ~headers:[ "Pipeline stage (Figure 11)"; "Latency" ] in
      List.iter
        (fun (name, d) -> Table.add_row t [ name; Units.seconds d ])
        (Perf.stage_times_s config ~context);
      Table.print t
    end;
    match metrics_out with
    | None -> ()
    | Some path ->
      let m = Obs.Metrics.create () in
      let set = Obs.Metrics.set m in
      set "perf/context" (float_of_int context);
      set "perf/token_latency_s" (Perf.total_s b);
      set "perf/pipeline_slots" (float_of_int (Perf.pipeline_slots config));
      set "perf/throughput_tokens_per_s" (Perf.throughput_tokens_per_s config ~context);
      set "perf/comm_s" b.Perf.comm_s;
      set "perf/projection_s" b.Perf.projection_s;
      set "perf/nonlinear_s" b.Perf.nonlinear_s;
      set "perf/attention_s" b.Perf.attention_s;
      set "perf/stall_s" b.Perf.stall_s;
      List.iter
        (fun (name, d) -> set (Printf.sprintf "perf/stage_s/%s" name) d)
        (Perf.stage_times_s config ~context);
      write_file path (Obs.Metrics.to_json m);
      Printf.printf "metrics written to %s\n" path
  in
  Cmd.v
    (Cmd.info "perf" ~doc:"Throughput/latency/breakdown at a context length")
    Term.(const run $ context_arg $ stages_flag $ metrics_arg)

(* --- tco ---------------------------------------------------------------- *)

let tco_cmd =
  let run () =
    Table.print ~title:"3-Year TCO (Table 3)" (Experiments.table3 ());
    print_newline ();
    let lo, hi = Tco.tco_dynamic_ratio Tco.High in
    Printf.printf "High-volume TCO advantage (annual updates): %.1fx - %.1fx\n" lo hi;
    Printf.printf "High-volume carbon advantage: %.0fx\n" (Tco.carbon_ratio Tco.High)
  in
  Cmd.v (Cmd.info "tco" ~doc:"Total cost of ownership scenarios") Term.(const run $ const ())

(* --- nre ---------------------------------------------------------------- *)

let nre_cmd =
  let params =
    Arg.(
      value & opt (some float) None
      & info [ "params"; "p" ] ~docv:"N" ~doc:"Model parameter count (e.g. 120e9).")
  in
  let bits =
    Arg.(
      value & opt float 4.0
      & info [ "bits"; "b" ] ~docv:"BITS" ~doc:"Native bits per parameter.")
  in
  let strawman =
    Arg.(value & flag & info [ "strawman" ] ~doc:"Show the cell-embedding straw-man instead.")
  in
  let run params bits strawman =
    if strawman then begin
      let s = Strawman.estimate config in
      Printf.printf "Straw-man (cell-embedding) hardwiring of %s:\n" config.Config.name;
      Printf.printf "  CMAC area        %s mm2\n"
        (Units.group_thousands (int_of_float s.Strawman.area_mm2));
      Printf.printf "  chips            %d\n" s.Strawman.chips;
      Printf.printf "  photomask bill   %s\n" (Units.dollars s.Strawman.mask_cost_usd)
    end
    else begin
      match params with
      | None -> Table.print ~title:"Table 4: NRE on various models" (Experiments.table4 ())
      | Some p ->
        let model =
          {
            config with
            Config.name = "custom";
            bits_per_param = bits;
            total_params_override = Some p;
          }
        in
        let r = Model_nre.row model in
        Printf.printf "%s params at %.1f b/param: %.1f chips, mask NRE %s\n"
          (Units.si p) bits r.Model_nre.chips (Units.dollars r.Model_nre.nre_usd)
    end
  in
  Cmd.v
    (Cmd.info "nre" ~doc:"Sea-of-Neurons mask NRE for a model footprint")
    Term.(const run $ params $ bits $ strawman)

(* --- simulate -------------------------------------------------------------- *)

let simulate_cmd =
  let n = Arg.(value & opt int 200 & info [ "requests"; "n" ] ~doc:"Number of requests.") in
  let rate =
    Arg.(value & opt float 1000.0 & info [ "rate" ] ~doc:"Arrival rate (requests/s).")
  in
  let prefill = Arg.(value & opt int 128 & info [ "prefill" ] ~doc:"Mean prompt tokens.") in
  let decode = Arg.(value & opt int 128 & info [ "decode" ] ~doc:"Mean decode tokens.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let run n rate prefill decode seed context metrics_out =
    let rng = Rng.create seed in
    let reqs =
      Scheduler.workload rng ~n ~rate_per_s:rate ~mean_prefill:prefill ~mean_decode:decode
    in
    let obs =
      match metrics_out with None -> None | Some _ -> Some (Obs.Sink.create ())
    in
    let r = Scheduler.simulate ~context ?obs config reqs in
    Printf.printf "Continuous batching on %d slots (%d requests):\n"
      (Perf.pipeline_slots config) n;
    Printf.printf "  makespan          %s\n" (Units.seconds r.Scheduler.makespan_s);
    Printf.printf "  tokens processed  %s (%s decode)\n"
      (Units.group_thousands r.Scheduler.tokens_processed)
      (Units.group_thousands r.Scheduler.decode_tokens_out);
    Printf.printf "  throughput        %s tokens/s (bound %s)\n"
      (Units.group_thousands (int_of_float r.Scheduler.throughput_tokens_per_s))
      (Units.group_thousands (int_of_float (Scheduler.saturated_throughput ~context config)));
    Printf.printf "  slot occupancy    %s\n" (Units.percent r.Scheduler.mean_slot_occupancy);
    (* Streamed through the bounded-memory sketch (1/64 relative error)
       rather than materializing a TTFT array per run. *)
    let ttft = Obs.Sketch.create () in
    List.iter
      (fun c ->
        Obs.Sketch.observe ttft
          (c.Scheduler.first_token_s -. c.Scheduler.request.Scheduler.arrival_s))
      r.Scheduler.completed_requests;
    if Obs.Sketch.count ttft > 0 then begin
      Printf.printf "  TTFT p50 / p95    %s / %s\n"
        (Units.seconds (Obs.Sketch.quantile ttft 0.5))
        (Units.seconds (Obs.Sketch.quantile ttft 0.95))
    end;
    match (obs, metrics_out) with
    | Some o, Some path ->
      write_file path (Obs.Metrics.to_json (Obs.Sink.metrics o));
      Printf.printf "metrics written to %s\n" path
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Continuous-batching workload simulation")
    Term.(const run $ n $ rate $ prefill $ decode $ seed $ context_arg $ metrics_arg)

(* --- trace ---------------------------------------------------------------- *)

let trace_cmd =
  let n = Arg.(value & opt int 200 & info [ "requests"; "n" ] ~doc:"Number of requests.") in
  let rate =
    Arg.(value & opt float 1000.0 & info [ "rate" ] ~doc:"Arrival rate (requests/s).")
  in
  let prefill = Arg.(value & opt int 128 & info [ "prefill" ] ~doc:"Mean prompt tokens.") in
  let decode = Arg.(value & opt int 128 & info [ "decode" ] ~doc:"Mean decode tokens.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed.") in
  let tokens =
    Arg.(
      value & opt int 200
      & info [ "tokens" ] ~doc:"Tokens through the stage-level pipeline simulator.")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Chrome trace-event JSON output path.")
  in
  let jsonl =
    Arg.(
      value & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE" ~doc:"Also write the event stream as JSONL.")
  in
  let metrics_json =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-json" ] ~docv:"FILE" ~doc:"Write the metrics registry as JSON.")
  in
  let run n rate prefill decode seed tokens context out jsonl metrics_json =
    let obs = Obs.Sink.create () in
    (* One sink, three simulators, one simulated timeline: the serving
       scheduler, the stage-level decode pipeline, and the NoC column
       all-reduces of the MoE combine — plus the thermal operating point. *)
    let rng = Rng.create seed in
    let reqs =
      Scheduler.workload rng ~n ~rate_per_s:rate ~mean_prefill:prefill
        ~mean_decode:decode
    in
    let r = Scheduler.simulate ~context ~obs config reqs in
    let t = Trace.run ~tokens ~context ~obs config in
    let bytes = Config.q_dim config / Topology.cols * 2 in
    List.iter
      (fun col ->
        let group = Topology.col_group col in
        let plan = Schedule.all_reduce ~group ~bytes in
        let vals =
          List.map (fun c -> (c, Array.init 8 (fun i -> float_of_int (c + i)))) group
        in
        ignore (Schedule.run_all_reduce ~plan ~obs ~group vals))
      [ 0; 1; 2; 3 ];
    let th = Thermal.analyze ~config ~obs () in
    write_file out (Obs.Chrome_trace.to_json (Obs.Sink.events obs));
    (match jsonl with
    | Some path -> write_file path (Obs.Chrome_trace.to_jsonl (Obs.Sink.events obs))
    | None -> ());
    (match metrics_json with
    | Some path -> write_file path (Obs.Metrics.to_json (Obs.Sink.metrics obs))
    | None -> ());
    Printf.printf "trace written to %s (%d events, %d dropped)\n" out
      (List.length (Obs.Sink.events obs))
      (Obs.Sink.dropped obs);
    Printf.printf
      "  scheduler: %d requests, %s tokens/s, occupancy %s\n"
      (List.length r.Scheduler.completed_requests)
      (Units.group_thousands (int_of_float r.Scheduler.throughput_tokens_per_s))
      (Units.percent r.Scheduler.mean_slot_occupancy);
    Printf.printf "  pipeline:  %d tokens, measured %s tokens/s\n" tokens
      (Units.group_thousands (int_of_float t.Trace.measured_throughput_tokens_per_s));
    Printf.printf "  thermal:   junction %.1fC (%s)\n" th.Thermal.junction_temp_c
      (if th.Thermal.within_limits then "within limits" else "OVER LIMITS");
    print_newline ();
    Table.print ~title:"Metrics" (Obs.Metrics.to_table (Obs.Sink.metrics obs))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run an instrumented workload and export spans/metrics: a Chrome \
          trace-event JSON (load in Perfetto or chrome://tracing) covering \
          the scheduler, the stage-level pipeline and the NoC collectives \
          on one simulated timeline")
    Term.(
      const run $ n $ rate $ prefill $ decode $ seed $ tokens $ context_arg
      $ out $ jsonl $ metrics_json)

(* --- generate ------------------------------------------------------------- *)

let generate_cmd =
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Weight/sampling seed.") in
  let tokens = Arg.(value & opt int 24 & info [ "tokens"; "t" ] ~doc:"Tokens to generate.") in
  let temp = Arg.(value & opt float 1.0 & info [ "temperature" ] ~doc:"Sampling temperature.") in
  let run seed tokens temp =
    let rng = Rng.create seed in
    let w = Weights.random (Rng.split rng) Config.tiny in
    let t = Transformer.create w in
    let out =
      Transformer.generate rng t ~prompt:[ 1; 2; 3 ] ~max_new_tokens:tokens
        (Sampler.Temperature temp)
    in
    Printf.printf "tiny-moe (%d params), prompt [1;2;3] ->\n"
      (Weights.count_params w);
    List.iter (Printf.printf "%d ") out;
    print_newline ();
    let load = Transformer.expert_load t in
    Printf.printf "expert load: ";
    Array.iter (Printf.printf "%d ") load;
    print_newline ()
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Token generation with the tiny reference model")
    Term.(const run $ seed $ tokens $ temp)

(* --- neuron ------------------------------------------------------------------ *)

let neuron_cmd =
  let seed = Arg.(value & opt int 20260706 & info [ "seed" ] ~doc:"Weight seed.") in
  let run seed =
    let reports = Experiments.neuron_reports ~seed () in
    Table.print ~title:"Operator benchmark: 1x1024 . 1024x128 FP4"
      (Neuron_report.to_table Tech.n5 reports)
  in
  Cmd.v
    (Cmd.info "neuron" ~doc:"Run MA/CE/ME machines on the operator benchmark")
    Term.(const run $ seed)

(* --- ablate ------------------------------------------------------------------ *)

let ablate_cmd =
  let which =
    Arg.(
      value & pos 0 string "all"
      & info [] ~docv:"STUDY"
          ~doc:"interconnect | programmability | precision | slack | chunk | window | all")
  in
  let run jobs which =
    set_jobs jobs;
    let interconnect () =
      let t =
        Table.create
          ~headers:[ "Interconnect"; "GB/s"; "PHY (ns)"; "Tokens/s"; "Comm share" ]
      in
      List.iter
        (fun r ->
          Table.add_row t
            [
              r.Ablation.link_name;
              Printf.sprintf "%.0f" r.Ablation.bandwidth_gbps;
              Printf.sprintf "%.0f" r.Ablation.latency_ns;
              Units.group_thousands (int_of_float r.Ablation.throughput_tokens_per_s);
              Units.percent r.Ablation.comm_fraction;
            ])
        (Ablation.interconnect_sweep config);
      Table.print ~title:"Interconnect ablation (§7.4/§8)" t
    in
    let programmability () =
      let t =
        Table.create
          ~headers:
            [ "Variant"; "T/weight"; "Chips"; "Silicon (mm2)"; "Mask NRE";
              "Re-spin"; "Rel. throughput" ]
      in
      List.iter
        (fun r ->
          Table.add_row t
            [
              r.Ablation.variant;
              Printf.sprintf "%.1f" r.Ablation.tr_per_weight;
              string_of_int r.Ablation.chips;
              Units.group_thousands (int_of_float r.Ablation.silicon_mm2);
              Units.dollars r.Ablation.mask_nre_usd;
              Units.dollars r.Ablation.respin_usd;
              Printf.sprintf "%.2fx" r.Ablation.relative_throughput;
            ])
        (Ablation.programmability config);
      Table.print ~title:"Field- vs metal-programmable (§8)" t
    in
    let precision () =
      let t =
        Table.create
          ~headers:[ "Act bits"; "Serial planes"; "Projection us/layer"; "Tokens/s" ]
      in
      List.iter
        (fun r ->
          Table.add_row t
            [
              string_of_int r.Ablation.act_bits;
              string_of_int r.Ablation.serial_planes;
              Printf.sprintf "%.2f" r.Ablation.projection_us_per_layer;
              Units.group_thousands (int_of_float r.Ablation.throughput_tokens_per_s);
            ])
        (Ablation.precision_sweep config);
      Table.print ~title:"Activation-precision ablation" t
    in
    let slack () =
      let t = Table.create ~headers:[ "Slack"; "Routing failure rate"; "Area ratio" ] in
      List.iter
        (fun r ->
          Table.add_row t
            [
              Printf.sprintf "%.2f" r.Ablation.slack;
              Units.percent r.Ablation.failure_rate;
              Printf.sprintf "%.2fx" r.Ablation.area_ratio;
            ])
        (Ablation.slack_sweep (Rng.create 7) ());
      Table.print ~title:"POPCNT region slack (Monte-Carlo, random FP4 rows)" t
    in
    let window () =
      let t =
        Table.create
          ~headers:[ "Context"; "Full attn tok/s"; "Sliding-window tok/s"; "Speedup" ]
      in
      List.iter
        (fun r ->
          Table.add_row t
            [
              Printf.sprintf "%dK" (r.Ablation.window_context / 1024);
              Units.group_thousands (int_of_float r.Ablation.full_tokens_per_s);
              Units.group_thousands (int_of_float r.Ablation.windowed_tokens_per_s);
              Printf.sprintf "%.2fx" r.Ablation.speedup;
            ])
        (Ablation.sliding_window_sweep ());
      Table.print ~title:"Alternating 128-token sliding window (real gpt-oss)" t
    in
    let chunk () =
      let t = Table.create ~headers:[ "Prefill chunk"; "Tokens/s" ] in
      List.iter
        (fun (c, tp) ->
          Table.add_row t [ string_of_int c; Units.group_thousands (int_of_float tp) ])
        (Ablation.chunk_sweep config);
      Table.print ~title:"Prefill chunking (§5.2)" t
    in
    match String.lowercase_ascii which with
    | "interconnect" -> interconnect ()
    | "programmability" -> programmability ()
    | "precision" -> precision ()
    | "slack" -> slack ()
    | "chunk" -> chunk ()
    | "window" -> window ()
    | "all" ->
      interconnect ();
      print_newline ();
      programmability ();
      print_newline ();
      precision ();
      print_newline ();
      slack ();
      print_newline ();
      chunk ();
      print_newline ();
      window ()
    | other ->
      Printf.eprintf "unknown study %S\n" other;
      exit 1
  in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Ablation studies for the §8 design choices")
    Term.(const run $ jobs_arg $ which)

(* --- deploy ------------------------------------------------------------------- *)

let deploy_cmd =
  let updates =
    Arg.(value & opt float 1.0 & info [ "updates-per-year" ] ~doc:"Weight updates per year.")
  in
  let run updates =
    let plan = { Deployment.annual_plan with Deployment.updates_per_year = updates } in
    let bg = Deployment.blue_green plan in
    Printf.printf "Blue-green deployment over %.0f years, %.1f updates/year:\n"
      plan.Deployment.years updates;
    let lo, hi = bg.Deployment.respin_bill in
    Printf.printf "  re-spins            %d (%s ~ %s)\n" bg.Deployment.total_updates
      (Units.dollars lo) (Units.dollars hi);
    Printf.printf "  transition weeks    %.0f (fleet briefly 2x)\n"
      bg.Deployment.weeks_in_transition;
    Printf.printf "  downtime            %.0f weeks\n" bg.Deployment.downtime_weeks;
    print_newline ();
    let t =
      Table.create
        ~headers:[ "Fleet"; "TCO (3y, dyn)"; "$ / Mtoken"; "H100 $ / Mtoken" ]
    in
    List.iter
      (fun p ->
        let lo, hi = p.Deployment.usd_per_mtoken in
        let tlo, thi = p.Deployment.tco_usd in
        Table.add_row t
          [
            string_of_int p.Deployment.systems;
            Printf.sprintf "%s ~ %s" (Units.dollars tlo) (Units.dollars thi);
            Printf.sprintf "%.2f ~ %.2f" lo hi;
            Printf.sprintf "%.2f" p.Deployment.h100_usd_per_mtoken;
          ])
      (Deployment.volume_sweep [ 1; 2; 5; 10; 50; 200 ]);
    Table.print ~title:"Cost per million tokens vs fleet size (60% utilization)" t;
    (match Deployment.crossover_systems () with
    | Some n -> Printf.printf "\nPessimistic HNLPU beats the H100 cluster from %d system(s).\n" n
    | None -> print_endline "\nNo crossover within 1000 systems.")
  in
  Cmd.v
    (Cmd.info "deploy" ~doc:"Blue-green updates and volume amortization (§8)")
    Term.(const run $ updates)

(* --- signoff -------------------------------------------------------------------- *)

let signoff_cmd =
  let run () =
    print_endline "Layout characteristics (paper §7.1)";
    print_endline "===================================";
    let th = Thermal.analyze () in
    Printf.printf "Thermal: avg %.3f W/mm2, peak %.2f W/mm2 (DLC limit %.1f), \
                   junction %.1fC -> %s\n"
      th.Thermal.average_w_per_mm2 th.Thermal.peak_w_per_mm2 Thermal.dlc_limit_w_per_mm2
      th.Thermal.junction_temp_c
      (if th.Thermal.within_limits then "PASS" else "FAIL");
    let r = Routing.analyze config in
    Printf.printf "ME routing (M8-M11): %.1f%% density (<70%% required) -> %s\n"
      (r.Routing.utilization *. 100.0)
      (if r.Routing.congestion_free then "PASS" else "FAIL");
    Printf.printf "Parasitics: avg R = %.0f ohm, C = %.2f fF, wire delay %.2f ps\n"
      r.Routing.avg_resistance_ohm r.Routing.avg_capacitance_ff r.Routing.wire_delay_ps;
    Printf.printf "Yield: %.1f%% (Murphy, D0=%.2f/cm2), %d good dies/wafer, $%.0f/die\n"
      (100.0 *. Yield.murphy ~defect_density_per_cm2:0.11 ~die_area_mm2:827.08)
      0.11
      (Yield.good_dies_per_wafer Tech.n5 ~die_area_mm2:827.08)
      (Yield.cost_per_good_die Tech.n5 ~die_area_mm2:827.08);
    print_newline ();
    print_endline "Pipeline trace validation (6 x 36 stages)";
    let t = Trace.run ~tokens:1000 config in
    Printf.printf "  simulated latency %.1f us (model %.1f us)\n"
      (t.Trace.measured_latency_s *. 1e6) (t.Trace.predicted_latency_s *. 1e6);
    Printf.printf "  simulated throughput %s tokens/s (model %s)\n"
      (Units.group_thousands (int_of_float t.Trace.measured_throughput_tokens_per_s))
      (Units.group_thousands (int_of_float t.Trace.predicted_throughput_tokens_per_s));
    let b = Trace.busiest_stage t in
    Printf.printf "  bottleneck stage %s (%.2f us service, %.0f%% utilized)\n"
      b.Trace.stage_label (b.Trace.service_s *. 1e6) (b.Trace.utilization *. 100.0);
    print_newline ();
    let tr = Traffic.analyze config in
    Printf.printf
      "Fabric traffic: %.1f MB/token, %.2f TB/s of %.2f TB/s capacity (%.0f%%);\n      \  implied M/M/1 queueing factor %.2f vs calibrated %.2f -> %s\n"
      (tr.Traffic.bytes_per_token /. 1e6)
      (tr.Traffic.demand_bytes_per_s /. 1e12)
      (tr.Traffic.fabric_capacity_bytes_per_s /. 1e12)
      (100.0 *. tr.Traffic.mean_link_utilization)
      tr.Traffic.queueing_factor_mm1 Perf.link_contention_factor
      (if tr.Traffic.corroborates_calibration then "CONSISTENT" else "INCONSISTENT");
    print_newline ();
    Table.print
      ~title:
        (Printf.sprintf "Calibrated constants (%d knobs, see EXPERIMENTS.md)"
           (Calibration.count ()))
      (Calibration.to_table ())
  in
  Cmd.v
    (Cmd.info "signoff" ~doc:"Layout characteristics and pipeline validation (§7.1)")
    Term.(const run $ const ())

(* --- carbon --------------------------------------------------------------------- *)

let carbon_cmd =
  let run () =
    let s = Carbon.hnlpu_split Tco.High in
    Printf.printf "HNLPU (high volume, annual updates): %.0f t CO2e over 3 years\n"
      s.Carbon.total_t;
    Printf.printf "  embodied %.0f t + re-spins %.0f t + operational %.0f t (%.0f%%)\n"
      s.Carbon.embodied_t s.Carbon.respin_embodied_t s.Carbon.operational_t
      (100.0 *. Carbon.operational_fraction s);
    Printf.printf "  %.1f g CO2e per million tokens served\n\n"
      (Carbon.g_per_million_tokens ());
    let t = Table.create ~headers:[ "Grid kg/kWh"; "HNLPU t"; "H100 t"; "Advantage" ] in
    List.iter
      (fun (g, hn, gpu) ->
        Table.add_row t
          [
            Printf.sprintf "%.2f" g;
            Printf.sprintf "%.0f" hn;
            Printf.sprintf "%.0f" gpu;
            Printf.sprintf "%.0fx" (gpu /. hn);
          ])
      (Carbon.grid_sweep [ 0.0; 0.1; 0.2; 0.38; 0.7 ]);
    Table.print ~title:"Carbon advantage vs grid intensity" t;
    print_newline ();
    Table.print ~title:"Per-token energy decomposition (Table 2's 36 tokens/J)"
      (Energy.to_table (Energy.analyze ()));
    print_newline ();
    Table.print ~title:"TCO tornado: single-factor stress (0.5x .. 2x)"
      (Sensitivity.to_table (Sensitivity.tornado ()))
  in
  Cmd.v
    (Cmd.info "carbon" ~doc:"Carbon-footprint deep dive (Appendix B note 8)")
    Term.(const run $ const ())

(* --- export ---------------------------------------------------------------------- *)

let export_cmd =
  let dir =
    Arg.(value & opt string "results" & info [ "dir"; "o" ] ~doc:"Output directory.")
  in
  let json = Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of CSV.") in
  let run jobs dir json =
    set_jobs jobs;
    let paths =
      if json then Experiments.export_json ~dir else Experiments.export_csv ~dir
    in
    List.iter print_endline paths;
    Printf.printf "%d artifacts exported.\n" (List.length paths)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Write every table/figure as CSV or JSON")
    Term.(const run $ jobs_arg $ dir $ json)

(* --- slo ----------------------------------------------------------------------- *)

let slo_cmd =
  let ttft =
    Arg.(value & opt float 0.2 & info [ "ttft" ] ~doc:"TTFT p95 objective (s).")
  in
  let e2e =
    Arg.(value & opt float 30.0 & info [ "e2e" ] ~doc:"End-to-end p95 objective (s).")
  in
  let prefill = Arg.(value & opt int 256 & info [ "prefill" ] ~doc:"Mean prompt tokens.") in
  let decode = Arg.(value & opt int 128 & info [ "decode" ] ~doc:"Mean decode tokens.") in
  let rates =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "rates" ] ~docv:"R1,R2,..."
          ~doc:
            "Evaluate these offered rates (requests/s) across the domain \
             pool and print the sweep table instead of bisecting.")
  in
  let run jobs ttft e2e prefill decode rates =
    set_jobs jobs;
    let obj = { Slo.ttft_p95_s = ttft; e2e_p95_s = e2e } in
    match rates with
    | Some rs ->
      let t =
        Table.create
          ~headers:
            [ "Rate (req/s)"; "Tokens/s"; "TTFT p95"; "E2E p95"; "Occupancy"; "Meets" ]
      in
      List.iter
        (fun e ->
          Table.add_row t
            [
              Printf.sprintf "%.0f" e.Slo.rate_per_s;
              Units.group_thousands (int_of_float e.Slo.throughput_tokens_per_s);
              Units.seconds e.Slo.ttft_p95;
              Units.seconds e.Slo.e2e_p95;
              Units.percent e.Slo.occupancy;
              (if e.Slo.meets then "yes" else "NO");
            ])
        (Slo.sweep ~mean_prefill:prefill ~mean_decode:decode config obj ~rates:rs);
      Table.print
        ~title:
          (Printf.sprintf "SLO sweep (TTFT p95 <= %gs, E2E p95 <= %gs)" ttft e2e)
        t
    | None ->
      let rate = Slo.max_rate ~mean_prefill:prefill ~mean_decode:decode config obj in
      Printf.printf
        "Max sustainable rate under TTFT p95 <= %gs, E2E p95 <= %gs (~%d+%d tokens): \
         %.0f requests/s\n"
        ttft e2e prefill decode rate;
      let e =
        Slo.evaluate ~mean_prefill:prefill ~mean_decode:decode config obj ~rate_per_s:rate
      in
      Printf.printf "At that rate: %s tokens/s, TTFT p95 %s, E2E p95 %s, occupancy %s\n"
        (Units.group_thousands (int_of_float e.Slo.throughput_tokens_per_s))
        (Units.seconds e.Slo.ttft_p95) (Units.seconds e.Slo.e2e_p95)
        (Units.percent e.Slo.occupancy)
  in
  Cmd.v
    (Cmd.info "slo" ~doc:"Capacity under latency objectives (bisection or rate sweep)")
    Term.(const run $ jobs_arg $ ttft $ e2e $ prefill $ decode $ rates)

(* --- fleet --------------------------------------------------------------------- *)

let fleet_cmd =
  let nodes =
    Arg.(value & opt int 64 & info [ "nodes" ] ~doc:"Fleet size (HNLPU nodes).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ]
          ~doc:
            "Determinism granule: the node range splits into this many \
             shards regardless of -j (default min(8, nodes)).")
  in
  let n =
    Arg.(value & opt int 200_000 & info [ "requests"; "n" ] ~doc:"Trace length.")
  in
  let policy =
    Arg.(
      value & opt string "ll"
      & info [ "policy" ]
          ~doc:"Routing policy: rr, ll, sa, or pa (see the README).")
  in
  let process =
    Arg.(
      value & opt string "poisson"
      & info [ "process" ] ~doc:"Arrival process: poisson, diurnal, or mmpp.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ]
          ~doc:"Offered request rate (req/s; default 80% of fleet capacity).")
  in
  let prefill =
    Arg.(value & opt int 128 & info [ "prefill" ] ~doc:"Mean prompt tokens.")
  in
  let decode =
    Arg.(value & opt int 128 & info [ "decode" ] ~doc:"Mean decode tokens.")
  in
  let pareto =
    Arg.(
      value
      & opt (some float) None
      & info [ "pareto" ] ~docv:"ALPHA"
          ~doc:
            "Draw decode lengths from a Pareto tail with this shape \
             (same mean as --decode) instead of Geometric.")
  in
  let users =
    Arg.(value & opt int 10_000 & info [ "users" ] ~doc:"Distinct user ids.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Trace seed.") in
  let fail =
    Arg.(
      value
      & opt (some float) None
      & info [ "fail" ] ~docv:"FRACTION"
          ~doc:
            "Fail this fraction of nodes a quarter into the trace, \
             recovering them a quarter later.")
  in
  let sweep =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "sweep" ] ~docv:"U1,U2,..."
          ~doc:
            "Instead of one run, sweep the SLO capacity frontier: all four \
             policies at these fractions of fleet capacity.")
  in
  let run jobs nodes shards n policy process rate prefill decode pareto users
      seed fail sweep =
    set_jobs jobs;
    let die msg =
      prerr_endline ("hnlpu fleet: " ^ msg);
      exit 1
    in
    let shards = match shards with Some s -> s | None -> min 8 nodes in
    let cfg = Fleet.config_of_model ~shards ~nodes config in
    let decode_dist =
      match pareto with
      | None -> Arrivals.Geometric { mean = decode }
      | Some alpha ->
        if alpha <= 1.0 then die "--pareto ALPHA must exceed 1 (finite mean)";
        (* xmin chosen so the (uncapped) Pareto mean alpha*xmin/(alpha-1)
           equals the requested --decode mean. *)
        Arrivals.Pareto
          {
            alpha;
            xmin = float_of_int decode *. (alpha -. 1.0) /. alpha;
            cap = 100 * decode;
          }
    in
    let proc =
      (* Rates here are placeholders: [with_mean_rate] rescales the whole
         process to the offered rate below. *)
      match String.lowercase_ascii process with
      | "poisson" -> Arrivals.Poisson { rate_per_s = 1.0 }
      | "diurnal" ->
        Arrivals.Diurnal
          { mean_rate_per_s = 1.0; amplitude = 0.6; period_s = 3600.0 }
      | "mmpp" ->
        Arrivals.Mmpp { rates_per_s = [| 0.5; 2.0 |]; mean_dwell_s = 60.0 }
      | p -> die (Printf.sprintf "unknown process %S (poisson|diurnal|mmpp)" p)
    in
    let spec =
      {
        Arrivals.process = proc;
        prefill = Arrivals.Geometric { mean = prefill };
        decode = decode_dist;
        users;
      }
    in
    let capacity = Fleet.capacity_req_per_s cfg spec in
    let offered = match rate with Some r -> r | None -> 0.8 *. capacity in
    let spec = Arrivals.with_mean_rate spec offered in
    let node_events =
      match fail with
      | None -> None
      | Some fraction ->
        let quarter = float_of_int n /. offered /. 4.0 in
        Some
          (Fleet.fail_recover_schedule ~nodes ~fraction ~at_s:quarter
             ~recover_after_s:quarter)
    in
    Printf.printf
      "%d nodes (%d shards), capacity %.0f req/s at %d+%d tokens; offering \
       %.0f req/s (%.0f%%)\n"
      nodes shards capacity prefill decode offered
      (100.0 *. offered /. capacity);
    match sweep with
    | Some fractions ->
      let rates = List.map (fun u -> u *. capacity) fractions in
      let points =
        Fleet.sweep ?node_events
          ~policies:
            [
              Fleet.Round_robin;
              Fleet.Least_loaded;
              Fleet.Session_affinity;
              Fleet.Power_aware;
            ]
          ~rates ~requests:n ~seed Fleet.interactive cfg spec
      in
      let t =
        Table.create
          ~headers:
            [
              "Policy"; "Offered (req/s)"; "Capacity"; "TTFT p50"; "TTFT p99";
              "E2E p99"; "Imbalance"; "Tokens/s"; "Dropped"; "SLO";
            ]
      in
      List.iter
        (fun p ->
          Table.add_row t
            [
              Fleet.policy_name p.Fleet.fp_policy;
              Printf.sprintf "%.0f" p.Fleet.offered_req_per_s;
              Units.percent p.Fleet.utilization_of_capacity;
              Units.seconds p.Fleet.ttft_p50_s;
              Units.seconds p.Fleet.ttft_p99_s;
              Units.seconds p.Fleet.e2e_p99_s;
              Printf.sprintf "%.2fx" p.Fleet.fp_imbalance;
              Units.group_thousands
                (int_of_float p.Fleet.fp_throughput_tokens_per_s);
              string_of_int p.Fleet.fp_dropped;
              (if p.Fleet.meets_slo then "yes" else "NO");
            ])
        points;
      Table.print
        ~title:
          (Printf.sprintf
             "SLO capacity frontier (%d requests; TTFT p99 <= %gs, E2E p99 \
              <= %gs)"
             n Fleet.interactive.Fleet.max_ttft_p99_s
             Fleet.interactive.Fleet.max_e2e_p99_s)
        t
    | None ->
      let policy =
        match Fleet.policy_of_string policy with
        | Some p -> p
        | None -> die (Printf.sprintf "unknown policy %S (rr|ll|sa|pa)" policy)
      in
      let r = Fleet.run ?node_events ~policy ~requests:n ~seed cfg spec in
      Printf.printf
        "%s: %d dispatched, %d dropped, %s tokens (%s redispatched) in %s \
         simulated\n"
        (Fleet.policy_name policy) r.Fleet.dispatched r.Fleet.dropped
        (Units.group_thousands (int_of_float r.Fleet.total_tokens))
        (Units.group_thousands (int_of_float r.Fleet.redispatched_tokens))
        (Units.seconds r.Fleet.makespan_s);
      Printf.printf
        "throughput %s tokens/s; imbalance %.2fx; mean utilization %s\n"
        (Units.group_thousands (int_of_float r.Fleet.throughput_tokens_per_s))
        r.Fleet.imbalance
        (Units.percent r.Fleet.mean_utilization);
      Printf.printf "TTFT p50 %s  p99 %s; E2E p99 %s; queue wait p99 %s\n"
        (Units.seconds (Obs.Sketch.quantile r.Fleet.ttft 0.5))
        (Units.seconds (Obs.Sketch.quantile r.Fleet.ttft 0.99))
        (Units.seconds (Obs.Sketch.quantile r.Fleet.e2e 0.99))
        (Units.seconds (Obs.Sketch.quantile r.Fleet.queue_wait 0.99));
      Printf.printf "peak rack hot %d/%d (cap %d); power-cap overrides %d\n"
        r.Fleet.peak_rack_hot cfg.Fleet.rack_size cfg.Fleet.rack_power_cap
        r.Fleet.power_cap_overrides
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Fleet-scale serving simulation (thousands of nodes, streaming \
          traces, routing policies)")
    Term.(
      const run $ jobs_arg $ nodes $ shards $ n $ policy $ process $ rate
      $ prefill $ decode $ pareto $ users $ seed $ fail $ sweep)

(* --- equivalence ----------------------------------------------------------------- *)

let equivalence_cmd =
  let run () =
    Table.print
      ~title:"How many H100s does one HNLPU replace? (by GPU batching regime)"
      (Scaling.to_table (Scaling.sweep ()));
    let p = Scaling.paper_equivalence in
    Printf.printf
      "\nPaper's TCO normalization (1K/1K concurrency 50): %.0f GPUs, %s of \
       hardware, %.0fx the power.\n"
      p.Scaling.gpus_needed
      (Units.dollars p.Scaling.cluster_price_usd)
      p.Scaling.power_ratio
  in
  Cmd.v
    (Cmd.info "equivalence" ~doc:"GPU-cluster equivalence sweep (§2.1, App. B)")
    Term.(const run $ const ())

(* --- compile ---------------------------------------------------------------------- *)

let compile_cmd =
  let inf = Arg.(value & opt int 256 & info [ "in" ] ~doc:"Input features.") in
  let outf = Arg.(value & opt int 32 & info [ "out" ] ~doc:"Output neurons.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Weight seed.") in
  let show_tcl = Arg.(value & flag & info [ "tcl" ] ~doc:"Print the routing script.") in
  let run inf outf seed show_tcl =
    let g = Gemv.random (Rng.create seed) ~in_features:inf ~out_features:outf ~act_bits:8 in
    let n = Hn_compiler.compile g in
    print_string (Hn_compiler.report n);
    Printf.printf "LVS: %s; DRC: %d violations\n"
      (if Hn_compiler.lvs n g then "clean" else "MISMATCH")
      (List.length (Hn_compiler.drc n));
    if show_tcl then print_string (Hn_compiler.to_tcl n)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Run the Hardwired-Neuron compiler on a random bank")
    Term.(const run $ inf $ outf $ seed $ show_tcl)

(* --- check ----------------------------------------------------------------------- *)

let check_cmd =
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON diagnostics.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Also print INFO diagnostics.")
  in
  let fixture =
    Arg.(
      value & opt (some string) None
      & info [ "fixture" ] ~docv:"RULE"
          ~doc:
            "Check the seeded-broken fixture for $(docv) (e.g. ME-TRACK) \
             instead of the reference design; exits nonzero when the rule \
             fires, as it must.")
  in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Run every seeded-violation fixture and verify each rule catches \
             its own violation.")
  in
  let list_rules =
    Arg.(value & flag & info [ "rules" ] ~doc:"List the stable rule IDs and exit.")
  in
  let bundle =
    Arg.(
      value & opt (some string) None
      & info [ "bundle" ] ~docv:"DIR"
          ~doc:
            "Check the user design bundle at $(docv) (manifest, \
             netlists/*.tcl, plans/*.plan, optional schematics and \
             stage_map) instead of the built-in reference.")
  in
  let export_bundle =
    Arg.(
      value & opt (some string) None
      & info [ "export-bundle" ] ~docv:"DIR"
          ~doc:
            "Instead of checking, write the selected design (reference, or \
             a --fixture) as a bundle under $(docv) — a starting template \
             for user bundles and the round-trip smoke test CI runs.")
  in
  let static =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Static-only pre-admission mode: skip the NOC-EXEC value \
             execution and decide from the static passes alone (links, \
             ports, bytes, deadlock, def-use, buffer liveness, determinism \
             lint, budgets).")
  in
  let run json verbose fixture self_test list_rules bundle export_bundle static =
    if verbose then Logs.set_level (Some Logs.Info);
    if list_rules then List.iter print_endline Signoff.rules
    else if self_test then begin
      let failures =
        List.filter
          (fun rule ->
            let ds = Signoff.check (Signoff.fixture rule) in
            let caught =
              Diagnostic.has_rule
                ~min_severity:(Signoff.expected_severity rule)
                rule ds
            in
            Printf.printf "%-12s %s\n" rule (if caught then "caught" else "MISSED");
            not caught)
          Signoff.rules
      in
      if failures <> [] then begin
        Printf.eprintf "self-test: %d rule(s) missed their seeded violation\n"
          (List.length failures);
        exit 1
      end
    end
    else begin
      let design =
        match (bundle, fixture) with
        | Some _, Some _ ->
          Printf.eprintf "--bundle and --fixture are mutually exclusive\n";
          exit 3
        | Some dir, None ->
          (try Bundle.load dir
           with Failure msg ->
             Printf.eprintf "%s\n" msg;
             exit 3)
        | None, Some rule ->
          (try Signoff.fixture rule
           with Invalid_argument msg ->
             Printf.eprintf "%s (try --rules)\n" msg;
             exit 3)
        | None, None -> Signoff.reference ()
      in
      match export_bundle with
      | Some dir ->
        let paths =
          try Bundle.export ~dir design
          with Sys_error msg | Failure msg ->
            Printf.eprintf "%s\n" msg;
            exit 3
        in
        Printf.printf "%d bundle file(s) written under %s\n" (List.length paths) dir
      | None ->
        let ds = Signoff.check ~dynamic:(not static) design in
        if json then print_string (Diagnostic.to_json ds)
        else print_string (Diagnostic.report ~show_info:verbose ds);
        exit (Diagnostic.exit_code ds)
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Whole-design static signoff: netlist DRC/LVS, NoC schedule \
          execution/makespan cross-checks, static dataflow analyses \
          (deadlock, def-use, buffer liveness, determinism lint), thermal \
          operating point and buffer/budget linting with severity-based \
          exit codes — on the reference design or a user --bundle")
    Term.(
      const run $ json $ verbose $ fixture $ self_test $ list_rules $ bundle
      $ export_bundle $ static)

(* --- lint ------------------------------------------------------------------------ *)

let lint_cmd =
  let module Lint = Hnlpu_lint.Lint in
  let module Baseline = Hnlpu_lint.Baseline in
  let module Lint_config = Hnlpu_lint.Lint_config in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON findings.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Also print INFO findings (including baselined ones).")
  in
  let dirs =
    Arg.(
      value & opt_all string []
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Scan .cmt files under $(docv) (repeatable).  Default: the \
             library build tree (_build/default/lib), i.e. the whole lib/ \
             source tree as dune compiled it.")
  in
  let baseline_path =
    Arg.(
      value & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline of accepted findings (default: lint.baseline when \
             present).  Matched findings downgrade to INFO with their \
             recorded reason; stale entries surface as LINT-BASELINE \
             warnings.")
  in
  let list_rules =
    Arg.(value & flag & info [ "rules" ] ~doc:"List the rule families and exit.")
  in
  let self_test =
    Arg.(
      value & flag
      & info [ "self-test" ]
          ~doc:
            "Lint the seeded-broken fixtures and verify every rule family \
             catches its own planted bug (and that the clean fixture stays \
             clean).")
  in
  let update_baseline =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Rewrite the baseline file from the Error findings of this run \
             (reasons are stubbed as TODO and must be justified by hand).")
  in
  let run json verbose dirs baseline_path list_rules self_test update_baseline =
    if list_rules then
      List.iter
        (fun r -> Printf.printf "%-12s %s\n" r (Lint_config.describe r))
        Lint_config.rules
    else if self_test then begin
      let dirs = if dirs = [] then Lint.default_fixture_dirs else dirs in
      match Lint.self_test ~dirs () with
      | exception Failure msg ->
        prerr_endline ("hnlpu lint: " ^ msg);
        exit 3
      | caught, clean, ds ->
        List.iter
          (fun (rule, hit) ->
            Printf.printf "%-12s %s\n" rule (if hit then "caught" else "MISSED"))
          caught;
        Printf.printf "%-12s %s\n" "CLEAN" (if clean then "caught" else "MISSED");
        let missed = List.filter (fun (_, hit) -> not hit) caught in
        if missed <> [] || not clean then begin
          if verbose then print_string (Diagnostic.report ds);
          Printf.eprintf
            "lint self-test: %d rule families missed their fixture%s\n"
            (List.length missed)
            (if clean then "" else " (and the clean fixture is dirty)");
          exit 1
        end
    end
    else begin
      let dirs = if dirs = [] then Lint.default_scan_dirs else dirs in
      let baseline_file, baseline =
        match baseline_path with
        | Some path ->
          if Sys.file_exists path then (path, Some (Baseline.load path))
          else if update_baseline then (path, None)
          else begin
            Printf.eprintf "hnlpu lint: baseline %s not found\n" path;
            exit 3
          end
        | None ->
          if Sys.file_exists "lint.baseline" then
            ("lint.baseline", Some (Baseline.load "lint.baseline"))
          else ("lint.baseline", None)
      in
      if update_baseline then begin
        match Lint.run ~dirs () with
        | exception Failure msg ->
          prerr_endline ("hnlpu lint: " ^ msg);
          exit 3
        | ds ->
          let entries = Baseline.of_errors ds in
          Baseline.save baseline_file entries;
          Printf.printf
            "%d entr%s written to %s — replace every TODO reason with a \
             real justification before committing\n"
            (List.length entries)
            (if List.length entries = 1 then "y" else "ies")
            baseline_file
      end
      else
        match Lint.run_with_baseline ?baseline ~dirs () with
        | exception Failure msg ->
          prerr_endline ("hnlpu lint: " ^ msg);
          exit 3
        | ds ->
          if json then print_string (Diagnostic.to_json ds)
          else print_string (Diagnostic.report ~show_info:verbose ds);
          if Diagnostic.count Diagnostic.Error ds > 0 then exit 2
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Source-level static analysis over the compiler's typedtree \
          (.cmt files): hot-path allocation (ALLOC-HOT), nondeterminism \
          sources (DET-SRC), mutable state escaping into parallel tasks \
          (PAR-ESCAPE) and swallowed exceptions (EXN-SWALLOW), gated by a \
          committed baseline.  Exits 2 on unbaselined Error findings.")
    Term.(
      const run $ json $ verbose $ dirs $ baseline_path $ list_rules
      $ self_test $ update_baseline)

(* --- speculate ------------------------------------------------------------------- *)

let speculate_cmd =
  let lookahead = Arg.(value & opt int 4 & info [ "lookahead"; "k" ] ~doc:"Draft length.") in
  let acceptance =
    Arg.(value & opt float 0.7 & info [ "acceptance"; "a" ] ~doc:"Assumed acceptance rate.")
  in
  let run lookahead acceptance =
    (* Functional demonstration on the tiny models. *)
    let target = Transformer.create (Weights.random (Rng.create 1) Config.tiny) in
    let draft = Transformer.create (Weights.random (Rng.create 2) Config.tiny_dense) in
    let out, stats =
      Speculative.generate ~target ~draft ~prompt:[ 1; 2; 3 ] ~max_new_tokens:24
        ~lookahead ()
    in
    Printf.printf "tiny demo: %d tokens in %d target passes (%.2f tokens/pass, draft acceptance %s)\n"
      (List.length out) stats.Speculative.target_passes stats.Speculative.tokens_per_pass
      (Units.percent stats.Speculative.acceptance_rate);
    print_newline ();
    let t =
      Table.create ~headers:[ "Lookahead"; "E[tokens/pass]"; "Tokens/s"; "Speedup" ]
    in
    List.iter
      (fun r ->
        Table.add_row t
          [
            string_of_int r.Ablation.lookahead;
            Printf.sprintf "%.2f" r.Ablation.expected_tokens_per_pass;
            Units.group_thousands (int_of_float r.Ablation.spec_tokens_per_s);
            Printf.sprintf "%.2fx" r.Ablation.spec_speedup;
          ])
      (Ablation.speculative_sweep ~acceptance config);
    Table.print
      ~title:
        (Printf.sprintf "Speculative decode on HNLPU (acceptance %.0f%%)"
           (acceptance *. 100.0))
      t
  in
  Cmd.v
    (Cmd.info "speculate" ~doc:"Speculative decoding: demo + throughput projection")
    Term.(const run $ lookahead $ acceptance)

let main =
  Cmd.group
    (Cmd.info "hnlpu" ~version:"1.0.0"
       ~doc:"Hardwired-Neuron LPU (ASPLOS '26) reproduction toolkit")
    [
      tables_cmd; perf_cmd; tco_cmd; nre_cmd; simulate_cmd; generate_cmd;
      neuron_cmd; ablate_cmd; deploy_cmd; signoff_cmd; carbon_cmd; export_cmd;
      slo_cmd; fleet_cmd; equivalence_cmd; compile_cmd; speculate_cmd;
      check_cmd; trace_cmd; lint_cmd;
    ]

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some Logs.Warning);
  exit (Cmd.eval main)
