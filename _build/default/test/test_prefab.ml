(* Tests for the Sea-of-Neurons prefab planner (§8 "Enhanced Flexibility")
   and the per-token energy decomposition behind Table 2's 36 tokens/J. *)

open Hnlpu
open Hnlpu_litho

(* --- Sea-of-Neurons planning --------------------------------------------- *)

let test_reference_model_fits_exactly () =
  let p = Sea_of_neurons.plan Config.gpt_oss_120b in
  Alcotest.(check int) "gpt-oss lands on 16 chips" 16 p.Sea_of_neurons.chips_needed;
  Alcotest.(check bool) "fits" true p.Sea_of_neurons.fits_reference_16;
  (* Port slack 1.25 -> ~80% utilization on matched shapes. *)
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f" p.Sea_of_neurons.avg_port_utilization)
    true
    (Approx.within_pct 2.0 ~expected:0.8 ~actual:p.Sea_of_neurons.avg_port_utilization)

let test_20b_fits_prefab () =
  (* §8 future work 1: hyper-parameter updates on the same prefab — the
     20B sibling shares the geometry, so it tiles cleanly onto a few
     chips. *)
  let p = Sea_of_neurons.plan Config.gpt_oss_20b in
  Alcotest.(check bool)
    (Printf.sprintf "chips %d small" p.Sea_of_neurons.chips_needed)
    true
    (p.Sea_of_neurons.chips_needed <= 4);
  Alcotest.(check bool) "penalty near 1" true
    (Sea_of_neurons.utilization_penalty Config.gpt_oss_20b < 1.2)

let test_mismatched_shapes_pay_fragmentation () =
  let narrow =
    {
      Config.gpt_oss_20b with
      Config.name = "narrow";
      hidden = 1024;
      expert_hidden = 1024;
      q_heads = 16;
      kv_heads = 8;
    }
  in
  let penalty = Sea_of_neurons.utilization_penalty narrow in
  Alcotest.(check bool)
    (Printf.sprintf "penalty %.2f > 2" penalty)
    true (penalty > 2.0);
  let p = Sea_of_neurons.plan narrow in
  Alcotest.(check bool) "port utilization poor" true
    (p.Sea_of_neurons.avg_port_utilization < 0.4)

let test_wide_fan_in_chains_tiles () =
  (* Wo's fan-in (4096) exceeds the 3600-port tile: chained. *)
  let p = Sea_of_neurons.plan Config.gpt_oss_120b in
  let wo =
    List.find (fun d -> d.Sea_of_neurons.proj_name = "Wo") p.Sea_of_neurons.demands
  in
  Alcotest.(check int) "two tiles per Wo neuron" 2 wo.Sea_of_neurons.tiles_per_neuron

let test_plan_rejects_external () =
  Alcotest.(check bool) "footprint-only rejected" true
    (try
       ignore (Sea_of_neurons.plan Config.kimi_k2);
       false
     with Invalid_argument _ -> true)

(* --- Energy decomposition ---------------------------------------------------- *)

let energy = Energy.analyze ()

let test_energy_totals () =
  (* Table 2: 36 tokens/J at 2K context (reciprocal: ~27.6 mJ/token). *)
  Alcotest.(check bool)
    (Printf.sprintf "%.1f tokens/J" energy.Energy.tokens_per_joule)
    true
    (Approx.within_pct 2.0 ~expected:36.2 ~actual:energy.Energy.tokens_per_joule);
  Alcotest.(check bool)
    (Printf.sprintf "advantage %.0fx" energy.Energy.advantage)
    true
    (Approx.within_pct 2.0 ~expected:1047.0 ~actual:energy.Energy.advantage)

let test_energy_shares_sum () =
  let sum = List.fold_left (fun a r -> a +. r.Energy.share) 0.0 energy.Energy.rows in
  Alcotest.(check bool) "shares sum to 1" true (Float.abs (sum -. 1.0) < 1e-9)

let test_energy_no_weight_movement () =
  (* The architectural point: the HN array (compute over hardwired
     weights) costs a few mJ — there is no tens-of-mJ DRAM-weight-read
     line item, which is where the H100's 28.9 J/token goes. *)
  let hn = List.find (fun r -> r.Energy.component = "HN Array") energy.Energy.rows in
  Alcotest.(check bool) "HN compute is mJ-scale" true (hn.Energy.energy_mj < 10.0);
  Alcotest.(check bool) "total is 1000x under H100" true
    (energy.Energy.total_mj_per_token *. 500.0 < energy.Energy.h100_mj_per_token)

let test_energy_table_renders () =
  let s = Table.render (Energy.to_table energy) in
  Alcotest.(check bool) "renders" true
    (Thelp.contains s "HN Array" && Thelp.contains s "H100 (measured)")

let () =
  Alcotest.run "hnlpu_prefab"
    [
      ( "sea-of-neurons",
        [
          Alcotest.test_case "reference fits 16" `Quick test_reference_model_fits_exactly;
          Alcotest.test_case "20B fits" `Quick test_20b_fits_prefab;
          Alcotest.test_case "fragmentation penalty" `Quick test_mismatched_shapes_pay_fragmentation;
          Alcotest.test_case "tile chaining" `Quick test_wide_fan_in_chains_tiles;
          Alcotest.test_case "rejects external" `Quick test_plan_rejects_external;
        ] );
      ( "energy",
        [
          Alcotest.test_case "36 tokens/J" `Quick test_energy_totals;
          Alcotest.test_case "shares" `Quick test_energy_shares_sum;
          Alcotest.test_case "no weight movement" `Quick test_energy_no_weight_movement;
          Alcotest.test_case "renders" `Quick test_energy_table_renders;
        ] );
    ]
