open Hnlpu_baseline
open Hnlpu_util

let config = Hnlpu_model.Config.gpt_oss_120b

(* --- H100 ------------------------------------------------------------------- *)

let test_h100_anchors () =
  Alcotest.(check (float 0.0)) "measured 45 tok/s" 45.0 H100.measured_decode_tokens_per_s;
  Alcotest.(check bool) "34.6 tok/kJ" true
    (Approx.within_pct 1.0 ~expected:34.6 ~actual:H100.tokens_per_kj);
  Alcotest.(check (float 0.01)) "$40K per GPU" 40_000.0 H100.price_per_gpu_usd

let test_h100_active_bytes () =
  (* Top-4 of 128 experts at FP4: ~2.3 GB touched per decode step. *)
  let b = H100.active_weight_bytes_per_token config in
  Alcotest.(check bool) (Printf.sprintf "%.2f GB" (b /. 1e9)) true
    (b > 2.0e9 && b < 2.6e9)

let test_h100_roofline_batching () =
  (* Batching amortizes weight reads — but MoE blunts it at small batch
     (each new token drags in mostly-new experts), so the big wins only
     appear once the expert set saturates. *)
  let t1 = H100.roofline_tokens_per_s config ~batch:1 in
  let t8 = H100.roofline_tokens_per_s config ~batch:8 in
  let t64 = H100.roofline_tokens_per_s config ~batch:64 in
  let t256 = H100.roofline_tokens_per_s config ~batch:256 in
  Alcotest.(check bool) "monotone" true (t1 < t8 && t8 < t64 && t64 < t256);
  Alcotest.(check bool) "small-batch gain is weak (MoE)" true (t8 < 2.0 *. t1);
  Alcotest.(check bool) "large-batch gain is strong" true (t256 > 5.0 *. t1)

let test_h100_roofline_concurrency50_anchor () =
  (* Appendix B note 1: ~1.08K tokens/s per GPU at concurrency 50; the
     roofline with default efficiency must land within ~35%. *)
  let t = H100.roofline_tokens_per_s config ~batch:50 in
  Alcotest.(check bool) (Printf.sprintf "roofline(50) = %.0f" t) true
    (Approx.rel_error H100.concurrent_tokens_per_s t < 0.35)

let test_h100_roofline_validation () =
  Alcotest.(check bool) "bad batch" true
    (try
       ignore (H100.roofline_tokens_per_s config ~batch:0);
       false
     with Invalid_argument _ -> true)

let test_next_gen_gap_persists () =
  (* §8: new GPU generations narrow but do not close the gap — weights
     still stream through memory every token. *)
  let ng = H100.b200_class in
  let tput = H100.next_gen_decode_tokens_per_s ng in
  Alcotest.(check bool) (Printf.sprintf "B200-class %.0f tok/s" tput) true
    (tput > H100.measured_decode_tokens_per_s && tput < 200.0);
  let hnlpu = Hnlpu_system.Perf.throughput_tokens_per_s config ~context:2048 in
  Alcotest.(check bool) "still >1000x behind" true (hnlpu /. tput > 1000.0);
  let eff = H100.next_gen_tokens_per_kj ng in
  Alcotest.(check bool) "efficiency gap >300x" true (36_226.0 /. eff > 300.0)

(* --- WSE-3 -------------------------------------------------------------------- *)

let test_wse3_anchors () =
  Alcotest.(check (float 0.0)) "2,940 tok/s" 2940.0 Wse3.measured_tokens_per_s;
  Alcotest.(check bool) "127.8 tok/kJ" true
    (Approx.within_pct 1.0 ~expected:127.8 ~actual:Wse3.tokens_per_kj);
  Alcotest.(check bool) "0.064 tok/(s.mm2)" true
    (Approx.within_pct 2.0 ~expected:0.064 ~actual:Wse3.area_efficiency)

(* --- Table 2 -------------------------------------------------------------------- *)

let systems = Compare.table2 ()

let get name = List.find (fun s -> s.Compare.sys_name = name) systems

let test_table2_hnlpu_row () =
  let hn = get "HNLPU" in
  Alcotest.(check bool) "throughput ~249,960" true
    (Approx.within_pct 1.0 ~expected:249_960.0 ~actual:hn.Compare.throughput_tokens_per_s);
  Alcotest.(check bool) "silicon ~13,232" true
    (Approx.within_pct 1.0 ~expected:13_232.0 ~actual:hn.Compare.silicon_mm2);
  Alcotest.(check bool) "power ~6.9 kW" true
    (Approx.within_pct 1.0 ~expected:6900.0 ~actual:hn.Compare.system_power_w);
  Alcotest.(check bool) "efficiency ~36,226 tok/kJ" true
    (Approx.within_pct 1.0 ~expected:36_226.0 ~actual:hn.Compare.tokens_per_kj);
  Alcotest.(check bool) "area efficiency ~18.89" true
    (Approx.within_pct 1.0 ~expected:18.89 ~actual:hn.Compare.tokens_per_s_mm2)

let test_table2_headline_ratios () =
  (* 5,555x / 85x throughput; 1,047x / 283x efficiency. *)
  let hn = get "HNLPU" and gpu = get "H100" and wse = get "WSE-3" in
  Alcotest.(check bool) "5,555x vs H100" true
    (Approx.within_pct 1.0 ~expected:5555.0
       ~actual:(Compare.throughput_ratio hn ~over:gpu));
  Alcotest.(check bool) "85x vs WSE-3" true
    (Approx.within_pct 1.0 ~expected:85.0 ~actual:(Compare.throughput_ratio hn ~over:wse));
  Alcotest.(check bool) "1,047x efficiency vs H100" true
    (Approx.within_pct 1.0 ~expected:1047.0
       ~actual:(Compare.efficiency_ratio hn ~over:gpu));
  Alcotest.(check bool) "283x efficiency vs WSE-3" true
    (Approx.within_pct 1.0 ~expected:283.0 ~actual:(Compare.efficiency_ratio hn ~over:wse))

let test_table2_area_efficiency_ordering () =
  let hn = get "HNLPU" and gpu = get "H100" and wse = get "WSE-3" in
  Alcotest.(check bool) "HNLPU wins area efficiency by orders" true
    (hn.Compare.tokens_per_s_mm2 > 100.0 *. gpu.Compare.tokens_per_s_mm2
    && hn.Compare.tokens_per_s_mm2 > 100.0 *. wse.Compare.tokens_per_s_mm2)

let test_table2_renders () =
  let s = Table.render (Compare.to_table systems) in
  Alcotest.(check bool) "headers present" true
    (Thelp.contains s "HNLPU" && Thelp.contains s "WSE-3"
    && Thelp.contains s "Throughput")

let () =
  Alcotest.run "hnlpu_baseline"
    [
      ( "h100",
        [
          Alcotest.test_case "anchors" `Quick test_h100_anchors;
          Alcotest.test_case "active bytes" `Quick test_h100_active_bytes;
          Alcotest.test_case "roofline batching" `Quick test_h100_roofline_batching;
          Alcotest.test_case "concurrency-50 anchor" `Quick test_h100_roofline_concurrency50_anchor;
          Alcotest.test_case "validation" `Quick test_h100_roofline_validation;
          Alcotest.test_case "next-gen gap persists" `Quick test_next_gen_gap_persists;
        ] );
      ("wse3", [ Alcotest.test_case "anchors" `Quick test_wse3_anchors ]);
      ( "table-2",
        [
          Alcotest.test_case "HNLPU row" `Quick test_table2_hnlpu_row;
          Alcotest.test_case "headline ratios" `Quick test_table2_headline_ratios;
          Alcotest.test_case "area efficiency" `Quick test_table2_area_efficiency_ordering;
          Alcotest.test_case "renders" `Quick test_table2_renders;
        ] );
    ]
