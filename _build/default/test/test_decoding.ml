(* Tests for beam-search decoding (Transformer.fork + Generation) and the
   hardware nonlinear units (Vex_sim). *)

open Hnlpu

let make_tiny seed = Transformer.create (Weights.random (Rng.create seed) Config.tiny)

(* --- fork ------------------------------------------------------------------ *)

let test_fork_independent () =
  let a = make_tiny 1 in
  ignore (Transformer.prefill a [ 1; 2; 3 ]);
  let b = Transformer.fork a in
  Alcotest.(check int) "same position" (Transformer.position a) (Transformer.position b);
  (* Diverge: advancing b must not disturb a. *)
  let la_before = Transformer.forward (Transformer.fork a) ~token:5 in
  ignore (Transformer.forward b ~token:9);
  ignore (Transformer.forward b ~token:9);
  let la_after = Transformer.forward (Transformer.fork a) ~token:5 in
  Alcotest.(check (float 0.0)) "a untouched" 0.0 (Vec.max_abs_diff la_before la_after)

let test_fork_equals_replay () =
  let a = make_tiny 2 in
  ignore (Transformer.prefill a [ 4; 5 ]);
  let b = Transformer.fork a in
  let via_fork = Transformer.forward b ~token:6 in
  let fresh = make_tiny 2 in
  let via_replay = Transformer.prefill fresh [ 4; 5; 6 ] in
  Alcotest.(check (float 0.0)) "fork = replay" 0.0 (Vec.max_abs_diff via_fork via_replay)

(* --- beam search -------------------------------------------------------------- *)

let test_beam1_is_greedy () =
  let a = make_tiny 3 and b = make_tiny 3 in
  let greedy_ref =
    Transformer.generate (Rng.create 0) a ~prompt:[ 7 ] ~max_new_tokens:6 Sampler.Greedy
  in
  let beam = Generation.greedy b ~prompt:[ 7 ] ~max_new_tokens:6 () in
  Alcotest.(check (list int)) "beam=1 = greedy" greedy_ref beam

let test_beam_score_at_least_greedy () =
  let t = make_tiny 4 in
  let prompt = [ 2 ] in
  let hyps = Generation.beam_search t ~prompt ~beams:4 ~max_new_tokens:5 () in
  let best = List.hd hyps in
  let t2 = make_tiny 4 in
  let greedy = Generation.greedy t2 ~prompt ~max_new_tokens:5 () in
  let score seq =
    let t3 = make_tiny 4 in
    Transformer.score t3 (prompt @ seq)
  in
  Alcotest.(check bool)
    (Printf.sprintf "beam %.4f >= greedy %.4f" best.Generation.logprob (score greedy))
    true
    (best.Generation.logprob >= score greedy -. 1e-6)

let test_beam_scores_internally_consistent () =
  (* The search's accumulated log-prob must equal Transformer.score. *)
  let t = make_tiny 5 in
  let prompt = [ 9; 1 ] in
  let hyps = Generation.beam_search t ~prompt ~beams:3 ~max_new_tokens:4 () in
  List.iter
    (fun h ->
      let t2 = make_tiny 5 in
      let s = Transformer.score t2 (prompt @ h.Generation.tokens) in
      (* score covers prompt transitions too; subtract the prompt-only part. *)
      let t3 = make_tiny 5 in
      let prompt_part = Transformer.score t3 prompt in
      Alcotest.(check bool)
        (Printf.sprintf "consistent %.4f vs %.4f" h.Generation.logprob (s -. prompt_part))
        true
        (Float.abs (h.Generation.logprob -. (s -. prompt_part)) < 1e-6))
    hyps

let test_beam_ranked_and_bounded () =
  let t = make_tiny 6 in
  let hyps = Generation.beam_search t ~prompt:[ 1 ] ~beams:4 ~max_new_tokens:4 () in
  Alcotest.(check bool) "at most beams" true (List.length hyps <= 4);
  let scores = List.map (fun h -> h.Generation.normalized) hyps in
  Alcotest.(check bool) "ranked" true
    (List.sort (fun a b -> compare b a) scores = scores)

let test_beam_stop_token () =
  let t = make_tiny 7 in
  (* Declare greedy's own first emission the stop token: the search must
     finish immediately, with the stop token as its only output. *)
  let t2 = make_tiny 7 in
  let g = Generation.greedy t2 ~prompt:[ 3 ] ~max_new_tokens:1 () in
  match g with
  | [ first ] ->
    let hyps =
      Generation.beam_search t ~prompt:[ 3 ] ~beams:1 ~max_new_tokens:8 ~stop:first ()
    in
    let best = List.hd hyps in
    Alcotest.(check bool) "finished" true best.Generation.finished;
    Alcotest.(check (list int)) "stopped on the stop token" [ first ]
      best.Generation.tokens
  | _ -> Alcotest.fail "expected one token"

let test_length_penalty_prefers_longer () =
  let t = make_tiny 8 in
  let plain = Generation.beam_search t ~prompt:[ 1 ] ~beams:3 ~max_new_tokens:5 () in
  let penalized =
    Generation.beam_search t ~prompt:[ 1 ] ~beams:3 ~max_new_tokens:5
      ~length_penalty:1.0 ()
  in
  (* With alpha > 0 the normalized score is log-prob / penalty > log-prob
     (penalty > 1 for len >= 2): normalization strictly increases scores. *)
  List.iter2
    (fun (a : Generation.hypothesis) (b : Generation.hypothesis) ->
      ignore a;
      Alcotest.(check bool) "normalized >= raw" true
        (b.Generation.normalized >= b.Generation.logprob -. 1e-9))
    plain penalized

(* --- Vex_sim hardware nonlinearities ----------------------------------------- *)

let test_exp_accuracy () =
  let e = Vex_sim.max_rel_error_exp ~lo:(-20.0) ~hi:20.0 ~samples:5000 in
  Alcotest.(check bool) (Printf.sprintf "exp err %.2e" e) true (e < 1e-3)

let test_rsqrt_accuracy () =
  let e = Vex_sim.max_rel_error_rsqrt ~lo:1e-6 ~hi:1e6 ~samples:5000 in
  Alcotest.(check bool) (Printf.sprintf "rsqrt err %.2e" e) true (e < 1e-3)

let test_exp_clamps () =
  Alcotest.(check bool) "no overflow" true (Float.is_finite (Vex_sim.exp_hw 1e9));
  Alcotest.(check bool) "no underflow to nan" true (Vex_sim.exp_hw (-1e9) >= 0.0)

let test_sigmoid_properties () =
  Alcotest.(check bool) "sigmoid(0) ~ 0.5" true
    (Float.abs (Vex_sim.sigmoid_hw 0.0 -. 0.5) < 1e-3);
  Alcotest.(check bool) "symmetric" true
    (Float.abs (Vex_sim.sigmoid_hw 2.0 +. Vex_sim.sigmoid_hw (-2.0) -. 1.0) < 1e-3)

let test_softmax_hw_close () =
  let v = [| 1.0; -2.0; 0.3; 4.0 |] in
  let hw = Vex_sim.softmax_hw v and ref_ = Vec.softmax v in
  Alcotest.(check bool) "close" true (Vec.max_abs_diff hw ref_ < 1e-3);
  Alcotest.(check bool) "normalized" true
    (Float.abs (Array.fold_left ( +. ) 0.0 hw -. 1.0) < 1e-9)

let test_rmsnorm_hw_close () =
  let rng = Rng.create 9 in
  let v = Vec.gaussian rng 64 in
  let gain = Array.make 64 1.0 in
  let hw = Vex_sim.rmsnorm_hw ~gain v and ref_ = Vec.rmsnorm ~gain v in
  let err = Vec.max_abs_diff hw ref_ /. Vec.norm2 ref_ in
  Alcotest.(check bool) (Printf.sprintf "err %.2e" err) true (err < 1e-3)

let test_transformer_layer_on_hw_nonlinear () =
  (* Evaluate a full attention-score + SwiGLU path with the hardware units
     and check it tracks the float path. *)
  let rng = Rng.create 10 in
  let gate = Vec.gaussian rng 32 and up = Vec.gaussian rng 32 in
  let hw = Vex_sim.swiglu_hw ~gate ~up and ref_ = Vec.swiglu ~gate ~up in
  Alcotest.(check bool) "swiglu tracks" true (Vec.max_abs_diff hw ref_ < 1e-3)

let prop_exp_monotone =
  QCheck.Test.make ~name:"hardware exp is monotone" ~count:200
    QCheck.(pair (float_range (-50.0) 50.0) (float_range 0.001 1.0))
    (fun (x, dx) -> Vex_sim.exp_hw (x +. dx) >= Vex_sim.exp_hw x)

let prop_rsqrt_newton_converged =
  QCheck.Test.make ~name:"rsqrt satisfies x*y^2 ~ 1" ~count:200
    QCheck.(float_range 1e-3 1e3)
    (fun x ->
      let y = Vex_sim.rsqrt_hw x in
      Float.abs ((x *. y *. y) -. 1.0) < 5e-3)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_decoding"
    [
      ( "fork",
        [
          Alcotest.test_case "independence" `Quick test_fork_independent;
          Alcotest.test_case "fork = replay" `Quick test_fork_equals_replay;
        ] );
      ( "beam-search",
        [
          Alcotest.test_case "beam 1 = greedy" `Quick test_beam1_is_greedy;
          Alcotest.test_case "beats greedy" `Quick test_beam_score_at_least_greedy;
          Alcotest.test_case "scores consistent" `Quick test_beam_scores_internally_consistent;
          Alcotest.test_case "ranked & bounded" `Quick test_beam_ranked_and_bounded;
          Alcotest.test_case "stop token" `Quick test_beam_stop_token;
          Alcotest.test_case "length penalty" `Quick test_length_penalty_prefers_longer;
        ] );
      ( "vex-sim",
        [
          Alcotest.test_case "exp accuracy" `Quick test_exp_accuracy;
          Alcotest.test_case "rsqrt accuracy" `Quick test_rsqrt_accuracy;
          Alcotest.test_case "exp clamps" `Quick test_exp_clamps;
          Alcotest.test_case "sigmoid" `Quick test_sigmoid_properties;
          Alcotest.test_case "softmax" `Quick test_softmax_hw_close;
          Alcotest.test_case "rmsnorm" `Quick test_rmsnorm_hw_close;
          Alcotest.test_case "swiglu" `Quick test_transformer_layer_on_hw_nonlinear;
        ] );
      qsuite "vex-sim properties" [ prop_exp_monotone; prop_rsqrt_newton_converged ];
    ]
