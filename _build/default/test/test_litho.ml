open Hnlpu_litho
open Hnlpu_util

(* --- Layer stack -------------------------------------------------------- *)

let stack = Layer_stack.n5_stack

let test_stack_totals () =
  (* Appendix B note 3: 12 EUV + 58 DUV layers, 130 normalized units. *)
  Alcotest.(check int) "70 reticles" 70 (Layer_stack.total_layers stack);
  Alcotest.(check int) "12 EUV" 12 (Layer_stack.euv_layers stack);
  Alcotest.(check (float 1e-9)) "130 units" 130.0 (Layer_stack.total_units stack)

let test_stack_embedding_window () =
  Alcotest.(check (float 1e-9)) "10 embedding units" 10.0
    (Layer_stack.embedding_units stack);
  Alcotest.(check bool) "7.7% of the set" true
    (Approx.within_pct 0.5 ~expected:(10.0 /. 130.0)
       ~actual:(Layer_stack.embedding_fraction stack));
  let names =
    List.filter_map
      (fun l -> if l.Layer_stack.embedding then Some l.Layer_stack.layer_name else None)
      stack
  in
  Alcotest.(check (list string)) "the 10 reticles of note 3"
    [ "VIA7"; "M8-MANDREL"; "M8-CUT"; "VIA8"; "M9-MANDREL"; "M9-CUT"; "VIA9";
      "M10"; "VIA10"; "M11" ]
    names

let test_stack_no_euv_shared () =
  (* "including all EUV photomasks" — every EUV reticle must be shared. *)
  Alcotest.(check bool) "EUV all homogeneous" true
    (Layer_stack.no_euv_in_embedding stack)

let test_stack_figure8_split () =
  (* Figure 8: homogeneous = 60 layers; top M12+ = 8 DUV. *)
  let homogeneous =
    List.length (List.filter (fun l -> not l.Layer_stack.embedding) stack)
  in
  Alcotest.(check int) "60 shared layers" 60 homogeneous;
  let top =
    List.length (List.filter (fun l -> l.Layer_stack.region = Layer_stack.Beol_top) stack)
  in
  Alcotest.(check int) "8 top reticles" 8 top

(* --- Mask cost ----------------------------------------------------------- *)

let m = 1.0e6

let test_mask_homogeneous_cost () =
  (* $13.85M – $27.69M. *)
  let o, p = Mask_cost.(range homogeneous_cost) in
  Alcotest.(check bool) "optimistic" true
    (Approx.within_pct 0.5 ~expected:(13.85 *. m) ~actual:o);
  Alcotest.(check bool) "pessimistic" true
    (Approx.within_pct 0.5 ~expected:(27.69 *. m) ~actual:p)

let test_mask_embedding_cost () =
  (* $1.15M – $2.31M per chip variant. *)
  let o, p = Mask_cost.(range embedding_cost_per_chip) in
  Alcotest.(check bool) "optimistic" true
    (Approx.within_pct 1.0 ~expected:(1.15 *. m) ~actual:o);
  Alcotest.(check bool) "pessimistic" true
    (Approx.within_pct 0.5 ~expected:(2.31 *. m) ~actual:p)

let test_mask_sea_of_neurons_16 () =
  (* §3.2: "$480M to $65M", re-spin "$37M". *)
  let initial = Mask_cost.sea_of_neurons_initial Mask_cost.Pessimistic ~chips:16 in
  Alcotest.(check bool)
    (Printf.sprintf "initial %.1fM ~ 64.6M" (initial /. m))
    true
    (Approx.within_pct 1.0 ~expected:(64.6 *. m) ~actual:initial);
  let respin = Mask_cost.sea_of_neurons_respin Mask_cost.Pessimistic ~chips:16 in
  Alcotest.(check bool) "respin ~ 36.9M" true
    (Approx.within_pct 1.0 ~expected:(36.9 *. m) ~actual:respin);
  Alcotest.(check (float 1.0)) "full custom 480M" (480.0 *. m)
    (Mask_cost.full_custom Mask_cost.Pessimistic ~chips:16)

let test_mask_savings () =
  (* §3.2: -86.5% initial, -92.3% re-spin. *)
  Alcotest.(check bool) "initial saving 86.5%" true
    (Approx.within_pct 0.5 ~expected:0.865
       ~actual:(Mask_cost.initial_saving_fraction Mask_cost.Pessimistic ~chips:16));
  Alcotest.(check bool) "respin saving 92.3%" true
    (Approx.within_pct 0.5 ~expected:0.923
       ~actual:(Mask_cost.respin_saving_fraction Mask_cost.Pessimistic ~chips:16))

let test_mask_16_chip_me_range () =
  (* Appendix B: "$18.46–$36.92M in total for 16 chips". *)
  let o, p = Mask_cost.(range (fun a -> sea_of_neurons_respin a ~chips:16)) in
  Alcotest.(check bool) "optimistic 18.46M" true
    (Approx.within_pct 1.0 ~expected:(18.46 *. m) ~actual:o);
  Alcotest.(check bool) "pessimistic 36.92M" true
    (Approx.within_pct 1.0 ~expected:(36.92 *. m) ~actual:p)

let prop_more_chips_cost_more =
  QCheck.Test.make ~name:"mask bills monotone in chip count" ~count:50
    QCheck.(int_range 1 200)
    (fun chips ->
      Mask_cost.sea_of_neurons_initial Mask_cost.Pessimistic ~chips
      < Mask_cost.sea_of_neurons_initial Mask_cost.Pessimistic ~chips:(chips + 1))

let prop_sharing_always_wins =
  QCheck.Test.make ~name:"Sea-of-Neurons never exceeds full custom (2+ chips)" ~count:50
    QCheck.(int_range 2 300)
    (fun chips ->
      Mask_cost.sea_of_neurons_initial Mask_cost.Pessimistic ~chips
      < Mask_cost.full_custom Mask_cost.Pessimistic ~chips)

(* --- Strawman ------------------------------------------------------------- *)

let test_strawman_gpt_oss () =
  (* §2.2: 176,000 mm², 200+ chips, $6B. *)
  let s = Strawman.estimate Hnlpu_model.Config.gpt_oss_120b in
  Alcotest.(check bool)
    (Printf.sprintf "area %.0f ~ 176,000 mm2" s.Strawman.area_mm2)
    true
    (Approx.within_pct 2.0 ~expected:176000.0 ~actual:s.Strawman.area_mm2);
  Alcotest.(check bool)
    (Printf.sprintf "chips %d in 200+" s.Strawman.chips)
    true
    (s.Strawman.chips >= 200 && s.Strawman.chips <= 230);
  Alcotest.(check bool)
    (Printf.sprintf "masks %.2fB ~ $6B" (s.Strawman.mask_cost_usd /. 1e9))
    true
    (s.Strawman.mask_cost_usd >= 6.0e9 && s.Strawman.mask_cost_usd <= 7.0e9)

let test_figure2_gpu_side () =
  let g = Strawman.gpu_economics () in
  (* $780 per unit. *)
  Alcotest.(check bool)
    (Printf.sprintf "GPU $%.0f/unit" g.Strawman.cost_per_unit_usd)
    true
    (Approx.within_pct 1.0 ~expected:780.0 ~actual:g.Strawman.cost_per_unit_usd)

let test_figure2_hardwired_side () =
  let h = Strawman.hardwired_economics Hnlpu_model.Config.gpt_oss_120b in
  Alcotest.(check int) "one unit" 1 h.Strawman.units;
  Alcotest.(check bool) "~$6B per unit" true
    (h.Strawman.cost_per_unit_usd > 6.0e9);
  (* Masks dominate wafers by 4+ orders of magnitude. *)
  Alcotest.(check bool) "mask-dominated" true
    (h.Strawman.mask_bill_usd > 10_000.0 *. h.Strawman.wafer_bill_usd)

(* --- Table 4 ---------------------------------------------------------------- *)

let test_per_chip_capacity () =
  (* ~3.61 GB of FP4 weights per chip. *)
  Alcotest.(check bool)
    (Printf.sprintf "%.3f GB/chip" (Model_nre.per_chip_weight_bytes /. 1e9))
    true
    (Approx.within_pct 1.0 ~expected:3.61e9 ~actual:Model_nre.per_chip_weight_bytes)

let test_table4_prices () =
  (* Table 4: Kimi-K2 $462M, DeepSeek-V3 $353M, QwQ $69M, Llama-3 $38M.
     Our footprint model must land within 2% of each. *)
  List.iter
    (fun r ->
      match r.Model_nre.paper_nre_usd with
      | None -> Alcotest.fail "table4 model without paper price"
      | Some paper ->
        Alcotest.(check bool)
          (Printf.sprintf "%s: %.1fM vs paper %.0fM" r.Model_nre.model
             (r.Model_nre.nre_usd /. 1e6) (paper /. 1e6))
          true
          (Approx.within_pct 2.0 ~expected:paper ~actual:r.Model_nre.nre_usd))
    (Model_nre.table4 ())

let test_table4_ordering () =
  match Model_nre.table4 () with
  | [ k2; ds; qwq; llama ] ->
    Alcotest.(check bool) "K2 > DS > QwQ > Llama" true
      (k2.Model_nre.nre_usd > ds.Model_nre.nre_usd
      && ds.Model_nre.nre_usd > qwq.Model_nre.nre_usd
      && qwq.Model_nre.nre_usd > llama.Model_nre.nre_usd)
  | _ -> Alcotest.fail "expected four rows"

let test_gpt_oss_chip_count () =
  (* The reference design itself must come back as 16 chips. *)
  Alcotest.(check bool) "gpt-oss ~16 chips" true
    (let c = Model_nre.chips_fractional Hnlpu_model.Config.gpt_oss_120b in
     (* [chips_fractional] uses total params (incl. embeddings); the 16-chip
        reference is defined on hardwired params, so allow the ~1% excess. *)
     c >= 16.0 && c <= 16.3)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_litho"
    [
      ( "layer-stack",
        [
          Alcotest.test_case "totals" `Quick test_stack_totals;
          Alcotest.test_case "embedding window" `Quick test_stack_embedding_window;
          Alcotest.test_case "EUV shared" `Quick test_stack_no_euv_shared;
          Alcotest.test_case "figure 8 split" `Quick test_stack_figure8_split;
        ] );
      ( "mask-cost",
        [
          Alcotest.test_case "homogeneous" `Quick test_mask_homogeneous_cost;
          Alcotest.test_case "embedding per chip" `Quick test_mask_embedding_cost;
          Alcotest.test_case "sea-of-neurons 16 chips" `Quick test_mask_sea_of_neurons_16;
          Alcotest.test_case "saving fractions" `Quick test_mask_savings;
          Alcotest.test_case "16-chip ME range" `Quick test_mask_16_chip_me_range;
        ] );
      qsuite "mask-cost properties" [ prop_more_chips_cost_more; prop_sharing_always_wins ];
      ( "strawman",
        [
          Alcotest.test_case "gpt-oss $6B" `Quick test_strawman_gpt_oss;
          Alcotest.test_case "figure 2 GPU side" `Quick test_figure2_gpu_side;
          Alcotest.test_case "figure 2 hardwired side" `Quick test_figure2_hardwired_side;
        ] );
      ( "table-4",
        [
          Alcotest.test_case "per-chip capacity" `Quick test_per_chip_capacity;
          Alcotest.test_case "paper prices within 2%" `Quick test_table4_prices;
          Alcotest.test_case "ordering" `Quick test_table4_ordering;
          Alcotest.test_case "gpt-oss 16 chips" `Quick test_gpt_oss_chip_count;
        ] );
    ]
