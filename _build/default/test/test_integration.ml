(* Cross-library integration tests: the whole stack working together, from
   bit-level HN machines up to end-to-end token generation and the full
   experiment suite. *)

open Hnlpu

let test_all_experiments_render () =
  (* Every table/figure of the paper must regenerate without error and
     produce non-trivial content. *)
  List.iter
    (fun (name, table) ->
      let s = Table.render table in
      Alcotest.(check bool) (name ^ " non-empty") true (String.length s > 100))
    (Experiments.all ())

let test_experiment_count () =
  (* 4 figures + 5 tables... Figure 2 + 12 + 13 + 14 and Tables 1-5. *)
  Alcotest.(check int) "nine experiments" 9 (List.length (Experiments.all ()))

let test_tiny_llm_on_hn_arithmetic () =
  (* Quantize a tiny transformer's FFN-down projection onto the ME machine
     and check the hardware path tracks the float path through a real
     forward pass context. *)
  let rng = Rng.create 2026 in
  let w = Weights.random ~quantize_fp4:false rng Config.tiny in
  let t = Transformer.create w in
  ignore (Transformer.prefill t [ 1; 2; 3 ]);
  let x = Transformer.hidden_state t in
  let layer = w.Weights.layers.(0) in
  let hn = Hn_linear.of_matrix layer.Weights.wq in
  let hw = Hn_linear.apply hn x in
  let float_ref = Mat.gemv (Hn_linear.dequantized hn) x in
  let scale = Vec.norm2 float_ref /. sqrt (float_of_int (Array.length float_ref)) in
  let err = Vec.max_abs_diff hw float_ref /. Float.max scale 1e-12 in
  Alcotest.(check bool) (Printf.sprintf "hw tracks float, err %.4f" err) true (err < 0.03)

let test_generation_deterministic_across_paths () =
  (* Greedy generation through the distributed dataflow must produce the
     same token sequence as the reference transformer. *)
  let w = Weights.random (Rng.create 31415) Config.tiny_hnlpu in
  let reference = Transformer.create w in
  let distributed = Dataflow.create w in
  let steps = 6 in
  let tok = ref 5 in
  let mismatches = ref 0 in
  for _ = 1 to steps do
    let lr = Transformer.forward reference ~token:!tok in
    let ld = Dataflow.forward distributed ~token:!tok in
    let a = Vec.argmax lr and b = Vec.argmax ld in
    if a <> b then incr mismatches;
    tok := a
  done;
  Alcotest.(check int) "same greedy trajectory" 0 !mismatches

let test_perf_consistency_with_table2 () =
  (* Perf and Compare must agree on the HNLPU row. *)
  let via_perf =
    Perf.throughput_tokens_per_s Config.gpt_oss_120b ~context:2048
  in
  let via_compare = (Compare.hnlpu ()).Compare.throughput_tokens_per_s in
  Alcotest.(check (float 1.0)) "consistent" via_perf via_compare

let test_tco_consistency_with_floorplan () =
  (* Table 3's power column must derive from the same floorplan as Table 1. *)
  let fp = Floorplan.table1 () in
  let expected = Floorplan.system_power_w fp *. Pricing.pue /. 1e6 in
  let col = Tco.hnlpu_column Tco.Low in
  Alcotest.(check bool) "power consistent" true
    (Approx.close ~rel:1e-9 expected col.Tco.datacenter_power_mw)

let test_nre_consistency () =
  (* Table 5's mask lines must equal the litho library's Sea-of-Neurons. *)
  let masks = Cost_breakdown.mask_nre_usd Pricing.Pessimistic in
  let direct = Mask_cost.sea_of_neurons_initial Mask_cost.Pessimistic ~chips:16 in
  Alcotest.(check (float 1.0)) "mask NRE consistent" direct masks

let test_scheduler_uses_perf_latency () =
  let bound = Scheduler.saturated_throughput Config.gpt_oss_120b in
  let perf = Perf.throughput_tokens_per_s Config.gpt_oss_120b ~context:2048 in
  Alcotest.(check (float 1.0)) "same bound" perf bound

let test_full_lifecycle () =
  (* The whole pipeline a deployment would run, in one test:
     1. "train" (synthesize) a checkpoint and serialize it;
     2. load it back and serve through the 16-chip distributed dataflow;
     3. quantize one chip's Wq slice and compile it to a metal netlist;
     4. LVS the netlist, round-trip the TCL, and check the re-spin diff of
        a weight update is non-trivial but partial. *)
  let w0 = Weights.random (Rng.create 777) Config.tiny_hnlpu in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "hnlpu_lifecycle.bin" in
  Checkpoint.save path w0;
  let w = Checkpoint.load path in
  Sys.remove path;
  (* Serve: distributed must match the monolithic reference on the loaded
     checkpoint. *)
  let reference = Transformer.create w in
  let distributed = Dataflow.create w in
  let lr = Transformer.forward reference ~token:5 in
  let ld = Dataflow.forward distributed ~token:5 in
  let scale = Vec.norm2 lr /. sqrt (float_of_int (Array.length lr)) in
  Alcotest.(check bool) "served checkpoint matches" true
    (Vec.max_abs_diff lr ld /. Float.max scale 1e-12 < 1e-4);
  (* Compile chip 0's Wq slice to metal. *)
  let slice = Mapping.extract w.Weights.layers.(0).Weights.wq
      (Mapping.wq_slice Config.tiny_hnlpu ~chip:0) in
  let quantize m =
    Gemv.make
      ~weights:
        (Array.init (Mat.cols m) (fun o ->
             let col = Mat.col m o in
             let amax = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 col in
             let s = if amax = 0.0 then 1.0 else 6.0 /. amax in
             Array.map (fun v -> Fp4.of_float (v *. s)) col))
      ~act_bits:8
  in
  let g = quantize slice in
  let netlist = Hn_compiler.compile ~slack:8.0 g in
  Alcotest.(check bool) "LVS clean" true (Hn_compiler.lvs netlist g);
  Alcotest.(check int) "DRC clean" 0 (List.length (Hn_compiler.drc netlist));
  let netlist' = Hn_compiler.of_tcl (Hn_compiler.to_tcl netlist) in
  Alcotest.(check bool) "TCL round-trip" true (netlist = netlist');
  (* Weight update: perturb the slice, recompile, diff. *)
  let updated = Mat.map (fun x -> x +. 0.08) slice in
  let g' = quantize updated in
  let netlist_green = Hn_compiler.compile ~slack:8.0 g' in
  let d = Hn_compiler.diff netlist netlist_green in
  Alcotest.(check bool)
    (Printf.sprintf "update re-routes %.0f%% of wires"
       (100.0 *. d.Hn_compiler.rerouted_fraction))
    true
    (d.Hn_compiler.rerouted > 0
    && d.Hn_compiler.rerouted < d.Hn_compiler.total_wires)

let test_end_to_end_story () =
  (* The paper's arc in one test: ME makes the area affordable, the Sea of
     Neurons makes the masks affordable, and the resulting system beats the
     GPU baseline by orders of magnitude. *)
  let reports = Experiments.neuron_reports () in
  let ce = List.nth reports 1 and me = List.nth reports 2 in
  Alcotest.(check bool) "ME densifies CE by >10x" true
    (ce.Neuron_report.area_mm2 > 10.0 *. me.Neuron_report.area_mm2);
  let full = Mask_cost.full_custom Mask_cost.Pessimistic ~chips:16 in
  let shared = Mask_cost.sea_of_neurons_initial Mask_cost.Pessimistic ~chips:16 in
  Alcotest.(check bool) "masks cut by >7x" true (full > 7.0 *. shared);
  let hn = Compare.hnlpu () and gpu = Compare.h100 () in
  Alcotest.(check bool) "throughput >1000x H100" true
    (Compare.throughput_ratio hn ~over:gpu > 1000.0)

let () =
  Alcotest.run "hnlpu_integration"
    [
      ( "experiments",
        [
          Alcotest.test_case "all render" `Quick test_all_experiments_render;
          Alcotest.test_case "count" `Quick test_experiment_count;
        ] );
      ( "cross-layer",
        [
          Alcotest.test_case "tiny LLM on HN arithmetic" `Quick test_tiny_llm_on_hn_arithmetic;
          Alcotest.test_case "generation via dataflow" `Quick test_generation_deterministic_across_paths;
          Alcotest.test_case "perf = table2" `Quick test_perf_consistency_with_table2;
          Alcotest.test_case "tco = floorplan" `Quick test_tco_consistency_with_floorplan;
          Alcotest.test_case "nre = litho" `Quick test_nre_consistency;
          Alcotest.test_case "scheduler = perf" `Quick test_scheduler_uses_perf_latency;
          Alcotest.test_case "end-to-end story" `Quick test_end_to_end_story;
          Alcotest.test_case "full lifecycle" `Quick test_full_lifecycle;
        ] );
    ]
