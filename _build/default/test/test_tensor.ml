open Hnlpu_tensor
open Hnlpu_util

let check_float = Alcotest.(check (float 1e-9))
let check_vec = Alcotest.(check (array (float 1e-9)))

(* --- Vec --------------------------------------------------------------- *)

let test_vec_arith () =
  check_vec "add" [| 4.0; 6.0 |] (Vec.add [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  check_vec "sub" [| -2.0; -2.0 |] (Vec.sub [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  check_vec "scale" [| 2.0; 4.0 |] (Vec.scale 2.0 [| 1.0; 2.0 |]);
  check_vec "mul" [| 3.0; 8.0 |] (Vec.mul [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  check_float "dot" 11.0 (Vec.dot [| 1.0; 2.0 |] [| 3.0; 4.0 |]);
  check_float "norm2" 5.0 (Vec.norm2 [| 3.0; 4.0 |])

let test_vec_add_inplace () =
  let a = [| 1.0; 2.0 |] in
  Vec.add_inplace a [| 10.0; 20.0 |];
  check_vec "inplace" [| 11.0; 22.0 |] a

let test_vec_mismatch () =
  Alcotest.(check bool) "mismatch raises" true
    (try
       ignore (Vec.add [| 1.0 |] [| 1.0; 2.0 |]);
       false
     with Invalid_argument _ -> true)

let test_softmax_properties () =
  let s = Vec.softmax [| 1.0; 2.0; 3.0 |] in
  check_float "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 s);
  Alcotest.(check bool) "monotone" true (s.(0) < s.(1) && s.(1) < s.(2))

let test_softmax_stability () =
  (* Large logits must not overflow. *)
  let s = Vec.softmax [| 1000.0; 1001.0 |] in
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite s);
  check_float "sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 s)

let test_softmax_masked () =
  let s = Vec.softmax_masked [| 0.0; 0.0; 99.0 |] ~valid:2 in
  check_float "masked out" 0.0 s.(2);
  check_float "uniform over valid" 0.5 s.(0)

let test_rmsnorm () =
  let gain = Array.make 4 1.0 in
  let x = [| 2.0; -2.0; 2.0; -2.0 |] in
  let y = Vec.rmsnorm ~gain x in
  (* rms = 2, so result is x/2 (up to eps). *)
  Alcotest.(check (array (float 1e-3))) "normalized" [| 1.0; -1.0; 1.0; -1.0 |] y

let test_rmsnorm_gain () =
  let y = Vec.rmsnorm ~gain:[| 2.0; 0.0 |] [| 3.0; 3.0 |] in
  Alcotest.(check bool) "gain applied" true (y.(1) = 0.0 && y.(0) > 1.9)

let test_silu () =
  let y = Vec.silu [| 0.0; 100.0; -100.0 |] in
  check_float "silu(0)" 0.0 y.(0);
  Alcotest.(check (float 1e-6)) "silu(+inf)~x" 100.0 y.(1);
  Alcotest.(check (float 1e-6)) "silu(-inf)~0" 0.0 y.(2)

let test_swiglu () =
  let y = Vec.swiglu ~gate:[| 0.0 |] ~up:[| 5.0 |] in
  check_float "gate 0 kills" 0.0 y.(0)

let test_argmax_topk () =
  let x = [| 1.0; 5.0; 3.0; 5.0 |] in
  Alcotest.(check int) "argmax first max" 1 (Vec.argmax x);
  let top = Vec.top_k 2 x in
  Alcotest.(check (list (pair int (float 0.0)))) "top2" [ (1, 5.0); (3, 5.0) ] top

let prop_softmax_simplex =
  QCheck.Test.make ~name:"softmax lands on the simplex" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 50) (float_range (-50.0) 50.0))
    (fun x ->
      let s = Vec.softmax x in
      Array.for_all (fun p -> p >= 0.0 && p <= 1.0) s
      && Float.abs (Array.fold_left ( +. ) 0.0 s -. 1.0) < 1e-9)

let prop_rmsnorm_scale_invariant =
  QCheck.Test.make ~name:"rmsnorm invariant to positive scaling" ~count:100
    QCheck.(array_of_size (Gen.int_range 2 20) (float_range 0.1 10.0))
    (fun x ->
      let gain = Array.make (Array.length x) 1.0 in
      let a = Vec.rmsnorm ~gain x in
      let b = Vec.rmsnorm ~gain (Vec.scale 7.0 x) in
      Vec.max_abs_diff a b < 1e-3)

(* --- Mat --------------------------------------------------------------- *)

let test_mat_gemv_manual () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |]; [| 5.0; 6.0 |] |] in
  (* x . m with x of length 3 *)
  check_vec "gemv" [| 19.0; 24.0 |] (Mat.gemv m [| 1.0; 1.0; 3.0 |]);
  check_vec "gemv_t" [| 5.0; 11.0; 17.0 |] (Mat.gemv_t m [| 1.0; 2.0 |])

let test_mat_transpose () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let mt = Mat.transpose m in
  check_float "transposed" 3.0 (Mat.get mt 0 1);
  check_float "roundtrip" 0.0 (Mat.max_abs_diff m (Mat.transpose mt))

let test_mat_slices () =
  let m = Mat.init ~rows:4 ~cols:6 (fun r c -> float_of_int ((r * 10) + c)) in
  let s = Mat.sub_cols m ~lo:2 ~len:2 in
  Alcotest.(check int) "cols" 2 (Mat.cols s);
  check_float "content" 13.0 (Mat.get s 1 1);
  let r = Mat.sub_rows m ~lo:1 ~len:2 in
  check_float "row slice" 10.0 (Mat.get r 0 0)

let test_mat_row_col () =
  let m = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_vec "row" [| 3.0; 4.0 |] (Mat.row m 1);
  check_vec "col" [| 2.0; 4.0 |] (Mat.col m 1)

let test_mat_validation () =
  Alcotest.(check bool) "ragged raises" true
    (try
       ignore (Mat.of_arrays [| [| 1.0 |]; [| 1.0; 2.0 |] |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "gemv mismatch raises" true
    (try
       ignore (Mat.gemv (Mat.create ~rows:2 ~cols:2) [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let prop_gemv_linear =
  QCheck.Test.make ~name:"gemv is linear" ~count:100
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let m = Mat.gaussian rng ~rows:7 ~cols:5 in
      let x = Vec.gaussian rng 7 and y = Vec.gaussian rng 7 in
      let lhs = Mat.gemv m (Vec.add x y) in
      let rhs = Vec.add (Mat.gemv m x) (Mat.gemv m y) in
      Vec.max_abs_diff lhs rhs < 1e-9)

let prop_gemv_split_cols =
  (* The §5 mapping relies on column-splitting a weight matrix across chips
     and concatenating results. *)
  QCheck.Test.make ~name:"column-split gemv = whole gemv" ~count:100
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let m = Mat.gaussian rng ~rows:8 ~cols:12 in
      let x = Vec.gaussian rng 8 in
      let whole = Mat.gemv m x in
      let parts =
        List.concat_map
          (fun lo -> Array.to_list (Mat.gemv (Mat.sub_cols m ~lo ~len:4) x))
          [ 0; 4; 8 ]
      in
      Vec.max_abs_diff whole (Array.of_list parts) < 1e-9)

let prop_gemv_split_rows =
  (* Row-splitting with partial-sum all-reduce, as for Wo. *)
  QCheck.Test.make ~name:"row-split partial sums = whole gemv" ~count:100
    QCheck.(int_range 0 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let m = Mat.gaussian rng ~rows:12 ~cols:6 in
      let x = Vec.gaussian rng 12 in
      let whole = Mat.gemv m x in
      let partial lo =
        Mat.gemv (Mat.sub_rows m ~lo ~len:4) (Array.sub x lo 4)
      in
      let sum = Vec.add (partial 0) (Vec.add (partial 4) (partial 8)) in
      Vec.max_abs_diff whole sum < 1e-9)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_tensor"
    [
      ( "vec",
        [
          Alcotest.test_case "arithmetic" `Quick test_vec_arith;
          Alcotest.test_case "add_inplace" `Quick test_vec_add_inplace;
          Alcotest.test_case "length mismatch" `Quick test_vec_mismatch;
          Alcotest.test_case "softmax properties" `Quick test_softmax_properties;
          Alcotest.test_case "softmax stability" `Quick test_softmax_stability;
          Alcotest.test_case "softmax masked" `Quick test_softmax_masked;
          Alcotest.test_case "rmsnorm" `Quick test_rmsnorm;
          Alcotest.test_case "rmsnorm gain" `Quick test_rmsnorm_gain;
          Alcotest.test_case "silu" `Quick test_silu;
          Alcotest.test_case "swiglu" `Quick test_swiglu;
          Alcotest.test_case "argmax/topk" `Quick test_argmax_topk;
        ] );
      qsuite "vec properties" [ prop_softmax_simplex; prop_rmsnorm_scale_invariant ];
      ( "mat",
        [
          Alcotest.test_case "gemv manual" `Quick test_mat_gemv_manual;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "slices" `Quick test_mat_slices;
          Alcotest.test_case "row/col" `Quick test_mat_row_col;
          Alcotest.test_case "validation" `Quick test_mat_validation;
        ] );
      qsuite "mat properties"
        [ prop_gemv_linear; prop_gemv_split_cols; prop_gemv_split_rows ];
    ]
