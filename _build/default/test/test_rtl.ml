(* Tests for the cycle-accurate ME RTL simulator and the TCO tornado
   sensitivity analysis. *)

open Hnlpu

(* --- Me_rtl ----------------------------------------------------------------- *)

let small seed =
  let rng = Rng.create seed in
  let g = Gemv.random rng ~in_features:40 ~out_features:5 ~act_bits:8 in
  let x = Gemv.random_activations rng g in
  (g, x)

let test_rtl_final_matches_reference () =
  let g, x = small 1 in
  let m = Me_rtl.make ~slack:8.0 g in
  let _, out = Me_rtl.run m x in
  Alcotest.(check (array int)) "RTL = reference" (Gemv.reference g x) out

let test_rtl_cycle_count () =
  let g, _ = small 2 in
  let m = Me_rtl.make ~slack:8.0 g in
  Alcotest.(check int) "bits + 3" 11 (Me_rtl.total_cycles m);
  let trace, _ = Me_rtl.run m (Array.make 40 1) in
  Alcotest.(check int) "one state per cycle" 11 (List.length trace)

let test_rtl_pipeline_fill () =
  let g, x = small 3 in
  let m = Me_rtl.make ~slack:8.0 g in
  let trace, _ = Me_rtl.run m x in
  (* No plane folds into the accumulator before cycle 3. *)
  List.iter
    (fun s ->
      if s.Me_rtl.cycle < 3 then
        Alcotest.(check int)
          (Printf.sprintf "cycle %d empty" s.Me_rtl.cycle)
          0 s.Me_rtl.planes_folded)
    trace

let test_rtl_prefix_invariant () =
  (* At every cycle the accumulators hold exactly the partial dot product
     over the folded planes. *)
  let g, x = small 4 in
  let m = Me_rtl.make ~slack:8.0 g in
  let trace, _ = Me_rtl.run m x in
  List.iter
    (fun s ->
      let expect = Me_rtl.partial_reference g x ~planes:s.Me_rtl.planes_folded in
      Alcotest.(check (array int))
        (Printf.sprintf "cycle %d prefix" s.Me_rtl.cycle)
        expect s.Me_rtl.accumulators)
    trace

let test_rtl_last_plane_is_negative () =
  (* The sign plane folds last: for all-negative activations the partial
     sums overshoot and the final fold corrects — folded < bits partials
     differ in sign from the final for x = -1 and positive weights. *)
  let open Hnlpu_fp4 in
  let weights = [| Array.make 8 (Fp4.of_float 1.0) |] in
  let g = Gemv.make ~weights ~act_bits:8 in
  let x = Array.make 8 (-1) in
  let before = Me_rtl.partial_reference g x ~planes:7 in
  let after = Me_rtl.partial_reference g x ~planes:8 in
  Alcotest.(check bool) "positive before sign plane" true (before.(0) > 0);
  (* 8 inputs x weight 1.0 x (-1) = -8 -> -16 half-units. *)
  Alcotest.(check int) "exact after sign plane" (-16) after.(0)

let prop_rtl_equals_functional =
  QCheck.Test.make ~name:"RTL trace ends where the functional machine ends" ~count:30
    QCheck.(pair (int_range 2 10) (int_range 0 100000))
    (fun (bits, seed) ->
      let rng = Rng.create seed in
      let g = Gemv.random rng ~in_features:24 ~out_features:3 ~act_bits:bits in
      let x = Gemv.random_activations rng g in
      let _, rtl = Me_rtl.run (Me_rtl.make ~slack:16.0 g) x in
      let fn, _ = Metal_embedding.run (Metal_embedding.make ~slack:16.0 g) x in
      rtl = fn)

(* --- Sensitivity -------------------------------------------------------------- *)

let test_sensitivity_baseline () =
  let a = Sensitivity.advantage Sensitivity.baseline in
  (* Midpoint of the 41.7-80.4 band. *)
  Alcotest.(check bool) (Printf.sprintf "baseline %.1fx" a) true (a > 45.0 && a < 70.0)

let test_sensitivity_directions () =
  let adv p = Sensitivity.advantage p in
  let b = Sensitivity.baseline in
  Alcotest.(check bool) "cheaper GPUs shrink the advantage" true
    (adv { b with Sensitivity.gpu_price_scale = 0.5 } < adv b);
  Alcotest.(check bool) "pricier electricity widens it" true
    (adv { b with Sensitivity.electricity_scale = 2.0 } > adv b);
  Alcotest.(check bool) "pricier masks shrink it" true
    (adv { b with Sensitivity.mask_scale = 2.0 } < adv b)

let test_tornado_ordering () =
  let bars = Sensitivity.tornado () in
  Alcotest.(check int) "seven factors" 7 (List.length bars);
  (* Sorted by swing, descending. *)
  let swings = List.map (fun b -> b.Sensitivity.swing) bars in
  Alcotest.(check bool) "sorted" true (List.sort (fun a b -> compare b a) swings = swings);
  (* The verdict must survive every single-factor 2x stress. *)
  List.iter
    (fun b ->
      Alcotest.(check bool)
        (Printf.sprintf "%s keeps advantage > 10x" b.Sensitivity.factor)
        true
        (b.Sensitivity.low_advantage > 10.0 && b.Sensitivity.high_advantage > 10.0))
    bars

let test_tornado_dominant_factors () =
  (* Both TCOs are CapEx-dominated, so the two big levers are the mask-set
     price (most of HNLPU's bill) and the GPU node price (most of the
     cluster's); the energy-side factors barely move the verdict. *)
  let bars = Sensitivity.tornado () in
  let swing name =
    (List.find (fun b -> b.Sensitivity.factor = name) bars).Sensitivity.swing
  in
  Alcotest.(check bool) "masks and GPUs are the top two" true
    (match bars with
    | a :: b :: _ ->
      List.sort compare [ a.Sensitivity.factor; b.Sensitivity.factor ]
      = [ "GPU node price"; "mask-set price" ]
    | _ -> false);
  Alcotest.(check bool) "electricity is a minor factor" true
    (swing "electricity price" < 0.3 *. swing "mask-set price")

let test_tornado_table () =
  let s = Table.render (Sensitivity.to_table (Sensitivity.tornado ())) in
  Alcotest.(check bool) "renders" true (Thelp.contains s "electricity price")

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_rtl"
    [
      ( "me-rtl",
        [
          Alcotest.test_case "final = reference" `Quick test_rtl_final_matches_reference;
          Alcotest.test_case "cycle count" `Quick test_rtl_cycle_count;
          Alcotest.test_case "pipeline fill" `Quick test_rtl_pipeline_fill;
          Alcotest.test_case "prefix invariant" `Quick test_rtl_prefix_invariant;
          Alcotest.test_case "sign plane last" `Quick test_rtl_last_plane_is_negative;
        ] );
      qsuite "rtl properties" [ prop_rtl_equals_functional ];
      ( "sensitivity",
        [
          Alcotest.test_case "baseline" `Quick test_sensitivity_baseline;
          Alcotest.test_case "directions" `Quick test_sensitivity_directions;
          Alcotest.test_case "tornado ordering" `Quick test_tornado_ordering;
          Alcotest.test_case "dominant factors" `Quick test_tornado_dominant_factors;
          Alcotest.test_case "table" `Quick test_tornado_table;
        ] );
    ]
