(* Tests for the second wave of system substrates: explicit collective
   schedules, 2.5D packaging / Known-Good-Module, quantization fidelity,
   and SLO capacity planning. *)

open Hnlpu
open Hnlpu_noc

let config = Config.gpt_oss_120b

(* --- Schedules ------------------------------------------------------------ *)

let col0 = Topology.col_group 0

let test_schedule_all_reduce_shape () =
  let plan = Schedule.all_reduce ~group:col0 ~bytes:1024 in
  Alcotest.(check int) "two steps" 2 (List.length plan);
  Alcotest.(check int) "six transfers" 6 (Schedule.transfer_count plan);
  Alcotest.(check int) "valid on fabric" 0 (List.length (Schedule.validate plan))

let test_schedule_all_gather_ring () =
  let plan = Schedule.all_gather ~group:(Topology.row_group 1) ~shard_bytes:256 in
  Alcotest.(check int) "k-1 steps" 3 (List.length plan);
  Alcotest.(check int) "k transfers per step" 4 (List.length (List.hd plan));
  Alcotest.(check int) "valid" 0 (List.length (Schedule.validate plan))

let test_schedule_all_chip () =
  let plan = Schedule.all_chip_all_reduce ~bytes:5760 in
  Alcotest.(check int) "four steps" 4 (List.length plan);
  (* 4 cols x 3 + 4 cols x 3 + rows likewise = 48 transfers. *)
  Alcotest.(check int) "48 transfers" 48 (Schedule.transfer_count plan);
  Alcotest.(check int) "valid" 0 (List.length (Schedule.validate plan))

let test_schedule_rejects_nonlinks () =
  (* A hand-built diagonal transfer must be flagged. *)
  let bogus = [ [ { Schedule.src = 0; dst = 5; bytes = 8 } ] ] in
  Alcotest.(check bool) "diagonal flagged" true
    (List.exists
       (function Schedule.Not_a_link _ -> true | _ -> false)
       (Schedule.validate bogus))

let test_schedule_makespan_model () =
  let plan = Schedule.all_reduce ~group:col0 ~bytes:2048 in
  let expected = 2.0 *. Link.transfer_time_s Link.cxl3 ~bytes:2048 in
  Alcotest.(check bool) "2 steps of one transfer time" true
    (Approx.close ~rel:1e-9 expected (Schedule.makespan plan))

let test_schedule_executes_correctly () =
  let rng = Rng.create 3 in
  let vals = List.map (fun c -> (c, Vec.gaussian rng 5)) col0 in
  let via_plan = Schedule.run_all_reduce ~group:col0 vals in
  let via_math = Collective.all_reduce vals in
  List.iter2
    (fun (c1, a) (c2, b) ->
      Alcotest.(check int) "chip order" c1 c2;
      Alcotest.(check bool) "same sum" true (Vec.max_abs_diff a b < 1e-9))
    via_plan via_math

let prop_schedules_valid =
  QCheck.Test.make ~name:"all generated schedules are fabric-valid" ~count:50
    QCheck.(pair (int_range 0 3) (int_range 1 10000))
    (fun (g, bytes) ->
      let col = Topology.col_group g and row = Topology.row_group g in
      List.for_all
        (fun plan -> Schedule.validate plan = [])
        [
          Schedule.all_reduce ~group:col ~bytes;
          Schedule.all_gather ~group:row ~shard_bytes:bytes;
          Schedule.reduce ~root:(List.hd col) ~group:col ~bytes;
          Schedule.broadcast ~root:(List.hd row) ~group:row ~bytes;
          Schedule.scatter ~root:(List.hd row) ~group:row ~shard_bytes:bytes;
          Schedule.all_chip_all_reduce ~bytes;
        ])

let prop_schedule_allreduce_correct =
  QCheck.Test.make ~name:"scheduled all-reduce sums correctly" ~count:50
    QCheck.(pair (int_range 0 3) (int_range 0 100000))
    (fun (col, seed) ->
      let rng = Rng.create seed in
      let group = Topology.col_group col in
      let vals = List.map (fun c -> (c, Vec.gaussian rng 4)) group in
      let a = Schedule.run_all_reduce ~group vals in
      let b = Collective.all_reduce vals in
      List.for_all2 (fun (_, x) (_, y) -> Vec.max_abs_diff x y < 1e-9) a b)

(* --- Package / KGM ------------------------------------------------------------ *)

let test_package_interposer_sane () =
  let u = Package.interposer_utilization Package.hnlpu in
  Alcotest.(check bool) (Printf.sprintf "utilization %.2f" u) true (u > 0.5 && u < 1.0)

let test_kgm_decouples_yield () =
  (* §4.2: "decoupling the final system's assembly yield from the
     challenging manufacturing yield of the large monolithic dies". *)
  let die_yield = 0.43 in
  let kgm = Package.system_yield_kgm Package.hnlpu ~modules:16 in
  let untested = Package.system_yield_untested Package.hnlpu ~die_yield ~modules:16 in
  Alcotest.(check bool) (Printf.sprintf "KGM %.3f healthy" kgm) true (kgm > 0.95);
  Alcotest.(check bool) (Printf.sprintf "untested %.2e hopeless" untested) true
    (untested < 1e-5);
  Alcotest.(check bool) "advantage enormous" true
    (Package.kgm_advantage Package.hnlpu ~die_yield ~modules:16 > 1e4)

let test_module_cost_matches_table5 () =
  (* Die 629 + HBM 1920 + assembly 111 = 2660 (lo); 629+3840+185 (hi). *)
  let lo = Package.module_cost_usd ~bound:`Lo Package.hnlpu in
  let hi = Package.module_cost_usd ~bound:`Hi Package.hnlpu in
  Alcotest.(check bool) (Printf.sprintf "lo %.0f" lo) true
    (Approx.within_pct 1.0 ~expected:2660.0 ~actual:lo);
  Alcotest.(check bool) (Printf.sprintf "hi %.0f" hi) true
    (Approx.within_pct 1.0 ~expected:4654.0 ~actual:hi)

(* --- Quantization fidelity ------------------------------------------------------ *)

let test_quant_eval_fidelity () =
  let r = Quant_eval.evaluate ~sequences:6 ~length:10 (Rng.create 99) Config.tiny in
  Alcotest.(check bool)
    (Printf.sprintf "ppl ratio %.3f within 25%%" r.Quant_eval.ppl_ratio)
    true
    (r.Quant_eval.ppl_ratio > 0.8 && r.Quant_eval.ppl_ratio < 1.25);
  Alcotest.(check bool)
    (Printf.sprintf "hidden cosine %.3f" r.Quant_eval.hidden_cosine)
    true
    (r.Quant_eval.hidden_cosine > 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "top-1 agreement %.2f" r.Quant_eval.top1_agreement)
    true
    (r.Quant_eval.top1_agreement > 0.5)

let test_quant_eval_counts () =
  let r = Quant_eval.evaluate ~sequences:3 ~length:5 (Rng.create 100) Config.tiny in
  Alcotest.(check int) "scored = seqs x (len-1)" 12 r.Quant_eval.tokens_scored

let test_weights_quantize_idempotent () =
  let w = Weights.random ~quantize_fp4:false (Rng.create 101) Config.tiny in
  let q1 = Weights.quantize w in
  let q2 = Weights.quantize q1 in
  let diff =
    Mat.max_abs_diff q1.Weights.layers.(0).Weights.wq q2.Weights.layers.(0).Weights.wq
  in
  Alcotest.(check (float 1e-12)) "second pass is identity" 0.0 diff

(* --- SLO ------------------------------------------------------------------------- *)

let test_slo_low_rate_meets () =
  let e = Slo.evaluate config Slo.interactive ~rate_per_s:5.0 in
  Alcotest.(check bool)
    (Printf.sprintf "TTFT p95 %.3fs" e.Slo.ttft_p95)
    true e.Slo.meets

let test_slo_insane_rate_fails () =
  let e =
    Slo.evaluate ~requests:300 config
      { Slo.ttft_p95_s = 0.005; e2e_p95_s = 0.05 }
      ~rate_per_s:5000.0
  in
  Alcotest.(check bool) "unmeetable objectives fail" false e.Slo.meets

let test_slo_max_rate_bracketing () =
  let obj = Slo.interactive in
  let r = Slo.max_rate ~requests:120 config obj in
  Alcotest.(check bool) (Printf.sprintf "max rate %.0f/s positive" r) true (r > 10.0);
  (* The found rate must actually meet; 4x it must not (or be past the
     throughput ceiling anyway). *)
  let at = Slo.evaluate ~requests:120 config obj ~rate_per_s:r in
  Alcotest.(check bool) "feasible at the answer" true at.Slo.meets

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_system2"
    [
      ( "schedules",
        [
          Alcotest.test_case "all-reduce shape" `Quick test_schedule_all_reduce_shape;
          Alcotest.test_case "all-gather ring" `Quick test_schedule_all_gather_ring;
          Alcotest.test_case "all-chip" `Quick test_schedule_all_chip;
          Alcotest.test_case "rejects non-links" `Quick test_schedule_rejects_nonlinks;
          Alcotest.test_case "makespan" `Quick test_schedule_makespan_model;
          Alcotest.test_case "executes correctly" `Quick test_schedule_executes_correctly;
        ] );
      qsuite "schedule properties" [ prop_schedules_valid; prop_schedule_allreduce_correct ];
      ( "package",
        [
          Alcotest.test_case "interposer" `Quick test_package_interposer_sane;
          Alcotest.test_case "KGM decouples yield" `Quick test_kgm_decouples_yield;
          Alcotest.test_case "module cost" `Quick test_module_cost_matches_table5;
        ] );
      ( "quantization",
        [
          Alcotest.test_case "fidelity" `Slow test_quant_eval_fidelity;
          Alcotest.test_case "counts" `Quick test_quant_eval_counts;
          Alcotest.test_case "idempotent" `Quick test_weights_quantize_idempotent;
        ] );
      ( "slo",
        [
          Alcotest.test_case "low rate meets" `Quick test_slo_low_rate_meets;
          Alcotest.test_case "insane rate fails" `Quick test_slo_insane_rate_fails;
          Alcotest.test_case "max rate" `Slow test_slo_max_rate_bracketing;
        ] );
    ]
