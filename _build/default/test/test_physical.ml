(* Tests for the §7.1 layout-characteristics models (thermal, ME-layer
   routing), the pipeline trace simulator, the carbon deep dive and
   scheduler fault injection. *)

open Hnlpu

let config = Config.gpt_oss_120b

(* --- Thermal (§7.1) ------------------------------------------------------- *)

let thermal = Thermal.analyze ()

let test_thermal_average () =
  (* Paper: avg 0.3 W/mm² (308 W / 827 mm² = 0.37 computed). *)
  Alcotest.(check bool)
    (Printf.sprintf "avg %.3f W/mm2" thermal.Thermal.average_w_per_mm2)
    true
    (thermal.Thermal.average_w_per_mm2 > 0.25 && thermal.Thermal.average_w_per_mm2 < 0.45)

let test_thermal_peak () =
  (* Paper: peak 1.4 W/mm². *)
  Alcotest.(check bool)
    (Printf.sprintf "peak %.2f W/mm2" thermal.Thermal.peak_w_per_mm2)
    true
    (thermal.Thermal.peak_w_per_mm2 > 1.0 && thermal.Thermal.peak_w_per_mm2 < 1.6)

let test_thermal_within_limits () =
  Alcotest.(check bool) "within 2.5D cooling limits" true thermal.Thermal.within_limits;
  Alcotest.(check bool)
    (Printf.sprintf "junction %.1fC < 105C" thermal.Thermal.junction_temp_c)
    true
    (thermal.Thermal.junction_temp_c < Thermal.max_junction_c)

let test_thermal_hn_array_is_cool () =
  (* §7.1: "The power density of the HN array is significantly lower than
     other components" — the MoE sparsity effect. *)
  let hn =
    List.find
      (fun d -> d.Thermal.thermal_block = "HN Array")
      thermal.Thermal.densities
  in
  let hot = Thermal.hotspot thermal in
  Alcotest.(check bool) "HN array is not the hotspot" true
    (hn.Thermal.density_w_per_mm2 < 0.25 *. hot.Thermal.density_w_per_mm2)

(* --- ME-layer routing (§7.1) -------------------------------------------------- *)

let routing = Routing.analyze config

let test_routing_density () =
  (* Paper: "routing density on ME layers (M8-M11) remains below 70%". *)
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.3f < 0.70" routing.Routing.utilization)
    true routing.Routing.congestion_free

let test_routing_parasitics () =
  (* Paper: avg R = 164 ohm, C = 7.8 fF. *)
  Alcotest.(check bool)
    (Printf.sprintf "R %.0f ~ 164" routing.Routing.avg_resistance_ohm)
    true
    (Approx.within_pct 2.0 ~expected:164.0 ~actual:routing.Routing.avg_resistance_ohm);
  Alcotest.(check bool)
    (Printf.sprintf "C %.2f ~ 7.8" routing.Routing.avg_capacitance_ff)
    true
    (Approx.within_pct 2.0 ~expected:7.8 ~actual:routing.Routing.avg_capacitance_ff)

let test_routing_timing_slack () =
  (* "manageable coupling effects": wire delay is thousands of times below
     the 1 ns cycle. *)
  Alcotest.(check bool)
    (Printf.sprintf "delay %.2f ps" routing.Routing.wire_delay_ps)
    true
    (routing.Routing.wire_delay_ps < 10.0)

let test_routing_headroom () =
  (* The 70% ceiling leaves room for somewhat larger per-chip models. *)
  let max_w = Routing.max_embeddable_weights config in
  Alcotest.(check bool) "headroom above current weights" true
    (max_w > routing.Routing.wires)

(* --- Trace simulator ------------------------------------------------------------ *)

let trace = Trace.run ~tokens:1000 config

let test_trace_latency_matches_perf () =
  Alcotest.(check bool)
    (Printf.sprintf "sim %.1fus vs model %.1fus"
       (trace.Trace.measured_latency_s *. 1e6)
       (trace.Trace.predicted_latency_s *. 1e6))
    true
    (Approx.within_pct 2.0 ~expected:trace.Trace.predicted_latency_s
       ~actual:trace.Trace.measured_latency_s)

let test_trace_throughput_brackets_perf () =
  (* Discrete pipelining rounds stage capacities up, so the simulated rate
     sits at or slightly above the closed-form bound. *)
  let m = trace.Trace.measured_throughput_tokens_per_s in
  let p = trace.Trace.predicted_throughput_tokens_per_s in
  Alcotest.(check bool) (Printf.sprintf "sim %.0f vs model %.0f" m p) true
    (m >= 0.98 *. p && m <= 1.25 *. p)

let test_trace_slot_census () =
  (* ~216 slots (ceil rounding inflates modestly). *)
  Alcotest.(check bool)
    (Printf.sprintf "%d slots" trace.Trace.total_slots)
    true
    (trace.Trace.total_slots >= 216 && trace.Trace.total_slots <= 400)

let test_trace_bottleneck_is_moe_allreduce () =
  (* S6 carries the all-chip all-reduce: it must be the widest stage. *)
  let b = Trace.busiest_stage trace in
  Alcotest.(check bool) ("bottleneck " ^ b.Trace.stage_label) true
    (String.length b.Trace.stage_label >= 2
    && String.sub b.Trace.stage_label (String.length b.Trace.stage_label - 2) 2 = "S6");
  Alcotest.(check bool) "high utilization" true (b.Trace.utilization > 0.8)

let test_trace_stage_count () =
  Alcotest.(check int) "216 pipeline stages" 216 (List.length trace.Trace.stage_stats)

(* --- Carbon deep dive -------------------------------------------------------------- *)

let test_carbon_matches_table3 () =
  let s = Carbon.hnlpu_split Tco.High in
  Alcotest.(check bool) "dynamic total ~ 5,124 t" true
    (Approx.within_pct 1.0 ~expected:5124.0 ~actual:s.Carbon.total_t);
  let h = Carbon.h100_split Tco.High in
  Alcotest.(check bool) "H100 ~ 1,830,000 t" true
    (Approx.within_pct 1.0 ~expected:1.83e6 ~actual:h.Carbon.total_t)

let test_carbon_mostly_operational () =
  let s = Carbon.hnlpu_split Tco.High in
  Alcotest.(check bool) "operational dominates" true
    (Carbon.operational_fraction s > 0.85)

let test_carbon_grid_sweep () =
  let sweep = Carbon.grid_sweep [ 0.0; 0.1; 0.38; 0.7 ] in
  Alcotest.(check int) "four points" 4 (List.length sweep);
  List.iter
    (fun (_, hn, gpu) -> Alcotest.(check bool) "H100 always worse" true (gpu > hn))
    sweep;
  let adv_dirty = Carbon.advantage_at_grid ~kgco2e_per_kwh:0.38 () in
  let adv_clean = Carbon.advantage_at_grid ~kgco2e_per_kwh:0.0 () in
  Alcotest.(check bool) "paper's 357x at US grid" true
    (Approx.within_pct 1.0 ~expected:357.2 ~actual:adv_dirty);
  Alcotest.(check bool) "clean grid leaves embodied ratio ~42x" true
    (adv_clean > 30.0 && adv_clean < 60.0)

let test_carbon_per_token () =
  (* ~7 g CO2e per million tokens at 60% utilization — absurdly low next to
     GPU serving. *)
  let g = Carbon.g_per_million_tokens () in
  Alcotest.(check bool) (Printf.sprintf "%.1f g/Mtok" g) true (g > 1.0 && g < 50.0)

let test_carbon_cadence_insensitive () =
  (* Even quarterly re-spins barely move the footprint. *)
  match Carbon.update_cadence_sweep Tco.High [ 0; 2; 12 ] with
  | [ (_, none); (_, annual); (_, quarterly) ] ->
    Alcotest.(check bool) "monotone" true (none < annual && annual < quarterly);
    Alcotest.(check bool) "quarterly within 1.3x of none" true (quarterly < 1.3 *. none)
  | _ -> Alcotest.fail "expected three points"

(* --- Interconnect traffic ---------------------------------------------------------- *)

let traffic = Traffic.analyze config

let test_traffic_fabric_loaded_not_saturated () =
  let u = traffic.Traffic.mean_link_utilization in
  Alcotest.(check bool) (Printf.sprintf "utilization %.3f" u) true (u > 0.4 && u < 0.95)

let test_traffic_corroborates_calibration () =
  (* The M/M/1 queueing factor implied by measured byte traffic must agree
     with the contention factor calibrated against Figure 14 — two
     independent routes to the same constant. *)
  Alcotest.(check bool)
    (Printf.sprintf "M/M/1 factor %.2f vs calibrated %.2f"
       traffic.Traffic.queueing_factor_mm1 Perf.link_contention_factor)
    true traffic.Traffic.corroborates_calibration

let test_traffic_moe_dominates_bytes () =
  (* The hidden-width all-chip all-reduce moves the most data. *)
  let moe =
    List.find
      (fun e -> e.Traffic.collective = "MoE all-chip all-reduce")
      traffic.Traffic.entries
  in
  List.iter
    (fun e ->
      Alcotest.(check bool) ("moe >= " ^ e.Traffic.collective) true
        (moe.Traffic.link_bytes >= e.Traffic.link_bytes))
    traffic.Traffic.entries

let test_traffic_table_renders () =
  Alcotest.(check bool) "renders" true
    (Thelp.contains (Table.render (Traffic.to_table traffic)) "all-reduce")

(* --- Scheduler fault injection --------------------------------------------------------- *)

let heavy_workload seed =
  Scheduler.workload (Rng.create seed) ~n:300 ~rate_per_s:1.0e9 ~mean_prefill:100
    ~mean_decode:2

let test_faults_conserve_tokens () =
  let reqs = heavy_workload 1 in
  let r = Scheduler.simulate ~slot_failures:[ (0.01, 50); (0.05, 50) ] config reqs in
  let expected =
    List.fold_left
      (fun a q -> a + q.Scheduler.prefill_tokens + q.Scheduler.decode_tokens)
      0 reqs
  in
  Alcotest.(check int) "no token lost" expected r.Scheduler.tokens_processed;
  Alcotest.(check int) "all requests complete" 300
    (List.length r.Scheduler.completed_requests)

let test_faults_degrade_throughput () =
  let reqs = heavy_workload 2 in
  let healthy = Scheduler.simulate config reqs in
  let degraded = Scheduler.simulate ~slot_failures:[ (0.0, 108) ] config reqs in
  let ratio =
    degraded.Scheduler.throughput_tokens_per_s
    /. healthy.Scheduler.throughput_tokens_per_s
  in
  (* Half the slots -> roughly half the throughput. *)
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f ~ 0.5" ratio) true
    (ratio > 0.4 && ratio < 0.65)

let test_faults_validation () =
  Alcotest.(check bool) "negative time rejected" true
    (try
       ignore (Scheduler.simulate ~slot_failures:[ (-1.0, 1) ] config []);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "hnlpu_physical"
    [
      ( "thermal",
        [
          Alcotest.test_case "average density" `Quick test_thermal_average;
          Alcotest.test_case "peak density" `Quick test_thermal_peak;
          Alcotest.test_case "within limits" `Quick test_thermal_within_limits;
          Alcotest.test_case "HN array is cool" `Quick test_thermal_hn_array_is_cool;
        ] );
      ( "routing",
        [
          Alcotest.test_case "density < 70%" `Quick test_routing_density;
          Alcotest.test_case "parasitics 164/7.8" `Quick test_routing_parasitics;
          Alcotest.test_case "timing slack" `Quick test_routing_timing_slack;
          Alcotest.test_case "headroom" `Quick test_routing_headroom;
        ] );
      ( "trace",
        [
          Alcotest.test_case "latency = model" `Quick test_trace_latency_matches_perf;
          Alcotest.test_case "throughput brackets model" `Quick test_trace_throughput_brackets_perf;
          Alcotest.test_case "slot census" `Quick test_trace_slot_census;
          Alcotest.test_case "bottleneck S6" `Quick test_trace_bottleneck_is_moe_allreduce;
          Alcotest.test_case "stage count" `Quick test_trace_stage_count;
        ] );
      ( "carbon",
        [
          Alcotest.test_case "matches table 3" `Quick test_carbon_matches_table3;
          Alcotest.test_case "mostly operational" `Quick test_carbon_mostly_operational;
          Alcotest.test_case "grid sweep" `Quick test_carbon_grid_sweep;
          Alcotest.test_case "per-token grams" `Quick test_carbon_per_token;
          Alcotest.test_case "cadence insensitive" `Quick test_carbon_cadence_insensitive;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "loaded not saturated" `Quick test_traffic_fabric_loaded_not_saturated;
          Alcotest.test_case "corroborates calibration" `Quick test_traffic_corroborates_calibration;
          Alcotest.test_case "MoE dominates bytes" `Quick test_traffic_moe_dominates_bytes;
          Alcotest.test_case "table" `Quick test_traffic_table_renders;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "conservation under faults" `Quick test_faults_conserve_tokens;
          Alcotest.test_case "throughput degrades" `Quick test_faults_degrade_throughput;
          Alcotest.test_case "validation" `Quick test_faults_validation;
        ] );
    ]
