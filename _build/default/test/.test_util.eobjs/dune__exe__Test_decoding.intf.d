test/test_decoding.mli:
