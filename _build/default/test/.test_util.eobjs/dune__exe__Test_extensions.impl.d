test/test_extensions.ml: Ablation Alcotest Approx Array Config Deployment Float Gen Hn_linear Hnlpu List Lora Mat Perf Printf QCheck QCheck_alcotest Rng Sampler Tco Tech Transformer Vec Weights Yield
