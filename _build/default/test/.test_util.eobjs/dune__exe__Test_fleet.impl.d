test/test_fleet.ml: Alcotest Approx Config Hnlpu List Multi_node Printf Rng Scaling Scheduler Table Thelp
