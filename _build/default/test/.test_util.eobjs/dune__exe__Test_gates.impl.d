test/test_gates.ml: Alcotest Approx Array Census Hnlpu_fp4 Hnlpu_gates Hnlpu_util List Printf QCheck QCheck_alcotest Sram Tech Yield
