test/test_tco.ml: Alcotest Approx Cost_breakdown Hnlpu_tco Hnlpu_util List Pricing Printf Table Tco Thelp
