test/test_system2.ml: Alcotest Approx Array Collective Config Hnlpu Hnlpu_noc Link List Mat Package Printf QCheck QCheck_alcotest Quant_eval Rng Schedule Slo Topology Vec Weights
