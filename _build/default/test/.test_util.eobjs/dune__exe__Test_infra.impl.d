test/test_infra.ml: Alcotest Chart Filename Heap Hnlpu Hnlpu_util List QCheck QCheck_alcotest String Sys Table Thelp
