test/test_litho.ml: Alcotest Approx Hnlpu_litho Hnlpu_model Hnlpu_util Layer_stack List Mask_cost Model_nre Printf QCheck QCheck_alcotest Strawman
