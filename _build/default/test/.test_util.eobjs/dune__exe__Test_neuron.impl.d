test/test_neuron.ml: Alcotest Array Cell_embedding Fp4 Gemv Hnlpu_fp4 Hnlpu_gates Hnlpu_neuron Hnlpu_util List Mac_array Metal_embedding Printf QCheck QCheck_alcotest Report Rng Table Thelp
