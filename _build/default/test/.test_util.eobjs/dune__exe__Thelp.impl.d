test/thelp.ml: Hnlpu_util String
