test/test_edges.ml: Alcotest Bitserial Chart Csa Float Gemv Hnlpu_fp4 Hnlpu_model Hnlpu_neuron Hnlpu_noc Hnlpu_system Hnlpu_util Metal_embedding Rng Scheduler Stats String Table Thelp Topology Units
