test/test_decoding.ml: Alcotest Array Config Float Generation Hnlpu List Printf QCheck QCheck_alcotest Rng Sampler Transformer Vec Vex_sim Weights
