test/test_fp4.ml: Alcotest Array Bitserial Blockscale Bytes Csa Float Fp4 Gen Hnlpu_fp4 Hnlpu_util List Printf QCheck QCheck_alcotest Thelp
