test/test_prefab.mli:
