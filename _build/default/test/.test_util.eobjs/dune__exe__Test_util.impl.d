test/test_util.ml: Alcotest Approx Array Float Fun Hnlpu_util List Rng Stats String Table Thelp Units
