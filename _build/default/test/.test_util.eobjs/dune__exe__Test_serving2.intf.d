test/test_serving2.mli:
