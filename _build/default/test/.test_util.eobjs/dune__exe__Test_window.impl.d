test/test_window.ml: Ablation Alcotest Approx Array Config Dataflow Float Hnlpu List Perf Printf Rng Transformer Vec Weights
