test/test_system2.mli:
