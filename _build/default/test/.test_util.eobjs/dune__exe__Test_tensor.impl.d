test/test_tensor.ml: Alcotest Array Float Gen Hnlpu_tensor Hnlpu_util List Mat QCheck QCheck_alcotest Rng Vec
