test/test_serving2.ml: Ablation Alcotest Approx Array Bytes Checkpoint Config Filename Hnlpu List Printf QCheck QCheck_alcotest Rng Sampler Speculative Sys Transformer Vec Weights
