test/test_rtl.ml: Alcotest Array Fp4 Gemv Hnlpu Hnlpu_fp4 List Me_rtl Metal_embedding Printf QCheck QCheck_alcotest Rng Sensitivity Table Thelp
