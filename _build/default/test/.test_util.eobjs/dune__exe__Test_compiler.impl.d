test/test_compiler.ml: Alcotest Array Config Fp4 Gemv Hn_compiler Hnlpu Hnlpu_fp4 Hnlpu_litho Hnlpu_util List QCheck QCheck_alcotest Rng Sampler Thelp Tokenizer Transformer Weights
