test/test_system.ml: Alcotest Approx Array Dataflow Float Gen Hnlpu_model Hnlpu_noc Hnlpu_system Hnlpu_tensor Hnlpu_util List Mapping Perf Printf QCheck QCheck_alcotest Rng Scheduler
