test/test_gates.mli:
