test/test_noc.ml: Alcotest Approx Array Collective Gen Hnlpu_noc Hnlpu_tensor Hnlpu_util Link List QCheck QCheck_alcotest Topology
