test/test_fp4.mli:
