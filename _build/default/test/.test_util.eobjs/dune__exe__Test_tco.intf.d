test/test_tco.mli:
