test/test_baseline.ml: Alcotest Approx Compare H100 Hnlpu_baseline Hnlpu_model Hnlpu_system Hnlpu_util List Printf Table Thelp Wse3
