test/test_physical.ml: Alcotest Approx Carbon Config Hnlpu List Perf Printf Rng Routing Scheduler String Table Tco Thelp Thermal Trace Traffic
