test/test_chip.ml: Alcotest Approx Attention_buffer Control_unit Floorplan Hbm Hn_array Hnlpu_chip Hnlpu_model Hnlpu_util Interconnect_engine Printf Table Thelp Vex
