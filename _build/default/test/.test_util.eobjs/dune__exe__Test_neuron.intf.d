test/test_neuron.mli:
