test/test_prefab.ml: Alcotest Approx Config Energy Float Hnlpu Hnlpu_litho List Printf Sea_of_neurons Table Thelp
