(* Tests for speculative decoding (functional + throughput model) and
   checkpoint serialization. *)

open Hnlpu

let make seed config = Transformer.create (Weights.random (Rng.create seed) config)

(* --- Speculative decoding ------------------------------------------------- *)

let test_spec_matches_target_greedy () =
  (* The output must be exactly the target's greedy sequence, whatever the
     draft proposes. *)
  let target = make 40 Config.tiny in
  let draft = make 41 Config.tiny_dense in
  (* tiny_dense shares the vocab (64). *)
  let out, stats =
    Speculative.generate ~target ~draft ~prompt:[ 1; 2 ] ~max_new_tokens:10
      ~lookahead:3 ()
  in
  let reference = make 40 Config.tiny in
  let pure =
    Transformer.generate (Rng.create 0) reference ~prompt:[ 1; 2 ] ~max_new_tokens:10
      Sampler.Greedy
  in
  Alcotest.(check (list int)) "identical to target greedy" pure out;
  Alcotest.(check int) "produced all" 10 stats.Speculative.produced

let test_spec_self_draft_accepts_everything () =
  let target = make 42 Config.tiny in
  let _, stats = Speculative.self_draft ~target ~prompt:[ 5 ] ~max_new_tokens:12 ~lookahead:3 () in
  Alcotest.(check (float 1e-9)) "acceptance 1.0" 1.0 stats.Speculative.acceptance_rate;
  Alcotest.(check bool)
    (Printf.sprintf "%.1f tokens/pass = lookahead+1" stats.Speculative.tokens_per_pass)
    true
    (Approx.close ~rel:1e-9 stats.Speculative.tokens_per_pass 4.0)

let test_spec_fewer_passes_than_tokens () =
  let target = make 43 Config.tiny in
  let _, stats = Speculative.self_draft ~target ~prompt:[ 9 ] ~max_new_tokens:12 ~lookahead:2 () in
  Alcotest.(check bool)
    (Printf.sprintf "%d passes < 12 tokens" stats.Speculative.target_passes)
    true
    (stats.Speculative.target_passes * 3 <= 12)

let test_spec_stats_consistent () =
  let target = make 44 Config.tiny in
  let draft = make 45 Config.tiny_dense in
  let out, stats =
    Speculative.generate ~target ~draft ~prompt:[ 3 ] ~max_new_tokens:9 ~lookahead:4 ()
  in
  Alcotest.(check int) "emitted = produced" (List.length out) stats.Speculative.produced;
  Alcotest.(check bool) "acceptance in [0,1]" true
    (stats.Speculative.acceptance_rate >= 0.0 && stats.Speculative.acceptance_rate <= 1.0)

let test_spec_validation () =
  let target = make 46 Config.tiny in
  let draft = make 47 Config.tiny_dense in
  Alcotest.(check bool) "zero lookahead rejected" true
    (try
       ignore
         (Speculative.generate ~target ~draft ~prompt:[ 1 ] ~max_new_tokens:4
            ~lookahead:0 ());
       false
     with Invalid_argument _ -> true)

let test_spec_throughput_model () =
  let rows = Ablation.speculative_sweep Config.gpt_oss_120b in
  Alcotest.(check int) "four lookaheads" 4 (List.length rows);
  let by_k k = List.find (fun r -> r.Ablation.lookahead = k) rows in
  (* tokens/pass grows with lookahead but saturates at 1/(1-a)+1. *)
  Alcotest.(check bool) "expected tokens grow" true
    ((by_k 8).Ablation.expected_tokens_per_pass > (by_k 1).Ablation.expected_tokens_per_pass);
  (* Speculation must beat plain decode at a=0.7 (the win is bounded by
     the per-token projection/attention work the chunk still serializes). *)
  Alcotest.(check bool)
    (Printf.sprintf "k=4 speedup %.2fx" (by_k 4).Ablation.spec_speedup)
    true
    ((by_k 4).Ablation.spec_speedup > 1.3);
  Alcotest.(check bool) "all lookaheads beat plain decode" true
    (List.for_all (fun r -> r.Ablation.spec_speedup > 1.0) rows)

(* --- Checkpoint -------------------------------------------------------------- *)

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_checkpoint_roundtrip_bits () =
  let w = Weights.random (Rng.create 50) Config.tiny in
  let w' = Checkpoint.of_bytes (Checkpoint.to_bytes w) in
  let a = Transformer.create w and b = Transformer.create w' in
  let la = Transformer.prefill a [ 1; 2; 3 ] and lb = Transformer.prefill b [ 1; 2; 3 ] in
  Alcotest.(check (float 0.0)) "bit-identical logits" 0.0 (Vec.max_abs_diff la lb)

let test_checkpoint_file_roundtrip () =
  let w = Weights.random (Rng.create 51) Config.tiny_hnlpu in
  let path = tmp "hnlpu_ckpt_test.bin" in
  Checkpoint.save path w;
  let w' = Checkpoint.load path in
  Sys.remove path;
  Alcotest.(check string) "config survives" w.Weights.config.Config.name
    w'.Weights.config.Config.name;
  Alcotest.(check int) "param count survives" (Weights.count_params w)
    (Weights.count_params w')

let test_checkpoint_dense_roundtrip () =
  let w = Weights.random (Rng.create 52) Config.tiny_dense in
  let w' = Checkpoint.of_bytes (Checkpoint.to_bytes w) in
  Alcotest.(check bool) "router absent" true (w'.Weights.layers.(0).Weights.w_router = None)

let test_checkpoint_rejects_bad_magic () =
  let w = Weights.random (Rng.create 53) Config.tiny in
  let b = Checkpoint.to_bytes w in
  Bytes.set b 0 'X';
  Alcotest.(check bool) "bad magic" true
    (try
       ignore (Checkpoint.of_bytes b);
       false
     with Failure _ -> true)

let test_checkpoint_rejects_truncation () =
  let w = Weights.random (Rng.create 54) Config.tiny in
  let b = Checkpoint.to_bytes w in
  let cut = Bytes.sub b 0 (Bytes.length b - 17) in
  Alcotest.(check bool) "truncated" true
    (try
       ignore (Checkpoint.of_bytes cut);
       false
     with Failure _ -> true)

let test_checkpoint_rejects_trailing () =
  let w = Weights.random (Rng.create 55) Config.tiny in
  let b = Checkpoint.to_bytes w in
  let padded = Bytes.cat b (Bytes.make 3 '\000') in
  Alcotest.(check bool) "trailing bytes" true
    (try
       ignore (Checkpoint.of_bytes padded);
       false
     with Failure _ -> true)

let test_checkpoint_size_scales () =
  let w = Weights.random (Rng.create 56) Config.tiny in
  let sz = Checkpoint.size_bytes w in
  let params = Weights.count_params w in
  (* float64 storage: >= 8 bytes per parameter, plus bounded framing. *)
  Alcotest.(check bool) (Printf.sprintf "%d bytes for %d params" sz params) true
    (sz >= 8 * params && sz < (8 * params) + (params / 2) + 4096)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let prop_checkpoint_roundtrip =
  QCheck.Test.make ~name:"checkpoint roundtrips arbitrary tiny models" ~count:10
    QCheck.(int_range 0 100000)
    (fun seed ->
      let w = Weights.random (Rng.create seed) Config.tiny in
      let w' = Checkpoint.of_bytes (Checkpoint.to_bytes w) in
      let a = Transformer.create w and b = Transformer.create w' in
      Vec.max_abs_diff (Transformer.forward a ~token:1) (Transformer.forward b ~token:1)
      = 0.0)

let () =
  Alcotest.run "hnlpu_serving2"
    [
      ( "speculative",
        [
          Alcotest.test_case "matches target greedy" `Quick test_spec_matches_target_greedy;
          Alcotest.test_case "self-draft accepts all" `Quick test_spec_self_draft_accepts_everything;
          Alcotest.test_case "fewer passes" `Quick test_spec_fewer_passes_than_tokens;
          Alcotest.test_case "stats consistent" `Quick test_spec_stats_consistent;
          Alcotest.test_case "validation" `Quick test_spec_validation;
          Alcotest.test_case "throughput model" `Quick test_spec_throughput_model;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip bits" `Quick test_checkpoint_roundtrip_bits;
          Alcotest.test_case "file roundtrip" `Quick test_checkpoint_file_roundtrip;
          Alcotest.test_case "dense roundtrip" `Quick test_checkpoint_dense_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_checkpoint_rejects_bad_magic;
          Alcotest.test_case "truncation" `Quick test_checkpoint_rejects_truncation;
          Alcotest.test_case "trailing bytes" `Quick test_checkpoint_rejects_trailing;
          Alcotest.test_case "size" `Quick test_checkpoint_size_scales;
        ] );
      qsuite "checkpoint properties" [ prop_checkpoint_roundtrip ];
    ]
