(* Tests for sliding-window attention: functional behaviour in the
   reference transformer, equivalence through the 16-chip dataflow, and
   the performance ablation. *)

open Hnlpu

let windowed_tiny = { Config.tiny with Config.name = "tiny-sw"; sliding_window = Some 3 }

let windowed_tiny_hnlpu =
  { Config.tiny_hnlpu with Config.name = "tiny-hnlpu-sw"; sliding_window = Some 3 }

(* --- Config ------------------------------------------------------------------ *)

let test_layer_window_alternates () =
  let c = Config.gpt_oss_120b_sw in
  Alcotest.(check (option int)) "layer 0 windowed" (Some 128)
    (Config.layer_window c ~layer:0);
  Alcotest.(check (option int)) "layer 1 full" None (Config.layer_window c ~layer:1);
  Alcotest.(check (option int)) "unset config: all full" None
    (Config.layer_window Config.gpt_oss_120b ~layer:0)

let test_window_validation () =
  Alcotest.(check bool) "zero window rejected" true
    (try
       Config.validate { Config.tiny with Config.sliding_window = Some 0 };
       false
     with Invalid_argument _ -> true)

(* --- Functional behaviour ------------------------------------------------------ *)

let test_window_changes_long_context_only () =
  (* Within the window, windowed and full models agree exactly; beyond it
     they diverge (old positions are masked on even layers). *)
  let w_full = Weights.random (Rng.create 30) Config.tiny in
  let w_sw = { w_full with Weights.config = windowed_tiny } in
  let full = Transformer.create w_full and sw = Transformer.create w_sw in
  (* First 3 tokens: every layer sees <= 3 positions, identical. *)
  let short = [ 1; 2; 3 ] in
  let lf = Transformer.prefill full short and ls = Transformer.prefill sw short in
  Alcotest.(check (float 0.0)) "identical within window" 0.0 (Vec.max_abs_diff lf ls);
  (* Fourth token: the windowed even layers drop position 0. *)
  let lf4 = Transformer.forward full ~token:4 in
  let ls4 = Transformer.forward sw ~token:4 in
  Alcotest.(check bool) "diverges past the window" true
    (Vec.max_abs_diff lf4 ls4 > 1e-9)

let test_window_exact_semantics () =
  (* A windowed model's logits must equal a full model fed only the
     windowed suffix — when the model has a single windowed layer and no
     position dependence beyond attention... RoPE makes absolute positions
     matter, so instead check the internal consistency: windowed attention
     over w tokens equals full attention when context <= w at all times. *)
  let config_w = { windowed_tiny with Config.sliding_window = Some 10 } in
  let w_full = Weights.random (Rng.create 31) Config.tiny in
  let w_sw = { w_full with Weights.config = config_w } in
  let full = Transformer.create w_full and sw = Transformer.create w_sw in
  let prompt = [ 5; 6; 7; 8 ] in
  let lf = Transformer.prefill full prompt and ls = Transformer.prefill sw prompt in
  Alcotest.(check (float 0.0)) "window >= context is full attention" 0.0
    (Vec.max_abs_diff lf ls)

(* --- Dataflow equivalence -------------------------------------------------------- *)

let test_windowed_dataflow_matches_reference () =
  let w = Weights.random (Rng.create 32) windowed_tiny_hnlpu in
  let reference = Transformer.create w in
  let distributed = Dataflow.create w in
  (* Long enough that the window actually masks (window 3, 7 tokens). *)
  let toks = [ 3; 14; 15; 9; 2; 6; 5 ] in
  List.iter
    (fun tok ->
      let lr = Transformer.forward reference ~token:tok in
      let ld = Dataflow.forward distributed ~token:tok in
      let scale = Vec.norm2 lr /. sqrt (float_of_int (Array.length lr)) in
      let err = Vec.max_abs_diff lr ld /. Float.max scale 1e-12 in
      Alcotest.(check bool) (Printf.sprintf "token %d err %.2e" tok err) true
        (err < 1e-4))
    toks

(* --- Performance ------------------------------------------------------------------- *)

let test_window_speeds_up_long_context () =
  let full = Perf.token_latency_s Config.gpt_oss_120b ~context:524288 in
  let sw = Perf.token_latency_s Config.gpt_oss_120b_sw ~context:524288 in
  Alcotest.(check bool)
    (Printf.sprintf "sw %.0fus < full %.0fus" (sw *. 1e6) (full *. 1e6))
    true (sw < 0.85 *. full)

let test_window_no_effect_short_context () =
  let full = Perf.token_latency_s Config.gpt_oss_120b ~context:128 in
  let sw = Perf.token_latency_s Config.gpt_oss_120b_sw ~context:128 in
  Alcotest.(check bool) "identical at tiny context" true
    (Approx.close ~rel:1e-9 full sw)

let test_window_ablation_sweep () =
  let rows = Ablation.sliding_window_sweep () in
  Alcotest.(check int) "six contexts" 6 (List.length rows);
  let speedup c =
    (List.find (fun r -> r.Ablation.window_context = c) rows).Ablation.speedup
  in
  Alcotest.(check bool) "speedup grows with context" true
    (speedup 524288 > speedup 65536 && speedup 65536 > speedup 2048);
  Alcotest.(check bool)
    (Printf.sprintf "512K speedup %.2fx substantial" (speedup 524288))
    true
    (speedup 524288 > 1.2)

let () =
  Alcotest.run "hnlpu_window"
    [
      ( "config",
        [
          Alcotest.test_case "alternating layers" `Quick test_layer_window_alternates;
          Alcotest.test_case "validation" `Quick test_window_validation;
        ] );
      ( "functional",
        [
          Alcotest.test_case "masks only long context" `Quick test_window_changes_long_context_only;
          Alcotest.test_case "window >= context" `Quick test_window_exact_semantics;
        ] );
      ( "dataflow",
        [ Alcotest.test_case "windowed distributed = reference" `Quick
            test_windowed_dataflow_matches_reference ] );
      ( "performance",
        [
          Alcotest.test_case "long-context speedup" `Quick test_window_speeds_up_long_context;
          Alcotest.test_case "short-context no-op" `Quick test_window_no_effect_short_context;
          Alcotest.test_case "ablation sweep" `Quick test_window_ablation_sweep;
        ] );
    ]
