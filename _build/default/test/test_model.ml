open Hnlpu_model
open Hnlpu_util

(* --- Config / Params --------------------------------------------------- *)

let test_gpt_oss_param_count () =
  (* §6.2: "gpt-oss 120 B" — the architectural shapes must add up to the
     ~117B total implied by the paper's dataflow dimensions. *)
  let c = Config.gpt_oss_120b in
  Config.validate c;
  let total = Params.total c in
  Alcotest.(check bool)
    (Printf.sprintf "total %.1fB in [115B, 120B]" (total /. 1e9))
    true
    (total >= 115.0e9 && total <= 120.0e9)

let test_gpt_oss_shapes () =
  let c = Config.gpt_oss_120b in
  Alcotest.(check int) "q_dim 4096 (64 heads x 64)" 4096 (Config.q_dim c);
  Alcotest.(check int) "kv_dim 512 (8 heads x 64)" 512 (Config.kv_dim c);
  Alcotest.(check int) "GQA group of 8" 8 (Config.gqa_group c)

let test_gpt_oss_hardwired_per_chip () =
  (* 16 chips share the hardwired weights: ~7.2B parameters each. *)
  let per_chip = Params.hardwired Config.gpt_oss_120b /. 16.0 in
  Alcotest.(check bool)
    (Printf.sprintf "%.2fB per chip" (per_chip /. 1e9))
    true
    (per_chip > 7.0e9 && per_chip < 7.5e9)

let test_router_fraction () =
  (* §5.1: router weights are ~0.01% of the total, justifying replication. *)
  let f = Params.router_fraction Config.gpt_oss_120b in
  Alcotest.(check bool) (Printf.sprintf "router fraction %.5f%%" (f *. 100.0)) true
    (f > 0.5e-4 && f < 2.0e-4)

let test_gpt_oss_20b () =
  let c = Config.gpt_oss_20b in
  Config.validate c;
  let total = Params.total c in
  (* ~21B parameters. *)
  Alcotest.(check bool)
    (Printf.sprintf "total %.1fB ~ 21B" (total /. 1e9))
    true
    (total > 19.0e9 && total < 23.0e9);
  (* Same grid divisibility as the flagship: mappable onto 4x4. *)
  Hnlpu_system.Mapping.check_mappable c;
  (* Fewer layers -> smaller pipeline, lower peak batch. *)
  Alcotest.(check int) "144 slots" 144 (Hnlpu_system.Perf.pipeline_slots c)

let test_external_models () =
  List.iter Config.validate Config.table4_models;
  Alcotest.(check (float 0.0)) "K2 params" 1.0e12 (Params.total Config.kimi_k2);
  Alcotest.(check bool) "QwQ bytes = 64GB" true
    (Approx.close ~rel:1e-9 (Params.bytes Config.qwq_32b) 64e9)

let test_config_validation () =
  let bad = { Config.tiny with Config.q_heads = 3; kv_heads = 2 } in
  Alcotest.(check bool) "uneven GQA rejected" true
    (try
       Config.validate bad;
       false
     with Invalid_argument _ -> true);
  let bad2 = { Config.tiny with Config.experts_per_token = 99 } in
  Alcotest.(check bool) "top-k > experts rejected" true
    (try
       Config.validate bad2;
       false
     with Invalid_argument _ -> true)

(* --- Weights ------------------------------------------------------------ *)

let test_weights_count_matches_params () =
  let w = Weights.random (Rng.create 1) Config.tiny in
  Alcotest.(check int) "instantiated = counted"
    (int_of_float (Params.total Config.tiny))
    (Weights.count_params w)

let test_weights_quantized_are_fp4 () =
  (* After the MXFP4 round-trip every weight must be scale * E2M1 value. *)
  let w = Weights.random ~quantize_fp4:true (Rng.create 2) Config.tiny in
  let l = w.Weights.layers.(0) in
  let row = Hnlpu_tensor.Mat.row l.Weights.wq 0 in
  let blocks = Hnlpu_fp4.Blockscale.quantize row in
  let roundtrip = Hnlpu_fp4.Blockscale.dequantize blocks in
  Alcotest.(check bool) "idempotent quantization" true
    (Hnlpu_tensor.Vec.max_abs_diff row roundtrip < 1e-12)

let test_weights_rejects_external () =
  Alcotest.(check bool) "external model has no tensors" true
    (try
       ignore (Weights.random (Rng.create 0) Config.kimi_k2);
       false
     with Invalid_argument _ -> true)

(* --- Rope ---------------------------------------------------------------- *)

let test_rope_pos0_identity () =
  let v = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (array (float 1e-12))) "pos 0 is identity" v
    (Rope.apply ~head_dim:4 ~pos:0 v)

let test_rope_preserves_norm () =
  let v = [| 1.0; 2.0; 3.0; 4.0; 5.0; 6.0 |] in
  let r = Rope.apply ~head_dim:6 ~pos:17 v in
  Alcotest.(check (float 1e-9)) "rotation preserves norm"
    (Hnlpu_tensor.Vec.norm2 v) (Hnlpu_tensor.Vec.norm2 r)

let test_rope_relative_position () =
  (* RoPE's defining property: <R_m q, R_n k> depends only on n - m. *)
  let rng = Rng.create 3 in
  let q = Hnlpu_tensor.Vec.gaussian rng 8 and k = Hnlpu_tensor.Vec.gaussian rng 8 in
  let dot m n =
    Hnlpu_tensor.Vec.dot (Rope.apply ~head_dim:8 ~pos:m q) (Rope.apply ~head_dim:8 ~pos:n k)
  in
  Alcotest.(check (float 1e-9)) "shift invariance" (dot 3 7) (dot 10 14)

(* --- Kv_cache ------------------------------------------------------------ *)

let test_kv_cache_basic () =
  let cache = Kv_cache.create Config.tiny in
  Alcotest.(check int) "empty" 0 (Kv_cache.length cache ~layer:0);
  let kv_dim = Config.kv_dim Config.tiny in
  Kv_cache.append cache ~layer:0 ~k:(Array.make kv_dim 1.0) ~v:(Array.make kv_dim 2.0);
  Kv_cache.append cache ~layer:0 ~k:(Array.make kv_dim 3.0) ~v:(Array.make kv_dim 4.0);
  Alcotest.(check int) "two entries" 2 (Kv_cache.length cache ~layer:0);
  Alcotest.(check int) "other layer untouched" 0 (Kv_cache.length cache ~layer:1);
  let k0 = Kv_cache.key cache ~layer:0 ~head:1 ~pos:0 in
  Alcotest.(check int) "head slice width" Config.tiny.Config.head_dim (Array.length k0);
  Alcotest.(check (float 0.0)) "first key" 1.0 k0.(0);
  let v1 = Kv_cache.value cache ~layer:0 ~head:0 ~pos:1 in
  Alcotest.(check (float 0.0)) "second value" 4.0 v1.(0)

let test_kv_cache_clear () =
  let cache = Kv_cache.create Config.tiny in
  let kv_dim = Config.kv_dim Config.tiny in
  Kv_cache.append cache ~layer:1 ~k:(Array.make kv_dim 0.0) ~v:(Array.make kv_dim 0.0);
  Kv_cache.clear cache;
  Alcotest.(check int) "cleared" 0 (Kv_cache.length cache ~layer:1)

let test_kv_bytes_per_position () =
  (* gpt-oss: 2 (K and V) x 36 layers x 512 x 2B (fp16) = 73,728 B/token. *)
  Alcotest.(check int) "gpt-oss KV growth" 73728
    (Kv_cache.bytes_per_position Config.gpt_oss_120b ~kv_bytes_per_element:2)

(* --- Sampler -------------------------------------------------------------- *)

let test_sampler_greedy () =
  let rng = Rng.create 1 in
  Alcotest.(check int) "greedy argmax" 2
    (Sampler.sample rng Sampler.Greedy [| 0.1; 0.2; 5.0; 0.3 |])

let test_sampler_temperature_distribution () =
  let rng = Rng.create 2 in
  let logits = [| 0.0; log 3.0 |] in
  (* P(1) = 3/4 at temperature 1. *)
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Sampler.sample rng (Sampler.Temperature 1.0) logits = 1 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) (Printf.sprintf "p=%.3f ~ 0.75" p) true (Float.abs (p -. 0.75) < 0.02)

let test_sampler_topk_restricts () =
  let rng = Rng.create 3 in
  let logits = [| 10.0; 9.0; -50.0; 8.0 |] in
  for _ = 1 to 1000 do
    let t = Sampler.sample rng (Sampler.Top_k (2, 1.0)) logits in
    Alcotest.(check bool) "only top-2 tokens" true (t = 0 || t = 1)
  done

let test_sampler_log_prob () =
  let lp = Sampler.log_prob (Sampler.Top_k (1, 1.0)) [| 1.0; 2.0 |] 0 in
  Alcotest.(check bool) "outside top-k impossible" true (lp = neg_infinity)

let test_sampler_validation () =
  Alcotest.(check bool) "bad temperature" true
    (try
       ignore (Sampler.sample (Rng.create 0) (Sampler.Temperature 0.0) [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

(* --- Transformer ----------------------------------------------------------- *)

let make_tiny ?(quantize = false) seed =
  Transformer.create (Weights.random ~quantize_fp4:quantize (Rng.create seed) Config.tiny)

let test_forward_shape () =
  let t = make_tiny 10 in
  let logits = Transformer.forward t ~token:5 in
  Alcotest.(check int) "vocab logits" Config.tiny.Config.vocab (Array.length logits);
  Alcotest.(check bool) "finite" true (Array.for_all Float.is_finite logits);
  Alcotest.(check int) "position advanced" 1 (Transformer.position t)

let test_forward_deterministic () =
  let a = make_tiny 11 and b = make_tiny 11 in
  let la = Transformer.prefill a [ 1; 2; 3 ] and lb = Transformer.prefill b [ 1; 2; 3 ] in
  Alcotest.(check (float 0.0)) "identical" 0.0 (Hnlpu_tensor.Vec.max_abs_diff la lb)

let test_forward_context_matters () =
  (* The same token after different prefixes must produce different logits —
     i.e. attention actually reads the cache. *)
  let a = make_tiny 12 and b = make_tiny 12 in
  let la = Transformer.prefill a [ 1; 2; 9 ] and lb = Transformer.prefill b [ 4; 7; 9 ] in
  Alcotest.(check bool) "context-dependent" true
    (Hnlpu_tensor.Vec.max_abs_diff la lb > 1e-9)

let test_forward_oov () =
  let t = make_tiny 13 in
  Alcotest.(check bool) "oov rejected" true
    (try
       ignore (Transformer.forward t ~token:(-1));
       false
     with Invalid_argument _ -> true)

let test_reset_reproduces () =
  let t = make_tiny 14 in
  let l1 = Transformer.prefill t [ 3; 1; 4 ] in
  Transformer.reset t;
  Alcotest.(check int) "position reset" 0 (Transformer.position t);
  let l2 = Transformer.prefill t [ 3; 1; 4 ] in
  Alcotest.(check (float 0.0)) "same logits after reset" 0.0
    (Hnlpu_tensor.Vec.max_abs_diff l1 l2)

let test_expert_load_topk () =
  let t = make_tiny 15 in
  ignore (Transformer.prefill t [ 1; 2; 3; 4; 5 ]);
  let load = Transformer.expert_load t in
  let total = Array.fold_left ( + ) 0 load in
  (* 5 tokens x 2 layers x top-2 experts. *)
  Alcotest.(check int) "activations = tokens*layers*k" (5 * 2 * 2) total

let test_dense_ffn_path () =
  let w = Weights.random (Rng.create 16) Config.tiny_dense in
  let t = Transformer.create w in
  let logits = Transformer.forward t ~token:0 in
  Alcotest.(check bool) "dense forward finite" true (Array.for_all Float.is_finite logits);
  Alcotest.(check int) "single expert used" 1 (Array.length (Transformer.expert_load t))

let test_generate_terminates () =
  let t = make_tiny 17 in
  let toks =
    Transformer.generate (Rng.create 5) t ~prompt:[ 1 ] ~max_new_tokens:8
      (Sampler.Temperature 1.0)
  in
  Alcotest.(check int) "8 tokens" 8 (List.length toks);
  List.iter
    (fun tok ->
      Alcotest.(check bool) "in vocab" true (tok >= 0 && tok < Config.tiny.Config.vocab))
    toks

let test_generate_stop_token () =
  let t = make_tiny 18 in
  (* Greedy decoding is deterministic: find the first emitted token, then ask
     for it as the stop token — generation must halt immediately. *)
  let t2 = make_tiny 18 in
  let first =
    match
      Transformer.generate (Rng.create 0) t2 ~prompt:[ 2 ] ~max_new_tokens:1 Sampler.Greedy
    with
    | [ tok ] -> tok
    | _ -> Alcotest.fail "expected one token"
  in
  let toks =
    Transformer.generate (Rng.create 0) t ~prompt:[ 2 ] ~max_new_tokens:8 ~stop:first
      Sampler.Greedy
  in
  Alcotest.(check (list int)) "stops before emitting" [] toks

let test_quantized_model_runs () =
  let t = make_tiny ~quantize:true 19 in
  let logits = Transformer.prefill t [ 1; 2; 3 ] in
  Alcotest.(check bool) "fp4 model finite" true (Array.for_all Float.is_finite logits)

let prop_prefill_equals_forwards =
  QCheck.Test.make ~name:"prefill = repeated forward" ~count:20
    QCheck.(pair (int_range 0 10000) (list_of_size (Gen.int_range 1 6) (int_range 0 63)))
    (fun (seed, prompt) ->
      let a = make_tiny seed and b = make_tiny seed in
      let la = Transformer.prefill a prompt in
      let lb = List.fold_left (fun _ tok -> Transformer.forward b ~token:tok) [||] prompt in
      Hnlpu_tensor.Vec.max_abs_diff la lb = 0.0)

(* --- Hn_linear: the HN-hardware bridge ---------------------------------- *)

let test_hn_linear_exactness_vs_quantized () =
  (* ME arithmetic is exact on the quantized values: apply ~ apply_float up
     to activation quantization only. *)
  let rng = Rng.create 20 in
  let m = Hnlpu_tensor.Mat.gaussian rng ~rows:64 ~cols:16 in
  let hn = Hn_linear.of_matrix m in
  let x = Hnlpu_tensor.Vec.gaussian rng 64 in
  let y_hw = Hn_linear.apply hn x in
  let y_float = Hn_linear.apply_float hn x in
  let scale = Hnlpu_tensor.Vec.norm2 y_float /. sqrt 16.0 in
  let err = Hnlpu_tensor.Vec.max_abs_diff y_hw y_float /. Float.max scale 1e-9 in
  Alcotest.(check bool) (Printf.sprintf "act-quant err %.4f < 2%%" err) true (err < 0.02)

let test_hn_linear_close_to_float () =
  let rng = Rng.create 21 in
  let m = Hnlpu_tensor.Mat.gaussian rng ~rows:64 ~cols:16 in
  let hn = Hn_linear.of_matrix m in
  let x = Hnlpu_tensor.Vec.gaussian rng 64 in
  let y_hw = Hn_linear.apply hn x in
  let y_ref = Hnlpu_tensor.Mat.gemv m x in
  let scale = Hnlpu_tensor.Vec.norm2 y_ref /. sqrt 16.0 in
  let err = Hnlpu_tensor.Vec.max_abs_diff y_hw y_ref /. Float.max scale 1e-9 in
  (* Weight quantization dominates; E2M1 with per-neuron scales on Gaussian
     data stays within ~25% worst-case per element. *)
  Alcotest.(check bool) (Printf.sprintf "total err %.4f < 0.4" err) true (err < 0.4)

let test_hn_linear_zero_input () =
  let rng = Rng.create 22 in
  let m = Hnlpu_tensor.Mat.gaussian rng ~rows:32 ~cols:8 in
  let hn = Hn_linear.of_matrix m in
  let y = Hn_linear.apply hn (Array.make 32 0.0) in
  Alcotest.(check (array (float 0.0))) "zeros" (Array.make 8 0.0) y

let test_hn_linear_report () =
  let rng = Rng.create 23 in
  let m = Hnlpu_tensor.Mat.gaussian rng ~rows:32 ~cols:8 in
  let hn = Hn_linear.of_matrix m in
  let r = Hn_linear.report hn in
  Alcotest.(check bool) "has area" true (r.Hnlpu_neuron.Report.area_mm2 > 0.0)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_model"
    [
      ( "config",
        [
          Alcotest.test_case "gpt-oss param count" `Quick test_gpt_oss_param_count;
          Alcotest.test_case "gpt-oss shapes" `Quick test_gpt_oss_shapes;
          Alcotest.test_case "hardwired per chip" `Quick test_gpt_oss_hardwired_per_chip;
          Alcotest.test_case "router fraction" `Quick test_router_fraction;
          Alcotest.test_case "gpt-oss 20B" `Quick test_gpt_oss_20b;
          Alcotest.test_case "external models" `Quick test_external_models;
          Alcotest.test_case "validation" `Quick test_config_validation;
        ] );
      ( "weights",
        [
          Alcotest.test_case "count matches params" `Quick test_weights_count_matches_params;
          Alcotest.test_case "quantized are fp4" `Quick test_weights_quantized_are_fp4;
          Alcotest.test_case "rejects external" `Quick test_weights_rejects_external;
        ] );
      ( "rope",
        [
          Alcotest.test_case "pos 0 identity" `Quick test_rope_pos0_identity;
          Alcotest.test_case "preserves norm" `Quick test_rope_preserves_norm;
          Alcotest.test_case "relative position" `Quick test_rope_relative_position;
        ] );
      ( "kv_cache",
        [
          Alcotest.test_case "basic" `Quick test_kv_cache_basic;
          Alcotest.test_case "clear" `Quick test_kv_cache_clear;
          Alcotest.test_case "bytes per position" `Quick test_kv_bytes_per_position;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "greedy" `Quick test_sampler_greedy;
          Alcotest.test_case "temperature distribution" `Slow test_sampler_temperature_distribution;
          Alcotest.test_case "top-k restricts" `Quick test_sampler_topk_restricts;
          Alcotest.test_case "log prob" `Quick test_sampler_log_prob;
          Alcotest.test_case "validation" `Quick test_sampler_validation;
        ] );
      ( "transformer",
        [
          Alcotest.test_case "forward shape" `Quick test_forward_shape;
          Alcotest.test_case "deterministic" `Quick test_forward_deterministic;
          Alcotest.test_case "context matters" `Quick test_forward_context_matters;
          Alcotest.test_case "oov" `Quick test_forward_oov;
          Alcotest.test_case "reset" `Quick test_reset_reproduces;
          Alcotest.test_case "expert load" `Quick test_expert_load_topk;
          Alcotest.test_case "dense ffn" `Quick test_dense_ffn_path;
          Alcotest.test_case "generate" `Quick test_generate_terminates;
          Alcotest.test_case "stop token" `Quick test_generate_stop_token;
          Alcotest.test_case "quantized model" `Quick test_quantized_model_runs;
        ] );
      qsuite "transformer properties" [ prop_prefill_equals_forwards ];
      ( "hn_linear",
        [
          Alcotest.test_case "exact on quantized values" `Quick test_hn_linear_exactness_vs_quantized;
          Alcotest.test_case "close to float" `Quick test_hn_linear_close_to_float;
          Alcotest.test_case "zero input" `Quick test_hn_linear_zero_input;
          Alcotest.test_case "report" `Quick test_hn_linear_report;
        ] );
    ]
