open Hnlpu_tco
open Hnlpu_util

let m = 1.0e6

let within pct label expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.4g vs paper %.4g" label actual expected)
    true
    (Approx.within_pct pct ~expected ~actual)

(* --- Table 5: recurring & NRE ------------------------------------------------ *)

let test_wafer_cost () = within 0.5 "wafer/chip" 629.0 (Pricing.wafer_per_chip_usd ())

let test_package_test () =
  let lo, hi = Pricing.range Pricing.package_test_usd in
  within 1.0 "pkg lo" 111.0 lo;
  within 1.0 "pkg hi" 185.0 hi

let test_hbm_cost () =
  let lo, hi = Pricing.range Pricing.hbm_usd in
  within 0.1 "hbm lo" 1920.0 lo;
  within 0.1 "hbm hi" 3840.0 hi

let test_recurring_per_chip () =
  let lo, hi = Pricing.range (Pricing.recurring_per_chip_usd ?tech:None) in
  within 1.0 "recurring lo" 4560.0 lo;
  within 1.0 "recurring hi" 8454.0 hi

let test_design_totals () =
  let lo, hi = Pricing.range Pricing.design_total_usd in
  within 0.5 "design lo" (26.87 *. m) lo;
  within 0.5 "design hi" (58.54 *. m) hi

let test_initial_build () =
  (* Table 5: 1-HNLPU $59.25M–123.3M, 50-HNLPU $62.83M–129.9M. *)
  within 0.5 "1-HNLPU lo" (59.25 *. m)
    (Cost_breakdown.initial_build_usd Pricing.Optimistic ~systems:1);
  within 0.5 "1-HNLPU hi" (123.3 *. m)
    (Cost_breakdown.initial_build_usd Pricing.Pessimistic ~systems:1);
  within 0.5 "50-HNLPU lo" (62.83 *. m)
    (Cost_breakdown.initial_build_usd Pricing.Optimistic ~systems:50);
  within 0.5 "50-HNLPU hi" (129.9 *. m)
    (Cost_breakdown.initial_build_usd Pricing.Pessimistic ~systems:50)

let test_respin () =
  (* Table 5: 1-HNLPU $18.53M–37.06M, 50-HNLPU $22.11M–43.68M. *)
  within 0.5 "respin 1 lo" (18.53 *. m) (Cost_breakdown.respin_usd Pricing.Optimistic ~systems:1);
  within 0.5 "respin 1 hi" (37.06 *. m) (Cost_breakdown.respin_usd Pricing.Pessimistic ~systems:1);
  within 0.5 "respin 50 lo" (22.11 *. m) (Cost_breakdown.respin_usd Pricing.Optimistic ~systems:50);
  within 0.5 "respin 50 hi" (43.68 *. m) (Cost_breakdown.respin_usd Pricing.Pessimistic ~systems:50)

let test_table5_renders () =
  let s = Table.render (Cost_breakdown.to_table ()) in
  Alcotest.(check bool) "lines present" true
    (Thelp.contains s "Wafer" && Thelp.contains s "Metal-Embedding Mask"
    && Thelp.contains s "Re-spin: 50-HNLPU")

(* --- Table 3 ------------------------------------------------------------------ *)

let low_hnlpu = Tco.hnlpu_column Tco.Low
let low_h100 = Tco.h100_column Tco.Low
let high_hnlpu = Tco.hnlpu_column Tco.High
let high_h100 = Tco.h100_column Tco.High

let test_equivalence () =
  within 8.0 "GPUs per HNLPU (paper rounds to ~2,000)" 2000.0 Tco.equivalence_gpus_per_hnlpu

let test_power_rows () =
  within 4.0 "low HNLPU MW" 0.010 low_hnlpu.Tco.datacenter_power_mw;
  within 0.5 "low H100 MW" 3.64 low_h100.Tco.datacenter_power_mw;
  within 1.0 "high HNLPU MW" 0.483 high_hnlpu.Tco.datacenter_power_mw;
  within 0.5 "high H100 MW" 182.0 high_h100.Tco.datacenter_power_mw

let test_capex_rows () =
  within 1.0 "low HNLPU capex lo" (59.46 *. m) low_hnlpu.Tco.total_capex.Tco.lo;
  within 1.0 "low HNLPU capex hi" (123.5 *. m) low_hnlpu.Tco.total_capex.Tco.hi;
  within 0.5 "low H100 capex" (134.9 *. m) low_h100.Tco.total_capex.Tco.lo;
  within 1.0 "high HNLPU capex lo" (73.13 *. m) high_hnlpu.Tco.total_capex.Tco.lo;
  within 1.0 "high HNLPU capex hi" (140.2 *. m) high_hnlpu.Tco.total_capex.Tco.hi;
  within 0.5 "high H100 capex" (6747.0 *. m) high_h100.Tco.total_capex.Tco.lo

let test_infrastructure_rows () =
  within 3.0 "low HNLPU infra" (0.21 *. m) low_hnlpu.Tco.infrastructure.Tco.lo;
  within 0.5 "low H100 infra" (54.93 *. m) low_h100.Tco.infrastructure.Tco.lo;
  within 1.0 "high HNLPU infra" (10.30 *. m) high_hnlpu.Tco.infrastructure.Tco.lo;
  within 0.5 "high H100 infra" (2747.0 *. m) high_h100.Tco.infrastructure.Tco.lo

let test_opex_rows () =
  within 5.0 "low HNLPU electricity" (0.025 *. m) low_hnlpu.Tco.electricity.Tco.lo;
  within 0.5 "low H100 electricity" (9.088 *. m) low_h100.Tco.electricity.Tco.lo;
  within 1.0 "high HNLPU electricity" (1.206 *. m) high_hnlpu.Tco.electricity.Tco.lo;
  within 0.5 "high H100 electricity" (454.4 *. m) high_h100.Tco.electricity.Tco.lo;
  within 1.0 "low HNLPU maintenance lo" (0.073 *. m) low_hnlpu.Tco.maintenance.Tco.lo;
  within 1.0 "low HNLPU maintenance hi" (0.1353 *. m) low_hnlpu.Tco.maintenance.Tco.hi;
  within 0.5 "low H100 maintenance" (47.24 *. m) low_h100.Tco.maintenance.Tco.lo;
  within 0.5 "high H100 maintenance" (2362.0 *. m) high_h100.Tco.maintenance.Tco.lo

let test_tco_rows () =
  within 1.0 "low static lo" (59.56 *. m) low_hnlpu.Tco.tco_static.Tco.lo;
  within 1.0 "low static hi" (123.7 *. m) low_hnlpu.Tco.tco_static.Tco.hi;
  within 1.0 "low dynamic lo" (96.62 *. m) low_hnlpu.Tco.tco_dynamic.Tco.lo;
  within 1.0 "low dynamic hi" (197.8 *. m) low_hnlpu.Tco.tco_dynamic.Tco.hi;
  within 0.5 "low H100" (191.2 *. m) low_h100.Tco.tco_static.Tco.lo;
  within 1.0 "high dynamic lo" (118.9 *. m) high_hnlpu.Tco.tco_dynamic.Tco.lo;
  within 1.0 "high dynamic hi" (229.4 *. m) high_hnlpu.Tco.tco_dynamic.Tco.hi;
  within 0.5 "high H100" (9563.0 *. m) high_h100.Tco.tco_static.Tco.lo

let test_emissions_rows () =
  within 5.0 "low HNLPU static" 102.0 low_hnlpu.Tco.emissions_static_t;
  within 5.0 "low HNLPU dynamic" 106.0 low_hnlpu.Tco.emissions_dynamic_t;
  within 1.0 "low H100" 36600.0 low_h100.Tco.emissions_static_t;
  within 1.0 "high HNLPU static" 4924.0 high_hnlpu.Tco.emissions_static_t;
  within 1.0 "high HNLPU dynamic" 5124.0 high_hnlpu.Tco.emissions_dynamic_t;
  within 1.0 "high H100" 1830000.0 high_h100.Tco.emissions_static_t

let test_headline_ratios () =
  (* §7.5: TCO 41.7–80.4x, OpEx 1,496–1,793x, CapEx 48.1–92.3x, carbon
     357x/372x at high volume. *)
  let lo, hi = Tco.tco_dynamic_ratio Tco.High in
  within 1.0 "TCO ratio lo" 41.7 lo;
  within 1.0 "TCO ratio hi" 80.4 hi;
  let lo, hi = Tco.opex_ratio Tco.High in
  within 1.0 "OpEx ratio lo" 1496.0 lo;
  within 1.0 "OpEx ratio hi" 1793.0 hi;
  let lo, hi = Tco.capex_ratio Tco.High in
  within 1.0 "CapEx ratio lo" 48.1 lo;
  within 1.0 "CapEx ratio hi" 92.3 hi;
  within 1.0 "carbon dynamic" 357.2 (Tco.carbon_ratio Tco.High);
  within 1.0 "carbon static" 371.7 (Tco.carbon_ratio ~dynamic:false Tco.High)

let test_low_volume_break_even () =
  (* §7.5: at low volume, even with two re-spins the TCO "remains lower
     than, or breaks even with" the H100 cluster. *)
  Alcotest.(check bool) "optimistic beats H100" true
    (low_hnlpu.Tco.tco_dynamic.Tco.lo < low_h100.Tco.tco_static.Tco.lo);
  Alcotest.(check bool) "pessimistic near break-even" true
    (low_hnlpu.Tco.tco_dynamic.Tco.hi < 1.1 *. low_h100.Tco.tco_static.Tco.lo)

let prop_tco_monotone_in_electricity () =
  (* Not a qcheck property (constants are global): check the structural
     inequality instead — OpEx is strictly positive and dynamic >= static. *)
  List.iter
    (fun (c : Tco.column) ->
      Alcotest.(check bool) "opex positive" true (c.Tco.opex.Tco.lo > 0.0);
      Alcotest.(check bool) "dynamic >= static" true
        (c.Tco.tco_dynamic.Tco.lo >= c.Tco.tco_static.Tco.lo))
    (Tco.table3 ())

let test_table3_renders () =
  let s = Table.render (Tco.to_table ()) in
  Alcotest.(check bool) "rows present" true
    (Thelp.contains s "Total Initial CapEx" && Thelp.contains s "tCO2e")

let () =
  Alcotest.run "hnlpu_tco"
    [
      ( "table-5",
        [
          Alcotest.test_case "wafer $629" `Quick test_wafer_cost;
          Alcotest.test_case "package & test" `Quick test_package_test;
          Alcotest.test_case "HBM" `Quick test_hbm_cost;
          Alcotest.test_case "recurring per chip" `Quick test_recurring_per_chip;
          Alcotest.test_case "design totals" `Quick test_design_totals;
          Alcotest.test_case "initial build" `Quick test_initial_build;
          Alcotest.test_case "re-spin" `Quick test_respin;
          Alcotest.test_case "renders" `Quick test_table5_renders;
        ] );
      ( "table-3",
        [
          Alcotest.test_case "equivalence 2000 GPUs" `Quick test_equivalence;
          Alcotest.test_case "power rows" `Quick test_power_rows;
          Alcotest.test_case "capex rows" `Quick test_capex_rows;
          Alcotest.test_case "infrastructure rows" `Quick test_infrastructure_rows;
          Alcotest.test_case "opex rows" `Quick test_opex_rows;
          Alcotest.test_case "tco rows" `Quick test_tco_rows;
          Alcotest.test_case "emissions rows" `Quick test_emissions_rows;
          Alcotest.test_case "headline ratios" `Quick test_headline_ratios;
          Alcotest.test_case "low-volume break-even" `Quick test_low_volume_break_even;
          Alcotest.test_case "structural invariants" `Quick prop_tco_monotone_in_electricity;
          Alcotest.test_case "renders" `Quick test_table3_renders;
        ] );
    ]
