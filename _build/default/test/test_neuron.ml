open Hnlpu_neuron
open Hnlpu_util

let tech = Hnlpu_gates.Tech.n5

let small_gemv ?(seed = 11) ?(inf = 64) ?(outf = 8) () =
  let rng = Rng.create seed in
  let g = Gemv.random rng ~in_features:inf ~out_features:outf ~act_bits:8 in
  let x = Gemv.random_activations rng g in
  (g, x)

(* --- Gemv -------------------------------------------------------------- *)

let test_gemv_reference_manual () =
  let open Hnlpu_fp4 in
  let weights = [| [| Fp4.of_float 2.0; Fp4.of_float (-0.5) |] |] in
  let g = Gemv.make ~weights ~act_bits:8 in
  (* 2*10 + (-0.5)*4 = 18 -> 36 half-units *)
  Alcotest.(check (array int)) "dot" [| 36 |] (Gemv.reference g [| 10; 4 |]);
  Alcotest.(check (array (float 1e-12))) "float" [| 18.0 |]
    (Gemv.reference_float g [| 10; 4 |])

let test_gemv_validation () =
  Alcotest.(check bool) "ragged rejected" true
    (try
       ignore
         (Gemv.make
            ~weights:[| [| Hnlpu_fp4.Fp4.zero |]; [||] |]
            ~act_bits:8);
       false
     with Invalid_argument _ -> true)

let test_gemv_paper_shape () =
  let g = Gemv.paper_benchmark (Rng.create 0) in
  Alcotest.(check int) "1024 in" 1024 g.Gemv.in_features;
  Alcotest.(check int) "128 out" 128 g.Gemv.out_features;
  Alcotest.(check int) "64KB weights" (64 * 1024 * 8) (Gemv.weight_bits g);
  Alcotest.(check int) "131072 macs" 131072 (Gemv.total_macs g)

(* --- Machines compute the same answer ---------------------------------- *)

let test_ma_matches_reference () =
  let g, x = small_gemv () in
  let out, _ = Mac_array.run (Mac_array.make g) x in
  Alcotest.(check (array int)) "MA = reference" (Gemv.reference g x) out

let test_ce_matches_reference () =
  let g, x = small_gemv () in
  let out, _ = Cell_embedding.run (Cell_embedding.make g) x in
  Alcotest.(check (array int)) "CE = reference" (Gemv.reference g x) out

let test_me_matches_reference () =
  let g, x = small_gemv () in
  let out, _ = Metal_embedding.run (Metal_embedding.make ~slack:4.0 g) x in
  Alcotest.(check (array int)) "ME = reference" (Gemv.reference g x) out

let test_me_extreme_activations () =
  let rng = Rng.create 3 in
  let g = Gemv.random rng ~in_features:32 ~out_features:4 ~act_bits:8 in
  let me = Metal_embedding.make ~slack:4.0 g in
  List.iter
    (fun v ->
      let x = Array.make 32 v in
      let out, _ = Metal_embedding.run me x in
      Alcotest.(check (array int))
        (Printf.sprintf "all-%d" v)
        (Gemv.reference g x) out)
    [ -128; -1; 0; 1; 127 ]

let test_me_single_weight_value () =
  (* All weights identical: one region gets everything — needs slack 16. *)
  let open Hnlpu_fp4 in
  let weights = Array.make 2 (Array.make 20 (Fp4.of_float 3.0)) in
  let g = Gemv.make ~weights ~act_bits:8 in
  let me = Metal_embedding.make ~slack:16.0 g in
  let x = Array.init 20 (fun i -> i - 10) in
  let out, _ = Metal_embedding.run me x in
  Alcotest.(check (array int)) "skewed routing" (Gemv.reference g x) out

let test_me_slack_rejects_overflow () =
  let open Hnlpu_fp4 in
  let weights = [| Array.make 20 (Fp4.of_float 3.0) |] in
  let g = Gemv.make ~weights ~act_bits:8 in
  Alcotest.(check bool) "slack 1.0 overflows" true
    (try
       ignore (Metal_embedding.make ~slack:1.0 g);
       false
     with Invalid_argument _ -> true)

let prop_machines_agree =
  QCheck.Test.make ~name:"MA = CE = ME = reference on random problems" ~count:60
    QCheck.(triple small_nat small_nat (int_range 0 1000000))
    (fun (a, b, seed) ->
      let inf = 4 + (a mod 60) and outf = 1 + (b mod 12) in
      let rng = Rng.create seed in
      let g = Gemv.random rng ~in_features:inf ~out_features:outf ~act_bits:8 in
      let x = Gemv.random_activations rng g in
      let expect = Gemv.reference g x in
      let ma, _ = Mac_array.run (Mac_array.make g) x in
      let ce, _ = Cell_embedding.run (Cell_embedding.make g) x in
      let me, _ = Metal_embedding.run (Metal_embedding.make ~slack:16.0 g) x in
      ma = expect && ce = expect && me = expect)

let prop_me_bit_widths =
  QCheck.Test.make ~name:"ME exact across activation widths" ~count:60
    QCheck.(pair (int_range 2 12) (int_range 0 1000000))
    (fun (bits, seed) ->
      let rng = Rng.create seed in
      let g = Gemv.random rng ~in_features:24 ~out_features:3 ~act_bits:bits in
      let x = Gemv.random_activations rng g in
      let me, _ = Metal_embedding.run (Metal_embedding.make ~slack:16.0 g) x in
      me = Gemv.reference g x)

(* --- Figure 12: area ratios ------------------------------------------- *)

let fig12_reports () =
  let rng = Rng.create 12 in
  let g = Gemv.paper_benchmark rng in
  let ma = Mac_array.report (Mac_array.make g) in
  let ce = Cell_embedding.report (Cell_embedding.make g) in
  let me = Metal_embedding.report (Metal_embedding.make g) in
  (ma, ce, me)

let test_fig12_ce_much_bigger () =
  let ma, ce, _ = fig12_reports () in
  let r = Report.area_ratio ce ~baseline:ma in
  (* Paper: 14.3x.  Our static-CMOS census is coarser than their EDA flow;
     assert the order of magnitude. *)
  Alcotest.(check bool) (Printf.sprintf "CE ratio %.1f in [8, 30]" r) true
    (r >= 8.0 && r <= 30.0)

let test_fig12_me_comparable_to_sram () =
  let ma, _, me = fig12_reports () in
  let r = Report.area_ratio me ~baseline:ma in
  (* Paper: 0.95x. *)
  Alcotest.(check bool) (Printf.sprintf "ME ratio %.2f in [0.4, 1.6]" r) true
    (r >= 0.4 && r <= 1.6)

let test_fig12_ordering () =
  let ma, ce, me = fig12_reports () in
  Alcotest.(check bool) "CE >> MA >= ME ordering" true
    (ce.Report.area_mm2 > ma.Report.area_mm2
    && ce.Report.area_mm2 > 10.0 *. me.Report.area_mm2)

(* --- Figure 13: cycles and energy -------------------------------------- *)

let test_fig13_cycles () =
  let ma, ce, me = fig12_reports () in
  (* Paper: MA ~150 cycles, CE and ME dramatically fewer. *)
  Alcotest.(check bool)
    (Printf.sprintf "MA %d cycles in [120,180]" ma.Report.cycles)
    true
    (ma.Report.cycles >= 120 && ma.Report.cycles <= 180);
  Alcotest.(check bool) (Printf.sprintf "CE %d < 10" ce.Report.cycles) true
    (ce.Report.cycles < 10);
  Alcotest.(check bool) (Printf.sprintf "ME %d < 20" me.Report.cycles) true
    (me.Report.cycles < 20);
  Alcotest.(check bool) "MA dominated" true
    (ma.Report.cycles > 5 * max ce.Report.cycles me.Report.cycles)

let test_fig13_energy_ordering () =
  let ma, ce, me = fig12_reports () in
  let e r = Report.energy_j tech r in
  (* Paper: ME least, CE middle, MA most (log-scale plot 0.1–10 nJ). *)
  Alcotest.(check bool)
    (Printf.sprintf "ME %.2e < CE %.2e < MA %.2e" (e me) (e ce) (e ma))
    true
    (e me < e ce && e ce < e ma)

let test_fig13_ma_energy_magnitude () =
  let ma, _, _ = fig12_reports () in
  let e = Report.energy_j tech ma in
  (* ~10 nJ in the paper's plot; assert the decade. *)
  Alcotest.(check bool) (Printf.sprintf "MA %.2e J ~ 1e-8" e) true
    (e > 2e-9 && e < 5e-8)

let test_fig13_me_energy_magnitude () =
  let _, _, me = fig12_reports () in
  let e = Report.energy_j tech me in
  Alcotest.(check bool) (Printf.sprintf "ME %.2e J ~ sub-nJ" e) true
    (e > 5e-11 && e < 2e-9)

let test_ce_leakage_exceeds_me () =
  (* The paper's explanation of CE's energy loss: leakage from its area. *)
  let _, ce, me = fig12_reports () in
  Alcotest.(check bool) "CE leaks more" true
    (ce.Report.leakage_power_w > 5.0 *. me.Report.leakage_power_w)

(* --- Structure --------------------------------------------------------- *)

let test_me_region_accounting () =
  let rng = Rng.create 5 in
  let g = Gemv.random rng ~in_features:160 ~out_features:4 ~act_bits:8 in
  let me = Metal_embedding.make ~slack:2.0 g in
  Alcotest.(check int) "capacity = slack * n/16" 20 (Metal_embedding.region_capacity me);
  let load = Metal_embedding.region_load me in
  Alcotest.(check int) "16 regions" 16 (Array.length load);
  Array.iter
    (fun l -> Alcotest.(check bool) "load within capacity" true (l <= 20))
    load

let test_me_serial_cycles_is_act_bits () =
  let g, _ = small_gemv () in
  let me = Metal_embedding.make ~slack:4.0 g in
  Alcotest.(check int) "8 planes" 8 (Metal_embedding.serial_cycles me)

let test_report_table_renders () =
  let ma, ce, me = fig12_reports () in
  let t = Report.to_table tech [ ma; ce; me ] in
  let s = Table.render t in
  Alcotest.(check bool) "mentions all designs" true
    (Thelp.contains s "MAC array" && Thelp.contains s "Cell-Embedding"
    && Thelp.contains s "Metal-Embedding")

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_neuron"
    [
      ( "gemv",
        [
          Alcotest.test_case "manual reference" `Quick test_gemv_reference_manual;
          Alcotest.test_case "validation" `Quick test_gemv_validation;
          Alcotest.test_case "paper benchmark shape" `Quick test_gemv_paper_shape;
        ] );
      ( "machines",
        [
          Alcotest.test_case "MA = reference" `Quick test_ma_matches_reference;
          Alcotest.test_case "CE = reference" `Quick test_ce_matches_reference;
          Alcotest.test_case "ME = reference" `Quick test_me_matches_reference;
          Alcotest.test_case "ME extreme activations" `Quick test_me_extreme_activations;
          Alcotest.test_case "ME skewed weights" `Quick test_me_single_weight_value;
          Alcotest.test_case "ME slack overflow" `Quick test_me_slack_rejects_overflow;
        ] );
      qsuite "machine properties" [ prop_machines_agree; prop_me_bit_widths ];
      ( "figure-12",
        [
          Alcotest.test_case "CE much bigger than SRAM" `Quick test_fig12_ce_much_bigger;
          Alcotest.test_case "ME comparable to SRAM" `Quick test_fig12_me_comparable_to_sram;
          Alcotest.test_case "ordering" `Quick test_fig12_ordering;
        ] );
      ( "figure-13",
        [
          Alcotest.test_case "cycles" `Quick test_fig13_cycles;
          Alcotest.test_case "energy ordering" `Quick test_fig13_energy_ordering;
          Alcotest.test_case "MA energy magnitude" `Quick test_fig13_ma_energy_magnitude;
          Alcotest.test_case "ME energy magnitude" `Quick test_fig13_me_energy_magnitude;
          Alcotest.test_case "CE leakage" `Quick test_ce_leakage_exceeds_me;
        ] );
      ( "structure",
        [
          Alcotest.test_case "region accounting" `Quick test_me_region_accounting;
          Alcotest.test_case "serial cycles" `Quick test_me_serial_cycles_is_act_bits;
          Alcotest.test_case "report table" `Quick test_report_table_renders;
        ] );
    ]
