(* Tests for the GPU-equivalence scaling sweep and the multi-node fleet
   simulation backing the high-volume scenario. *)

open Hnlpu

let config = Config.gpt_oss_120b

(* --- Scaling / GPU equivalence ------------------------------------------- *)

let test_scaling_batch1_is_table2 () =
  match Scaling.sweep ~batches:[ 1 ] () with
  | [ p ] ->
    (* 249,960 / 45 = the Table 2 headline. *)
    Alcotest.(check bool)
      (Printf.sprintf "%.0f GPUs" p.Scaling.gpus_needed)
      true
      (Approx.within_pct 1.0 ~expected:5555.0 ~actual:p.Scaling.gpus_needed)
  | _ -> Alcotest.fail "one point expected"

let test_scaling_batching_shrinks_cluster () =
  let pts = Scaling.sweep () in
  let needed b =
    (List.find (fun p -> p.Scaling.gpu_batch = b) pts).Scaling.gpus_needed
  in
  Alcotest.(check bool) "bigger batches, fewer GPUs" true
    (needed 256 < needed 50 && needed 50 < needed 1);
  (* Even a throughput-tuned cluster still needs dozens of GPUs. *)
  Alcotest.(check bool)
    (Printf.sprintf "batch-256 still needs %.0f GPUs (dozens)" (needed 256))
    true
    (needed 256 > 50.0)

let test_scaling_paper_equivalence () =
  let p = Scaling.paper_equivalence in
  Alcotest.(check bool)
    (Printf.sprintf "%.0f GPUs ~ 2000" p.Scaling.gpus_needed)
    true
    (Approx.within_pct 10.0 ~expected:2000.0 ~actual:p.Scaling.gpus_needed);
  (* The power argument behind the OpEx advantage. *)
  Alcotest.(check bool)
    (Printf.sprintf "power ratio %.0fx" p.Scaling.power_ratio)
    true
    (p.Scaling.power_ratio > 200.0)

let test_scaling_table_renders () =
  let s = Table.render (Scaling.to_table (Scaling.sweep ())) in
  Alcotest.(check bool) "renders" true (Thelp.contains s "GPUs to match")

(* --- Multi-node fleet --------------------------------------------------------- *)

let saturating_workload seed =
  (* Big enough that pipeline fill/drain and decode tails amortize. *)
  Scheduler.workload (Rng.create seed) ~n:1200 ~rate_per_s:1.0e9 ~mean_prefill:150
    ~mean_decode:2

let test_fleet_conservation () =
  let reqs = saturating_workload 1 in
  let r = Multi_node.simulate ~nodes:4 config reqs in
  let expected =
    List.fold_left
      (fun a q -> a + q.Scheduler.prefill_tokens + q.Scheduler.decode_tokens)
      0 reqs
  in
  Alcotest.(check int) "tokens conserved across nodes" expected r.Multi_node.total_tokens;
  Alcotest.(check int) "all nodes reported" 4 (List.length r.Multi_node.per_node)

let test_fleet_scales_nearly_linearly () =
  let reqs = saturating_workload 2 in
  let e = Multi_node.scaling_efficiency ~nodes:4 config reqs in
  Alcotest.(check bool) (Printf.sprintf "efficiency %.2f" e) true (e > 0.8 && e <= 1.05)

let test_fleet_least_loaded_balances () =
  (* Heavy-tailed request sizes: least-loaded keeps imbalance low. *)
  let rng = Rng.create 3 in
  let reqs =
    List.init 200 (fun i ->
        {
          Scheduler.arrival_s = 0.0001 *. float_of_int i;
          prefill_tokens = 1 + Rng.int rng (if i mod 17 = 0 then 2000 else 40);
          decode_tokens = 1 + Rng.int rng 8;
        })
  in
  let rr = Multi_node.simulate ~policy:Multi_node.Round_robin ~nodes:4 config reqs in
  let ll = Multi_node.simulate ~policy:Multi_node.Least_loaded ~nodes:4 config reqs in
  Alcotest.(check bool)
    (Printf.sprintf "LL %.2f <= RR %.2f imbalance" ll.Multi_node.imbalance
       rr.Multi_node.imbalance)
    true
    (ll.Multi_node.imbalance <= rr.Multi_node.imbalance +. 1e-9);
  Alcotest.(check bool) "LL close to even" true (ll.Multi_node.imbalance < 1.3)

let test_fleet_empty_node_ok () =
  (* More nodes than requests: the idle nodes must report zeros. *)
  let reqs =
    [ { Scheduler.arrival_s = 0.0; prefill_tokens = 3; decode_tokens = 2 } ]
  in
  let r = Multi_node.simulate ~nodes:3 config reqs in
  Alcotest.(check int) "five tokens" 5 r.Multi_node.total_tokens;
  let idle = List.filter (fun s -> s.Multi_node.tokens = 0) r.Multi_node.per_node in
  Alcotest.(check int) "two idle nodes" 2 (List.length idle)

let test_fleet_validation () =
  Alcotest.(check bool) "zero nodes rejected" true
    (try
       ignore (Multi_node.simulate ~nodes:0 config []);
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "hnlpu_fleet"
    [
      ( "gpu-equivalence",
        [
          Alcotest.test_case "batch 1 = Table 2" `Quick test_scaling_batch1_is_table2;
          Alcotest.test_case "batching shrinks cluster" `Quick test_scaling_batching_shrinks_cluster;
          Alcotest.test_case "paper equivalence" `Quick test_scaling_paper_equivalence;
          Alcotest.test_case "table" `Quick test_scaling_table_renders;
        ] );
      ( "multi-node",
        [
          Alcotest.test_case "conservation" `Quick test_fleet_conservation;
          Alcotest.test_case "near-linear scaling" `Quick test_fleet_scales_nearly_linearly;
          Alcotest.test_case "least-loaded balances" `Quick test_fleet_least_loaded_balances;
          Alcotest.test_case "idle nodes" `Quick test_fleet_empty_node_ok;
          Alcotest.test_case "validation" `Quick test_fleet_validation;
        ] );
    ]
