open Hnlpu_gates
open Hnlpu_util

let tech = Tech.n5

(* --- Yield: the paper's §7.1 / Appendix B numbers --------------------- *)

let test_murphy_yield_paper () =
  (* 827 mm² die, D0 = 0.11/cm² -> "43% yield". *)
  let y = Yield.murphy ~defect_density_per_cm2:0.11 ~die_area_mm2:827.08 in
  Alcotest.(check bool)
    (Printf.sprintf "yield %.3f ~ 0.43" y)
    true
    (Approx.within_pct 2.0 ~expected:0.43 ~actual:y)

let test_gross_dies_paper () =
  (* "~27 of 62 dies". *)
  Alcotest.(check int) "62 gross dies" 62
    (Yield.gross_dies_per_wafer ~wafer_diameter_mm:300.0 ~die_area_mm2:827.08)

let test_good_dies_paper () =
  Alcotest.(check int) "27 good dies" 27 (Yield.good_dies_per_wafer tech ~die_area_mm2:827.08)

let test_die_cost_paper () =
  (* "$629 per good die". *)
  let c = Yield.cost_per_good_die tech ~die_area_mm2:827.08 in
  Alcotest.(check bool) (Printf.sprintf "die cost %.0f ~ 629" c) true
    (Approx.within_pct 0.5 ~expected:629.0 ~actual:c)

let test_yield_monotone_in_area () =
  let y1 = Yield.murphy ~defect_density_per_cm2:0.11 ~die_area_mm2:100.0 in
  let y2 = Yield.murphy ~defect_density_per_cm2:0.11 ~die_area_mm2:800.0 in
  Alcotest.(check bool) "bigger die, lower yield" true (y1 > y2)

let test_yield_perfect_process () =
  let y = Yield.murphy ~defect_density_per_cm2:0.0 ~die_area_mm2:800.0 in
  Alcotest.(check (float 1e-9)) "D0=0 gives yield 1" 1.0 y

let test_wafers_for () =
  (* 16 chips at 27 good dies/wafer -> 1 wafer; 50 systems x 16 = 800 -> 30. *)
  Alcotest.(check int) "one system" 1 (Yield.wafers_for tech ~die_area_mm2:827.08 ~dies:16);
  Alcotest.(check int) "fifty systems" 30
    (Yield.wafers_for tech ~die_area_mm2:827.08 ~dies:800)

let prop_yield_bounds =
  QCheck.Test.make ~name:"Murphy yield in (0,1]" ~count:200
    QCheck.(pair (float_range 0.0 1.0) (float_range 1.0 2000.0))
    (fun (d0, a) ->
      let y = Yield.murphy ~defect_density_per_cm2:d0 ~die_area_mm2:a in
      y > 0.0 && y <= 1.0)

(* --- Census ----------------------------------------------------------- *)

let test_census_primitives () =
  Alcotest.(check int) "full adder 28T" 28 Census.full_adder;
  Alcotest.(check int) "ripple 8b" (8 * 28) (Census.ripple_adder 8)

let test_cmac_power_of_two_free () =
  (* x1, x2, x4 and x0.5 are pure wiring. *)
  List.iter
    (fun v ->
      let c = Census.fp4_constant_multiplier ~input_bits:8 (Hnlpu_fp4.Fp4.of_float v) in
      Alcotest.(check int) (Printf.sprintf "x%g free" v) 0 c)
    [ 0.0; 0.5; 1.0; 2.0; 4.0 ]

let test_cmac_mantissa_costs_adder () =
  let c3 = Census.fp4_constant_multiplier ~input_bits:8 (Hnlpu_fp4.Fp4.of_float 3.0) in
  Alcotest.(check bool) "x3 needs an adder" true (c3 > 0)

let test_cmac_sign_costs_inversion () =
  let cp = Census.fp4_constant_multiplier ~input_bits:8 (Hnlpu_fp4.Fp4.of_float 2.0) in
  let cn = Census.fp4_constant_multiplier ~input_bits:8 (Hnlpu_fp4.Fp4.of_float (-2.0)) in
  Alcotest.(check bool) "negative costs more" true (cn > cp)

let test_cmac_cheaper_than_full_mac () =
  (* §3.1: constant multiplier is several times smaller than a full one. *)
  let avg = Census.fp4_constant_multiplier_avg ~input_bits:8 in
  let full = float_of_int (Census.fp4_full_mac ~input_bits:8) in
  Alcotest.(check bool)
    (Printf.sprintf "avg cmac %.0f < full mac %.0f / 2" avg full)
    true
    (avg < full /. 2.0)

let test_full_mac_band () =
  (* Paper: "FP4 CMAC requires 200+ transistors". *)
  Alcotest.(check bool) "200+" true (Census.fp4_full_mac ~input_bits:8 >= 200)

let test_csa_cost_positive () =
  let _, stats = Hnlpu_fp4.Csa.reduce ~width:8 (Array.make 64 0) in
  Alcotest.(check bool) "cost > 0" true (Census.csa_cost stats > 0)

(* --- Sram ------------------------------------------------------------- *)

let test_sram_64kb_area () =
  (* The Figure 12 base unit. Raw bitcell area 0.011 mm²; macro area with
     periphery must be bigger but same order. *)
  let s = Sram.make ~capacity_bytes:65536 ~word_bits:4096 () in
  let a = Sram.area_mm2 tech s in
  Alcotest.(check bool) (Printf.sprintf "area %.4f in [0.011, 0.1]" a) true
    (a > 0.011 && a < 0.1)

let test_sram_streaming () =
  let s = Sram.make ~capacity_bytes:65536 ~word_bits:4096 () in
  Alcotest.(check int) "reads to stream all" 128
    (Sram.reads_to_stream s ~total_bits:(65536 * 8))

let test_sram_energy_scales_with_width () =
  let narrow = Sram.make ~capacity_bytes:65536 ~word_bits:64 () in
  let wide = Sram.make ~capacity_bytes:65536 ~word_bits:4096 () in
  Alcotest.(check bool) "wider word costs more per read" true
    (Sram.read_energy_j tech wide > Sram.read_energy_j tech narrow)

let test_sram_validation () =
  Alcotest.(check bool) "rejects zero" true
    (try
       ignore (Sram.make ~capacity_bytes:0 ~word_bits:32 ());
       false
     with Invalid_argument _ -> true)

(* --- Tech ------------------------------------------------------------- *)

let test_tech_area_inverse () =
  let n = 1.0e9 in
  let a = Tech.area_of_transistors tech n in
  Alcotest.(check bool) "inverse" true
    (Approx.close ~rel:1e-9 n (Tech.transistors_of_area tech a))

let test_tech_strawman_area () =
  (* §2.2: 116.8B weights x 208 T at raw 138 MTr/mm² = ~176,000 mm². *)
  let area = 116.8e9 *. 208.0 /. tech.Tech.transistor_density_per_mm2 in
  Alcotest.(check bool) (Printf.sprintf "strawman %.0f ~ 176000" area) true
    (Approx.within_pct 1.0 ~expected:176000.0 ~actual:area)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_gates"
    [
      ( "yield",
        [
          Alcotest.test_case "murphy paper point" `Quick test_murphy_yield_paper;
          Alcotest.test_case "gross dies" `Quick test_gross_dies_paper;
          Alcotest.test_case "good dies" `Quick test_good_dies_paper;
          Alcotest.test_case "die cost $629" `Quick test_die_cost_paper;
          Alcotest.test_case "monotone in area" `Quick test_yield_monotone_in_area;
          Alcotest.test_case "perfect process" `Quick test_yield_perfect_process;
          Alcotest.test_case "wafer counts" `Quick test_wafers_for;
        ] );
      qsuite "yield properties" [ prop_yield_bounds ];
      ( "census",
        [
          Alcotest.test_case "primitives" `Quick test_census_primitives;
          Alcotest.test_case "powers of two free" `Quick test_cmac_power_of_two_free;
          Alcotest.test_case "mantissa costs adder" `Quick test_cmac_mantissa_costs_adder;
          Alcotest.test_case "sign costs inversion" `Quick test_cmac_sign_costs_inversion;
          Alcotest.test_case "cmac vs full mac" `Quick test_cmac_cheaper_than_full_mac;
          Alcotest.test_case "full mac 200+" `Quick test_full_mac_band;
          Alcotest.test_case "csa cost" `Quick test_csa_cost_positive;
        ] );
      ( "sram",
        [
          Alcotest.test_case "64KB area" `Quick test_sram_64kb_area;
          Alcotest.test_case "streaming reads" `Quick test_sram_streaming;
          Alcotest.test_case "energy scales" `Quick test_sram_energy_scales_with_width;
          Alcotest.test_case "validation" `Quick test_sram_validation;
        ] );
      ( "tech",
        [
          Alcotest.test_case "area inverse" `Quick test_tech_area_inverse;
          Alcotest.test_case "strawman area" `Quick test_tech_strawman_area;
        ] );
    ]
