open Hnlpu_fp4

(* --- Fp4 codec ------------------------------------------------------- *)

let expected_values =
  (* code -> decoded value, E2M1 *)
  [
    (0, 0.0); (1, 0.5); (2, 1.0); (3, 1.5); (4, 2.0); (5, 3.0); (6, 4.0);
    (7, 6.0); (8, -0.0); (9, -0.5); (10, -1.0); (11, -1.5); (12, -2.0);
    (13, -3.0); (14, -4.0); (15, -6.0);
  ]

let test_decode_table () =
  List.iter
    (fun (c, v) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "code %d" c)
        v
        (Fp4.to_float (Fp4.of_code c)))
    expected_values

let test_of_code_bounds () =
  Alcotest.check_raises "negative" (Invalid_argument "Fp4.of_code: code out of range")
    (fun () -> ignore (Fp4.of_code (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Fp4.of_code: code out of range")
    (fun () -> ignore (Fp4.of_code 16))

let test_roundtrip_exact () =
  (* Every representable value must quantize to itself. *)
  List.iter
    (fun c ->
      let v = Fp4.to_float c in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "roundtrip %g" v)
        v
        (Fp4.to_float (Fp4.of_float v)))
    Fp4.all

let test_of_float_saturates () =
  Alcotest.(check (float 0.0)) "big" 6.0 (Fp4.to_float (Fp4.of_float 1e9));
  Alcotest.(check (float 0.0)) "big neg" (-6.0) (Fp4.to_float (Fp4.of_float (-1e9)))

let test_of_float_nearest () =
  Alcotest.(check (float 0.0)) "0.6 -> 0.5" 0.5 (Fp4.to_float (Fp4.of_float 0.6));
  Alcotest.(check (float 0.0)) "0.8 -> 1.0" 1.0 (Fp4.to_float (Fp4.of_float 0.8));
  Alcotest.(check (float 0.0)) "2.4 -> 2.0" 2.0 (Fp4.to_float (Fp4.of_float 2.4));
  Alcotest.(check (float 0.0)) "-4.9 -> -6 or -4 (nearest is -4)" (-4.0)
    (Fp4.to_float (Fp4.of_float (-4.9)));
  Alcotest.(check (float 0.0)) "5.1 -> 6" 6.0 (Fp4.to_float (Fp4.of_float 5.1))

let test_neg_involution () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "neg . neg = id" true (Fp4.equal c (Fp4.neg (Fp4.neg c)));
      Alcotest.(check (float 0.0)) "negates value" (-.Fp4.to_float c)
        (Fp4.to_float (Fp4.neg c)))
    Fp4.all

let test_half_units () =
  List.iter
    (fun c ->
      Alcotest.(check (float 0.0)) "half-units exact"
        (2.0 *. Fp4.to_float c)
        (float_of_int (Fp4.to_half_units c));
      match Fp4.of_half_units (Fp4.to_half_units c) with
      | None -> Alcotest.fail "of_half_units must invert"
      | Some c' ->
        Alcotest.(check (float 0.0)) "value preserved" (Fp4.to_float c) (Fp4.to_float c'))
    Fp4.all;
  Alcotest.(check bool) "5 half-units unrepresentable" true
    (Fp4.of_half_units 5 = None)

let prop_of_float_is_nearest =
  QCheck.Test.make ~name:"of_float picks a nearest representable" ~count:500
    QCheck.(float_bound_exclusive 16.0)
    (fun x ->
      let q = Fp4.to_float (Fp4.of_float x) in
      let clamped = Float.min x 6.0 in
      let err = Float.abs (q -. clamped) in
      List.for_all (fun c -> err <= Float.abs (Fp4.to_float c -. clamped) +. 1e-12) Fp4.all)

(* --- Blockscale ------------------------------------------------------ *)

let test_blockscale_roundtrip_representable () =
  (* A block whose elements are already scaled representables must survive. *)
  let xs = [| 6.0; 3.0; -1.5; 0.5; 0.0; -6.0; 2.0; 4.0 |] in
  let b = Blockscale.quantize_block xs in
  Alcotest.(check (array (float 0.0))) "exact" xs (Blockscale.dequantize_block b)

let test_blockscale_scaling () =
  (* Same shape at 2^10 scale: scale must absorb the magnitude. *)
  let xs = Array.map (fun x -> x *. 1024.0) [| 6.0; 3.0; -1.5; 0.5 |] in
  let b = Blockscale.quantize_block xs in
  Alcotest.(check (array (float 0.0))) "exact at scale" xs (Blockscale.dequantize_block b)

let test_blockscale_zero_block () =
  let xs = Array.make 32 0.0 in
  let b = Blockscale.quantize_block xs in
  Alcotest.(check (array (float 0.0))) "zeros" xs (Blockscale.dequantize_block b)

let test_blockscale_vector () =
  let rng = Thelp.rng () in
  let xs = Array.init 100 (fun _ -> Hnlpu_util.Rng.gaussian rng) in
  let ys = Blockscale.dequantize (Blockscale.quantize xs) in
  Alcotest.(check int) "length preserved" 100 (Array.length ys)

let test_blockscale_error_bound () =
  (* Gaussian data: MXFP4 RMS relative error is typically ~10%; assert a
     generous envelope to catch regressions without overfitting. *)
  let rng = Thelp.rng ~seed:99 () in
  let xs = Array.init 4096 (fun _ -> Hnlpu_util.Rng.gaussian rng) in
  let e = Blockscale.quantization_error xs in
  Alcotest.(check bool) (Printf.sprintf "rms rel err %.3f < 0.25" e) true (e < 0.25)

let prop_blockscale_max_in_range =
  QCheck.Test.make ~name:"block scale keeps elements in E2M1 range" ~count:200
    QCheck.(array_of_size (Gen.int_range 1 32) (float_bound_exclusive 1e6))
    (fun xs ->
      let b = Blockscale.quantize_block xs in
      Array.for_all (fun e -> Float.abs (Fp4.to_float e) <= 6.0) b.Blockscale.elements)

(* --- Bitserial -------------------------------------------------------- *)

let test_planes_roundtrip () =
  let v = [| 0; 1; -1; 127; -128; 42; -7; 100 |] in
  let ps = Bitserial.planes ~bits:8 v in
  Alcotest.(check int) "8 planes" 8 (Array.length ps);
  Alcotest.(check (array int)) "roundtrip" v (Bitserial.reconstruct ~bits:8 ps)

let test_plane_weights () =
  Alcotest.(check int) "lsb" 1 (Bitserial.plane_weight ~bits:8 0);
  Alcotest.(check int) "bit 3" 8 (Bitserial.plane_weight ~bits:8 3);
  Alcotest.(check int) "sign plane" (-128) (Bitserial.plane_weight ~bits:8 7)

let test_range_check () =
  Alcotest.(check bool) "raises" true
    (try
       Bitserial.check_range ~bits:8 [| 128 |];
       false
     with Invalid_argument _ -> true)

let prop_planes_roundtrip =
  QCheck.Test.make ~name:"bit-plane roundtrip, arbitrary widths" ~count:300
    QCheck.(pair (int_range 2 16) (list_of_size (Gen.int_range 1 64) int))
    (fun (bits, xs) ->
      let lo = Bitserial.min_int_for bits and hi = Bitserial.max_int_for bits in
      let v = Array.of_list (List.map (fun x -> lo + (abs x mod (hi - lo + 1))) xs) in
      Bitserial.reconstruct ~bits (Bitserial.planes ~bits v) = v)

let prop_dot_by_planes =
  QCheck.Test.make ~name:"bit-serial dot = direct dot" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 64) (pair (int_range (-12) 12) (int_range (-128) 127)))
    (fun pairs ->
      let weights = Array.of_list (List.map fst pairs) in
      let v = Array.of_list (List.map snd pairs) in
      let direct =
        Array.to_list (Array.mapi (fun i w -> w * v.(i)) weights)
        |> List.fold_left ( + ) 0
      in
      Bitserial.dot_by_planes ~bits:8 ~weights v = direct)

let test_popcount_plane () =
  let p = Bytes.of_string "\001\000\001\001\000" in
  Alcotest.(check int) "popcount" 3 (Bitserial.popcount_plane p)

(* --- Csa --------------------------------------------------------------- *)

let test_csa_exact_sum () =
  let xs = [| 1; 2; 3; 4; 5; 6; 7; 255 |] in
  let sum, _ = Csa.reduce ~width:8 xs in
  Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 xs) sum

let test_csa_empty () =
  let sum, stats = Csa.reduce ~width:8 [||] in
  Alcotest.(check int) "zero" 0 sum;
  Alcotest.(check int) "no adders" 0 stats.Csa.full_adders

let test_csa_single () =
  let sum, stats = Csa.reduce ~width:8 [| 200 |] in
  Alcotest.(check int) "identity" 200 sum;
  Alcotest.(check int) "depth 0" 0 stats.Csa.depth

let test_csa_structure_grows () =
  let _, s16 = Csa.reduce ~width:8 (Array.make 16 0) in
  let _, s256 = Csa.reduce ~width:8 (Array.make 256 0) in
  Alcotest.(check bool) "more operands, more adders" true
    (s256.Csa.full_adders > s16.Csa.full_adders);
  Alcotest.(check bool) "more operands, deeper" true (s256.Csa.depth > s16.Csa.depth)

let test_csa_popcount () =
  let p = Bytes.make 100 '\000' in
  for i = 0 to 99 do
    if i mod 3 = 0 then Bytes.set p i '\001'
  done;
  let cnt, stats = Csa.popcount p in
  Alcotest.(check int) "count" 34 cnt;
  Alcotest.(check bool) "uses adders" true (stats.Csa.full_adders > 0)

let test_adder_depth () =
  Alcotest.(check int) "2 rows" 0 (Csa.adder_depth 2);
  Alcotest.(check int) "3 rows" 1 (Csa.adder_depth 3);
  Alcotest.(check bool) "1024 rows needs many rounds" true (Csa.adder_depth 1024 >= 14)

let prop_csa_sum =
  QCheck.Test.make ~name:"CSA reduce = integer sum" ~count:300
    QCheck.(list_of_size (Gen.int_range 0 200) (int_range 0 4095))
    (fun xs ->
      let a = Array.of_list xs in
      fst (Csa.reduce ~width:12 a) = List.fold_left ( + ) 0 xs)

let prop_csa_stats_value_independent =
  QCheck.Test.make ~name:"CSA structure depends only on shape" ~count:100
    QCheck.(pair (int_range 1 100) (list_of_size (Gen.int_range 1 100) (int_range 0 255)))
    (fun (n, xs) ->
      ignore n;
      let a = Array.of_list xs in
      let _, s1 = Csa.reduce ~width:8 a in
      let _, s2 = Csa.reduce ~width:8 (Array.make (Array.length a) 0) in
      s1 = s2)

let qsuite name tests = (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "hnlpu_fp4"
    [
      ( "fp4",
        [
          Alcotest.test_case "decode table" `Quick test_decode_table;
          Alcotest.test_case "of_code bounds" `Quick test_of_code_bounds;
          Alcotest.test_case "roundtrip exact" `Quick test_roundtrip_exact;
          Alcotest.test_case "saturation" `Quick test_of_float_saturates;
          Alcotest.test_case "nearest rounding" `Quick test_of_float_nearest;
          Alcotest.test_case "negation involution" `Quick test_neg_involution;
          Alcotest.test_case "half units" `Quick test_half_units;
        ] );
      qsuite "fp4 properties" [ prop_of_float_is_nearest ];
      ( "blockscale",
        [
          Alcotest.test_case "roundtrip representable" `Quick test_blockscale_roundtrip_representable;
          Alcotest.test_case "power-of-two scaling" `Quick test_blockscale_scaling;
          Alcotest.test_case "zero block" `Quick test_blockscale_zero_block;
          Alcotest.test_case "vector api" `Quick test_blockscale_vector;
          Alcotest.test_case "error bound" `Quick test_blockscale_error_bound;
        ] );
      qsuite "blockscale properties" [ prop_blockscale_max_in_range ];
      ( "bitserial",
        [
          Alcotest.test_case "roundtrip" `Quick test_planes_roundtrip;
          Alcotest.test_case "plane weights" `Quick test_plane_weights;
          Alcotest.test_case "range check" `Quick test_range_check;
          Alcotest.test_case "popcount plane" `Quick test_popcount_plane;
        ] );
      qsuite "bitserial properties" [ prop_planes_roundtrip; prop_dot_by_planes ];
      ( "csa",
        [
          Alcotest.test_case "exact sum" `Quick test_csa_exact_sum;
          Alcotest.test_case "empty" `Quick test_csa_empty;
          Alcotest.test_case "single" `Quick test_csa_single;
          Alcotest.test_case "structure grows" `Quick test_csa_structure_grows;
          Alcotest.test_case "popcount" `Quick test_csa_popcount;
          Alcotest.test_case "adder depth" `Quick test_adder_depth;
        ] );
      qsuite "csa properties" [ prop_csa_sum; prop_csa_stats_value_independent ];
    ]
