type litho_class = Euv_se | Duv_saqp | Duv_sadp | Duv_lele | Duv_se

type region = Feol | Beol_local | Beol_embedding | Beol_top

type layer = {
  layer_name : string;
  region : region;
  litho : litho_class;
  embedding : bool;
}

let cost_units = function
  | Euv_se -> 6.0
  | Duv_saqp | Duv_sadp | Duv_lele | Duv_se -> 1.0

let l name region litho = { layer_name = name; region; litho; embedding = false }

let e name litho = { layer_name = name; region = Beol_embedding; litho; embedding = true }

(* Figure 8's accounting: the homogeneous prefab is 40 DUV + 12 EUV reticles
   (FEOL devices/contacts and local interconnect M0–M7), the embedding
   window M8–M11 is 10 DUV reticles, and the top stack M12+ adds 8 DUV —
   70 reticles, 130 normalized DUV units in total. *)
let n5_stack =
  (* FEOL: 32 reticles (8 EUV critical + 24 DUV), devices and contacts. *)
  let feol =
    [
      l "WELL" Feol Duv_se;
      l "FIN-MANDREL" Feol Euv_se;
      l "FIN-CUT1" Feol Euv_se;
      l "FIN-CUT2" Feol Duv_lele;
      l "DIFF" Feol Duv_lele;
      l "VTN" Feol Duv_se;
      l "VTP" Feol Duv_se;
      l "VTN-LOW" Feol Duv_se;
      l "VTP-LOW" Feol Duv_se;
      l "POLY" Feol Euv_se;
      l "POLY-CUT1" Feol Euv_se;
      l "POLY-CUT2" Feol Duv_lele;
      l "SDB" Feol Duv_lele;
      l "NSD" Feol Duv_se;
      l "PSD" Feol Duv_se;
      l "EPI-N" Feol Duv_se;
      l "EPI-P" Feol Duv_se;
      l "TS" Feol Duv_sadp;
      l "CT-GATE" Feol Euv_se;
      l "CT-DIFF1" Feol Euv_se;
      l "CT-DIFF2" Feol Duv_lele;
      l "CT-STRAP" Feol Duv_lele;
      l "GATE-OPEN" Feol Duv_se;
      l "SALICIDE" Feol Duv_se;
      l "RESISTOR" Feol Duv_se;
      l "CAP-MOM" Feol Duv_se;
      l "ESD" Feol Duv_se;
      l "M0-MANDREL" Feol Euv_se;
      l "M0-CUT" Feol Euv_se;
      l "V0-A" Feol Duv_lele;
      l "V0-B" Feol Duv_lele;
      l "IMPLANT-LDD" Feol Duv_se;
    ]
  in
  (* Local interconnect M1–M7: 20 reticles (4 EUV for M1–M2 critical
     patterning + 16 DUV for M3–M7 SADP and vias). *)
  let local =
    [
      l "M1-MANDREL" Beol_local Euv_se;
      l "M1-CUT" Beol_local Euv_se;
      l "V1" Beol_local Duv_lele;
      l "M2-MANDREL" Beol_local Euv_se;
      l "M2-CUT" Beol_local Euv_se;
      l "V2" Beol_local Duv_lele;
      l "M3-MANDREL" Beol_local Duv_saqp;
      l "M3-CUT" Beol_local Duv_saqp;
      l "V3" Beol_local Duv_lele;
      l "M4-MANDREL" Beol_local Duv_sadp;
      l "M4-CUT" Beol_local Duv_sadp;
      l "V4" Beol_local Duv_lele;
      l "M5-MANDREL" Beol_local Duv_sadp;
      l "M5-CUT" Beol_local Duv_sadp;
      l "V5" Beol_local Duv_lele;
      l "M6-MANDREL" Beol_local Duv_sadp;
      l "M6-CUT" Beol_local Duv_sadp;
      l "V6" Beol_local Duv_lele;
      l "M7-MANDREL" Beol_local Duv_sadp;
      l "M7-CUT" Beol_local Duv_sadp;
    ]
  in
  (* The Metal-Embedding window (paper Appendix B note 3): exactly these
     10 DUV reticles are re-made per chip and per weight update. *)
  let embedding =
    [
      e "VIA7" Duv_se;
      e "M8-MANDREL" Duv_sadp;
      e "M8-CUT" Duv_sadp;
      e "VIA8" Duv_se;
      e "M9-MANDREL" Duv_sadp;
      e "M9-CUT" Duv_sadp;
      e "VIA9" Duv_se;
      e "M10" Duv_se;
      e "VIA10" Duv_se;
      e "M11" Duv_se;
    ]
  in
  (* Power delivery, clock spines and IO: 8 reticles, all cheap DUV
     (Figure 8: "BEOL M12+ Power, Peripheral: 8 DUV, homogeneous"). *)
  let top =
    [
      l "VIA11" Beol_top Duv_se;
      l "M12" Beol_top Duv_se;
      l "VIA12" Beol_top Duv_se;
      l "M13" Beol_top Duv_se;
      l "VIA13" Beol_top Duv_se;
      l "TM0" Beol_top Duv_se;
      l "RDL" Beol_top Duv_se;
      l "PASSIVATION" Beol_top Duv_se;
    ]
  in
  feol @ local @ embedding @ top

let total_layers stack = List.length stack

let euv_layers stack =
  List.length (List.filter (fun x -> x.litho = Euv_se) stack)

let total_units stack =
  List.fold_left (fun acc x -> acc +. cost_units x.litho) 0.0 stack

let embedding_units stack =
  List.fold_left
    (fun acc x -> if x.embedding then acc +. cost_units x.litho else acc)
    0.0 stack

let homogeneous_units stack = total_units stack -. embedding_units stack

let embedding_fraction stack = embedding_units stack /. total_units stack

let no_euv_in_embedding stack =
  List.for_all (fun x -> not (x.embedding && x.litho = Euv_se)) stack
