open Hnlpu_model

let reference_chips = 16.0

let per_chip_weight_bytes =
  Params.hardwired Config.gpt_oss_120b
  *. Config.gpt_oss_120b.Config.bits_per_param /. 8.0 /. reference_chips

let chips_fractional (c : Config.t) =
  Params.total c *. c.Config.bits_per_param /. 8.0 /. per_chip_weight_bytes

let chips c = int_of_float (ceil (chips_fractional c))

type row = {
  model : string;
  params : float;
  bits_per_param : float;
  weight_bytes : float;
  chips : float;
  nre_usd : float;
  paper_nre_usd : float option;
}

let paper_prices =
  [ ("Kimi-K2", 462.0e6); ("DeepSeek-V3", 353.0e6); ("QwQ", 69.0e6); ("Llama-3", 38.0e6) ]

let row ?(anchor = Mask_cost.Pessimistic) (c : Config.t) =
  let frac = chips_fractional c in
  let nre =
    Mask_cost.homogeneous_cost anchor
    +. (frac *. Mask_cost.embedding_cost_per_chip anchor)
  in
  {
    model = c.Config.name;
    params = Params.total c;
    bits_per_param = c.Config.bits_per_param;
    weight_bytes = Params.bytes c;
    chips = frac;
    nre_usd = nre;
    paper_nre_usd = List.assoc_opt c.Config.name paper_prices;
  }

let table4 ?anchor () = List.map (row ?anchor) Config.table4_models
