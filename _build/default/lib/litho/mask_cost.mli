(** Photomask-set pricing and the Sea-of-Neurons sharing arithmetic
    (paper §3.2 and Appendix B note 3).

    The full N5 set is anchored at $15M (optimistic) to $30M (pessimistic);
    costs scale with the normalized units of {!Layer_stack}.  The paper's
    headline numbers at the $30M anchor: homogeneous prefab $27.69M,
    metal-embedding reticles $2.31M per chip, so a 16-chip HNLPU costs
    $64.6M of masks initially ("reduced from $480M to $65M") and $36.9M per
    weight-update re-spin. *)

type anchor = Optimistic | Pessimistic

val full_set_usd : anchor -> float
(** $15M / $30M. *)

val unit_price : anchor -> float
(** Dollars per normalized DUV unit (full set / 130). *)

val homogeneous_cost : anchor -> float
(** The shared prefab set: FEOL + M0–M7 + M12+, incl. all EUV. *)

val embedding_cost_per_chip : anchor -> float
(** The 10 per-chip ME reticles. *)

val sea_of_neurons_initial : anchor -> chips:int -> float
(** Homogeneous set + per-chip ME sets — the initial tapeout mask bill. *)

val sea_of_neurons_respin : anchor -> chips:int -> float
(** ME sets only: the prefab is reused for weight updates. *)

val full_custom : anchor -> chips:int -> float
(** What hardwiring without Sea-of-Neurons costs: one full set per chip
    (the $480M figure for 16 chips). *)

val initial_saving_fraction : anchor -> chips:int -> float
(** 1 - sea_of_neurons/full_custom; the paper quotes -86.5% for the
    initial tapeout at 16 chips. *)

val respin_saving_fraction : anchor -> chips:int -> float
(** The paper quotes -92.3% for a parameter-only re-spin. *)

val range : (anchor -> float) -> float * float
(** Evaluate a cost at both anchors: (optimistic, pessimistic). *)
