type anchor = Optimistic | Pessimistic

let full_set_usd = function Optimistic -> 15.0e6 | Pessimistic -> 30.0e6

let stack = Layer_stack.n5_stack

let unit_price anchor = full_set_usd anchor /. Layer_stack.total_units stack

let homogeneous_cost anchor =
  unit_price anchor *. Layer_stack.homogeneous_units stack

let embedding_cost_per_chip anchor =
  unit_price anchor *. Layer_stack.embedding_units stack

let check_chips chips =
  if chips <= 0 then invalid_arg "Mask_cost: chips must be positive"

let sea_of_neurons_initial anchor ~chips =
  check_chips chips;
  homogeneous_cost anchor +. (float_of_int chips *. embedding_cost_per_chip anchor)

let sea_of_neurons_respin anchor ~chips =
  check_chips chips;
  float_of_int chips *. embedding_cost_per_chip anchor

let full_custom anchor ~chips =
  check_chips chips;
  float_of_int chips *. full_set_usd anchor

let initial_saving_fraction anchor ~chips =
  1.0 -. (sea_of_neurons_initial anchor ~chips /. full_custom anchor ~chips)

let respin_saving_fraction anchor ~chips =
  1.0 -. (sea_of_neurons_respin anchor ~chips /. full_custom anchor ~chips)

let range f = (f Optimistic, f Pessimistic)
