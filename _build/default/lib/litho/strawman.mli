(** The straw-man hardwired LPU of §2.2: a cell-embedding CMAC grid with
    one full photomask set per chip — the $6B estimate that motivates
    Metal-Embedding, and the Figure 2 economics comparison. *)

type t = {
  cmac_transistors : int;  (** Per-weight cost; the paper's "200+" = 208. *)
  area_mm2 : float;        (** Total CMAC grid silicon. *)
  chips : int;             (** Reticle-limited die count. *)
  mask_cost_usd : float;   (** One full set per heterogeneous chip. *)
}

val estimate : ?tech:Hnlpu_gates.Tech.t -> ?anchor:Mask_cost.anchor ->
  Hnlpu_model.Config.t -> t
(** Straw-man for a model: area = hardwired params x 208 T at raw density
    (the paper's "most optimistic estimation" uses no utilization derate),
    chips = area / reticle limit, masks = chips x full set.  Default
    anchor: pessimistic ($30M), matching the paper's $6B quote. *)

(** {1 Figure 2: amortization} *)

type amortization = {
  label : string;
  mask_sets : int;
  mask_bill_usd : float;
  wafers : int;
  wafer_bill_usd : float;
  units : int;
  cost_per_unit_usd : float;
}

val gpu_economics : unit -> amortization
(** The H100 side of Figure 2: one $30M set, 20,000 wafers at $18K,
    ~500,000 units -> $780/unit. *)

val hardwired_economics : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> amortization
(** The straw-man side: ~200 sets, ~5 wafers, 1 unit -> ~$6B/unit. *)
