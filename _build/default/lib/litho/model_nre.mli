(** Per-model chip counts and mask NRE — the paper's Table 4 ("Chip NRE
    prices on various models").

    Chip capacity is derived from the gpt-oss reference design: 16 chips
    hardwire ~115.6B FP4 parameters, i.e. ~3.61 GB of weight storage per
    chip.  A model needing B bytes of hardwired weights takes B / 3.61 GB
    chips; the mask NRE is the Sea-of-Neurons bill (shared homogeneous set
    + ME reticles per chip).

    Table 4 prices are matched within ~1% using the models' native
    mixed-precision footprints (see {!Hnlpu_model.Config.table4_models})
    and pro-rata chip counts at the pessimistic $30M anchor — the paper
    evidently prices fractional reticle areas pro-rata, since e.g. the
    Llama-3 row ($38M) is below the cost of the homogeneous set plus five
    whole embedding sets. *)

val per_chip_weight_bytes : float
(** ~3.61 GB: hardwired gpt-oss params x 4 bits / 8 / 16 chips. *)

val chips_fractional : Hnlpu_model.Config.t -> float
(** Pro-rata chip count for a model's native footprint. *)

val chips : Hnlpu_model.Config.t -> int
(** Ceiling of {!chips_fractional} — the physical die count. *)

type row = {
  model : string;
  params : float;
  bits_per_param : float;
  weight_bytes : float;
  chips : float;          (** Pro-rata. *)
  nre_usd : float;        (** Sea-of-Neurons initial mask bill. *)
  paper_nre_usd : float option;  (** The Table 4 entry when the model is one. *)
}

val table4 : ?anchor:Mask_cost.anchor -> unit -> row list
(** The four Table 4 rows (pessimistic anchor by default, matching the
    paper's prices). *)

val row : ?anchor:Mask_cost.anchor -> Hnlpu_model.Config.t -> row
(** NRE estimate for any model config. *)
