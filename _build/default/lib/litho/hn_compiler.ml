open Hnlpu_neuron

type wire = {
  neuron : int;
  input : int;
  region : int;
  port : int;
  layer : string;
  track : int;
}

type netlist = {
  in_features : int;
  out_features : int;
  region_capacity : int;
  wires : wire list;
}

let layers = [| "M8"; "M9"; "M10"; "M11" |]

let compile ?(slack = 2.0) (g : Gemv.t) =
  let regions = 16 in
  let n = g.Gemv.in_features in
  let balanced = (n + regions - 1) / regions in
  let capacity = int_of_float (ceil (float_of_int balanced *. slack)) in
  (* One track counter per routing layer; wires round-robin across the four
     embedding layers, so each gets a fresh track — congestion-free by
     construction, which DRC then confirms. *)
  let track_next = Array.make (Array.length layers) 0 in
  let wires = ref [] in
  Array.iteri
    (fun neuron row ->
      let port_next = Array.make regions 0 in
      Array.iteri
        (fun input w ->
          let region = Hnlpu_fp4.Fp4.code w in
          let port = port_next.(region) in
          if port >= capacity then
            invalid_arg
              (Printf.sprintf
                 "Hn_compiler.compile: neuron %d region %d overflows capacity %d"
                 neuron region capacity);
          port_next.(region) <- port + 1;
          let li = (neuron + input) mod Array.length layers in
          let track = track_next.(li) in
          track_next.(li) <- track + 1;
          wires := { neuron; input; region; port; layer = layers.(li); track } :: !wires)
        row)
    g.Gemv.weights;
  {
    in_features = n;
    out_features = g.Gemv.out_features;
    region_capacity = capacity;
    wires = List.rev !wires;
  }

let wire_count t = List.length t.wires

type diff_stats = {
  total_wires : int;
  rerouted : int;
  rerouted_fraction : float;
  layers_touched : string list;
}

let diff a b =
  if a.in_features <> b.in_features || a.out_features <> b.out_features then
    invalid_arg "Hn_compiler.diff: shape mismatch";
  if List.length a.wires <> List.length b.wires then
    invalid_arg "Hn_compiler.diff: wire count mismatch";
  let touched = Hashtbl.create 4 in
  let rerouted =
    List.fold_left2
      (fun acc wa wb ->
        if wa.neuron <> wb.neuron || wa.input <> wb.input then
          invalid_arg "Hn_compiler.diff: wire order mismatch";
        if wa.region <> wb.region then begin
          Hashtbl.replace touched wb.layer ();
          acc + 1
        end
        else acc)
      0 a.wires b.wires
  in
  let total = List.length a.wires in
  {
    total_wires = total;
    rerouted;
    rerouted_fraction = float_of_int rerouted /. float_of_int (max 1 total);
    layers_touched =
      List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) touched []);
  }

let to_tcl t =
  let buf = Buffer.create (64 * wire_count t) in
  Buffer.add_string buf
    (Printf.sprintf "# hn-netlist in=%d out=%d cap=%d\n" t.in_features
       t.out_features t.region_capacity);
  List.iter
    (fun w ->
      Buffer.add_string buf
        (Printf.sprintf
           "route -neuron %d -input %d -region %d -port %d -layer %s -track %d\n"
           w.neuron w.input w.region w.port w.layer w.track))
    t.wires;
  Buffer.contents buf

let of_tcl s =
  let lines = String.split_on_char '\n' s in
  let header, rest =
    match lines with
    | h :: rest -> (h, rest)
    | [] -> failwith "Hn_compiler.of_tcl: empty script"
  in
  let in_features, out_features, region_capacity =
    try Scanf.sscanf header "# hn-netlist in=%d out=%d cap=%d" (fun a b c -> (a, b, c))
    with Scanf.Scan_failure _ | End_of_file ->
      failwith "Hn_compiler.of_tcl: bad header"
  in
  let wires =
    List.filter_map
      (fun line ->
        if String.trim line = "" then None
        else
          try
            Some
              (Scanf.sscanf line
                 "route -neuron %d -input %d -region %d -port %d -layer %s -track %d"
                 (fun neuron input region port layer track ->
                   { neuron; input; region; port; layer; track }))
          with Scanf.Scan_failure _ | End_of_file ->
            failwith ("Hn_compiler.of_tcl: bad line: " ^ line))
      rest
  in
  { in_features; out_features; region_capacity; wires }

let extract_weights t =
  let m =
    Array.init t.out_features (fun _ -> Array.make t.in_features Hnlpu_fp4.Fp4.zero)
  in
  let seen = Array.make_matrix t.out_features t.in_features false in
  List.iter
    (fun w ->
      if w.neuron < 0 || w.neuron >= t.out_features || w.input < 0
         || w.input >= t.in_features
      then failwith "Hn_compiler.extract_weights: wire out of bank";
      if seen.(w.neuron).(w.input) then
        failwith "Hn_compiler.extract_weights: duplicate wire";
      seen.(w.neuron).(w.input) <- true;
      m.(w.neuron).(w.input) <- Hnlpu_fp4.Fp4.of_code w.region)
    t.wires;
  Array.iteri
    (fun o row ->
      Array.iteri
        (fun i covered ->
          if not covered then
            failwith
              (Printf.sprintf "Hn_compiler.extract_weights: missing wire %d.%d" o i))
        row;
      ignore o)
    seen;
  m

let lvs t (g : Gemv.t) =
  t.in_features = g.Gemv.in_features
  && t.out_features = g.Gemv.out_features
  && wire_count t = Gemv.total_macs g
  &&
  try
    let extracted = extract_weights t in
    let ok = ref true in
    Array.iteri
      (fun o row ->
        Array.iteri
          (fun i w ->
            if not (Hnlpu_fp4.Fp4.equal w extracted.(o).(i)) then ok := false)
          row)
      g.Gemv.weights;
    !ok
  with Failure _ -> false

type drc_violation =
  | Track_conflict of string * int
  | Port_overflow of int * int
  | Out_of_window of string

let drc ?tracks_per_layer t =
  let limit =
    match tracks_per_layer with
    | Some n -> n
    | None -> (wire_count t / Array.length layers) + 2
  in
  let violations = ref [] in
  let used = Hashtbl.create 1024 in
  let ports = Hashtbl.create 1024 in
  List.iter
    (fun w ->
      if not (Array.exists (( = ) w.layer) layers) then
        violations := Out_of_window w.layer :: !violations;
      if w.track >= limit then violations := Out_of_window w.layer :: !violations;
      let key = (w.layer, w.track) in
      if Hashtbl.mem used key then
        violations := Track_conflict (w.layer, w.track) :: !violations
      else Hashtbl.add used key ();
      let pkey = (w.neuron, w.region) in
      let count = (try Hashtbl.find ports pkey with Not_found -> 0) + 1 in
      Hashtbl.replace ports pkey count;
      if count > t.region_capacity then
        violations := Port_overflow (w.neuron, w.region) :: !violations)
    t.wires;
  List.rev !violations

let report t =
  let per_layer = Hashtbl.create 8 in
  let region_fill = Array.make 16 0 in
  List.iter
    (fun w ->
      Hashtbl.replace per_layer w.layer
        ((try Hashtbl.find per_layer w.layer with Not_found -> 0) + 1);
      region_fill.(w.region) <- region_fill.(w.region) + 1)
    t.wires;
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "netlist: %d wires over %dx%d bank (region capacity %d)\n"
       (wire_count t) t.in_features t.out_features t.region_capacity);
  Array.iter
    (fun l ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %d wires\n" l
           (try Hashtbl.find per_layer l with Not_found -> 0)))
    layers;
  Buffer.add_string buf "  region fill: ";
  Array.iteri
    (fun c n -> Buffer.add_string buf (Printf.sprintf "%d:%d " c n))
    region_fill;
  Buffer.add_char buf '\n';
  Buffer.contents buf
