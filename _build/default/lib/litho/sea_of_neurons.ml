open Hnlpu_model

type tile_spec = { ports : int; tiles_per_chip : int }

type projection_demand = {
  proj_name : string;
  fan_in : int;
  neurons : int;
  tiles_per_neuron : int;
  port_utilization : float;
}

type plan = {
  model : string;
  demands : projection_demand list;
  tiles_needed : float;
  chips_needed : int;
  avg_port_utilization : float;
  fits_reference_16 : bool;
}

(* Uniform accounting rule: whole-matrix fan-ins for every model (the
   per-chip mapping differs per model, so the comparable quantity is the
   undivided projection shape); the prefab supply below is derived from
   gpt-oss under the same rule, so the reference model lands on 16 chips
   by construction. *)

let demand name ~fan_in ~neurons (tile : tile_spec) =
  let tiles_per_neuron = (fan_in + tile.ports - 1) / tile.ports in
  {
    proj_name = name;
    fan_in;
    neurons;
    tiles_per_neuron;
    port_utilization =
      float_of_int fan_in /. float_of_int (tiles_per_neuron * tile.ports);
  }

let layer_demands (c : Config.t) tile =
  let experts = max 1 c.Config.experts in
  [
    demand "Wq" ~fan_in:c.Config.hidden ~neurons:(Config.q_dim c) tile;
    demand "Wk" ~fan_in:c.Config.hidden ~neurons:(Config.kv_dim c) tile;
    demand "Wv" ~fan_in:c.Config.hidden ~neurons:(Config.kv_dim c) tile;
    demand "Wo" ~fan_in:(Config.q_dim c) ~neurons:c.Config.hidden tile;
  ]
  @ (if c.Config.experts = 0 then []
     else [ demand "Wrout" ~fan_in:c.Config.hidden ~neurons:c.Config.experts tile ])
  @ [
      demand "Wup"
        ~fan_in:c.Config.hidden
        ~neurons:(experts * c.Config.expert_hidden)
        tile;
      demand "Wgate"
        ~fan_in:c.Config.hidden
        ~neurons:(experts * c.Config.expert_hidden)
        tile;
      demand "Wdown"
        ~fan_in:c.Config.expert_hidden
        ~neurons:(experts * c.Config.hidden)
        tile;
    ]

let tiles_of_demands layers demands =
  float_of_int layers
  *. List.fold_left
       (fun acc d -> acc +. float_of_int (d.neurons * d.tiles_per_neuron))
       0.0 demands

let port_slack = 1.25

let reference_tiles_per_chip ports =
  let c = Config.gpt_oss_120b in
  let tile = { ports; tiles_per_chip = 0 } in
  let total = tiles_of_demands c.Config.num_layers (layer_demands c tile) in
  int_of_float (ceil (total /. 16.0))

let hnlpu_tile =
  let ports =
    int_of_float
      (float_of_int Config.gpt_oss_120b.Config.hidden *. port_slack)
  in
  { ports; tiles_per_chip = reference_tiles_per_chip ports }

let plan ?(tile = hnlpu_tile) (c : Config.t) =
  Config.validate c;
  if c.Config.total_params_override <> None then
    invalid_arg "Sea_of_neurons.plan: footprint-only model has no shapes";
  let demands = layer_demands c tile in
  let tiles_needed = tiles_of_demands c.Config.num_layers demands in
  let chips_needed =
    int_of_float (ceil (tiles_needed /. float_of_int tile.tiles_per_chip))
  in
  let weight_total, weighted_util =
    List.fold_left
      (fun (wt, wu) d ->
        let weights = float_of_int (d.fan_in * d.neurons) in
        (wt +. weights, wu +. (weights *. d.port_utilization)))
      (0.0, 0.0) demands
  in
  {
    model = c.Config.name;
    demands;
    tiles_needed;
    chips_needed;
    avg_port_utilization = weighted_util /. weight_total;
    fits_reference_16 = chips_needed <= 16;
  }

let utilization_penalty ?tile (c : Config.t) =
  let p = plan ?tile c in
  let ideal = Model_nre.chips_fractional c in
  float_of_int p.chips_needed /. ideal
