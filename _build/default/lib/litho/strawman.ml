open Hnlpu_gates
open Hnlpu_model

type t = {
  cmac_transistors : int;
  area_mm2 : float;
  chips : int;
  mask_cost_usd : float;
}

let paper_cmac_transistors = 208

let estimate ?(tech = Tech.n5) ?(anchor = Mask_cost.Pessimistic) config =
  let params = Params.hardwired config in
  let area_mm2 =
    params *. float_of_int paper_cmac_transistors
    /. tech.Tech.transistor_density_per_mm2
  in
  let chips = int_of_float (ceil (area_mm2 /. tech.Tech.reticle_limit_mm2)) in
  {
    cmac_transistors = paper_cmac_transistors;
    area_mm2;
    chips;
    mask_cost_usd = Mask_cost.full_custom anchor ~chips;
  }

type amortization = {
  label : string;
  mask_sets : int;
  mask_bill_usd : float;
  wafers : int;
  wafer_bill_usd : float;
  units : int;
  cost_per_unit_usd : float;
}

let gpu_economics () =
  (* Figure 2's H100 numbers: 1 set, 20,000 wafers at $18K, 500,000 units. *)
  let mask_bill = 30.0e6 and wafers = 20_000 in
  let wafer_bill = float_of_int wafers *. 18_000.0 in
  let units = 500_000 in
  {
    label = "500,000 GPUs";
    mask_sets = 1;
    mask_bill_usd = mask_bill;
    wafers;
    wafer_bill_usd = wafer_bill;
    units;
    cost_per_unit_usd = (mask_bill +. wafer_bill) /. float_of_int units;
  }

let hardwired_economics ?(tech = Tech.n5) config =
  let s = estimate ~tech config in
  (* One unit needs [chips] good dies; each wafer yields tens of
     reticle-sized dies, but the dies are all different, so wafer count is
     bounded below by exposure-field assortment: ~5 wafers (Figure 2). *)
  let wafers = 5 in
  let wafer_bill = float_of_int wafers *. 18_000.0 in
  {
    label = "1 Hardwired LLM";
    mask_sets = s.chips;
    mask_bill_usd = s.mask_cost_usd;
    wafers;
    wafer_bill_usd = wafer_bill;
    units = 1;
    cost_per_unit_usd = s.mask_cost_usd +. wafer_bill;
  }
