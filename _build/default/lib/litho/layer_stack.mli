(** The photomask layer stack of a 5 nm process (paper §3.2, Figures 7–8,
    Appendix B note 3).

    Each physical layer is patterned by one reticle whose cost depends on
    its lithography class.  The paper's normalized model: a standard 193i
    DUV reticle is 1 unit; an EUV reticle 6 units.  The N5 stack has 12 EUV
    + 58 DUV layers = 130 units, anchored to $15M (optimistic) – $30M
    (pessimistic) for the full set.

    The Metal-Embedding layers are the 10 DUV reticles covering VIA7 through
    M11; everything else — all FEOL device layers, all EUV reticles, local
    interconnect, and the M12+ power/peripheral layers — is homogeneous
    across chips and across weight-update re-spins. *)

type litho_class =
  | Euv_se        (** EUV single exposure — finest features. *)
  | Duv_saqp      (** 193i self-aligned quadruple patterning (M0–M3 class). *)
  | Duv_sadp      (** 193i self-aligned double patterning (M4–M9 class). *)
  | Duv_lele      (** 193i litho-etch-litho-etch double patterning. *)
  | Duv_se        (** 193i single exposure (M10+, cheap). *)

type region = Feol | Beol_local | Beol_embedding | Beol_top
(** Front-end (devices/contacts); local interconnect M0–M7; the
    metal-embedding window M8–M11; power/clock/IO M12+. *)

type layer = {
  layer_name : string;
  region : region;
  litho : litho_class;
  embedding : bool;  (** true for the 10 per-chip ME reticles. *)
}

val cost_units : litho_class -> float
(** Normalized reticle cost: EUV = 6 units, any DUV flavour = 1 (the
    paper's weighting; multi-patterning multiplies reticle *count*, which
    the stack below already enumerates). *)

val n5_stack : layer list
(** The full 70-reticle N5 stack: 12 EUV + 58 DUV, of which 10 are the
    embedding layers (VIA7, M8 mandrel, M8 cut, VIA8, M9 mandrel, M9 cut,
    VIA9, M10, VIA10, M11). *)

val total_layers : layer list -> int

val euv_layers : layer list -> int

val total_units : layer list -> float

val embedding_units : layer list -> float

val homogeneous_units : layer list -> float

val embedding_fraction : layer list -> float
(** Paper: 10/130 = 7.7% of the mask-set value. *)

val no_euv_in_embedding : layer list -> bool
(** The headline manufacturability claim: every EUV reticle is shared. *)
