(** The prefabricated Sea-of-Neurons array as a *resource*, and what fits
    on it (paper §3.2 and §8 future work 1, "Enhanced Flexibility").

    The prefab die is an array of fixed HN tiles: each tile is one
    hardwired neuron with a fixed input-port budget (gpt-oss's hidden size
    x slack) and 16 POPCNT regions.  Metal-embedding a model means binding
    its output neurons onto tiles:

    - a projection whose fan-in fits the tile's ports uses one tile per
      output neuron (possibly wasting ports — {e fragmentation});
    - a wider fan-in chains multiple tiles per neuron (their partial sums
      combine through the tile's cascade port).

    So the same homogeneous mask set serves other models — at a
    utilization penalty this module quantifies.  Re-spinning a model with
    different hyper-parameters is a metal-only change as long as the tile
    demand fits the prefab supply. *)

type tile_spec = {
  ports : int;           (** Input ports per tile (2880 x 1.25 slack). *)
  tiles_per_chip : int;  (** Prefab supply on one 573 mm² HN array. *)
}

val hnlpu_tile : tile_spec
(** The gpt-oss-120B-shaped prefab: tiles sized for hidden 2880. *)

type projection_demand = {
  proj_name : string;
  fan_in : int;
  neurons : int;          (** Output neurons, per layer. *)
  tiles_per_neuron : int; (** Chaining factor. *)
  port_utilization : float; (** fan_in / (tiles x ports). *)
}

type plan = {
  model : string;
  demands : projection_demand list;  (** One entry per distinct projection. *)
  tiles_needed : float;              (** Whole model, all layers. *)
  chips_needed : int;
  avg_port_utilization : float;      (** Weight-weighted. *)
  fits_reference_16 : bool;          (** Within the 16-chip gpt-oss build. *)
}

val plan : ?tile:tile_spec -> Hnlpu_model.Config.t -> plan
(** Raises on footprint-only models (no shapes to bind). *)

val utilization_penalty : ?tile:tile_spec -> Hnlpu_model.Config.t -> float
(** chips_needed / ideal pro-rata chips — 1.0 when the model's shapes
    tile perfectly (gpt-oss by construction); larger when fragmentation
    or chaining wastes ports. *)
