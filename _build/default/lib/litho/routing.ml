open Hnlpu_model

type t = {
  wires : float;
  supply_m : float;
  demand_m : float;
  utilization : float;
  avg_resistance_ohm : float;
  avg_capacitance_ff : float;
  wire_delay_ps : float;
  congestion_free : bool;
}

let mean_wire_length_um = 2.0

(* Half-pitches from the paper's §3.2 litho ladder: M8/M9 are SADP at
   ~40 nm half-pitch, M10/M11 single-exposure at ~60 nm. *)
let pitches_nm = [ 80.0; 80.0; 120.0; 120.0 ]

(* Minimum-width upper-metal copper plus the V7..V10 via stack and the
   POPCNT port load. *)
let r_per_um_ohm = 37.0
let r_via_stack_ohm = 90.0
let c_per_um_ff = 0.22
let c_fixed_ff = 7.36

let hn_array_area_mm2 ?tech c = Hnlpu_chip.Hn_array.area_mm2 ?tech c

let supply_m ?tech c =
  let area_m2 = hn_array_area_mm2 ?tech c *. 1e-6 in
  List.fold_left (fun acc pitch -> acc +. (area_m2 /. (pitch *. 1e-9))) 0.0 pitches_nm

let analyze ?tech (c : Config.t) =
  let wires = Hnlpu_chip.Hn_array.weights_per_chip c in
  let supply = supply_m ?tech c in
  let demand = wires *. mean_wire_length_um *. 1e-6 in
  let utilization = demand /. supply in
  let r = (r_per_um_ohm *. mean_wire_length_um) +. r_via_stack_ohm in
  let cap = (c_per_um_ff *. mean_wire_length_um) +. c_fixed_ff in
  {
    wires;
    supply_m = supply;
    demand_m = demand;
    utilization;
    avg_resistance_ohm = r;
    avg_capacitance_ff = cap;
    wire_delay_ps = 0.69 *. r *. cap *. 1e-3;
    congestion_free = utilization < 0.70;
  }

let max_embeddable_weights ?tech c =
  0.70 *. supply_m ?tech c /. (mean_wire_length_um *. 1e-6)
