lib/litho/model_nre.ml: Config Hnlpu_model List Mask_cost Params
