lib/litho/hn_compiler.mli: Hnlpu_fp4 Hnlpu_neuron
