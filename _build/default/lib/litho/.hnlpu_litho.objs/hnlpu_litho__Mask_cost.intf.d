lib/litho/mask_cost.mli:
