lib/litho/routing.ml: Config Hnlpu_chip Hnlpu_model List
