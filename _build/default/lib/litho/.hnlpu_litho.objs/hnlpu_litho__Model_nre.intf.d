lib/litho/model_nre.mli: Hnlpu_model Mask_cost
