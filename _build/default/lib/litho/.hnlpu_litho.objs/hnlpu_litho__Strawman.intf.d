lib/litho/strawman.mli: Hnlpu_gates Hnlpu_model Mask_cost
