lib/litho/strawman.ml: Hnlpu_gates Hnlpu_model Mask_cost Params Tech
