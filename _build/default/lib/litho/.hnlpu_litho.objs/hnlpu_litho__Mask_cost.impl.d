lib/litho/mask_cost.ml: Layer_stack
