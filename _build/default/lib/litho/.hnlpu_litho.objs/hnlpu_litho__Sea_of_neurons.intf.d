lib/litho/sea_of_neurons.mli: Hnlpu_model
