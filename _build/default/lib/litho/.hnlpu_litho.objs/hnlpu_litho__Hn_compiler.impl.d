lib/litho/hn_compiler.ml: Array Buffer Gemv Hashtbl Hnlpu_fp4 Hnlpu_neuron List Printf Scanf String
