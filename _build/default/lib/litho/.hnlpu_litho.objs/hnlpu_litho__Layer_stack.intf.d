lib/litho/layer_stack.mli:
