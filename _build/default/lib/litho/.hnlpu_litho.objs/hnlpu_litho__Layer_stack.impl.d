lib/litho/layer_stack.ml: List
