lib/litho/routing.mli: Hnlpu_gates Hnlpu_model
