lib/litho/sea_of_neurons.ml: Config Hnlpu_model List Model_nre
