(** Metal-Embedding routing feasibility (paper §7.1).

    The sign-off claims the reproduction targets: routing density on the
    ME layers (M8–M11) below 70% with a congestion-free layout, parasitic
    extraction at an average R = 164 ohm and C = 7.8 fF per embedding
    wire, and signal integrity compatible with 1 GHz operation.

    Model: every hardwired weight is one wire on the M8–M11 window
    (mandrel-patterned M8/M9 at ~80 nm pitch, single-exposure M10/M11 at
    ~120 nm); supply is track-length over the HN array footprint, demand
    is wires x mean length.  The mean wire length (default 2 um) is
    calibrated to the paper's <70% density — and independently consistent
    with its published parasitics, which correspond to a few microns of
    minimum-width upper-metal copper plus the via stack. *)

type t = {
  wires : float;                  (** Embedding wires per chip. *)
  supply_m : float;               (** Track length available on M8–M11. *)
  demand_m : float;               (** Track length consumed. *)
  utilization : float;            (** Paper: < 0.70. *)
  avg_resistance_ohm : float;     (** Paper: 164. *)
  avg_capacitance_ff : float;     (** Paper: 7.8. *)
  wire_delay_ps : float;          (** 0.69 RC — must be << 1000 ps. *)
  congestion_free : bool;
}

val mean_wire_length_um : float

val analyze : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> t

val max_embeddable_weights :
  ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> float
(** Weights per chip at exactly the 70% routing ceiling — headroom check
    for larger models on the same die. *)
