lib/system/scheduler.mli: Hnlpu_gates Hnlpu_model Hnlpu_util
