lib/system/mapping.ml: Config Fun Hnlpu_model Hnlpu_noc Hnlpu_tensor List Params Topology
