lib/system/trace.ml: Array Config Float Hnlpu_gates Hnlpu_model List Perf Printf
