lib/system/slo.mli: Hnlpu_model
