lib/system/traffic.mli: Hnlpu_gates Hnlpu_model Hnlpu_util
