lib/system/mapping.mli: Hnlpu_model Hnlpu_noc Hnlpu_tensor
