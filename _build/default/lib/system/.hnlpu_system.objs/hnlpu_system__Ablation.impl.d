lib/system/ablation.ml: Array Config Hnlpu_chip Hnlpu_gates Hnlpu_litho Hnlpu_model Hnlpu_noc Hnlpu_util Link List Perf Topology
