lib/system/trace.mli: Hnlpu_gates Hnlpu_model
