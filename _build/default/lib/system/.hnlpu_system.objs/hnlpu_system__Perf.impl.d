lib/system/perf.ml: Attention_buffer Config Control_unit Hbm Hn_array Hnlpu_chip Hnlpu_gates Hnlpu_model Hnlpu_noc Link List Vex
