lib/system/slo.ml: Array Hnlpu_util List Perf Rng Scheduler Stats
