lib/system/dataflow.mli: Hnlpu_model Hnlpu_noc Hnlpu_tensor
