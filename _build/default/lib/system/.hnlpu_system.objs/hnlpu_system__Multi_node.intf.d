lib/system/multi_node.mli: Hnlpu_gates Hnlpu_model Scheduler
