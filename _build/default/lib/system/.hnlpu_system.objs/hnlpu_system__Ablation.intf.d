lib/system/ablation.mli: Hnlpu_gates Hnlpu_model Hnlpu_noc Hnlpu_util
