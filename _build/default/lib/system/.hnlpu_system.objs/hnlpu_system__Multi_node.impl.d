lib/system/multi_node.ml: Array Float List Scheduler
