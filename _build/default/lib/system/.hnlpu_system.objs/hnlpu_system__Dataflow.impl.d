lib/system/dataflow.ml: Array Collective Config Float Hnlpu_model Hnlpu_noc Hnlpu_tensor List Mapping Mat Rope Topology Vec Weights
