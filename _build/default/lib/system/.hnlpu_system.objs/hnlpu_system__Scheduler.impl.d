lib/system/scheduler.ml: Hashtbl Heap Hnlpu_util List Perf Queue Rng
