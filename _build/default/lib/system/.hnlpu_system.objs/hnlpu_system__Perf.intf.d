lib/system/perf.mli: Hnlpu_gates Hnlpu_model Hnlpu_noc
