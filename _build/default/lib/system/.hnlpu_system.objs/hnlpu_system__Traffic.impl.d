lib/system/traffic.ml: Config Float Hnlpu_model Hnlpu_noc Hnlpu_util Link List Perf Printf Schedule Topology
