open Hnlpu_model
open Hnlpu_noc

type slice = { row_lo : int; row_len : int; col_lo : int; col_len : int }

let grid = Topology.rows (* = cols = 4 *)

let check_mappable (c : Config.t) =
  Config.validate c;
  if c.Config.total_params_override <> None then
    invalid_arg "Mapping: external (footprint-only) model";
  let fail what = invalid_arg ("Mapping: " ^ what ^ " not divisible for the 4x4 grid") in
  if c.Config.hidden mod grid <> 0 then fail "hidden";
  if Config.q_dim c mod grid <> 0 then fail "q_dim";
  if Config.kv_dim c mod grid <> 0 then fail "kv_dim";
  if c.Config.experts > 0 && c.Config.experts mod Topology.chips <> 0 then
    fail "experts"

let qkv_slice out_dim (c : Config.t) ~chip =
  let r = Topology.row_of chip and col = Topology.col_of chip in
  let row_len = c.Config.hidden / grid in
  let col_len = out_dim / grid in
  { row_lo = r * row_len; row_len; col_lo = col * col_len; col_len }

let wq_slice c ~chip = qkv_slice (Config.q_dim c) c ~chip
let wk_slice c ~chip = qkv_slice (Config.kv_dim c) c ~chip
let wv_slice c ~chip = qkv_slice (Config.kv_dim c) c ~chip

let wo_slice (c : Config.t) ~chip =
  let r = Topology.row_of chip and col = Topology.col_of chip in
  let row_len = Config.q_dim c / grid in
  let col_len = c.Config.hidden / grid in
  { row_lo = col * row_len; row_len; col_lo = r * col_len; col_len }

let x_slice (c : Config.t) ~chip =
  let r = Topology.row_of chip in
  let len = c.Config.hidden / grid in
  (r * len, len)

let experts_of_chip (c : Config.t) ~chip =
  if not (Topology.valid chip) then invalid_arg "Mapping.experts_of_chip";
  List.filter (fun e -> e mod Topology.chips = chip) (List.init c.Config.experts Fun.id)

let chip_of_expert (c : Config.t) ~expert =
  if expert < 0 || expert >= c.Config.experts then
    invalid_arg "Mapping.chip_of_expert";
  expert mod Topology.chips

let weights_per_chip_per_layer (c : Config.t) ~chip =
  let area s = s.row_len * s.col_len in
  let router = Params.router_per_layer c (* replicated *) in
  let experts =
    List.length (experts_of_chip c ~chip) * 3 * c.Config.hidden * c.Config.expert_hidden
  in
  area (wq_slice c ~chip) + area (wk_slice c ~chip) + area (wv_slice c ~chip)
  + area (wo_slice c ~chip) + router + experts

let extract m s =
  Hnlpu_tensor.Mat.sub_cols
    (Hnlpu_tensor.Mat.sub_rows m ~lo:s.row_lo ~len:s.row_len)
    ~lo:s.col_lo ~len:s.col_len
