(** Multi-node fleet simulation — the high-volume deployment of Table 3
    (50 HNLPU systems) as an operational model, not just a cost column.

    A front-end dispatcher spreads arriving requests over N independent
    HNLPU nodes; each node runs its own continuous-batching pipeline
    ({!Scheduler}).  Two policies:

    - [Round_robin]: oblivious spreading;
    - [Least_loaded]: join the node with the least outstanding work
      (token-weighted), the standard serving-tier policy.

    The interesting outputs are aggregate throughput (must scale ~linearly
    — nodes share nothing, the paper's point about router-less modules)
    and tail latency under imbalance. *)

type policy = Round_robin | Least_loaded

type node_stat = {
  node : int;
  requests : int;
  tokens : int;
  occupancy : float;
}

type result = {
  nodes : int;
  total_tokens : int;
  makespan_s : float;
  aggregate_throughput_tokens_per_s : float;
  per_node : node_stat list;
  imbalance : float;
      (** max node tokens / mean node tokens; 1.0 = perfectly even. *)
}

val simulate :
  ?tech:Hnlpu_gates.Tech.t -> ?context:int -> ?policy:policy ->
  nodes:int -> Hnlpu_model.Config.t -> Scheduler.request list -> result

val scaling_efficiency :
  ?policy:policy -> nodes:int -> Hnlpu_model.Config.t ->
  Scheduler.request list -> float
(** Makespan speedup over a single node, normalized by the fleet size —
    ~1.0 for a saturating workload under balanced dispatch (shared-nothing
    nodes scale linearly). *)
