open Hnlpu_util

type objectives = { ttft_p95_s : float; e2e_p95_s : float }

let interactive = { ttft_p95_s = 0.2; e2e_p95_s = 30.0 }

type evaluation = {
  rate_per_s : float;
  throughput_tokens_per_s : float;
  ttft_p95 : float;
  e2e_p95 : float;
  occupancy : float;
  meets : bool;
}

let evaluate ?(seed = 1234) ?(requests = 150) ?(mean_prefill = 256)
    ?(mean_decode = 128) config obj ~rate_per_s =
  if rate_per_s <= 0.0 then invalid_arg "Slo.evaluate: rate must be positive";
  let rng = Rng.create seed in
  let reqs =
    Scheduler.workload rng ~n:requests ~rate_per_s ~mean_prefill ~mean_decode
  in
  let r = Scheduler.simulate config reqs in
  let of_completed f =
    Array.of_list (List.map f r.Scheduler.completed_requests)
  in
  let ttft =
    of_completed (fun c ->
        c.Scheduler.first_token_s -. c.Scheduler.request.Scheduler.arrival_s)
  in
  let e2e =
    of_completed (fun c ->
        c.Scheduler.finish_s -. c.Scheduler.request.Scheduler.arrival_s)
  in
  let ttft_p95 = Stats.percentile ttft 0.95 in
  let e2e_p95 = Stats.percentile e2e 0.95 in
  {
    rate_per_s;
    throughput_tokens_per_s = r.Scheduler.throughput_tokens_per_s;
    ttft_p95;
    e2e_p95;
    occupancy = r.Scheduler.mean_slot_occupancy;
    meets = ttft_p95 <= obj.ttft_p95_s && e2e_p95 <= obj.e2e_p95_s;
  }

let max_rate ?seed ?requests ?(mean_prefill = 256) ?(mean_decode = 128)
    ?(tolerance = 0.05) config obj =
  if tolerance <= 0.0 then invalid_arg "Slo.max_rate: tolerance must be positive";
  let meets rate =
    (evaluate ?seed ?requests ~mean_prefill ~mean_decode config obj ~rate_per_s:rate)
      .meets
  in
  (* Upper bound: the token-throughput ceiling over the mean request size. *)
  let ceiling =
    Perf.throughput_tokens_per_s config ~context:2048
    /. float_of_int (mean_prefill + mean_decode)
  in
  if not (meets 1.0) then 0.0
  else begin
    let lo = ref 1.0 and hi = ref (2.0 *. ceiling) in
    (* Ensure the top is infeasible; if even 2x ceiling passes (tiny
       workloads), report it. *)
    if meets !hi then !hi
    else begin
      while (!hi -. !lo) /. !hi > tolerance do
        let mid = sqrt (!lo *. !hi) in
        if meets mid then lo := mid else hi := mid
      done;
      !lo
    end
  end
