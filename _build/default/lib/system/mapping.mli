(** Model-to-chip mapping (paper §4.2 and Appendix A).

    The 4x4 grid partitions each layer as follows (chip (r, c) at row [r],
    column [c]):

    - Wq/Wk/Wv are column-partitioned across column groups (column [c]
      owns output columns [c * q_dim/4 ..]), and row-partitioned within a
      column (chip row [r] owns input rows [r * hidden/4 ..]) — each chip
      holds a (hidden/4, q_dim/4) slice of Wq.
    - Wo is the transpose arrangement: column [c] owns *input* rows
      [c * q_dim/4 ..], chip row [r] owns output columns [r * hidden/4 ..].
    - The router is replicated on all 16 chips.
    - Experts are distributed round-robin: expert [e] lives on chip
      [e mod 16] (8 experts per chip for gpt-oss's 128).
    - KV cache: position [l] of column [c]'s heads lives on chip
      [(l mod 4, c)]. *)

type slice = { row_lo : int; row_len : int; col_lo : int; col_len : int }

val check_mappable : Hnlpu_model.Config.t -> unit
(** Raises [Invalid_argument] unless hidden, q_dim and kv_dim divide by 4
    and experts divide evenly over 16 chips (or there are none). *)

val wq_slice : Hnlpu_model.Config.t -> chip:Hnlpu_noc.Topology.chip -> slice
val wk_slice : Hnlpu_model.Config.t -> chip:Hnlpu_noc.Topology.chip -> slice
val wv_slice : Hnlpu_model.Config.t -> chip:Hnlpu_noc.Topology.chip -> slice
val wo_slice : Hnlpu_model.Config.t -> chip:Hnlpu_noc.Topology.chip -> slice

val x_slice : Hnlpu_model.Config.t -> chip:Hnlpu_noc.Topology.chip -> int * int
(** (offset, length) of the activation slice chip (r, c) consumes for the
    QKV projections: rows [r * hidden/4 ..]. *)

val experts_of_chip : Hnlpu_model.Config.t -> chip:Hnlpu_noc.Topology.chip -> int list

val chip_of_expert : Hnlpu_model.Config.t -> expert:int -> Hnlpu_noc.Topology.chip

val weights_per_chip_per_layer : Hnlpu_model.Config.t -> chip:Hnlpu_noc.Topology.chip -> int
(** Parameter count a chip hardwires for one layer — balanced across chips
    by construction (the paper's workload-balance argument). *)

val extract : Hnlpu_tensor.Mat.t -> slice -> Hnlpu_tensor.Mat.t
(** Materialize a slice of a weight matrix. *)
