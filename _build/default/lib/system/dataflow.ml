open Hnlpu_tensor
open Hnlpu_model
open Hnlpu_noc

type chip_layer_weights = {
  wq : Mat.t;
  wk : Mat.t;
  wv : Mat.t;
  wo : Mat.t;
  router : Mat.t option;  (** Replicated. *)
  experts : (int * Weights.expert) list;  (** Resident experts. *)
}

type kv_entry = { pos : int; k : Vec.t; v : Vec.t }
(** One cached position of a column's KV heads (width kv_dim / 4). *)

type collective_counts = {
  col_all_reduce : int;
  row_all_reduce : int;
  col_all_gather : int;
  all_chip_all_reduce : int;
}

type t = {
  weights : Weights.t;
  config : Config.t;
  chip_weights : chip_layer_weights array array;  (** [layer].[chip] *)
  kv : kv_entry list ref array array;  (** [layer].[chip], reverse order *)
  mutable pos : int;
  mutable counts : collective_counts;
}

let create (w : Weights.t) =
  let c = w.Weights.config in
  Mapping.check_mappable c;
  let slice_layer (l : Weights.layer) chip =
    {
      wq = Mapping.extract l.Weights.wq (Mapping.wq_slice c ~chip);
      wk = Mapping.extract l.Weights.wk (Mapping.wk_slice c ~chip);
      wv = Mapping.extract l.Weights.wv (Mapping.wv_slice c ~chip);
      wo = Mapping.extract l.Weights.wo (Mapping.wo_slice c ~chip);
      router = l.Weights.w_router;
      experts =
        List.map
          (fun e -> (e, l.Weights.experts.(e)))
          (Mapping.experts_of_chip c ~chip);
    }
  in
  {
    weights = w;
    config = c;
    chip_weights =
      Array.map
        (fun l -> Array.of_list (List.map (slice_layer l) Topology.all_chips))
        w.Weights.layers;
    kv =
      Array.init c.Config.num_layers (fun _ ->
          Array.init Topology.chips (fun _ -> ref []));
    pos = 0;
    counts =
      { col_all_reduce = 0; row_all_reduce = 0; col_all_gather = 0;
        all_chip_all_reduce = 0 };
  }

let position t = t.pos

let collectives t = t.counts

let kv_positions_on_chip t ~chip ~layer = List.length !(t.kv.(layer).(chip))

let bump_col t = t.counts <- { t.counts with col_all_reduce = t.counts.col_all_reduce + 1 }
let bump_row t = t.counts <- { t.counts with row_all_reduce = t.counts.row_all_reduce + 1 }
let bump_gather t = t.counts <- { t.counts with col_all_gather = t.counts.col_all_gather + 1 }
let bump_all t =
  t.counts <- { t.counts with all_chip_all_reduce = t.counts.all_chip_all_reduce + 1 }

(* Column all-reduce of per-chip partial vectors: every chip of the column
   ends with the sum.  Returns the (identical) result. *)
let col_all_reduce t ~col partials =
  bump_col t;
  let group = Topology.col_group col in
  let vals = List.map2 (fun chip v -> (chip, v)) group partials in
  Collective.sum vals

(* The GQA attention of one column for one token, over the column's
   striped KV cache (Figure 10-IV/V).  [q_col] holds the column's
   q_heads/4 query heads; each chip contributes statistics over its own
   positions, combined exactly as the VEX units would after the
   column-wise exchange. *)
let column_attention t ~layer ~col q_col =
  let c = t.config in
  let d = c.Config.head_dim in
  let scale = 1.0 /. sqrt (float_of_int d) in
  (* Sliding-window layers only attend over the last [w] positions; the
     striped caches filter by absolute position. *)
  let first_pos =
    match Config.layer_window c ~layer with
    | None -> 0
    | Some w -> max 0 (t.pos + 1 - w)
  in
  let q_heads_per_col = c.Config.q_heads / 4 in
  let group = Topology.col_group col in
  let out = Array.make (q_heads_per_col * d) 0.0 in
  for hq = 0 to q_heads_per_col - 1 do
    let qh = Array.sub q_col (hq * d) d in
    (* Local KV head index within the column's slice. *)
    let kv_local = hq / Config.gqa_group c in
    (* Per-chip partial statistics: (max, sum, weighted value). *)
    let stats =
      List.map
        (fun chip ->
          let entries = List.rev !(t.kv.(layer).(chip)) in
          let m = ref neg_infinity and z = ref 0.0 in
          let acc = Array.make d 0.0 in
          List.iter
            (fun { pos; k; v } ->
              if pos >= first_pos then begin
              let ks = Array.sub k (kv_local * d) d in
              let vs = Array.sub v (kv_local * d) d in
              let s = Vec.dot qh ks *. scale in
              let m' = Float.max !m s in
              let corr = exp (!m -. m') in
              let w = exp (s -. m') in
              for i = 0 to d - 1 do
                acc.(i) <- (acc.(i) *. corr) +. (w *. vs.(i))
              done;
              z := (!z *. corr) +. w;
              m := m'
              end)
            entries;
          (!m, !z, acc))
        group
    in
    (* Column-wise exchange and exact combination of the partials. *)
    bump_col t;
    let global_m =
      List.fold_left (fun acc (m, _, _) -> Float.max acc m) neg_infinity stats
    in
    let z = ref 0.0 in
    let acc = Array.make d 0.0 in
    List.iter
      (fun (m, zi, oi) ->
        if zi > 0.0 then begin
          let corr = exp (m -. global_m) in
          z := !z +. (zi *. corr);
          for i = 0 to d - 1 do
            acc.(i) <- acc.(i) +. (oi.(i) *. corr)
          done
        end)
      stats;
    for i = 0 to d - 1 do
      out.((hq * d) + i) <- acc.(i) /. !z
    done
  done;
  out

let layer_forward t ~layer x =
  let c = t.config in
  let lw = t.chip_weights.(layer) in
  let d = c.Config.head_dim in
  (* Attention block: RMSNorm is replicated on every chip. *)
  let gains = t.weights.Weights.layers.(layer) in
  let x_norm = Vec.rmsnorm ~gain:gains.Weights.attn_norm x in
  (* Per-column QKV via per-chip partial products + column all-reduce. *)
  let per_col =
    List.init 4 (fun col ->
        let group = Topology.col_group col in
        let partial proj chip =
          let lo, len = Mapping.x_slice c ~chip in
          Mat.gemv (proj lw.(chip)) (Array.sub x_norm lo len)
        in
        let q = col_all_reduce t ~col (List.map (partial (fun w -> w.wq)) group) in
        let k = col_all_reduce t ~col (List.map (partial (fun w -> w.wk)) group) in
        let v = col_all_reduce t ~col (List.map (partial (fun w -> w.wv)) group) in
        let q = Rope.apply_heads ~head_dim:d ~pos:t.pos q in
        let k = Rope.apply_heads ~head_dim:d ~pos:t.pos k in
        (* Store the new KV on chip (pos mod 4) of this column. *)
        let owner = Topology.kv_owner ~seq_pos:t.pos ~col in
        t.kv.(layer).(owner) := { pos = t.pos; k; v } :: !(t.kv.(layer).(owner));
        (q, k, v))
  in
  (* Column-local attention. *)
  let attn_cols =
    List.mapi (fun col (q, _, _) -> column_attention t ~layer ~col q) per_col
  in
  (* Output projection: per-chip partials, row all-reduce, column
     all-gather (Figure 10-VI). *)
  let xo_slices =
    List.init 4 (fun r ->
        (* Row r accumulates output slice r over the four columns. *)
        let partials =
          List.mapi
            (fun col attn ->
              let chip = Topology.chip_at ~row:r ~col in
              (chip, Mat.gemv lw.(chip).wo attn))
            attn_cols
        in
        bump_row t;
        Collective.sum partials)
  in
  bump_gather t;
  let xo = Array.concat xo_slices in
  let x = Vec.add x xo in
  (* FFN with MoE (Figure 10-VII..IX). *)
  let x_norm2 = Vec.rmsnorm ~gain:gains.Weights.ffn_norm x in
  let y =
    match lw.(0).router with
    | None ->
      (* Dense FFN: the single "expert" is replicated like the router. *)
      let e = t.weights.Weights.layers.(layer).Weights.experts.(0) in
      let gate = Mat.gemv e.Weights.w_gate x_norm2 in
      let up = Mat.gemv e.Weights.w_up x_norm2 in
      Mat.gemv e.Weights.w_down (Vec.swiglu ~gate ~up)
    | Some router ->
      let scores = Mat.gemv router x_norm2 in
      let top = Vec.top_k c.Config.experts_per_token scores in
      let probs = Vec.softmax (Array.of_list (List.map snd top)) in
      (* Each selected expert computes locally on its resident chip; the
         weighted partials meet in an all-chip all-reduce. *)
      let partials =
        List.mapi
          (fun rank (e, _) ->
            let chip = Mapping.chip_of_expert c ~expert:e in
            let ew = List.assoc e lw.(chip).experts in
            let gate = Mat.gemv ew.Weights.w_gate x_norm2 in
            let up = Mat.gemv ew.Weights.w_up x_norm2 in
            Vec.scale probs.(rank) (Mat.gemv ew.Weights.w_down (Vec.swiglu ~gate ~up)))
          top
      in
      bump_all t;
      List.fold_left Vec.add (Vec.zeros c.Config.hidden) partials
  in
  Vec.add x y

let forward t ~token =
  let c = t.config in
  if token < 0 || token >= c.Config.vocab then
    invalid_arg "Dataflow.forward: token out of vocabulary";
  let x = ref (Mat.row t.weights.Weights.embedding token) in
  for layer = 0 to c.Config.num_layers - 1 do
    x := layer_forward t ~layer !x
  done;
  t.pos <- t.pos + 1;
  let final = Vec.rmsnorm ~gain:t.weights.Weights.final_norm !x in
  Mat.gemv t.weights.Weights.unembedding final
