(** Value-level simulation of the 16-chip HNLPU dataflow (paper §5 and
    Appendix A).

    Every projection is computed from per-chip weight *slices* only (the
    {!Mapping} layout), stitched together with the {!Hnlpu_noc.Collective}
    operations the Interconnect Engine provides:

    + QKV: per-chip partial products, column all-reduce (Fig. 10-II/III);
    + KV cache: position [l] stored on chip [(l mod 4)] of its column;
    + attention: per-chip streaming softmax over local positions, column
      exchange of (max, sum) statistics and partial outputs (Fig. 10-IV/V);
    + output projection: row all-reduce of partial sums, column all-gather
      (Fig. 10-VI);
    + MoE: replicated router, experts resident on [expert mod 16], final
      all-chip all-reduce (Fig. 10-VII/VIII/IX).

    The equivalence test: [forward] produces the same logits as the
    unpartitioned {!Hnlpu_model.Transformer} on the same weights, up to
    floating-point reassociation in the distributed softmax. *)

type t

val create : Hnlpu_model.Weights.t -> t
(** Slices the weights across the 16 chips.  Raises if the config is not
    mappable (see {!Mapping.check_mappable}). *)

val position : t -> int

val forward : t -> token:int -> Hnlpu_tensor.Vec.t
(** One decode step through the distributed dataflow; returns logits. *)

type collective_counts = {
  col_all_reduce : int;
  row_all_reduce : int;
  col_all_gather : int;
  all_chip_all_reduce : int;
}

val collectives : t -> collective_counts
(** Cumulative collective-operation counts — lets tests confirm the §5
    claim that MoE expert projection needs no inter-chip exchange while
    attention needs column-group collectives. *)

val kv_positions_on_chip : t -> chip:Hnlpu_noc.Topology.chip -> layer:int -> int
(** Cached positions a chip holds — checks the mod-4 striping balance. *)
