(** Interconnect traffic accounting — and an independent check on the
    performance model's calibration.

    This module counts the actual bytes each collective moves per token
    (via the explicit {!Hnlpu_noc.Schedule} plans), aggregates the demand
    at the operating throughput, and compares against the fabric's
    capacity.  The fabric runs at ~70% load: heavily used but not
    saturated — consistent with §8's point that better interconnect
    (wafer-scale) is the first lever.

    Cross-validation: at utilization rho, an M/M/1 server inflates service
    times by 1/(1-rho) ~ 3.5, independently close to the
    {!Perf.link_contention_factor} (4.17) that was calibrated only against
    Figure 14's published percentages. *)

type ledger_entry = {
  collective : string;
  payload_bytes : int;     (** Per occurrence. *)
  link_bytes : int;        (** Total bytes crossing links per occurrence. *)
  per_layer : int;         (** Occurrences per layer per token. *)
}

type t = {
  entries : ledger_entry list;
  bytes_per_token : float;        (** All layers, all links. *)
  demand_bytes_per_s : float;     (** At the pipeline throughput. *)
  fabric_capacity_bytes_per_s : float;  (** 48 links x link bandwidth. *)
  mean_link_utilization : float;
  queueing_factor_mm1 : float;    (** 1 / (1 - utilization). *)
  corroborates_calibration : bool;
      (** The M/M/1 factor within 40% of {!Perf.link_contention_factor}. *)
}

val analyze : ?tech:Hnlpu_gates.Tech.t -> ?context:int -> Hnlpu_model.Config.t -> t

val to_table : t -> Hnlpu_util.Table.t
