type policy = Round_robin | Least_loaded

type node_stat = { node : int; requests : int; tokens : int; occupancy : float }

type result = {
  nodes : int;
  total_tokens : int;
  makespan_s : float;
  aggregate_throughput_tokens_per_s : float;
  per_node : node_stat list;
  imbalance : float;
}

let request_tokens (r : Scheduler.request) =
  r.Scheduler.prefill_tokens + r.Scheduler.decode_tokens

let dispatch policy ~nodes requests =
  let bins = Array.make nodes [] in
  let load = Array.make nodes 0 in
  List.iteri
    (fun i r ->
      let target =
        match policy with
        | Round_robin -> i mod nodes
        | Least_loaded ->
          let best = ref 0 in
          for n = 1 to nodes - 1 do
            if load.(n) < load.(!best) then best := n
          done;
          !best
      in
      bins.(target) <- r :: bins.(target);
      load.(target) <- load.(target) + request_tokens r)
    requests;
  Array.map List.rev bins

let simulate ?tech ?context ?(policy = Least_loaded) ~nodes config requests =
  if nodes <= 0 then invalid_arg "Multi_node.simulate: nodes must be positive";
  let bins = dispatch policy ~nodes requests in
  let results =
    Array.map
      (fun reqs -> if reqs = [] then None else Some (Scheduler.simulate ?tech ?context config reqs))
      bins
  in
  let per_node =
    Array.to_list
      (Array.mapi
         (fun node r ->
           match r with
           | None -> { node; requests = 0; tokens = 0; occupancy = 0.0 }
           | Some r ->
             {
               node;
               requests = List.length bins.(node);
               tokens = r.Scheduler.tokens_processed;
               occupancy = r.Scheduler.mean_slot_occupancy;
             })
         results)
  in
  let total_tokens = List.fold_left (fun a s -> a + s.tokens) 0 per_node in
  let makespan =
    Array.fold_left
      (fun acc r ->
        match r with None -> acc | Some r -> Float.max acc r.Scheduler.makespan_s)
      0.0 results
  in
  let mean_tokens = float_of_int total_tokens /. float_of_int nodes in
  let max_tokens =
    List.fold_left (fun a s -> max a s.tokens) 0 per_node |> float_of_int
  in
  {
    nodes;
    total_tokens;
    makespan_s = makespan;
    aggregate_throughput_tokens_per_s =
      (if makespan > 0.0 then float_of_int total_tokens /. makespan else 0.0);
    per_node;
    imbalance = (if mean_tokens > 0.0 then max_tokens /. mean_tokens else 1.0);
  }

let scaling_efficiency ?policy ~nodes config requests =
  if requests = [] then invalid_arg "Multi_node.scaling_efficiency: empty workload";
  let multi = simulate ?policy ~nodes config requests in
  let single = Scheduler.simulate config requests in
  (* Speedup over one node, normalized by the fleet size. *)
  let speedup = single.Scheduler.makespan_s /. multi.makespan_s in
  speedup /. float_of_int nodes
