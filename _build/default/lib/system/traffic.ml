open Hnlpu_model
open Hnlpu_noc

type ledger_entry = {
  collective : string;
  payload_bytes : int;
  link_bytes : int;
  per_layer : int;
}

type t = {
  entries : ledger_entry list;
  bytes_per_token : float;
  demand_bytes_per_s : float;
  fabric_capacity_bytes_per_s : float;
  mean_link_utilization : float;
  queueing_factor_mm1 : float;
  corroborates_calibration : bool;
}

let ledger (c : Config.t) =
  let fp16 = Link.bytes_per_value in
  let q = Config.q_dim c / 4 * fp16 in
  let kv = Config.kv_dim c / 4 * fp16 in
  let h4 = c.Config.hidden / 4 * fp16 in
  let h = c.Config.hidden * fp16 in
  let entry collective payload plan per_layer =
    let link_bytes =
      List.fold_left
        (fun acc step ->
          List.fold_left (fun a (tr : Schedule.transfer) -> a + tr.Schedule.bytes) acc step)
        0 plan
    in
    ignore payload;
    { collective; payload_bytes = payload; link_bytes; per_layer }
  in
  let col = Topology.col_group 0 and row = Topology.row_group 0 in
  [
    entry "Q all-reduce (col)" q (Schedule.all_reduce ~group:col ~bytes:q) 1;
    entry "K reduce (col)" kv (Schedule.reduce ~root:0 ~group:col ~bytes:kv) 1;
    entry "V reduce (col)" kv (Schedule.reduce ~root:0 ~group:col ~bytes:kv) 1;
    entry "softmax stats (col)" 64 (Schedule.all_reduce ~group:col ~bytes:64) 1;
    entry "partial-O all-reduce (col)" q (Schedule.all_reduce ~group:col ~bytes:q) 1;
    entry "Xo all-reduce (row)" h4 (Schedule.all_reduce ~group:row ~bytes:h4) 1;
    entry "Xo all-gather (col)" h4 (Schedule.all_gather ~group:col ~shard_bytes:h4) 1;
    entry "MoE all-chip all-reduce" h (Schedule.all_chip_all_reduce ~bytes:h) 1;
  ]

let analyze ?tech ?(context = 2048) (c : Config.t) =
  let entries = ledger c in
  (* Column collectives run on all four columns, row collectives on all
     four rows; the all-chip plan already spans the machine. *)
  let machine_factor e =
    if e.collective = "MoE all-chip all-reduce" then 1 else 4
  in
  let bytes_per_token =
    float_of_int c.Config.num_layers
    *. List.fold_left
         (fun acc e ->
           acc +. float_of_int (e.link_bytes * e.per_layer * machine_factor e))
         0.0 entries
  in
  let throughput = Perf.throughput_tokens_per_s ?tech c ~context in
  let demand = bytes_per_token *. throughput in
  let capacity =
    float_of_int (List.length (Topology.links ()))
    *. Link.cxl3.Link.bandwidth_bytes_per_s
  in
  let util = demand /. capacity in
  let qf = if util < 1.0 then 1.0 /. (1.0 -. util) else infinity in
  {
    entries;
    bytes_per_token;
    demand_bytes_per_s = demand;
    fabric_capacity_bytes_per_s = capacity;
    mean_link_utilization = util;
    queueing_factor_mm1 = qf;
    corroborates_calibration =
      Float.abs (qf -. Perf.link_contention_factor) /. Perf.link_contention_factor
      < 0.4;
  }

let to_table t =
  let tbl =
    Hnlpu_util.Table.create
      ~headers:[ "Collective"; "Payload (B)"; "Link bytes"; "Per layer" ]
  in
  List.iter
    (fun e ->
      Hnlpu_util.Table.add_row tbl
        [
          e.collective;
          string_of_int e.payload_bytes;
          string_of_int e.link_bytes;
          string_of_int e.per_layer;
        ])
    t.entries;
  Hnlpu_util.Table.add_sep tbl;
  Hnlpu_util.Table.add_row tbl
    [
      "Total per token (all layers/columns)";
      "";
      Printf.sprintf "%.0f" t.bytes_per_token;
      "";
    ];
  Hnlpu_util.Table.add_row tbl
    [
      "Fabric utilization at full rate";
      "";
      Hnlpu_util.Units.percent t.mean_link_utilization;
      "";
    ];
  tbl
