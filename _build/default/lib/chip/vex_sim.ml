(* exp(x) = 2^(x * log2 e); split x*log2e into integer k and fraction f in
   [0,1); 2^f from a 64-entry LUT with linear interpolation. *)

let lut_bits = 6
let lut_size = 1 lsl lut_bits

let exp2_lut =
  Array.init (lut_size + 1) (fun i ->
      2.0 ** (float_of_int i /. float_of_int lut_size))

let exp2_hw x =
  let k = floor x in
  let f = x -. k in
  let idx = f *. float_of_int lut_size in
  let i = int_of_float idx in
  let frac = idx -. float_of_int i in
  let v = exp2_lut.(i) +. (frac *. (exp2_lut.(i + 1) -. exp2_lut.(i))) in
  ldexp v (int_of_float k)

let exp_hw x =
  let x = Float.max (-87.0) (Float.min 87.0 x) in
  exp2_hw (x *. 1.4426950408889634 (* log2 e *))

(* rsqrt: seed from exponent halving, then Newton y' = y (1.5 - 0.5 x y^2). *)
let rsqrt_hw x =
  if x <= 0.0 then invalid_arg "Vex_sim.rsqrt_hw: non-positive input";
  let m, e = frexp x in
  (* x = m * 2^e with m in [0.5, 1): 1/sqrt(x) ~ 2^(-e/2) / sqrt(m); the
     linear term seeds 1/sqrt(m) within ~10%, which two Newton steps
     square down below 1e-3. *)
  let seed =
    (1.1774 -. (0.40 *. (m -. 0.75))) *. (2.0 ** (-.float_of_int e /. 2.0))
  in
  let step y = y *. (1.5 -. (0.5 *. x *. y *. y)) in
  step (step seed)

let sigmoid_hw x =
  if x >= 0.0 then 1.0 /. (1.0 +. exp_hw (-.x))
  else begin
    let e = exp_hw x in
    e /. (1.0 +. e)
  end

let silu_hw x = x *. sigmoid_hw x

let softmax_hw v =
  if Array.length v = 0 then invalid_arg "Vex_sim.softmax_hw: empty";
  let m = Array.fold_left Float.max neg_infinity v in
  let e = Array.map (fun x -> exp_hw (x -. m)) v in
  let z = Array.fold_left ( +. ) 0.0 e in
  Array.map (fun x -> x /. z) e

let rmsnorm_hw ?(eps = 1e-6) ~gain v =
  if Array.length gain <> Array.length v then
    invalid_arg "Vex_sim.rmsnorm_hw: length mismatch";
  let n = float_of_int (Array.length v) in
  let ms = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v /. n in
  let inv = rsqrt_hw (ms +. eps) in
  Array.mapi (fun i x -> x *. inv *. gain.(i)) v

let swiglu_hw ~gate ~up =
  if Array.length gate <> Array.length up then
    invalid_arg "Vex_sim.swiglu_hw: length mismatch";
  Array.mapi (fun i g -> silu_hw g *. up.(i)) gate

let max_rel_error over f g ~lo ~hi ~samples =
  if samples < 2 then invalid_arg (over ^ ": need samples >= 2");
  let worst = ref 0.0 in
  for i = 0 to samples - 1 do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (samples - 1)) in
    let reference = g x in
    if Float.abs reference > 1e-300 then
      worst := Float.max !worst (Float.abs ((f x -. reference) /. reference))
  done;
  !worst

let max_rel_error_exp ~lo ~hi ~samples =
  max_rel_error "Vex_sim.max_rel_error_exp" exp_hw exp ~lo ~hi ~samples

let max_rel_error_rsqrt ~lo ~hi ~samples =
  max_rel_error "Vex_sim.max_rel_error_rsqrt" rsqrt_hw
    (fun x -> 1.0 /. sqrt x)
    ~lo ~hi ~samples

