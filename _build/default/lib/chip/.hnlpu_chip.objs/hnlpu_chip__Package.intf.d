lib/chip/package.mli:
