lib/chip/vex_sim.mli: Hnlpu_tensor
