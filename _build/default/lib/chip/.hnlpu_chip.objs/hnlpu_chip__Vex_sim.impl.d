lib/chip/vex_sim.ml: Array Float
