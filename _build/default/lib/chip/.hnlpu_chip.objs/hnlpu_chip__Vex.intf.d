lib/chip/vex.mli: Hnlpu_model
