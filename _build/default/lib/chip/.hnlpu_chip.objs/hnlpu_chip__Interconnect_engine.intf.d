lib/chip/interconnect_engine.mli: Hnlpu_noc
