lib/chip/hbm.mli: Hnlpu_model
