lib/chip/hbm.ml: Float Hnlpu_model
