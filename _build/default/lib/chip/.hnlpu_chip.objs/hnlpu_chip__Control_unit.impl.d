lib/chip/control_unit.ml: Hnlpu_model
