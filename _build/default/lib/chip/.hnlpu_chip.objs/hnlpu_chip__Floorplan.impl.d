lib/chip/floorplan.ml: Attention_buffer Control_unit Hbm Hn_array Hnlpu_gates Hnlpu_model Hnlpu_noc Hnlpu_util Interconnect_engine List Printf Table Vex
