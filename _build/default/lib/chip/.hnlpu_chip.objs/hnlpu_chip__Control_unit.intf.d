lib/chip/control_unit.mli: Hnlpu_model
