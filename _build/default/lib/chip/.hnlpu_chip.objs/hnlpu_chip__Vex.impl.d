lib/chip/vex.ml: Config Hnlpu_model Hnlpu_noc
