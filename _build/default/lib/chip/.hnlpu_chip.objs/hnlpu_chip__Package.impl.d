lib/chip/package.ml: Hnlpu_gates
