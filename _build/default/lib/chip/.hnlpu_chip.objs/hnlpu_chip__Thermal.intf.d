lib/chip/thermal.mli: Hnlpu_gates Hnlpu_model
