lib/chip/floorplan.mli: Hnlpu_gates Hnlpu_model Hnlpu_util
