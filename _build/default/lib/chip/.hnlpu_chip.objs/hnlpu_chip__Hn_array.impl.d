lib/chip/hn_array.ml: Census Config Hnlpu_gates Hnlpu_model Hnlpu_noc Params Tech
