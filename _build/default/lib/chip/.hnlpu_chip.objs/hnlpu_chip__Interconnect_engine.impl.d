lib/chip/interconnect_engine.ml: Hnlpu_noc Link Topology
