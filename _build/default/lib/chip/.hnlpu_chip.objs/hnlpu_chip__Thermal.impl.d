lib/chip/thermal.ml: Float Floorplan List
