lib/chip/attention_buffer.mli: Hnlpu_gates Hnlpu_model
