lib/chip/hn_array.mli: Hnlpu_gates Hnlpu_model
