lib/chip/attention_buffer.ml: Config Hnlpu_gates Hnlpu_model Hnlpu_noc Tech
