open Hnlpu_gates
open Hnlpu_model

let chips = float_of_int Hnlpu_noc.Topology.chips

let weights_per_chip c = Params.hardwired c /. chips

let transistors_per_weight = float_of_int Census.popcount_port_transistors +. 1.3

let array_utilization = 0.85

let area_mm2 ?(tech = Tech.n5) c =
  weights_per_chip c *. transistors_per_weight
  /. (tech.Tech.transistor_density_per_mm2 *. array_utilization)

let active_weights_per_layer_per_chip ?(experts_active = None) (c : Config.t) =
  let attn = float_of_int (Params.attention_per_layer c) /. chips in
  let router = float_of_int (Params.router_per_layer c) (* replicated *) in
  let k =
    match experts_active with
    | Some k -> k
    | None -> c.Config.experts_per_token
  in
  let expert = float_of_int (3 * c.Config.hidden * c.Config.expert_hidden) in
  let experts =
    if c.Config.experts = 0 then expert /. chips
    else float_of_int k *. expert /. chips
  in
  attn +. router +. experts

let active_weights_per_token_per_chip (c : Config.t) =
  float_of_int c.Config.num_layers *. active_weights_per_layer_per_chip c

let active_fraction c =
  active_weights_per_token_per_chip c /. weights_per_chip c

(* Calibrated to Table 1's post-layout 76.92 W: per active weight site,
   clock + datapath energy per cycle with the whole pipeline busy. *)
let active_site_fj_per_cycle = 0.254

let feed_bytes_per_cycle = 4

let stream_cycles ~bytes =
  if bytes <= 0 then invalid_arg "Hn_array.stream_cycles";
  let feed = bytes / feed_bytes_per_cycle in
  let drain = 8 (* bit planes *) + 8 (* popcount/multiply/tree/acc drain *) in
  feed + drain

let leakage_w ?(tech = Tech.n5) c =
  weights_per_chip c *. transistors_per_weight *. tech.Tech.leakage_w_per_transistor

let power_of_active ?(tech = Tech.n5) c active =
  (active *. active_site_fj_per_cycle *. 1e-15 *. tech.Tech.clock_ghz *. 1e9)
  +. leakage_w ~tech c

let power_w ?tech c = power_of_active ?tech c (active_weights_per_token_per_chip c)

let power_if_dense_w ?tech (c : Config.t) =
  let all = Some (max 1 c.Config.experts) in
  let active =
    float_of_int c.Config.num_layers
    *. active_weights_per_layer_per_chip ~experts_active:all c
  in
  power_of_active ?tech c active
