open Hnlpu_model

let kv_lanes = 32

let attention_efficiency = 0.48

let attention_cycles (c : Config.t) ~context =
  if context < 0 then invalid_arg "Vex.attention_cycles: negative context";
  let heads_per_col = c.Config.kv_heads / Hnlpu_noc.Topology.cols in
  let positions_per_chip = (context + 3) / Hnlpu_noc.Topology.rows in
  let head_positions = 2 (* QK and ZV passes *) * heads_per_col * positions_per_chip in
  int_of_float
    (ceil (float_of_int head_positions /. (float_of_int kv_lanes *. attention_efficiency)))

let elements_per_cycle = 32

let nonlinear_cycles (c : Config.t) =
  (* RMSNorm x2 (two passes each: square-sum then scale), router softmax,
     SwiGLU over the expert intermediate, residual adds x2. *)
  let h = c.Config.hidden in
  let rms = 2 * (2 * h / elements_per_cycle) in
  let router = if c.Config.experts = 0 then 0 else 2 * c.Config.experts / elements_per_cycle in
  let swiglu = 2 * c.Config.expert_hidden / elements_per_cycle in
  let residual = 2 * h / elements_per_cycle in
  rms + router + swiglu + residual

let sampling_cycles (c : Config.t) =
  (* Each chip scans its vocab/16 logits shard, then a small reduction. *)
  (c.Config.vocab / Hnlpu_noc.Topology.chips / elements_per_cycle) + 64

let area_mm2 = 27.87

let power_w = 33.09
