(** Per-module HBM model (paper §4.2/§7.4 and Appendix B): 8 stacks of
    24 GB store the embedding/unembedding tables and overflow KV cache.
    Double-buffered prefetch overlaps KV fetches with attention compute, so
    a stall only appears when the fetch time exceeds the compute it hides
    behind — the 10.7% at 512K context in Figure 14. *)

type t = {
  stacks : int;
  stack_bytes : float;
  effective_bandwidth_bytes_per_s : float;
      (** Sustained streaming bandwidth after derates; calibrated to
          Figure 14's stall onset between 256K and 512K (1.42 TB/s). *)
  pj_per_bit : float;
}

val hnlpu : t

val capacity_bytes : t -> float
(** 192 GB. *)

val fetch_time_s : t -> bytes:float -> float

val access_energy_j : t -> bytes:float -> float

val stall_s : t -> fetch_s:float -> compute_s:float -> float
(** Residual stall after overlapping a prefetch stream with compute:
    [max 0 (fetch - compute)]. *)

val fits_embedding : t -> Hnlpu_model.Config.t -> bool
(** The embedding + unembedding tables (FP16) must fit alongside KV spill. *)

val phy_area_mm2 : float
(** Table 1: 52 mm² of HBM PHY per chip. *)
