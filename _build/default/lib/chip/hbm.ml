type t = {
  stacks : int;
  stack_bytes : float;
  effective_bandwidth_bytes_per_s : float;
  pj_per_bit : float;
}

let hnlpu =
  {
    stacks = 8;
    stack_bytes = 24.0e9;
    effective_bandwidth_bytes_per_s = 1.42e12;
    pj_per_bit = 3.5;
  }

let capacity_bytes t = float_of_int t.stacks *. t.stack_bytes

let fetch_time_s t ~bytes =
  if bytes < 0.0 then invalid_arg "Hbm.fetch_time_s: negative size";
  bytes /. t.effective_bandwidth_bytes_per_s

let access_energy_j t ~bytes = bytes *. 8.0 *. t.pj_per_bit *. 1e-12

let stall_s _t ~fetch_s ~compute_s = Float.max 0.0 (fetch_s -. compute_s)

let fits_embedding t (c : Hnlpu_model.Config.t) =
  let table_bytes =
    2.0 *. float_of_int (c.Hnlpu_model.Config.vocab * c.Hnlpu_model.Config.hidden) *. 2.0
  in
  table_bytes < capacity_bytes t /. 2.0

let phy_area_mm2 = 52.0
