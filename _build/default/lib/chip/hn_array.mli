(** The per-chip HN Array (paper §4.3): the hardwired weights of this
    chip's slices of every layer — Wq/Wk/Wv/Wo column/row slices, the
    replicated router, and 8 of the 128 experts per layer.

    Area follows the Metal-Embedding density ({!Hnlpu_gates.Census}
    [popcount_port_transistors] plus per-weight overhead) on a highly
    regular fabric; 573.16 mm² for gpt-oss 120B, matching Table 1.

    Power is dominated by the *active* subset: the paper highlights that
    only 4 of 128 experts fire per token, keeping the array's density at a
    fraction of a dense design's. *)

val weights_per_chip : Hnlpu_model.Config.t -> float
(** Hardwired parameters divided over the 16 chips (~7.2B for gpt-oss). *)

val transistors_per_weight : float
(** Effective transistors per hardwired weight: POPCNT port cells plus the
    per-neuron multiplier/tree/accumulator overhead amortized over
    2880-input neurons (8 + 1.3). *)

val array_utilization : float
(** Placement utilization of the regular HN fabric (0.85 — far above the
    0.65 of random logic; the array is a stamped macro). *)

val area_mm2 : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> float

val active_weights_per_token_per_chip : Hnlpu_model.Config.t -> float
(** Weight sites that switch for one token across all layers of one chip:
    attention slices + router + the top-k experts' share. *)

val active_fraction : Hnlpu_model.Config.t -> float
(** Active / hardwired — the MoE sparsity (~3.9% for gpt-oss top-4/128). *)

val stream_cycles : bytes:int -> int
(** Cycles to feed [bytes] of activation data into an HN bank: the input
    bus delivers {!feed_bytes_per_cycle} per cycle, then the bit-serial
    planes drain.  This input streaming is what makes "Projection" a
    visible share of Figure 14. *)

val feed_bytes_per_cycle : int

val power_w : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> float
(** Table 1's 76.92 W: active-region clock/datapath power plus whole-array
    leakage; the clock-tree coefficient is calibrated to the paper's
    post-layout figure. *)

val power_if_dense_w : ?tech:Hnlpu_gates.Tech.t -> Hnlpu_model.Config.t -> float
(** Counterfactual power with every expert active — exhibits the sparsity
    claim of §7.1 (an order of magnitude above {!power_w}). *)
