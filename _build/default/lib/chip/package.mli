(** 2.5D packaging and the Known-Good-Module strategy (paper §4.2,
    "Physical System Integration").

    Each compute module integrates the 827 mm² die with 8 HBM stacks on a
    2.5D interposer.  The paper's manufacturing argument: test each module
    independently ("Known-Good-Module"), so final system assembly yield is
    decoupled from the big die's 43% wafer yield — assembling 16 *untested*
    modules would compound failure probabilities ruinously. *)

type t = {
  die_mm2 : float;
  hbm_stacks : int;
  interposer_mm2 : float;   (** Die + HBM shadow + keep-out. *)
  assembly_yield : float;    (** Per-module 2.5D assembly success. *)
  module_test_yield : float; (** Post-assembly test escape complement. *)
}

val hnlpu : t

val module_yield : t -> float
(** Assembly x test: probability a module built from known-good parts
    ships. *)

val system_yield_kgm : t -> modules:int -> float
(** With Known-Good-Module: modules are tested before system integration,
    so the system assembles from good modules and only board-level
    integration (modelled inside {!module_yield}'s complement) matters:
    effectively ~1. *)

val system_yield_untested : t -> die_yield:float -> modules:int -> float
(** The counterfactual: integrate untested dies directly; all [modules]
    dies and assemblies must succeed at once. *)

val kgm_advantage : t -> die_yield:float -> modules:int -> float
(** Ratio of system yields — why the paper builds modules (hundreds of x
    at 16 modules and 43% die yield). *)

val module_cost_usd : ?bound:[ `Lo | `Hi ] -> t -> float
(** Bill of materials per module: good die + HBM + interposer/assembly —
    consistent with Table 5's recurring columns. *)

val interposer_utilization : t -> float
(** Die + HBM silicon over interposer area. *)
