open Hnlpu_noc

let links_per_chip = Topology.degree 0

let area_mm2 = 37.92

let power_w ?(link = Link.cxl3) () =
  float_of_int links_per_chip
  *. link.Link.bandwidth_bytes_per_s *. 8.0 *. link.Link.pj_per_bit *. 1e-12

let bisection_bandwidth_bytes_per_s ?(link = Link.cxl3) () =
  (* Cutting the grid between two pairs of rows severs 2 links per column
     pair x 4 columns x 2 row pairs = 16 links. *)
  16.0 *. link.Link.bandwidth_bytes_per_s
