(** The Vector Execution Unit (paper §4.3): GEMV lanes plus dedicated
    nonlinear operators (RMSNorm, SwiGLU, softmax), a residual adder and a
    multinomial sampling unit.  It computes attention scores in the
    FlashAttention flow, reading K/V from the attention buffer at 32 cached
    KV heads per cycle. *)

val kv_lanes : int
(** 32 cached KV head-positions per cycle (paper figure). *)

val attention_efficiency : float
(** Sustained fraction of the peak lane rate.  The KV cache is interleaved
    across the 4 chips of a column ("chip-w/r-id = K/V-addr mod 4"), whose
    remote reads and softmax rescaling insert bubbles; 0.48 calibrates the
    attention share of Figure 14 (15.1% at 64K). *)

val attention_cycles : Hnlpu_model.Config.t -> context:int -> int
(** Cycles one chip's VEX spends on attention for one token of one layer:
    two passes (Q.K and Z.V) over its 2 KV heads x context/4 positions. *)

val nonlinear_cycles : Hnlpu_model.Config.t -> int
(** Per-layer cycles for the nonlinear work outside attention: two
    RMSNorms, router softmax/top-k, SwiGLU and the residual adds, at 32
    elements per cycle. *)

val sampling_cycles : Hnlpu_model.Config.t -> int
(** Multinomial sampling over the vocabulary shard a chip owns. *)

val area_mm2 : float
(** Table 1: 27.87 mm². *)

val power_w : float
(** Table 1: 33.09 W. *)
