(** Single-chip floorplan roll-up — the reproduction of Table 1.

    Areas are derived from the component models (HN array density, SRAM
    macro model, link endpoints); powers combine derived terms (active-site
    switching, link streaming, leakage) with coefficients calibrated to the
    paper's post-layout sign-off, as documented per block.  The totals must
    land on the paper's 827.08 mm² / 308.39 W per chip and 13,232 mm² of
    system silicon. *)

type block = { block_name : string; area_mm2 : float; power_w : float }

type t = {
  blocks : block list;
  total_area_mm2 : float;
  total_power_w : float;
}

val table1 : ?tech:Hnlpu_gates.Tech.t -> ?config:Hnlpu_model.Config.t -> unit -> t
(** The six Table 1 rows for gpt-oss 120B at N5. *)

val system_silicon_mm2 : t -> float
(** Total die area x 16 chips (paper: 13,232 mm²). *)

val system_power_w : ?overhead:float -> t -> float
(** Chip power x 16 x system overhead (power delivery, fans/pumps, host;
    default 1.4) — Table 2's 6.9 kW. *)

val area_share : t -> string -> float
(** Fraction of total area held by a named block. *)

val power_density_w_per_mm2 : t -> float
(** Average — the paper quotes 0.3 W/mm² against a 1.4 peak. *)

val to_table : t -> Hnlpu_util.Table.t
(** Rendered like the paper's Table 1 (area and power with shares). *)
