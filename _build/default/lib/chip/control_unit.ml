let area_mm2 = 0.02

let power_w = 0.005

let stages_per_layer = 6

let pipeline_slots (c : Hnlpu_model.Config.t) = stages_per_layer * c.Hnlpu_model.Config.num_layers
