type t = {
  die_mm2 : float;
  hbm_stacks : int;
  interposer_mm2 : float;
  assembly_yield : float;
  module_test_yield : float;
}

let hbm_stack_mm2 = 110.0 (* 11 x 10 mm shadow per stack *)

let hnlpu =
  {
    die_mm2 = 827.08;
    hbm_stacks = 8;
    (* Die + 8 stacks + routing keep-out; ~2.4x reticle, the class of
       interposer CoWoS ships today. *)
    interposer_mm2 = 2000.0;
    assembly_yield = 0.97;
    module_test_yield = 0.995;
  }

let module_yield t = t.assembly_yield *. t.module_test_yield

let system_yield_kgm t ~modules =
  if modules <= 0 then invalid_arg "Package.system_yield_kgm";
  (* Modules are screened before integration; only board-level assembly of
     known-good modules remains, ~0.999 per module slot. *)
  ignore t;
  0.999 ** float_of_int modules

let system_yield_untested t ~die_yield ~modules =
  if modules <= 0 then invalid_arg "Package.system_yield_untested";
  if die_yield <= 0.0 || die_yield > 1.0 then
    invalid_arg "Package.system_yield_untested: die_yield in (0,1]";
  (die_yield *. t.assembly_yield) ** float_of_int modules

let kgm_advantage t ~die_yield ~modules =
  system_yield_kgm t ~modules /. system_yield_untested t ~die_yield ~modules

let module_cost_usd ?(bound = `Lo) t =
  let tech = Hnlpu_gates.Tech.n5 in
  let die = Hnlpu_gates.Yield.cost_per_good_die tech ~die_area_mm2:t.die_mm2 in
  let hbm_per_gb = match bound with `Lo -> 10.0 | `Hi -> 20.0 in
  let hbm = float_of_int t.hbm_stacks *. 24.0 *. hbm_per_gb in
  let assembly = match bound with `Lo -> 111.0 | `Hi -> 185.0 in
  die +. hbm +. assembly

let interposer_utilization t =
  (t.die_mm2 +. (float_of_int t.hbm_stacks *. hbm_stack_mm2)) /. t.interposer_mm2
