(** The Control Unit (paper §4.3): on-chip scheduling and inter-layer
    pipelining for multi-batch operation.  It is a sliver of the die —
    Table 1 lists 0.02 mm² and negligible power — because the "program" is
    fixed: there is no instruction fetch, decode or dispatch. *)

val area_mm2 : float

val power_w : float

val pipeline_slots : Hnlpu_model.Config.t -> int
(** Maximum requests in flight: 6 pipeline stages per layer x layers
    (216 for gpt-oss 120B, §5.2). *)

val stages_per_layer : int
(** The six-stage intra-layer pipeline of Figure 11. *)
