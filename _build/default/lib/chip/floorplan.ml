open Hnlpu_util

type block = { block_name : string; area_mm2 : float; power_w : float }

type t = {
  blocks : block list;
  total_area_mm2 : float;
  total_power_w : float;
}

(* The attention buffer's switching power at its service bandwidth; Table 1
   anchors the total at 85.73 W, of which ~3.8 W is SRAM leakage (0.012 W/MB
   x 320 MB) — the rest is bank access plus the 20,000-bank distribution
   fabric. *)
let buffer_dynamic_w = 81.89

(* HBM PHY + DRAM I/O streaming power at the effective bandwidth
   (~5.5 pJ/bit at 1.42 TB/s); Table 1 row: 63 W. *)
let hbm_phy_power_w = 63.0

let table1 ?(tech = Hnlpu_gates.Tech.n5) ?(config = Hnlpu_model.Config.gpt_oss_120b) () =
  let buffer = Attention_buffer.hnlpu in
  let blocks =
    [
      {
        block_name = "HN Array";
        area_mm2 = Hn_array.area_mm2 ~tech config;
        power_w = Hn_array.power_w ~tech config;
      };
      { block_name = "VEX"; area_mm2 = Vex.area_mm2; power_w = Vex.power_w };
      {
        block_name = "Control Unit";
        area_mm2 = Control_unit.area_mm2;
        power_w = Control_unit.power_w;
      };
      {
        block_name = "Attention Buffer";
        area_mm2 = Attention_buffer.area_mm2 ~tech buffer;
        power_w = buffer_dynamic_w +. Attention_buffer.leakage_w ~tech buffer;
      };
      {
        block_name = "Interconnect Engine";
        area_mm2 = Interconnect_engine.area_mm2;
        power_w = Interconnect_engine.power_w ();
      };
      { block_name = "HBM PHY"; area_mm2 = Hbm.phy_area_mm2; power_w = hbm_phy_power_w };
    ]
  in
  {
    blocks;
    total_area_mm2 = List.fold_left (fun a b -> a +. b.area_mm2) 0.0 blocks;
    total_power_w = List.fold_left (fun a b -> a +. b.power_w) 0.0 blocks;
  }

let chips = float_of_int Hnlpu_noc.Topology.chips

let system_silicon_mm2 t = t.total_area_mm2 *. chips

let system_power_w ?(overhead = 1.4) t = t.total_power_w *. chips *. overhead

let area_share t name =
  match List.find_opt (fun b -> b.block_name = name) t.blocks with
  | None -> invalid_arg ("Floorplan.area_share: unknown block " ^ name)
  | Some b -> b.area_mm2 /. t.total_area_mm2

let power_density_w_per_mm2 t = t.total_power_w /. t.total_area_mm2

let to_table t =
  let tbl = Table.create ~headers:[ "Block"; "Area (mm2)"; "%"; "Power (W)"; "%" ] in
  List.iter
    (fun b ->
      Table.add_row tbl
        [
          b.block_name;
          Printf.sprintf "%.2f" b.area_mm2;
          Printf.sprintf "%.1f" (100.0 *. b.area_mm2 /. t.total_area_mm2);
          Printf.sprintf "%.2f" b.power_w;
          Printf.sprintf "%.2f" (100.0 *. b.power_w /. t.total_power_w);
        ])
    t.blocks;
  Table.add_sep tbl;
  Table.add_row tbl
    [
      "Total";
      Printf.sprintf "%.2f" t.total_area_mm2;
      "100.0";
      Printf.sprintf "%.2f" t.total_power_w;
      "100.00";
    ];
  tbl
