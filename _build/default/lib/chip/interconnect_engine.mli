(** The per-chip Interconnect Engine (paper §4.3): six CXL x16 endpoints
    (3 row peers + 3 column peers) plus the collective sequencer. *)

val links_per_chip : int
(** 6 — the fully-connected row/column degree. *)

val area_mm2 : float
(** Table 1: 37.92 mm² (~6.3 mm² of PHY + controller per endpoint). *)

val power_w : ?link:Hnlpu_noc.Link.t -> unit -> float
(** All endpoints streaming: links x bandwidth x pJ/bit — reproduces
    Table 1's 49.65 W from the link model's energy figure. *)

val bisection_bandwidth_bytes_per_s : ?link:Hnlpu_noc.Link.t -> unit -> float
(** Aggregate bandwidth across a row/column cut of the 4x4 fabric. *)
