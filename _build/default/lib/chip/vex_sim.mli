(** Functional models of the VEX nonlinear units (paper §4.3: "dedicated
    nonlinear modules for the efficient computation of RMSNorm, SwiGLU,
    and softmax").

    Hardware does not evaluate [exp] or [1/sqrt] — it approximates.  These
    are the standard fixed-function implementations at the accuracy class
    a sign-off would use, each checked against the float reference:

    - [exp]: range reduction to exp2, 64-entry LUT on the fraction's top
      bits with linear interpolation;
    - [rsqrt]: exponent halving seed + two Newton–Raphson iterations;
    - [silu]: x * sigmoid x via the hardware [exp];
    - [softmax] / [rmsnorm]: the §4.3 compositions over the above.

    Property tests bound the relative error (< 1e-3 for exp/rsqrt over
    their working ranges) and check that a transformer layer evaluated with
    these units tracks the float layer — the numerics HNLPU actually
    ships. *)

val exp_hw : float -> float
(** Working range ~[-87, 87] (FP32 class); clamps outside. *)

val rsqrt_hw : float -> float
(** Positive inputs. *)

val sigmoid_hw : float -> float

val silu_hw : float -> float

val softmax_hw : Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** Max-subtracted, hardware [exp], exact-ish normalization. *)

val rmsnorm_hw : ?eps:float -> gain:Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t

val swiglu_hw : gate:Hnlpu_tensor.Vec.t -> up:Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t

val max_rel_error_exp : lo:float -> hi:float -> samples:int -> float
(** Worst relative error of [exp_hw] over a range (diagnostics/tests). *)

val max_rel_error_rsqrt : lo:float -> hi:float -> samples:int -> float
