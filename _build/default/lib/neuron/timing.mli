(** Logic-depth to clock-cycle conversion shared by the three machines.

    At the paper's 1 GHz sign-off frequency a 5 nm pipeline stage fits on
    the order of 16 FO4-equivalent gate levels; a full adder contributes two
    levels (majority + parity), a W-bit carry-lookahead adder 2*ceil(log2 W). *)

val levels_per_cycle : int

val fa_levels : int

val cpa_levels : int -> int
(** Levels of a carry-lookahead CPA of the given width (0 for width 0). *)

val cycles_of_levels : int -> int
(** Ceiling division by {!levels_per_cycle}, at least 1 for positive input. *)

val csa_levels : Hnlpu_fp4.Csa.stats -> int
(** Total combinational depth of a CSA tree: compression rounds plus the
    final carry-propagate adder. *)
