(** Cycle-accurate register-transfer simulation of the Metal-Embedding
    datapath (the single-chip "cycle-level simulator" of §6.1, at neuron
    granularity).

    {!Metal_embedding} computes the GEMV functionally; this machine steps
    the pipeline clock by clock with explicit stage registers:

    {v
      cycle t   : DES shifts plane t onto the input wires
      cycle t+1 : POPCNT registers the 16 region counts of plane t
      cycle t+2 : multiply + 16-way tree register the plane sum
      cycle t+3 : the shifting accumulator folds plane t in
    v}

    so a B-bit activation finishes at cycle B+3.  Every architectural
    register is observable per cycle, and two invariants are
    property-tested: (1) after the drain, every accumulator equals the
    reference dot product; (2) at every cycle, each accumulator equals the
    partial dot product over the planes it has folded in — the pipeline
    never holds a value that is not a true prefix sum. *)

type cycle_state = {
  cycle : int;
  plane_in : int option;          (** Plane index entering the DES. *)
  region_counts : int array array; (** [neuron].[region], POPCNT stage. *)
  plane_sums : int array;          (** Per-neuron multiply+tree stage. *)
  accumulators : int array;        (** Per-neuron running dot (half-units). *)
  planes_folded : int;             (** How many planes the accumulator holds. *)
}

type t

val make : ?slack:float -> Gemv.t -> t

val run : t -> int array -> cycle_state list * int array
(** Full trace (one state per cycle, in order) and the final outputs —
    always equal to {!Gemv.reference}. *)

val total_cycles : t -> int
(** act_bits + 3 (pipeline depth). *)

val partial_reference : Gemv.t -> int array -> planes:int -> int array
(** Ground truth for invariant (2): the dot products computed over only
    the lowest [planes] bit-planes of the activations. *)
