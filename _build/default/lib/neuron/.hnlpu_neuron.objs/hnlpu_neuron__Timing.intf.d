lib/neuron/timing.mli: Hnlpu_fp4
