lib/neuron/me_rtl.mli: Gemv
