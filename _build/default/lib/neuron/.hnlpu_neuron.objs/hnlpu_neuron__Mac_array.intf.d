lib/neuron/mac_array.mli: Gemv Hnlpu_gates Report
