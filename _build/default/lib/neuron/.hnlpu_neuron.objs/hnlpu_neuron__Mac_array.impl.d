lib/neuron/mac_array.ml: Array Census Gemv Hnlpu_fp4 Hnlpu_gates List Report Sram Tech Timing
