lib/neuron/report.ml: Format Hnlpu_gates Hnlpu_util List Printf Table Tech Units
