lib/neuron/gemv.mli: Hnlpu_fp4 Hnlpu_util
