lib/neuron/metal_embedding.ml: Array Bitserial Census Csa Fp4 Gemv Hnlpu_fp4 Hnlpu_gates List Printf Report Tech Timing
