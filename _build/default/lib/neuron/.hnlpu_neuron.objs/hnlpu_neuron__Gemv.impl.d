lib/neuron/gemv.ml: Array Bitserial Fp4 Hnlpu_fp4 Hnlpu_util Rng
