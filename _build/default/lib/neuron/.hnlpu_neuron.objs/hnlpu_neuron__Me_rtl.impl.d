lib/neuron/me_rtl.ml: Array Bitserial Fp4 Gemv Hnlpu_fp4 List Metal_embedding
