lib/neuron/timing.ml: Hnlpu_fp4
