lib/neuron/metal_embedding.mli: Gemv Hnlpu_gates Report
