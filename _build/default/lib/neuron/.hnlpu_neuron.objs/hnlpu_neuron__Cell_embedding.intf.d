lib/neuron/cell_embedding.mli: Gemv Hnlpu_fp4 Hnlpu_gates Report
