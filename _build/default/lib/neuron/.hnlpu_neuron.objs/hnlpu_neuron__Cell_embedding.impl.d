lib/neuron/cell_embedding.ml: Array Census Csa Fp4 Gemv Hnlpu_fp4 Hnlpu_gates Report Tech Timing
