lib/neuron/report.mli: Format Hnlpu_gates Hnlpu_util
