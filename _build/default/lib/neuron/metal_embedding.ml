open Hnlpu_fp4
open Hnlpu_gates

type t = {
  gemv : Gemv.t;
  slack : float;
  capacity : int;  (** Ports per POPCNT region. *)
  routing : int array array array;
      (** [routing.(o).(c)]: input indices of neuron [o] routed to region
          [c] — the "metal wires". *)
  count_bits : int;  (** Width of a region's popcount result. *)
  popcount_stats : Csa.stats;  (** One region's tree at full capacity. *)
  tree_stats : Csa.stats;  (** The 16-way product reduction tree. *)
}

let regions = 16

let make ?(slack = 2.0) gemv =
  if slack < 1.0 then invalid_arg "Metal_embedding.make: slack below 1.0";
  let n = gemv.Gemv.in_features in
  let balanced = (n + regions - 1) / regions in
  let capacity = int_of_float (ceil (float_of_int balanced *. slack)) in
  let routing =
    Array.map
      (fun row ->
        let buckets = Array.make regions [] in
        Array.iteri
          (fun i w ->
            let c = Fp4.code w in
            buckets.(c) <- i :: buckets.(c))
          row;
        Array.map (fun l -> Array.of_list (List.rev l)) buckets)
      gemv.Gemv.weights
  in
  Array.iteri
    (fun o buckets ->
      Array.iteri
        (fun c bucket ->
          if Array.length bucket > capacity then
            invalid_arg
              (Printf.sprintf
                 "Metal_embedding.make: neuron %d region %d holds %d wires, \
                  capacity %d — increase slack"
                 o c (Array.length bucket) capacity))
        buckets)
    routing;
  let count_bits =
    let rec bits k acc = if k = 0 then acc else bits (k lsr 1) (acc + 1) in
    bits capacity 0
  in
  let _, popcount_stats = Csa.reduce ~width:1 (Array.make capacity 0) in
  (* 16 signed products of (count_bits + 4) bits. *)
  let _, tree_stats = Csa.reduce ~width:(count_bits + 4) (Array.make regions 0) in
  { gemv; slack; capacity; routing; count_bits; popcount_stats; tree_stats }

let region_capacity t = t.capacity

let region_load t =
  let load = Array.make regions 0 in
  Array.iter
    (fun buckets ->
      Array.iteri (fun c b -> load.(c) <- max load.(c) (Array.length b)) buckets)
    t.routing;
  load

let serial_cycles t = t.gemv.Gemv.act_bits

let drain_cycles t =
  (* Popcount, multiply, 16-way tree and the shifting accumulator are
     pipelined behind the serial planes; the drain is their total depth. *)
  let levels =
    Timing.csa_levels t.popcount_stats
    + (Timing.fa_levels * 2) (* count x constant shift-add *)
    + Timing.csa_levels t.tree_stats
    + Timing.cpa_levels (t.count_bits + 4 + t.gemv.Gemv.act_bits + 4)
  in
  Timing.cycles_of_levels levels

let cycles t = serial_cycles t + drain_cycles t

let accumulator_bits t =
  (* Sum of n products |c*x| <= 12 * 2^(act_bits-1): acc needs
     act_bits + 4 + log2 n + 1 bits. *)
  let rec bits k acc = if k = 0 then acc else bits (k lsr 1) (acc + 1) in
  t.gemv.Gemv.act_bits + 5 + bits t.gemv.Gemv.in_features 0

let report ?(tech = Tech.n5) t =
  let g = t.gemv in
  let m = g.Gemv.out_features in
  let popcount_tr = Census.popcount_region ~ports:t.capacity * regions in
  let mult_tr =
    List.fold_left
      (fun acc code ->
        acc + Census.fp4_constant_multiplier ~input_bits:t.count_bits code)
      0 Fp4.all
  in
  let tree_tr = Census.csa_cost t.tree_stats in
  let acc_tr =
    Census.register (accumulator_bits t) + Census.ripple_adder (accumulator_bits t)
  in
  let per_neuron = popcount_tr + mult_tr + tree_tr + acc_tr in
  let transistors = float_of_int (per_neuron * m) in
  (* Only wired ports switch; grounded spare ports are static. *)
  let fa_ops_per_plane_per_neuron =
    g.Gemv.in_features
    + (t.tree_stats.Csa.full_adders + t.tree_stats.Csa.cpa_width)
    + (regions * t.count_bits (* multiplier activity *))
  in
  let flop_ops_per_plane_per_neuron = accumulator_bits t in
  let planes = serial_cycles t in
  let dyn =
    float_of_int (planes * m)
    *. ((float_of_int fa_ops_per_plane_per_neuron *. tech.Tech.gate_energy_fj)
       +. (float_of_int flop_ops_per_plane_per_neuron *. tech.Tech.flop_energy_fj))
    *. 1e-15
  in
  {
    Report.design = "Metal-Embedding (ME)";
    transistors;
    sram_bytes = 0;
    area_mm2 = Tech.area_of_transistors tech transistors;
    cycles = cycles t;
    dynamic_energy_j = dyn;
    leakage_power_w = transistors *. tech.Tech.leakage_w_per_transistor;
  }

let run t x =
  let g = t.gemv in
  if Array.length x <> g.Gemv.in_features then
    invalid_arg "Metal_embedding.run: activation length mismatch";
  let bits = g.Gemv.act_bits in
  let planes = Bitserial.planes ~bits x in
  let out = Array.make g.Gemv.out_features 0 in
  for b = 0 to bits - 1 do
    let plane = planes.(b) in
    let pw = Bitserial.plane_weight ~bits b in
    for o = 0 to g.Gemv.out_features - 1 do
      let plane_sum = ref 0 in
      for c = 0 to regions - 1 do
        let bucket = t.routing.(o).(c) in
        (* POPCNT region c: count the set wires routed here. *)
        let cnt = ref 0 in
        Array.iter (fun i -> cnt := !cnt + Bitserial.plane_get plane i) bucket;
        (* Multiply stage: count x constant. *)
        plane_sum := !plane_sum + (Fp4.to_half_units (Fp4.of_code c) * !cnt)
      done;
      (* Shifting accumulator. *)
      out.(o) <- out.(o) + (pw * !plane_sum)
    done
  done;
  (out, report t)
