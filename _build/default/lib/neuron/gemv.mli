(** The common workload of the embedding-methodology comparison (paper §6.3):
    a matrix–vector product [y = x . W] with FP4 weights and integer
    activations.

    Weights are E2M1 codes; activations are signed two's-complement integers
    of [act_bits] bits.  All three machines ({!Mac_array},
    {!Cell_embedding}, {!Metal_embedding}) must return exactly
    {!reference}'s output: the dot products in half-units
    (LSB = 0.5, because every E2M1 value is a multiple of 0.5). *)

type t = {
  weights : Hnlpu_fp4.Fp4.t array array;
      (** [weights.(o).(i)]: row per output neuron, [out_features] x
          [in_features]. *)
  in_features : int;
  out_features : int;
  act_bits : int;  (** Two's-complement width of activations (paper: 8). *)
}

val make : weights:Hnlpu_fp4.Fp4.t array array -> act_bits:int -> t
(** Validates rectangularity and positive dimensions. *)

val random : Hnlpu_util.Rng.t -> in_features:int -> out_features:int ->
  act_bits:int -> t
(** Uniform random E2M1 codes — synthetic stand-in for real model weights
    (see DESIGN.md substitutions). *)

val random_activations : Hnlpu_util.Rng.t -> t -> int array
(** Uniform activations over the full [act_bits] range. *)

val paper_benchmark : Hnlpu_util.Rng.t -> t
(** The paper's operator benchmark: 1x1024 input against a 1024x128 FP4
    weight matrix ("typical dimension in an LLM attention block"). *)

val reference : t -> int array -> int array
(** [reference t x]: exact dot products in half-units,
    [y.(o) = sum_i to_half_units weights.(o).(i) * x.(i)]. *)

val reference_float : t -> int array -> float array
(** Same, in real units (half-units / 2). *)

val weight_bits : t -> int
(** Total weight storage footprint in bits (4 per element). *)

val total_macs : t -> int
