open Hnlpu_fp4

type cycle_state = {
  cycle : int;
  plane_in : int option;
  region_counts : int array array;
  plane_sums : int array;
  accumulators : int array;
  planes_folded : int;
}

type t = { machine : Metal_embedding.t; gemv : Gemv.t; routing : int array array }

let regions = 16

let make ?slack g =
  let machine = Metal_embedding.make ?slack g in
  (* Recover the routing (input -> region) from the weights directly; the
     Metal_embedding internals are private. *)
  let routing = Array.map (Array.map Fp4.code) g.Gemv.weights in
  { machine; gemv = g; routing }

let total_cycles t = t.gemv.Gemv.act_bits + 3

let partial_reference (g : Gemv.t) x ~planes =
  let bits = g.Gemv.act_bits in
  if planes < 0 || planes > bits then invalid_arg "Me_rtl.partial_reference";
  let ps = Bitserial.planes ~bits x in
  Array.map
    (fun row ->
      let acc = ref 0 in
      for b = 0 to planes - 1 do
        let pw = Bitserial.plane_weight ~bits b in
        Array.iteri
          (fun i w ->
            if Bitserial.plane_get ps.(b) i = 1 then
              acc := !acc + (pw * Fp4.to_half_units w))
          row
      done;
      !acc)
    g.Gemv.weights

let run t x =
  let g = t.gemv in
  if Array.length x <> g.Gemv.in_features then
    invalid_arg "Me_rtl.run: activation length mismatch";
  let bits = g.Gemv.act_bits in
  let m = g.Gemv.out_features in
  let planes = Bitserial.planes ~bits x in
  (* Pipeline registers, with the plane index each stage is carrying
     (None = bubble). *)
  let des : int option ref = ref None in
  let popcnt = Array.make_matrix m regions 0 in
  let popcnt_plane : int option ref = ref None in
  let plane_sum = Array.make m 0 in
  let plane_sum_plane : int option ref = ref None in
  let acc = Array.make m 0 in
  let folded = ref 0 in
  let trace = ref [] in
  for cycle = 0 to total_cycles t - 1 do
    (* Stage 4: accumulator folds the registered plane sum. *)
    (match !plane_sum_plane with
    | Some p ->
      let pw = Bitserial.plane_weight ~bits p in
      for o = 0 to m - 1 do
        acc.(o) <- acc.(o) + (pw * plane_sum.(o))
      done;
      incr folded
    | None -> ());
    (* Stage 3: multiply-by-constant + 16-way tree over the counts. *)
    (match !popcnt_plane with
    | Some p ->
      for o = 0 to m - 1 do
        let s = ref 0 in
        for c = 0 to regions - 1 do
          s := !s + (Fp4.to_half_units (Fp4.of_code c) * popcnt.(o).(c))
        done;
        plane_sum.(o) <- !s
      done;
      plane_sum_plane := Some p
    | None -> plane_sum_plane := None);
    (* Stage 2: POPCNT of the wires the DES is driving. *)
    (match !des with
    | Some p ->
      for o = 0 to m - 1 do
        Array.fill popcnt.(o) 0 regions 0
      done;
      for o = 0 to m - 1 do
        let route = t.routing.(o) in
        for i = 0 to g.Gemv.in_features - 1 do
          if Bitserial.plane_get planes.(p) i = 1 then
            popcnt.(o).(route.(i)) <- popcnt.(o).(route.(i)) + 1
        done
      done;
      popcnt_plane := Some p
    | None -> popcnt_plane := None);
    (* Stage 1: DES presents the next plane. *)
    des := (if cycle < bits then Some cycle else None);
    trace :=
      {
        cycle;
        plane_in = !des;
        region_counts = Array.map Array.copy popcnt;
        plane_sums = Array.copy plane_sum;
        accumulators = Array.copy acc;
        planes_folded = !folded;
      }
      :: !trace
  done;
  (List.rev !trace, Array.copy acc)
