(** Common PPA (power–performance–area) report emitted by each embedding
    machine, the data behind Figures 12 and 13. *)

type t = {
  design : string;
  transistors : float;       (** Logic transistors (excl. SRAM bit cells). *)
  sram_bytes : int;           (** On-unit SRAM capacity, 0 if none. *)
  area_mm2 : float;           (** Logic area + SRAM macro area. *)
  cycles : int;               (** Latency of one GEMV in clock cycles. *)
  dynamic_energy_j : float;   (** Switching energy of one GEMV. *)
  leakage_power_w : float;    (** Static power of the whole unit. *)
}

val latency_s : Hnlpu_gates.Tech.t -> t -> float

val energy_j : Hnlpu_gates.Tech.t -> t -> float
(** Dynamic energy plus leakage integrated over the op latency — the
    per-operation energy plotted in Figure 13. *)

val area_ratio : t -> baseline:t -> float
(** Area relative to a baseline design (Figure 12 normalizes to the
    MAC-array's 64 KB SRAM). *)

val pp : Hnlpu_gates.Tech.t -> Format.formatter -> t -> unit

val to_table : Hnlpu_gates.Tech.t -> t list -> Hnlpu_util.Table.t
(** Comparison table across designs. *)
