(** Cell-Embedding (CE) — conventional hardwiring (paper Figure 4-1).

    One multiply-by-constant unit per weight element, silicon-encoded, plus
    one wide adder tree per output neuron.  Weights are immutable but the
    silicon *devices* depend on them, so every chip needs its own full
    photomask set — the $6B straw-man of §2.2.

    The machine is fully parallel: all products form combinationally and one
    CSA tree per neuron reduces them.  Latency is a handful of cycles;
    area is dominated by the per-weight multipliers and the strength of the
    adder trees (Figure 4's point: compare against {!Metal_embedding}). *)

type t

val make : Gemv.t -> t

val run : t -> int array -> int array * Report.t
(** Execute, returning half-unit results (always equal to
    {!Gemv.reference}) and the PPA report at 5 nm. *)

val report : ?tech:Hnlpu_gates.Tech.t -> t -> Report.t

val tree_stats : t -> Hnlpu_fp4.Csa.stats
(** Structural statistics of one neuron's adder tree. *)
