(** Metal-Embedding (ME) — the Hardwired-Neuron machine (paper §3.1,
    Figures 4-2 and 5).

    Activations arrive bit-serially, LSB first.  Each input wire is routed
    (by the M8–M11 metal layers — here, by the [routing] table) to the
    POPCNT region of its weight's E2M1 code.  Per bit-plane the machine:

    + counts the set wires of each region (POPCNT),
    + multiplies each count by the region's constant (16 multipliers),
    + reduces the 16 products with a small adder tree, and
    + accumulates the plane sums with weights [2^b] (negative for the sign
      plane).

    The silicon is weight-independent: changing a weight only re-routes a
    wire, which is what makes the Sea-of-Neurons mask sharing possible.

    [run] is bit-exact against {!Gemv.reference} for all weights and
    activations — the central functional claim, covered by property tests. *)

type t

val make : ?slack:float -> Gemv.t -> t
(** [slack] (default 2.0) oversizes each POPCNT region relative to the
    balanced share [in_features/16] so that imbalanced weight-value
    distributions still fit (paper: "accumulators should be made with
    sufficient slackness"; spare ports are grounded).  Raises
    [Invalid_argument] if some weight value occurs more often than the
    slacked capacity. *)

val run : t -> int array -> int array * Report.t
(** Execute the bit-serial machine; returns half-unit results and the 5 nm
    PPA report. *)

val report : ?tech:Hnlpu_gates.Tech.t -> t -> Report.t

val region_capacity : t -> int
(** Ports provisioned per POPCNT region. *)

val region_load : t -> int array
(** [region_load t].(c): how many input wires of one (the fullest) neuron
    actually land in region [c] — diagnostics for the slack sizing. *)

val serial_cycles : t -> int
(** Bit-planes streamed per GEMV = activation width. *)
