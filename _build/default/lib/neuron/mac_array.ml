open Hnlpu_gates

type t = { gemv : Gemv.t; n_macs : int; sram : Sram.t }

let make ?(n_macs = 1024) gemv =
  if n_macs <= 0 then invalid_arg "Mac_array.make: n_macs must be positive";
  let bytes = (Gemv.weight_bits gemv + 7) / 8 in
  (* One tile of weights per access: n_macs 4-bit weights. *)
  let sram = Sram.make ~capacity_bytes:bytes ~word_bits:(n_macs * 4) () in
  { gemv; n_macs; sram }

let tiles t = (Gemv.total_macs t.gemv + t.n_macs - 1) / t.n_macs

let mac_fa_equiv = Census.fp4_full_mac ~input_bits:8 / Census.full_adder

let pipeline_fill t =
  (* Read issue + MAC + per-lane accumulation chain across a tile row. *)
  let accum_levels =
    Timing.cpa_levels (t.gemv.Gemv.act_bits + 8) * (t.gemv.Gemv.in_features / t.n_macs |> max 1)
  in
  2 + Timing.cycles_of_levels (Timing.fa_levels * 4) + Timing.cycles_of_levels accum_levels

let cycles t = tiles t + pipeline_fill t

let report ?(tech = Tech.n5) t =
  let macs = float_of_int t.n_macs in
  let mac_tr = float_of_int (Census.fp4_full_mac ~input_bits:t.gemv.Gemv.act_bits) in
  let logic_tr = (macs *. mac_tr) +. float_of_int (Census.register (t.n_macs * 4)) in
  let total_bits = Gemv.weight_bits t.gemv in
  let reads = Sram.reads_to_stream t.sram ~total_bits in
  let read_energy = float_of_int reads *. Sram.read_energy_j tech t.sram in
  let mac_energy =
    float_of_int (Gemv.total_macs t.gemv)
    *. float_of_int mac_fa_equiv *. tech.Tech.gate_energy_fj *. 1e-15
  in
  let reg_energy =
    float_of_int reads *. float_of_int (t.n_macs * 4)
    *. tech.Tech.flop_energy_fj *. 1e-15
  in
  {
    Report.design = "MAC array (MA)";
    transistors = logic_tr;
    sram_bytes = Sram.capacity_bytes t.sram;
    (* Figure 12 convention: SRAM macro only. *)
    area_mm2 = Sram.area_mm2 tech t.sram;
    cycles = cycles t;
    dynamic_energy_j = read_energy +. mac_energy +. reg_energy;
    leakage_power_w =
      Sram.leakage_w tech t.sram +. (logic_tr *. tech.Tech.leakage_w_per_transistor);
  }

let run t x =
  let ref_out = Gemv.reference t.gemv x in
  (* Emulate the tiled execution: accumulate tile by tile and check that the
     tiling reproduces the reference exactly. *)
  let out = Array.make t.gemv.Gemv.out_features 0 in
  let per_row = max 1 (t.n_macs / t.gemv.Gemv.in_features) in
  ignore per_row;
  let flat = ref [] in
  Array.iteri
    (fun o row ->
      Array.iteri (fun i w -> flat := (o, Hnlpu_fp4.Fp4.to_half_units w * x.(i)) :: !flat) row)
    t.gemv.Gemv.weights;
  let items = Array.of_list (List.rev !flat) in
  let n = Array.length items in
  let pos = ref 0 in
  while !pos < n do
    let stop = min n (!pos + t.n_macs) in
    for k = !pos to stop - 1 do
      let o, p = items.(k) in
      out.(o) <- out.(o) + p
    done;
    pos := stop
  done;
  assert (out = ref_out);
  (out, report t)
