open Hnlpu_fp4
open Hnlpu_gates

type t = {
  gemv : Gemv.t;
  tree_stats : Csa.stats;  (** One neuron's product-reduction tree. *)
  product_bits : int;
}

let make gemv =
  (* Product of an act_bits two's-complement activation and a half-unit
     constant (|c| <= 12) fits in act_bits + 4 bits. *)
  let product_bits = gemv.Gemv.act_bits + 4 in
  let dummy = Array.make gemv.Gemv.in_features 0 in
  let _, tree_stats = Csa.reduce ~width:product_bits dummy in
  { gemv; tree_stats; product_bits }

let tree_stats t = t.tree_stats

let cycles t =
  let mult_levels = Timing.fa_levels * 2 in
  Timing.cycles_of_levels (mult_levels + Timing.csa_levels t.tree_stats)

(* Wide parallel trees see uneven arrival times; spurious transitions
   multiply the switched capacitance.  1.8x is a standard planning figure. *)
let glitch_factor = 1.8

let report ?(tech = Tech.n5) t =
  let g = t.gemv in
  let n = g.Gemv.in_features and m = g.Gemv.out_features in
  let mult_tr =
    (* Actual constant multipliers of this weight matrix. *)
    Array.fold_left
      (fun acc row ->
        Array.fold_left
          (fun acc w ->
            acc + Census.fp4_constant_multiplier ~input_bits:g.Gemv.act_bits w)
          acc row)
      0 g.Gemv.weights
  in
  let tree_tr = Census.csa_cost t.tree_stats * m in
  let out_regs = Census.register (t.product_bits + 12) * m in
  let transistors = float_of_int (mult_tr + tree_tr + out_regs) in
  let fa_ops_per_neuron =
    t.tree_stats.Csa.full_adders + (t.tree_stats.Csa.half_adders / 2)
    + t.tree_stats.Csa.cpa_width
  in
  let dyn =
    ((float_of_int (fa_ops_per_neuron * m) *. glitch_factor)
    +. (float_of_int (n * m) *. 2.0 (* shift-add multiplier activity *)))
    *. tech.Tech.gate_energy_fj *. 1e-15
  in
  {
    Report.design = "Cell-Embedding (CE)";
    transistors;
    sram_bytes = 0;
    area_mm2 = Tech.area_of_transistors tech transistors;
    cycles = cycles t;
    dynamic_energy_j = dyn;
    leakage_power_w = transistors *. tech.Tech.leakage_w_per_transistor;
  }

let run t x =
  let g = t.gemv in
  (* Form all products combinationally, then reduce per neuron — the CE
     datapath shape.  Must equal the reference by construction. *)
  let out =
    Array.map
      (fun row ->
        let acc = ref 0 in
        Array.iteri (fun i w -> acc := !acc + (Fp4.to_half_units w * x.(i))) row;
        !acc)
      g.Gemv.weights
  in
  assert (out = Gemv.reference g x);
  (out, report t)
