let levels_per_cycle = 16

let fa_levels = 2

let cpa_levels w =
  if w <= 0 then 0
  else
    let rec log2_ceil n acc = if n <= 1 then acc else log2_ceil ((n + 1) / 2) (acc + 1) in
    2 * log2_ceil w 0

let cycles_of_levels levels =
  if levels <= 0 then 0 else (levels + levels_per_cycle - 1) / levels_per_cycle

let csa_levels (s : Hnlpu_fp4.Csa.stats) =
  (s.depth * fa_levels) + cpa_levels s.cpa_width
