open Hnlpu_util
open Hnlpu_gates

type t = {
  design : string;
  transistors : float;
  sram_bytes : int;
  area_mm2 : float;
  cycles : int;
  dynamic_energy_j : float;
  leakage_power_w : float;
}

let latency_s tech t = float_of_int t.cycles *. Tech.cycle_time_s tech

let energy_j tech t =
  t.dynamic_energy_j +. (t.leakage_power_w *. latency_s tech t)

let area_ratio t ~baseline = t.area_mm2 /. baseline.area_mm2

let pp tech fmt t =
  Format.fprintf fmt
    "@[<v>%s:@ area %s2 (%s transistors, %s SRAM)@ latency %d cycles (%s)@ \
     energy %s (leakage %s)@]"
    t.design
    (Units.si (t.area_mm2 *. 1e-6))
    (Units.si t.transistors)
    (Units.bytes (float_of_int t.sram_bytes))
    t.cycles
    (Units.seconds (latency_s tech t))
    (Units.joules (energy_j tech t))
    (Units.watts t.leakage_power_w)

let to_table tech reports =
  let table =
    Table.create
      ~headers:
        [ "Design"; "Area (mm2)"; "Transistors"; "SRAM"; "Cycles"; "Energy (nJ)" ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.design;
          Printf.sprintf "%.4f" r.area_mm2;
          Units.si r.transistors;
          Units.bytes (float_of_int r.sram_bytes);
          string_of_int r.cycles;
          Printf.sprintf "%.2f" (energy_j tech r *. 1e9);
        ])
    reports;
  table
