(** The MAC-array (MA) baseline of §6.3: a 64 KB weight SRAM feeding a
    conventional array of 1024 FP4 MACs.

    Weights live as *data* in the SRAM and are re-fetched on every GEMV —
    the cost the Hardwired-Neuron designs eliminate.  Per Figure 12's
    convention the reported area covers the SRAM macro only ("excluding the
    arbitrarily-sized computing array"); the MAC logic still contributes
    transistors, energy and leakage. *)

type t

val make : ?n_macs:int -> Gemv.t -> t
(** [make gemv] sizes the SRAM to hold exactly the GEMV's weights (64 KB for
    the paper benchmark).  [n_macs] defaults to 1024. *)

val run : t -> int array -> int array * Report.t
(** Execute one GEMV the way the array would (tile by tile), returning the
    half-unit results — always equal to {!Gemv.reference} — and the PPA
    report under {!Hnlpu_gates.Tech.n5}. *)

val report : ?tech:Hnlpu_gates.Tech.t -> t -> Report.t
(** PPA report without executing (structure-only). *)
