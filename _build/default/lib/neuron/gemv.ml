open Hnlpu_util
open Hnlpu_fp4

type t = {
  weights : Fp4.t array array;
  in_features : int;
  out_features : int;
  act_bits : int;
}

let make ~weights ~act_bits =
  let out_features = Array.length weights in
  if out_features = 0 then invalid_arg "Gemv.make: no output rows";
  let in_features = Array.length weights.(0) in
  if in_features = 0 then invalid_arg "Gemv.make: no input columns";
  Array.iter
    (fun row ->
      if Array.length row <> in_features then
        invalid_arg "Gemv.make: ragged weight matrix")
    weights;
  if act_bits < 2 || act_bits > 16 then
    invalid_arg "Gemv.make: act_bits out of range";
  { weights; in_features; out_features; act_bits }

let random rng ~in_features ~out_features ~act_bits =
  let weights =
    Array.init out_features (fun _ ->
        Array.init in_features (fun _ -> Fp4.of_code (Rng.int rng 16)))
  in
  make ~weights ~act_bits

let random_activations rng t =
  let lo = Bitserial.min_int_for t.act_bits in
  let span = (1 lsl t.act_bits) - 1 in
  Array.init t.in_features (fun _ -> lo + Rng.int rng (span + 1))

let paper_benchmark rng = random rng ~in_features:1024 ~out_features:128 ~act_bits:8

let reference t x =
  if Array.length x <> t.in_features then
    invalid_arg "Gemv.reference: activation length mismatch";
  Array.map
    (fun row ->
      let acc = ref 0 in
      for i = 0 to t.in_features - 1 do
        acc := !acc + (Fp4.to_half_units row.(i) * x.(i))
      done;
      !acc)
    t.weights

let reference_float t x =
  Array.map (fun h -> float_of_int h /. 2.0) (reference t x)

let weight_bits t = t.in_features * t.out_features * 4

let total_macs t = t.in_features * t.out_features
