type entry = {
  constant : string;
  value : float;
  unit_ : string;
  anchor : string;
  derived_fraction_note : string;
}

let all () =
  [
    {
      constant = "Census.popcount_port_transistors";
      value = float_of_int Hnlpu_gates.Census.popcount_port_transistors;
      unit_ = "transistors/port";
      anchor = "Fig. 12 ME area ratio; Table 1 HN array 573 mm2";
      derived_fraction_note =
        "static-CMOS FA would be 28 T; compact counter cells + slice sharing fitted";
    };
    {
      constant = "Hn_array.transistors_per_weight";
      value = Hnlpu_chip.Hn_array.transistors_per_weight;
      unit_ = "transistors/weight";
      anchor = "Table 1 HN array area";
      derived_fraction_note = "port cost derived; +1.3 amortized neuron overhead fitted";
    };
    {
      constant = "Hn_array.active_site_fj_per_cycle";
      value = 0.254;
      unit_ = "fJ/site/cycle";
      anchor = "Table 1 HN array 76.92 W";
      derived_fraction_note = "active-site census derived; energy coefficient fitted";
    };
    {
      constant = "Perf.link_contention_factor";
      value = Hnlpu_system.Perf.link_contention_factor;
      unit_ = "x";
      anchor = "Fig. 14 comm shares; Table 2 throughput";
      derived_fraction_note =
        "independently corroborated by Traffic's M/M/1 factor at 71% fabric load";
    };
    {
      constant = "Vex.attention_efficiency";
      value = Hnlpu_chip.Vex.attention_efficiency;
      unit_ = "fraction of 32 lanes";
      anchor = "Fig. 14 attention share (15.1% at 64K)";
      derived_fraction_note = "lane count from the paper; sustained efficiency fitted";
    };
    {
      constant = "Hbm.effective_bandwidth";
      value = Hnlpu_chip.Hbm.hnlpu.Hnlpu_chip.Hbm.effective_bandwidth_bytes_per_s;
      unit_ = "B/s";
      anchor = "Fig. 14 stall onset between 256K and 512K";
      derived_fraction_note = "within the physical 2..8-stack HBM3 band";
    };
    {
      constant = "Attention_buffer.bank_efficiency";
      value = 0.41;
      unit_ = "fraction";
      anchor = "Table 1 buffer 136.11 mm2";
      derived_fraction_note = "bitcell area public; macro efficiency fitted";
    };
    {
      constant = "Floorplan.buffer_dynamic_w";
      value = 81.89;
      unit_ = "W";
      anchor = "Table 1 buffer 85.73 W";
      derived_fraction_note = "leakage derived (3.8 W); bank-fabric dynamic power adopted";
    };
    {
      constant = "Pricing.h100_license_usd_per_gpu_per_year";
      value = Hnlpu_tco.Pricing.h100_license_usd_per_gpu_per_year;
      unit_ = "$/GPU/yr";
      anchor = "Table 3 maintenance rows (both volumes)";
      derived_fraction_note = "back-solved exactly; consistent with NVAIE pricing";
    };
  ]

let to_table () =
  let t =
    Hnlpu_util.Table.create ~headers:[ "Constant"; "Value"; "Unit"; "Anchor" ]
  in
  List.iter
    (fun e ->
      Hnlpu_util.Table.add_row t
        [ e.constant; Hnlpu_util.Units.si ~digits:3 e.value; e.unit_; e.anchor ])
    (all ());
  t

let count () = List.length (all ())
