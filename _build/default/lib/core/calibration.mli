(** The calibrated-constant registry, as code.

    A handful of physical coefficients in this reproduction are not
    derivable from the paper's text and were instead fitted to its
    published operating points (EXPERIMENTS.md documents each).  This
    module enumerates them programmatically — value, defining module, and
    the paper anchor each one is pinned to — so tooling (and the test
    suite) can verify the registry stays in sync with the code. *)

type entry = {
  constant : string;       (** Qualified name, e.g. "Perf.link_contention_factor". *)
  value : float;           (** Live value, read from the defining module. *)
  unit_ : string;
  anchor : string;         (** The paper artifact it reproduces. *)
  derived_fraction_note : string;
      (** What part is first-principles vs fitted. *)
}

val all : unit -> entry list
(** Every calibrated constant, in dependency order. *)

val to_table : unit -> Hnlpu_util.Table.t

val count : unit -> int
(** How many knobs the whole reproduction rests on (single digits). *)
