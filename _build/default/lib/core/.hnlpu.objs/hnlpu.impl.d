lib/core/hnlpu.ml: Calibration Experiments Hnlpu_baseline Hnlpu_chip Hnlpu_fp4 Hnlpu_gates Hnlpu_litho Hnlpu_model Hnlpu_neuron Hnlpu_noc Hnlpu_system Hnlpu_tco Hnlpu_tensor Hnlpu_util
