lib/core/experiments.mli: Hnlpu_neuron Hnlpu_util
