lib/core/calibration.ml: Hnlpu_chip Hnlpu_gates Hnlpu_system Hnlpu_tco Hnlpu_util List
