lib/core/calibration.mli: Hnlpu_util
