lib/tensor/mat.ml: Array Float Hnlpu_util
