lib/tensor/vec.ml: Array Float Fun Hnlpu_util List
