lib/tensor/mat.mli: Hnlpu_util Vec
