lib/tensor/vec.mli: Hnlpu_util
