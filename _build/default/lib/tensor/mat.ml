type t = { rows : int; cols : int; data : float array }

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then invalid_arg "Mat.create: non-positive size";
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let of_arrays arrays =
  let rows = Array.length arrays in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length arrays.(0) in
  if cols = 0 then invalid_arg "Mat.of_arrays: empty row";
  let m = create ~rows ~cols in
  Array.iteri
    (fun r row ->
      if Array.length row <> cols then invalid_arg "Mat.of_arrays: ragged";
      Array.blit row 0 m.data (r * cols) cols)
    arrays;
  m

let init ~rows ~cols f =
  let m = create ~rows ~cols in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      m.data.((r * cols) + c) <- f r c
    done
  done;
  m

let gaussian ?std rng ~rows ~cols =
  let std =
    match std with Some s -> s | None -> 1.0 /. sqrt (float_of_int rows)
  in
  init ~rows ~cols (fun _ _ -> std *. Hnlpu_util.Rng.gaussian rng)

let rows m = m.rows
let cols m = m.cols

let get m r c = m.data.((r * m.cols) + c)
let set m r c v = m.data.((r * m.cols) + c) <- v

let row m r = Array.sub m.data (r * m.cols) m.cols

let col m c = Array.init m.rows (fun r -> get m r c)

let gemv m x =
  if Array.length x <> m.rows then invalid_arg "Mat.gemv: dimension mismatch";
  let out = Array.make m.cols 0.0 in
  for r = 0 to m.rows - 1 do
    let xi = x.(r) in
    if xi <> 0.0 then begin
      let base = r * m.cols in
      for c = 0 to m.cols - 1 do
        out.(c) <- out.(c) +. (xi *. m.data.(base + c))
      done
    end
  done;
  out

let gemv_t m x =
  if Array.length x <> m.cols then invalid_arg "Mat.gemv_t: dimension mismatch";
  Array.init m.rows (fun r ->
      let base = r * m.cols in
      let acc = ref 0.0 in
      for c = 0 to m.cols - 1 do
        acc := !acc +. (m.data.(base + c) *. x.(c))
      done;
      !acc)

let transpose m = init ~rows:m.cols ~cols:m.rows (fun r c -> get m c r)

let sub_cols m ~lo ~len =
  if lo < 0 || len <= 0 || lo + len > m.cols then invalid_arg "Mat.sub_cols";
  init ~rows:m.rows ~cols:len (fun r c -> get m r (lo + c))

let sub_rows m ~lo ~len =
  if lo < 0 || len <= 0 || lo + len > m.rows then invalid_arg "Mat.sub_rows";
  init ~rows:len ~cols:m.cols (fun r c -> get m (lo + r) c)

let map f m = { m with data = Array.map f m.data }

let to_arrays m = Array.init m.rows (fun r -> row m r)

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat.max_abs_diff: shape mismatch";
  let m = ref 0.0 in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i)))) a.data;
  !m
