(** Dense float vectors — the activation substrate of the reference
    transformer.  Everything is plain [float array]; functions are pure
    unless suffixed [_inplace]. *)

type t = float array

val zeros : int -> t

val init : int -> (int -> float) -> t

val gaussian : Hnlpu_util.Rng.t -> int -> t
(** Standard normal entries. *)

val add : t -> t -> t
(** Element-wise sum; raises on length mismatch. *)

val add_inplace : t -> t -> unit
(** [add_inplace dst src]: dst += src. *)

val sub : t -> t -> t

val scale : float -> t -> t

val mul : t -> t -> t
(** Element-wise (Hadamard) product. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val max_abs_diff : t -> t -> float

val softmax : t -> t
(** Numerically stable softmax (max-subtracted). *)

val softmax_masked : t -> valid:int -> t
(** Softmax over the first [valid] entries; the rest are zero — used for
    causal attention over a growing context. *)

val rmsnorm : ?eps:float -> gain:t -> t -> t
(** Root-mean-square normalization: [x / rms x * gain] (paper §4.1 lists
    RMSNorm among the hardwired nonlinearities). *)

val silu : t -> t
(** x * sigmoid x. *)

val swiglu : gate:t -> up:t -> t
(** [silu gate * up] — the SwiGLU combination used by gpt-oss experts. *)

val argmax : t -> int

val top_k : int -> t -> (int * float) list
(** Indices and values of the k largest entries, descending.  Ties resolve
    to the lower index. *)

val mean : t -> float
