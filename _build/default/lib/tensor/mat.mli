(** Dense row-major float matrices.

    The reference transformer stores weight matrices as [(rows, cols)] =
    [(in_features, out_features)] so that [gemv m x] computes [x . m] — the
    orientation of the paper's dataflow figures ([Query = X * Wq]). *)

type t

val create : rows:int -> cols:int -> t
(** Zero-filled. *)

val of_arrays : float array array -> t
(** Rows from arrays; raises on ragged input. *)

val init : rows:int -> cols:int -> (int -> int -> float) -> t

val gaussian : ?std:float -> Hnlpu_util.Rng.t -> rows:int -> cols:int -> t
(** Entries i.i.d. N(0, std²); [std] defaults to [1/sqrt rows] (a standard
    initializer that keeps activations O(1) through deep stacks). *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val row : t -> int -> Vec.t
(** Copy of a row. *)

val col : t -> int -> Vec.t
(** Copy of a column. *)

val gemv : t -> Vec.t -> Vec.t
(** [gemv m x] = [x . m]: the input has [rows m] entries, the result
    [cols m]. *)

val gemv_t : t -> Vec.t -> Vec.t
(** [gemv_t m x] = [m . x] (x has [cols m] entries). *)

val transpose : t -> t

val sub_cols : t -> lo:int -> len:int -> t
(** Column slice — used to split weight matrices across chip columns the
    way §5's mapping does. *)

val sub_rows : t -> lo:int -> len:int -> t

val map : (float -> float) -> t -> t

val to_arrays : t -> float array array

val max_abs_diff : t -> t -> float
