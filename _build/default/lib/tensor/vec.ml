type t = float array

let zeros n = Array.make n 0.0

let init = Array.init

let gaussian rng n = Array.init n (fun _ -> Hnlpu_util.Rng.gaussian rng)

let check_same_length name a b =
  if Array.length a <> Array.length b then
    invalid_arg (name ^ ": length mismatch")

let add a b =
  check_same_length "Vec.add" a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let add_inplace dst src =
  check_same_length "Vec.add_inplace" dst src;
  for i = 0 to Array.length dst - 1 do
    dst.(i) <- dst.(i) +. src.(i)
  done

let sub a b =
  check_same_length "Vec.sub" a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s a = Array.map (fun x -> s *. x) a

let mul a b =
  check_same_length "Vec.mul" a b;
  Array.mapi (fun i x -> x *. b.(i)) a

let dot a b =
  check_same_length "Vec.dot" a b;
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm2 a = sqrt (dot a a)

let max_abs_diff a b =
  check_same_length "Vec.max_abs_diff" a b;
  let m = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let softmax_masked a ~valid =
  if valid <= 0 || valid > Array.length a then invalid_arg "Vec.softmax_masked";
  let m = ref neg_infinity in
  for i = 0 to valid - 1 do
    if a.(i) > !m then m := a.(i)
  done;
  let out = Array.make (Array.length a) 0.0 in
  let z = ref 0.0 in
  for i = 0 to valid - 1 do
    let e = exp (a.(i) -. !m) in
    out.(i) <- e;
    z := !z +. e
  done;
  for i = 0 to valid - 1 do
    out.(i) <- out.(i) /. !z
  done;
  out

let softmax a = softmax_masked a ~valid:(Array.length a)

let rmsnorm ?(eps = 1e-6) ~gain a =
  check_same_length "Vec.rmsnorm" gain a;
  let n = Array.length a in
  let ms = ref 0.0 in
  for i = 0 to n - 1 do
    ms := !ms +. (a.(i) *. a.(i))
  done;
  let inv = 1.0 /. sqrt ((!ms /. float_of_int n) +. eps) in
  Array.mapi (fun i x -> x *. inv *. gain.(i)) a

let silu a = Array.map (fun x -> x /. (1.0 +. exp (-.x))) a

let swiglu ~gate ~up = mul (silu gate) up

let argmax a =
  if Array.length a = 0 then invalid_arg "Vec.argmax: empty";
  let best = ref 0 in
  for i = 1 to Array.length a - 1 do
    if a.(i) > a.(!best) then best := i
  done;
  !best

let top_k k a =
  if k <= 0 || k > Array.length a then invalid_arg "Vec.top_k";
  let idx = Array.init (Array.length a) Fun.id in
  Array.sort
    (fun i j ->
      match compare a.(j) a.(i) with 0 -> compare i j | c -> c)
    idx;
  List.init k (fun r -> (idx.(r), a.(idx.(r))))

let mean a =
  if Array.length a = 0 then nan
  else Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)
