type stats = {
  full_adders : int;
  half_adders : int;
  depth : int;
  cpa_width : int;
}

let empty_stats = { full_adders = 0; half_adders = 0; depth = 0; cpa_width = 0 }

let add_stats a b =
  {
    full_adders = a.full_adders + b.full_adders;
    half_adders = a.half_adders + b.half_adders;
    depth = max a.depth b.depth;
    cpa_width = max a.cpa_width b.cpa_width;
  }

(* A 3:2 compressor preserves the column-weighted sum (a+b+c = s + 2*carry),
   so the value flowing through the tree is fully determined by the per-column
   set-bit counts, while the *structure* is determined by per-column wire
   counts.  We track both: [set] for the arithmetic result, [wires] for the
   hardware census. *)
let reduce ~width xs =
  if width < 1 || width > 61 then invalid_arg "Csa.reduce: width out of range";
  let n = Array.length xs in
  if n = 0 then (0, empty_stats)
  else begin
    let limit = 1 lsl width in
    Array.iter
      (fun x ->
        if x < 0 || x >= limit then
          invalid_arg "Csa.reduce: operand out of declared width")
      xs;
    (* Exact sum via column counts. *)
    let sum = Array.fold_left ( + ) 0 xs in
    (* Structural simulation over wire counts.  Columns grow past [width] as
       carries ripple left; width + ceil(log2 n) + 2 bounds the growth. *)
    let extra =
      let rec bits k acc = if k = 0 then acc else bits (k lsr 1) (acc + 1) in
      bits n 0
    in
    let wires = Array.make (width + extra + 2) 0 in
    for b = 0 to width - 1 do
      wires.(b) <- n
    done;
    let fa = ref 0 and ha = ref 0 and depth = ref 0 in
    let needs_round () = Array.exists (fun w -> w > 2) wires in
    while needs_round () do
      incr depth;
      let carries = Array.make (Array.length wires) 0 in
      for b = 0 to Array.length wires - 2 do
        let w = wires.(b) in
        if w > 2 then begin
          let f = w / 3 in
          let rem = w mod 3 in
          let h = if rem = 2 then 1 else 0 in
          fa := !fa + f;
          ha := !ha + h;
          carries.(b + 1) <- carries.(b + 1) + f + h;
          (* sum bits kept in this column *)
          wires.(b) <- f + h + (if rem = 1 then 1 else 0)
        end
      done;
      for b = 0 to Array.length wires - 1 do
        wires.(b) <- wires.(b) + carries.(b)
      done
    done;
    let cpa_width =
      let top = ref 0 in
      Array.iteri (fun b w -> if w > 0 then top := b + 1) wires;
      let two_rows = Array.exists (fun w -> w = 2) wires in
      if two_rows then !top else 0
    in
    (sum, { full_adders = !fa; half_adders = !ha; depth = !depth; cpa_width })
  end

let popcount p =
  let n = Bytes.length p in
  let xs = Array.init n (fun i -> Char.code (Bytes.get p i)) in
  reduce ~width:1 xs

let adder_depth n =
  (* Wallace: rounds to compress n operand rows to 2 via 3:2 stages. *)
  let rec go n d = if n <= 2 then d else go (((n / 3) * 2) + (n mod 3)) (d + 1) in
  go n 0
