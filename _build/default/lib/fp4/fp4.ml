type t = int

(* Decoded magnitudes indexed by the 3-bit exponent+mantissa field.
   E2M1: exp=00 is subnormal (0, 0.5); otherwise value = 2^(exp-1)*(1+m/2). *)
let magnitudes = [| 0.0; 0.5; 1.0; 1.5; 2.0; 3.0; 4.0; 6.0 |]

let of_code c =
  if c < 0 || c > 15 then invalid_arg "Fp4.of_code: code out of range";
  c

let code t = t

let zero = 0

let is_negative t = t land 8 <> 0

let magnitude_code t = t land 7

let to_float t =
  let m = magnitudes.(magnitude_code t) in
  if is_negative t then -.m else m

let neg t = t lxor 8

let of_float x =
  if Float.is_nan x then invalid_arg "Fp4.of_float: nan";
  let sign = x < 0.0 in
  let m = Float.abs x in
  (* Nearest magnitude; ties go to the even code (smaller mantissa bit). *)
  let best = ref 0 and best_err = ref infinity in
  for i = 0 to 7 do
    let err = Float.abs (m -. magnitudes.(i)) in
    if
      err < !best_err
      || (err = !best_err && i land 1 = 0 && !best land 1 = 1)
    then begin
      best := i;
      best_err := err
    end
  done;
  if !best = 0 then zero else if sign then !best lor 8 else !best

let all = List.init 16 (fun i -> i)

let unique_magnitudes = Array.copy magnitudes

let equal = Int.equal

let pp fmt t = Format.fprintf fmt "%g" (to_float t)

let to_half_units t =
  let m = int_of_float (2.0 *. magnitudes.(magnitude_code t)) in
  if is_negative t then -m else m

let of_half_units h =
  let sign = h < 0 in
  let m = float_of_int (abs h) /. 2.0 in
  let rec find i =
    if i > 7 then None
    else if magnitudes.(i) = m then Some (if sign && i <> 0 then i lor 8 else i)
    else find (i + 1)
  in
  find 0
