(** FP4 (E2M1) weight format.

    gpt-oss 120B ships 4-bit weights; the paper hardwires them.  E2M1 is the
    OCP Microscaling element format: 1 sign bit, 2 exponent bits, 1 mantissa
    bit, no infinities and no NaN.  The 16 codes decode to
    {v 0, 0.5, 1, 1.5, 2, 3, 4, 6 v} and their negations (+0 and -0 both
    decode to [0.]).

    A value of this type is the raw 4-bit code.  The HN architecture keys its
    POPCNT accumulators on this code: all inputs multiplied by the same code
    are routed to the same accumulator region (paper §3.1, Figure 5). *)

type t = private int
(** A 4-bit code in [\[0, 15\]]. *)

val of_code : int -> t
(** [of_code c] validates [0 <= c < 16]. *)

val code : t -> int

val zero : t

val to_float : t -> float
(** Exact decoded value. *)

val of_float : float -> t
(** Round-to-nearest-even quantization onto the E2M1 grid; saturates at
    magnitude 6.  [-0.] and values rounding to zero map to +0. *)

val neg : t -> t
(** Sign-bit flip.  [neg zero] is the -0 code, which still decodes to 0. *)

val is_negative : t -> bool

val magnitude_code : t -> int
(** The 3 low bits (exponent+mantissa), i.e. the code with sign cleared. *)

val all : t list
(** All 16 codes, in code order. *)

val unique_magnitudes : float array
(** The 8 distinct non-negative representable magnitudes, ascending. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** {1 Fixed-point view}

    The HN datapath multiplies integer popcounts by integer constants.  Every
    E2M1 value is an integer multiple of 0.5, so a lossless integer view with
    scale 1/2 exists: [to_half_units] is in [\[-12, 12\]]. *)

val to_half_units : t -> int
(** [to_half_units t] = [2 * to_float t], exactly. *)

val of_half_units : int -> t option
(** Inverse of [to_half_units] when the integer is representable. *)
