type t = { scale_exp : int; elements : Fp4.t array }

let block_size = 32

let max_magnitude = 6.0 (* largest E2M1 value *)

let quantize_block xs =
  let n = Array.length xs in
  if n = 0 || n > block_size then
    invalid_arg "Blockscale.quantize_block: block must have 1..32 elements";
  let amax = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs in
  let scale_exp =
    if amax = 0.0 then 0
    else
      (* Largest power of two such that amax/2^e <= 6. *)
      let e = int_of_float (Float.ceil (log (amax /. max_magnitude) /. log 2.0)) in
      (* Guard against rounding of the log. *)
      let rec fix e =
        if amax /. (2.0 ** float_of_int e) > max_magnitude then fix (e + 1)
        else if e > -126 && amax /. (2.0 ** float_of_int (e - 1)) <= max_magnitude
        then fix (e - 1)
        else e
      in
      fix e
  in
  let s = 2.0 ** float_of_int scale_exp in
  { scale_exp; elements = Array.map (fun x -> Fp4.of_float (x /. s)) xs }

let dequantize_block { scale_exp; elements } =
  let s = 2.0 ** float_of_int scale_exp in
  Array.map (fun e -> s *. Fp4.to_float e) elements

let quantize xs =
  let n = Array.length xs in
  let nblocks = (n + block_size - 1) / block_size in
  Array.init nblocks (fun b ->
      let lo = b * block_size in
      let len = min block_size (n - lo) in
      quantize_block (Array.sub xs lo len))

let dequantize blocks =
  Array.concat (Array.to_list (Array.map dequantize_block blocks))

let quantization_error xs =
  if Array.length xs = 0 then 0.0
  else begin
    let ys = dequantize (quantize xs) in
    let num = ref 0.0 and den = ref 0.0 in
    Array.iteri
      (fun i x ->
        let d = ys.(i) -. x in
        num := !num +. (d *. d);
        den := !den +. (x *. x))
      xs;
    if !den = 0.0 then 0.0 else sqrt (!num /. !den)
  end
