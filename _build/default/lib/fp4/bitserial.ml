type plane = Bytes.t

let min_int_for bits = -(1 lsl (bits - 1))

let max_int_for bits = (1 lsl (bits - 1)) - 1

let check_range ~bits v =
  if bits < 2 || bits > 32 then invalid_arg "Bitserial: bits must be in 2..32";
  let lo = min_int_for bits and hi = max_int_for bits in
  Array.iteri
    (fun i x ->
      if x < lo || x > hi then
        invalid_arg
          (Printf.sprintf "Bitserial: element %d (=%d) out of %d-bit range" i x
             bits))
    v

let planes ~bits v =
  check_range ~bits v;
  let n = Array.length v in
  Array.init bits (fun b ->
      let p = Bytes.create n in
      for i = 0 to n - 1 do
        (* Two's complement: [land] on the masked representation. *)
        let repr = v.(i) land ((1 lsl bits) - 1) in
        Bytes.unsafe_set p i (if (repr lsr b) land 1 = 1 then '\001' else '\000')
      done;
      p)

let plane_get p i = Char.code (Bytes.get p i)

let plane_weight ~bits b =
  if b < 0 || b >= bits then invalid_arg "Bitserial.plane_weight";
  if b = bits - 1 then -(1 lsl b) else 1 lsl b

let reconstruct ~bits ps =
  if Array.length ps <> bits then invalid_arg "Bitserial.reconstruct: arity";
  let n = Bytes.length ps.(0) in
  Array.init n (fun i ->
      let acc = ref 0 in
      for b = 0 to bits - 1 do
        if plane_get ps.(b) i = 1 then acc := !acc + plane_weight ~bits b
      done;
      !acc)

let popcount_plane p =
  let acc = ref 0 in
  for i = 0 to Bytes.length p - 1 do
    acc := !acc + Char.code (Bytes.unsafe_get p i)
  done;
  !acc

let dot_by_planes ~bits ~weights v =
  if Array.length weights <> Array.length v then
    invalid_arg "Bitserial.dot_by_planes: length mismatch";
  let ps = planes ~bits v in
  let total = ref 0 in
  for b = 0 to bits - 1 do
    let per_plane = ref 0 in
    for i = 0 to Array.length v - 1 do
      if plane_get ps.(b) i = 1 then per_plane := !per_plane + weights.(i)
    done;
    total := !total + (!per_plane * plane_weight ~bits b)
  done;
  !total
