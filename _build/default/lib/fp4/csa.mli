(** Carry-save adder (CSA) trees (paper §3.1, Figure 3 right).

    Bit-serialized HN accumulation unfolds into a Wallace-style tree of 3:2
    compressors.  This module reduces a multiset of non-negative integers
    exactly, while counting the hardware the reduction would take: full
    adders, half adders, tree depth (compression rounds) and the width of
    the final carry-propagate adder.  The counts feed the area/energy census
    in {!Hnlpu_gates}; the arithmetic result feeds bit-exactness tests. *)

type stats = {
  full_adders : int;    (** 3:2 compressors consumed. *)
  half_adders : int;    (** 2:2 compressors consumed. *)
  depth : int;          (** Compression rounds until every column has <= 2 bits. *)
  cpa_width : int;      (** Width of the final carry-propagate adder. *)
}

val empty_stats : stats

val add_stats : stats -> stats -> stats
(** Component-wise sum except [depth] and [cpa_width], which take the max —
    the composition law for independent units operating in parallel. *)

val reduce : width:int -> int array -> int * stats
(** [reduce ~width xs] sums the integers [xs], each of which must lie in
    [\[0, 2^width)], through bit-level 3:2 compression.  Returns the exact
    sum and the structural statistics.  An empty input sums to 0. *)

val popcount : Bytes.t -> int * stats
(** Population count of a 0/1 byte-plane as a CSA tree of 1-bit inputs —
    exactly the POPCNT regions of a Hardwired-Neuron. *)

val adder_depth : int -> int
(** [adder_depth n]: number of 3:2 compression rounds needed to reduce [n]
    operands to 2 (the classical Wallace bound, ceil of log_{3/2}). *)
