(** LSB-first bit-serialization of activation vectors (paper §3.1, Step 2).

    Hardwired-Neurons accept activations one bit-plane per clock cycle,
    least-significant bit first, so that the per-weight accumulation reduces
    to a POPCNT of single wires.  Activations are signed two's-complement
    integers of a fixed width; the final (sign) plane carries negative
    weight [-2^(bits-1)].

    This module is bit-exact: [reconstruct (planes v) = v]. *)

type plane = Bytes.t
(** One bit-plane over an n-element vector, packed one byte per element
    (0 or 1) — byte packing keeps the simulator simple and fast enough. *)

val min_int_for : int -> int
val max_int_for : int -> int
(** Representable range for a given two's-complement width. *)

val check_range : bits:int -> int array -> unit
(** Raise [Invalid_argument] if any element does not fit in [bits]. *)

val planes : bits:int -> int array -> plane array
(** [planes ~bits v] is the [bits] bit-planes of [v], index 0 = LSB. *)

val plane_get : plane -> int -> int
(** Bit of element [i] in a plane: 0 or 1. *)

val plane_weight : bits:int -> int -> int
(** Arithmetic weight of plane [b]: [2^b], except [-2^(bits-1)] for the sign
    plane [b = bits-1]. *)

val reconstruct : bits:int -> plane array -> int array
(** Inverse of [planes]. *)

val popcount_plane : plane -> int
(** Number of set bits in a plane — what one POPCNT region computes in one
    cycle when every input wire is routed to it. *)

val dot_by_planes : bits:int -> weights:int array -> int array -> int
(** [dot_by_planes ~bits ~weights v]: evaluate [Σ weights.(i) * v.(i)] the
    bit-serial way — per plane, sum the weights of the set elements, then
    combine planes with their arithmetic weights.  Ground truth for the HN
    machine tests. *)
