(** Microscaling (MX) block quantization.

    gpt-oss 120B's FP4 weights use MXFP4: each block of 32 consecutive
    elements shares one power-of-two scale (E8M0).  Within a hardwired
    neuron the scale is folded into the final multiplier stage, so the HN
    POPCNT fabric only ever sees the 16 element codes; this module provides
    the quantize/dequantize path used to prepare synthetic weights and to
    check end-to-end numerics. *)

type t = { scale_exp : int; elements : Fp4.t array }
(** One quantized block: decoded value of element [i] is
    [2. ** scale_exp *. Fp4.to_float elements.(i)]. *)

val block_size : int
(** MX block size, 32. *)

val quantize_block : float array -> t
(** Quantize up to [block_size] floats: picks the E8M0 scale so the largest
    magnitude maps near the top of the E2M1 range, then rounds each element.
    Raises [Invalid_argument] on an empty or oversized block. *)

val dequantize_block : t -> float array

val quantize : float array -> t array
(** Quantize a whole vector block-by-block (last block may be short). *)

val dequantize : t array -> float array

val quantization_error : float array -> float
(** RMS relative error of a quantize/dequantize round-trip; used by tests to
    bound the information loss on Gaussian data. *)
