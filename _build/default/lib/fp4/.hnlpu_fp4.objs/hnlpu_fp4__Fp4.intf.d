lib/fp4/fp4.mli: Format
