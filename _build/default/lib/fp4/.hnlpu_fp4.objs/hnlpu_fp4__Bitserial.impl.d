lib/fp4/bitserial.ml: Array Bytes Char Printf
