lib/fp4/blockscale.ml: Array Float Fp4
