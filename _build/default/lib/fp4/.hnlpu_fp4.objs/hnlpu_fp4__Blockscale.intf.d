lib/fp4/blockscale.mli: Fp4
