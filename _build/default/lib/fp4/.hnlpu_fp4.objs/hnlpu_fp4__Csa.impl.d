lib/fp4/csa.ml: Array Bytes Char
