lib/fp4/fp4.ml: Array Float Format Int List
