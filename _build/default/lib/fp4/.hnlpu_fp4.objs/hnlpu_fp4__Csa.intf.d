lib/fp4/csa.mli: Bytes
