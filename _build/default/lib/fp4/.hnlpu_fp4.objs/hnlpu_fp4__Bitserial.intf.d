lib/fp4/bitserial.mli: Bytes
