lib/noc/link.ml:
