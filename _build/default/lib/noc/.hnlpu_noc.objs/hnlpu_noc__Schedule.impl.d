lib/noc/schedule.ml: Array Float Hashtbl Link List Topology
