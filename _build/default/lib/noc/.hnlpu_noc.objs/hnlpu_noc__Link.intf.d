lib/noc/link.mli:
