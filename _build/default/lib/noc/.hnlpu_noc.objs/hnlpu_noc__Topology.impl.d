lib/noc/topology.ml: Fun List
