lib/noc/collective.mli: Hnlpu_tensor Link Topology
