lib/noc/schedule.mli: Collective Link Topology
