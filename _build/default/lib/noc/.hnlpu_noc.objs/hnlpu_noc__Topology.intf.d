lib/noc/topology.mli:
