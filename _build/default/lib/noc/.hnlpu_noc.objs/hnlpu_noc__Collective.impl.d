lib/noc/collective.ml: Array Hnlpu_tensor Link List Topology Vec
