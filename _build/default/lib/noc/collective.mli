(** Collective operations over row/column groups (paper §4.3: the
    Interconnect Engine supports Broadcast/Reduce row-wise and
    Scatter/Broadcast/Reduce/Gather column-wise).

    Two aspects are modelled separately:

    - {b Function}: value-level collectives over per-chip vectors, used by
      the dataflow simulator to check that the §5 mapping computes the same
      numbers as the unpartitioned reference.
    - {b Timing/energy}: each chip's interconnect engine has one transmit
      and one receive port, so star-shaped collectives serialize over the
      group; ring all-gather keeps every port busy.  An all-reduce is a
      reduce followed by a broadcast; the 16-chip all-reduce is hierarchical
      (column all-reduce, then row all-reduce), as in Figure 10-IX. *)

type valued = (Topology.chip * Hnlpu_tensor.Vec.t) list
(** A value per chip of a group. *)

(** {1 Function} *)

val sum : valued -> Hnlpu_tensor.Vec.t
(** Element-wise sum of the group's vectors. *)

val all_reduce : valued -> valued
(** Everyone ends with {!sum}. *)

val gather : valued -> Hnlpu_tensor.Vec.t
(** Concatenation in ascending chip order. *)

val all_gather : valued -> valued
(** Everyone ends with {!gather}. *)

val scatter : chips:Topology.chip list -> Hnlpu_tensor.Vec.t -> valued
(** Split a vector into [length chips] equal shards, ascending chip order.
    Raises if the length is not divisible. *)

val broadcast : chips:Topology.chip list -> Hnlpu_tensor.Vec.t -> valued

(** {1 Timing} *)

val broadcast_time : ?link:Link.t -> group:int -> bytes:int -> unit -> float
(** Root streams to [group-1] peers through one TX port: serialized. *)

val reduce_time : ?link:Link.t -> group:int -> bytes:int -> unit -> float

val all_reduce_time : ?link:Link.t -> group:int -> bytes:int -> unit -> float
(** Reduce + broadcast. *)

val all_gather_time : ?link:Link.t -> group:int -> shard_bytes:int -> unit -> float
(** Ring: [group-1] steps, all ports busy. *)

val scatter_time : ?link:Link.t -> group:int -> shard_bytes:int -> unit -> float

val all_chip_all_reduce_time : ?link:Link.t -> bytes:int -> unit -> float
(** Hierarchical over the 4x4 fabric: column all-reduce then row
    all-reduce. *)

val transfers_of_all_reduce : group:int -> int
(** Number of point-to-point transfers (for energy and reporting). *)

(** {1 Energy} *)

val transfer_energy : ?link:Link.t -> transfers:int -> bytes:int -> unit -> float
