open Hnlpu_tensor

type valued = (Topology.chip * Vec.t) list

let check_group = function
  | [] -> invalid_arg "Collective: empty group"
  | (_, v0) :: rest ->
    let n = Array.length v0 in
    List.iter
      (fun (c, v) ->
        if not (Topology.valid c) then invalid_arg "Collective: invalid chip";
        if Array.length v <> n then invalid_arg "Collective: ragged values")
      rest

let sum vals =
  check_group vals;
  match vals with
  | [] -> assert false
  | (_, v0) :: rest ->
    let acc = Array.copy v0 in
    List.iter (fun (_, v) -> Vec.add_inplace acc v) rest;
    acc

let all_reduce vals =
  let s = sum vals in
  List.map (fun (c, _) -> (c, Array.copy s)) vals

let sorted vals = List.sort (fun (a, _) (b, _) -> compare a b) vals

let gather vals =
  check_group vals;
  Array.concat (List.map snd (sorted vals))

let all_gather vals =
  let g = gather vals in
  List.map (fun (c, _) -> (c, Array.copy g)) vals

let scatter ~chips v =
  let k = List.length chips in
  if k = 0 then invalid_arg "Collective.scatter: empty group";
  let n = Array.length v in
  if n mod k <> 0 then invalid_arg "Collective.scatter: uneven shards";
  let shard = n / k in
  List.mapi (fun i c -> (c, Array.sub v (i * shard) shard)) (List.sort compare chips)

let broadcast ~chips v = List.map (fun c -> (c, Array.copy v)) chips

(* --- Timing ------------------------------------------------------------- *)

let check_size group =
  if group < 1 then invalid_arg "Collective: group size must be positive"

let broadcast_time ?(link = Link.cxl3) ~group ~bytes () =
  check_size group;
  float_of_int (group - 1) *. Link.transfer_time_s link ~bytes

let reduce_time ?(link = Link.cxl3) ~group ~bytes () =
  check_size group;
  float_of_int (group - 1) *. Link.transfer_time_s link ~bytes

let all_reduce_time ?link ~group ~bytes () =
  reduce_time ?link ~group ~bytes () +. broadcast_time ?link ~group ~bytes ()

let all_gather_time ?(link = Link.cxl3) ~group ~shard_bytes () =
  check_size group;
  float_of_int (group - 1) *. Link.transfer_time_s link ~bytes:shard_bytes

let scatter_time ?(link = Link.cxl3) ~group ~shard_bytes () =
  check_size group;
  float_of_int (group - 1) *. Link.transfer_time_s link ~bytes:shard_bytes

let all_chip_all_reduce_time ?link ~bytes () =
  all_reduce_time ?link ~group:Topology.rows ~bytes ()
  +. all_reduce_time ?link ~group:Topology.cols ~bytes ()

let transfers_of_all_reduce ~group = 2 * (group - 1)

let transfer_energy ?(link = Link.cxl3) ~transfers ~bytes () =
  float_of_int transfers *. Link.transfer_energy_j link ~bytes
