(** The HNLPU interconnect topology (paper §4.2, Figure 9a): 16 compute
    modules in a logical 4x4 grid with direct point-to-point links to every
    other module in the same row and in the same column — a router-less
    fabric for row/column collectives.

    Chips are numbered 0..15; chip [id] sits at row [id / 4], column
    [id mod 4]. *)

type chip = int

val rows : int
val cols : int
val chips : int

val valid : chip -> bool

val row_of : chip -> int
val col_of : chip -> int
val chip_at : row:int -> col:int -> chip

val row_peers : chip -> chip list
(** The 3 other chips in the same row, ascending. *)

val col_peers : chip -> chip list

val row_group : int -> chip list
(** All 4 chips of a row, ascending. *)

val col_group : int -> chip list

val connected : chip -> chip -> bool
(** Direct link exists: same row or same column (and distinct). *)

val links : unit -> (chip * chip) list
(** All undirected links, each once with the lower id first — 48 links:
    4 rows x C(4,2) + 4 cols x C(4,2). *)

val degree : chip -> int
(** Direct neighbours per chip: 6. *)

val all_chips : chip list

val kv_owner : seq_pos:int -> col:int -> chip
(** The paper's KV interleaving: the key/value for sequence position [l]
    within column group [col] lives on chip [l mod 4] of that column
    (§4.2 "reduced to the chip-(l mod 4)"). *)
