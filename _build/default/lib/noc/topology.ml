type chip = int

let rows = 4
let cols = 4
let chips = rows * cols

let valid c = c >= 0 && c < chips

let check c = if not (valid c) then invalid_arg "Topology: invalid chip id"

let row_of c =
  check c;
  c / cols

let col_of c =
  check c;
  c mod cols

let chip_at ~row ~col =
  if row < 0 || row >= rows || col < 0 || col >= cols then
    invalid_arg "Topology.chip_at";
  (row * cols) + col

let row_group r =
  if r < 0 || r >= rows then invalid_arg "Topology.row_group";
  List.init cols (fun c -> chip_at ~row:r ~col:c)

let col_group c =
  if c < 0 || c >= cols then invalid_arg "Topology.col_group";
  List.init rows (fun r -> chip_at ~row:r ~col:c)

let row_peers c = List.filter (fun x -> x <> c) (row_group (row_of c))

let col_peers c = List.filter (fun x -> x <> c) (col_group (col_of c))

let connected a b =
  check a;
  check b;
  a <> b && (row_of a = row_of b || col_of a = col_of b)

let all_chips = List.init chips Fun.id

let links () =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if a < b && connected a b then Some (a, b) else None)
        all_chips)
    all_chips

let degree c =
  check c;
  List.length (row_peers c) + List.length (col_peers c)

let kv_owner ~seq_pos ~col =
  if seq_pos < 0 then invalid_arg "Topology.kv_owner: negative position";
  chip_at ~row:(seq_pos mod rows) ~col
