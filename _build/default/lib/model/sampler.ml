open Hnlpu_tensor

type strategy =
  | Greedy
  | Temperature of float
  | Top_k of int * float
  | Top_p of float * float

let check_temp t = if t <= 0.0 then invalid_arg "Sampler: non-positive temperature"

let multinomial rng probs =
  let u = Hnlpu_util.Rng.float rng 1.0 in
  let n = Array.length probs in
  let rec go i acc =
    if i >= n - 1 then n - 1
    else begin
      let acc = acc +. probs.(i) in
      if u < acc then i else go (i + 1) acc
    end
  in
  go 0 0.0

let dist strategy logits =
  match strategy with
  | Greedy ->
    let d = Array.make (Array.length logits) 0.0 in
    d.(Vec.argmax logits) <- 1.0;
    d
  | Temperature t ->
    check_temp t;
    Vec.softmax (Vec.scale (1.0 /. t) logits)
  | Top_k (k, t) ->
    check_temp t;
    if k <= 0 then invalid_arg "Sampler: k must be positive";
    let k = min k (Array.length logits) in
    let top = Vec.top_k k logits in
    let masked = Array.make (Array.length logits) neg_infinity in
    List.iter (fun (i, v) -> masked.(i) <- v /. t) top;
    Vec.softmax masked
  | Top_p (p, t) ->
    check_temp t;
    if p <= 0.0 || p > 1.0 then invalid_arg "Sampler: p must be in (0, 1]";
    let probs = Vec.softmax (Vec.scale (1.0 /. t) logits) in
    (* Keep the most likely tokens until their mass reaches p; the token
       that crosses the threshold is included (standard nucleus rule). *)
    let order = Vec.top_k (Array.length probs) probs in
    let keep = Array.make (Array.length probs) false in
    let rec take mass = function
      | [] -> ()
      | (i, q) :: rest ->
        keep.(i) <- true;
        let mass = mass +. q in
        if mass < p then take mass rest
    in
    take 0.0 order;
    let z = ref 0.0 in
    Array.iteri (fun i q -> if keep.(i) then z := !z +. q) probs;
    Array.mapi (fun i q -> if keep.(i) then q /. !z else 0.0) probs

let distribution = dist

let sample rng strategy logits = multinomial rng (dist strategy logits)

let log_prob strategy logits token =
  let p = (dist strategy logits).(token) in
  if p <= 0.0 then neg_infinity else log p

let with_repetition_penalty ~penalty ~recent logits =
  if penalty <= 1.0 then invalid_arg "Sampler: penalty must exceed 1.0";
  let out = Array.copy logits in
  List.iter
    (fun tok ->
      if tok >= 0 && tok < Array.length out then
        out.(tok) <-
          (if out.(tok) > 0.0 then out.(tok) /. penalty else out.(tok) *. penalty))
    recent;
  out
