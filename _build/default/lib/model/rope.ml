let apply ?(theta = 10_000.0) ~head_dim ~pos v =
  if Array.length v <> head_dim then invalid_arg "Rope.apply: wrong length";
  if head_dim mod 2 <> 0 then invalid_arg "Rope.apply: odd head_dim";
  let out = Array.copy v in
  let half = head_dim / 2 in
  for i = 0 to half - 1 do
    let freq = theta ** (-.(2.0 *. float_of_int i) /. float_of_int head_dim) in
    let angle = float_of_int pos *. freq in
    let c = cos angle and s = sin angle in
    let a = v.(2 * i) and b = v.((2 * i) + 1) in
    out.(2 * i) <- (a *. c) -. (b *. s);
    out.((2 * i) + 1) <- (a *. s) +. (b *. c)
  done;
  out

let apply_heads ?theta ~head_dim ~pos v =
  let n = Array.length v in
  if n mod head_dim <> 0 then invalid_arg "Rope.apply_heads: length";
  let out = Array.make n 0.0 in
  let heads = n / head_dim in
  for h = 0 to heads - 1 do
    let slice = Array.sub v (h * head_dim) head_dim in
    let rotated = apply ?theta ~head_dim ~pos slice in
    Array.blit rotated 0 out (h * head_dim) head_dim
  done;
  out
