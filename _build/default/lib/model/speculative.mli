(** Speculative decoding (Leviathan et al., the paper's related work [49])
    — a natural fit for HNLPU, whose chunked-prefill pipeline verifies a
    draft's k tokens in one pass.

    This module implements the *greedy* variant functionally: a small
    draft model proposes [lookahead] tokens; the target model scores the
    whole proposal in one batch of forwards; the longest prefix whose
    tokens match the target's own greedy choices is accepted, plus one
    corrected token.  Greedy speculative decoding provably emits exactly
    the target's greedy sequence — tested — while calling the target less
    often per token when the draft agrees. *)

type stats = {
  produced : int;          (** Tokens emitted. *)
  target_passes : int;     (** Verification passes of the target model. *)
  drafted : int;           (** Tokens proposed by the draft. *)
  accepted : int;          (** Proposals that survived verification. *)
  acceptance_rate : float; (** accepted / drafted. *)
  tokens_per_pass : float; (** produced / target_passes — the speedup lever. *)
}

val generate :
  target:Transformer.t -> draft:Transformer.t -> prompt:int list ->
  max_new_tokens:int -> lookahead:int -> ?stop:int -> unit ->
  int list * stats
(** Both models must share the vocabulary.  The transformers are reset
    first.  Raises on an empty prompt or non-positive lookahead. *)

val self_draft :
  target:Transformer.t -> prompt:int list -> max_new_tokens:int ->
  lookahead:int -> unit -> int list * stats
(** Degenerate sanity case: the target drafts for itself, so every
    proposal is accepted and [tokens_per_pass = lookahead + 1]. *)
