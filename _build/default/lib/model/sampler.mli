(** Token sampling from logits — the "logit sampling" stage HNLPU
    implements in hardware after the unembedding (§4.1, Figure 10-I).

    The base strategies are what the evaluated design supports; {!Top_p}
    and {!with_repetition_penalty} model the paper's "conditional decoding
    (programmable sampling algorithms)" future-work item (§8), which it
    foresees no obstacle to implementing in the VEX sampling unit. *)

type strategy =
  | Greedy
  | Temperature of float
      (** Multinomial over softmax(logits / t); t must be positive. *)
  | Top_k of int * float
      (** Multinomial restricted to the k most likely tokens, with
          temperature. *)
  | Top_p of float * float
      (** Nucleus sampling: smallest probability mass >= p (first arg in
          (0, 1]), with temperature. *)

val sample : Hnlpu_util.Rng.t -> strategy -> Hnlpu_tensor.Vec.t -> int
(** Draw a token id from the logits. *)

val log_prob : strategy -> Hnlpu_tensor.Vec.t -> int -> float
(** Log-probability the strategy assigns to a token ([neg_infinity] when the
    token is unreachable, e.g. outside the top-k/top-p set). *)

val distribution : strategy -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** The full token distribution a strategy induces (sums to 1). *)

val with_repetition_penalty :
  penalty:float -> recent:int list -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** Conditional-decoding transform: divide positive logits of recently
    emitted tokens by [penalty] (> 1) and multiply negative ones, before
    sampling (the CTRL-style rule).  Returns adjusted logits. *)
