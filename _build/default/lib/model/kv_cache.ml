open Hnlpu_tensor

type layer_cache = {
  mutable ks : Vec.t list;  (** Reverse order (most recent first). *)
  mutable vs : Vec.t list;
  mutable n : int;
  mutable ks_arr : Vec.t array;  (** Memoized forward-order views. *)
  mutable vs_arr : Vec.t array;
  mutable arr_valid : bool;
}

type t = { config : Config.t; layers : layer_cache array }

let create (c : Config.t) =
  {
    config = c;
    layers =
      Array.init c.num_layers (fun _ ->
          { ks = []; vs = []; n = 0; ks_arr = [||]; vs_arr = [||]; arr_valid = false });
  }

let clear t =
  Array.iter
    (fun lc ->
      lc.ks <- [];
      lc.vs <- [];
      lc.n <- 0;
      lc.ks_arr <- [||];
      lc.vs_arr <- [||];
      lc.arr_valid <- false)
    t.layers

let copy t =
  {
    t with
    layers =
      Array.map
        (fun lc ->
          { ks = lc.ks; vs = lc.vs; n = lc.n; ks_arr = [||]; vs_arr = [||];
            arr_valid = false })
        t.layers;
  }

let length t ~layer = t.layers.(layer).n

let append t ~layer ~k ~v =
  let dim = Config.kv_dim t.config in
  if Array.length k <> dim || Array.length v <> dim then
    invalid_arg "Kv_cache.append: wrong projection width";
  let lc = t.layers.(layer) in
  lc.ks <- k :: lc.ks;
  lc.vs <- v :: lc.vs;
  lc.n <- lc.n + 1;
  lc.arr_valid <- false

let refresh lc =
  if not lc.arr_valid then begin
    lc.ks_arr <- Array.of_list (List.rev lc.ks);
    lc.vs_arr <- Array.of_list (List.rev lc.vs);
    lc.arr_valid <- true
  end

let slice t flat head =
  let d = t.config.Config.head_dim in
  Array.sub flat (head * d) d

let key t ~layer ~head ~pos =
  let lc = t.layers.(layer) in
  refresh lc;
  slice t lc.ks_arr.(pos) head

let value t ~layer ~head ~pos =
  let lc = t.layers.(layer) in
  refresh lc;
  slice t lc.vs_arr.(pos) head

let bytes_per_position (c : Config.t) ~kv_bytes_per_element =
  2 * c.num_layers * Config.kv_dim c * kv_bytes_per_element
