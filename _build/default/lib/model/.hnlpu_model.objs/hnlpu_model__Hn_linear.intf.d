lib/model/hn_linear.mli: Hnlpu_neuron Hnlpu_tensor
