lib/model/speculative.mli: Transformer
