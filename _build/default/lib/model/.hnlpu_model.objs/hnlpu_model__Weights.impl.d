lib/model/weights.ml: Array Config Hnlpu_fp4 Hnlpu_tensor Mat Option Vec
