lib/model/checkpoint.ml: Array Buffer Bytes Char Config Fun Hnlpu_tensor Int64 List Mat Printf String Weights
