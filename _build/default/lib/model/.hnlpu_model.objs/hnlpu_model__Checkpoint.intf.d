lib/model/checkpoint.mli: Bytes Weights
