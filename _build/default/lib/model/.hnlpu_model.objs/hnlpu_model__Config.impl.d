lib/model/config.ml:
