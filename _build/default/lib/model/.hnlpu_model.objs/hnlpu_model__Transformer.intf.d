lib/model/transformer.mli: Config Hnlpu_tensor Hnlpu_util Sampler Weights
