lib/model/quant_eval.ml: Array Config Format Hnlpu_tensor Hnlpu_util List Transformer Vec Weights
