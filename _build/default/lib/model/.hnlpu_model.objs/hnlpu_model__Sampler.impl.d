lib/model/sampler.ml: Array Hnlpu_tensor Hnlpu_util List Vec
