lib/model/params.ml: Config
