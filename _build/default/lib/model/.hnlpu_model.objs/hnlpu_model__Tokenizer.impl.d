lib/model/tokenizer.ml: Buffer Char Config List Printf String
