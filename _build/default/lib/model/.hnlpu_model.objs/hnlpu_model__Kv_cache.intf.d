lib/model/kv_cache.mli: Config Hnlpu_tensor
