lib/model/speculative.ml: Config Hnlpu_tensor List Transformer Vec
