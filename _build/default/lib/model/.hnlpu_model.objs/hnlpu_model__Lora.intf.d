lib/model/lora.mli: Config Hnlpu_gates Hnlpu_tensor Hnlpu_util
