lib/model/rope.ml: Array
