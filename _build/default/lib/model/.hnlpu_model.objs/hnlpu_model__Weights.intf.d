lib/model/weights.mli: Config Hnlpu_tensor Hnlpu_util
