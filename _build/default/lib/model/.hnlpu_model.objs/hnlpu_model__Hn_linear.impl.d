lib/model/hn_linear.ml: Array Float Fp4 Gemv Hnlpu_fp4 Hnlpu_neuron Hnlpu_tensor Mat Metal_embedding
