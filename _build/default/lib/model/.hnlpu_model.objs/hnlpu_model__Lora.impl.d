lib/model/lora.ml: Config Hnlpu_gates Hnlpu_tensor Mat Params Vec
