lib/model/generation.mli: Transformer
