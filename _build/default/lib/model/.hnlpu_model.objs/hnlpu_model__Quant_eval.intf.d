lib/model/quant_eval.mli: Config Format Hnlpu_util
