lib/model/generation.ml: Array Float Hnlpu_tensor List Transformer Vec
