lib/model/sampler.mli: Hnlpu_tensor Hnlpu_util
