lib/model/transformer.ml: Array Config Float Hnlpu_tensor Kv_cache List Mat Rope Sampler Vec Weights
