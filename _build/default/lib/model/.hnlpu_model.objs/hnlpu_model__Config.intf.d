lib/model/config.mli:
