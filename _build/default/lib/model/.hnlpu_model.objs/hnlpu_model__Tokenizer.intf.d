lib/model/tokenizer.mli: Config
