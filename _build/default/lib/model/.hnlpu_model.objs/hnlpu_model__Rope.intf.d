lib/model/rope.mli: Hnlpu_tensor
