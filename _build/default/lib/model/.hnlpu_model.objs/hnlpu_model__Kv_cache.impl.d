lib/model/kv_cache.ml: Array Config Hnlpu_tensor List Vec
