lib/model/params.mli: Config
