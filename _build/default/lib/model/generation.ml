open Hnlpu_tensor

type hypothesis = {
  tokens : int list;
  logprob : float;
  normalized : float;
  finished : bool;
}

type live = {
  state : Transformer.t;
  logits : Vec.t;          (** Next-token logits of this hypothesis. *)
  gen : int list;          (** Reverse order. *)
  lp : float;
  done_ : bool;
}

let gnmt_penalty ~alpha len =
  if alpha <= 0.0 then 1.0
  else ((5.0 +. float_of_int len) ** alpha) /. (6.0 ** alpha)

let normalize ~alpha lp len = lp /. gnmt_penalty ~alpha len

let log_softmax v =
  let p = Vec.softmax v in
  Array.map (fun x -> log (Float.max x 1e-300)) p

let beam_search t ~prompt ~beams ~max_new_tokens ?stop ?(length_penalty = 0.0) () =
  if beams <= 0 then invalid_arg "Generation.beam_search: beams must be positive";
  if max_new_tokens < 0 then invalid_arg "Generation.beam_search: negative budget";
  Transformer.reset t;
  let logits0 = Transformer.prefill t prompt in
  let alpha = length_penalty in
  let live0 = [ { state = t; logits = logits0; gen = []; lp = 0.0; done_ = false } ] in
  let finished : live list ref = ref [] in
  let step hyps =
    (* Expand every live hypothesis by its top-[beams] tokens. *)
    let candidates =
      List.concat_map
        (fun h ->
          if h.done_ then []
          else begin
            let lls = log_softmax h.logits in
            List.map
              (fun (tok, _) -> (h, tok, h.lp +. lls.(tok)))
              (Vec.top_k (min beams (Array.length lls)) h.logits)
          end)
        hyps
    in
    let best =
      List.sort (fun (_, _, a) (_, _, b) -> compare b a) candidates
      |> List.filteri (fun i _ -> i < beams)
    in
    (* Fork states; fork counts per parent let the last child reuse the
       parent in place. *)
    List.map
      (fun (parent, tok, lp) ->
        match stop with
        | Some s when s = tok ->
          { parent with gen = tok :: parent.gen; lp; done_ = true }
        | _ ->
          let state = Transformer.fork parent.state in
          let logits = Transformer.forward state ~token:tok in
          { state; logits; gen = tok :: parent.gen; lp; done_ = false })
      best
  in
  let rec go n hyps =
    let still_live = List.filter (fun h -> not h.done_) hyps in
    finished := List.filter (fun h -> h.done_) hyps @ !finished;
    if n >= max_new_tokens || still_live = [] then still_live
    else go (n + 1) (step still_live)
  in
  let leftovers = go 0 live0 in
  let all = leftovers @ !finished in
  let to_hypothesis h =
    let tokens = List.rev h.gen in
    {
      tokens;
      logprob = h.lp;
      normalized = normalize ~alpha h.lp (max 1 (List.length tokens));
      finished = h.done_;
    }
  in
  List.map to_hypothesis all
  |> List.sort (fun a b -> compare b.normalized a.normalized)
  |> List.filteri (fun i _ -> i < beams)

let greedy t ~prompt ~max_new_tokens ?stop () =
  match beam_search t ~prompt ~beams:1 ~max_new_tokens ?stop () with
  | [ h ] ->
    (* Drop the stop token to match Transformer.generate's convention. *)
    (match stop with
    | Some s -> List.filter (fun tok -> tok <> s) h.tokens
    | None -> h.tokens)
  | _ -> []
