(** Parameter counting — feeds the area, NRE and Table 4 models.

    For architecturally-specified configs the counts are derived from the
    shapes used in the paper's dataflow (Appendix A); for external models
    the published total is used. *)

val attention_per_layer : Config.t -> int
(** Wq + Wk + Wv + Wo. *)

val moe_per_layer : Config.t -> int
(** Router + all experts' up/gate/down projections (dense FFN when
    [experts = 0]). *)

val router_per_layer : Config.t -> int

val embedding : Config.t -> int
(** Token embedding + unembedding tables. *)

val total : Config.t -> float
(** All parameters, including embeddings. *)

val hardwired : Config.t -> float
(** Parameters embedded in the HN arrays: everything except the embedding
    and unembedding tables, which live in HBM (§4.1, Figure 10-I). *)

val bytes : Config.t -> float
(** Native-precision storage footprint of [total]. *)

val router_fraction : Config.t -> float
(** Router weights as a fraction of total — the paper claims ~0.01%, which
    justifies replicating them on all 16 chips (§5.1). *)
