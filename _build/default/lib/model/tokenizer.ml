let bos = 256
let eos = 257
let pad = 258
let vocab_size = 259

let encode ?(add_bos = true) s =
  let bytes = List.init (String.length s) (fun i -> Char.code s.[i]) in
  if add_bos then bos :: bytes else bytes

let decode ids =
  let buf = Buffer.create (List.length ids) in
  List.iter (fun id -> if id >= 0 && id < 256 then Buffer.add_char buf (Char.chr id)) ids;
  Buffer.contents buf

let token_name id =
  if id < 0 || id >= vocab_size then invalid_arg "Tokenizer.token_name";
  if id = bos then "<bos>"
  else if id = eos then "<eos>"
  else if id = pad then "<pad>"
  else begin
    let c = Char.chr id in
    if c >= ' ' && c <= '~' then Printf.sprintf "'%c'" c
    else Printf.sprintf "0x%02X" id
  end

let tiny_byte_config =
  {
    Config.tiny with
    Config.name = "tiny-byte";
    vocab = vocab_size;
  }
