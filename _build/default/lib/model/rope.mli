(** Rotary position embedding (RoPE), applied to query and key heads.

    gpt-oss, like other Llama-style models, encodes position by rotating
    successive pairs of head dimensions by position-dependent angles.  This
    is part of the VEX unit's nonlinear repertoire in HNLPU; here it is the
    functional reference. *)

val apply : ?theta:float -> head_dim:int -> pos:int -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** Rotate one head vector (length [head_dim], must be even) for position
    [pos].  [theta] is the base frequency, default 10000. *)

val apply_heads : ?theta:float -> head_dim:int -> pos:int -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** Apply to a flat concatenation of heads (length a multiple of
    [head_dim]). *)
