open Hnlpu_tensor

type stats = {
  produced : int;
  target_passes : int;
  drafted : int;
  accepted : int;
  acceptance_rate : float;
  tokens_per_pass : float;
}

let generate ~target ~draft ~prompt ~max_new_tokens ~lookahead ?stop () =
  if prompt = [] then invalid_arg "Speculative.generate: empty prompt";
  if lookahead <= 0 then invalid_arg "Speculative.generate: lookahead must be positive";
  if (Transformer.config target).Config.vocab <> (Transformer.config draft).Config.vocab
  then invalid_arg "Speculative.generate: vocabulary mismatch";
  Transformer.reset target;
  Transformer.reset draft;
  let t_logits = ref (Transformer.prefill target prompt) in
  let d_logits = ref (Transformer.prefill draft prompt) in
  let t_state = ref target and d_state = ref draft in
  let out = ref [] and produced = ref 0 in
  let passes = ref 0 and drafted = ref 0 and accepted_total = ref 0 in
  let stopped = ref false in
  while (not !stopped) && !produced < max_new_tokens do
    (* 1. Draft proposes [lookahead] tokens greedily from its state. *)
    let dfork = Transformer.fork !d_state in
    let dlog = ref !d_logits in
    let proposals = ref [] in
    for _ = 1 to lookahead do
      let tok = Vec.argmax !dlog in
      proposals := tok :: !proposals;
      dlog := Transformer.forward dfork ~token:tok
    done;
    let proposals = List.rev !proposals in
    drafted := !drafted + lookahead;
    (* 2. One target verification pass over the proposal block. *)
    incr passes;
    let tfork = Transformer.fork !t_state in
    let tl = ref !t_logits in
    let accepted = ref [] in
    let corrected = ref None in
    List.iter
      (fun tok ->
        match !corrected with
        | Some _ -> ()
        | None ->
          let greedy = Vec.argmax !tl in
          if greedy = tok then begin
            accepted := tok :: !accepted;
            tl := Transformer.forward tfork ~token:tok
          end
          else corrected := Some greedy)
      proposals;
    let bonus = match !corrected with Some g -> g | None -> Vec.argmax !tl in
    let accepted = List.rev !accepted in
    accepted_total := !accepted_total + List.length accepted;
    (* 3. Emit (respecting the budget and the stop token). *)
    let emit tok =
      if (not !stopped) && !produced < max_new_tokens then begin
        match stop with
        | Some s when s = tok -> stopped := true
        | _ ->
          out := tok :: !out;
          incr produced
      end
    in
    List.iter emit accepted;
    emit bonus;
    (* 4. Advance both canonical states onto accepted + bonus. *)
    t_logits := Transformer.forward tfork ~token:bonus;
    t_state := tfork;
    let dnew = Transformer.fork !d_state in
    let dl = ref !d_logits in
    List.iter (fun tok -> dl := Transformer.forward dnew ~token:tok) accepted;
    dl := Transformer.forward dnew ~token:bonus;
    d_state := dnew;
    d_logits := !dl
  done;
  let produced = !produced in
  ( List.rev !out,
    {
      produced;
      target_passes = !passes;
      drafted = !drafted;
      accepted = !accepted_total;
      acceptance_rate =
        (if !drafted = 0 then 0.0 else float_of_int !accepted_total /. float_of_int !drafted);
      tokens_per_pass =
        (if !passes = 0 then 0.0 else float_of_int produced /. float_of_int !passes);
    } )

let self_draft ~target ~prompt ~max_new_tokens ~lookahead () =
  (* Drafting with a fork of the target itself: proposals always match. *)
  let draft = Transformer.fork target in
  generate ~target ~draft ~prompt ~max_new_tokens ~lookahead ()
