open Hnlpu_tensor
open Hnlpu_fp4
open Hnlpu_neuron

type t = {
  machine : Metal_embedding.t;
  gemv : Gemv.t;
  neuron_scales : float array;  (** Per-output-neuron weight scale. *)
  act_bits : int;
}

let quantize_neuron column =
  (* One scale per neuron: map the largest magnitude onto E2M1's 6.0. *)
  let amax = Array.fold_left (fun a x -> Float.max a (Float.abs x)) 0.0 column in
  let scale = if amax = 0.0 then 1.0 else amax /. 6.0 in
  (scale, Array.map (fun x -> Fp4.of_float (x /. scale)) column)

let of_matrix ?(act_bits = 8) ?(slack = 8.0) m =
  let out_features = Mat.cols m in
  let scales = Array.make out_features 1.0 in
  let weights =
    Array.init out_features (fun o ->
        let s, codes = quantize_neuron (Mat.col m o) in
        scales.(o) <- s;
        codes)
  in
  let gemv = Gemv.make ~weights ~act_bits in
  { machine = Metal_embedding.make ~slack gemv; gemv; neuron_scales = scales; act_bits }

let in_features t = t.gemv.Gemv.in_features
let out_features t = t.gemv.Gemv.out_features

let quantize_activations t x =
  let amax = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 x in
  let top = float_of_int (Hnlpu_fp4.Bitserial.max_int_for t.act_bits) in
  let scale = if amax = 0.0 then 1.0 else amax /. top in
  let q = Array.map (fun v -> int_of_float (Float.round (v /. scale))) x in
  (scale, q)

let apply t x =
  if Array.length x <> in_features t then
    invalid_arg "Hn_linear.apply: input length mismatch";
  let act_scale, q = quantize_activations t x in
  let half_units, _report = Metal_embedding.run t.machine q in
  Array.mapi
    (fun o h -> float_of_int h /. 2.0 *. t.neuron_scales.(o) *. act_scale)
    half_units

let dequantized t =
  Mat.init ~rows:(in_features t) ~cols:(out_features t) (fun i o ->
      t.neuron_scales.(o) *. Fp4.to_float t.gemv.Gemv.weights.(o).(i))

let apply_float t x = Mat.gemv (dequantized t) x

let report t = Metal_embedding.report t.machine
