(** Synthetic weight generation for the reference transformer.

    The paper hardwires the real gpt-oss checkpoint; we have no weights, so
    the runnable model uses Gaussian-initialized tensors — the substitution
    documented in DESIGN.md.  Optionally each weight matrix is round-tripped
    through MXFP4 block quantization ({!Hnlpu_fp4.Blockscale}) so the
    numerics seen downstream are exactly those of a 4-bit model. *)

type layer = {
  attn_norm : Hnlpu_tensor.Vec.t;
  wq : Hnlpu_tensor.Mat.t;  (** (hidden, q_dim) *)
  wk : Hnlpu_tensor.Mat.t;  (** (hidden, kv_dim) *)
  wv : Hnlpu_tensor.Mat.t;  (** (hidden, kv_dim) *)
  wo : Hnlpu_tensor.Mat.t;  (** (q_dim, hidden) *)
  ffn_norm : Hnlpu_tensor.Vec.t;
  w_router : Hnlpu_tensor.Mat.t option;  (** (hidden, experts); None if dense. *)
  experts : expert array;  (** length [experts], or 1 if dense. *)
}

and expert = {
  w_up : Hnlpu_tensor.Mat.t;    (** (hidden, expert_hidden) *)
  w_gate : Hnlpu_tensor.Mat.t;  (** (hidden, expert_hidden) *)
  w_down : Hnlpu_tensor.Mat.t;  (** (expert_hidden, hidden) *)
}

type t = {
  config : Config.t;
  embedding : Hnlpu_tensor.Mat.t;  (** (vocab, hidden) *)
  layers : layer array;
  final_norm : Hnlpu_tensor.Vec.t;
  unembedding : Hnlpu_tensor.Mat.t;  (** (hidden, vocab) *)
}

val random : ?quantize_fp4:bool -> Hnlpu_util.Rng.t -> Config.t -> t
(** Fresh synthetic weights.  [quantize_fp4] (default true) round-trips
    every projection matrix through MXFP4. *)

val count_params : t -> int
(** Actual element count of the instantiated tensors; must agree with
    {!Params.total}. *)

val quantize : t -> t
(** MXFP4 round-trip of every projection matrix of an existing checkpoint
    (embedding left full-precision, norms untouched) — produces the 4-bit
    twin of a float model for fidelity studies ({!Quant_eval}). *)
