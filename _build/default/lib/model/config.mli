(** Model architecture configurations.

    [gpt_oss_120b] is the paper's target model (§6.2): a 36-layer
    Llama-style MoE transformer with hidden size 2880, 64 query heads /
    8 KV heads of dimension 64 (GQA 8:1), 128 experts with top-4 routing
    and expert intermediate size 2880, vocabulary 201,088, FP4 weights.

    [tiny] is the same architecture scaled down far enough to run the
    reference implementation quickly — it exercises every code path
    (GQA, RMSNorm, SwiGLU, MoE routing, sampling) at laptop scale, per
    DESIGN.md's substitution table.

    The Table 4 models (Kimi-K2, DeepSeek-V3, QwQ, Llama-3) are carried as
    parameter-count/precision footprints only; the paper prices their NRE
    purely from the bytes that must be hardwired. *)

type t = {
  name : string;
  num_layers : int;
  hidden : int;            (** Model (residual stream) dimension. *)
  q_heads : int;
  kv_heads : int;
  head_dim : int;
  experts : int;           (** 0 for dense FFN. *)
  experts_per_token : int;
  expert_hidden : int;     (** Expert (or dense FFN) intermediate size. *)
  vocab : int;
  sliding_window : int option;
      (** Sliding-window attention span.  The real gpt-oss alternates
          128-token windowed layers with full-attention layers; the paper's
          performance model assumes full attention everywhere, so the
          reproduction presets keep [None] and a [_sw] variant exposes the
          windowed behaviour for ablation. *)
  bits_per_param : float;  (** Native weight precision footprint. *)
  total_params_override : float option;
      (** For externally-specified models whose internals we do not model:
          the published total parameter count. *)
}

val gpt_oss_120b : t

val gpt_oss_20b : t
(** The smaller sibling (24 layers, 32 experts, ~21B parameters) — a
    second fully-specified point for NRE and performance what-ifs. *)

val gpt_oss_120b_sw : t
(** [gpt_oss_120b] with the real model's alternating 128-token sliding
    window enabled (even layers windowed, odd layers full). *)

val layer_window : t -> layer:int -> int option
(** The attention span of a layer: [sliding_window] on even layers,
    full attention on odd layers (and everywhere when unset). *)

val tiny : t
(** 2 layers, hidden 32, 4 Q / 2 KV heads of dim 8, 8 experts top-2,
    vocabulary 64. *)

val tiny_dense : t
(** [tiny] without MoE (dense FFN) — baseline for routing tests. *)

val tiny_hnlpu : t
(** A tiny config whose dimensions divide evenly over the 4x4 chip grid
    (hidden 32, 8 Q / 4 KV heads of dim 8, 16 experts top-2) — the model
    used by the distributed-dataflow equivalence tests. *)

val kimi_k2 : t
val deepseek_v3 : t
val qwq_32b : t
val llama3_8b : t

val table4_models : t list
(** The four rows of the paper's Table 4, in order. *)

val q_dim : t -> int
(** q_heads * head_dim. *)

val kv_dim : t -> int
(** kv_heads * head_dim. *)

val gqa_group : t -> int
(** Query heads per KV head. *)

val validate : t -> unit
(** Raises [Invalid_argument] on inconsistent configurations (e.g. q_heads
    not divisible by kv_heads, or experts_per_token > experts). *)
