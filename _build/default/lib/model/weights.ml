open Hnlpu_tensor

type layer = {
  attn_norm : Vec.t;
  wq : Mat.t;
  wk : Mat.t;
  wv : Mat.t;
  wo : Mat.t;
  ffn_norm : Vec.t;
  w_router : Mat.t option;
  experts : expert array;
}

and expert = { w_up : Mat.t; w_gate : Mat.t; w_down : Mat.t }

type t = {
  config : Config.t;
  embedding : Mat.t;
  layers : layer array;
  final_norm : Vec.t;
  unembedding : Mat.t;
}

let quantize_mat m =
  (* Row-wise MXFP4 round-trip: the numerics of a 4-bit checkpoint. *)
  Mat.of_arrays
    (Array.map
       (fun row -> Hnlpu_fp4.Blockscale.(dequantize (quantize row)))
       (Mat.to_arrays m))

let random ?(quantize_fp4 = true) rng (c : Config.t) =
  Config.validate c;
  if c.total_params_override <> None then
    invalid_arg "Weights.random: external (footprint-only) model";
  let mat rows cols =
    let m = Mat.gaussian rng ~rows ~cols in
    if quantize_fp4 then quantize_mat m else m
  in
  let gain n = Array.make n 1.0 in
  let expert () =
    {
      w_up = mat c.hidden c.expert_hidden;
      w_gate = mat c.hidden c.expert_hidden;
      w_down = mat c.expert_hidden c.hidden;
    }
  in
  let layer () =
    {
      attn_norm = gain c.hidden;
      wq = mat c.hidden (Config.q_dim c);
      wk = mat c.hidden (Config.kv_dim c);
      wv = mat c.hidden (Config.kv_dim c);
      wo = mat (Config.q_dim c) c.hidden;
      ffn_norm = gain c.hidden;
      w_router =
        (if c.experts = 0 then None else Some (mat c.hidden c.experts));
      experts = Array.init (max 1 c.experts) (fun _ -> expert ());
    }
  in
  {
    config = c;
    embedding = Mat.gaussian rng ~rows:c.vocab ~cols:c.hidden ~std:1.0;
    layers = Array.init c.num_layers (fun _ -> layer ());
    final_norm = gain c.hidden;
    unembedding = mat c.hidden c.vocab;
  }

let quantize t =
  let q = quantize_mat in
  let layer l =
    {
      l with
      wq = q l.wq;
      wk = q l.wk;
      wv = q l.wv;
      wo = q l.wo;
      w_router = Option.map q l.w_router;
      experts =
        Array.map
          (fun e -> { w_up = q e.w_up; w_gate = q e.w_gate; w_down = q e.w_down })
          l.experts;
    }
  in
  { t with layers = Array.map layer t.layers; unembedding = q t.unembedding }

let count_params t =
  let msize m = Mat.rows m * Mat.cols m in
  let layer l =
    msize l.wq + msize l.wk + msize l.wv + msize l.wo
    + (match l.w_router with None -> 0 | Some r -> msize r)
    + Array.fold_left
        (fun acc e -> acc + msize e.w_up + msize e.w_gate + msize e.w_down)
        0 l.experts
  in
  msize t.embedding + msize t.unembedding
  + Array.fold_left (fun acc l -> acc + layer l) 0 t.layers
