(** LoRA side-channel for post-deployment updates (paper §8, future work 4).

    The hardwired weights are immutable; the paper proposes adding ~1% of
    *field-programmable* HNs on a side channel carrying low-rank adapters:

      y = x . W_hardwired + scaling * (x . A) . B

    with A: (in, r), B: (r, out), r << min(in, out).  This module provides
    the adapter math, the composition with a hardwired {!Hn_linear} bank,
    and the area-overhead accounting that backs the "~1%" claim. *)

type t = {
  a : Hnlpu_tensor.Mat.t;      (** (in_features, rank) *)
  b : Hnlpu_tensor.Mat.t;      (** (rank, out_features) *)
  scaling : float;              (** alpha / rank. *)
}

val create :
  ?alpha:float -> Hnlpu_util.Rng.t -> in_features:int -> out_features:int ->
  rank:int -> t
(** Standard init: A Gaussian, B zero (the adapter starts as identity);
    [alpha] defaults to [2 * rank]. *)

val of_matrices : ?alpha:float -> a:Hnlpu_tensor.Mat.t -> b:Hnlpu_tensor.Mat.t -> unit -> t

val rank : t -> int

val delta : t -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** The adapter contribution [scaling * (x . A) . B]. *)

val apply : t -> base:(Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t) ->
  Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** [apply t ~base x = base x + delta t x] — compose with any base layer
    (the hardwired HN bank, or a float reference). *)

val merged : t -> Hnlpu_tensor.Mat.t -> Hnlpu_tensor.Mat.t
(** [W + scaling * A.B] — what a re-spin would hardwire; [apply] must agree
    with a gemv through this within float tolerance. *)

val parameter_overhead : t -> in_features:int -> out_features:int -> float
(** Adapter parameters / base parameters — the "~1%" budget check. *)

(** {1 System-level side channel} *)

module Side_channel : sig
  val fraction : float
  (** The paper's proposal: ~1% of the HN capacity is field-programmable. *)

  val capacity_params : Config.t -> float
  (** Adapter parameters the side channel can hold across the system. *)

  val supports_rank : Config.t -> rank:int -> bool
  (** Whether rank-r adapters on every projection of every layer fit. *)

  val max_rank : Config.t -> int
  (** Largest uniform rank the 1% budget supports (for gpt-oss: every
      attention and expert projection adapted). *)

  val area_overhead_mm2 : ?tech:Hnlpu_gates.Tech.t -> Config.t -> float
  (** Extra silicon per chip.  Field-programmable HNs need weight storage
    cells, ~10x the metal-embedded cost per parameter. *)
end
