(** Byte-level tokenizer.

    HNLPU's interface is "token IDs in, token IDs out" (§4.1); real
    deployments put a tokenizer in front.  Since we have synthetic weights,
    a byte-level vocabulary (like GPT-2's base alphabet) is the honest
    choice: ids 0..255 are raw bytes, followed by the special tokens.
    [Config.tiny_byte] is a reference model sized for this vocabulary. *)

val vocab_size : int
(** 259: 256 bytes + BOS + EOS + PAD. *)

val bos : int
val eos : int
val pad : int

val encode : ?add_bos:bool -> string -> int list
(** Bytes to ids; [add_bos] (default true) prepends {!bos}. *)

val decode : int list -> string
(** Ids to bytes; special tokens are dropped. *)

val token_name : int -> string
(** Printable name: ["'a'"], ["0x0A"], ["<bos>"]...  Raises on
    out-of-range ids. *)

val tiny_byte_config : Config.t
(** A [tiny]-scale MoE transformer over this vocabulary. *)
