open Hnlpu_tensor

type t = { a : Mat.t; b : Mat.t; scaling : float }

let of_matrices ?alpha ~a ~b () =
  if Mat.cols a <> Mat.rows b then invalid_arg "Lora.of_matrices: rank mismatch";
  let rank = Mat.cols a in
  let alpha = match alpha with Some x -> x | None -> 2.0 *. float_of_int rank in
  { a; b; scaling = alpha /. float_of_int rank }

let create ?alpha rng ~in_features ~out_features ~rank =
  if rank <= 0 || rank > min in_features out_features then
    invalid_arg "Lora.create: bad rank";
  of_matrices ?alpha
    ~a:(Mat.gaussian rng ~rows:in_features ~cols:rank)
    ~b:(Mat.create ~rows:rank ~cols:out_features)
    ()

let rank t = Mat.cols t.a

let delta t x = Vec.scale t.scaling (Mat.gemv t.b (Mat.gemv t.a x))

let apply t ~base x = Vec.add (base x) (delta t x)

let merged t w =
  if Mat.rows w <> Mat.rows t.a || Mat.cols w <> Mat.cols t.b then
    invalid_arg "Lora.merged: shape mismatch";
  Mat.init ~rows:(Mat.rows w) ~cols:(Mat.cols w) (fun i j ->
      let ab = ref 0.0 in
      for r = 0 to rank t - 1 do
        ab := !ab +. (Mat.get t.a i r *. Mat.get t.b r j)
      done;
      Mat.get w i j +. (t.scaling *. !ab))

let parameter_overhead t ~in_features ~out_features =
  float_of_int (rank t * (in_features + out_features))
  /. float_of_int (in_features * out_features)

module Side_channel = struct
  let fraction = 0.01

  let capacity_params (c : Config.t) = Params.hardwired c *. fraction

  let adapter_params_for_rank (c : Config.t) ~rank =
    (* Rank-r adapters on Wq/Wk/Wv/Wo and every expert's three
       projections, every layer. *)
    let r = float_of_int rank in
    let attn =
      r
      *. float_of_int
           ((c.Config.hidden + Config.q_dim c)
           + (2 * (c.Config.hidden + Config.kv_dim c))
           + (Config.q_dim c + c.Config.hidden))
    in
    let experts =
      r
      *. float_of_int (max 1 c.Config.experts)
      *. float_of_int (3 * (c.Config.hidden + c.Config.expert_hidden))
    in
    float_of_int c.Config.num_layers *. (attn +. experts)

  let supports_rank c ~rank =
    if rank <= 0 then invalid_arg "Side_channel.supports_rank";
    adapter_params_for_rank c ~rank <= capacity_params c

  let max_rank c =
    let rec go r = if supports_rank c ~rank:(r + 1) then go (r + 1) else r in
    go 0

  (* Field-programmable HNs must *store* their weights (register cells on
     the popcount routing), costing roughly an SRAM-cell-plus-mux per
     4-bit weight instead of a wire: ~10x the metal-embedded transistor
     cost per parameter. *)
  let field_programmable_cost_factor = 10.0

  let area_overhead_mm2 ?(tech = Hnlpu_gates.Tech.n5) (c : Config.t) =
    let params_per_chip = capacity_params c /. 16.0 in
    params_per_chip *. 9.3 *. field_programmable_cost_factor
    /. (tech.Hnlpu_gates.Tech.transistor_density_per_mm2 *. 0.85)
end
