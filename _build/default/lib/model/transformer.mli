(** Reference MoE-transformer inference — the functional ground truth for
    what HNLPU computes (architecture of §6.2, dataflow of Appendix A).

    One [t] carries the weights plus the KV cache of a single sequence; the
    multi-sequence batching behaviour is modelled at the system level
    ({!Hnlpu_system.Scheduler}), which only needs per-token timing, not
    values.

    Every stage matches the paper's description: RMSNorm before attention
    and FFN, GQA with RoPE, FlashAttention-style streaming softmax, MoE
    router with top-k + softmax expert weights, SwiGLU experts, residual
    additions, final norm and unembedding. *)

type t

val create : Weights.t -> t
(** Fresh state (empty KV cache) over shared weights. *)

val config : t -> Config.t

val position : t -> int
(** Number of tokens consumed so far. *)

val reset : t -> unit
(** Clear the KV cache; weights are untouched. *)

val fork : t -> t
(** An independent continuation of the same sequence: shares the weights,
    copies the KV cache and counters.  The branching primitive beam search
    needs ({!Generation.beam_search}). *)

val forward : t -> token:int -> Hnlpu_tensor.Vec.t
(** Consume one token id, return next-token logits (length [vocab]).
    Raises [Invalid_argument] on an out-of-vocabulary id. *)

val prefill : t -> int list -> Hnlpu_tensor.Vec.t
(** Feed a prompt; logits after the last token.  Raises on empty prompt. *)

val generate :
  Hnlpu_util.Rng.t -> t -> prompt:int list -> max_new_tokens:int ->
  ?stop:int -> Sampler.strategy -> int list
(** Autoregressive decode; stops at [max_new_tokens] or on the [stop]
    token (which is not included in the output). *)

(** {1 Non-generation use cases}

    The paper's §8 "Extended Application Scenarios": the same hardwired
    pipeline serves sequence scoring and text embedding — only the final
    sampling stage changes. *)

val score : t -> int list -> float
(** Total log-likelihood of a sequence (each token scored given its
    prefix; the first token is free).  Resets the state first.  Requires
    at least two tokens. *)

val perplexity : t -> int list -> float
(** exp (-score / (n-1)) — standard per-token perplexity. *)

val embed : t -> int list -> Hnlpu_tensor.Vec.t
(** Mean-pooled residual-stream states over the sequence (length [hidden]):
    the text-embedding mode.  Resets the state first. *)

val expert_load : t -> int array
(** Cumulative activation count per expert since creation/reset — lets
    tests check the router's top-k behaviour and the MoE sparsity argument
    behind the HN array's low power (§7.1). *)

val hidden_state : t -> Hnlpu_tensor.Vec.t
(** Residual-stream vector after the last forward (for tests). *)
