open Hnlpu_tensor

type t = {
  weights : Weights.t;
  cache : Kv_cache.t;
  expert_load : int array;
  mutable pos : int;
  mutable last_hidden : Vec.t;
}

let create (w : Weights.t) =
  {
    weights = w;
    cache = Kv_cache.create w.Weights.config;
    expert_load = Array.make (max 1 w.Weights.config.Config.experts) 0;
    pos = 0;
    last_hidden = [||];
  }

let config t = t.weights.Weights.config

let position t = t.pos

let fork t =
  {
    weights = t.weights;
    cache = Kv_cache.copy t.cache;
    expert_load = Array.copy t.expert_load;
    pos = t.pos;
    last_hidden = Array.copy t.last_hidden;
  }

let reset t =
  t.pos <- 0;
  Array.fill t.expert_load 0 (Array.length t.expert_load) 0;
  t.last_hidden <- [||];
  Kv_cache.clear t.cache

let attention t layer_idx (l : Weights.layer) x_norm =
  let c = config t in
  let d = c.Config.head_dim in
  let scale = 1.0 /. sqrt (float_of_int d) in
  let q = Mat.gemv l.Weights.wq x_norm in
  let k = Mat.gemv l.Weights.wk x_norm in
  let v = Mat.gemv l.Weights.wv x_norm in
  let q = Rope.apply_heads ~head_dim:d ~pos:t.pos q in
  let k = Rope.apply_heads ~head_dim:d ~pos:t.pos k in
  Kv_cache.append t.cache ~layer:layer_idx ~k ~v;
  let len = Kv_cache.length t.cache ~layer:layer_idx in
  (* Sliding-window layers only attend over the last [w] positions. *)
  let first_pos =
    match Config.layer_window c ~layer:layer_idx with
    | None -> 0
    | Some w -> max 0 (len - w)
  in
  let group = Config.gqa_group c in
  let out = Array.make (Config.q_dim c) 0.0 in
  for h = 0 to c.Config.q_heads - 1 do
    let kv = h / group in
    let qh = Array.sub q (h * d) d in
    (* FlashAttention-style streaming softmax: single pass with a running
       max and normalizer — the computation flow the VEX unit adopts. *)
    let m = ref neg_infinity and z = ref 0.0 in
    let acc = Array.make d 0.0 in
    for p = first_pos to len - 1 do
      let kp = Kv_cache.key t.cache ~layer:layer_idx ~head:kv ~pos:p in
      let s = Vec.dot qh kp *. scale in
      let m' = Float.max !m s in
      let correction = exp (!m -. m') in
      let w = exp (s -. m') in
      for i = 0 to d - 1 do
        acc.(i) <- acc.(i) *. correction
      done;
      z := (!z *. correction) +. w;
      let vp = Kv_cache.value t.cache ~layer:layer_idx ~head:kv ~pos:p in
      for i = 0 to d - 1 do
        acc.(i) <- acc.(i) +. (w *. vp.(i))
      done;
      m := m'
    done;
    for i = 0 to d - 1 do
      out.((h * d) + i) <- acc.(i) /. !z
    done
  done;
  Mat.gemv l.Weights.wo out

let run_expert (e : Weights.expert) x =
  let gate = Mat.gemv e.Weights.w_gate x in
  let up = Mat.gemv e.Weights.w_up x in
  Mat.gemv e.Weights.w_down (Vec.swiglu ~gate ~up)

let ffn t (l : Weights.layer) x_norm =
  let c = config t in
  match l.Weights.w_router with
  | None ->
    t.expert_load.(0) <- t.expert_load.(0) + 1;
    run_expert l.Weights.experts.(0) x_norm
  | Some router ->
    (* Router: scores, top-k selection, softmax over the selected scores
       (Figure 10-VII). *)
    let scores = Mat.gemv router x_norm in
    let top = Vec.top_k c.Config.experts_per_token scores in
    let raw = Array.of_list (List.map snd top) in
    let probs = Vec.softmax raw in
    let out = Vec.zeros c.Config.hidden in
    List.iteri
      (fun rank (e, _) ->
        t.expert_load.(e) <- t.expert_load.(e) + 1;
        Vec.add_inplace out
          (Vec.scale probs.(rank) (run_expert l.Weights.experts.(e) x_norm)))
      top;
    out

let forward t ~token =
  let c = config t in
  if token < 0 || token >= c.Config.vocab then
    invalid_arg "Transformer.forward: token out of vocabulary";
  let x = ref (Mat.row t.weights.Weights.embedding token) in
  Array.iteri
    (fun i l ->
      let x_norm = Vec.rmsnorm ~gain:l.Weights.attn_norm !x in
      let attn = attention t i l x_norm in
      x := Vec.add !x attn;
      let x_norm2 = Vec.rmsnorm ~gain:l.Weights.ffn_norm !x in
      let y = ffn t l x_norm2 in
      x := Vec.add !x y)
    t.weights.Weights.layers;
  t.pos <- t.pos + 1;
  t.last_hidden <- !x;
  let final = Vec.rmsnorm ~gain:t.weights.Weights.final_norm !x in
  Mat.gemv t.weights.Weights.unembedding final

let prefill t tokens =
  match tokens with
  | [] -> invalid_arg "Transformer.prefill: empty prompt"
  | _ ->
    List.fold_left (fun _ tok -> forward t ~token:tok) [||] tokens

let generate rng t ~prompt ~max_new_tokens ?stop strategy =
  let logits = ref (prefill t prompt) in
  let rec go n acc =
    if n >= max_new_tokens then List.rev acc
    else begin
      let tok = Sampler.sample rng strategy !logits in
      match stop with
      | Some s when s = tok -> List.rev acc
      | _ ->
        logits := forward t ~token:tok;
        go (n + 1) (tok :: acc)
    end
  in
  go 0 []

let score t tokens =
  match tokens with
  | [] | [ _ ] -> invalid_arg "Transformer.score: need at least two tokens"
  | first :: rest ->
    reset t;
    let logits = ref (forward t ~token:first) in
    List.fold_left
      (fun acc tok ->
        let logp = log (Vec.softmax !logits).(tok) in
        logits := forward t ~token:tok;
        acc +. logp)
      0.0 rest

let perplexity t tokens =
  let n = List.length tokens in
  exp (-.score t tokens /. float_of_int (n - 1))

let embed t tokens =
  if tokens = [] then invalid_arg "Transformer.embed: empty sequence";
  reset t;
  let c = config t in
  let acc = Vec.zeros c.Config.hidden in
  List.iter
    (fun tok ->
      ignore (forward t ~token:tok);
      Vec.add_inplace acc t.last_hidden)
    tokens;
  Vec.scale (1.0 /. float_of_int (List.length tokens)) acc

let expert_load t = Array.copy t.expert_load

let hidden_state t = Array.copy t.last_hidden
