type t = {
  name : string;
  num_layers : int;
  hidden : int;
  q_heads : int;
  kv_heads : int;
  head_dim : int;
  experts : int;
  experts_per_token : int;
  expert_hidden : int;
  vocab : int;
  sliding_window : int option;
  bits_per_param : float;
  total_params_override : float option;
}

let gpt_oss_120b =
  {
    name = "gpt-oss 120B";
    num_layers = 36;
    hidden = 2880;
    q_heads = 64;
    kv_heads = 8;
    head_dim = 64;
    experts = 128;
    experts_per_token = 4;
    expert_hidden = 2880;
    vocab = 201_088;
    sliding_window = None;
    bits_per_param = 4.0;
    total_params_override = None;
  }

let gpt_oss_20b =
  (* The smaller sibling: same hidden/head geometry, 24 layers, 32 experts
     — useful as a second architecturally-specified NRE/perf point. *)
  {
    name = "gpt-oss 20B";
    num_layers = 24;
    hidden = 2880;
    q_heads = 64;
    kv_heads = 8;
    head_dim = 64;
    experts = 32;
    experts_per_token = 4;
    expert_hidden = 2880;
    vocab = 201_088;
    sliding_window = None;
    bits_per_param = 4.0;
    total_params_override = None;
  }

let gpt_oss_120b_sw =
  { gpt_oss_120b with name = "gpt-oss 120B (sliding window)"; sliding_window = Some 128 }

let tiny =
  {
    name = "tiny-moe";
    num_layers = 2;
    hidden = 32;
    q_heads = 4;
    kv_heads = 2;
    head_dim = 8;
    experts = 8;
    experts_per_token = 2;
    expert_hidden = 32;
    vocab = 64;
    sliding_window = None;
    bits_per_param = 4.0;
    total_params_override = None;
  }

let tiny_dense = { tiny with name = "tiny-dense"; experts = 0; experts_per_token = 0 }

let tiny_hnlpu =
  {
    name = "tiny-hnlpu";
    num_layers = 2;
    hidden = 32;
    q_heads = 8;
    kv_heads = 4;
    head_dim = 8;
    experts = 16;
    experts_per_token = 2;
    expert_hidden = 32;
    vocab = 64;
    sliding_window = None;
    bits_per_param = 4.0;
    total_params_override = None;
  }

(* Table 4 models: published parameter counts and native precision
   footprints.  Kimi-K2 ships INT4 experts with higher-precision attention
   (~5.4 effective bits/param); DeepSeek-V3 ships FP8 with BF16 fragments
   (~6 effective); QwQ and Llama-3 are BF16.  EXPERIMENTS.md shows these
   footprints reproduce the paper's Table 4 prices within ~1%. *)

let external_model name params bits =
  {
    name;
    num_layers = 0;
    hidden = 0;
    q_heads = 0;
    kv_heads = 0;
    head_dim = 0;
    experts = 0;
    experts_per_token = 0;
    expert_hidden = 0;
    vocab = 0;
    sliding_window = None;
    bits_per_param = bits;
    total_params_override = Some params;
  }

let kimi_k2 = external_model "Kimi-K2" 1.0e12 5.4
let deepseek_v3 = external_model "DeepSeek-V3" 671.0e9 6.0
let qwq_32b = external_model "QwQ" 32.0e9 16.0
let llama3_8b = external_model "Llama-3" 8.0e9 16.0

let table4_models = [ kimi_k2; deepseek_v3; qwq_32b; llama3_8b ]

let q_dim t = t.q_heads * t.head_dim

let kv_dim t = t.kv_heads * t.head_dim

let gqa_group t = t.q_heads / t.kv_heads

let layer_window t ~layer =
  match t.sliding_window with
  | None -> None
  | Some w -> if layer mod 2 = 0 then Some w else None

let validate t =
  let fail msg = invalid_arg ("Config.validate: " ^ t.name ^ ": " ^ msg) in
  if t.total_params_override <> None then begin
    match t.total_params_override with
    | Some p when p <= 0.0 -> fail "non-positive parameter count"
    | _ -> ()
  end
  else begin
    if t.num_layers <= 0 then fail "num_layers";
    if t.hidden <= 0 then fail "hidden";
    if t.q_heads <= 0 || t.kv_heads <= 0 || t.head_dim <= 0 then fail "heads";
    if t.q_heads mod t.kv_heads <> 0 then fail "q_heads not multiple of kv_heads";
    if t.experts < 0 then fail "experts";
    if t.experts > 0 && (t.experts_per_token <= 0 || t.experts_per_token > t.experts)
    then fail "experts_per_token";
    if t.experts = 0 && t.experts_per_token <> 0 then fail "dense FFN with top-k";
    if t.expert_hidden <= 0 then fail "expert_hidden";
    if t.vocab <= 0 then fail "vocab"
  end;
  (match t.sliding_window with
  | Some w when w <= 0 -> fail "sliding_window"
  | _ -> ());
  if t.bits_per_param <= 0.0 then fail "bits_per_param"
