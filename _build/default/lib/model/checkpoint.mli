(** Checkpoint serialization — save and load {!Weights} as a
    self-describing binary file, so synthetic models can be shared,
    re-spins can be diffed offline, and the Hardwired-Neuron compiler can
    be driven from a file the way the paper's flow reads weight parameters
    from the layout tools.

    Format (little-endian): an 8-byte magic ["HNLPUCK1"], the config
    (string + scalar fields), then every tensor in a fixed traversal
    order as [rows : u32] [cols : u32] [float64 x rows*cols].  Loading
    validates the magic, field ranges and exact length; a loaded model
    reproduces the saved model's logits bit-for-bit (tested). *)

val magic : string

val save : string -> Weights.t -> unit
(** Write to a path (truncates).  Raises [Sys_error] on IO failure. *)

val load : string -> Weights.t
(** Raises [Failure] with a description on any malformed input: wrong
    magic, inconsistent dimensions, truncated data, trailing bytes. *)

val to_bytes : Weights.t -> Bytes.t

val of_bytes : Bytes.t -> Weights.t

val size_bytes : Weights.t -> int
(** Serialized size (float64 storage: ~8 bytes per parameter plus
    framing). *)
