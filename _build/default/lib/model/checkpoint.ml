open Hnlpu_tensor

let magic = "HNLPUCK1"

(* --- Writer ----------------------------------------------------------------- *)

let w_u32 buf n =
  if n < 0 then failwith "Checkpoint: negative length";
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((n lsr (8 * i)) land 0xFF))
  done

let w_f64 buf x =
  let bits = Int64.bits_of_float x in
  for i = 0 to 7 do
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))
  done

let w_string buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_vec buf v =
  w_u32 buf 1;
  w_u32 buf (Array.length v);
  Array.iter (w_f64 buf) v

let w_mat buf m =
  w_u32 buf (Mat.rows m);
  w_u32 buf (Mat.cols m);
  for r = 0 to Mat.rows m - 1 do
    for c = 0 to Mat.cols m - 1 do
      w_f64 buf (Mat.get m r c)
    done
  done

let w_config buf (c : Config.t) =
  w_string buf c.Config.name;
  List.iter (w_u32 buf)
    [
      c.Config.num_layers; c.Config.hidden; c.Config.q_heads; c.Config.kv_heads;
      c.Config.head_dim; c.Config.experts; c.Config.experts_per_token;
      c.Config.expert_hidden; c.Config.vocab;
      (match c.Config.sliding_window with None -> 0 | Some w -> w);
    ];
  w_f64 buf c.Config.bits_per_param

let to_bytes (w : Weights.t) =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  w_config buf w.Weights.config;
  w_mat buf w.Weights.embedding;
  Array.iter
    (fun (l : Weights.layer) ->
      w_vec buf l.Weights.attn_norm;
      w_mat buf l.Weights.wq;
      w_mat buf l.Weights.wk;
      w_mat buf l.Weights.wv;
      w_mat buf l.Weights.wo;
      w_vec buf l.Weights.ffn_norm;
      (match l.Weights.w_router with
      | None -> w_u32 buf 0
      | Some r ->
        w_u32 buf 1;
        w_mat buf r);
      w_u32 buf (Array.length l.Weights.experts);
      Array.iter
        (fun (e : Weights.expert) ->
          w_mat buf e.Weights.w_up;
          w_mat buf e.Weights.w_gate;
          w_mat buf e.Weights.w_down)
        l.Weights.experts)
    w.Weights.layers;
  w_vec buf w.Weights.final_norm;
  w_mat buf w.Weights.unembedding;
  Buffer.to_bytes buf

(* --- Reader ----------------------------------------------------------------- *)

type reader = { data : Bytes.t; mutable pos : int }

let need r n =
  if r.pos + n > Bytes.length r.data then failwith "Checkpoint: truncated file"

let r_u32 r =
  need r 4;
  let v = ref 0 in
  for i = 0 to 3 do
    v := !v lor (Char.code (Bytes.get r.data (r.pos + i)) lsl (8 * i))
  done;
  r.pos <- r.pos + 4;
  !v

let r_f64 r =
  need r 8;
  let bits = ref 0L in
  for i = 0 to 7 do
    bits :=
      Int64.logor !bits
        (Int64.shift_left
           (Int64.of_int (Char.code (Bytes.get r.data (r.pos + i))))
           (8 * i))
  done;
  r.pos <- r.pos + 8;
  Int64.float_of_bits !bits

let r_string r =
  let n = r_u32 r in
  need r n;
  let s = Bytes.sub_string r.data r.pos n in
  r.pos <- r.pos + n;
  s

let r_mat_dims r ~rows ~cols what =
  let rr = r_u32 r and cc = r_u32 r in
  if rr <> rows || cc <> cols then
    failwith (Printf.sprintf "Checkpoint: %s has %dx%d, expected %dx%d" what rr cc rows cols)

let r_vec r ~len what =
  r_mat_dims r ~rows:1 ~cols:len what;
  Array.init len (fun _ -> r_f64 r)

let r_mat r ~rows ~cols what =
  r_mat_dims r ~rows ~cols what;
  Mat.init ~rows ~cols (fun _ _ -> r_f64 r)

let r_config r =
  let name = r_string r in
  let num_layers = r_u32 r in
  let hidden = r_u32 r in
  let q_heads = r_u32 r in
  let kv_heads = r_u32 r in
  let head_dim = r_u32 r in
  let experts = r_u32 r in
  let experts_per_token = r_u32 r in
  let expert_hidden = r_u32 r in
  let vocab = r_u32 r in
  let sw = r_u32 r in
  let bits_per_param = r_f64 r in
  let c =
    {
      Config.name;
      num_layers;
      hidden;
      q_heads;
      kv_heads;
      head_dim;
      experts;
      experts_per_token;
      expert_hidden;
      vocab;
      sliding_window = (if sw = 0 then None else Some sw);
      bits_per_param;
      total_params_override = None;
    }
  in
  (try Config.validate c
   with Invalid_argument msg -> failwith ("Checkpoint: bad config: " ^ msg));
  c

let of_bytes data =
  let r = { data; pos = 0 } in
  need r (String.length magic);
  let m = Bytes.sub_string data 0 (String.length magic) in
  if m <> magic then failwith "Checkpoint: bad magic";
  r.pos <- String.length magic;
  let c = r_config r in
  let embedding = r_mat r ~rows:c.Config.vocab ~cols:c.Config.hidden "embedding" in
  let layers =
    Array.init c.Config.num_layers (fun li ->
        let l = Printf.sprintf "layer %d" li in
        let attn_norm = r_vec r ~len:c.Config.hidden (l ^ " attn_norm") in
        let wq = r_mat r ~rows:c.Config.hidden ~cols:(Config.q_dim c) (l ^ " wq") in
        let wk = r_mat r ~rows:c.Config.hidden ~cols:(Config.kv_dim c) (l ^ " wk") in
        let wv = r_mat r ~rows:c.Config.hidden ~cols:(Config.kv_dim c) (l ^ " wv") in
        let wo = r_mat r ~rows:(Config.q_dim c) ~cols:c.Config.hidden (l ^ " wo") in
        let ffn_norm = r_vec r ~len:c.Config.hidden (l ^ " ffn_norm") in
        let w_router =
          match r_u32 r with
          | 0 -> None
          | 1 -> Some (r_mat r ~rows:c.Config.hidden ~cols:c.Config.experts (l ^ " router"))
          | _ -> failwith "Checkpoint: bad router flag"
        in
        let n_experts = r_u32 r in
        if n_experts <> max 1 c.Config.experts then
          failwith "Checkpoint: expert count mismatch";
        let experts =
          Array.init n_experts (fun _ ->
              let w_up =
                r_mat r ~rows:c.Config.hidden ~cols:c.Config.expert_hidden (l ^ " up")
              in
              let w_gate =
                r_mat r ~rows:c.Config.hidden ~cols:c.Config.expert_hidden (l ^ " gate")
              in
              let w_down =
                r_mat r ~rows:c.Config.expert_hidden ~cols:c.Config.hidden (l ^ " down")
              in
              { Weights.w_up; w_gate; w_down })
        in
        { Weights.attn_norm; wq; wk; wv; wo; ffn_norm; w_router; experts })
  in
  let final_norm = r_vec r ~len:c.Config.hidden "final_norm" in
  let unembedding = r_mat r ~rows:c.Config.hidden ~cols:c.Config.vocab "unembedding" in
  if r.pos <> Bytes.length data then failwith "Checkpoint: trailing bytes";
  { Weights.config = c; embedding; layers; final_norm; unembedding }

let save path w =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes w))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let data = Bytes.create n in
      really_input ic data 0 n;
      of_bytes data)

let size_bytes w = Bytes.length (to_bytes w)
