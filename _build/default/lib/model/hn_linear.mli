(** A linear layer executed on the Hardwired-Neuron (Metal-Embedding)
    machine — the bridge between the float reference model and the
    bit-serial hardware simulator.

    Construction quantizes each output neuron's weight column to E2M1 codes
    with a per-neuron scale, and builds the ME routing for the whole bank.
    Application quantizes the activation vector to int8 with a dynamic
    scale, streams it through {!Hnlpu_neuron.Metal_embedding} (bit-exact
    integer arithmetic) and rescales the results to floats.

    Integration tests run a tiny transformer layer both ways and bound the
    divergence by the quantization error — demonstrating the paper's
    claim that the hardwired fabric computes the same network. *)

type t

val of_matrix : ?act_bits:int -> ?slack:float -> Hnlpu_tensor.Mat.t -> t
(** Quantize a (in_features, out_features) float matrix.  [act_bits]
    defaults to 8, [slack] to 8 — per-neuron max scaling concentrates
    codes, so small banks need generous POPCNT region slack. *)

val in_features : t -> int
val out_features : t -> int

val apply : t -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** Run one GEMV on the ME machine. *)

val apply_float : t -> Hnlpu_tensor.Vec.t -> Hnlpu_tensor.Vec.t
(** The same quantized weights applied in float arithmetic — isolates the
    activation-quantization error from the weight-quantization error. *)

val dequantized : t -> Hnlpu_tensor.Mat.t
(** The effective weight matrix after quantization. *)

val report : t -> Hnlpu_neuron.Report.t
(** PPA of the underlying ME bank. *)
