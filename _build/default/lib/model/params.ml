let attention_per_layer (c : Config.t) =
  let q = c.hidden * Config.q_dim c in
  let k = c.hidden * Config.kv_dim c in
  let v = c.hidden * Config.kv_dim c in
  let o = Config.q_dim c * c.hidden in
  q + k + v + o

let router_per_layer (c : Config.t) =
  if c.experts = 0 then 0 else c.hidden * c.experts

let moe_per_layer (c : Config.t) =
  let per_expert = 3 * c.hidden * c.expert_hidden in
  let experts = max 1 c.experts in
  router_per_layer c + (experts * per_expert)

let embedding (c : Config.t) = 2 * c.hidden * c.vocab

let total (c : Config.t) =
  match c.total_params_override with
  | Some p -> p
  | None ->
    float_of_int
      ((c.num_layers * (attention_per_layer c + moe_per_layer c)) + embedding c)

let hardwired (c : Config.t) =
  match c.total_params_override with
  | Some p -> p (* external models: footprint only, no split available *)
  | None -> total c -. float_of_int (embedding c)

let bytes (c : Config.t) = total c *. c.bits_per_param /. 8.0

let router_fraction (c : Config.t) =
  if c.experts = 0 then 0.0
  else float_of_int (c.num_layers * router_per_layer c) /. total c
