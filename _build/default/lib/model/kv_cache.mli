(** Per-layer key/value cache for autoregressive decoding.

    Mirrors the HNLPU attention buffer's role (§4.3): stores one K and one V
    vector per KV head per past position.  The chip-level capacity/offload
    behaviour is modelled separately in {!Hnlpu_chip.Attention_buffer}; this
    module is the functional cache of the reference implementation. *)

type t

val create : Config.t -> t

val clear : t -> unit
(** Drop all cached positions. *)

val copy : t -> t
(** Deep-enough copy: the two caches evolve independently afterwards (the
    cached vectors themselves are immutable once appended). *)

val length : t -> layer:int -> int
(** Number of cached positions for a layer. *)

val append : t -> layer:int -> k:Hnlpu_tensor.Vec.t -> v:Hnlpu_tensor.Vec.t -> unit
(** [k] and [v] are the flat (kv_heads * head_dim) projections for the new
    position. *)

val key : t -> layer:int -> head:int -> pos:int -> Hnlpu_tensor.Vec.t
(** Cached key of a KV head at a position (length [head_dim]). *)

val value : t -> layer:int -> head:int -> pos:int -> Hnlpu_tensor.Vec.t

val bytes_per_position : Config.t -> kv_bytes_per_element:int -> int
(** Cache growth per decoded token across all layers — sizes the attention
    buffer and the Figure 14 stall model. *)
