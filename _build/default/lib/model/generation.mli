(** Beam-search decoding — the "conditional decoding (programmable
    sampling algorithms)" extension of §8, built on {!Transformer.fork}.

    Hypotheses carry their own forked KV caches; each step expands every
    live hypothesis by the [beams] most likely tokens, keeps the [beams]
    best by accumulated log-probability, and retires hypotheses on the
    stop token.  Scores are length-normalized by
    [(5 + len)^alpha / 6^alpha] (the GNMT penalty) when
    [length_penalty] > 0. *)

type hypothesis = {
  tokens : int list;       (** Generated tokens (prompt excluded). *)
  logprob : float;         (** Sum of token log-probabilities. *)
  normalized : float;      (** Penalized score used for ranking. *)
  finished : bool;         (** Ended on the stop token. *)
}

val beam_search :
  Transformer.t -> prompt:int list -> beams:int -> max_new_tokens:int ->
  ?stop:int -> ?length_penalty:float -> unit -> hypothesis list
(** Ranked best-first (length [<= beams]).  The transformer is reset
    first.  [beams = 1] reproduces greedy decoding exactly;
    [length_penalty] defaults to 0 (pure log-probability). *)

val greedy : Transformer.t -> prompt:int list -> max_new_tokens:int ->
  ?stop:int -> unit -> int list
(** Deterministic argmax decoding (convenience; equals
    [Transformer.generate] under [Sampler.Greedy]). *)
