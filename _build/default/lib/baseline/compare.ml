open Hnlpu_util

type system = {
  sys_name : string;
  throughput_tokens_per_s : float;
  tech_node : string;
  silicon_mm2 : float;
  rack_units : int;
  system_power_w : float;
  tokens_per_kj : float;
  tokens_per_s_mm2 : float;
}

let hnlpu ?tech ?(context = 2048) () =
  let config = Hnlpu_model.Config.gpt_oss_120b in
  let fp = Hnlpu_chip.Floorplan.table1 ?tech () in
  let throughput = Hnlpu_system.Perf.throughput_tokens_per_s ?tech config ~context in
  let power = Hnlpu_chip.Floorplan.system_power_w fp in
  let silicon = Hnlpu_chip.Floorplan.system_silicon_mm2 fp in
  {
    sys_name = "HNLPU";
    throughput_tokens_per_s = throughput;
    tech_node = "5 nm";
    silicon_mm2 = silicon;
    rack_units = 4;
    system_power_w = power;
    tokens_per_kj = throughput /. power *. 1000.0;
    tokens_per_s_mm2 = throughput /. silicon;
  }

let h100 () =
  let s = H100.spec in
  {
    sys_name = "H100";
    throughput_tokens_per_s = H100.measured_decode_tokens_per_s;
    tech_node = "5 nm";
    silicon_mm2 = s.H100.die_mm2;
    rack_units = s.H100.rack_units;
    system_power_w = s.H100.system_power_w;
    tokens_per_kj = H100.tokens_per_kj;
    tokens_per_s_mm2 = H100.measured_decode_tokens_per_s /. s.H100.die_mm2;
  }

let wse3 () =
  let s = Wse3.spec in
  {
    sys_name = "WSE-3";
    throughput_tokens_per_s = Wse3.measured_tokens_per_s;
    tech_node = "5 nm";
    silicon_mm2 = s.Wse3.silicon_mm2;
    rack_units = s.Wse3.rack_units;
    system_power_w = s.Wse3.system_power_w;
    tokens_per_kj = Wse3.tokens_per_kj;
    tokens_per_s_mm2 = Wse3.area_efficiency;
  }

let table2 ?tech () = [ hnlpu ?tech (); h100 (); wse3 () ]

let throughput_ratio s ~over = s.throughput_tokens_per_s /. over.throughput_tokens_per_s

let efficiency_ratio s ~over = s.tokens_per_kj /. over.tokens_per_kj

let to_table systems =
  let t =
    Table.create
      ~headers:
        [ "Metric"; "HNLPU"; "H100"; "WSE-3" ]
  in
  let cells f = List.map f systems in
  (match systems with
  | [ _; _; _ ] -> ()
  | _ -> invalid_arg "Compare.to_table: expected three systems");
  Table.add_row t ("Throughput (tokens/s)" :: cells (fun s ->
      Units.group_thousands (int_of_float (Float.round s.throughput_tokens_per_s))));
  Table.add_row t ("Technology Node" :: cells (fun s -> s.tech_node));
  Table.add_row t ("Total Silicon Area (mm2)" :: cells (fun s ->
      Units.group_thousands (int_of_float (Float.round s.silicon_mm2))));
  Table.add_row t ("System Footprint (RU)" :: cells (fun s -> string_of_int s.rack_units));
  Table.add_row t ("Total System Power (kW)" :: cells (fun s ->
      Printf.sprintf "%.1f" (s.system_power_w /. 1000.0)));
  Table.add_row t ("Energy Eff. (tokens/kJ)" :: cells (fun s ->
      Printf.sprintf "%.1f" s.tokens_per_kj));
  Table.add_row t ("Area Eff. (tokens/(s.mm2))" :: cells (fun s ->
      Printf.sprintf "%.3f" s.tokens_per_s_mm2));
  t
