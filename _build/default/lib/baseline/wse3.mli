(** Cerebras WSE-3 baseline (paper §6.3): throughput measured on the public
    Cerebras cloud running gpt-oss 120B; power from published system
    reports.  The wafer-scale engine keeps weights in on-wafer SRAM — fast,
    but the weights are still *data*, re-fetched every step, which is the
    gap HNLPU closes. *)

type t = {
  silicon_mm2 : float;       (** 46,225 mm² — the full wafer. *)
  system_power_w : float;    (** 23 kW. *)
  rack_units : int;          (** 16U. *)
  onchip_sram_bytes : float; (** 44 GB of wafer SRAM. *)
}

val spec : t

val measured_tokens_per_s : float
(** 2,940 (Table 2). *)

val tokens_per_kj : float
(** 127.8 (Table 2). *)

val area_efficiency : float
(** tokens/(s·mm²) — 0.064 in Table 2. *)
