(** The system-level comparison of Table 2: HNLPU vs H100 vs WSE-3 serving
    gpt-oss 120B at 2K context. *)

type system = {
  sys_name : string;
  throughput_tokens_per_s : float;
  tech_node : string;
  silicon_mm2 : float;
  rack_units : int;
  system_power_w : float;
  tokens_per_kj : float;
  tokens_per_s_mm2 : float;
}

val hnlpu : ?tech:Hnlpu_gates.Tech.t -> ?context:int -> unit -> system
(** From {!Hnlpu_system.Perf} and {!Hnlpu_chip.Floorplan}. *)

val h100 : unit -> system

val wse3 : unit -> system

val table2 : ?tech:Hnlpu_gates.Tech.t -> unit -> system list
(** [hnlpu; h100; wse3] at the paper's operating point. *)

val throughput_ratio : system -> over:system -> float
(** Paper headline: 5,555x over H100, 85x over WSE-3. *)

val efficiency_ratio : system -> over:system -> float
(** Paper headline: 1,047x over H100, 283x over WSE-3. *)

val to_table : system list -> Hnlpu_util.Table.t
