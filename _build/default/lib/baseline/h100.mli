(** NVIDIA H100 baseline (paper §6.3 and Appendix B note 1).

    The paper *measures* H100 via TensorRT-LLM: 45 tokens/s serving
    gpt-oss 120B at 2K context (single-stream optimal-throughput tuning,
    Table 2) and ~1.08K tokens/s per GPU under a 1K/1K concurrency-50
    distributed workload (the TCO normalization).  We cannot run an H100,
    so those anchors are carried as data, and a memory-bandwidth roofline
    model reproduces their order of magnitude and the batch-scaling
    behaviour the bench sweeps (autoregressive decode reads every active
    weight once per step; batching amortizes it). *)

type t = {
  hbm_bytes : float;                 (** 80 GB *)
  hbm_bandwidth_bytes_per_s : float; (** 3.35 TB/s *)
  die_mm2 : float;                   (** 814 mm² *)
  system_power_w : float;            (** 1.3 kW incl. host share (Table 2) *)
  rack_units : int;
  node_price_usd : float;            (** $320K per 8-GPU HGX node *)
  gpus_per_node : int;
}

val spec : t

val measured_decode_tokens_per_s : float
(** 45 — Table 2's measured figure. *)

val concurrent_tokens_per_s : float
(** 1,080 — per-GPU throughput at concurrency 50 (Appendix B note 1). *)

val active_weight_bytes_per_token : Hnlpu_model.Config.t -> float
(** Weights an autoregressive decode step must touch: attention + router +
    top-k experts across all layers, at the model's native precision. *)

val roofline_tokens_per_s : ?efficiency:float -> Hnlpu_model.Config.t -> batch:int -> float
(** Bandwidth-bound decode throughput at a batch size: a batch of B reads
    the union of its active experts once per step.  [efficiency] is the
    sustained fraction of peak bandwidth (default 0.3, which reproduces the
    concurrency-50 anchor within a few percent). *)

val price_per_gpu_usd : float

val tokens_per_kj : float
(** Table 2: 34.6. *)

(** {1 Next-generation GPU what-if}

    §8 ("Model Updates"): "the release of B100 did not render H100
    obsolete".  A B200-class part (~8 TB/s HBM3e, ~1.2 kW, ~2.4x decode
    throughput by bandwidth ratio) narrows but nowhere near closes the
    gap — the weights still move through memory every token. *)

type next_gen = {
  ng_name : string;
  ng_bandwidth_bytes_per_s : float;
  ng_power_w : float;
}

val b200_class : next_gen

val next_gen_decode_tokens_per_s : next_gen -> float
(** Scaled from the measured H100 anchor by bandwidth ratio (decode is
    bandwidth-bound). *)

val next_gen_tokens_per_kj : next_gen -> float
