open Hnlpu_model

type t = {
  hbm_bytes : float;
  hbm_bandwidth_bytes_per_s : float;
  die_mm2 : float;
  system_power_w : float;
  rack_units : int;
  node_price_usd : float;
  gpus_per_node : int;
}

let spec =
  {
    hbm_bytes = 80.0e9;
    hbm_bandwidth_bytes_per_s = 3.35e12;
    die_mm2 = 814.0;
    system_power_w = 1300.0;
    rack_units = 1;
    node_price_usd = 320_000.0;
    gpus_per_node = 8;
  }

let measured_decode_tokens_per_s = 45.0

let concurrent_tokens_per_s = 1080.0

let active_weight_bytes_per_token (c : Config.t) =
  let per_layer =
    float_of_int (Params.attention_per_layer c + Params.router_per_layer c)
    +. float_of_int
         (max 1 c.Config.experts_per_token * 3 * c.Config.hidden * c.Config.expert_hidden)
  in
  float_of_int c.Config.num_layers *. per_layer *. c.Config.bits_per_param /. 8.0

let roofline_tokens_per_s ?(efficiency = 0.3) (c : Config.t) ~batch =
  if batch < 1 then invalid_arg "H100.roofline_tokens_per_s: batch must be >= 1";
  if efficiency <= 0.0 || efficiency > 1.0 then
    invalid_arg "H100.roofline_tokens_per_s: efficiency in (0,1]";
  (* A batch of B tokens activates B top-k draws; the union of experts it
     touches saturates toward the whole set (coupon-collector style). *)
  let experts = float_of_int (max 1 c.Config.experts) in
  let k = float_of_int (max 1 c.Config.experts_per_token) in
  let b = float_of_int batch in
  let covered = experts *. (1.0 -. ((1.0 -. (k /. experts)) ** b)) in
  let expert_bytes =
    float_of_int (3 * c.Config.hidden * c.Config.expert_hidden)
    *. c.Config.bits_per_param /. 8.0
  in
  let dense_bytes =
    float_of_int (Params.attention_per_layer c + Params.router_per_layer c)
    *. c.Config.bits_per_param /. 8.0
  in
  let bytes_per_step =
    float_of_int c.Config.num_layers *. (dense_bytes +. (covered *. expert_bytes))
  in
  b *. spec.hbm_bandwidth_bytes_per_s *. efficiency /. bytes_per_step

let price_per_gpu_usd = spec.node_price_usd /. float_of_int spec.gpus_per_node

let tokens_per_kj = measured_decode_tokens_per_s /. spec.system_power_w *. 1000.0

type next_gen = {
  ng_name : string;
  ng_bandwidth_bytes_per_s : float;
  ng_power_w : float;
}

let b200_class =
  { ng_name = "B200-class"; ng_bandwidth_bytes_per_s = 8.0e12; ng_power_w = 1200.0 }

let next_gen_decode_tokens_per_s ng =
  measured_decode_tokens_per_s
  *. (ng.ng_bandwidth_bytes_per_s /. spec.hbm_bandwidth_bytes_per_s)

let next_gen_tokens_per_kj ng =
  next_gen_decode_tokens_per_s ng /. ng.ng_power_w *. 1000.0
