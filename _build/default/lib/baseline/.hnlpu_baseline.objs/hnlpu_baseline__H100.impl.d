lib/baseline/h100.ml: Config Hnlpu_model Params
