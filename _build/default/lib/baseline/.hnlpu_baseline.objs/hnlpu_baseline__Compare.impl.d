lib/baseline/compare.ml: Float H100 Hnlpu_chip Hnlpu_model Hnlpu_system Hnlpu_util List Printf Table Units Wse3
