lib/baseline/scaling.ml: H100 Hnlpu_chip Hnlpu_model Hnlpu_system Hnlpu_util List Printf Table Units
