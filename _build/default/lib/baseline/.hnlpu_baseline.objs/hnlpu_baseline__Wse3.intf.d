lib/baseline/wse3.mli:
