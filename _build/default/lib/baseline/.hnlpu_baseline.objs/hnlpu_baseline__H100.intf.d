lib/baseline/h100.mli: Hnlpu_model
