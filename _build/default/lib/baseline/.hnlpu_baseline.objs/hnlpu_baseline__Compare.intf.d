lib/baseline/compare.mli: Hnlpu_gates Hnlpu_util
