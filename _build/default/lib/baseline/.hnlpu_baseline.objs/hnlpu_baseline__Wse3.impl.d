lib/baseline/wse3.ml:
