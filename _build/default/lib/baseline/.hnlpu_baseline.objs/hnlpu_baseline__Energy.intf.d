lib/baseline/energy.mli: Hnlpu_gates Hnlpu_util
