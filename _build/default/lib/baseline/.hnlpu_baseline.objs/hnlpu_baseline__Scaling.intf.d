lib/baseline/scaling.mli: Hnlpu_util
