(** Per-token energy decomposition — where the 36 tokens/J of Table 2
    comes from, component by component.

    At steady state every block's power integrates over the token
    inter-arrival time (1 / throughput), so per-token energy is block
    power / throughput; the decomposition separates the chips' blocks from
    the system overhead (PSU, pumps, host).  The H100 comparison column
    shows the 1,047x gap in joules. *)

type row = {
  component : string;
  energy_mj : float;   (** Millijoules per token. *)
  share : float;
}

type t = {
  context : int;
  throughput_tokens_per_s : float;
  rows : row list;
  total_mj_per_token : float;
  tokens_per_joule : float;      (** Table 2: ~36. *)
  h100_mj_per_token : float;     (** 1.3 kW / 45 tok/s = ~28,900 mJ. *)
  advantage : float;             (** ~1,047x. *)
}

val analyze : ?tech:Hnlpu_gates.Tech.t -> ?context:int -> unit -> t

val to_table : t -> Hnlpu_util.Table.t
