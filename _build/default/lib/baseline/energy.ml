open Hnlpu_util

type row = { component : string; energy_mj : float; share : float }

type t = {
  context : int;
  throughput_tokens_per_s : float;
  rows : row list;
  total_mj_per_token : float;
  tokens_per_joule : float;
  h100_mj_per_token : float;
  advantage : float;
}

let analyze ?tech ?(context = 2048) () =
  let config = Hnlpu_model.Config.gpt_oss_120b in
  let fp = Hnlpu_chip.Floorplan.table1 ?tech () in
  let throughput = Hnlpu_system.Perf.throughput_tokens_per_s ?tech config ~context in
  let chips = 16.0 in
  let per_token w = w *. chips /. throughput *. 1e3 in
  let block_rows =
    List.map
      (fun (b : Hnlpu_chip.Floorplan.block) ->
        (b.Hnlpu_chip.Floorplan.block_name, per_token b.Hnlpu_chip.Floorplan.power_w))
      fp.Hnlpu_chip.Floorplan.blocks
  in
  let system_w = Hnlpu_chip.Floorplan.system_power_w fp in
  let overhead_w = system_w -. (fp.Hnlpu_chip.Floorplan.total_power_w *. chips) in
  let all =
    block_rows
    @ [ ("System overhead (PSU/cooling/host)", overhead_w /. throughput *. 1e3) ]
  in
  let total = List.fold_left (fun a (_, e) -> a +. e) 0.0 all in
  let rows =
    List.map (fun (component, energy_mj) -> { component; energy_mj; share = energy_mj /. total }) all
  in
  let h100_mj =
    H100.spec.H100.system_power_w
    /. H100.measured_decode_tokens_per_s *. 1e3
  in
  {
    context;
    throughput_tokens_per_s = throughput;
    rows;
    total_mj_per_token = total;
    tokens_per_joule = 1000.0 /. total;
    h100_mj_per_token = h100_mj;
    advantage = h100_mj /. total;
  }

let to_table t =
  let tbl = Table.create ~headers:[ "Component"; "mJ/token"; "Share" ] in
  List.iter
    (fun r ->
      Table.add_row tbl
        [ r.component; Printf.sprintf "%.2f" r.energy_mj; Units.percent r.share ])
    t.rows;
  Table.add_sep tbl;
  Table.add_row tbl
    [ "Total"; Printf.sprintf "%.2f" t.total_mj_per_token; "100.0%" ];
  Table.add_row tbl
    [
      "H100 (measured)";
      Printf.sprintf "%.0f" t.h100_mj_per_token;
      Printf.sprintf "%.0fx worse" t.advantage;
    ];
  tbl
