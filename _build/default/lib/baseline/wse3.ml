type t = {
  silicon_mm2 : float;
  system_power_w : float;
  rack_units : int;
  onchip_sram_bytes : float;
}

let spec =
  {
    silicon_mm2 = 46_225.0;
    system_power_w = 23_000.0;
    rack_units = 16;
    onchip_sram_bytes = 44.0e9;
  }

let measured_tokens_per_s = 2940.0

let tokens_per_kj = measured_tokens_per_s /. spec.system_power_w *. 1000.0

let area_efficiency = measured_tokens_per_s /. spec.silicon_mm2
