let bar ?(width = 50) ?(log = false) rows =
  if rows = [] then invalid_arg "Chart.bar: empty";
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let transform v =
    if log then begin
      if v <= 0.0 then invalid_arg "Chart.bar: log scale needs positive values";
      Stdlib.log v
    end
    else begin
      if v < 0.0 then invalid_arg "Chart.bar: negative value";
      v
    end
  in
  let tvals = List.map (fun (_, v) -> transform v) rows in
  let lo = if log then List.fold_left Float.min infinity tvals -. 0.5 else 0.0 in
  let hi = List.fold_left Float.max neg_infinity tvals in
  let span = Float.max (hi -. lo) 1e-12 in
  let buf = Buffer.create 256 in
  List.iter2
    (fun (label, v) tv ->
      let n = int_of_float (Float.round (float_of_int width *. (tv -. lo) /. span)) in
      Buffer.add_string buf
        (Printf.sprintf "%-*s |%s %g\n" label_w label (String.make (max 0 n) '#') v))
    rows tvals;
  Buffer.contents buf

let fills = [| '#'; '='; '-'; '.'; '+'; '*'; 'o'; '~' |]

let stacked ?(width = 60) ~legend rows =
  if rows = [] then invalid_arg "Chart.stacked: empty";
  let segs = List.length legend in
  List.iter
    (fun (_, vs) ->
      if List.length vs <> segs then invalid_arg "Chart.stacked: arity mismatch";
      if List.exists (fun v -> v < 0.0) vs then
        invalid_arg "Chart.stacked: negative segment")
    rows;
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (label, vs) ->
      let total = List.fold_left ( +. ) 0.0 vs in
      Buffer.add_string buf (Printf.sprintf "%-*s |" label_w label);
      if total > 0.0 then begin
        (* Largest-remainder rounding so the bar is exactly [width] wide. *)
        let raw = List.map (fun v -> float_of_int width *. v /. total) vs in
        let floors = List.map (fun r -> int_of_float (floor r)) raw in
        let short = width - List.fold_left ( + ) 0 floors in
        let order =
          List.mapi (fun i r -> (i, r -. floor r)) raw
          |> List.sort (fun (_, a) (_, b) -> compare b a)
          |> List.filteri (fun rank _ -> rank < short)
          |> List.map fst
        in
        List.iteri
          (fun i n ->
            let n = if List.mem i order then n + 1 else n in
            Buffer.add_string buf (String.make n fills.(i mod Array.length fills)))
          floors
      end;
      Buffer.add_string buf "|\n")
    rows;
  Buffer.add_string buf "\nlegend: ";
  List.iteri
    (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "%c=%s  " fills.(i mod Array.length fills) name))
    legend;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let sparkline values =
  let glyphs = ".:-=+*#%@" in
  if Array.length values = 0 then ""
  else begin
    let lo = Array.fold_left Float.min infinity values in
    let hi = Array.fold_left Float.max neg_infinity values in
    let span = Float.max (hi -. lo) 1e-12 in
    String.init (Array.length values) (fun i ->
        let r = (values.(i) -. lo) /. span in
        glyphs.[int_of_float (Float.round (r *. float_of_int (String.length glyphs - 1)))])
  end
