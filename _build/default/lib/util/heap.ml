type 'a entry = { priority : float; value : 'a }

type 'a t = { mutable data : 'a entry array; mutable n : int }

let create () = { data = [||]; n = 0 }

let is_empty t = t.n = 0

let size t = t.n

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.data.(i).priority < t.data.(parent).priority then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.n && t.data.(l).priority < t.data.(!smallest).priority then smallest := l;
  if r < t.n && t.data.(r).priority < t.data.(!smallest).priority then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~priority value =
  let entry = { priority; value } in
  if t.n = Array.length t.data then begin
    let cap = max 16 (2 * Array.length t.data) in
    let fresh = Array.make cap entry in
    Array.blit t.data 0 fresh 0 t.n;
    t.data <- fresh
  end;
  t.data.(t.n) <- entry;
  t.n <- t.n + 1;
  sift_up t (t.n - 1)

let peek t =
  if t.n = 0 then None else Some (t.data.(0).priority, t.data.(0).value)

let pop t =
  if t.n = 0 then None
  else begin
    let top = t.data.(0) in
    t.n <- t.n - 1;
    if t.n > 0 then begin
      t.data.(0) <- t.data.(t.n);
      sift_down t 0
    end;
    Some (top.priority, top.value)
  end
