let prefixes =
  [| (1e15, "P"); (1e12, "T"); (1e9, "G"); (1e6, "M"); (1e3, "k"); (1.0, "");
     (1e-3, "m"); (1e-6, "u"); (1e-9, "n"); (1e-12, "p"); (1e-15, "f") |]

let si ?(digits = 2) x =
  if x = 0.0 then Printf.sprintf "%.*f" digits 0.0
  else begin
    let mag = Float.abs x in
    let rec find i =
      if i >= Array.length prefixes - 1 then i
      else if mag >= fst prefixes.(i) then i
      else find (i + 1)
    in
    if mag >= 1e18 || mag < 1e-16 then Printf.sprintf "%.*e" digits x
    else begin
      let scale, p = prefixes.(find 0) in
      Printf.sprintf "%.*f%s" digits (x /. scale) p
    end
  end

let with_unit unit ?digits x = si ?digits x ^ unit

let seconds = with_unit "s"
let hertz = with_unit "Hz"
let joules = with_unit "J"
let watts = with_unit "W"
let bytes = with_unit "B"

let dollars x =
  let mag = Float.abs x in
  if mag >= 1e9 then Printf.sprintf "$ %.2fB" (x /. 1e9)
  else if mag >= 1e6 then Printf.sprintf "$ %.2fM" (x /. 1e6)
  else if mag >= 1e3 then Printf.sprintf "$ %.1fK" (x /. 1e3)
  else Printf.sprintf "$ %.0f" x

let round_sig n x =
  if x = 0.0 || Float.is_nan x then x
  else begin
    let mag = Float.abs x in
    let scale = 10.0 ** float_of_int (n - 1 - int_of_float (floor (log10 mag))) in
    Float.round (x *. scale) /. scale
  end

let dollars_m x =
  let m = round_sig 4 (x /. 1e6) in
  if Float.abs m >= 1000.0 then Printf.sprintf "%.0fM" m
  else if Float.abs m >= 100.0 then Printf.sprintf "%.1fM" m
  else if Float.abs m >= 10.0 then Printf.sprintf "%.2fM" m
  else Printf.sprintf "%.4gM" m

let percent ?(digits = 1) x = Printf.sprintf "%.*f%%" digits (x *. 100.0)

let ratio ?(digits = 2) x =
  if Float.abs x >= 100.0 then Printf.sprintf "%.0fx" x
  else Printf.sprintf "%.*fx" digits x

let group_thousands n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3)) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
