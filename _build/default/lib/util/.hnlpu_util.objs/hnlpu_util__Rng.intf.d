lib/util/rng.mli:
