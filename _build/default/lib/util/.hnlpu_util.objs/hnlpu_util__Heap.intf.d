lib/util/heap.mli:
