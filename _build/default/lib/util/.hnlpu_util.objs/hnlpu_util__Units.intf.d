lib/util/units.mli:
