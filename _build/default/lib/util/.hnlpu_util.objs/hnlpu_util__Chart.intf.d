lib/util/chart.mli:
