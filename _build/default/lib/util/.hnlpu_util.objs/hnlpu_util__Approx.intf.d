lib/util/approx.mli:
