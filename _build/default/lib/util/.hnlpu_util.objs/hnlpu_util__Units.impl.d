lib/util/units.ml: Array Buffer Float Printf String
