lib/util/stats.mli:
