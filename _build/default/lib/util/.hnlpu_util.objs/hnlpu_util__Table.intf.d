lib/util/table.mli:
