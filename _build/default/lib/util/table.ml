type align = Left | Right

type row = Cells of string list | Separator

type t = { headers : string list; ncols : int; mutable rows : row list }

let create ~headers = { headers; ncols = List.length headers; rows = [] }

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.ncols
         (List.length cells));
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render ?aligns t =
  let rows = List.rev t.rows in
  let aligns =
    match aligns with
    | Some a when List.length a = t.ncols -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: aligns arity mismatch"
    | None -> Array.init t.ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Separator -> ()
      | Cells cs ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs)
    rows;
  let buf = Buffer.create 1024 in
  let hline () =
    Array.iteri
      (fun i w ->
        Buffer.add_string buf (if i = 0 then "+-" else "-+-");
        Buffer.add_string buf (String.make w '-'))
      widths;
    Buffer.add_string buf "-+\n"
  in
  let line cells =
    List.iteri
      (fun i c ->
        Buffer.add_string buf (if i = 0 then "| " else " | ");
        Buffer.add_string buf (pad aligns.(i) widths.(i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  hline ();
  line t.headers;
  hline ();
  List.iter (function Separator -> hline () | Cells cs -> line cs) rows;
  hline ();
  Buffer.contents buf

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let to_csv t =
  let buf = Buffer.create 512 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  line t.headers;
  List.iter (function Separator -> () | Cells cs -> line cs) (List.rev t.rows);
  Buffer.contents buf

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json t =
  let obj cells =
    "{"
    ^ String.concat ","
        (List.map2 (fun h c -> json_string h ^ ":" ^ json_string c) t.headers cells)
    ^ "}"
  in
  let rows =
    List.filter_map
      (function Separator -> None | Cells cs -> Some (obj cs))
      (List.rev t.rows)
  in
  "[" ^ String.concat "," rows ^ "]"

let print ?aligns ?title t =
  (match title with
  | Some s ->
    print_string s;
    print_newline ();
    print_string (String.make (String.length s) '=');
    print_newline ()
  | None -> ());
  print_string (render ?aligns t)
