(** Engineering-unit formatting and conversions.

    All performance/cost models in this repository work in SI base units
    (seconds, joules, meters², dollars) and convert only at the printing
    boundary, using these helpers. *)

val si : ?digits:int -> float -> string
(** [si x] renders [x] with an SI prefix, e.g. [si 2.5e9 = "2.50G"].
    Covers f(emto) .. P(eta); values outside fall back to scientific
    notation.  [digits] defaults to [2]. *)

val seconds : ?digits:int -> float -> string
(** Time with unit, e.g. ["4.00us"], ["864us"], ["1.5ms"]. *)

val hertz : ?digits:int -> float -> string

val joules : ?digits:int -> float -> string

val watts : ?digits:int -> float -> string

val bytes : ?digits:int -> float -> string
(** Binary-ish rendering using decimal SI prefixes (KB = 1e3), matching how
    the paper quotes bandwidths and capacities. *)

val dollars : float -> string
(** Money with magnitude suffix: ["$ 629"], ["$ 27.69M"], ["$ 6.00B"]. *)

val dollars_m : float -> string
(** Money rendered in millions with 4 significant digits, the paper's
    convention in Tables 3 and 5 (e.g. ["59.46M"]). *)

val percent : ?digits:int -> float -> string
(** [percent 0.693 = "69.3%"]. *)

val ratio : ?digits:int -> float -> string
(** Multiplier rendering: ["5555x"], ["0.95x"]. *)

val round_sig : int -> float -> float
(** [round_sig n x] rounds [x] to [n] significant digits (paper rounds all
    Table 3 figures to four significant digits). *)

val group_thousands : int -> string
(** ["249,960"]-style integer rendering. *)
