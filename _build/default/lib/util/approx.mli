(** Approximate floating-point comparison helpers used throughout the test
    suites and by calibration assertions in the models. *)

val rel_error : float -> float -> float
(** [rel_error expected actual] is |actual - expected| / max(|expected|, eps).
    Zero when both are zero. *)

val close : ?rel:float -> ?abs:float -> float -> float -> bool
(** [close ~rel ~abs a b] holds when |a - b| <= abs or the relative error is
    within [rel].  Defaults: [rel = 1e-9], [abs = 0.0]. *)

val within_pct : float -> expected:float -> actual:float -> bool
(** [within_pct p ~expected ~actual]: relative error no more than [p] percent.
    The paper-number regression tests use this with the tolerance recorded in
    EXPERIMENTS.md. *)
