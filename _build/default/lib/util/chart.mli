(** Plain-text charts, so the bench harness can render the paper's
    *figures* as figures, not only as tables. *)

val bar : ?width:int -> ?log:bool -> (string * float) list -> string
(** Horizontal bar chart.  [log] (default false) scales bars
    logarithmically — Figure 13's energy axis is log-scale.  Values must
    be non-negative ([log] requires positive). *)

val stacked :
  ?width:int -> legend:string list -> (string * float list) list -> string
(** 100%-stacked horizontal bars (Figure 14's breakdown): each row's
    segments are normalized to the row total and drawn with a distinct
    fill character per legend entry. *)

val sparkline : float array -> string
(** One-line trend using block characters (ASCII fallback: .:-=+*#%@). *)
