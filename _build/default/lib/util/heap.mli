(** Minimal binary min-heap keyed by float priority — the event queue of
    the continuous-batching simulator. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> priority:float -> 'a -> unit

val peek : 'a t -> (float * 'a) option

val pop : 'a t -> (float * 'a) option
(** Removes and returns the minimum-priority element. *)
