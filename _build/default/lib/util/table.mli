(** Plain-text table rendering for experiment reports.

    The benchmark harness and CLI print every reproduced paper table through
    this module so all outputs share one visual format. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** New table with the given column headers.  Column count is fixed by the
    header list; rows with a different arity raise [Invalid_argument]. *)

val add_row : t -> string list -> unit

val add_sep : t -> unit
(** Horizontal separator row, for grouping (as in the paper's Table 3). *)

val render : ?aligns:align list -> t -> string
(** Render with box-drawing rules.  [aligns] defaults to left for the first
    column and right for the rest — the usual label-then-numbers layout. *)

val print : ?aligns:align list -> ?title:string -> t -> unit
(** [render] to stdout, optionally preceded by an underlined title. *)

val to_csv : t -> string
(** RFC-4180-style CSV: header row then data rows (separators dropped);
    cells containing commas, quotes or newlines are quoted. *)

val to_json : t -> string
(** An array of objects keyed by the headers (separators dropped); all
    values are JSON strings, escaped per RFC 8259. *)
