let rel_error expected actual =
  if expected = 0.0 && actual = 0.0 then 0.0
  else Float.abs (actual -. expected) /. Float.max (Float.abs expected) epsilon_float

let close ?(rel = 1e-9) ?(abs = 0.0) a b =
  Float.abs (a -. b) <= abs || rel_error a b <= rel

let within_pct p ~expected ~actual = rel_error expected actual <= p /. 100.0
