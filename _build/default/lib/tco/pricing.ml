open Hnlpu_gates

type bound = Optimistic | Pessimistic

let anchor = function
  | Optimistic -> Hnlpu_litho.Mask_cost.Optimistic
  | Pessimistic -> Hnlpu_litho.Mask_cost.Pessimistic

let range f = (f Optimistic, f Pessimistic)

let pick bound lo hi = match bound with Optimistic -> lo | Pessimistic -> hi

let die_area_mm2 = 827.08

let wafer_per_chip_usd ?(tech = Tech.n5) () =
  Yield.cost_per_good_die tech ~die_area_mm2

let package_test_usd bound =
  let per_wafer = pick bound 3000.0 5000.0 in
  let good = float_of_int (Yield.good_dies_per_wafer Tech.n5 ~die_area_mm2) in
  per_wafer /. good

let hbm_usd bound =
  let per_gb = pick bound 10.0 20.0 in
  per_gb *. 8.0 *. 24.0

let system_integration_usd bound = pick bound 1900.0 3800.0

let recurring_per_chip_usd ?tech bound =
  wafer_per_chip_usd ?tech () +. package_test_usd bound +. hbm_usd bound
  +. system_integration_usd bound

let design_architecture_usd bound = pick bound 1.87e6 3.74e6
let design_verification_usd bound = pick bound 9.97e6 19.93e6
let design_physical_usd bound = pick bound 4.80e6 14.41e6
let design_ip_usd bound = pick bound 10.23e6 20.46e6

let design_total_usd bound =
  design_architecture_usd bound +. design_verification_usd bound
  +. design_physical_usd bound +. design_ip_usd bound

let electricity_usd_per_kwh = 0.095
let pue = 1.4
let lifetime_hours = 3.0 *. 365.0 *. 24.0
let facility_usd_per_mw = 12.0e6
let grid_kgco2e_per_kwh = 0.38
let embodied_kgco2e_per_module = 124.9

let h100_network_usd_per_node = 45_000.0
let h100_maintenance_rate_per_year = 0.05
let h100_license_usd_per_gpu_per_year = 5_873.33

let hnlpu_network_usd_per_chip = h100_network_usd_per_node /. 8.0
