open Hnlpu_util

type volume = Low | High

let hnlpu_systems = function Low -> 1 | High -> 50

let h100_gpus = function Low -> 2_000 | High -> 100_000

let equivalence_gpus_per_hnlpu =
  2.0e6 (* HNLPU tokens/s under the 1K/1K concurrency-50 workload *)
  /. Hnlpu_baseline.H100.concurrent_tokens_per_s
  |> Float.round

type money = { lo : float; hi : float }

type column = {
  label : string;
  units : int;
  datacenter_power_mw : float;
  node_price : money;
  infrastructure : money;
  total_capex : money;
  respin : money;
  electricity : money;
  maintenance : money;
  opex : money;
  tco_static : money;
  tco_dynamic : money;
  emissions_static_t : float;
  emissions_dynamic_t : float;
}

let constant x = { lo = x; hi = x }

let of_bounds f = { lo = f Pricing.Optimistic; hi = f Pricing.Pessimistic }

let plus a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }

let times k a = { lo = k *. a.lo; hi = k *. a.hi }

let electricity_usd ~power_mw =
  power_mw *. 1000.0 *. Pricing.lifetime_hours *. Pricing.electricity_usd_per_kwh

let operational_tco2e ~power_mw =
  power_mw *. 1000.0 *. Pricing.lifetime_hours *. Pricing.grid_kgco2e_per_kwh /. 1000.0

let spare_nodes = function Low -> 1 | High -> 5

let hnlpu_column volume =
  let systems = hnlpu_systems volume in
  let chips = systems * Cost_breakdown.chips_per_system in
  let fp = Hnlpu_chip.Floorplan.table1 () in
  let wall_w = Hnlpu_chip.Floorplan.system_power_w fp *. float_of_int systems in
  let power_mw = wall_w *. Pricing.pue /. 1e6 in
  let node_price = of_bounds (fun b -> Cost_breakdown.initial_build_usd b ~systems) in
  let infrastructure =
    constant
      ((float_of_int chips *. Pricing.hnlpu_network_usd_per_chip)
      +. (power_mw *. Pricing.facility_usd_per_mw))
  in
  let total_capex = plus node_price infrastructure in
  let respin = of_bounds (fun b -> Cost_breakdown.respin_usd b ~systems) in
  let electricity = constant (electricity_usd ~power_mw) in
  let maintenance =
    of_bounds (fun b ->
        float_of_int (spare_nodes volume * Cost_breakdown.chips_per_system)
        *. Pricing.recurring_per_chip_usd b)
  in
  let opex = plus electricity maintenance in
  let tco_static = plus total_capex opex in
  let tco_dynamic = plus tco_static (times 2.0 respin) in
  (* Emissions: the paper's footprint counts the deployed modules plus one
     module per spare node (Appendix B note 8). *)
  let modules = chips + spare_nodes volume in
  let embodied = float_of_int modules *. Pricing.embodied_kgco2e_per_module /. 1000.0 in
  let respin_embodied =
    2.0 *. float_of_int chips *. Pricing.embodied_kgco2e_per_module /. 1000.0
  in
  let op_t = operational_tco2e ~power_mw in
  {
    label = Printf.sprintf "HNLPU (%s volume)" (match volume with Low -> "low" | High -> "high");
    units = systems;
    datacenter_power_mw = power_mw;
    node_price;
    infrastructure;
    total_capex;
    respin;
    electricity;
    maintenance;
    opex;
    tco_static;
    tco_dynamic;
    emissions_static_t = embodied +. op_t;
    emissions_dynamic_t = embodied +. respin_embodied +. op_t;
  }

let h100_column volume =
  let gpus = h100_gpus volume in
  let nodes = gpus / Hnlpu_baseline.H100.spec.Hnlpu_baseline.H100.gpus_per_node in
  let wall_w =
    float_of_int gpus *. Hnlpu_baseline.H100.spec.Hnlpu_baseline.H100.system_power_w
  in
  let power_mw = wall_w *. Pricing.pue /. 1e6 in
  let node_price =
    constant
      (float_of_int nodes *. Hnlpu_baseline.H100.spec.Hnlpu_baseline.H100.node_price_usd)
  in
  let infrastructure =
    constant
      ((float_of_int nodes *. Pricing.h100_network_usd_per_node)
      +. (power_mw *. Pricing.facility_usd_per_mw))
  in
  let total_capex = plus node_price infrastructure in
  let electricity = constant (electricity_usd ~power_mw) in
  let maintenance =
    constant
      ((3.0 *. Pricing.h100_maintenance_rate_per_year *. node_price.lo)
      +. (3.0 *. float_of_int gpus *. Pricing.h100_license_usd_per_gpu_per_year))
  in
  let opex = plus electricity maintenance in
  let tco = plus total_capex opex in
  let embodied = float_of_int gpus *. Pricing.embodied_kgco2e_per_module /. 1000.0 in
  let emissions = embodied +. operational_tco2e ~power_mw in
  {
    label = Printf.sprintf "H100 (%s volume)" (match volume with Low -> "low" | High -> "high");
    units = gpus;
    datacenter_power_mw = power_mw;
    node_price;
    infrastructure;
    total_capex;
    respin = constant 0.0;
    electricity;
    maintenance;
    opex;
    tco_static = tco;
    tco_dynamic = tco;
    emissions_static_t = emissions;
    emissions_dynamic_t = emissions;
  }

let table3 () =
  [ hnlpu_column Low; h100_column Low; hnlpu_column High; h100_column High ]

let ratio_pair get volume =
  let h = hnlpu_column volume and g = h100_column volume in
  ((get g).lo /. (get h).hi, (get g).lo /. (get h).lo)

let capex_ratio = ratio_pair (fun c -> c.total_capex)

let opex_ratio = ratio_pair (fun c -> c.opex)

let tco_dynamic_ratio = ratio_pair (fun c -> c.tco_dynamic)

let carbon_ratio ?(dynamic = true) volume =
  let h = hnlpu_column volume and g = h100_column volume in
  if dynamic then g.emissions_dynamic_t /. h.emissions_dynamic_t
  else g.emissions_static_t /. h.emissions_static_t

let to_table () =
  let cols = table3 () in
  let t =
    Table.create
      ~headers:
        ("Parameter"
        :: List.map (fun c -> c.label) cols)
  in
  let money m =
    if m.hi = m.lo || Float.abs (m.hi -. m.lo) < 0.005 *. Float.abs m.hi then
      Units.dollars_m m.lo
    else Printf.sprintf "%s ~ %s" (Units.dollars_m m.lo) (Units.dollars_m m.hi)
  in
  let row label f = Table.add_row t (label :: List.map f cols) in
  row "Systems / GPUs" (fun c -> Units.group_thousands c.units);
  row "Datacenter Power (MW)" (fun c -> Printf.sprintf "%.3f" c.datacenter_power_mw);
  Table.add_sep t;
  row "Node Price" (fun c -> money c.node_price);
  row "DC Infrastructure" (fun c -> money c.infrastructure);
  row "Total Initial CapEx" (fun c -> money c.total_capex);
  row "Update Re-spin Cost" (fun c -> money c.respin);
  Table.add_sep t;
  row "Electricity (3y)" (fun c -> money c.electricity);
  row "Maintenance & Support (3y)" (fun c -> money c.maintenance);
  Table.add_sep t;
  row "TCO (Static)" (fun c -> money c.tco_static);
  row "TCO (Annual Updates)" (fun c -> money c.tco_dynamic);
  Table.add_sep t;
  row "tCO2e (Static/Dynamic)" (fun c ->
      Printf.sprintf "%.1f / %.1f" c.emissions_static_t c.emissions_dynamic_t);
  t
