(** Carbon-footprint deep dive, extending Table 3's bottom row (Appendix B
    note 8, "Sustainable AI Support").

    Emissions split into embodied (manufacturing, 124.9 kg CO2e per module
    or per H100 card) and operational (grid intensity x energy).  The
    headline 357x advantage is grid- and cadence-dependent; this module
    exposes both axes and a per-token intensity metric. *)

type split = {
  embodied_t : float;
  respin_embodied_t : float;
  operational_t : float;
  total_t : float;
}

val hnlpu_split : ?updates:int -> Tco.volume -> split
(** [updates] re-spins over the 3-year life (default 2, Table 3's dynamic
    assumption). *)

val h100_split : Tco.volume -> split

val operational_fraction : split -> float
(** Operational share of the total — for HNLPU the footprint is
    overwhelmingly operational; for the H100 cluster too, but 357x
    larger. *)

val grid_sweep :
  ?volume:Tco.volume -> float list -> (float * float * float) list
(** For each grid intensity (kg CO2e/kWh): (intensity, HNLPU total t,
    H100 total t).  At a fully decarbonized grid (0.0) only embodied
    carbon remains and the advantage drops to the manufacturing ratio. *)

val advantage_at_grid : ?volume:Tco.volume -> kgco2e_per_kwh:float -> unit -> float
(** H100 total / HNLPU total at a grid intensity. *)

val g_per_million_tokens : ?volume:Tco.volume -> ?utilization:float -> unit -> float
(** HNLPU grams of CO2e per million tokens served over the 3-year life
    (dynamic scenario, default 60% utilization). *)

val update_cadence_sweep : Tco.volume -> int list -> (int * float) list
(** Re-spins over 3 years -> total tCO2e: how fast model churn erodes the
    hardwiring advantage (it barely does — re-spin silicon is small
    against operational savings). *)
