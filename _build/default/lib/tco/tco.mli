(** Table 3: 3-year Total Cost of Ownership and carbon footprint for LLM
    inference — HNLPU vs an equivalently-provisioned H100 cluster, at low
    (1 HNLPU ~ 2,000 H100s) and high (50 HNLPU ~ 100,000 H100s,
    OpenAI-scale) volume.

    All rows derive from {!Pricing} and {!Cost_breakdown}; the tests check
    each against the paper's published figures (4 significant digits). *)

type volume = Low | High

val hnlpu_systems : volume -> int  (** 1 / 50. *)

val h100_gpus : volume -> int      (** 2,000 / 100,000. *)

val equivalence_gpus_per_hnlpu : float
(** ~2,000: HNLPU's ~2M tokens/s over 1.08K per H100 GPU under the 1K/1K
    concurrency-50 workload (Appendix B note 1). *)

type money = { lo : float; hi : float }
(** Optimistic/pessimistic range; collapsed (lo = hi) for the H100 side. *)

type column = {
  label : string;
  units : int;                    (** Systems (HNLPU) or GPUs (H100). *)
  datacenter_power_mw : float;
  node_price : money;
  infrastructure : money;
  total_capex : money;
  respin : money;                 (** Zero for H100. *)
  electricity : money;
  maintenance : money;
  opex : money;                   (** Electricity + maintenance, 3 years. *)
  tco_static : money;
  tco_dynamic : money;            (** With two annual weight-update re-spins. *)
  emissions_static_t : float;
  emissions_dynamic_t : float;
}

val hnlpu_column : volume -> column

val h100_column : volume -> column

val table3 : unit -> column list
(** [low HNLPU; low H100; high HNLPU; high H100]. *)

(** {1 Headline ratios (H100 / HNLPU)} *)

val capex_ratio : volume -> float * float
(** High volume: 48.1x – 92.3x. *)

val opex_ratio : volume -> float * float
(** High volume: 1,496x – 1,793x. *)

val tco_dynamic_ratio : volume -> float * float
(** High volume: 41.7x – 80.4x. *)

val carbon_ratio : ?dynamic:bool -> volume -> float
(** High volume: 357x (dynamic) / 372x (static). *)

val to_table : unit -> Hnlpu_util.Table.t
