(** The paper's Table 5: HNLPU cost analysis — recurring per-chip cost,
    non-recurring photomask and design/development cost, and the total
    build/re-spin scenarios for 1 and 50 systems. *)

val chips_per_system : int
(** 16. *)

type line = { item : string; lo_usd : float; hi_usd : float }

val recurring_lines : unit -> line list
(** Wafer, package & test, HBM, system integration (per chip). *)

val nre_lines : unit -> line list
(** Homogeneous mask, metal-embedding mask (16 chips), and the four design
    & development items. *)

val mask_nre_usd : Pricing.bound -> float
(** Homogeneous + 16-chip ME masks: $32.31M – $64.61M. *)

val nre_total_usd : Pricing.bound -> float
(** Masks + design: $59.18M – $123.2M. *)

val initial_build_usd : Pricing.bound -> systems:int -> float
(** Full NRE + recurring for [systems] x 16 chips.
    Table 5: $59.25M–123.3M (1 system), $62.83M–129.9M (50). *)

val respin_usd : Pricing.bound -> systems:int -> float
(** ME masks + recurring.
    Table 5: $18.53M–37.06M (1), $22.11M–43.68M (50). *)

val to_table : unit -> Hnlpu_util.Table.t
