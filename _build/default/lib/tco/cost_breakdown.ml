open Hnlpu_litho
open Hnlpu_util

let chips_per_system = Hnlpu_noc.Topology.chips

type line = { item : string; lo_usd : float; hi_usd : float }

let line item f =
  let lo, hi = Pricing.range f in
  { item; lo_usd = lo; hi_usd = hi }

let recurring_lines () =
  [
    line "Wafer" (fun _ -> Pricing.wafer_per_chip_usd ());
    line "Package & Test" Pricing.package_test_usd;
    line "HBM" Pricing.hbm_usd;
    line "System Integration" Pricing.system_integration_usd;
  ]

let mask_homogeneous bound = Mask_cost.homogeneous_cost (Pricing.anchor bound)

let mask_me bound =
  Mask_cost.sea_of_neurons_respin (Pricing.anchor bound) ~chips:chips_per_system

let nre_lines () =
  [
    line "Photomask: Homogeneous Mask" mask_homogeneous;
    line "Photomask: Metal-Embedding Mask" mask_me;
    line "Design: Architecture" Pricing.design_architecture_usd;
    line "Design: Verification" Pricing.design_verification_usd;
    line "Design: Physical" Pricing.design_physical_usd;
    line "Design: IP" Pricing.design_ip_usd;
  ]

let mask_nre_usd bound = mask_homogeneous bound +. mask_me bound

let nre_total_usd bound = mask_nre_usd bound +. Pricing.design_total_usd bound

let recurring_for bound ~systems =
  float_of_int (systems * chips_per_system) *. Pricing.recurring_per_chip_usd bound

let initial_build_usd bound ~systems =
  if systems <= 0 then invalid_arg "Cost_breakdown.initial_build_usd";
  nre_total_usd bound +. recurring_for bound ~systems

let respin_usd bound ~systems =
  if systems <= 0 then invalid_arg "Cost_breakdown.respin_usd";
  mask_me bound +. recurring_for bound ~systems

let to_table () =
  let t = Table.create ~headers:[ "Item"; "Optimistic"; "Pessimistic" ] in
  let dollars x =
    if x >= 1e6 then Units.dollars_m x else Printf.sprintf "%.0f" x
  in
  let add { item; lo_usd; hi_usd } =
    Table.add_row t [ item; dollars lo_usd; dollars hi_usd ]
  in
  List.iter add (recurring_lines ());
  Table.add_sep t;
  List.iter add (nre_lines ());
  Table.add_sep t;
  add (line "Initial Build: 1-HNLPU" (fun b -> initial_build_usd b ~systems:1));
  add (line "Initial Build: 50-HNLPU" (fun b -> initial_build_usd b ~systems:50));
  add (line "Re-spin: 1-HNLPU" (fun b -> respin_usd b ~systems:1));
  add (line "Re-spin: 50-HNLPU" (fun b -> respin_usd b ~systems:50));
  t
