(** Appendix B cost constants.

    Every number in the paper's Table 3 and Table 5 derives from the
    constants below; the test suite re-derives each published line item.
    HNLPU-side ranges carry an optimistic/pessimistic [bound]. *)

type bound = Optimistic | Pessimistic

val anchor : bound -> Hnlpu_litho.Mask_cost.anchor

val range : (bound -> float) -> float * float

(** {1 HNLPU recurring cost, per chip (Table 5)} *)

val wafer_per_chip_usd : ?tech:Hnlpu_gates.Tech.t -> unit -> float
(** $629: Murphy-yield cost of one good 827 mm² die. *)

val package_test_usd : bound -> float
(** $111 – $185: $3,000–5,000 per wafer amortized over 27 good dies. *)

val hbm_usd : bound -> float
(** $1,920 – $3,840: $10–20/GB x 8 stacks x 24 GB. *)

val system_integration_usd : bound -> float
(** $1,900 – $3,800 per chip: chassis, board, cooling, CXL. *)

val recurring_per_chip_usd : ?tech:Hnlpu_gates.Tech.t -> bound -> float

(** {1 HNLPU design & development NRE (Table 5)} *)

val design_architecture_usd : bound -> float
(** $1.87M – 3.74M *)

val design_verification_usd : bound -> float
(** $9.97M – 19.93M *)

val design_physical_usd : bound -> float
(** $4.80M – 14.41M *)

val design_ip_usd : bound -> float
(** $10.23M – 20.46M *)

val design_total_usd : bound -> float

(** {1 Shared datacenter economics} *)

val electricity_usd_per_kwh : float
(** $0.095 *)

val pue : float
(** 1.4 *)

val lifetime_hours : float
(** 3 years *)

val facility_usd_per_mw : float
(** $12M per MW of critical IT load *)

val grid_kgco2e_per_kwh : float
(** 0.38 *)

val embodied_kgco2e_per_module : float
(** 124.9 kg, one H100 card or one HNLPU module *)

(** {1 H100 cluster economics} *)

val h100_network_usd_per_node : float
(** $45K: NICs, switches, optics. *)

val h100_maintenance_rate_per_year : float
(** 5% of hardware CapEx per year. *)

val h100_license_usd_per_gpu_per_year : float
(** $5,873 — NVIDIA AI Enterprise per-GPU subscription as back-derived
    from Table 3's maintenance rows (consistent with published NVAIE
    tiers). *)

(** {1 HNLPU node networking} *)

val hnlpu_network_usd_per_chip : float
(** $5,625 = $45K/8: the paper scales the H100 per-GPU network cost by chip
    count. *)
