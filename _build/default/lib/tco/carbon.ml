type split = {
  embodied_t : float;
  respin_embodied_t : float;
  operational_t : float;
  total_t : float;
}

let spare_modules = function Tco.Low -> 1 | Tco.High -> 5

let hnlpu_power_mw volume =
  let fp = Hnlpu_chip.Floorplan.table1 () in
  Hnlpu_chip.Floorplan.system_power_w fp
  *. float_of_int (Tco.hnlpu_systems volume)
  *. Pricing.pue /. 1e6

let h100_power_mw volume =
  float_of_int (Tco.h100_gpus volume) *. 1300.0 *. Pricing.pue /. 1e6

let operational_at ~kgco2e_per_kwh ~power_mw =
  power_mw *. 1000.0 *. Pricing.lifetime_hours *. kgco2e_per_kwh /. 1000.0

let hnlpu_split ?(updates = 2) volume =
  if updates < 0 then invalid_arg "Carbon.hnlpu_split: negative updates";
  let chips = Tco.hnlpu_systems volume * Cost_breakdown.chips_per_system in
  let embodied =
    float_of_int (chips + spare_modules volume)
    *. Pricing.embodied_kgco2e_per_module /. 1000.0
  in
  let respin =
    float_of_int (updates * chips) *. Pricing.embodied_kgco2e_per_module /. 1000.0
  in
  let op =
    operational_at ~kgco2e_per_kwh:Pricing.grid_kgco2e_per_kwh
      ~power_mw:(hnlpu_power_mw volume)
  in
  {
    embodied_t = embodied;
    respin_embodied_t = respin;
    operational_t = op;
    total_t = embodied +. respin +. op;
  }

let h100_split volume =
  let embodied =
    float_of_int (Tco.h100_gpus volume) *. Pricing.embodied_kgco2e_per_module /. 1000.0
  in
  let op =
    operational_at ~kgco2e_per_kwh:Pricing.grid_kgco2e_per_kwh
      ~power_mw:(h100_power_mw volume)
  in
  { embodied_t = embodied; respin_embodied_t = 0.0; operational_t = op;
    total_t = embodied +. op }

let operational_fraction s = s.operational_t /. s.total_t

let total_at_grid ~volume ~kgco2e_per_kwh side =
  match side with
  | `Hnlpu ->
    let s = hnlpu_split volume in
    s.embodied_t +. s.respin_embodied_t
    +. operational_at ~kgco2e_per_kwh ~power_mw:(hnlpu_power_mw volume)
  | `H100 ->
    let s = h100_split volume in
    s.embodied_t +. operational_at ~kgco2e_per_kwh ~power_mw:(h100_power_mw volume)

let grid_sweep ?(volume = Tco.High) intensities =
  List.map
    (fun g ->
      if g < 0.0 then invalid_arg "Carbon.grid_sweep: negative intensity";
      ( g,
        total_at_grid ~volume ~kgco2e_per_kwh:g `Hnlpu,
        total_at_grid ~volume ~kgco2e_per_kwh:g `H100 ))
    intensities

let advantage_at_grid ?(volume = Tco.High) ~kgco2e_per_kwh () =
  total_at_grid ~volume ~kgco2e_per_kwh `H100
  /. total_at_grid ~volume ~kgco2e_per_kwh `Hnlpu

let g_per_million_tokens ?(volume = Tco.High) ?(utilization = 0.6) () =
  if utilization <= 0.0 || utilization > 1.0 then
    invalid_arg "Carbon.g_per_million_tokens: utilization in (0,1]";
  let s = hnlpu_split volume in
  let tokens =
    Hnlpu_system.Perf.throughput_tokens_per_s Hnlpu_model.Config.gpt_oss_120b
      ~context:2048
    *. utilization *. Pricing.lifetime_hours *. 3600.0
    *. float_of_int (Tco.hnlpu_systems volume)
  in
  s.total_t *. 1e6 (* grams *) /. (tokens /. 1e6)

let update_cadence_sweep volume respins =
  List.map (fun n -> (n, (hnlpu_split ~updates:n volume).total_t)) respins
