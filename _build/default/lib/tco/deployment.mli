(** Deployment-level analyses from the paper's §8 Discussion.

    {b Blue-green updates} ("Model Updates"): when a new checkpoint is
    validated on GPU testbeds, "green" HNLPUs are manufactured (6–8 week
    turnaround) while the "blue" fleet keeps serving; traffic flips at
    delivery, so weight updates cost a re-spin but zero downtime.

    {b Inference volume} ("Inference Volume"): NRE amortizes over the
    fleet; this module sweeps fleet size to locate the cost-per-token
    crossover against the H100 cluster. *)

type update_plan = {
  updates_per_year : float;
  turnaround_weeks : float;  (** Paper: 6–8 weeks per re-spin. *)
  years : float;
}

val annual_plan : update_plan
(** One update per year, 7-week turnaround, 3 years — the Table 3
    "dynamic" assumption. *)

type blue_green = {
  total_updates : int;
  respin_bill : float * float;      (** (optimistic, pessimistic). *)
  weeks_in_transition : float;       (** Green manufacturing time. *)
  peak_fleet_factor : float;         (** 2.0 during cutover weeks. *)
  downtime_weeks : float;            (** 0 — the point of blue-green. *)
  serving_capacity_fraction : float; (** Time-averaged capacity >= 1.0. *)
}

val blue_green : ?systems:int -> update_plan -> blue_green

type volume_point = {
  systems : int;
  tco_usd : float * float;           (** 3-year dynamic TCO (opt, pess). *)
  tokens_served : float;             (** 3 years at the decode rate. *)
  usd_per_mtoken : float * float;
  h100_usd_per_mtoken : float;       (** Equivalent-throughput cluster. *)
}

val volume_sweep : ?utilization:float -> int list -> volume_point list
(** Cost per million tokens vs fleet size; [utilization] (default 0.6)
    derates the peak decode rate.  The H100 column provisions the
    equivalent GPUs at the same utilization. *)

val crossover_systems : ?utilization:float -> unit -> int option
(** Smallest fleet at which even the pessimistic HNLPU cost-per-token
    beats the H100 cluster (None if never within 1..1000). *)
