lib/tco/carbon.ml: Cost_breakdown Hnlpu_chip Hnlpu_model Hnlpu_system List Pricing Tco
