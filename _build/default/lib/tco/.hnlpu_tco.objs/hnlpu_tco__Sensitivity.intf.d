lib/tco/sensitivity.mli: Hnlpu_util Tco
