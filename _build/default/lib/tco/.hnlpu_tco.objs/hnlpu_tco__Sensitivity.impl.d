lib/tco/sensitivity.ml: Cost_breakdown Float Hnlpu_chip Hnlpu_litho Hnlpu_util List Pricing Printf Tco
