lib/tco/tco.ml: Cost_breakdown Float Hnlpu_baseline Hnlpu_chip Hnlpu_util List Pricing Printf Table Units
