lib/tco/cost_breakdown.mli: Hnlpu_util Pricing
