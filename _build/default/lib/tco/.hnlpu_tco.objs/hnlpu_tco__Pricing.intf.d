lib/tco/pricing.mli: Hnlpu_gates Hnlpu_litho
