lib/tco/carbon.mli: Tco
