lib/tco/pricing.ml: Hnlpu_gates Hnlpu_litho Tech Yield
