lib/tco/deployment.mli:
