lib/tco/cost_breakdown.ml: Hnlpu_litho Hnlpu_noc Hnlpu_util List Mask_cost Pricing Printf Table Units
