lib/tco/deployment.ml: Cost_breakdown Float Hnlpu_baseline Hnlpu_chip Hnlpu_model Hnlpu_system List Pricing Tco
