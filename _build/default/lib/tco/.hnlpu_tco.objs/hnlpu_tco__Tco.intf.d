lib/tco/tco.mli: Hnlpu_util
