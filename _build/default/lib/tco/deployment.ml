type update_plan = {
  updates_per_year : float;
  turnaround_weeks : float;
  years : float;
}

let annual_plan = { updates_per_year = 1.0; turnaround_weeks = 7.0; years = 3.0 }

type blue_green = {
  total_updates : int;
  respin_bill : float * float;
  weeks_in_transition : float;
  peak_fleet_factor : float;
  downtime_weeks : float;
  serving_capacity_fraction : float;
}

let blue_green ?(systems = 1) plan =
  if plan.updates_per_year < 0.0 || plan.years <= 0.0 then
    invalid_arg "Deployment.blue_green: bad plan";
  (* Updates during the lifetime, excluding the initial build; Table 3's
     "annual updates over 3 years" convention is two re-spins. *)
  let total_updates =
    max 0 (int_of_float (Float.round (plan.updates_per_year *. plan.years)) - 1)
  in
  let respin b = Cost_breakdown.respin_usd b ~systems *. float_of_int total_updates in
  let weeks = float_of_int total_updates *. plan.turnaround_weeks in
  {
    total_updates;
    respin_bill = (respin Pricing.Optimistic, respin Pricing.Pessimistic);
    weeks_in_transition = weeks;
    peak_fleet_factor = (if total_updates > 0 then 2.0 else 1.0);
    downtime_weeks = 0.0;
    (* While the green fleet burns in, both serve: capacity briefly 2x. *)
    serving_capacity_fraction = 1.0 +. (weeks /. (plan.years *. 52.0));
  }

type volume_point = {
  systems : int;
  tco_usd : float * float;
  tokens_served : float;
  usd_per_mtoken : float * float;
  h100_usd_per_mtoken : float;
}

let decode_rate () =
  Hnlpu_system.Perf.throughput_tokens_per_s Hnlpu_model.Config.gpt_oss_120b
    ~context:2048

let hnlpu_tco_dynamic systems bound =
  (* Re-derive the Table 3 pipeline at arbitrary fleet size. *)
  let fp = Hnlpu_chip.Floorplan.table1 () in
  let wall_w = Hnlpu_chip.Floorplan.system_power_w fp *. float_of_int systems in
  let power_mw = wall_w *. Pricing.pue /. 1e6 in
  let chips = systems * Cost_breakdown.chips_per_system in
  let capex =
    Cost_breakdown.initial_build_usd bound ~systems
    +. (float_of_int chips *. Pricing.hnlpu_network_usd_per_chip)
    +. (power_mw *. Pricing.facility_usd_per_mw)
  in
  let electricity =
    power_mw *. 1000.0 *. Pricing.lifetime_hours *. Pricing.electricity_usd_per_kwh
  in
  let spares = max 1 (systems / 10) in
  let maintenance =
    float_of_int (spares * Cost_breakdown.chips_per_system)
    *. Pricing.recurring_per_chip_usd bound
  in
  capex +. electricity +. maintenance +. (2.0 *. Cost_breakdown.respin_usd bound ~systems)

let h100_cost_per_mtoken ~utilization =
  (* An H100 fleet sized for one HNLPU's throughput, priced per token. *)
  let gpus = Tco.equivalence_gpus_per_hnlpu in
  let nodes = gpus /. 8.0 in
  let power_mw = gpus *. 1300.0 *. Pricing.pue /. 1e6 in
  let capex =
    (nodes *. Hnlpu_baseline.H100.spec.Hnlpu_baseline.H100.node_price_usd)
    +. (nodes *. Pricing.h100_network_usd_per_node)
    +. (power_mw *. Pricing.facility_usd_per_mw)
  in
  let electricity =
    power_mw *. 1000.0 *. Pricing.lifetime_hours *. Pricing.electricity_usd_per_kwh
  in
  let maintenance =
    (3.0 *. Pricing.h100_maintenance_rate_per_year
    *. (nodes *. Hnlpu_baseline.H100.spec.Hnlpu_baseline.H100.node_price_usd))
    +. (3.0 *. gpus *. Pricing.h100_license_usd_per_gpu_per_year)
  in
  let tokens =
    decode_rate () *. utilization *. Pricing.lifetime_hours *. 3600.0
  in
  (capex +. electricity +. maintenance) /. (tokens /. 1e6)

let volume_sweep ?(utilization = 0.6) fleet_sizes =
  if utilization <= 0.0 || utilization > 1.0 then
    invalid_arg "Deployment.volume_sweep: utilization in (0,1]";
  let per_system_tokens =
    decode_rate () *. utilization *. Pricing.lifetime_hours *. 3600.0
  in
  let h100 = h100_cost_per_mtoken ~utilization in
  List.map
    (fun systems ->
      if systems <= 0 then invalid_arg "Deployment.volume_sweep: systems >= 1";
      let tokens = per_system_tokens *. float_of_int systems in
      let lo = hnlpu_tco_dynamic systems Pricing.Optimistic in
      let hi = hnlpu_tco_dynamic systems Pricing.Pessimistic in
      {
        systems;
        tco_usd = (lo, hi);
        tokens_served = tokens;
        usd_per_mtoken = (lo /. (tokens /. 1e6), hi /. (tokens /. 1e6));
        h100_usd_per_mtoken = h100;
      })
    fleet_sizes

let crossover_systems ?(utilization = 0.6) () =
  let rec go n =
    if n > 1000 then None
    else begin
      match volume_sweep ~utilization [ n ] with
      | [ p ] ->
        let _, hi = p.usd_per_mtoken in
        if hi < p.h100_usd_per_mtoken then Some n else go (n + 1)
      | _ -> None
    end
  in
  go 1
