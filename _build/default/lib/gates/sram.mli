(** SRAM macro model: area, access energy and leakage.

    Used for the 64 KB weight buffer of the MAC-array baseline (Fig. 12/13)
    and the 320 MB attention buffer (Table 1). *)

type t = {
  capacity_bits : int;
  word_bits : int;  (** Bits delivered per read access. *)
  banks : int;
}

val make : ?banks:int -> capacity_bytes:int -> word_bits:int -> unit -> t

val area_mm2 : Tech.t -> t -> float
(** Macro area: bit-cell array divided by the macro efficiency factor. *)

val read_energy_j : Tech.t -> t -> float
(** Energy of one word read. *)

val write_energy_j : Tech.t -> t -> float

val leakage_w : Tech.t -> t -> float

val reads_to_stream : t -> total_bits:int -> int
(** Number of read accesses to stream [total_bits] through the port. *)

val capacity_bytes : t -> int
