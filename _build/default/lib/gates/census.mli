(** Transistor census for the datapath structures of the three embedding
    methodologies.

    Static CMOS gate costs are the classical ones (NAND2 = 4, XOR2 = 8, full
    adder = 28, D-flip-flop = 24 transistors).  Composite units are built
    from these; {!Hnlpu_neuron} combines them with {!Hnlpu_fp4.Csa} structural
    statistics to price a whole neuron. *)

(** {1 Primitive gates} (transistors) *)

val inverter : int
val nand2 : int
val nor2 : int
val xor2 : int
val mux2 : int
val full_adder : int
val half_adder : int
val flipflop : int

(** {1 Composite units} *)

val ripple_adder : int -> int
(** [ripple_adder w]: w-bit carry-propagate adder. *)

val register : int -> int
(** [register w]: w-bit flip-flop bank. *)

val negator : int -> int
(** [negator w]: two's-complement negate (XOR row + increment). *)

val csa_cost : Hnlpu_fp4.Csa.stats -> int
(** Transistors of a CSA tree from its structural statistics, including the
    final carry-propagate adder. *)

val multiplier : int -> int -> int
(** [multiplier a b]: generic a-bit x b-bit array multiplier (partial-product
    AND matrix + CSA reduction + CPA) — what a GPU-style FP4 MAC pays. *)

val fp4_constant_multiplier : input_bits:int -> Hnlpu_fp4.Fp4.t -> int
(** Transistors of a multiply-by-constant unit for one E2M1 code on a
    two's-complement input of [input_bits] bits.  Powers of two are free
    (wiring); x1.5/x3/x6 cost one shift-add; negative codes add a negator.
    This is the "several times lower in Boolean complexity" unit of §3.1. *)

val fp4_constant_multiplier_avg : input_bits:int -> float
(** Mean over the 16 codes — the expected per-weight cost in a CE fabric. *)

val fp4_full_mac : input_bits:int -> int
(** A non-constant FP4 x int MAC as found in a conventional array; the paper
    puts it at 200+ transistors. *)

val popcount_port_transistors : int
(** Effective transistors per POPCNT input port in the Hardwired-Neuron
    fabric.

    A textbook static-CMOS 3:2 compressor costs {!full_adder} = 28 T per
    port, but the paper's density figures (15x over a 208 T/weight CMAC
    grid, i.e. ~14 T/weight all-in; HN array 573 mm²/chip for ~7.2 B
    weights) imply a far denser counting fabric.  The paper does not give
    the circuit; we model it as compact transmission-gate counter cells
    with accumulator slices shared across regions, at 8 T per port.  This
    single calibrated constant drives the ME area in Figure 12 and the HN
    array area in Table 1 — see EXPERIMENTS.md for the sensitivity note. *)

val popcount_region : ports:int -> int
(** Transistors of one POPCNT region with the given port capacity (port
    cells plus the log-depth combining tail). *)
