type t = { capacity_bits : int; word_bits : int; banks : int }

let make ?(banks = 1) ~capacity_bytes ~word_bits () =
  if capacity_bytes <= 0 || word_bits <= 0 || banks <= 0 then
    invalid_arg "Sram.make: sizes must be positive";
  { capacity_bits = capacity_bytes * 8; word_bits; banks }

let area_mm2 (tech : Tech.t) t =
  let cell_mm2 = tech.sram_bitcell_um2 *. 1e-6 in
  float_of_int t.capacity_bits *. cell_mm2 /. tech.sram_array_efficiency

let read_energy_j (tech : Tech.t) t =
  float_of_int t.word_bits *. tech.sram_read_fj_per_bit *. 1e-15

let write_energy_j (tech : Tech.t) t =
  float_of_int t.word_bits *. tech.sram_write_fj_per_bit *. 1e-15

let leakage_w (tech : Tech.t) t =
  float_of_int t.capacity_bits /. 8.0 /. 1e6 *. tech.sram_leak_w_per_mb

let reads_to_stream t ~total_bits = (total_bits + t.word_bits - 1) / t.word_bits

let capacity_bytes t = t.capacity_bits / 8
