let murphy ~defect_density_per_cm2 ~die_area_mm2 =
  if die_area_mm2 <= 0.0 then invalid_arg "Yield.murphy: non-positive area";
  let ad = die_area_mm2 /. 100.0 *. defect_density_per_cm2 in
  if ad = 0.0 then 1.0
  else
    let f = (1.0 -. exp (-.ad)) /. ad in
    f *. f

let gross_dies_per_wafer ~wafer_diameter_mm ~die_area_mm2 =
  if die_area_mm2 <= 0.0 then invalid_arg "Yield.gross_dies: non-positive area";
  let r = wafer_diameter_mm /. 2.0 in
  let n =
    (Float.pi *. r *. r /. die_area_mm2)
    -. (Float.pi *. wafer_diameter_mm /. sqrt (2.0 *. die_area_mm2))
  in
  max 0 (int_of_float (floor n))

let good_dies_per_wafer (tech : Tech.t) ~die_area_mm2 =
  let gross =
    gross_dies_per_wafer ~wafer_diameter_mm:tech.wafer_diameter_mm ~die_area_mm2
  in
  let y =
    murphy ~defect_density_per_cm2:tech.defect_density_per_cm2 ~die_area_mm2
  in
  int_of_float (Float.round (float_of_int gross *. y))

let cost_per_good_die (tech : Tech.t) ~die_area_mm2 =
  let good = good_dies_per_wafer tech ~die_area_mm2 in
  if good = 0 then infinity else tech.wafer_cost_usd /. float_of_int good

let wafers_for tech ~die_area_mm2 ~dies =
  let good = good_dies_per_wafer tech ~die_area_mm2 in
  if good = 0 then invalid_arg "Yield.wafers_for: zero yield"
  else (dies + good - 1) / good

let wafers_at_yield (tech : Tech.t) ~die_area_mm2 ~yield_rate ~dies =
  if yield_rate <= 0.0 || yield_rate > 1.0 then
    invalid_arg "Yield.wafers_at_yield: yield in (0,1]";
  let gross =
    gross_dies_per_wafer ~wafer_diameter_mm:tech.Tech.wafer_diameter_mm ~die_area_mm2
  in
  let good_per_wafer = float_of_int gross *. yield_rate in
  if good_per_wafer <= 0.0 then invalid_arg "Yield.wafers_at_yield: zero gross"
  else int_of_float (ceil (float_of_int dies /. good_per_wafer))

let wafer_bill_at_yield (tech : Tech.t) ~die_area_mm2 ~yield_rate ~dies =
  float_of_int (wafers_at_yield tech ~die_area_mm2 ~yield_rate ~dies)
  *. tech.Tech.wafer_cost_usd

let triangular rng ~mode_half_width =
  (* Symmetric triangular on [0, 2w] with mode w: sum of two uniforms. *)
  Hnlpu_util.Rng.float rng mode_half_width +. Hnlpu_util.Rng.float rng mode_half_width

let monte_carlo rng ~defect_density_per_cm2 ~die_area_mm2 ~trials =
  if trials <= 0 then invalid_arg "Yield.monte_carlo: trials must be positive";
  let area_cm2 = die_area_mm2 /. 100.0 in
  let good = ref 0 in
  for _ = 1 to trials do
    let d = triangular rng ~mode_half_width:defect_density_per_cm2 in
    let lambda = d *. area_cm2 in
    (* Die is good iff a Poisson(lambda) draw is zero: probability
       exp(-lambda); sample directly. *)
    if Hnlpu_util.Rng.float rng 1.0 < exp (-.lambda) then incr good
  done;
  float_of_int !good /. float_of_int trials
