type t = {
  name : string;
  transistor_density_per_mm2 : float;
  logic_utilization : float;
  sram_bitcell_um2 : float;
  sram_array_efficiency : float;
  clock_ghz : float;
  gate_energy_fj : float;
  flop_energy_fj : float;
  leakage_w_per_transistor : float;
  sram_read_fj_per_bit : float;
  sram_write_fj_per_bit : float;
  sram_leak_w_per_mb : float;
  hbm_pj_per_bit : float;
  wire_fj_per_bit_mm : float;
  wafer_cost_usd : float;
  wafer_diameter_mm : float;
  defect_density_per_cm2 : float;
  reticle_limit_mm2 : float;
}

let n5 =
  {
    name = "N5";
    transistor_density_per_mm2 = 138.0e6;
    logic_utilization = 0.65;
    sram_bitcell_um2 = 0.021;
    sram_array_efficiency = 0.35;
    clock_ghz = 1.0;
    gate_energy_fj = 0.5;
    flop_energy_fj = 1.2;
    leakage_w_per_transistor = 20.0e-12;
    sram_read_fj_per_bit = 15.0;
    sram_write_fj_per_bit = 18.0;
    sram_leak_w_per_mb = 0.012;
    hbm_pj_per_bit = 3.5;
    wire_fj_per_bit_mm = 0.06;
    wafer_cost_usd = 16_988.0;
    wafer_diameter_mm = 300.0;
    defect_density_per_cm2 = 0.11;
    reticle_limit_mm2 = 830.0;
  }

let area_of_transistors tech n =
  n /. tech.transistor_density_per_mm2 /. tech.logic_utilization

let transistors_of_area tech a =
  a *. tech.transistor_density_per_mm2 *. tech.logic_utilization

let cycle_time_s tech = 1.0e-9 /. tech.clock_ghz
