(** Technology-node constants (default: the paper's 5 nm point).

    Every physical estimate in this repository flows through one of these
    records, so a what-if at another node is a one-record change.  The 5 nm
    values come from the paper (§2.2, §6, Appendix B) and public PDK data;
    the energy coefficients are calibrated order-of-magnitude figures —
    EXPERIMENTS.md documents which reproduced ratio is sensitive to which
    constant. *)

type t = {
  name : string;
  transistor_density_per_mm2 : float;
      (** High-density logic transistors per mm² (paper: 138 MTr/mm²). *)
  logic_utilization : float;
      (** Fraction of placement area usable by standard cells after routing,
          power grid and whitespace (typ. 0.6–0.7). *)
  sram_bitcell_um2 : float;
      (** Six-transistor SRAM bit-cell area (5 nm HD: ~0.021 um²). *)
  sram_array_efficiency : float;
      (** Macro area efficiency: bitcell area / total macro area, small
          macros are periphery-dominated. *)
  clock_ghz : float;  (** Design frequency (paper closes 1.0 GHz at SSG). *)
  gate_energy_fj : float;
      (** Dynamic energy per full-adder-equivalent gate evaluation. *)
  flop_energy_fj : float;  (** Dynamic energy per flip-flop toggle. *)
  leakage_w_per_transistor : float;
      (** Static leakage per logic transistor (HD cells, nominal corner). *)
  sram_read_fj_per_bit : float;
  sram_write_fj_per_bit : float;
  sram_leak_w_per_mb : float;
  hbm_pj_per_bit : float;  (** Off-chip HBM access energy. *)
  wire_fj_per_bit_mm : float;
      (** On-die wire transport energy; the ME metal wires ride on this,
          which is why routing is "virtually free" vs. logic (paper §3.1). *)
  wafer_cost_usd : float;  (** Processed 300 mm wafer (paper: $16,988). *)
  wafer_diameter_mm : float;
  defect_density_per_cm2 : float;  (** Murphy D0 (paper: 0.11 /cm²). *)
  reticle_limit_mm2 : float;  (** Maximum die size per mask set (~830 mm²). *)
}

val n5 : t
(** The paper's 5 nm technology point. *)

val area_of_transistors : t -> float -> float
(** [area_of_transistors tech n] in mm², including the utilization derate. *)

val transistors_of_area : t -> float -> float
(** Inverse of {!area_of_transistors}. *)

val cycle_time_s : t -> float
