let inverter = 2
let nand2 = 4
let nor2 = 4
let xor2 = 8
let mux2 = 12
let full_adder = 28
let half_adder = 14
let flipflop = 24

let ripple_adder w = w * full_adder

let register w = w * flipflop

let negator w = (w * xor2) + ripple_adder w / 2
(* XOR row plus an increment chain (half the cost of a general adder). *)

let csa_cost (s : Hnlpu_fp4.Csa.stats) =
  (s.full_adders * full_adder)
  + (s.half_adders * half_adder)
  + ripple_adder s.cpa_width

let multiplier a b =
  (* Partial products: a*b AND gates; reduction: ~(a-2) rows of b-bit CSA;
     final CPA of a+b bits. *)
  let partial_products = a * b * nand2 in
  let reduction = max 0 (a - 2) * b * full_adder in
  partial_products + reduction + ripple_adder (a + b)

let fp4_constant_multiplier ~input_bits code =
  let open Hnlpu_fp4 in
  let half_units = abs (Fp4.to_half_units code) in
  let shift_add_cost =
    (* Cost of computing |c| * x for c in half-units of the magnitude.
       1,2,4,8,12(= 6): powers of two and 12 = 8+4 -> one adder;
       3 (=1.5), 6 (=3) and 12 (=6) all have two set bits -> one adder. *)
    let popcount n =
      let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + (n land 1)) in
      go n 0
    in
    match popcount half_units with
    | 0 -> 0 (* multiply by zero: tie to ground *)
    | 1 -> 0 (* power of two: pure wiring *)
    | 2 -> ripple_adder (input_bits + 3)
    | _ -> 2 * ripple_adder (input_bits + 3)
  in
  let sign_cost =
    (* Conditional inversion only: the +1 of two's complement is injected as
       a free carry-in of the downstream adder tree. *)
    if Fp4.is_negative code then (input_bits + 4) * xor2 else 0
  in
  shift_add_cost + sign_cost

let fp4_constant_multiplier_avg ~input_bits =
  let total =
    List.fold_left
      (fun acc c -> acc + fp4_constant_multiplier ~input_bits c)
      0 Hnlpu_fp4.Fp4.all
  in
  float_of_int total /. 16.0

let popcount_port_transistors = 8

let popcount_region ~ports =
  let rec bits k acc = if k = 0 then acc else bits (k lsr 1) (acc + 1) in
  (ports * popcount_port_transistors) + ripple_adder (bits ports 0)

let fp4_full_mac ~input_bits =
  (* Significand product (2b x input), exponent shift network (two mux
     levels) and sign logic; lands in the paper's "200+ transistors" band. *)
  multiplier 2 input_bits + (2 * mux2) + ((input_bits + 4) * xor2)
