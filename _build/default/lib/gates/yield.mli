(** Manufacturing yield and per-die cost (paper §7.1 and Appendix B).

    Murphy's model with D0 = 0.11 /cm² on the 827 mm² HNLPU die predicts a
    43% yield, ~27 good dies out of 62 gross per 300 mm wafer, and $629 per
    good die at the paper's $16,988 wafer price. *)

val murphy : defect_density_per_cm2:float -> die_area_mm2:float -> float
(** Murphy yield: [((1 - exp (-. a *. d)) /. (a *. d)) ** 2.] with the die
    area [a] in cm². *)

val gross_dies_per_wafer : wafer_diameter_mm:float -> die_area_mm2:float -> int
(** Classical edge-corrected count:
    [pi (d/2)^2 / A - pi d / sqrt (2 A)], floored. *)

val good_dies_per_wafer : Tech.t -> die_area_mm2:float -> int
(** Gross dies x Murphy yield, rounded to nearest. *)

val cost_per_good_die : Tech.t -> die_area_mm2:float -> float
(** Wafer cost divided by good dies. *)

val wafers_for : Tech.t -> die_area_mm2:float -> dies:int -> int
(** Wafer starts needed to obtain [dies] good dies. *)

val wafers_at_yield : Tech.t -> die_area_mm2:float -> yield_rate:float -> dies:int -> int
(** Wafer starts at an explicitly assumed yield — the §8 fault-tolerance
    scenario ("assumption of 1% yield implies producing ~50x more
    wafers"). *)

val wafer_bill_at_yield : Tech.t -> die_area_mm2:float -> yield_rate:float -> dies:int -> float
(** Those wafers' cost: ~$0.5M for one 16-chip system and ~$22M for 50 at
    1% yield — marginal against the TCO (§8). *)

val monte_carlo :
  Hnlpu_util.Rng.t -> defect_density_per_cm2:float -> die_area_mm2:float ->
  trials:int -> float
(** Monte-Carlo estimate of the Murphy yield: the density is drawn from
    the symmetric triangular distribution on [0, 2 D0] that underlies
    Murphy's closed form, then defects land Poisson on the die.  Converges
    to {!murphy} (property-tested). *)
