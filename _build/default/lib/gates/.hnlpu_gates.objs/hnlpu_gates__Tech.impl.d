lib/gates/tech.ml:
