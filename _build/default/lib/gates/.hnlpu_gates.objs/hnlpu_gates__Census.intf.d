lib/gates/census.mli: Hnlpu_fp4
