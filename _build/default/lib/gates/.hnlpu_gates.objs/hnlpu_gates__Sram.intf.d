lib/gates/sram.mli: Tech
