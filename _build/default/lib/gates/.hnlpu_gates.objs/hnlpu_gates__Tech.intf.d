lib/gates/tech.mli:
