lib/gates/yield.mli: Hnlpu_util Tech
