lib/gates/yield.ml: Float Hnlpu_util Tech
