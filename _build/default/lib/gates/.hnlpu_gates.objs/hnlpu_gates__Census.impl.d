lib/gates/census.ml: Fp4 Hnlpu_fp4 List
