lib/gates/sram.ml: Tech
