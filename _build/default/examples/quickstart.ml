(* Quickstart: build a Hardwired-Neuron (Metal-Embedding) bank from random
   FP4 weights, run the bit-serial machine on an activation vector, check it
   against the reference dot products, and print the PPA comparison against
   Cell-Embedding and a conventional MAC array — the paper's Figures 12/13
   in miniature.

   Run with: dune exec examples/quickstart.exe *)

open Hnlpu

let () =
  let rng = Rng.create 1 in

  (* 1. The operator: y = x . W with a 256x32 FP4 weight matrix. *)
  let gemv = Gemv.random rng ~in_features:256 ~out_features:32 ~act_bits:8 in
  let x = Gemv.random_activations rng gemv in

  (* 2. Build the three machines over the same weights. *)
  let me = Metal_embedding.make gemv in
  let ce = Cell_embedding.make gemv in
  let ma = Mac_array.make ~n_macs:256 gemv in

  (* 3. Execute.  All three must agree exactly with the reference. *)
  let reference = Gemv.reference gemv x in
  let me_out, me_report = Metal_embedding.run me x in
  let ce_out, ce_report = Cell_embedding.run ce x in
  let ma_out, ma_report = Mac_array.run ma x in
  assert (me_out = reference && ce_out = reference && ma_out = reference);
  Printf.printf "All three machines agree with the reference on %d outputs.\n"
    (Array.length reference);
  Printf.printf "y[0..3] (half-units) = %d %d %d %d\n\n" reference.(0)
    reference.(1) reference.(2) reference.(3);

  (* 4. How the weights became wires: the ME routing view. *)
  Printf.printf "ME structure: 16 POPCNT regions, %d ports each (with slack);\n"
    (Metal_embedding.region_capacity me);
  Printf.printf "bit-serial over %d planes (int8 activations).\n\n"
    (Metal_embedding.serial_cycles me);

  (* 5. PPA at the paper's 5 nm point. *)
  Table.print ~title:"PPA at 5 nm (one GEMV)"
    (Neuron_report.to_table Tech.n5 [ ma_report; ce_report; me_report ]);
  Printf.printf
    "\nNote how CE pays ~%.0fx the SRAM baseline's area while ME is ~%.1fx —\n\
     the density step that makes hardwiring a 120B model feasible (paper §3).\n"
    (Neuron_report.area_ratio ce_report ~baseline:ma_report)
    (Neuron_report.area_ratio me_report ~baseline:ma_report)
