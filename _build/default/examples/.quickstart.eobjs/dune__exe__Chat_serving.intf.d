examples/chat_serving.mli:
