examples/tiny_llm.mli:
