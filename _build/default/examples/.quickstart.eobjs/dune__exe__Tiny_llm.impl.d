examples/tiny_llm.ml: Array Buffer Config Dataflow Hn_linear Hnlpu List Mat Neuron_report Printf Rng String Transformer Vec Weights
