examples/weight_update.ml: Array Deployment Float Fp4 Gemv Hn_compiler Hn_linear Hnlpu Lora Mat Printf Rng String Units Vec
