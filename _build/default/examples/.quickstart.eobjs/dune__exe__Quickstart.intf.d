examples/quickstart.mli:
