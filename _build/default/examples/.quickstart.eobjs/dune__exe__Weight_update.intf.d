examples/weight_update.mli:
