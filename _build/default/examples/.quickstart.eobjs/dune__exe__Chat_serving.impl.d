examples/chat_serving.ml: Array Config Hnlpu List Perf Printf Rng Scheduler Stats Table Units
