examples/long_context.mli:
