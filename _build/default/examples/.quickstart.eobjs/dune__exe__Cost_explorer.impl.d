examples/cost_explorer.ml: Config Hnlpu List Model_nre Printf Table Tco Units
