examples/quickstart.ml: Array Cell_embedding Gemv Hnlpu Mac_array Metal_embedding Neuron_report Printf Rng Table Tech
