examples/long_context.ml: Attention_buffer Config Experiments Hnlpu List Perf Printf Scheduler Units
