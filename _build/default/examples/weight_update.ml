(* The weight-update lifecycle (paper §3.2, §8 "Model Updates", future
   work 4).

   A hardwired model is updated in two ways:

   1. {b Hotfix via the LoRA side channel}: ~1% field-programmable HNs
      carry a low-rank delta immediately, with no silicon change.
   2. {b Re-spin via the Sea-of-Neurons}: the Hardwired-Neuron compiler
      regenerates the 10 metal-embedding reticles for the new checkpoint;
      "green" chips are fabricated while "blue" chips keep serving.

   This example walks one projection bank through both: compile the
   original netlist, apply a LoRA hotfix, then re-spin and diff the two
   netlists to see exactly how many wires moved — the information content
   of the update.

   Run with: dune exec examples/weight_update.exe *)

open Hnlpu

let () =
  let rng = Rng.create 20260706 in

  (* The deployed ("blue") weights, quantized, compiled to metal. *)
  let w_blue = Mat.gaussian rng ~rows:128 ~cols:32 in
  let hn_blue = Hn_linear.of_matrix w_blue in
  let quantize_bank w =
    (* Per-neuron scale onto the E2M1 range, as Hn_linear does. *)
    Gemv.make
      ~weights:
        (Array.init (Mat.cols w) (fun o ->
             let col = Mat.col w o in
             let amax = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 col in
             let s = if amax = 0.0 then 1.0 else 6.0 /. amax in
             Array.map (fun v -> Fp4.of_float (v *. s)) col))
      ~act_bits:8
  in
  let g_blue = quantize_bank w_blue in
  let netlist_blue = Hn_compiler.compile ~slack:4.0 g_blue in
  Printf.printf "BLUE netlist: %s" (Hn_compiler.report netlist_blue);
  assert (Hn_compiler.lvs netlist_blue g_blue);
  assert (Hn_compiler.drc netlist_blue = []);
  Printf.printf "LVS/DRC: clean\n\n";

  (* 1. Hotfix: a rank-4 LoRA delta on the side channel, live. *)
  let lora = Lora.create rng ~in_features:128 ~out_features:32 ~rank:4 in
  (* "Train" the adapter: give B some content. *)
  let lora =
    Lora.of_matrices
      ~a:lora.Lora.a
      ~b:(Mat.gaussian ~std:0.05 rng ~rows:4 ~cols:32)
      ()
  in
  let x = Vec.gaussian rng 128 in
  let before = Hn_linear.apply hn_blue x in
  let after = Lora.apply lora ~base:(Hn_linear.apply hn_blue) x in
  Printf.printf "LoRA hotfix live: output moved by %.4f (rank %d, %.2f%% params)\n\n"
    (Vec.max_abs_diff before after) (Lora.rank lora)
    (100.0 *. Lora.parameter_overhead lora ~in_features:128 ~out_features:32);

  (* 2. Re-spin: merge the delta, recompile the metal. *)
  let w_green = Lora.merged lora w_blue in
  let g_green = quantize_bank w_green in
  let netlist_green = Hn_compiler.compile ~slack:4.0 g_green in
  let d = Hn_compiler.diff netlist_blue netlist_green in
  Printf.printf "GREEN re-spin: %d of %d wires re-routed (%.1f%% of the bank), on %s\n"
    d.Hn_compiler.rerouted d.Hn_compiler.total_wires
    (100.0 *. d.Hn_compiler.rerouted_fraction)
    (String.concat "/" d.Hn_compiler.layers_touched);
  Printf.printf "TCL script: %d bytes (this, times 16 chips, is the whole update)\n\n"
    (String.length (Hn_compiler.to_tcl netlist_green));

  (* The fleet-level picture. *)
  let bg = Deployment.blue_green Deployment.annual_plan in
  let lo, hi = bg.Deployment.respin_bill in
  Printf.printf
    "Blue-green over 3 years: %d re-spins, %s - %s of masks+silicon,\n\
     %.0f weeks of green manufacturing, %.0f weeks of downtime.\n"
    bg.Deployment.total_updates (Units.dollars lo) (Units.dollars hi)
    bg.Deployment.weeks_in_transition bg.Deployment.downtime_weeks
