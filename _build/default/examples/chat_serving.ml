(* Chat-serving simulation: the workload the paper's introduction motivates —
   a cloud endpoint serving many concurrent conversations on one HNLPU node.

   Poisson arrivals with chat-shaped token counts flow through the 216-slot
   continuous-batching pipeline (paper §5.2).  We sweep the offered load and
   report throughput, slot occupancy and latency percentiles, showing the
   saturation point at the pipeline bound of ~250K tokens/s.

   Run with: dune exec examples/chat_serving.exe *)

open Hnlpu

let config = Config.gpt_oss_120b

let mean_prefill = 512 (* prompt + history *)
let mean_decode = 256 (* assistant reply *)

let run_load rng rate =
  let reqs =
    Scheduler.workload rng ~n:300 ~rate_per_s:rate ~mean_prefill ~mean_decode
  in
  let r = Scheduler.simulate config reqs in
  let ttft =
    Array.of_list
      (List.map
         (fun c -> c.Scheduler.first_token_s -. c.Scheduler.request.Scheduler.arrival_s)
         r.Scheduler.completed_requests)
  in
  let finish =
    Array.of_list
      (List.map
         (fun c -> c.Scheduler.finish_s -. c.Scheduler.request.Scheduler.arrival_s)
         r.Scheduler.completed_requests)
  in
  (r, ttft, finish)

let () =
  let bound = Scheduler.saturated_throughput config in
  Printf.printf
    "HNLPU chat serving: %d pipeline slots, pipeline bound %s tokens/s\n"
    (Perf.pipeline_slots config)
    (Units.group_thousands (int_of_float bound));
  Printf.printf "Workload: Poisson arrivals, ~%d prompt + ~%d reply tokens\n\n"
    mean_prefill mean_decode;
  let t =
    Table.create
      ~headers:
        [ "Offered (req/s)"; "Tokens/s"; "Occupancy"; "TTFT p50"; "TTFT p95";
          "E2E p95" ]
  in
  List.iter
    (fun rate ->
      let rng = Rng.create 4242 in
      let r, ttft, finish = run_load rng rate in
      Table.add_row t
        [
          Printf.sprintf "%.0f" rate;
          Units.group_thousands (int_of_float r.Scheduler.throughput_tokens_per_s);
          Units.percent r.Scheduler.mean_slot_occupancy;
          Units.seconds (Stats.percentile ttft 0.5);
          Units.seconds (Stats.percentile ttft 0.95);
          Units.seconds (Stats.percentile finish 0.95);
        ])
    [ 10.0; 50.0; 100.0; 200.0; 400.0; 1000.0 ];
  Table.print t;
  Printf.printf
    "\nAt low load the node is mostly idle (the paper's point: one node\n\
     oversaturates most deployments); past ~%d req/s of this mix the pipeline\n\
     saturates and latency grows with queueing.\n"
    (int_of_float (bound /. float_of_int (mean_prefill + mean_decode)))
