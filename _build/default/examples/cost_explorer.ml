(* Cost explorer: what-if analysis over the paper's economic models.

   Sweeps (1) model size -> chips & mask NRE (Table 4's model), (2) weight
   update cadence -> 3-year TCO vs the H100 cluster, and (3) the mask-set
   price anchor -> break-even volume.  Everything derives from the same
   Pricing/Mask_cost models the tests pin to the paper's numbers.

   Run with: dune exec examples/cost_explorer.exe *)

open Hnlpu

let m = 1.0e6

let sweep_model_size () =
  let t = Table.create ~headers:[ "Params"; "FP4 GB"; "Chips"; "Mask NRE" ] in
  List.iter
    (fun params ->
      let model =
        {
          Config.gpt_oss_120b with
          Config.name = "sweep";
          bits_per_param = 4.0;
          total_params_override = Some params;
        }
      in
      let r = Model_nre.row model in
      Table.add_row t
        [
          Units.si ~digits:0 params;
          Printf.sprintf "%.0f" (r.Model_nre.weight_bytes /. 1e9);
          Printf.sprintf "%.1f" r.Model_nre.chips;
          Units.dollars r.Model_nre.nre_usd;
        ])
    [ 8e9; 32e9; 120e9; 400e9; 671e9; 1e12; 2e12 ];
  Table.print ~title:"Mask NRE vs model size (FP4, Sea-of-Neurons)" t

let sweep_update_cadence () =
  let h100 = (Tco.h100_column Tco.High).Tco.tco_static.Tco.lo in
  let hnlpu = Tco.hnlpu_column Tco.High in
  let t =
    Table.create ~headers:[ "Re-spins / 3y"; "HNLPU TCO"; "Advantage vs H100" ]
  in
  List.iter
    (fun respins ->
      let tco_lo =
        hnlpu.Tco.tco_static.Tco.lo +. (float_of_int respins *. hnlpu.Tco.respin.Tco.lo)
      in
      let tco_hi =
        hnlpu.Tco.tco_static.Tco.hi +. (float_of_int respins *. hnlpu.Tco.respin.Tco.hi)
      in
      Table.add_row t
        [
          string_of_int respins;
          Printf.sprintf "%.0fM ~ %.0fM" (tco_lo /. m) (tco_hi /. m);
          Printf.sprintf "%.0fx ~ %.0fx" (h100 /. tco_hi) (h100 /. tco_lo);
        ])
    [ 0; 1; 2; 4; 8; 12 ];
  Table.print
    ~title:"High-volume TCO vs weight-update cadence (H100 cluster: $9,563M)" t

let sweep_mask_anchor () =
  (* How sensitive is the verdict to the $15M-30M mask-set price? *)
  let t =
    Table.create
      ~headers:[ "Full set price"; "Homogeneous"; "ME/chip"; "16-chip initial" ]
  in
  List.iter
    (fun set_price ->
      let unit = set_price /. 130.0 in
      let homog = 120.0 *. unit and me = 10.0 *. unit in
      Table.add_row t
        [
          Units.dollars set_price;
          Units.dollars homog;
          Units.dollars me;
          Units.dollars (homog +. (16.0 *. me));
        ])
    [ 10.0 *. m; 15.0 *. m; 22.5 *. m; 30.0 *. m; 45.0 *. m ];
  Table.print ~title:"Sensitivity to the 5nm mask-set price anchor" t

let () =
  sweep_model_size ();
  print_newline ();
  sweep_update_cadence ();
  print_newline ();
  sweep_mask_anchor ();
  print_newline ();
  let lo, hi = Tco.tco_dynamic_ratio Tco.High in
  Printf.printf
    "Headline (paper §7.5): with annual updates at OpenAI scale, HNLPU's\n\
     3-year TCO advantage is %.1fx - %.1fx, and even a dozen re-spins over\n\
     three years leaves an order of magnitude on the table.\n"
    lo hi
