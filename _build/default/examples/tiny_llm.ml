(* Token-in-token-out, end to end, three ways.

   The paper's HNLPU "receives token IDs and generates token IDs, operating
   without a software stack".  This example runs the same tiny MoE
   transformer through:

     1. the single-machine float reference (Transformer),
     2. the 16-chip distributed dataflow of §5/Appendix A (Dataflow), and
     3. a projection computed on the bit-serial Hardwired-Neuron machine
        (Hn_linear over Metal_embedding),

   and shows (1) and (2) produce the same greedy token stream while (3)
   tracks the float projection within quantization error.

   Run with: dune exec examples/tiny_llm.exe *)

open Hnlpu

let () =
  let w = Weights.random (Rng.create 271828) Config.tiny_hnlpu in
  Printf.printf "Model: %s — %d parameters, %d layers, %d experts (top-%d)\n\n"
    Config.tiny_hnlpu.Config.name (Weights.count_params w)
    Config.tiny_hnlpu.Config.num_layers Config.tiny_hnlpu.Config.experts
    Config.tiny_hnlpu.Config.experts_per_token;

  (* 1 & 2: greedy decode through both execution paths. *)
  let reference = Transformer.create w in
  let distributed = Dataflow.create w in
  let prompt = [ 7; 3; 42 ] in
  Printf.printf "prompt: %s\n" (String.concat " " (List.map string_of_int prompt));
  let steps = 12 in
  let ref_toks = Buffer.create 64 and dist_toks = Buffer.create 64 in
  let tok_r = ref 0 and tok_d = ref 0 in
  List.iter
    (fun t ->
      tok_r := Vec.argmax (Transformer.forward reference ~token:t);
      tok_d := Vec.argmax (Dataflow.forward distributed ~token:t))
    prompt;
  for _ = 1 to steps do
    Buffer.add_string ref_toks (string_of_int !tok_r ^ " ");
    Buffer.add_string dist_toks (string_of_int !tok_d ^ " ");
    tok_r := Vec.argmax (Transformer.forward reference ~token:!tok_r);
    tok_d := Vec.argmax (Dataflow.forward distributed ~token:!tok_d)
  done;
  Printf.printf "reference  : %s\n" (Buffer.contents ref_toks);
  Printf.printf "distributed: %s\n" (Buffer.contents dist_toks);
  Printf.printf "(identical: %b)\n\n"
    (Buffer.contents ref_toks = Buffer.contents dist_toks);

  (* The distributed run's communication ledger. *)
  let c = Dataflow.collectives distributed in
  Printf.printf
    "collectives used: %d column all-reduces, %d row all-reduces,\n\
    \                  %d column all-gathers, %d all-chip all-reduces\n\n"
    c.Dataflow.col_all_reduce c.Dataflow.row_all_reduce c.Dataflow.col_all_gather
    c.Dataflow.all_chip_all_reduce;

  (* 3: one projection on actual HN bit-serial hardware arithmetic. *)
  let x = Transformer.hidden_state reference in
  let hn = Hn_linear.of_matrix w.Weights.layers.(0).Weights.wq in
  let y_hw = Hn_linear.apply hn x in
  let y_fp = Mat.gemv (Hn_linear.dequantized hn) x in
  let report = Hn_linear.report hn in
  Printf.printf "HN-machine Wq projection: max |hw - float| = %.2e\n"
    (Vec.max_abs_diff y_hw y_fp);
  Printf.printf "  (bank: %.4f mm2, %d cycles per GEMV at 1 GHz)\n"
    report.Neuron_report.area_mm2 report.Neuron_report.cycles;

  (* Expert routing statistics — the sparsity behind the HN array's power. *)
  let load = Transformer.expert_load reference in
  let total = Array.fold_left ( + ) 0 load in
  Printf.printf "\nexpert activations (total %d over %d tokens x %d layers x top-%d):\n"
    total (steps + List.length prompt) Config.tiny_hnlpu.Config.num_layers
    Config.tiny_hnlpu.Config.experts_per_token;
  Array.iteri (fun e n -> Printf.printf "  expert %2d -> %d\n" e n) load
