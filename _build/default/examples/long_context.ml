(* Long-context behaviour: the story behind Figure 14, end to end.

   Sweeps the decode context from 2K to 512K and shows (1) the stacked
   execution-time breakdown (comm gives way to attention), (2) the
   attention-buffer spill point where KV overflows the 320 MB on-chip
   buffer into HBM, (3) the throughput cliff, and (4) how a long-document
   serving workload slows under the context-aware scheduler.

   Run with: dune exec examples/long_context.exe *)

open Hnlpu

let config = Config.gpt_oss_120b

let () =
  print_endline "Execution-time breakdown per token (Figure 14)";
  print_string (Experiments.figure14_chart ());
  print_newline ();

  (* KV residency: where the stall comes from. *)
  let cap = Attention_buffer.onchip_positions Attention_buffer.hnlpu config in
  Printf.printf
    "Attention buffer: 320 MB/chip holds ~%s positions (%d B/position/chip);\n"
    (Units.group_thousands cap)
    (Attention_buffer.kv_bytes_per_position_per_chip config);
  List.iter
    (fun l ->
      let spilled =
        Attention_buffer.spilled_bytes_per_token Attention_buffer.hnlpu config
          ~context:l
      in
      let b = Perf.token_breakdown config ~context:l in
      Printf.printf
        "  %4dK context: %7.1f us/token, %s tokens/s, HBM spill %s/token, stall %s\n"
        (l / 1024)
        (Perf.total_s b *. 1e6)
        (Units.group_thousands
           (int_of_float (Perf.throughput_tokens_per_s config ~context:l)))
        (Units.bytes spilled)
        (Units.percent (Perf.fractions b).Perf.stall_s))
    Perf.figure14_contexts;
  print_newline ();

  (* Serving impact: the same workload, flat vs context-aware latency. *)
  let workload =
    List.init 64 (fun i ->
        {
          Scheduler.arrival_s = 0.002 *. float_of_int i;
          prefill_tokens = 30_000;
          decode_tokens = 400;
        })
  in
  let flat = Scheduler.simulate ~context:2048 config workload in
  let aware = Scheduler.simulate ~context_aware:true config workload in
  Printf.printf
    "Long-document workload (64 x 30K-token prompts, 400-token answers):\n";
  Printf.printf "  flat 2K-latency model : %s tokens/s\n"
    (Units.group_thousands (int_of_float flat.Scheduler.throughput_tokens_per_s));
  Printf.printf "  context-aware model   : %s tokens/s (%.0f%% of flat)\n"
    (Units.group_thousands (int_of_float aware.Scheduler.throughput_tokens_per_s))
    (100.0
    *. aware.Scheduler.throughput_tokens_per_s
    /. flat.Scheduler.throughput_tokens_per_s);
  print_newline ();
  Printf.printf
    "The shape matches the paper: decode stays compute-cheap (HN) and\n\
     comm-bound until the KV cache outgrows the buffer near %s tokens;\n\
     past that, attention and HBM stalls own the token budget.\n"
    (Units.group_thousands cap)
